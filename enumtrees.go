// Package enumtrees is a reproduction of "Enumeration on Trees with
// Tractable Combined Complexity and Efficient Updates" (Amarilli,
// Bourhis, Mengel, Niewerth — PODS 2019): an update-aware enumeration
// engine for MSO queries on unranked trees and words.
//
// Given a query — a nondeterministic stepwise tree variable automaton, a
// word variable automaton, an MSO formula, or a spanner pattern — and a
// tree or word, the engine preprocesses in (quasi)linear time, then:
//
//   - enumerates all satisfying assignments without duplicates, with
//     delay independent of the input size (linear only in each produced
//     assignment; constant for first-order queries);
//   - supports leaf insertion, leaf deletion and relabeling in
//     logarithmic (amortized) time, after which enumeration restarts on
//     the updated input;
//   - stays polynomial in the query automaton even when it is
//     nondeterministic (the paper's combined-complexity contribution).
//
// The package is a facade over the internal packages that implement the
// paper layer by layer: see DESIGN.md for the map from lemmas and
// theorems to code, and `go run ./cmd/benchtables` for the measured
// reproduction of every claimed bound.
//
// # Quick start
//
//	t, _ := enumtrees.ParseTree("(a (b) (a (b)))")
//	q := enumtrees.SelectLabel([]enumtrees.Label{"a", "b"}, "b", 0)
//	e, _ := enumtrees.New(t, q, enumtrees.Options{})
//	for asg := range e.Results() {
//	    fmt.Println(asg) // {⟨X0:n1⟩}, {⟨X0:n3⟩}
//	}
//	id, _ := e.InsertFirstChild(t.Root.ID, "b") // O(log n)
//	_ = id
//	fmt.Println(e.Count()) // 3
//
// # Concurrent readers and batched updates
//
// The Enumerator above is a single-threaded convenience. For serving
// workloads, use the snapshot-isolated engine: the writer applies single
// or batched updates, readers take immutable snapshots lock-free and
// enumerate from them unaffected by concurrent edits.
//
//	eng, _ := enumtrees.NewEngine(t, q, enumtrees.Options{})
//	snap := eng.Snapshot()        // lock-free, from any goroutine
//	go func() {
//	    for asg := range snap.Results() { use(asg) } // isolated
//	}()
//	eng.ApplyBatch([]enumtrees.Update{            // one publication
//	    {Op: enumtrees.OpRelabel, Node: 1, Label: "b"},
//	    {Op: enumtrees.OpInsertFirstChild, Node: 0, Label: "a"},
//	})
//
// # Structural edits
//
// Beyond the single-leaf edits of Definition 7.1, the engines accept
// STRUCTURAL updates that splice whole subterms: subtree delete, subtree
// move and subtree graft on trees, range move/insert/delete and concat
// on words. A move relocates the subtree (or letter range) as one shared
// piece — node IDs are preserved, the per-query repair cost is
// O(log n + boundary) regardless of the moved size, and the maintained
// term is rebalanced back into its logarithmic height budget by
// scapegoat rebuilding. Bulk construction of an n-leaf document is O(n).
//
//	eng.ApplyBatch([]enumtrees.Update{
//	    {Op: enumtrees.OpMoveSubtreeFirstChild, Node: sec, Dest: doc},
//	    {Op: enumtrees.OpDeleteSubtree, Node: appendix},
//	    {Op: enumtrees.OpInsertSubtreeRightSibling, Node: fig, Fragment: frag},
//	})
//	weng.ApplyBatch([]enumtrees.Update{
//	    {Op: enumtrees.OpMoveRange, From: 0, K: 3, To: 8},
//	    {Op: enumtrees.OpConcat, Labels: []enumtrees.Label{"a", "b"}},
//	})
//
// # Counting and stateless pagination
//
// Snapshots also answer aggregates and ranked access without
// enumerating, via the counting semiring maintained alongside the
// index (Section 4 multiset remark): Count is an O(poly|Q|) lookup,
// and At/Page jump to a rank by count-guided descent — exact for
// unambiguous automata (Snapshot.DirectAccess), with a transparent
// enumeration fallback otherwise.
//
//	n := snap.Count()            // no enumeration
//	page := snap.Page(1000, 20)  // answers 1000..1019, stateless
//	mid, _ := snap.At(n / 2)
//
// # Parallel enumeration
//
// Because ranked access is stateless, bulk enumeration is
// embarrassingly parallel: Snapshot.ParallelAll(w) splits the rank
// range [0, Count()) across w workers, each draining its slice by
// count-guided descent with its own reusable scratch, and
// Snapshot.Chunks(w, size) streams the same partition back in
// enumeration order with bounded buffering. Both return exactly the
// Results() order on any snapshot (a sharded drain covers ambiguous
// automata), and both are snapshot-isolated from concurrent updates.
//
//	all := snap.ParallelAll(0)         // 0 = all cores
//	for chunk := range snap.Chunks(4, 512) {
//	    use(chunk)                     // in enumeration order
//	}
//
// # Many standing queries on one document
//
// A QuerySet serves any number of standing queries over the same
// document from ONE update stream: the term/forest maintenance of each
// edit is paid once, shared by all queries, and each publication is a
// MultiSnapshot answering every query on the same version. Queries
// register and unregister at runtime.
//
//	qs := enumtrees.NewQuerySet(t)
//	q1, _ := qs.Register(query1, enumtrees.Options{})
//	q2, _ := qs.Register(query2, enumtrees.Options{})
//	m, _, _ := qs.ApplyBatch(batch)   // one publication for all queries
//	for asg := range m.Query(q1).Results() { use(asg) }
//	for asg := range m.Query(q2).Results() { use(asg) }
//
// With many standing queries the per-query repair of each edit fans out
// across a bounded worker pool (the parallel write path; default
// GOMAXPROCS, see Options.Workers / QuerySet.SetWorkers), and queries
// register without stalling the edit stream: the new query's structure
// is built off the writer's critical section against a pinned term
// version. QuerySet.Stats returns the immutable work counters (shared
// term work vs per-query repair) of the latest publication.
//
// Registrations of CONTENT-EQUAL queries are deduped by the multi-query
// optimizer: they share one refcounted pipeline, so k near-duplicate
// standing queries pay the repair of one (per-edit cost scales with
// Stats().Pipelines, not Queries). Options.NoDedupe opts a registration
// out; see EngineStats.RegistrationsDeduped.
//
// # Answer-delta streaming
//
// A registered query can be subscribed: each publication then pushes
// one Delta carrying exactly the answers the edit added and removed,
// computed in time proportional to the change rather than the answer
// set, so a standing monitor never re-reads what it already holds.
//
//	ch, _ := qs.Subscribe(q1)
//	first := <-ch                 // always a resync: the base answer set
//	for d := range ch {           // closed by Unregister
//	    apply(d.Removed, d.Added) // exact diff, contiguous by version
//	}
//
// The writer never blocks on a slow consumer: undelivered deltas
// coalesce (Delta.Coalesced), degrading to a snapshot resync past
// SetDeltaResyncLimit. See the Delta type and DESIGN.md §11.
package enumtrees

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/enumerate"
	"repro/internal/mso"
	"repro/internal/paths"
	"repro/internal/spanner"
	"repro/internal/tree"
	"repro/internal/tva"
)

// Core data types.
type (
	// Label is a node or letter label.
	Label = tree.Label
	// Var is a query variable index (at most 32 variables).
	Var = tree.Var
	// VarSet is a set of variables.
	VarSet = tree.VarSet
	// NodeID is a stable node (or letter) identifier.
	NodeID = tree.NodeID
	// Singleton is one ⟨variable : node⟩ pair of an assignment.
	Singleton = tree.Singleton
	// Assignment is a query result: a set of singletons.
	Assignment = tree.Assignment
	// Valuation maps nodes to the variables placed on them.
	Valuation = tree.Valuation
	// Tree is a mutable unranked labeled tree.
	Tree = tree.Unranked
	// Node is a node of a Tree.
	Node = tree.UNode
)

// NewTree creates a single-node tree.
func NewTree(rootLabel Label) *Tree { return tree.NewUnranked(rootLabel) }

// ParseTree parses the S-expression tree syntax, e.g. "(a (b) (c (d)))".
func ParseTree(s string) (*Tree, error) { return tree.ParseUnranked(s) }

// Queries as automata.
type (
	// TreeAutomaton is a stepwise tree variable automaton on unranked
	// trees (the paper's query formalism; may be nondeterministic).
	TreeAutomaton = tva.Unranked
	// WordAutomaton is a word variable automaton.
	WordAutomaton = tva.WVA
	// InitRule is an element of a TreeAutomaton's initial relation.
	InitRule = tva.InitRule
	// StepTriple is an element of a TreeAutomaton's transition relation.
	StepTriple = tva.StepTriple
	// State is an automaton state.
	State = tva.State
)

// Ready-made example queries.
var (
	// SelectLabel selects one node with a given label.
	SelectLabel = tva.SelectLabel
	// MarkedAncestor is the Theorem 9.2 query: special nodes with a
	// marked proper ancestor.
	MarkedAncestor = tva.MarkedAncestor
	// DescendantAtDepth selects nodes with a witness-labeled descendant
	// at exact depth k (the combined-complexity family of experiment E5).
	DescendantAtDepth = tva.DescendantAtDepth
)

// Options configures an enumerator.
type Options = core.Options

// Enumeration modes.
const (
	// ModeIndexed is the paper's full algorithm (default).
	ModeIndexed = enumerate.ModeIndexed
	// ModeNaive keeps Algorithm 2 but uses the naive box enumeration
	// (delay grows with the circuit depth).
	ModeNaive = enumerate.ModeNaive
)

// Enumerator is the update-aware tree enumerator (Theorem 8.1), a
// single-threaded convenience wrapper over Engine.
type Enumerator = core.TreeEnumerator

// New preprocesses a tree and a tree automaton query.
func New(t *Tree, q *TreeAutomaton, opts Options) (*Enumerator, error) {
	return core.NewTreeEnumerator(t, q, opts)
}

// WordEnumerator is the update-aware word enumerator (Theorem 8.5), a
// single-threaded convenience wrapper over WordEngine.
type WordEnumerator = core.WordEnumerator

// NewWord preprocesses a word and a word automaton query.
func NewWord(letters []Label, q *WordAutomaton, opts Options) (*WordEnumerator, error) {
	return core.NewWordEnumerator(letters, q, opts)
}

// Stats describes preprocessed structure sizes and cumulative update
// work.
type Stats = core.Stats

// Snapshot-isolated engine API (see the package comment's second
// example). The engine separates one writer from any number of lock-free
// readers: every update publishes a fresh immutable Snapshot while older
// snapshots — including in-flight enumerations from them — stay valid.
type (
	// Engine is the concurrent tree engine (Theorem 8.1 + snapshots),
	// serving one standing query; QuerySet serves many.
	Engine = engine.TreeEngine
	// WordEngine is the concurrent word engine (Theorem 8.5 + snapshots).
	WordEngine = engine.WordEngine
	// Snapshot is one immutable published version of one query's
	// structure.
	Snapshot = engine.Snapshot
	// Update is one edit of a batch for Engine.ApplyBatch /
	// WordEngine.ApplyBatch.
	Update = engine.Update
	// UpdateOp identifies the operation of an Update.
	UpdateOp = engine.UpdateOp
)

// Multi-query engine API: one document, one update stream, many standing
// queries. The term/forest work of every edit is shared across all
// registered queries; only the logarithmic box/index repair scales with
// the query count. Queries register and unregister at runtime, and each
// publication is a MultiSnapshot — a consistent version of EVERY
// standing query, taken with one atomic load.
//
//	qs := enumtrees.NewQuerySet(t)
//	figs, _ := qs.Register(figQuery, enumtrees.Options{})
//	secs, _ := qs.Register(secQuery, enumtrees.Options{})
//	m, _ := qs.Relabel(3, "sec")        // ONE publication for both queries
//	for a := range m.Query(figs).Results() { ... }
//	for a := range m.Query(secs).Results() { ... }
type (
	// QuerySet is the multi-query tree engine.
	QuerySet = engine.TreeSet
	// WordQuerySet is the multi-query word engine.
	WordQuerySet = engine.WordSet
	// QueryID identifies a registered query within a QuerySet.
	QueryID = engine.QueryID
	// MultiSnapshot is one published version of every standing query.
	MultiSnapshot = engine.MultiSnapshot
	// EngineStats is one immutable reading of an engine's cumulative
	// work counters (QuerySet.Stats / WordQuerySet.Stats): shared term
	// work vs per-query repair, safe to read concurrently with the
	// parallel write path.
	EngineStats = engine.EngineStats
	// Delta is one push notification of a standing query's answer
	// change, delivered on the channel returned by Subscribe
	// (QuerySet.Subscribe / Engine.Subscribe / WordEngine.Subscribe):
	// the publication version plus the answers added and removed, so a
	// monitor pays per edit for the CHANGE, not a full re-read. The
	// first Delta of a subscription carries a Resync snapshot as the
	// base; consecutive deltas are coalesced (Coalesced flag) when the
	// consumer falls behind, degrading to a fresh Resync past the
	// engine's limit. See DESIGN.md §11.
	Delta = engine.Delta
)

// InvalidNode is the sentinel NodeID meaning "no node" (unapplied batch
// positions, not-yet-found searches). Real IDs are never negative.
const InvalidNode = tree.InvalidNode

// NewQuerySet preprocesses a tree into a multi-query engine with no
// queries registered yet; add standing queries with Register.
func NewQuerySet(t *Tree) *QuerySet { return engine.NewTreeSet(t) }

// NewWordQuerySet preprocesses a word into a multi-query engine.
func NewWordQuerySet(letters []Label) (*WordQuerySet, error) {
	return engine.NewWordSet(letters)
}

// Batch update operations.
const (
	// OpRelabel replaces a node's (or letter's) label.
	OpRelabel = engine.OpRelabel
	// OpDelete removes a tree leaf or word letter.
	OpDelete = engine.OpDelete
	// OpInsertFirstChild inserts a new first child (trees).
	OpInsertFirstChild = engine.OpInsertFirstChild
	// OpInsertRightSibling inserts a new right sibling (trees).
	OpInsertRightSibling = engine.OpInsertRightSibling
	// OpInsertAfter inserts a letter after the given one (words).
	OpInsertAfter = engine.OpInsertAfter
	// OpInsertBefore inserts a letter before the given one (words).
	OpInsertBefore = engine.OpInsertBefore

	// Structural edits: whole subtrees (trees) and letter ranges (words)
	// in one O(log n + boundary) splice — see DESIGN.md §10.

	// OpDeleteSubtree removes the whole subtree of Node (trees).
	OpDeleteSubtree = engine.OpDeleteSubtree
	// OpMoveSubtreeFirstChild relocates the subtree of Node to be the
	// first child subtree of Dest, preserving node IDs (trees).
	OpMoveSubtreeFirstChild = engine.OpMoveSubtreeFirstChild
	// OpMoveSubtreeRightSibling relocates the subtree of Node to be the
	// right-sibling subtree of Dest, preserving node IDs (trees).
	OpMoveSubtreeRightSibling = engine.OpMoveSubtreeRightSibling
	// OpInsertSubtreeFirstChild grafts a copy of Fragment as the first
	// child subtree of Node (trees).
	OpInsertSubtreeFirstChild = engine.OpInsertSubtreeFirstChild
	// OpInsertSubtreeRightSibling grafts a copy of Fragment as the
	// right-sibling subtree of Node (trees).
	OpInsertSubtreeRightSibling = engine.OpInsertSubtreeRightSibling
	// OpMoveRange moves the K letters at position From after position To
	// of the remaining word, To = -1 prepending (words).
	OpMoveRange = engine.OpMoveRange
	// OpInsertRange inserts Labels at position From (words).
	OpInsertRange = engine.OpInsertRange
	// OpDeleteRange removes the K letters at position From (words).
	OpDeleteRange = engine.OpDeleteRange
	// OpConcat appends Labels at the end of the word (words).
	OpConcat = engine.OpConcat
)

// NewEngine preprocesses a tree and a query into a snapshot-isolated
// engine for concurrent use.
func NewEngine(t *Tree, q *TreeAutomaton, opts Options) (*Engine, error) {
	return engine.NewTree(t, q, opts)
}

// NewWordEngine preprocesses a word and a word automaton query into a
// snapshot-isolated engine for concurrent use.
func NewWordEngine(letters []Label, q *WordAutomaton, opts Options) (*WordEngine, error) {
	return engine.NewWord(letters, q, opts)
}

// MSO formulas (Corollaries 8.2 and 8.3).
type (
	// Formula is an MSO formula over unranked trees.
	Formula = mso.Formula
	// True is ⊤.
	True = mso.TrueF
	// False is ⊥.
	False = mso.FalseF
	// Subset is X ⊆ Y.
	Subset = mso.Subset
	// Sing asserts X is a singleton.
	Sing = mso.Singleton
	// HasLabel asserts every X-node has a label.
	HasLabel = mso.HasLabel
	// Child relates singleton X to a child Y.
	Child = mso.Child
	// NextSibling relates singleton X to its right neighbor Y.
	NextSibling = mso.NextSibling
	// Root asserts singleton X is the root.
	Root = mso.Root
	// Leaf asserts singleton X is a leaf.
	Leaf = mso.Leaf
	// Descendant relates singleton X to a proper descendant Y.
	Descendant = mso.Descendant
	// And is conjunction.
	And = mso.And
	// Or is disjunction.
	Or = mso.Or
	// Not is negation.
	Not = mso.Not
	// Exists is second-order existential quantification.
	Exists = mso.Exists
)

// MSO helper constructors.
var (
	// Conj conjoins formulas.
	Conj = mso.Conj
	// Disj disjoins formulas.
	Disj = mso.Disj
	// Forall is universal quantification.
	Forall = mso.Forall
	// Implies is implication.
	Implies = mso.Implies
)

// CompileMSO compiles an MSO formula to a tree automaton
// (Thatcher-Wright; can be expensive in the formula, as it must be).
func CompileMSO(f Formula, alphabet []Label) (*TreeAutomaton, error) {
	return mso.Compile(f, alphabet)
}

// CompileMSOFirstOrder compiles a formula whose listed variables are
// first-order (singleton-constrained): the constant-delay case of
// Corollary 8.3.
func CompileMSOFirstOrder(f Formula, alphabet []Label, foVars ...Var) (*TreeAutomaton, error) {
	return mso.CompileFO(f, alphabet, foVars...)
}

// Spanner patterns over words (Theorem 8.5 applications).
type (
	// Pattern is a regex-like pattern with captures.
	Pattern = spanner.Pattern
	// Lit matches one letter.
	Lit = spanner.Lit
	// AnyLetter matches any letter.
	AnyLetter = spanner.Any
	// SeqP concatenates patterns.
	SeqP = spanner.Seq
	// AltP alternates patterns.
	AltP = spanner.Alt
	// StarP is Kleene star.
	StarP = spanner.Star
	// PlusP is one-or-more.
	PlusP = spanner.Plus
	// OptP is zero-or-one.
	OptP = spanner.Opt
	// Capture binds every matched position to a variable.
	Capture = spanner.Capture
)

// Spanner helpers.
var (
	// Cat concatenates patterns.
	Cat = spanner.Cat
	// OrP alternates patterns.
	OrP = spanner.Or
	// Contains matches the pattern anywhere in the word.
	Contains = spanner.Contains
	// TextLabels converts a string to one label per rune.
	TextLabels = spanner.TextLabels
	// ByteAlphabet collects the runes of sample strings as an alphabet.
	ByteAlphabet = spanner.ByteAlphabet
	// Spans groups an assignment by capture variable.
	Spans = spanner.Spans
)

// CompilePattern compiles a spanner pattern to a word automaton.
func CompilePattern(p Pattern, alphabet []Label) (*WordAutomaton, error) {
	return spanner.CompileWVA(p, alphabet)
}

// PathQuery is a parsed XPath-like forward path query ("/doc//sec/fig").
type PathQuery = paths.Query

// ParsePath parses a path query.
func ParsePath(s string) (PathQuery, error) { return paths.Parse(s) }

// CompilePath compiles a path query to a compact nondeterministic tree
// automaton (2k states for k steps) selecting the last step's node as x.
// Path queries are the natural showcase of the paper's combined
// complexity: the automaton stays small precisely because it does not
// have to be determinized.
func CompilePath(q PathQuery, alphabet []Label, x Var) (*TreeAutomaton, error) {
	return paths.Compile(q, alphabet, x)
}

// MustCompilePath parses and compiles a literal path query, panicking on
// syntax errors.
func MustCompilePath(path string, alphabet []Label, x Var) *TreeAutomaton {
	return paths.MustCompile(path, alphabet, x)
}
