package main

import (
	"bytes"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, buf.String())
	}
	return buf.String()
}

// TestSelectQuery smoke-tests the basic select flow.
func TestSelectQuery(t *testing.T) {
	out := runOut(t, "-tree", "(a (b) (a (b)))", "-query", "select:b")
	if !strings.Contains(out, "2 result(s)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

// TestEditStream smoke-tests edit replay with per-edit re-enumeration.
func TestEditStream(t *testing.T) {
	out := runOut(t, "-tree", "(u (u (u)))", "-query", "ancestor:m:u:s",
		"-edits", "relabel 0 m; relabel 2 s", "-stats")
	if !strings.Contains(out, "0 result(s)") || !strings.Contains(out, "1 result(s)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "stats:") {
		t.Fatalf("missing stats:\n%s", out)
	}
}

// TestBatchMode smoke-tests the single-publication batch path.
func TestBatchMode(t *testing.T) {
	out := runOut(t, "-tree", "(a (b))", "-query", "select:b", "-batch",
		"-edits", "insert 0 b; relabel 1 a")
	if !strings.Contains(out, "after batch of 2 edits (snapshot v2)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// b at node 1 was relabeled away; the batch inserted one fresh b.
	if !strings.Contains(out, "1 result(s)") {
		t.Fatalf("unexpected result count:\n%s", out)
	}
}

// TestStructuralEdits smoke-tests the structural edit syntax: a graft,
// a subtree move and a subtree delete, per-edit and batched.
func TestStructuralEdits(t *testing.T) {
	out := runOut(t, "-tree", "(a (b) (a))", "-query", "select:b",
		"-edits", "insertSub 2 (a (b) (b)); moveSub 1 2; deleteSub 3")
	// Graft adds two b-nodes (3 total), the move keeps the count, the
	// subtree delete removes the grafted pair (1 left).
	if !strings.Contains(out, "(new subtree 3)") {
		t.Fatalf("missing graft root ID:\n%s", out)
	}
	for _, want := range []string{"1 result(s)", "3 result(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}

	out = runOut(t, "-tree", "(a (b) (a))", "-query", "select:b", "-batch",
		"-edits", "insertSubR 1 (a (b)); moveSubR 3 1; deleteSub 1")
	if !strings.Contains(out, "after batch of 3 edits") {
		t.Fatalf("unexpected batch output:\n%s", out)
	}
	if !strings.Contains(out, "1 result(s)") {
		t.Fatalf("unexpected result count:\n%s", out)
	}
}

// TestMultiQuery runs two standing queries over one edit stream: both
// blocks must appear, labeled, and both must see the edit.
func TestMultiQuery(t *testing.T) {
	out := runOut(t, "-tree", "(a (b) (c))", "-query", "select:b", "-query", "select:c",
		"-edits", "relabel 2 b")
	if !strings.Contains(out, "[select:b]") || !strings.Contains(out, "[select:c]") {
		t.Fatalf("missing per-query headers:\n%s", out)
	}
	// After the relabel the c-query must be empty and the b-query must
	// have both nodes.
	tail := out[strings.Index(out, "after"):]
	if !strings.Contains(tail, "2 result(s)") || !strings.Contains(tail, "0 result(s)") {
		t.Fatalf("unexpected post-edit counts:\n%s", out)
	}
}

// TestMultiQueryBatch applies a batch with several standing queries: one
// publication, every query re-answered.
func TestMultiQueryBatch(t *testing.T) {
	out := runOut(t, "-tree", "(a (b))", "-query", "select:b", "-query", "select:a", "-batch",
		"-edits", "insert 0 b; relabel 1 a", "-stats")
	if !strings.Contains(out, "after batch of 2 edits (snapshot v3)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "stats [select:b]:") || !strings.Contains(out, "stats [select:a]:") {
		t.Fatalf("missing per-query stats:\n%s", out)
	}
}

// TestDedupeNote repeats one query spec: the optimizer must dedupe the
// twin onto the first registration's pipeline and say so, both answers
// staying intact — and distinct specs must stay silent.
func TestDedupeNote(t *testing.T) {
	out := runOut(t, "-tree", "(a (b) (a (b)))", "-query", "select:b", "-query", "select:b",
		"-edits", "relabel 1 a")
	if !strings.Contains(out, "shared pipeline: 1 of 2 queries deduped onto 1 pipeline(s)") {
		t.Fatalf("missing shared-pipeline note:\n%s", out)
	}
	// Both twins answer before and after the edit (2 then 1 b-node).
	if got := strings.Count(out, "2 result(s)"); got != 2 {
		t.Fatalf("want both twins to print 2 result(s) pre-edit, got %d:\n%s", got, out)
	}
	if got := strings.Count(out, "1 result(s)"); got != 2 {
		t.Fatalf("want both twins to print 1 result(s) post-edit, got %d:\n%s", got, out)
	}

	out = runOut(t, "-tree", "(a (b) (c))", "-query", "select:b", "-query", "select:c")
	if strings.Contains(out, "shared pipeline") {
		t.Fatalf("distinct queries must not print the dedupe note:\n%s", out)
	}
}

// TestErrors covers flag validation and bad edits.
func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-query", "select:b"}, &buf); err == nil {
		t.Fatal("missing -tree should fail")
	}
	if err := run([]string{"-tree", "(a)", "-query", "select:b", "-edits", "explode 0"}, &buf); err == nil {
		t.Fatal("unknown edit should fail")
	}
	if err := run([]string{"-tree", "(a)", "-query", "nope:x"}, &buf); err == nil {
		t.Fatal("unknown query should fail")
	}
}

// TestCountFlag checks -count prints per-query counts without results,
// marked "direct" for unambiguous queries.
func TestCountFlag(t *testing.T) {
	out := runOut(t, "-tree", "(a (b) (a (b)))", "-query", "select:b", "-count",
		"-edits", "insert 0 b")
	if !strings.Contains(out, "2 result(s) [direct]") || !strings.Contains(out, "3 result(s) [direct]") {
		t.Fatalf("unexpected -count output:\n%s", out)
	}
	if strings.Contains(out, "⟨") {
		t.Fatalf("-count must not print assignments:\n%s", out)
	}
}

// TestPageFlag checks -page prints exactly the requested slice with
// absolute ranks.
func TestPageFlag(t *testing.T) {
	out := runOut(t, "-tree", "(a (b) (b) (b) (b))", "-query", "select:b", "-page", "1:2")
	if !strings.Contains(out, "#1 ") || !strings.Contains(out, "#2 ") {
		t.Fatalf("missing page ranks:\n%s", out)
	}
	if strings.Contains(out, "#0 ") || strings.Contains(out, "#3 ") {
		t.Fatalf("page printed out-of-range ranks:\n%s", out)
	}
	if !strings.Contains(out, "page 1:2 of 4 result(s)") {
		t.Fatalf("missing page footer:\n%s", out)
	}
}

// TestPageFlagValidation rejects malformed -page specs.
func TestPageFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tree", "(a (b))", "-query", "select:b", "-page", "oops"}, &buf); err == nil {
		t.Fatal("malformed -page accepted")
	}
	if err := run([]string{"-tree", "(a (b))", "-query", "select:b", "-page", "-1:5"}, &buf); err == nil {
		t.Fatal("negative -page offset accepted")
	}
}

// TestPageFlagTrailingGarbage rejects specs that parse a valid prefix.
func TestPageFlagTrailingGarbage(t *testing.T) {
	var buf bytes.Buffer
	for _, bad := range []string{"10:20:30", "10:20x", "x10:20", "10"} {
		if err := run([]string{"-tree", "(a (b))", "-query", "select:b", "-page", bad}, &buf); err == nil {
			t.Fatalf("-page %q accepted", bad)
		}
	}
}

// TestWatchFlag: -watch prints only the change per edit — one +/- line
// per answer gained/lost — instead of re-printing full results.
func TestWatchFlag(t *testing.T) {
	out := runOut(t, "-tree", "(a (b) (a (b)))", "-query", "select:b",
		"-watch", "-edits", "relabel 1 a; relabel 1 b; insert 2 b")
	for _, want := range []string{
		"-{<X0:n1>}", // relabel 1 a loses the answer at node 1
		"+{<X0:n1>}", // relabel 1 b regains it
		"+{<X0:n4>}", // insert 2 b gains the fresh node
		"0 added, 1 removed",
		"1 added, 0 removed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in -watch output:\n%s", want, out)
		}
	}
	// The base results print once; edits must NOT re-print result counts.
	if strings.Count(out, "result(s)") != 1 {
		t.Fatalf("-watch re-printed full results:\n%s", out)
	}
}

// TestWatchBatch: with -batch the whole edit stream is one publication,
// so -watch prints one composed delta (internal churn cancelled).
func TestWatchBatch(t *testing.T) {
	out := runOut(t, "-tree", "(a (b) (c))", "-query", "select:b", "-batch",
		"-watch", "-edits", "relabel 1 c; relabel 2 b")
	if !strings.Contains(out, "+{<X0:n2>}") || !strings.Contains(out, "-{<X0:n1>}") {
		t.Fatalf("missing batch delta lines:\n%s", out)
	}
	if !strings.Contains(out, "1 added, 1 removed") {
		t.Fatalf("missing delta footer:\n%s", out)
	}
}

// TestWatchMultiQuery: each standing query gets its own delta block.
func TestWatchMultiQuery(t *testing.T) {
	out := runOut(t, "-tree", "(a (b) (c))", "-query", "select:b", "-query", "select:c",
		"-watch", "-edits", "relabel 2 b")
	if !strings.Contains(out, "[select:b]") || !strings.Contains(out, "[select:c]") {
		t.Fatalf("missing per-query blocks:\n%s", out)
	}
	if !strings.Contains(out, "+{<X0:n2>}") || !strings.Contains(out, "-{<X0:n2>}") {
		t.Fatalf("missing per-query delta lines:\n%s", out)
	}
}

// TestWatchNeedsEdits rejects -watch without -edits.
func TestWatchNeedsEdits(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tree", "(a (b))", "-query", "select:b", "-watch"}, &buf); err == nil {
		t.Fatal("-watch without -edits accepted")
	}
}
