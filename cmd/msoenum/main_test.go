package main

import (
	"bytes"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, buf.String())
	}
	return buf.String()
}

// TestSelectQuery smoke-tests the basic select flow.
func TestSelectQuery(t *testing.T) {
	out := runOut(t, "-tree", "(a (b) (a (b)))", "-query", "select:b")
	if !strings.Contains(out, "2 result(s)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

// TestEditStream smoke-tests edit replay with per-edit re-enumeration.
func TestEditStream(t *testing.T) {
	out := runOut(t, "-tree", "(u (u (u)))", "-query", "ancestor:m:u:s",
		"-edits", "relabel 0 m; relabel 2 s", "-stats")
	if !strings.Contains(out, "0 result(s)") || !strings.Contains(out, "1 result(s)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "stats:") {
		t.Fatalf("missing stats:\n%s", out)
	}
}

// TestBatchMode smoke-tests the single-publication batch path.
func TestBatchMode(t *testing.T) {
	out := runOut(t, "-tree", "(a (b))", "-query", "select:b", "-batch",
		"-edits", "insert 0 b; relabel 1 a")
	if !strings.Contains(out, "after batch of 2 edits (snapshot v2)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// b at node 1 was relabeled away; the batch inserted one fresh b.
	if !strings.Contains(out, "1 result(s)") {
		t.Fatalf("unexpected result count:\n%s", out)
	}
}

// TestErrors covers flag validation and bad edits.
func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-query", "select:b"}, &buf); err == nil {
		t.Fatal("missing -tree should fail")
	}
	if err := run([]string{"-tree", "(a)", "-query", "select:b", "-edits", "explode 0"}, &buf); err == nil {
		t.Fatal("unknown edit should fail")
	}
	if err := run([]string{"-tree", "(a)", "-query", "nope:x"}, &buf); err == nil {
		t.Fatal("unknown query should fail")
	}
}
