// Command msoenum evaluates a query on a tree from the command line,
// optionally replaying a stream of edits, re-enumerating after each.
//
// Usage:
//
//	msoenum -tree '(a (b) (a (b)))' -query select:b
//	msoenum -tree '(u (u (u)))' -query ancestor:m:u:s \
//	        -edits 'relabel 0 m; relabel 2 s'
//
// Queries:
//
//	select:<label>              X0 selects a node with the label
//	ancestor:<m>:<u>:<s>        special s-nodes with an m-labeled proper
//	                            ancestor over alphabet {m,u,s} (Thm 9.2)
//	descdepth:<witness>:<k>     nodes with a witness-descendant at depth k
//	figure:<fig>:<cap>          fig-nodes with no cap child (MSO-compiled)
//
// Edits (semicolon-separated):
//
//	relabel <id> <label>
//	insert <id> <label>      (first child)
//	insertR <id> <label>     (right sibling)
//	delete <id>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	enumtrees "repro"
)

func main() {
	treeFlag := flag.String("tree", "", "tree as an S-expression, e.g. '(a (b))'")
	queryFlag := flag.String("query", "", "query spec (see -help)")
	editsFlag := flag.String("edits", "", "semicolon-separated edit stream")
	maxPrint := flag.Int("max", 20, "maximum results to print per enumeration")
	statsFlag := flag.Bool("stats", false, "print structure statistics")
	flag.Parse()

	if *treeFlag == "" || *queryFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	t, err := enumtrees.ParseTree(*treeFlag)
	if err != nil {
		log.Fatalf("tree: %v", err)
	}
	alphabet := collectLabels(t)
	q, err := buildQuery(*queryFlag, alphabet)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	e, err := enumtrees.New(t, q, enumtrees.Options{})
	if err != nil {
		log.Fatalf("preprocess: %v", err)
	}
	printResults(e, t, *maxPrint)

	if *editsFlag != "" {
		for _, ed := range strings.Split(*editsFlag, ";") {
			ed = strings.TrimSpace(ed)
			if ed == "" {
				continue
			}
			if err := applyEdit(e, ed); err != nil {
				log.Fatalf("edit %q: %v", ed, err)
			}
			fmt.Printf("\nafter %q: %s\n", ed, t)
			printResults(e, t, *maxPrint)
		}
	}
	if *statsFlag {
		fmt.Printf("\nstats: %+v\n", e.Stats())
	}
}

func collectLabels(t *enumtrees.Tree) []enumtrees.Label {
	seen := map[enumtrees.Label]bool{}
	var out []enumtrees.Label
	for _, n := range t.Nodes() {
		if !seen[n.Label] {
			seen[n.Label] = true
			out = append(out, n.Label)
		}
	}
	return out
}

func buildQuery(spec string, alphabet []enumtrees.Label) (*enumtrees.TreeAutomaton, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "select":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: select:<label>")
		}
		alphabet = withLabels(alphabet, enumtrees.Label(parts[1]))
		return enumtrees.SelectLabel(alphabet, enumtrees.Label(parts[1]), 0), nil
	case "ancestor":
		if len(parts) != 4 {
			return nil, fmt.Errorf("usage: ancestor:<marked>:<unmarked>:<special>")
		}
		return enumtrees.MarkedAncestor(
			enumtrees.Label(parts[1]), enumtrees.Label(parts[2]), enumtrees.Label(parts[3]), 0), nil
	case "descdepth":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: descdepth:<witness>:<k>")
		}
		k, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, err
		}
		alphabet = withLabels(alphabet, enumtrees.Label(parts[1]))
		return enumtrees.DescendantAtDepth(alphabet, enumtrees.Label(parts[1]), k, 0), nil
	case "figure":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: figure:<fig>:<cap>")
		}
		alphabet = withLabels(alphabet, enumtrees.Label(parts[1]), enumtrees.Label(parts[2]))
		phi := enumtrees.Conj(
			enumtrees.HasLabel{X: 0, Label: enumtrees.Label(parts[1])},
			enumtrees.Not{F: enumtrees.Exists{X: 1, F: enumtrees.Conj(
				enumtrees.Sing{X: 1},
				enumtrees.HasLabel{X: 1, Label: enumtrees.Label(parts[2])},
				enumtrees.Child{X: 0, Y: 1},
			)}},
		)
		return enumtrees.CompileMSOFirstOrder(phi, alphabet, 0)
	default:
		return nil, fmt.Errorf("unknown query kind %q", parts[0])
	}
}

func withLabels(alphabet []enumtrees.Label, ls ...enumtrees.Label) []enumtrees.Label {
	seen := map[enumtrees.Label]bool{}
	for _, l := range alphabet {
		seen[l] = true
	}
	for _, l := range ls {
		if !seen[l] {
			seen[l] = true
			alphabet = append(alphabet, l)
		}
	}
	return alphabet
}

func applyEdit(e *enumtrees.Enumerator, ed string) error {
	fields := strings.Fields(ed)
	if len(fields) < 2 {
		return fmt.Errorf("malformed edit")
	}
	id64, err := strconv.Atoi(fields[1])
	if err != nil {
		return err
	}
	id := enumtrees.NodeID(id64)
	switch fields[0] {
	case "relabel":
		if len(fields) != 3 {
			return fmt.Errorf("usage: relabel <id> <label>")
		}
		return e.Relabel(id, enumtrees.Label(fields[2]))
	case "insert":
		if len(fields) != 3 {
			return fmt.Errorf("usage: insert <id> <label>")
		}
		v, err := e.InsertFirstChild(id, enumtrees.Label(fields[2]))
		if err == nil {
			fmt.Printf("  (new node %d)\n", v)
		}
		return err
	case "insertR":
		if len(fields) != 3 {
			return fmt.Errorf("usage: insertR <id> <label>")
		}
		v, err := e.InsertRightSibling(id, enumtrees.Label(fields[2]))
		if err == nil {
			fmt.Printf("  (new node %d)\n", v)
		}
		return err
	case "delete":
		return e.Delete(id)
	default:
		return fmt.Errorf("unknown edit %q", fields[0])
	}
}

func printResults(e *enumtrees.Enumerator, t *enumtrees.Tree, max int) {
	n := 0
	for asg := range e.Results() {
		if n < max {
			fmt.Printf("  %v\n", asg)
		}
		n++
	}
	if n > max {
		fmt.Printf("  … %d more\n", n-max)
	}
	fmt.Printf("%d result(s)\n", n)
}
