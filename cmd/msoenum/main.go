// Command msoenum evaluates one or more queries on a tree from the
// command line, optionally replaying a stream of edits, re-enumerating
// after each. It runs on the multi-query snapshot engine: all queries
// stand on ONE maintained structure, every edit publishes ONE
// MultiSnapshot covering them all, and the results are read from it.
//
// Usage:
//
//	msoenum -tree '(a (b) (a (b)))' -query select:b
//	msoenum -tree '(u (u (u)))' -query ancestor:m:u:s \
//	        -edits 'relabel 0 m; relabel 2 s'
//	msoenum -tree '(a (b))' -query select:b -batch \
//	        -edits 'insert 0 b; relabel 1 a'
//	msoenum -tree '(a (b) (c))' -query select:b -query select:c \
//	        -edits 'relabel 2 b'       # two standing queries, shared trunk
//
// Repeating an identical query spec engages the multi-query optimizer:
// content-equal queries are deduped onto one refcounted pipeline, and a
// one-line "shared pipeline" note reports how many registrations were
// served without building (repair cost per edit scales with pipelines,
// not with registered queries).
//
// Queries (-query is repeatable; each one becomes a standing query):
//
//	select:<label>              X0 selects a node with the label
//	ancestor:<m>:<u>:<s>        special s-nodes with an m-labeled proper
//	                            ancestor over alphabet {m,u,s} (Thm 9.2)
//	descdepth:<witness>:<k>     nodes with a witness-descendant at depth k
//	figure:<fig>:<cap>          fig-nodes with no cap child (MSO-compiled)
//
// Edits (semicolon-separated):
//
//	relabel <id> <label>
//	insert <id> <label>      (first child)
//	insertR <id> <label>     (right sibling)
//	delete <id>
//
// Structural edits splice whole subtrees in O(log n + boundary),
// preserving the node IDs of moved subtrees:
//
//	deleteSub <id>              delete the whole subtree of <id>
//	moveSub <id> <dest>         move it to be <dest>'s first child subtree
//	moveSubR <id> <dest>        move it to be <dest>'s right sibling
//	insertSub <id> <sexpr>      graft a fragment as <id>'s first child,
//	insertSubR <id> <sexpr>     ... or right sibling, e.g.
//	                            'insertSub 0 (a (b) (c))'
//
// With -batch the whole edit stream is applied as one QuerySet.ApplyBatch
// call: a single publication, with box and index repair amortized across
// the batch (and the term work shared across all standing queries), and
// one enumeration per query at the end.
//
// Direct access (no enumeration cost):
//
//	-count          print only the result count per query, read from the
//	                maintained counting semiring in O(poly|Q|) when the
//	                query is unambiguous (marked "direct")
//	-page OFF:LIM   print results OFF..OFF+LIM-1 by count-guided descent
//	                — "page 1000000:20" costs the same as "0:20" on
//	                direct-access queries
//
// Parallel enumeration:
//
//	-jobs N         drain full result sets with N workers (0 = all
//	                cores): the rank range [0, Count()) is partitioned
//	                across per-worker count-guided descents and streamed
//	                back in enumeration order via Snapshot.Chunks
//
// Answer-delta streaming:
//
//	-watch          with -edits: print the initial results once, then per
//	                edit (or per batch with -batch) only the CHANGE — one
//	                "+assignment" line per answer gained, one
//	                "-assignment" line per answer lost — read from the
//	                engine's Subscribe stream, which computes deltas on
//	                the write path in time proportional to the change,
//	                not the answer-set size
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	enumtrees "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "msoenum:", err)
		os.Exit(1)
	}
}

// queryList collects repeated -query flags.
type queryList []string

func (q *queryList) String() string { return strings.Join(*q, ",") }

func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

// standing is one registered query: its CLI spec and its ID in the set.
type standing struct {
	spec string
	id   enumtrees.QueryID
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("msoenum", flag.ContinueOnError)
	treeFlag := fs.String("tree", "", "tree as an S-expression, e.g. '(a (b))'")
	var queryFlags queryList
	fs.Var(&queryFlags, "query", "query spec (repeatable; see -help)")
	editsFlag := fs.String("edits", "", "semicolon-separated edit stream")
	batchFlag := fs.Bool("batch", false, "apply the edit stream as one batched update")
	maxPrint := fs.Int("max", 20, "maximum results to print per enumeration")
	statsFlag := fs.Bool("stats", false, "print structure statistics")
	countFlag := fs.Bool("count", false, "print only result counts (O(poly|Q|) for unambiguous queries)")
	pageFlag := fs.String("page", "", "print results OFF:LIM by direct access instead of the first -max")
	jobsFlag := fs.Int("jobs", 1, "workers for full-result drains (0 = all cores); order is preserved")
	watchFlag := fs.Bool("watch", false, "with -edits: stream per-edit answer deltas (+/- lines) instead of re-printing results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *watchFlag && *editsFlag == "" {
		return fmt.Errorf("-watch needs -edits")
	}
	if *jobsFlag < 0 {
		return fmt.Errorf("-jobs wants N >= 0")
	}
	view := printView{count: *countFlag, pageOff: -1, max: *maxPrint, jobs: *jobsFlag}
	if *pageFlag != "" {
		offStr, limStr, ok := strings.Cut(*pageFlag, ":")
		off, errOff := strconv.Atoi(offStr)
		lim, errLim := strconv.Atoi(limStr)
		if !ok || errOff != nil || errLim != nil {
			return fmt.Errorf("-page wants OFF:LIM, got %q", *pageFlag)
		}
		if off < 0 || lim <= 0 {
			return fmt.Errorf("-page wants OFF >= 0 and LIM > 0")
		}
		view.pageOff, view.pageLim = off, lim
	}

	if *treeFlag == "" || len(queryFlags) == 0 {
		fs.Usage()
		return fmt.Errorf("-tree and at least one -query are required")
	}
	t, err := enumtrees.ParseTree(*treeFlag)
	if err != nil {
		return fmt.Errorf("tree: %w", err)
	}
	alphabet := collectLabels(t)
	qs := enumtrees.NewQuerySet(t)
	queries := make([]standing, 0, len(queryFlags))
	for _, spec := range queryFlags {
		q, err := buildQuery(spec, alphabet)
		if err != nil {
			return fmt.Errorf("query %q: %w", spec, err)
		}
		id, err := qs.Register(q, enumtrees.Options{})
		if err != nil {
			return fmt.Errorf("preprocess %q: %w", spec, err)
		}
		queries = append(queries, standing{spec: spec, id: id})
	}
	// Content-equal queries are deduped onto one refcounted pipeline by
	// the multi-query optimizer; say so, since the repair cost the user
	// pays per edit scales with pipelines, not registered queries.
	if st := qs.Stats(); st.RegistrationsDeduped > 0 {
		fmt.Fprintf(w, "shared pipeline: %d of %d queries deduped onto %d pipeline(s)\n",
			st.RegistrationsDeduped, st.Queries, st.Pipelines)
	}
	printAll(w, qs.Snapshot(), queries, view)

	// -watch: one Subscribe stream per standing query. The first delta of
	// a subscription is the base-version resync; the base results were
	// just printed, so it is consumed and dropped here, and every
	// publication below prints only its +/- lines.
	var watchers []<-chan enumtrees.Delta
	if *watchFlag {
		for _, q := range queries {
			ch, err := qs.Subscribe(q.id)
			if err != nil {
				return fmt.Errorf("subscribe %q: %w", q.spec, err)
			}
			<-ch
			watchers = append(watchers, ch)
		}
	}

	if *editsFlag != "" {
		var edits []string
		for _, ed := range strings.Split(*editsFlag, ";") {
			if ed = strings.TrimSpace(ed); ed != "" {
				edits = append(edits, ed)
			}
		}
		if *batchFlag {
			batch := make([]enumtrees.Update, 0, len(edits))
			for _, ed := range edits {
				u, err := parseEdit(ed)
				if err != nil {
					return fmt.Errorf("edit %q: %w", ed, err)
				}
				batch = append(batch, u)
			}
			m, ids, err := qs.ApplyBatch(batch)
			if err != nil {
				return err
			}
			for _, id := range ids {
				if id != enumtrees.InvalidNode {
					fmt.Fprintf(w, "  (new node %d)\n", id)
				}
			}
			fmt.Fprintf(w, "\nafter batch of %d edits (snapshot v%d): %s\n", len(batch), m.Version(), t)
			if *watchFlag {
				printDeltas(w, m.Version(), queries, watchers)
			} else {
				printAll(w, m, queries, view)
			}
		} else {
			for _, ed := range edits {
				m, err := applyEdit(w, qs, ed)
				if err != nil {
					return fmt.Errorf("edit %q: %w", ed, err)
				}
				fmt.Fprintf(w, "\nafter %q: %s\n", ed, t)
				if *watchFlag {
					printDeltas(w, m.Version(), queries, watchers)
				} else {
					printAll(w, m, queries, view)
				}
			}
		}
	}
	if *statsFlag {
		m := qs.Snapshot()
		for _, q := range queries {
			if len(queries) == 1 {
				fmt.Fprintf(w, "\nstats: %+v\n", m.Query(q.id).Stats())
			} else {
				fmt.Fprintf(w, "\nstats [%s]: %+v\n", q.spec, m.Query(q.id).Stats())
			}
		}
	}
	return nil
}

func collectLabels(t *enumtrees.Tree) []enumtrees.Label {
	seen := map[enumtrees.Label]bool{}
	var out []enumtrees.Label
	for _, n := range t.Nodes() {
		if !seen[n.Label] {
			seen[n.Label] = true
			out = append(out, n.Label)
		}
	}
	return out
}

func buildQuery(spec string, alphabet []enumtrees.Label) (*enumtrees.TreeAutomaton, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "select":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: select:<label>")
		}
		alphabet = withLabels(alphabet, enumtrees.Label(parts[1]))
		return enumtrees.SelectLabel(alphabet, enumtrees.Label(parts[1]), 0), nil
	case "ancestor":
		if len(parts) != 4 {
			return nil, fmt.Errorf("usage: ancestor:<marked>:<unmarked>:<special>")
		}
		return enumtrees.MarkedAncestor(
			enumtrees.Label(parts[1]), enumtrees.Label(parts[2]), enumtrees.Label(parts[3]), 0), nil
	case "descdepth":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: descdepth:<witness>:<k>")
		}
		k, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, err
		}
		alphabet = withLabels(alphabet, enumtrees.Label(parts[1]))
		return enumtrees.DescendantAtDepth(alphabet, enumtrees.Label(parts[1]), k, 0), nil
	case "figure":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: figure:<fig>:<cap>")
		}
		alphabet = withLabels(alphabet, enumtrees.Label(parts[1]), enumtrees.Label(parts[2]))
		phi := enumtrees.Conj(
			enumtrees.HasLabel{X: 0, Label: enumtrees.Label(parts[1])},
			enumtrees.Not{F: enumtrees.Exists{X: 1, F: enumtrees.Conj(
				enumtrees.Sing{X: 1},
				enumtrees.HasLabel{X: 1, Label: enumtrees.Label(parts[2])},
				enumtrees.Child{X: 0, Y: 1},
			)}},
		)
		return enumtrees.CompileMSOFirstOrder(phi, alphabet, 0)
	default:
		return nil, fmt.Errorf("unknown query kind %q", parts[0])
	}
}

func withLabels(alphabet []enumtrees.Label, ls ...enumtrees.Label) []enumtrees.Label {
	seen := map[enumtrees.Label]bool{}
	for _, l := range alphabet {
		seen[l] = true
	}
	for _, l := range ls {
		if !seen[l] {
			seen[l] = true
			alphabet = append(alphabet, l)
		}
	}
	return alphabet
}

// parseEdit turns one textual edit into a batch update.
func parseEdit(ed string) (enumtrees.Update, error) {
	fields := strings.Fields(ed)
	if len(fields) < 2 {
		return enumtrees.Update{}, fmt.Errorf("malformed edit")
	}
	id64, err := strconv.Atoi(fields[1])
	if err != nil {
		return enumtrees.Update{}, err
	}
	u := enumtrees.Update{Node: enumtrees.NodeID(id64)}
	switch fields[0] {
	case "relabel", "insert", "insertR":
		if len(fields) != 3 {
			return enumtrees.Update{}, fmt.Errorf("usage: %s <id> <label>", fields[0])
		}
		u.Label = enumtrees.Label(fields[2])
		switch fields[0] {
		case "relabel":
			u.Op = enumtrees.OpRelabel
		case "insert":
			u.Op = enumtrees.OpInsertFirstChild
		default:
			u.Op = enumtrees.OpInsertRightSibling
		}
	case "delete":
		u.Op = enumtrees.OpDelete
	case "deleteSub":
		u.Op = enumtrees.OpDeleteSubtree
	case "moveSub", "moveSubR":
		if len(fields) != 3 {
			return enumtrees.Update{}, fmt.Errorf("usage: %s <id> <dest>", fields[0])
		}
		dest, err := strconv.Atoi(fields[2])
		if err != nil {
			return enumtrees.Update{}, err
		}
		u.Dest = enumtrees.NodeID(dest)
		u.Op = enumtrees.OpMoveSubtreeFirstChild
		if fields[0] == "moveSubR" {
			u.Op = enumtrees.OpMoveSubtreeRightSibling
		}
	case "insertSub", "insertSubR":
		frag, err := enumtrees.ParseTree(strings.Join(fields[2:], " "))
		if err != nil {
			return enumtrees.Update{}, fmt.Errorf("fragment: %w", err)
		}
		u.Fragment = frag
		u.Op = enumtrees.OpInsertSubtreeFirstChild
		if fields[0] == "insertSubR" {
			u.Op = enumtrees.OpInsertSubtreeRightSibling
		}
	default:
		return enumtrees.Update{}, fmt.Errorf("unknown edit %q", fields[0])
	}
	return u, nil
}

func applyEdit(w io.Writer, qs *enumtrees.QuerySet, ed string) (*enumtrees.MultiSnapshot, error) {
	u, err := parseEdit(ed)
	if err != nil {
		return nil, err
	}
	switch u.Op {
	case enumtrees.OpRelabel:
		return qs.Relabel(u.Node, u.Label)
	case enumtrees.OpInsertFirstChild:
		v, m, err := qs.InsertFirstChild(u.Node, u.Label)
		if err == nil {
			fmt.Fprintf(w, "  (new node %d)\n", v)
		}
		return m, err
	case enumtrees.OpInsertRightSibling:
		v, m, err := qs.InsertRightSibling(u.Node, u.Label)
		if err == nil {
			fmt.Fprintf(w, "  (new node %d)\n", v)
		}
		return m, err
	case enumtrees.OpDeleteSubtree:
		return qs.DeleteSubtree(u.Node)
	case enumtrees.OpMoveSubtreeFirstChild:
		return qs.MoveSubtreeFirstChild(u.Node, u.Dest)
	case enumtrees.OpMoveSubtreeRightSibling:
		return qs.MoveSubtreeRightSibling(u.Node, u.Dest)
	case enumtrees.OpInsertSubtreeFirstChild:
		v, m, err := qs.InsertSubtreeFirstChild(u.Node, u.Fragment)
		if err == nil {
			fmt.Fprintf(w, "  (new subtree %d)\n", v)
		}
		return m, err
	case enumtrees.OpInsertSubtreeRightSibling:
		v, m, err := qs.InsertSubtreeRightSibling(u.Node, u.Fragment)
		if err == nil {
			fmt.Fprintf(w, "  (new subtree %d)\n", v)
		}
		return m, err
	default:
		return qs.Delete(u.Node)
	}
}

// printView selects what printResults shows: the default prefix of the
// enumeration, only the count (-count), or one direct-access page
// (-page OFF:LIM). jobs != 1 drains full results through the parallel
// rank-partitioned path (-jobs N).
type printView struct {
	count   bool
	pageOff int
	pageLim int
	max     int
	jobs    int
}

// printDeltas drains each query's Subscribe stream up to the just-
// published version and prints only the change: one "+assignment" line
// per answer gained, one "-assignment" line per answer lost (both
// sorted by key). A resync delta (possible if the terminal consumer
// ever fell far behind) prints the re-established result count instead.
func printDeltas(w io.Writer, target uint64, queries []standing, chans []<-chan enumtrees.Delta) {
	for i, q := range queries {
		if len(queries) > 1 {
			fmt.Fprintf(w, "[%s]\n", q.spec)
		}
		adds, rems := 0, 0
		for v := uint64(0); v < target; {
			d, ok := <-chans[i]
			if !ok {
				return
			}
			if d.Resync != nil {
				fmt.Fprintf(w, "  (resync: %d result(s) at v%d)\n", d.Resync.Count(), d.Version)
			}
			for _, a := range d.Added {
				fmt.Fprintf(w, "  +%v\n", a)
				adds++
			}
			for _, a := range d.Removed {
				fmt.Fprintf(w, "  -%v\n", a)
				rems++
			}
			v = d.Version
		}
		fmt.Fprintf(w, "%d added, %d removed\n", adds, rems)
	}
}

// printAll prints each standing query's results; with several queries
// every block is prefixed by the query's spec.
func printAll(w io.Writer, m *enumtrees.MultiSnapshot, queries []standing, v printView) {
	for _, q := range queries {
		if len(queries) > 1 {
			fmt.Fprintf(w, "[%s]\n", q.spec)
		}
		printResults(w, m.Query(q.id), v)
	}
}

func printResults(w io.Writer, snap *enumtrees.Snapshot, v printView) {
	if v.count {
		how := "drained"
		if snap.DirectAccess() {
			how = "direct"
		}
		fmt.Fprintf(w, "%d result(s) [%s]\n", snap.Count(), how)
		return
	}
	if v.pageOff >= 0 {
		for i, asg := range snap.Page(v.pageOff, v.pageLim) {
			fmt.Fprintf(w, "  #%d %v\n", v.pageOff+i, asg)
		}
		fmt.Fprintf(w, "page %d:%d of %d result(s)\n", v.pageOff, v.pageLim, snap.Count())
		return
	}
	n := 0
	if v.jobs != 1 {
		// Parallel drain: workers materialize disjoint rank ranges by
		// count-guided descent; Chunks streams them back in enumeration
		// order, so the printed prefix is identical to Results().
		for chunk := range snap.Chunks(v.jobs, 256) {
			for _, asg := range chunk {
				if n < v.max {
					fmt.Fprintf(w, "  %v\n", asg)
				}
				n++
			}
		}
	} else {
		for asg := range snap.Results() {
			if n < v.max {
				fmt.Fprintf(w, "  %v\n", asg)
			}
			n++
		}
	}
	if n > v.max {
		fmt.Fprintf(w, "  … %d more\n", n-v.max)
	}
	fmt.Fprintf(w, "%d result(s)\n", n)
}
