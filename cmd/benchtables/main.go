// Command benchtables regenerates every table of EXPERIMENTS.md by
// running the experiment harness and printing markdown.
//
// Usage:
//
//	benchtables              # full sizes (minutes)
//	benchtables -quick       # reduced sizes (tens of seconds)
//	benchtables -only E4,E7  # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced input sizes")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E4,T2)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	all := map[string]func() experiments.Table{
		"E1":  func() experiments.Table { return experiments.E1Table1(*quick) },
		"E2":  func() experiments.Table { return experiments.E2Preprocessing(*quick) },
		"E3":  func() experiments.Table { return experiments.E3Delay(*quick) },
		"E4":  func() experiments.Table { return experiments.E4Updates(*quick) },
		"E5":  func() experiments.Table { return experiments.E5Combined(*quick) },
		"E6":  func() experiments.Table { return experiments.E6Words(*quick) },
		"E7":  func() experiments.Table { return experiments.E7MarkedAncestor(*quick) },
		"E8":  func() experiments.Table { return experiments.E8JumpAblation(*quick) },
		"E9":  func() experiments.Table { return experiments.E9CircuitSize(*quick) },
		"E10": func() experiments.Table { return experiments.E10MatMul(*quick) },
		"T1":  experiments.T1Homogenize,
		"T2":  experiments.T2Translation,
		"F1":  experiments.F1Order,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "T1", "T2", "F1"}

	start := time.Now()
	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		t0 := time.Now()
		tb := all[id]()
		fmt.Println(tb.Markdown())
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "[total %v]\n", time.Since(start).Round(time.Millisecond))
}
