// Command benchtables regenerates the experiment tables by running the
// experiment harness and printing markdown, and can emit the
// machine-readable concurrent-readers baseline for the perf trajectory.
//
// Usage:
//
//	benchtables              # full sizes (minutes)
//	benchtables -quick       # reduced sizes (tens of seconds)
//	benchtables -only E4,E7  # a subset
//	benchtables -concurrent BENCH_concurrent.json
//	                         # run the concurrent-readers experiment and
//	                         # write its JSON baseline (also printed as a
//	                         # markdown table); combine with -quick/-only
//	benchtables -multiquery BENCH_multiquery.json
//	                         # run the multi-query experiment (C2: shared
//	                         # QuerySet vs k independent engines, plus the
//	                         # duplicate-heavy C2-dup sweep: k registrations
//	                         # over d distinct specs, pipeline dedupe vs
//	                         # NoDedupe) and write its JSON baseline
//	benchtables -directaccess BENCH_directaccess.json
//	                         # run the direct-access experiment (D1: Count
//	                         # and At(j) latency vs answer-set size, engine
//	                         # vs drain) and write its JSON baseline
//	benchtables -parallel BENCH_parallel.json
//	                         # run the parallel-write-path experiment (C3:
//	                         # per-edit publish latency vs standing queries
//	                         # for workers ∈ {1,4,8}) and write its JSON
//	                         # baseline
//	benchtables -enumparallel BENCH_enum_parallel.json
//	                         # run the parallel-enumeration experiment
//	                         # (E1-par: full-result materialization via
//	                         # All / ParallelAll(w) / Chunks) and write
//	                         # its JSON baseline
//	benchtables -structural BENCH_structural.json
//	                         # run the structural-edit experiment (S1:
//	                         # subtree-move cost vs moved size, S2:
//	                         # BulkLoad vs sequential construction, S3:
//	                         # weighted structural workload with rebalance
//	                         # accounting) and write its JSON baseline
//	benchtables -delta BENCH_delta.json
//	                         # run the answer-delta streaming experiment
//	                         # (E-delta: per-publication subscriber cost
//	                         # vs changed-answer count, plus the scale
//	                         # sweep pinning the change at 2 answers)
//	                         # and write its JSON baseline
//	benchtables -kernels BENCH_kernels.json
//	                         # run the vectorized-kernel experiment
//	                         # (E-kernel: AVX2/POPCNT dispatch vs the
//	                         # portable Go loops, kernel-level ns/op and
//	                         # end-to-end repair/drain, with the host's
//	                         # CPU feature flags recorded) and write its
//	                         # JSON baseline
//	benchtables -build BENCH_build.json
//	                         # run the box-construction experiment (B1:
//	                         # build throughput plus per-update repair ns
//	                         # and allocs, pruned vs full rebuild) and
//	                         # write its JSON baseline; add
//	                         # -buildref OLD.json to embed a previous
//	                         # run's numbers as the comparison reference
//	benchtables -cpuprofile cpu.pprof -memprofile mem.pprof ...
//	                         # write pprof profiles covering whatever
//	                         # experiments the other flags select, so perf
//	                         # changes can attach profile evidence
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run reduced input sizes")
	only := fs.String("only", "", "comma-separated experiment IDs (e.g. E1,E4,T2)")
	concurrent := fs.String("concurrent", "", "run the concurrent-readers experiment and write its JSON baseline to this path")
	multiquery := fs.String("multiquery", "", "run the multi-query experiment and write its JSON baseline to this path")
	directaccess := fs.String("directaccess", "", "run the direct-access experiment and write its JSON baseline to this path")
	parallel := fs.String("parallel", "", "run the parallel-write-path experiment and write its JSON baseline to this path")
	enumparallel := fs.String("enumparallel", "", "run the parallel-enumeration experiment and write its JSON baseline to this path")
	structural := fs.String("structural", "", "run the structural-edit experiment and write its JSON baseline to this path")
	delta := fs.String("delta", "", "run the answer-delta streaming experiment and write its JSON baseline to this path")
	kernels := fs.String("kernels", "", "run the vectorized-kernel experiment and write its JSON baseline to this path")
	build := fs.String("build", "", "run the box-construction experiment and write its JSON baseline to this path")
	buildref := fs.String("buildref", "", "embed a previous -build baseline (its \"current\" run) as the pre-PR reference of this -build run")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this path")
	memprofile := fs.String("memprofile", "", "write a heap profile taken after the selected experiments to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The memprofile defer is registered FIRST so that (LIFO) the CPU
	// profile is stopped before the heap snapshot's forced GC runs —
	// otherwise the GC and profile write would be sampled into the CPU
	// profile this flag exists to keep honest.
	if *memprofile != "" {
		defer func() {
			// Propagate a failed profile write through the named return:
			// the flag exists to produce evidence, so a missing artifact
			// must fail the run, not just print a note.
			f, ferr := os.Create(*memprofile)
			if ferr != nil {
				err = errors.Join(err, fmt.Errorf("memprofile: %w", ferr))
				return
			}
			defer f.Close()
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				err = errors.Join(err, fmt.Errorf("memprofile: %w", werr))
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	all := map[string]func() experiments.Table{
		"E1":  func() experiments.Table { return experiments.E1Table1(*quick) },
		"E2":  func() experiments.Table { return experiments.E2Preprocessing(*quick) },
		"E3":  func() experiments.Table { return experiments.E3Delay(*quick) },
		"E4":  func() experiments.Table { return experiments.E4Updates(*quick) },
		"E5":  func() experiments.Table { return experiments.E5Combined(*quick) },
		"E6":  func() experiments.Table { return experiments.E6Words(*quick) },
		"E7":  func() experiments.Table { return experiments.E7MarkedAncestor(*quick) },
		"E8":  func() experiments.Table { return experiments.E8JumpAblation(*quick) },
		"E9":  func() experiments.Table { return experiments.E9CircuitSize(*quick) },
		"E10": func() experiments.Table { return experiments.E10MatMul(*quick) },
		"T1":  experiments.T1Homogenize,
		"T2":  experiments.T2Translation,
		"F1":  experiments.F1Order,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "T1", "T2", "F1"}

	start := time.Now()
	// Baseline flags alone skip the table sweep unless IDs were
	// requested.
	runTables := (*concurrent == "" && *multiquery == "" && *directaccess == "" && *parallel == "" && *enumparallel == "" && *structural == "" && *delta == "" && *kernels == "" && *build == "") || len(want) > 0
	if runTables {
		for _, id := range order {
			if len(want) > 0 && !want[id] {
				continue
			}
			t0 := time.Now()
			tb := all[id]()
			fmt.Fprintln(stdout, tb.Markdown())
			fmt.Fprintf(stderr, "[%s done in %v]\n", id, time.Since(t0).Round(time.Millisecond))
		}
	}
	if *concurrent != "" {
		t0 := time.Now()
		base := experiments.ConcurrentReaders(*quick)
		fmt.Fprintln(stdout, base.Table().Markdown())
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*concurrent, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[C1 done in %v, baseline written to %s]\n",
			time.Since(t0).Round(time.Millisecond), *concurrent)
	}
	if *multiquery != "" {
		t0 := time.Now()
		base := experiments.MultiQuery(*quick)
		fmt.Fprintln(stdout, base.Table().Markdown())
		fmt.Fprintln(stdout, base.DuplicateTable().Markdown())
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*multiquery, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[C2 done in %v, baseline written to %s]\n",
			time.Since(t0).Round(time.Millisecond), *multiquery)
	}
	if *directaccess != "" {
		t0 := time.Now()
		base := experiments.DirectAccess(*quick)
		fmt.Fprintln(stdout, base.Table().Markdown())
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*directaccess, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[D1 done in %v, baseline written to %s]\n",
			time.Since(t0).Round(time.Millisecond), *directaccess)
	}
	// The speedup columns of both parallel experiments are meaningless
	// on one core: warn loudly instead of silently committing ~1×
	// baselines (the JSONs still record cpus/gomaxprocs either way).
	if (*parallel != "" || *enumparallel != "") && runtime.NumCPU() == 1 {
		fmt.Fprintln(stderr, "benchtables: WARNING: runtime.NumCPU() == 1 — workers time-share one core, "+
			"speedup columns will sit near 1x; re-record on multi-core hardware for meaningful scaling numbers")
	}
	if *parallel != "" {
		t0 := time.Now()
		base := experiments.Parallel(*quick)
		fmt.Fprintln(stdout, base.Table().Markdown())
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*parallel, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[C3 done in %v, baseline written to %s]\n",
			time.Since(t0).Round(time.Millisecond), *parallel)
	}
	if *enumparallel != "" {
		t0 := time.Now()
		base := experiments.EnumParallel(*quick)
		fmt.Fprintln(stdout, base.Table().Markdown())
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*enumparallel, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[E1-par done in %v, baseline written to %s]\n",
			time.Since(t0).Round(time.Millisecond), *enumparallel)
	}
	if *structural != "" {
		t0 := time.Now()
		base := experiments.Structural(*quick)
		fmt.Fprintln(stdout, base.MoveTable().Markdown())
		fmt.Fprintln(stdout, base.BulkTable().Markdown())
		fmt.Fprintln(stdout, base.MixTable().Markdown())
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*structural, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[E-struct done in %v, baseline written to %s]\n",
			time.Since(t0).Round(time.Millisecond), *structural)
	}
	if *delta != "" {
		t0 := time.Now()
		base := experiments.Delta(*quick)
		fmt.Fprintln(stdout, base.Table().Markdown())
		fmt.Fprintln(stdout, base.ScaleTable().Markdown())
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*delta, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[E-delta done in %v, baseline written to %s]\n",
			time.Since(t0).Round(time.Millisecond), *delta)
	}
	if *kernels != "" {
		t0 := time.Now()
		base := experiments.Kernels(*quick)
		fmt.Fprintln(stdout, base.Table().Markdown())
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*kernels, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[E-kernel done in %v, baseline written to %s]\n",
			time.Since(t0).Round(time.Millisecond), *kernels)
	}
	if *build != "" {
		t0 := time.Now()
		base := experiments.Build(*quick)
		if *buildref != "" {
			data, err := os.ReadFile(*buildref)
			if err != nil {
				return err
			}
			var ref experiments.BuildBaseline
			if err := json.Unmarshal(data, &ref); err != nil {
				return fmt.Errorf("parsing -buildref %s: %w", *buildref, err)
			}
			base.PrePR = &ref.Current
		}
		fmt.Fprintln(stdout, base.Table().Markdown())
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*build, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[B1 done in %v, baseline written to %s]\n",
			time.Since(t0).Round(time.Millisecond), *build)
	}
	fmt.Fprintf(stderr, "[total %v]\n", time.Since(start).Round(time.Millisecond))
	return nil
}
