package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestTablesSubset smoke-tests the markdown table path on a fast
// experiment.
func TestTablesSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quick", "-only", "E10"}, &stdout, &stderr); err != nil {
		t.Fatalf("%v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "E10") {
		t.Fatalf("missing E10 table:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "E1 ·") {
		t.Fatal("-only did not filter")
	}
}

// TestConcurrentBaseline smoke-tests the BENCH_concurrent.json emitter:
// the file must exist and decode with the expected reader sweep.
func TestConcurrentBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_concurrent.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quick", "-concurrent", path}, &stdout, &stderr); err != nil {
		t.Fatalf("%v\nstderr: %s", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base experiments.ConcurrentBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("invalid JSON baseline: %v", err)
	}
	if len(base.Points) != 3 {
		t.Fatalf("baseline has %d points, want 3 (1/4/16 readers)", len(base.Points))
	}
	for i, readers := range []int{1, 4, 16} {
		p := base.Points[i]
		if p.Readers != readers {
			t.Fatalf("point %d: readers = %d, want %d", i, p.Readers, readers)
		}
		if p.Results <= 0 || p.ResultsPerSecond <= 0 {
			t.Fatalf("point %d: no throughput measured: %+v", i, p)
		}
		if p.Updates <= 0 {
			t.Fatalf("point %d: writer applied no updates: %+v", i, p)
		}
	}
	// The concurrent run must also print its markdown table.
	if !strings.Contains(stdout.String(), "Concurrent snapshot readers") {
		t.Fatalf("missing C1 table:\n%s", stdout.String())
	}
}

// TestParallelBaseline smoke-tests the BENCH_parallel.json emitter (C3):
// the file must decode with the full (queries × workers) sweep, positive
// latencies, and speedup normalized to 1 on the serial rows.
func TestParallelBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quick", "-parallel", path}, &stdout, &stderr); err != nil {
		t.Fatalf("%v\nstderr: %s", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base experiments.ParallelBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("invalid JSON baseline: %v", err)
	}
	if len(base.Points) != 9 {
		t.Fatalf("baseline has %d points, want 9 (k in {1,4,16} x workers in {1,4,8})", len(base.Points))
	}
	if base.CPUs <= 0 || base.GoMaxProcs <= 0 || len(base.QuerySpecs) != 16 {
		t.Fatalf("environment/query metadata missing: %+v", base)
	}
	i := 0
	for _, k := range []int{1, 4, 16} {
		for _, w := range []int{1, 4, 8} {
			p := base.Points[i]
			i++
			if p.Queries != k || p.Workers != w {
				t.Fatalf("point %d is (k=%d, w=%d), want (k=%d, w=%d)", i-1, p.Queries, p.Workers, k, w)
			}
			if p.MicrosPerEdit <= 0 || p.Speedup <= 0 {
				t.Fatalf("point %d: no latency measured: %+v", i-1, p)
			}
			if w == 1 && p.Speedup != 1 {
				t.Fatalf("point %d: serial speedup = %v, want 1", i-1, p.Speedup)
			}
		}
	}
	if !strings.Contains(stdout.String(), "Parallel write path") {
		t.Fatalf("missing C3 table:\n%s", stdout.String())
	}
}

// TestBuildBaseline smoke-tests the B1 emitter end to end: the first run
// writes a baseline, the second embeds it via -buildref and writes pprof
// profiles.
func TestBuildBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_build.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quick", "-build", path}, &stdout, &stderr); err != nil {
		t.Fatalf("%v\nstderr: %s", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base experiments.BuildBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("invalid JSON baseline: %v", err)
	}
	if base.PrePR != nil {
		t.Fatal("first run must not carry a pre-PR reference")
	}
	if base.Current.Boxes <= 0 || base.Current.BoxesPerSec <= 0 {
		t.Fatalf("no build throughput measured: %+v", base.Current)
	}
	if len(base.Current.Repairs) != 4 {
		t.Fatalf("baseline has %d repair rows, want 4", len(base.Current.Repairs))
	}
	for i, p := range base.Current.Repairs {
		if p.NanosPerEdit <= 0 {
			t.Fatalf("repair row %d: no latency measured: %+v", i, p)
		}
		if p.FullRebuild && p.ReusedPerEdit != 0 {
			t.Fatalf("repair row %d: FullRebuild engine reused boxes: %+v", i, p)
		}
		if !p.FullRebuild && p.Workload == "relabel-neutral" && p.ReusedPerEdit == 0 {
			t.Fatalf("repair row %d: neutral stream never reused a box: %+v", i, p)
		}
	}

	ref := filepath.Join(dir, "BENCH_build2.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stdout.Reset()
	stderr.Reset()
	if err := run([]string{"-quick", "-build", ref, "-buildref", path, "-cpuprofile", cpu, "-memprofile", mem}, &stdout, &stderr); err != nil {
		t.Fatalf("%v\nstderr: %s", err, stderr.String())
	}
	data, err = os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	var withRef experiments.BuildBaseline
	if err := json.Unmarshal(data, &withRef); err != nil {
		t.Fatalf("invalid JSON baseline: %v", err)
	}
	if withRef.PrePR == nil || withRef.PrePR.Boxes != base.Current.Boxes {
		t.Fatalf("-buildref did not embed the reference run: %+v", withRef.PrePR)
	}
	if !strings.Contains(stdout.String(), "speedup") {
		t.Fatalf("reference run table missing the speedup row:\n%s", stdout.String())
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}
