package enumtrees_test

import (
	"fmt"
	"testing"

	enumtrees "repro"
)

// TestQuickstart is the README flow.
func TestQuickstart(t *testing.T) {
	tr, err := enumtrees.ParseTree("(a (b) (a (b)))")
	if err != nil {
		t.Fatal(err)
	}
	q := enumtrees.SelectLabel([]enumtrees.Label{"a", "b"}, "b", 0)
	e, err := enumtrees.New(tr, q, enumtrees.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d, want 2", e.Count())
	}
	if _, err := e.InsertFirstChild(tr.Root.ID, "b"); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 3 {
		t.Fatalf("count = %d, want 3", e.Count())
	}
	for asg := range e.Results() {
		if len(asg) != 1 {
			t.Fatalf("assignment %v", asg)
		}
		if tr.Node(asg[0].Node).Label != "b" {
			t.Fatal("selected non-b node")
		}
	}
}

// TestQuerySetFacade exercises the multi-query flow through the public
// API: two standing queries, one batched publication, late
// registration, unregister, and the InvalidNode sentinel.
func TestQuerySetFacade(t *testing.T) {
	tr, err := enumtrees.ParseTree("(a (b) (c (b)))")
	if err != nil {
		t.Fatal(err)
	}
	alpha := []enumtrees.Label{"a", "b", "c"}
	qs := enumtrees.NewQuerySet(tr)
	qb, err := qs.Register(enumtrees.SelectLabel(alpha, "b", 0), enumtrees.Options{})
	if err != nil {
		t.Fatal(err)
	}
	qc, err := qs.Register(enumtrees.SelectLabel(alpha, "c", 0), enumtrees.Options{})
	if err != nil {
		t.Fatal(err)
	}

	m, ids, err := qs.ApplyBatch([]enumtrees.Update{
		{Op: enumtrees.OpInsertFirstChild, Node: tr.Root.ID, Label: "c"},
		{Op: enumtrees.OpRelabel, Node: 1, Label: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] == enumtrees.InvalidNode || ids[1] != enumtrees.InvalidNode {
		t.Fatalf("batch ids = %v", ids)
	}
	if got := m.Query(qb).Count(); got != 1 {
		t.Fatalf("b-query count = %d, want 1", got)
	}
	if got := m.Query(qc).Count(); got != 2 {
		t.Fatalf("c-query count = %d, want 2", got)
	}

	// Late registration sees the edited document.
	qa, err := qs.Register(enumtrees.SelectLabel(alpha, "a", 0), enumtrees.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := qs.Snapshot().Query(qa).Count(); got != 2 {
		t.Fatalf("late a-query count = %d, want 2", got)
	}

	// Unregister drops the query from the next publication on; the old
	// snapshot still answers it.
	if err := qs.Unregister(qc); err != nil {
		t.Fatal(err)
	}
	m2, err := qs.Relabel(tr.Root.ID, "a")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Query(qc) != nil {
		t.Fatal("unregistered query still published")
	}
	if m.Query(qc).Count() != 2 {
		t.Fatal("old snapshot lost the unregistered query")
	}
	if got, want := len(m2.Queries()), 2; got != want {
		t.Fatalf("standing queries = %d, want %d", got, want)
	}
}

// TestMSOEndToEnd exercises the MSO facade.
func TestMSOEndToEnd(t *testing.T) {
	alpha := []enumtrees.Label{"dir", "file"}
	// Φ(x): x is a dir containing (somewhere below) a file.
	phi := enumtrees.Conj(
		enumtrees.HasLabel{X: 0, Label: "dir"},
		enumtrees.Exists{X: 1, F: enumtrees.Conj(
			enumtrees.Sing{X: 1},
			enumtrees.HasLabel{X: 1, Label: "file"},
			enumtrees.Descendant{X: 0, Y: 1},
		)},
	)
	q, err := enumtrees.CompileMSOFirstOrder(phi, alpha, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := enumtrees.ParseTree("(dir (dir (file)) (dir))")
	e, err := enumtrees.New(tr, q, enumtrees.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Root dir and its first child contain files; the empty dir does not.
	if e.Count() != 2 {
		t.Fatalf("count = %d, want 2", e.Count())
	}
	// Add a file to the empty dir.
	var emptyDir enumtrees.NodeID
	for _, n := range tr.Nodes() {
		if n.Label == "dir" && n.IsLeaf() {
			emptyDir = n.ID
		}
	}
	if _, err := e.InsertFirstChild(emptyDir, "file"); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 3 {
		t.Fatalf("count = %d, want 3", e.Count())
	}
}

// TestSpannerEndToEnd exercises the word facade.
func TestSpannerEndToEnd(t *testing.T) {
	alpha := enumtrees.ByteAlphabet("abc")
	p := enumtrees.Contains(enumtrees.Cat(
		enumtrees.Lit{Label: "a"},
		enumtrees.Capture{Var: 0, Inner: enumtrees.PlusP{Inner: enumtrees.Lit{Label: "b"}}},
		enumtrees.Lit{Label: "c"},
	))
	q, err := enumtrees.CompilePattern(p, alpha)
	if err != nil {
		t.Fatal(err)
	}
	e, err := enumtrees.NewWord(enumtrees.TextLabels("abbcab"), q, enumtrees.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One match: positions 1-2 ("bb" between a and c).
	res := e.All()
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
	spans := enumtrees.Spans(res[0])
	if len(spans[0]) != 2 {
		t.Fatalf("span = %v", spans)
	}
	// Fix the trailing "ab" into "abc": a second match appears.
	ids, _ := e.Word()
	if _, err := e.InsertAfter(ids[len(ids)-1], "c"); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d, want 2", e.Count())
	}
}

func ExampleNew() {
	tr, _ := enumtrees.ParseTree("(a (b) (a))")
	q := enumtrees.SelectLabel([]enumtrees.Label{"a", "b"}, "a", 0)
	e, _ := enumtrees.New(tr, q, enumtrees.Options{})
	fmt.Println(e.Count())
	// Output: 2
}

// TestPathAndAggregates exercises the path front-end and the semiring
// aggregates through the facade.
func TestPathAndAggregates(t *testing.T) {
	alpha := []enumtrees.Label{"doc", "sec", "fig", "par"}
	q := enumtrees.MustCompilePath("/doc//sec/fig", alpha, 0)
	tr, _ := enumtrees.ParseTree("(doc (sec (fig) (par)) (par (sec (fig) (fig))))")
	e, err := enumtrees.New(tr, q, enumtrees.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// sec under doc has one fig; the sec under par is still a descendant
	// of doc, so its two figs match as well.
	if e.Count() != 3 {
		t.Fatalf("count = %d, want 3", e.Count())
	}
	// Path automata are unambiguous on these queries... not in general;
	// but derivation count must be >= result count.
	if e.DerivationCount().Int64() < 3 {
		t.Fatalf("derivations = %v", e.DerivationCount())
	}
	if mn, ok := e.MinResultSize(); !ok || mn != 1 {
		t.Fatalf("min size = %d, %v", mn, ok)
	}
	if !e.NonEmptyAlgebraic() {
		t.Fatal("algebraic nonemptiness wrong")
	}
}
