package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/tree"
	"repro/internal/tva"
	"repro/internal/workload"
)

// EnumParallelPoint is one row of the parallel-enumeration experiment
// (E1-par): wall-clock of one full-result materialization through one
// read API at one worker count. Speedup is the sequential All()
// wall-clock over this row's.
type EnumParallelPoint struct {
	API         string  `json:"api"` // All | ParallelAll | Chunks
	Workers     int     `json:"workers"`
	MillisTotal float64 `json:"millis_total"` // median full materialization
	NsPerAnswer float64 `json:"ns_per_answer"`
	Speedup     float64 `json:"speedup_vs_all"`
}

// EnumParallelBaseline is the machine-readable output of the
// parallel-enumeration experiment (written by cmd/benchtables as
// BENCH_enum_parallel.json). The claim: direct access makes bulk
// enumeration embarrassingly parallel, so ParallelAll(w) materializes
// the full answer set ~w× faster than the sequential sweep on w free
// cores, and the streaming Chunks gather stays within a constant of
// ParallelAll. CPUs and GoMaxProcs record the measurement environment:
// on a single available core the workers time-share and every speedup
// column sits near 1× — the Note says so explicitly when that is the
// case, and the correctness of the parallel path is then carried by the
// differential suite (ParallelAll == All on every corpus entry), not by
// this table.
type EnumParallelBaseline struct {
	TreeNodes  int                 `json:"tree_nodes"`
	Answers    int                 `json:"answers"`
	CPUs       int                 `json:"cpus"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Note       string              `json:"note,omitempty"`
	Points     []EnumParallelPoint `json:"points"`
}

// EnumParallel measures full-result materialization of a select query
// with ≥20k answers (full size) through All, ParallelAll(w) for
// w ∈ {1, 2, 4, 8}, and the order-preserving Chunks stream — median of
// several sweeps per cell, one engine and one pinned snapshot for all
// of them (reads are snapshot-isolated, so cells don't interact).
func EnumParallel(quick bool) EnumParallelBaseline {
	n := 70000 // ~n/3 b-nodes ⇒ >20k answers
	reps := 5
	if quick {
		n, reps = 7000, 3
	}
	rng := rand.New(rand.NewSource(151))
	ut, err := workload.Tree(workload.ShapeRandom, n, rng)
	if err != nil {
		panic(err)
	}
	e, err := engine.NewTree(ut, tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0), engine.Options{})
	if err != nil {
		panic(err)
	}
	snap := e.Snapshot()
	answers := snap.Count()

	base := EnumParallelBaseline{
		TreeNodes:  n,
		Answers:    answers,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if base.CPUs == 1 || base.GoMaxProcs == 1 {
		base.Note = "measured on a single available core: workers time-share, speedups near 1x are expected; " +
			"the parallel path's engagement and exactness are proven by the differential suite " +
			"(TestParallelAllMatchesSequential), not by this table"
	}

	measure := func(sweep func()) float64 {
		sweep() // warm: slabs, GC state
		runtime.GC()
		ds := make([]time.Duration, 0, reps)
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			sweep()
			ds = append(ds, time.Since(t0))
		}
		return float64(median(ds).Nanoseconds())
	}
	record := func(api string, workers int, ns, allNs float64) {
		base.Points = append(base.Points, EnumParallelPoint{
			API:         api,
			Workers:     workers,
			MillisTotal: ns / 1e6,
			NsPerAnswer: ns / float64(max(answers, 1)),
			Speedup:     allNs / ns,
		})
	}

	allNs := measure(func() { snap.All() })
	record("All", 1, allNs, allNs)
	for _, w := range []int{1, 2, 4, 8} {
		ns := measure(func() { snap.ParallelAll(w) })
		record("ParallelAll", w, ns, allNs)
	}
	for _, w := range []int{4} {
		ns := measure(func() {
			for range snap.Chunks(w, 512) {
			}
		})
		record("Chunks", w, ns, allNs)
	}
	return base
}

// Table renders the baseline for the benchtables output.
func (b EnumParallelBaseline) Table() Table {
	t := Table{
		ID:    "E1-par",
		Title: "Parallel enumeration: full-result materialization vs workers",
		Claim: fmt.Sprintf("rank-partitioned drains split [0, Count()) across per-worker count-guided descents, so full materialization of %d answers scales with free cores (%d-node tree, measured on %d CPU(s), GOMAXPROCS %d)",
			b.Answers, b.TreeNodes, b.CPUs, b.GoMaxProcs),
		Header: []string{"api", "workers", "ms total (median)", "ns/answer", "speedup vs All"},
	}
	for _, p := range b.Points {
		t.Rows = append(t.Rows, []string{
			p.API,
			fmt.Sprint(p.Workers),
			fmt.Sprintf("%.1f", p.MillisTotal),
			fmt.Sprintf("%.0f", p.NsPerAnswer),
			fmt.Sprintf("%.2fx", p.Speedup),
		})
	}
	return t
}
