package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/tree"
	"repro/internal/tva"
	"repro/internal/workload"
)

// DeltaPoint is one row of the answer-delta streaming experiment
// (E-delta) at the fixed tree size: one publication flipping
// ChangedAnswers answers, consumed either through a Subscribe stream
// (DeltaNs: ApplyBatch + receive + fold the delta) or by a pull
// consumer re-draining the full answer set (RedrainNs: ApplyBatch +
// full Results() sweep). Both include the shared write-path cost, so
// Speedup is the end-to-end per-publication advantage of push.
// DrainNs isolates the pull consumer's pure read cost (the Results()
// sweep with ApplyBatch excluded): it is flat in ChangedAnswers — the
// pull consumer re-reads the whole answer set no matter how little
// changed — which is the claim the totals alone can't show once the
// write path dominates at large batch sizes.
type DeltaPoint struct {
	ChangedAnswers int     `json:"changed_answers"`
	DeltaNs        float64 `json:"delta_ns"`
	RedrainNs      float64 `json:"redrain_ns"`
	DrainNs        float64 `json:"drain_ns"`
	Speedup        float64 `json:"speedup"`
}

// DeltaScalePoint is one row of the scale sweep: the same 2-answer
// flip, on trees of growing size (and so growing total answer count).
// The pull consumer's cost tracks Answers; the subscriber's tracks the
// 2 changed answers plus the logarithmic write path.
type DeltaScalePoint struct {
	TreeNodes int     `json:"tree_nodes"`
	Answers   int     `json:"answers"`
	DeltaNs   float64 `json:"delta_ns"`
	RedrainNs float64 `json:"redrain_ns"`
	DrainNs   float64 `json:"drain_ns"`
	Speedup   float64 `json:"speedup"`
}

// DeltaBaseline is the machine-readable output of the answer-delta
// streaming experiment (written by cmd/benchtables as
// BENCH_delta.json). The claim: a Subscribe consumer pays per
// publication a cost proportional to the answers that CHANGED —
// computed by count-guided co-descent over the shared indexed boxes —
// while a pull consumer re-draining Results() pays for the whole
// answer set every time. Points sweeps the changed-answer count on a
// fixed ~20k-answer query; Scale pins the change at 2 answers and
// grows the answer set. CPUs and GoMaxProcs record the measurement
// environment (the experiment is single-threaded, but they anchor the
// baseline to its hardware like every other committed baseline).
type DeltaBaseline struct {
	Query      string            `json:"query"`
	TreeNodes  int               `json:"tree_nodes"`
	Answers    int               `json:"answers"`
	CPUs       int               `json:"cpus"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Points     []DeltaPoint      `json:"points"`
	Scale      []DeltaScalePoint `json:"scale"`
}

// deltaPair is one measurement fixture: two engines over identical
// trees (same generator seed) and the same select:b query — one with a
// Subscribe stream attached, one consumed by full re-drains — plus the
// flip/unflip relabel batches that change exactly k answers per
// publication.
type deltaPair struct {
	push    *engine.TreeEngine
	pull    *engine.TreeEngine
	ch      <-chan engine.Delta
	answers int
}

func newDeltaPair(n int, seed int64) deltaPair {
	build := func() *engine.TreeEngine {
		ut, err := workload.Tree(workload.ShapeRandom, n, rand.New(rand.NewSource(seed)))
		if err != nil {
			panic(err)
		}
		e, err := engine.NewTree(ut, tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0), engine.Options{})
		if err != nil {
			panic(err)
		}
		return e
	}
	p := deltaPair{push: build(), pull: build()}
	ch, err := p.push.Subscribe()
	if err != nil {
		panic(err)
	}
	p.ch = ch
	<-ch // the seed resync; from here every recv is a per-publication delta
	p.answers = p.push.Snapshot().Count()
	return p
}

// batches builds the flip and unflip relabel batches for k changed
// answers: k/2 b-nodes leave the answer set (b→a) and k/2 a-nodes
// join it (a→b), so the answer count is stable and each publication
// changes exactly k answers. Applying flip then unflip returns the
// tree to its base state.
func (p deltaPair) batches(k int, rng *rand.Rand) (flip, unflip []engine.Update) {
	var as, bs []tree.NodeID
	for _, nd := range p.push.Tree().Nodes() {
		switch nd.Label {
		case "a":
			as = append(as, nd.ID)
		case "b":
			bs = append(bs, nd.ID)
		}
	}
	if k/2 > len(as) || k/2 > len(bs) {
		panic(fmt.Sprintf("tree too small for k=%d (%d a-nodes, %d b-nodes)", k, len(as), len(bs)))
	}
	rng.Shuffle(len(as), func(i, j int) { as[i], as[j] = as[j], as[i] })
	rng.Shuffle(len(bs), func(i, j int) { bs[i], bs[j] = bs[j], bs[i] })
	for _, id := range bs[:k/2] {
		flip = append(flip, engine.Update{Op: engine.OpRelabel, Node: id, Label: "a"})
		unflip = append(unflip, engine.Update{Op: engine.OpRelabel, Node: id, Label: "b"})
	}
	for _, id := range as[:k/2] {
		flip = append(flip, engine.Update{Op: engine.OpRelabel, Node: id, Label: "b"})
		unflip = append(unflip, engine.Update{Op: engine.OpRelabel, Node: id, Label: "a"})
	}
	return flip, unflip
}

// measure times one changed-answer count k on the pair: DeltaNs is the
// median of ApplyBatch + receiving and folding the delta on the push
// engine; RedrainNs is the median of ApplyBatch + a full Results()
// drain on the pull engine. reps must be even so the alternating
// flip/unflip batches leave both trees in their base state.
func (p deltaPair) measure(k, reps int, rng *rand.Rand) DeltaPoint {
	flip, unflip := p.batches(k, rng)
	alt := func(i int) []engine.Update {
		if i%2 == 0 {
			return flip
		}
		return unflip
	}

	// Warm both engines (and prove the flip changes k answers).
	snap, _, err := p.push.ApplyBatch(flip)
	if err != nil {
		panic(err)
	}
	changed := 0
	for d := range p.ch {
		if d.Resync != nil {
			panic("resync on a promptly-drained subscription")
		}
		changed += len(d.Added) + len(d.Removed)
		if d.Version >= snap.Version() {
			break
		}
	}
	if changed != k {
		panic(fmt.Sprintf("warm-up flip changed %d answers, want %d", changed, k))
	}
	if _, _, err := p.push.ApplyBatch(unflip); err != nil {
		panic(err)
	}
	for d := range p.ch {
		if d.Version >= p.push.Snapshot().Version() {
			break
		}
	}
	if _, _, err := p.pull.ApplyBatch(flip); err != nil {
		panic(err)
	}
	if _, _, err := p.pull.ApplyBatch(unflip); err != nil {
		panic(err)
	}

	i := 0
	pt := DeltaPoint{ChangedAnswers: k}
	pt.DeltaNs = measureNs(reps, func() {
		s, _, err := p.push.ApplyBatch(alt(i))
		if err != nil {
			panic(err)
		}
		i++
		n := 0
		for d := range p.ch {
			n += len(d.Added) + len(d.Removed)
			if d.Version >= s.Version() {
				break
			}
		}
		if n == 0 {
			panic("empty delta for a k-answer flip")
		}
	})
	// The pull side is timed by hand so one loop yields both the total
	// (ApplyBatch + drain) and the drain alone.
	totals := make([]time.Duration, 0, reps)
	drains := make([]time.Duration, 0, reps)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		s, _, err := p.pull.ApplyBatch(alt(r))
		if err != nil {
			panic(err)
		}
		t1 := time.Now()
		got := 0
		for range s.Results() {
			got++
		}
		t2 := time.Now()
		if got != p.answers {
			panic(fmt.Sprintf("re-drain saw %d answers, want %d", got, p.answers))
		}
		totals = append(totals, t2.Sub(t0))
		drains = append(drains, t2.Sub(t1))
	}
	pt.RedrainNs = float64(median(totals).Nanoseconds())
	pt.DrainNs = float64(median(drains).Nanoseconds())
	pt.Speedup = pt.RedrainNs / pt.DeltaNs
	return pt
}

// Delta measures the answer-delta streaming experiment: the
// changed-answer sweep k ∈ {2, 64, 2048} on a fixed tree, then the
// scale sweep (k = 2, growing trees).
func Delta(quick bool) DeltaBaseline {
	n := 60000 // ~n/3 b-nodes ⇒ ~20k answers
	ks := []int{2, 64, 2048}
	scaleNs := []int{15000, 60000, 240000}
	reps := 8
	if quick {
		// Quick trees hold ~3k answers, so the top k is capped where the
		// changed set is still a small fraction of the answer set —
		// otherwise the delta rightly approaches the full drain.
		n, reps = 9000, 4
		ks = []int{2, 64, 512}
		scaleNs = []int{4000, 16000}
	}
	rng := rand.New(rand.NewSource(191))

	p := newDeltaPair(n, 191)
	base := DeltaBaseline{
		Query:      "select:b",
		TreeNodes:  n,
		Answers:    p.answers,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, k := range ks {
		base.Points = append(base.Points, p.measure(k, reps, rng))
	}
	p.push.Set().Unregister(p.push.ID())

	for _, sn := range scaleNs {
		sp := newDeltaPair(sn, 191+int64(sn))
		pt := sp.measure(2, reps, rng)
		base.Scale = append(base.Scale, DeltaScalePoint{
			TreeNodes: sn,
			Answers:   sp.answers,
			DeltaNs:   pt.DeltaNs,
			RedrainNs: pt.RedrainNs,
			DrainNs:   pt.DrainNs,
			Speedup:   pt.Speedup,
		})
		sp.push.Set().Unregister(sp.push.ID())
	}
	return base
}

// Table renders the changed-answer sweep for the benchtables output.
func (b DeltaBaseline) Table() Table {
	t := Table{
		ID:     "E-delta",
		Title:  fmt.Sprintf("Answer-delta streaming: per-publication cost, %d answers (%d nodes)", b.Answers, b.TreeNodes),
		Claim:  "a Subscribe consumer pays per publication for the answers that changed; a pull consumer re-draining Results() pays for the whole answer set",
		Header: []string{"changed answers", "delta (push)", "re-drain (pull)", "drain only", "speedup"},
	}
	for _, p := range b.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.ChangedAnswers),
			dur(time.Duration(p.DeltaNs)),
			dur(time.Duration(p.RedrainNs)),
			dur(time.Duration(p.DrainNs)),
			fmt.Sprintf("%.1fx", p.Speedup),
		})
	}
	return t
}

// ScaleTable renders the scale sweep for the benchtables output.
func (b DeltaBaseline) ScaleTable() Table {
	t := Table{
		ID:     "E-delta-scale",
		Title:  "Answer-delta streaming: 2-answer change vs growing answer sets",
		Claim:  "the pull consumer's per-publication cost grows with the answer set; the subscriber's stays near-flat (change + logarithmic write path)",
		Header: []string{"nodes", "answers", "delta (push)", "re-drain (pull)", "drain only", "speedup"},
	}
	for _, p := range b.Scale {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.TreeNodes),
			fmt.Sprintf("%d", p.Answers),
			dur(time.Duration(p.DeltaNs)),
			dur(time.Duration(p.RedrainNs)),
			dur(time.Duration(p.DrainNs)),
			fmt.Sprintf("%.1fx", p.Speedup),
		})
	}
	return t
}
