package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/forest"
	"repro/internal/tree"
	"repro/internal/workload"
)

// StructuralMovePoint is one row of the subtree-move sweep: one tree
// size, one moved-subtree size, per-move cost and accounting deltas.
// The claim is that MoveNs and FreshTrunk stay within the O(log n +
// boundary) envelope while BoxesReused grows linearly with the moved
// subtree — the repair never touches the inside of the moved piece.
type StructuralMovePoint struct {
	TreeNodes   int     `json:"tree_nodes"`
	SubtreeSize int     `json:"subtree_size"`
	MoveNs      float64 `json:"move_ns"`      // median per-move publish latency
	FreshTrunk  float64 `json:"fresh_trunk"`  // path-copied term nodes per move
	BoxesReused float64 `json:"boxes_reused"` // frozen units credited per move
	Rebalances  int     `json:"rebalances"`   // scapegoat rebuilds over the sweep
}

// StructuralBulkPoint compares BulkLoad (one O(n) balanced build) with n
// sequential inserts (n trunk repairs) producing the same document.
type StructuralBulkPoint struct {
	Nodes        int     `json:"nodes"`
	BulkLoadNs   float64 `json:"bulk_load_ns"`
	SequentialNs float64 `json:"sequential_ns"`
	Speedup      float64 `json:"speedup"`
}

// StructuralMixPoint is one row of the weighted structural workload: a
// standing query maintained under the DefaultStructuralWeights mix,
// reporting per-edit publish latency and rebalance frequency.
type StructuralMixPoint struct {
	TreeNodes     int     `json:"tree_nodes"`
	Edits         int     `json:"edits"`
	PerEditNs     float64 `json:"per_edit_ns"` // median publish latency
	P95EditNs     float64 `json:"p95_edit_ns"`
	Rebalances    int     `json:"rebalances"`
	RebalanceFreq float64 `json:"rebalance_freq"` // rebuilds per edit
	BoxesReused   int     `json:"boxes_reused"`   // cumulative over the run
	Structural    int     `json:"structural"`     // realized subtree edits
	Leaf          int     `json:"leaf"`           // realized leaf edits
}

// StructuralBaseline is the machine-readable output of experiment
// E-struct (written by cmd/benchtables as BENCH_structural.json).
type StructuralBaseline struct {
	Query      string                `json:"query"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Moves      []StructuralMovePoint `json:"moves"`
	Bulk       []StructuralBulkPoint `json:"bulk"`
	Mix        []StructuralMixPoint  `json:"mix"`
}

// structuralMoveTree builds the move-sweep document: a root with two
// stable destination children d1, d2, a filler subtree of ~n-m nodes,
// and an m-node subtree grafted under d1 — the piece the sweep shuttles
// between d1 and d2.
func structuralMoveTree(n, m int, rng *rand.Rand) (*tree.Unranked, tree.NodeID, tree.NodeID, tree.NodeID) {
	t := tree.NewUnranked("a")
	d1, err := t.InsertFirstChild(t.Root.ID, "b")
	if err != nil {
		panic(err)
	}
	d2, err := t.InsertRightSibling(d1.ID, "c")
	if err != nil {
		panic(err)
	}
	filler, err := t.InsertRightSibling(d2.ID, "a")
	if err != nil {
		panic(err)
	}
	ids := []tree.NodeID{filler.ID}
	for t.Size() < n-m {
		parent := ids[rng.Intn(len(ids))]
		v, err := t.InsertFirstChild(parent, pickLabel(rng))
		if err != nil {
			panic(err)
		}
		ids = append(ids, v.ID)
	}
	frag := workload.RandomFragment(rng, m)
	sub, err := t.GraftFirstChild(d1.ID, frag)
	if err != nil {
		panic(err)
	}
	return t, sub.ID, d1.ID, d2.ID
}

func pickLabel(rng *rand.Rand) tree.Label {
	return []tree.Label{"a", "b", "c"}[rng.Intn(3)]
}

// Structural is experiment E-struct: per-edit cost of subtree moves vs
// the moved size, BulkLoad vs sequential construction, and a weighted
// structural workload with rebalance accounting.
func Structural(quick bool) StructuralBaseline {
	base := StructuralBaseline{
		Query:      "markedAncestor (a over {a,b,c}; unambiguous)",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Move sweep: fixed tree, growing moved subtree. The per-move cost
	// must track the boundary (log n), not the moved size.
	n := 65536
	subSizes := []int{16, 256, 4096, 32768}
	moves := 64
	if quick {
		n = 16384
		subSizes = []int{16, 256, 4096}
		moves = 32
	}
	for _, m := range subSizes {
		rng := rand.New(rand.NewSource(71))
		t, sub, d1, d2 := structuralMoveTree(n, m, rng)
		eng, err := engine.NewTree(t, workload.AncestorQuery(), engine.Options{})
		if err != nil {
			panic(err)
		}
		prev := eng.Set().Stats()
		ds := make([]time.Duration, 0, moves)
		for i := 0; i < moves; i++ {
			dest := d2
			if i%2 == 1 {
				dest = d1
			}
			t0 := time.Now()
			if _, err := eng.MoveSubtreeFirstChild(sub, dest); err != nil {
				panic(err)
			}
			ds = append(ds, time.Since(t0))
		}
		cur := eng.Set().Stats()
		base.Moves = append(base.Moves, StructuralMovePoint{
			TreeNodes:   n,
			SubtreeSize: m,
			MoveNs:      float64(median(ds).Nanoseconds()),
			FreshTrunk:  float64(cur.PathCopies-prev.PathCopies) / float64(moves),
			BoxesReused: float64(cur.BoxesReused-prev.BoxesReused) / float64(moves),
			Rebalances:  cur.Rebalances - prev.Rebalances,
		})
	}

	// BulkLoad vs sequential: the same random document built once by the
	// O(n) balanced pass and once by n incremental forest splices (each
	// draining its delta, as an engine consumer would).
	bulkSizes := sizesFor(quick, []int{10000, 100000, 400000})
	for _, bn := range bulkSizes {
		seq := func() (*tree.Unranked, time.Duration) {
			rng := rand.New(rand.NewSource(72))
			t := tree.NewUnranked("a")
			f := forest.New(t)
			f.DrainDelta()
			ids := []tree.NodeID{t.Root.ID}
			start := time.Now()
			for t.Size() < bn {
				parent := ids[rng.Intn(len(ids))]
				v, err := f.InsertFirstChild(parent, pickLabel(rng))
				if err != nil {
					panic(err)
				}
				f.DrainDelta()
				ids = append(ids, v)
			}
			return t, time.Since(start)
		}
		t, seqDur := seq()
		t0 := time.Now()
		f := forest.BulkLoad(t.Clone())
		f.DrainDelta()
		bulkDur := time.Since(t0)
		p := StructuralBulkPoint{
			Nodes:        bn,
			BulkLoadNs:   float64(bulkDur.Nanoseconds()),
			SequentialNs: float64(seqDur.Nanoseconds()),
		}
		p.Speedup = p.SequentialNs / p.BulkLoadNs
		base.Bulk = append(base.Bulk, p)
	}

	// Weighted structural mix: per-edit publish latency and rebalance
	// frequency under DefaultStructuralWeights.
	mixSizes := sizesFor(quick, []int{4000, 16000, 64000})
	edits := 400
	if quick {
		edits = 200
	}
	for _, mn := range mixSizes {
		rng := rand.New(rand.NewSource(73))
		ut, err := workload.Tree(workload.ShapeXMLish, mn, rng)
		if err != nil {
			panic(err)
		}
		relabelXMLish(ut) // the ancestor query runs over {a,b,c}
		eng, err := engine.NewTree(ut, workload.AncestorQuery(), engine.Options{})
		if err != nil {
			panic(err)
		}
		prev := eng.Set().Stats()
		ed := workload.NewStructuralEditor(treeMutator{eng}, workload.DefaultStructuralWeights(), rng)
		ds := make([]time.Duration, 0, edits)
		for i := 0; i < edits; i++ {
			t0 := time.Now()
			if err := ed.Step(); err != nil {
				panic(err)
			}
			ds = append(ds, time.Since(t0))
		}
		cur := eng.Set().Stats()
		structural := ed.Counts[workload.KindInsertSubtree] + ed.Counts[workload.KindDeleteSubtree] + ed.Counts[workload.KindMoveSubtree]
		leaf := ed.Counts[workload.KindRelabel] + ed.Counts[workload.KindInsertLeaf] + ed.Counts[workload.KindDeleteLeaf]
		base.Mix = append(base.Mix, StructuralMixPoint{
			TreeNodes:     mn,
			Edits:         edits,
			PerEditNs:     float64(median(ds).Nanoseconds()),
			P95EditNs:     float64(percentile(ds, 0.95).Nanoseconds()),
			Rebalances:    cur.Rebalances - prev.Rebalances,
			RebalanceFreq: float64(cur.Rebalances-prev.Rebalances) / float64(edits),
			BoxesReused:   cur.BoxesReused - prev.BoxesReused,
			Structural:    structural,
			Leaf:          leaf,
		})
	}
	return base
}

// relabelXMLish maps the xmlish document labels onto the ancestor
// query's {a, b, c} alphabet so the standing query has answers.
func relabelXMLish(t *tree.Unranked) {
	m := map[tree.Label]tree.Label{"doc": "a", "sec": "a", "par": "b", "fig": "c", "ref": "b"}
	for _, n := range t.Nodes() {
		if l, ok := m[n.Label]; ok {
			if err := t.Relabel(n.ID, l); err != nil {
				panic(err)
			}
		}
	}
}

// MoveTable renders the subtree-move sweep.
func (b StructuralBaseline) MoveTable() Table {
	t := Table{
		ID:     "S1",
		Title:  "Structural edits: subtree move cost vs moved size",
		Claim:  "moving an m-node subtree costs O(log n + boundary) — flat move latency and trunk footprint while the frozen-unit reuse grows with m",
		Header: []string{"nodes", "moved subtree", "move (median)", "fresh trunk/move", "boxes reused/move", "rebalances"},
	}
	for _, p := range b.Moves {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.TreeNodes),
			fmt.Sprint(p.SubtreeSize),
			dur(time.Duration(p.MoveNs)),
			fmt.Sprintf("%.1f", p.FreshTrunk),
			fmt.Sprintf("%.0f", p.BoxesReused),
			fmt.Sprint(p.Rebalances),
		})
	}
	return t
}

// BulkTable renders the BulkLoad comparison.
func (b StructuralBaseline) BulkTable() Table {
	t := Table{
		ID:     "S2",
		Title:  "BulkLoad vs sequential construction",
		Claim:  "one O(n) balanced build beats n incremental splices (≥5× at 100k nodes)",
		Header: []string{"nodes", "BulkLoad", "sequential inserts", "speedup"},
	}
	for _, p := range b.Bulk {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Nodes),
			dur(time.Duration(p.BulkLoadNs)),
			dur(time.Duration(p.SequentialNs)),
			fmt.Sprintf("%.1fx", p.Speedup),
		})
	}
	return t
}

// MixTable renders the weighted structural workload.
func (b StructuralBaseline) MixTable() Table {
	t := Table{
		ID:     "S3",
		Title:  "Weighted structural workload: per-edit cost and rebalance frequency",
		Claim:  "under a half-structural edit mix the per-edit publish latency stays logarithmic and scapegoat rebuilds stay a small constant fraction of edits",
		Header: []string{"nodes", "edits", "per-edit (median)", "p95", "rebalances", "rebal/edit", "boxes reused", "structural", "leaf"},
	}
	for _, p := range b.Mix {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.TreeNodes),
			fmt.Sprint(p.Edits),
			dur(time.Duration(p.PerEditNs)),
			dur(time.Duration(p.P95EditNs)),
			fmt.Sprint(p.Rebalances),
			fmt.Sprintf("%.3f", p.RebalanceFreq),
			fmt.Sprint(p.BoxesReused),
			fmt.Sprint(p.Structural),
			fmt.Sprint(p.Leaf),
		})
	}
	return t
}
