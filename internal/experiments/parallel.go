package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/paths"
	"repro/internal/tree"
	"repro/internal/tva"
	"repro/internal/workload"
)

// ParallelPoint is one row of the parallel-write-path experiment (C3):
// the per-edit publish latency of a QuerySet with k standing queries
// when the per-query repair is fanned out across w workers. The w=1
// rows are the serial baseline (the deterministic sequential path);
// Speedup is serial latency / this latency at the same k.
type ParallelPoint struct {
	Queries       int     `json:"queries"`
	Workers       int     `json:"workers"`
	MicrosPerEdit float64 `json:"micros_per_edit"` // median per-edit publish latency
	Speedup       float64 `json:"speedup_vs_serial"`
}

// ParallelBaseline is the machine-readable output of the parallel
// experiment (written by cmd/benchtables as BENCH_parallel.json). The
// claim is that per-query repair parallelizes: at k queries the publish
// latency with w workers approaches the k=1 latency times k/w, flat in
// the subscriber count once w matches the core count. CPUs and
// GoMaxProcs record the measurement environment — with a single
// available core the workers time-share and the speedup columns sit
// near 1×, so compare rows only within one environment.
type ParallelBaseline struct {
	TreeNodes  int             `json:"tree_nodes"`
	Edits      int             `json:"edits"`
	CPUs       int             `json:"cpus"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Note       string          `json:"note,omitempty"`
	QuerySpecs []string        `json:"query_specs"`
	Points     []ParallelPoint `json:"points"`
}

// ParallelQueries returns the pool of 16 distinct standing queries of
// the parallel experiment (the C2 pool of 8 plus 8 more path and
// descendant-depth variants), with their specs. Exported so
// BenchmarkParallelPipelines measures exactly the C3 workload.
func ParallelQueries() ([]string, []*tva.Unranked) {
	specs, qs := standingQueries()
	alpha := []tree.Label{"a", "b", "c"}
	more := []struct {
		spec string
		q    *tva.Unranked
	}{
		{"descdepth:a:2", tva.DescendantAtDepth(alpha, "a", 2, 0)},
		{"descdepth:a:3", tva.DescendantAtDepth(alpha, "a", 3, 0)},
		{"descdepth:b:3", tva.DescendantAtDepth(alpha, "b", 3, 0)},
		{"descdepth:c:2", tva.DescendantAtDepth(alpha, "c", 2, 0)},
		{"path://a/c", paths.MustCompile("//a/c", alpha, 0)},
		{"path://b/a", paths.MustCompile("//b/a", alpha, 0)},
		{"path://c/a", paths.MustCompile("//c/a", alpha, 0)},
		{"path://c/b", paths.MustCompile("//c/b", alpha, 0)},
	}
	for _, m := range more {
		specs = append(specs, m.spec)
		qs = append(qs, m.q)
	}
	return specs, qs
}

// Parallel measures per-edit publish latency against the number of
// standing queries k ∈ {1, 4, 16} and the worker-pool bound
// w ∈ {1, 4, 8}: one QuerySet per (k, w) cell, one relabel stream
// (single edits, so every edit is one publication), median latency over
// the stream. The k=1 cells pin that the sequential fallback keeps
// single-query latency flat regardless of w (the pool is never engaged
// for one pipeline).
func Parallel(quick bool) ParallelBaseline {
	n, edits := 20000, 400
	if quick {
		n, edits = 2000, 80
	}
	specs, queries := ParallelQueries()

	rng := rand.New(rand.NewSource(131))
	ut, err := workload.Tree(workload.ShapeRandom, n, rng)
	if err != nil {
		panic(err)
	}

	base := ParallelBaseline{
		TreeNodes:  n,
		Edits:      edits,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		QuerySpecs: specs,
	}
	if base.CPUs == 1 || base.GoMaxProcs == 1 {
		base.Note = "measured on a single available core: workers time-share, speedups near 1x are expected; " +
			"re-record on multi-core hardware for meaningful scaling numbers"
	}
	labels := []tree.Label{"a", "b", "c"}
	for _, k := range []int{1, 4, 16} {
		serial := 0.0
		for _, w := range []int{1, 4, 8} {
			qs := engine.NewTreeSet(ut.Clone())
			qs.SetWorkers(w)
			for i := 0; i < k; i++ {
				if _, err := qs.Register(queries[i], engine.Options{}); err != nil {
					panic(err)
				}
			}
			// Relabels keep the ID set stable: list the nodes once so the
			// measured latency is the publish path, not an O(n) scan.
			var ids []tree.NodeID
			for _, node := range qs.Tree().Nodes() {
				ids = append(ids, node.ID)
			}
			erng := rand.New(rand.NewSource(132))
			// Warm the maintenance path and level the GC state before
			// timing, so cells measured later (larger heap target, fewer
			// collections) don't look faster for reasons unrelated to the
			// worker pool.
			for i := 0; i < edits/4; i++ {
				if _, err := qs.Relabel(ids[erng.Intn(len(ids))], labels[erng.Intn(3)]); err != nil {
					panic(err)
				}
			}
			runtime.GC()
			ds := make([]time.Duration, 0, edits)
			for i := 0; i < edits; i++ {
				id := ids[erng.Intn(len(ids))]
				l := labels[erng.Intn(3)]
				t0 := time.Now()
				if _, err := qs.Relabel(id, l); err != nil {
					panic(err)
				}
				ds = append(ds, time.Since(t0))
			}
			p := ParallelPoint{
				Queries:       k,
				Workers:       w,
				MicrosPerEdit: float64(median(ds).Nanoseconds()) / 1e3,
			}
			if w == 1 {
				serial = p.MicrosPerEdit
			}
			p.Speedup = serial / p.MicrosPerEdit
			base.Points = append(base.Points, p)
		}
	}
	return base
}

// Table renders the baseline for the benchtables output.
func (b ParallelBaseline) Table() Table {
	t := Table{
		ID:    "C3",
		Title: "Parallel write path: per-edit publish latency vs standing queries and workers",
		Claim: fmt.Sprintf("per-query repair fans out across the worker pool, so publish latency at k queries approaches the serial latency ×k/workers on enough cores (%d-node tree, %d single relabels, measured on %d CPU(s))",
			b.TreeNodes, b.Edits, b.CPUs),
		Header: []string{"queries", "workers", "µs/edit (median)", "speedup vs serial"},
	}
	for _, p := range b.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Queries),
			fmt.Sprint(p.Workers),
			fmt.Sprintf("%.1f", p.MicrosPerEdit),
			fmt.Sprintf("%.2fx", p.Speedup),
		})
	}
	return t
}
