package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/tree"
	"repro/internal/tva"
	"repro/internal/workload"
)

// This file is experiment B1: build and repair throughput of the circuit
// construction hot path (circuit.Builder.LeafBox/InnerBox plus the
// engine's trunk repair around them). It is the measurement behind the
// zero-allocation box construction and signature-pruned repair work:
// boxes/s at preprocessing, and ns + allocations per single-relabel
// publication on an E4-style update stream, with and without the
// signature-pruning fast path, plus a relabel-neutral stream (labels the
// query does not distinguish) where pruning should collapse repair to
// O(1) boxes. cmd/benchtables -build writes the JSON baseline
// (BENCH_build.json); -buildref embeds a previous run as the comparison
// reference with computed speedups.

// BuildRepairPoint is one repair row of the B1 experiment: an update
// workload replayed through a single-query engine, single edits (one
// publication per edit), cumulative counters divided by the edit count.
type BuildRepairPoint struct {
	// Workload names the edit stream: "relabel" draws node and new label
	// uniformly (the E4-style mixed stream of the acceptance criterion);
	// "relabel-neutral" draws only nodes and labels the standing query
	// does not distinguish (non-b nodes relabeled within {a, c}), so
	// gamma shape never changes and signature-pruned repair reuses the
	// whole trunk on every edit.
	Workload string `json:"workload"`
	// FullRebuild marks the comparison rows measured with
	// engine.Options{FullRebuild: true} (signature pruning disabled).
	FullRebuild bool `json:"full_rebuild"`

	NanosPerEdit  float64 `json:"nanos_per_edit"`  // mean wall time per publication
	AllocsPerEdit float64 `json:"allocs_per_edit"` // mean heap allocations per publication
	BoxesPerEdit  float64 `json:"boxes_per_edit"`  // mean trunk boxes rebuilt per publication
	ReusedPerEdit float64 `json:"reused_per_edit"` // mean trunk boxes reused per publication
}

// BuildRun is one full B1 measurement on one binary: preprocessing
// throughput plus the repair workloads.
type BuildRun struct {
	// Boxes is the circuit size of the registered query (one box per
	// term node).
	Boxes int `json:"boxes"`
	// MillisPerBuild is the mean wall time of one full preprocessing
	// (term + boxes + index + counts for the standing query).
	MillisPerBuild float64 `json:"millis_per_build"`
	// BoxesPerSec is the resulting build throughput.
	BoxesPerSec float64 `json:"boxes_per_sec"`
	// BuildAllocsPerBox is the mean heap allocations per box during
	// preprocessing (the whole pipeline, so an upper bound on the
	// builder's own allocations).
	BuildAllocsPerBox float64 `json:"build_allocs_per_box"`

	Repairs []BuildRepairPoint `json:"repairs"`
}

// BuildBaseline is the machine-readable output of experiment B1 (written
// by cmd/benchtables as BENCH_build.json). Current is this binary's run;
// PrePR, when present, is the same measurement captured on the tree
// before the zero-allocation/pruning work (embedded via -buildref) — the
// acceptance criterion compares Current's "relabel" row against PrePR's.
type BuildBaseline struct {
	TreeNodes  int    `json:"tree_nodes"`
	Edits      int    `json:"edits"`
	Builds     int    `json:"builds"`
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	QuerySpec  string `json:"query_spec"`
	// Kernels records the bitset kernel dispatch of the measuring binary
	// (CPU features, vector set) — part of the environment block, since
	// repair cost depends on which kernels ran.
	Kernels bitset.KernelInfo `json:"kernels"`

	Current BuildRun  `json:"current"`
	PrePR   *BuildRun `json:"pre_pr,omitempty"`
}

// buildQuery is the B1 standing query: select all b-labeled nodes. It is
// direct-access capable, and it does not distinguish a from c — which is
// what makes the relabel-neutral stream neutral.
func buildQuery() (string, *tva.Unranked) {
	return "select:b", tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0)
}

// mallocs reads the cumulative heap-allocation counter (the same number
// testing.AllocsPerRun divides; a process-global counter, so the caller
// must be the only allocating goroutine for the delta to be meaningful).
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// Build runs experiment B1.
func Build(quick bool) BuildBaseline {
	n, edits, builds := 16000, 600, 5
	if quick {
		n, edits, builds = 2000, 120, 3
	}
	spec, q := buildQuery()
	rng := rand.New(rand.NewSource(151))
	ut, err := workload.Tree(workload.ShapeRandom, n, rng)
	if err != nil {
		panic(err)
	}

	base := BuildBaseline{
		TreeNodes:  n,
		Edits:      edits,
		Builds:     builds,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		QuerySpec:  spec,
		Kernels:    bitset.Kernels(),
	}

	// Preprocessing throughput: full pipeline builds, mean over `builds`
	// runs (the first run warms the program cache; measuring the steady
	// state is the point, since one engine registers many queries and
	// many engines share one automaton).
	var buildNanos, buildAllocs float64
	var boxes int
	for i := 0; i < builds+1; i++ {
		runtime.GC()
		a0 := mallocs()
		t0 := time.Now()
		eng, err := engine.NewTree(ut.Clone(), q, engine.Options{})
		if err != nil {
			panic(err)
		}
		dt := time.Since(t0)
		da := mallocs() - a0
		if i == 0 {
			continue // warm-up: program compile, page faults
		}
		buildNanos += float64(dt.Nanoseconds())
		buildAllocs += float64(da)
		boxes = eng.Snapshot().Stats().Boxes
	}
	buildNanos /= float64(builds)
	buildAllocs /= float64(builds)
	base.Current = BuildRun{
		Boxes:             boxes,
		MillisPerBuild:    buildNanos / 1e6,
		BoxesPerSec:       float64(boxes) / (buildNanos / 1e9),
		BuildAllocsPerBox: buildAllocs / float64(boxes),
	}

	for _, w := range []struct {
		name        string
		labels      []tree.Label
		fullRebuild bool
	}{
		{"relabel", []tree.Label{"a", "b", "c"}, false},
		{"relabel", []tree.Label{"a", "b", "c"}, true},
		{"relabel-neutral", []tree.Label{"a", "c"}, false},
		{"relabel-neutral", []tree.Label{"a", "c"}, true},
	} {
		base.Current.Repairs = append(base.Current.Repairs,
			measureRepair(ut, q, w.name, w.labels, w.fullRebuild, edits))
	}
	return base
}

// measureRepair replays a single-relabel stream and reports per-edit
// means. The stream draws from its own fixed seed so every row edits the
// same (node, label) sequence up to the label pool.
func measureRepair(ut *tree.Unranked, q *tva.Unranked, name string, labels []tree.Label, fullRebuild bool, edits int) BuildRepairPoint {
	eng, err := engine.NewTree(ut.Clone(), q, engine.Options{FullRebuild: fullRebuild})
	if err != nil {
		panic(err)
	}
	neutral := name == "relabel-neutral"
	var ids []tree.NodeID
	for _, node := range eng.Tree().Nodes() {
		if neutral && node.Label == "b" {
			continue // the neutral stream never touches query-visible nodes
		}
		ids = append(ids, node.ID)
	}
	erng := rand.New(rand.NewSource(152))
	step := func() {
		if _, err := eng.Relabel(ids[erng.Intn(len(ids))], labels[erng.Intn(len(labels))]); err != nil {
			panic(err)
		}
	}
	// Warm the repair path (and, for the neutral stream, settle every
	// touched node onto a label from the neutral pool) before timing.
	for i := 0; i < edits/4; i++ {
		step()
	}
	runtime.GC()
	st0 := eng.Set().Stats()
	a0 := mallocs()
	t0 := time.Now()
	for i := 0; i < edits; i++ {
		step()
	}
	dt := time.Since(t0)
	da := mallocs() - a0
	st1 := eng.Set().Stats()
	return BuildRepairPoint{
		Workload:      name,
		FullRebuild:   fullRebuild,
		NanosPerEdit:  float64(dt.Nanoseconds()) / float64(edits),
		AllocsPerEdit: float64(da) / float64(edits),
		BoxesPerEdit:  float64(st1.BoxesRebuilt-st0.BoxesRebuilt) / float64(edits),
		ReusedPerEdit: float64(st1.BoxesReused-st0.BoxesReused) / float64(edits),
	}
}

// Table renders the baseline for the benchtables output.
func (b BuildBaseline) Table() Table {
	t := Table{
		ID:    "B1",
		Title: "Box construction and trunk repair: build throughput, per-update cost",
		Claim: fmt.Sprintf("precompiled transition programs + the builder scratch arena make box construction allocation-light, and signature-pruned repair reuses trunk boxes whose gamma shape is unchanged (%d-node tree, query %s, %d single relabels per row, measured on %d CPU(s))",
			b.TreeNodes, b.QuerySpec, b.Edits, b.CPUs),
		Header: []string{"row", "ns/edit", "allocs/edit", "boxes rebuilt/edit", "boxes reused/edit"},
	}
	row := func(tag string, r BuildRun) {
		t.Rows = append(t.Rows, []string{
			tag + " build",
			fmt.Sprintf("%.2f ms (%d boxes, %.0f boxes/s)", r.MillisPerBuild, r.Boxes, r.BoxesPerSec),
			fmt.Sprintf("%.1f allocs/box", r.BuildAllocsPerBox),
			"—", "—",
		})
		for _, p := range r.Repairs {
			label := tag + " " + p.Workload
			if p.FullRebuild {
				label += " (full rebuild)"
			}
			t.Rows = append(t.Rows, []string{
				label,
				fmt.Sprintf("%.0f", p.NanosPerEdit),
				fmt.Sprintf("%.1f", p.AllocsPerEdit),
				fmt.Sprintf("%.1f", p.BoxesPerEdit),
				fmt.Sprintf("%.1f", p.ReusedPerEdit),
			})
		}
	}
	row("current", b.Current)
	if b.PrePR != nil {
		row("pre-PR", *b.PrePR)
		if cur, pre := findRepair(b.Current, "relabel", false), findRepair(*b.PrePR, "relabel", false); cur != nil && pre != nil {
			t.Rows = append(t.Rows, []string{
				"speedup (relabel, pruned vs pre-PR)",
				fmt.Sprintf("%.2fx", pre.NanosPerEdit/cur.NanosPerEdit),
				fmt.Sprintf("%.2fx", pre.AllocsPerEdit/cur.AllocsPerEdit),
				"—", "—",
			})
		}
	}
	return t
}

// findRepair returns the run's repair row for (workload, fullRebuild),
// or nil.
func findRepair(r BuildRun, workload string, fullRebuild bool) *BuildRepairPoint {
	for i := range r.Repairs {
		if r.Repairs[i].Workload == workload && r.Repairs[i].FullRebuild == fullRebuild {
			return &r.Repairs[i]
		}
	}
	return nil
}
