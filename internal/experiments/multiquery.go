package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/paths"
	"repro/internal/tree"
	"repro/internal/tva"
	"repro/internal/workload"
)

// MultiQueryPoint is one row of the multi-query experiment (C2): k
// standing queries under one update stream, a shared QuerySet vs k
// independent single-query engines. The path-copy and rebalance counters
// are the SHARED term work — on the QuerySet they must not grow with k
// (equal to the k=1 row), while the k independent engines repeat them k
// times.
type MultiQueryPoint struct {
	Queries int `json:"queries"`

	SharedPathCopies      int     `json:"shared_path_copies"`
	SharedRebalances      int     `json:"shared_rebalances"`
	SharedBoxesRebuilt    int     `json:"shared_boxes_rebuilt"`
	SharedSecondsPerBatch float64 `json:"shared_seconds_per_batch"`

	IndepPathCopies      int     `json:"independent_path_copies"`
	IndepRebalances      int     `json:"independent_rebalances"`
	IndepBoxesRebuilt    int     `json:"independent_boxes_rebuilt"`
	IndepSecondsPerBatch float64 `json:"independent_seconds_per_batch"`

	// TermWorkRatio is independent/shared path copies: k when the
	// QuerySet shares perfectly.
	TermWorkRatio float64 `json:"term_work_ratio"`
	// Speedup is independent/shared wall time per batch.
	Speedup float64 `json:"speedup"`
}

// DuplicateMultiQueryPoint is one row of the duplicate-heavy C2
// workload: k registrations drawn round-robin from d distinct query
// specs, a QuerySet with the multi-query optimizer on (content-equal
// automata deduped onto refcounted shared pipelines) against the same
// registrations under Options.NoDedupe (one private pipeline each, the
// pre-optimizer behavior). With dedupe the per-batch repair cost tracks
// d, not k: Pipelines stays at d, boxes rebuilt per batch matches the
// d-query run, and per-query seconds/batch is flat as k grows past d.
type DuplicateMultiQueryPoint struct {
	Registrations int `json:"registrations"`
	DistinctSpecs int `json:"distinct_specs"`

	// Pipelines and RegistrationsDeduped come from the dedupe engine's
	// stats after registration: Pipelines must equal DistinctSpecs and
	// RegistrationsDeduped must equal Registrations - DistinctSpecs.
	Pipelines            int `json:"pipelines"`
	RegistrationsDeduped int `json:"registrations_deduped"`

	DedupeBoxesRebuilt    int     `json:"dedupe_boxes_rebuilt"`
	DedupeSecondsPerBatch float64 `json:"dedupe_seconds_per_batch"`

	NoDedupeBoxesRebuilt    int     `json:"nodedupe_boxes_rebuilt"`
	NoDedupeSecondsPerBatch float64 `json:"nodedupe_seconds_per_batch"`

	// Speedup is NoDedupe/dedupe wall time per batch: ~k/d when repair
	// dominates the batch.
	Speedup float64 `json:"speedup"`
}

// MultiQueryBaseline is the machine-readable output of the multi-query
// experiment (written by cmd/benchtables as BENCH_multiquery.json), the
// perf trajectory anchor for the QuerySet engine. Points is the
// distinct-query scaling sweep (shared QuerySet vs k independent
// engines); DuplicatePoints is the duplicate-heavy sweep (pipeline
// dedupe vs NoDedupe on one QuerySet). Cpus and Gomaxprocs record the
// hardware the numbers were taken on, like the parallel baselines.
type MultiQueryBaseline struct {
	TreeNodes       int                        `json:"tree_nodes"`
	Batches         int                        `json:"batches"`
	BatchSize       int                        `json:"batch_size"`
	Cpus            int                        `json:"cpus"`
	Gomaxprocs      int                        `json:"gomaxprocs"`
	QuerySpecs      []string                   `json:"query_specs"`
	Points          []MultiQueryPoint          `json:"points"`
	DuplicatePoints []DuplicateMultiQueryPoint `json:"duplicate_points"`
}

// standingQueries returns the k distinct standing queries of the
// experiment, with their specs, over the workload alphabet {a, b, c}.
func standingQueries() ([]string, []*tva.Unranked) {
	alpha := []tree.Label{"a", "b", "c"}
	specs := []string{
		"select:a", "select:b", "select:c",
		"ancestor", "descdepth:b:2", "descdepth:c:3",
		"path://a/b", "path://b/c",
	}
	qs := []*tva.Unranked{
		tva.SelectLabel(alpha, "a", 0),
		tva.SelectLabel(alpha, "b", 0),
		tva.SelectLabel(alpha, "c", 0),
		workload.AncestorQuery(),
		tva.DescendantAtDepth(alpha, "b", 2, 0),
		tva.DescendantAtDepth(alpha, "c", 3, 0),
		paths.MustCompile("//a/b", alpha, 0),
		paths.MustCompile("//b/c", alpha, 0),
	}
	return specs, qs
}

// makeBatch draws one always-valid batch against the current tree state:
// homogeneous per round (relabels, inserts, or deletes of distinct
// leaves), like the engine stress writer, so it cannot fail halfway. The
// same rng state over identical trees yields identical batches, which is
// what lets the shared and independent runs replay one stream.
func makeBatch(t *tree.Unranked, size int, rng *rand.Rand) []engine.Update {
	labels := []tree.Label{"a", "b", "c"}
	nodes := t.Nodes()
	var batch []engine.Update
	switch rng.Intn(3) {
	case 0: // relabels
		for j := 0; j < size; j++ {
			n := nodes[rng.Intn(len(nodes))]
			batch = append(batch, engine.Update{Op: engine.OpRelabel, Node: n.ID, Label: labels[rng.Intn(3)]})
		}
	case 1: // inserts (first child and right sibling mixed)
		for j := 0; j < size; j++ {
			n := nodes[rng.Intn(len(nodes))]
			if n.Parent != nil && rng.Intn(2) == 0 {
				batch = append(batch, engine.Update{Op: engine.OpInsertRightSibling, Node: n.ID, Label: labels[rng.Intn(3)]})
			} else {
				batch = append(batch, engine.Update{Op: engine.OpInsertFirstChild, Node: n.ID, Label: labels[rng.Intn(3)]})
			}
		}
	default: // deletes of distinct leaves (tree stays nonempty)
		var leaves []tree.NodeID
		for _, n := range nodes {
			if n.IsLeaf() && n.Parent != nil {
				leaves = append(leaves, n.ID)
			}
		}
		rng.Shuffle(len(leaves), func(a, b int) { leaves[a], leaves[b] = leaves[b], leaves[a] })
		for j := 0; j < size && j < len(leaves); j++ {
			batch = append(batch, engine.Update{Op: engine.OpDelete, Node: leaves[j]})
		}
		if len(batch) == 0 {
			batch = append(batch, engine.Update{Op: engine.OpRelabel, Node: t.Root.ID, Label: labels[rng.Intn(3)]})
		}
	}
	return batch
}

// MultiQuery measures k ∈ {1, 2, 4, 8} standing queries under one
// update stream of batched edits: a shared QuerySet (one term, k
// pipelines) against k independent engines (k terms). The term work —
// path copies and scapegoat rebalances — must be flat in k on the shared
// side and k× on the independent side; wall time per batch grows far
// slower than k× on the shared side because only box repair fans out.
//
// It then runs the duplicate-heavy sweep: k ∈ {d, 2d, 4d} registrations
// round-robin over the d distinct specs, the multi-query optimizer
// (pipeline dedupe) against NoDedupe, pinning that with dedupe the
// per-batch repair cost is governed by d, not k.
func MultiQuery(quick bool) MultiQueryBaseline {
	n, batches, size := 20000, 200, 6
	if quick {
		n, batches = 2000, 40
	}
	specs, queries := standingQueries()

	rng := rand.New(rand.NewSource(99))
	ut, err := workload.Tree(workload.ShapeRandom, n, rng)
	if err != nil {
		panic(err)
	}

	base := MultiQueryBaseline{
		TreeNodes:  n,
		Batches:    batches,
		BatchSize:  size,
		Cpus:       runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		QuerySpecs: specs,
	}
	for _, k := range []int{1, 2, 4, 8} {
		// Shared: ONE QuerySet with k standing queries.
		shared := engine.NewTreeSet(ut.Clone())
		for i := 0; i < k; i++ {
			if _, err := shared.Register(queries[i], engine.Options{}); err != nil {
				panic(err)
			}
		}
		// Independent: k single-query engines, each with its own term.
		indep := make([]*engine.TreeEngine, k)
		for i := 0; i < k; i++ {
			e, err := engine.NewTree(ut.Clone(), queries[i], engine.Options{})
			if err != nil {
				panic(err)
			}
			indep[i] = e
		}

		// Counters are reported as update-phase deltas: subtract the
		// initial-build baselines captured here.
		sharedPC0, sharedRB0, sharedBX0 := shared.PathCopies(), shared.Rebalances(), shared.BoxesRebuilt()
		var indepPC0, indepRB0, indepBX0 int
		for _, e := range indep {
			indepPC0 += e.Set().PathCopies()
			indepRB0 += e.Set().Rebalances()
			indepBX0 += e.Set().BoxesRebuilt()
		}

		// One update stream, replayed on every engine: the batch is drawn
		// from the shared tree's state, and since every engine's tree
		// evolves identically (same edits, deterministic IDs) it is valid
		// on all of them.
		brng := rand.New(rand.NewSource(7))
		var sharedTime, indepTime time.Duration
		for b := 0; b < batches; b++ {
			batch := makeBatch(shared.Tree(), size, brng)
			t0 := time.Now()
			if _, _, err := shared.ApplyBatch(batch); err != nil {
				panic(err)
			}
			sharedTime += time.Since(t0)
			t0 = time.Now()
			for _, e := range indep {
				if _, _, err := e.ApplyBatch(batch); err != nil {
					panic(err)
				}
			}
			indepTime += time.Since(t0)
		}

		p := MultiQueryPoint{
			Queries:            k,
			SharedPathCopies:   shared.PathCopies() - sharedPC0,
			SharedRebalances:   shared.Rebalances() - sharedRB0,
			SharedBoxesRebuilt: shared.BoxesRebuilt() - sharedBX0,
		}
		for _, e := range indep {
			p.IndepPathCopies += e.Set().PathCopies()
			p.IndepRebalances += e.Set().Rebalances()
			p.IndepBoxesRebuilt += e.Set().BoxesRebuilt()
		}
		p.IndepPathCopies -= indepPC0
		p.IndepRebalances -= indepRB0
		p.IndepBoxesRebuilt -= indepBX0
		p.SharedSecondsPerBatch = sharedTime.Seconds() / float64(batches)
		p.IndepSecondsPerBatch = indepTime.Seconds() / float64(batches)
		p.TermWorkRatio = float64(p.IndepPathCopies) / float64(p.SharedPathCopies)
		p.Speedup = p.IndepSecondsPerBatch / p.SharedSecondsPerBatch
		base.Points = append(base.Points, p)
	}

	// Duplicate-heavy workload: k registrations round-robin over the d
	// distinct specs, multi-query optimizer on vs NoDedupe. The k=d row
	// is the flat-cost reference: with dedupe, every k > d row must pay
	// the same per-batch repair (boxes rebuilt tracks d, not k).
	d := len(queries)
	for _, k := range []int{d, 2 * d, 4 * d} {
		dedupe := engine.NewTreeSet(ut.Clone())
		plain := engine.NewTreeSet(ut.Clone())
		for i := 0; i < k; i++ {
			if _, err := dedupe.Register(queries[i%d], engine.Options{}); err != nil {
				panic(err)
			}
			if _, err := plain.Register(queries[i%d], engine.Options{NoDedupe: true}); err != nil {
				panic(err)
			}
		}
		dst0, pst0 := dedupe.Stats(), plain.Stats()

		brng := rand.New(rand.NewSource(7))
		var dTime, pTime time.Duration
		for b := 0; b < batches; b++ {
			batch := makeBatch(dedupe.Tree(), size, brng)
			t0 := time.Now()
			if _, _, err := dedupe.ApplyBatch(batch); err != nil {
				panic(err)
			}
			dTime += time.Since(t0)
			t0 = time.Now()
			if _, _, err := plain.ApplyBatch(batch); err != nil {
				panic(err)
			}
			pTime += time.Since(t0)
		}

		dst, pst := dedupe.Stats(), plain.Stats()
		dp := DuplicateMultiQueryPoint{
			Registrations:           k,
			DistinctSpecs:           d,
			Pipelines:               dst.Pipelines,
			RegistrationsDeduped:    dst.RegistrationsDeduped,
			DedupeBoxesRebuilt:      dst.BoxesRebuilt - dst0.BoxesRebuilt,
			NoDedupeBoxesRebuilt:    pst.BoxesRebuilt - pst0.BoxesRebuilt,
			DedupeSecondsPerBatch:   dTime.Seconds() / float64(batches),
			NoDedupeSecondsPerBatch: pTime.Seconds() / float64(batches),
		}
		dp.Speedup = dp.NoDedupeSecondsPerBatch / dp.DedupeSecondsPerBatch
		base.DuplicatePoints = append(base.DuplicatePoints, dp)
	}
	return base
}

// Table renders the baseline as a markdown table for the benchtables
// output.
func (b MultiQueryBaseline) Table() Table {
	t := Table{
		ID:     "C2",
		Title:  "k standing queries under one update stream: shared QuerySet vs k engines",
		Claim:  fmt.Sprintf("the QuerySet pays the term work once — path copies and rebalances flat in k — while k independent engines pay it k× (%d batches of %d edits, %d-node tree)", b.Batches, b.BatchSize, b.TreeNodes),
		Header: []string{"queries", "path copies (shared)", "path copies (k engines)", "rebalances (shared/k engines)", "boxes rebuilt (shared/k engines)", "µs/batch (shared)", "µs/batch (k engines)", "speedup"},
	}
	for _, p := range b.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Queries),
			fmt.Sprint(p.SharedPathCopies),
			fmt.Sprint(p.IndepPathCopies),
			fmt.Sprintf("%d / %d", p.SharedRebalances, p.IndepRebalances),
			fmt.Sprintf("%d / %d", p.SharedBoxesRebuilt, p.IndepBoxesRebuilt),
			fmt.Sprintf("%.0f", p.SharedSecondsPerBatch*1e6),
			fmt.Sprintf("%.0f", p.IndepSecondsPerBatch*1e6),
			fmt.Sprintf("%.2fx", p.Speedup),
		})
	}
	return t
}

// DuplicateTable renders the duplicate-heavy sweep as a markdown table
// for the benchtables output.
func (b MultiQueryBaseline) DuplicateTable() Table {
	t := Table{
		ID:     "C2-dup",
		Title:  "k duplicate registrations over d distinct queries: pipeline dedupe vs NoDedupe",
		Claim:  fmt.Sprintf("the multi-query optimizer dedupes content-equal automata onto refcounted shared pipelines, so per-batch repair tracks the d distinct specs, not the k registrations (%d batches of %d edits, %d-node tree)", b.Batches, b.BatchSize, b.TreeNodes),
		Header: []string{"registrations", "distinct", "pipelines", "deduped", "boxes rebuilt (dedupe/NoDedupe)", "µs/batch (dedupe)", "µs/batch (NoDedupe)", "speedup"},
	}
	for _, p := range b.DuplicatePoints {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Registrations),
			fmt.Sprint(p.DistinctSpecs),
			fmt.Sprint(p.Pipelines),
			fmt.Sprint(p.RegistrationsDeduped),
			fmt.Sprintf("%d / %d", p.DedupeBoxesRebuilt, p.NoDedupeBoxesRebuilt),
			fmt.Sprintf("%.0f", p.DedupeSecondsPerBatch*1e6),
			fmt.Sprintf("%.0f", p.NoDedupeSecondsPerBatch*1e6),
			fmt.Sprintf("%.2fx", p.Speedup),
		})
	}
	return t
}
