// Package experiments implements the measurement harness: one function
// per experiment (E1-E10, T1, T2, F1, C1 — indexed in DESIGN.md §4),
// each returning a table whose rows the paper's complexity claims
// predict the shape of. cmd/benchtables prints them; bench_test.go
// wraps them as benchmarks.
package experiments

import (
	"fmt"
	"iter"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/enumerate"
	"repro/internal/forest"
	"repro/internal/markedanc"
	"repro/internal/spanner"
	"repro/internal/tree"
	"repro/internal/tva"
	"repro/internal/workload"
)

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim whose shape the rows must show
	Header []string
	Rows   [][]string
}

// Markdown renders the table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Claim (paper):* %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

// delaySamples measures the time between consecutive results, up to
// limit samples.
func delaySamples(e interface {
	Results() iter.Seq[tree.Assignment]
}, limit int) []time.Duration {
	var out []time.Duration
	last := time.Now()
	for range e.Results() {
		now := time.Now()
		out = append(out, now.Sub(last))
		last = now
		if len(out) >= limit {
			break
		}
	}
	return out
}

func sizesFor(quick bool, full []int) []int {
	if !quick {
		return full
	}
	return full[:len(full)-1]
}

func dur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// E1Table1 reproduces the Table 1 landscape: delay and update time of
// this paper's algorithm vs the naive-delay variant (polylog-delay
// regime of Losemann-Martens) vs full rebuilds (static algorithms made
// update-aware naively).
func E1Table1(quick bool) Table {
	rng := rand.New(rand.NewSource(1))
	t := Table{
		ID:    "E1",
		Title: "Table 1 landscape: delay and update time per algorithm",
		Claim: "this paper: O(1) delay and O(log n) updates; depth-dependent delay for naive box-enum; Θ(n) updates for rebuild",
		Header: []string{"n", "ours: update", "ours: delay p50", "naive: delay p50",
			"rebuild: update"},
	}
	q := workload.AncestorQuery()
	for _, n := range sizesFor(quick, []int{1000, 4000, 16000, 64000}) {
		ut, err := workload.Tree(workload.ShapeRandom, n, rng)
		if err != nil {
			panic(err)
		}
		ours, err := core.NewTreeEnumerator(ut.Clone(), q, core.Options{})
		if err != nil {
			panic(err)
		}
		editor := workload.NewEditor(ours, rng)
		const nEdits = 200
		start := time.Now()
		for i := 0; i < nEdits; i++ {
			if err := editor.Step(); err != nil {
				panic(err)
			}
		}
		updOurs := time.Since(start) / nEdits
		delayOurs := median(delaySamples(ours, 2000))

		naive, err := core.NewTreeEnumerator(ut.Clone(), q, core.Options{Mode: enumerate.ModeNaive})
		if err != nil {
			panic(err)
		}
		delayNaive := median(delaySamples(naive, 2000))

		reb, err := baseline.NewRebuildEnumerator(ut.Clone(), q, core.Options{})
		if err != nil {
			panic(err)
		}
		rebEdits := workload.RandomEdits(3, rng)
		start = time.Now()
		for _, ed := range rebEdits {
			if err := workload.Apply(reb, ed); err != nil {
				panic(err)
			}
		}
		updReb := time.Since(start) / time.Duration(len(rebEdits))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), dur(updOurs), dur(delayOurs), dur(delayNaive), dur(updReb),
		})
	}
	return t
}

// E2Preprocessing measures preprocessing cost per node across tree sizes
// and shapes.
func E2Preprocessing(quick bool) Table {
	rng := rand.New(rand.NewSource(2))
	t := Table{
		ID:     "E2",
		Title:  "Preprocessing time, linear in |T| (Theorem 8.1)",
		Claim:  "preprocessing O(|T|·poly(|Q|)): ns/node stays flat as n grows",
		Header: []string{"shape", "n", "total", "ns/node"},
	}
	q := workload.AncestorQuery()
	for _, shape := range []string{workload.ShapeRandom, workload.ShapePath, workload.ShapeXMLish} {
		for _, n := range sizesFor(quick, []int{2000, 8000, 32000, 128000}) {
			ut, err := workload.Tree(shape, n, rng)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			if _, err := core.NewTreeEnumerator(ut, q, core.Options{}); err != nil {
				panic(err)
			}
			el := time.Since(start)
			t.Rows = append(t.Rows, []string{
				shape, fmt.Sprint(n), dur(el), fmt.Sprintf("%.0f", float64(el.Nanoseconds())/float64(n)),
			})
		}
	}
	return t
}

// E3Delay measures enumeration delay across tree sizes.
func E3Delay(quick bool) Table {
	rng := rand.New(rand.NewSource(3))
	t := Table{
		ID:     "E3",
		Title:  "Enumeration delay, independent of |T| (Theorem 8.1)",
		Claim:  "delay O(poly(|Q|)·|S|), no dependence on n: p50/p99 stay flat",
		Header: []string{"n", "results", "delay p50", "delay p99"},
	}
	q := workload.AncestorQuery()
	for _, n := range sizesFor(quick, []int{1000, 4000, 16000, 64000, 256000}) {
		ut, err := workload.Tree(workload.ShapeRandom, n, rng)
		if err != nil {
			panic(err)
		}
		e, err := core.NewTreeEnumerator(ut, q, core.Options{})
		if err != nil {
			panic(err)
		}
		ds := delaySamples(e, 20000)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(ds)), dur(median(ds)), dur(percentile(ds, 0.99)),
		})
	}
	return t
}

// E4Updates measures amortized update time across tree sizes.
func E4Updates(quick bool) Table {
	rng := rand.New(rand.NewSource(4))
	t := Table{
		ID:     "E4",
		Title:  "Update time, logarithmic in |T| (Theorem 8.1)",
		Claim:  "updates O(log n·poly(|Q|)): µs/update grows like log n (flat ratio column)",
		Header: []string{"n", "update avg", "boxes/update", "ratio to log2(n)", "rebalances"},
	}
	q := workload.AncestorQuery()
	for _, n := range sizesFor(quick, []int{1000, 4000, 16000, 64000, 256000}) {
		ut, err := workload.Tree(workload.ShapeRandom, n, rng)
		if err != nil {
			panic(err)
		}
		e, err := core.NewTreeEnumerator(ut, q, core.Options{})
		if err != nil {
			panic(err)
		}
		before := e.Stats()
		editor := workload.NewEditor(e, rng)
		const nEdits = 500
		start := time.Now()
		for i := 0; i < nEdits; i++ {
			if err := editor.Step(); err != nil {
				panic(err)
			}
		}
		el := time.Since(start) / nEdits
		after := e.Stats()
		boxes := float64(after.BoxesRebuilt-before.BoxesRebuilt) / float64(nEdits)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), dur(el),
			fmt.Sprintf("%.1f", boxes),
			fmt.Sprintf("%.2f", float64(el.Nanoseconds())/1000/math.Log2(float64(n))),
			fmt.Sprint(after.Rebalances - before.Rebalances),
		})
	}
	return t
}

// E5Combined sweeps the automaton size of the DescendantAtDepth family:
// the paper's pipeline stays polynomial in |Q| while the
// determinize-first route explodes.
func E5Combined(quick bool) Table {
	rng := rand.New(rand.NewSource(5))
	t := Table{
		ID:    "E5",
		Title: "Combined complexity in the nondeterministic automaton (2nd contribution)",
		Claim: "preprocessing/update/delay polynomial in |Q| for NTAs; determinization is exponential",
		Header: []string{"k", "|Q| (stepwise)", "|Q'| ours (translated)", "preproc ours",
			"|Q'| det-first", "det-first time"},
	}
	maxK := 6
	if quick {
		maxK = 4
	}
	alpha := []tree.Label{"a", "b"}
	for k := 1; k <= maxK; k++ {
		q := tva.DescendantAtDepth(alpha, "b", k, 0)
		ut := tva.RandomUnrankedTree(rng, 2000, alpha)
		start := time.Now()
		e, err := core.NewTreeEnumerator(ut.Clone(), q, core.Options{})
		if err != nil {
			panic(err)
		}
		oursT := time.Since(start)
		oursStates := e.Stats().TranslatedStates

		start = time.Now()
		_, st, err := baseline.DeterminizeFirst(q)
		if err != nil {
			panic(err)
		}
		detT := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(q.NumStates), fmt.Sprint(oursStates), dur(oursT),
			fmt.Sprint(st.DetStates), dur(detT),
		})
	}
	return t
}

// E6Words measures the word pipeline of Theorem 8.5 with a spanner
// query.
func E6Words(quick bool) Table {
	rng := rand.New(rand.NewSource(6))
	t := Table{
		ID:     "E6",
		Title:  "Words and document spanners under updates (Theorem 8.5)",
		Claim:  "preprocessing O(|w|), update O(log|w|), delay independent of |w|",
		Header: []string{"|w|", "preproc", "ns/letter", "update avg", "delay p50"},
	}
	p := spanner.Contains(spanner.Cat(spanner.Lit{Label: "a"}, spanner.Capture{Var: 0, Inner: spanner.Plus{Inner: spanner.Lit{Label: "b"}}}))
	q, err := spanner.CompileWVA(p, []tree.Label{"a", "b", "c"})
	if err != nil {
		panic(err)
	}
	for _, n := range sizesFor(quick, []int{1000, 4000, 16000, 64000, 256000}) {
		letters := workload.Word(n, rng)
		start := time.Now()
		e, err := core.NewWordEnumerator(letters, q, core.Options{})
		if err != nil {
			panic(err)
		}
		pre := time.Since(start)
		// Updates: positions resolve to IDs in O(log n) via IDAt.
		start = time.Now()
		const edits = 300
		for i := 0; i < edits; i++ {
			id, err := e.IDAt(rng.Intn(e.Len()))
			if err != nil {
				panic(err)
			}
			switch rng.Intn(3) {
			case 0:
				if err := e.Relabel(id, workload.Word(1, rng)[0]); err != nil {
					panic(err)
				}
			case 1:
				if _, err := e.InsertAfter(id, workload.Word(1, rng)[0]); err != nil {
					panic(err)
				}
			default:
				if e.Len() > 1 {
					if err := e.Delete(id); err != nil {
						panic(err)
					}
				}
			}
		}
		upd := time.Since(start) / edits
		ds := delaySamples(e, 10000)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), dur(pre), fmt.Sprintf("%.0f", float64(pre.Nanoseconds())/float64(n)),
			dur(upd), dur(median(ds)),
		})
	}
	return t
}

// E7MarkedAncestor measures the Theorem 9.2 reduction: enumeration-based
// marked-ancestor operations vs the walk baseline and the lower-bound
// curve.
func E7MarkedAncestor(quick bool) Table {
	rng := rand.New(rand.NewSource(7))
	t := Table{
		ID:     "E7",
		Title:  "Marked-ancestor reduction and the Ω(log n/log log n) bound (Theorem 9.2)",
		Claim:  "enumeration ops grow like log n ≳ the lower-bound curve; walk queries grow linearly on paths",
		Header: []string{"n (path)", "enum op avg", "walk query avg", "log n/log log n", "enum op / curve"},
	}
	for _, n := range sizesFor(quick, []int{1000, 4000, 16000, 64000}) {
		ut, err := workload.Tree(workload.ShapePath, n, rng)
		if err != nil {
			panic(err)
		}
		for _, nd := range ut.Nodes() {
			if err := ut.Relabel(nd.ID, markedanc.Unmarked); err != nil {
				panic(err)
			}
		}
		nodes := ut.Nodes()
		walk := markedanc.NewWalkSolver(ut)
		enum, err := markedanc.NewEnumerationSolver(ut)
		if err != nil {
			panic(err)
		}
		ops := 60
		start := time.Now()
		for i := 0; i < ops; i++ {
			nd := nodes[rng.Intn(len(nodes))]
			switch rng.Intn(3) {
			case 0:
				if err := enum.Mark(nd.ID); err != nil {
					panic(err)
				}
			case 1:
				if err := enum.Unmark(nd.ID); err != nil {
					panic(err)
				}
			default:
				if _, err := enum.Query(nd.ID); err != nil {
					panic(err)
				}
			}
		}
		enumOp := time.Since(start) / time.Duration(ops)
		// Walk queries on the deepest node dominate.
		deepest := nodes[len(nodes)-1]
		start = time.Now()
		for i := 0; i < 200; i++ {
			if _, err := walk.Query(deepest.ID); err != nil {
				panic(err)
			}
		}
		walkOp := time.Since(start) / 200
		curve := markedanc.LowerBoundCurve(n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), dur(enumOp), dur(walkOp),
			fmt.Sprintf("%.2f", curve),
			fmt.Sprintf("%.0f", float64(enumOp.Nanoseconds())/curve),
		})
	}
	return t
}

// E8JumpAblation isolates Section 6: enumeration delay of the indexed
// box enumeration vs the naive one as the circuit depth grows (deep
// binary combs with matches only at the bottom).
func E8JumpAblation(quick bool) Table {
	t := Table{
		ID:     "E8",
		Title:  "Jump pointers (Algorithm 3) vs naive box-enum (Figure 1 / Lemma 6.4)",
		Claim:  "indexed enumeration independent of depth; naive pays the root-to-matches descent",
		Header: []string{"depth", "indexed full pass", "naive full pass", "indexed 1st result", "naive 1st result"},
	}
	x := tree.NewVarSet(0)
	raw := &tva.Binary{
		NumStates: 2,
		Alphabet:  []tree.Label{"a", "b"},
		Vars:      x,
		Init: []tva.InitRule{
			{Label: "a", Set: 0, State: 0}, {Label: "b", Set: 0, State: 0},
			{Label: "a", Set: x, State: 1},
		},
		Final: []tva.State{1},
	}
	for _, l := range []tree.Label{"a", "b"} {
		raw.Delta = append(raw.Delta,
			tva.Triple{Label: l, Left: 0, Right: 0, Out: 0},
			tva.Triple{Label: l, Left: 1, Right: 0, Out: 1},
			tva.Triple{Label: l, Left: 0, Right: 1, Out: 1},
		)
	}
	h := raw.Homogenize()
	bd, err := circuit.NewBuilder(h)
	if err != nil {
		panic(err)
	}
	depths := []int{200, 1000, 5000, 20000}
	if quick {
		depths = depths[:3]
	}
	for _, depth := range depths {
		// Left comb: matches (a-leaves) only in the deepest 16 leaves.
		bt := tree.NewBinary()
		cur := bt.Leaf("a")
		for i := 0; i < depth; i++ {
			lab := tree.Label("b")
			if i < 15 {
				lab = "a"
			}
			cur = bt.Inner("b", cur, bt.Leaf(lab))
		}
		bt.SetRoot(cur)
		c := bd.Build(bt)
		croot := enumerate.BuildIndex(c)
		gamma, emptyOK := bd.RootAccepting(c)
		measure := func(mode enumerate.Mode) (pass, first time.Duration) {
			var passes, firsts []time.Duration
			for p := 0; p < 30; p++ {
				start := time.Now()
				got1 := false
				for range enumerate.Assignments(croot, gamma, emptyOK, mode) {
					if !got1 {
						firsts = append(firsts, time.Since(start))
						got1 = true
					}
				}
				passes = append(passes, time.Since(start))
			}
			return median(passes), median(firsts)
		}
		ip, ifst := measure(enumerate.ModeIndexed)
		np, nfst := measure(enumerate.ModeNaive)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(depth), dur(ip), dur(np), dur(ifst), dur(nfst),
		})
	}
	return t
}

// E9CircuitSize measures circuit size linearity (Lemma 3.7).
func E9CircuitSize(quick bool) Table {
	rng := rand.New(rand.NewSource(9))
	t := Table{
		ID:     "E9",
		Title:  "Circuit size O(|T|·|A|) and width ≤ |Q'| (Lemma 3.7)",
		Claim:  "gates per node flat in n; width bounded by the automaton, not the tree",
		Header: []string{"n", "boxes", "gates", "gates/node", "width", "|Q'| (homogenized)"},
	}
	q := workload.AncestorQuery()
	for _, n := range sizesFor(quick, []int{1000, 4000, 16000, 64000}) {
		ut, err := workload.Tree(workload.ShapeRandom, n, rng)
		if err != nil {
			panic(err)
		}
		e, err := core.NewTreeEnumerator(ut, q, core.Options{})
		if err != nil {
			panic(err)
		}
		st := e.Stats()
		gates := st.UnionGates + st.TimesGates + st.VarGates
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(st.Boxes), fmt.Sprint(gates),
			fmt.Sprintf("%.1f", float64(gates)/float64(n)),
			fmt.Sprint(st.CircuitWidth), fmt.Sprint(st.AutomatonStates),
		})
	}
	return t
}

// E10MatMul compares the naive O(w³) join with the word-packed
// composition (the paper's ω remark).
func E10MatMul(quick bool) Table {
	rng := rand.New(rand.NewSource(10))
	t := Table{
		ID:     "E10",
		Title:  "Relation composition: naive join vs word-packed (§6 ω remark)",
		Claim:  "both cubic, packed version ~w/64 faster; correctness identical (tested)",
		Header: []string{"w", "naive", "packed", "speedup"},
	}
	ws := []int{16, 64, 128, 256}
	if quick {
		ws = ws[:3]
	}
	for _, w := range ws {
		a := bitset.NewMatrix(w, w)
		b := bitset.NewMatrix(w, w)
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				if rng.Float64() < 0.3 {
					a.Set(i, j)
				}
				if rng.Float64() < 0.3 {
					b.Set(i, j)
				}
			}
		}
		reps := 200000 / (w * w)
		if reps < 3 {
			reps = 3
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			bitset.ComposeNaive(a, b)
		}
		naive := time.Since(start) / time.Duration(reps)
		start = time.Now()
		for i := 0; i < reps; i++ {
			bitset.Compose(a, b)
		}
		packed := time.Since(start) / time.Duration(reps)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w), dur(naive), dur(packed),
			fmt.Sprintf("%.1fx", float64(naive)/float64(packed)),
		})
	}
	return t
}

// T1Homogenize reports homogenization growth (Lemma 2.1).
func T1Homogenize() Table {
	rng := rand.New(rand.NewSource(11))
	t := Table{
		ID:     "T1",
		Title:  "Homogenization growth (Lemma 2.1)",
		Claim:  "at most 2× states and 4× transitions, linear time",
		Header: []string{"|Q|", "|δ|", "|Q| homog", "|δ| homog", "time"},
	}
	for _, q := range []int{4, 16, 64, 128} {
		density := 0.3
		if q >= 16 {
			density = 0.1
		}
		if q >= 64 {
			density = 0.02
		}
		a := tva.RandomBinary(rng, q, []tree.Label{"a", "b"}, tree.NewVarSet(0), density)
		start := time.Now()
		h := a.Homogenize()
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(a.NumStates), fmt.Sprint(len(a.Delta)),
			fmt.Sprint(h.NumStates), fmt.Sprint(len(h.Delta)), dur(el),
		})
	}
	return t
}

// T2Translation reports translation sizes (Lemma 7.4 and Corollary 8.4).
func T2Translation() Table {
	t := Table{
		ID:     "T2",
		Title:  "Automaton translation sizes (Lemma 7.4, Corollary 8.4)",
		Claim:  "trees: |Q'| = O(|Q|⁴) before trimming; words: O(|Q|²); reachability keeps both far smaller",
		Header: []string{"family", "|Q|", "|Q'| translated (trimmed)", "|δ'|", "time"},
	}
	alpha := []tree.Label{"a", "b"}
	for k := 1; k <= 6; k++ {
		q := tva.DescendantAtDepth(alpha, "b", k, 0)
		start := time.Now()
		ab, err := forest.Translate(q)
		if err != nil {
			panic(err)
		}
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("tree DescAtDepth(%d)", k), fmt.Sprint(q.NumStates),
			fmt.Sprint(ab.NumStates), fmt.Sprint(len(ab.Delta)), dur(el),
		})
	}
	for _, m := range []int{2, 4, 8, 16} {
		q := chainWVA(m)
		start := time.Now()
		ab, err := forest.TranslateWord(q)
		if err != nil {
			panic(err)
		}
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("word chain(%d)", m), fmt.Sprint(q.NumStates),
			fmt.Sprint(ab.NumStates), fmt.Sprint(len(ab.Delta)), dur(el),
		})
	}
	return t
}

// chainWVA accepts words containing "a b^m" and selects the b-run.
func chainWVA(m int) *tva.WVA {
	alpha := []tree.Label{"a", "b"}
	a := &tva.WVA{NumStates: m + 2, Alphabet: alpha, Vars: tree.NewVarSet(0)}
	x := tree.NewVarSet(0)
	// 0: scanning; 1..m: inside the run; m+1: done.
	for _, l := range alpha {
		a.Trans = append(a.Trans, tva.WTrans{From: 0, Label: l, Set: 0, To: 0})
		a.Trans = append(a.Trans, tva.WTrans{From: tva.State(m + 1), Label: l, Set: 0, To: tva.State(m + 1)})
	}
	for i := 0; i < m; i++ {
		a.Trans = append(a.Trans, tva.WTrans{From: tva.State(i), Label: "b", Set: x, To: tva.State(i + 1)})
	}
	a.Trans = append(a.Trans, tva.WTrans{From: tva.State(m), Label: "a", Set: 0, To: tva.State(m + 1)})
	a.Initial = []tva.State{0}
	a.Final = []tva.State{tva.State(m), tva.State(m + 1)}
	return a
}

// F1Order demonstrates Figure 1: the order in which Algorithm 3 visits
// interesting boxes (first interesting box B1 first, then its subtree,
// then right subtrees of bidirectional boxes top-down).
func F1Order() Table {
	t := Table{
		ID:     "F1",
		Title:  "Figure 1: box visit order of Algorithm 3",
		Claim:  "B1 output first, then its subtree, then right subtrees of bidirectional path boxes",
		Header: []string{"visit #", "box (leaf label)", "preorder rank"},
	}
	// A small two-level comb whose matches sit in several subtrees.
	bt, err := tree.ParseBinary("(b (b (a) (b)) (b (b (a) (a)) (a)))")
	if err != nil {
		panic(err)
	}
	x := tree.NewVarSet(0)
	raw := &tva.Binary{
		NumStates: 2,
		Alphabet:  []tree.Label{"a", "b"},
		Vars:      x,
		Init: []tva.InitRule{
			{Label: "a", Set: 0, State: 0}, {Label: "b", Set: 0, State: 0},
			{Label: "a", Set: x, State: 1},
		},
		Final: []tva.State{1},
	}
	for _, l := range []tree.Label{"a", "b"} {
		raw.Delta = append(raw.Delta,
			tva.Triple{Label: l, Left: 0, Right: 0, Out: 0},
			tva.Triple{Label: l, Left: 1, Right: 0, Out: 1},
			tva.Triple{Label: l, Left: 0, Right: 1, Out: 1},
		)
	}
	bd, err := circuit.NewBuilder(raw.Homogenize())
	if err != nil {
		panic(err)
	}
	c := bd.Build(bt)
	croot := enumerate.BuildIndex(c)
	gamma, _ := bd.RootAccepting(c)
	// Preorder ranks of boxes.
	rank := map[*circuit.Box]int{}
	var pre func(b *circuit.Box)
	pre = func(b *circuit.Box) {
		if b == nil {
			return
		}
		rank[b] = len(rank)
		pre(b.Left)
		pre(b.Right)
	}
	pre(c.Root)
	i := 0
	for br := range enumerate.IndexedBoxEnum(croot, gamma) {
		i++
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i), string(br.Box.Box.Label), fmt.Sprint(rank[br.Box.Box]),
		})
	}
	return t
}

// All runs every experiment.
func All(quick bool) []Table {
	return []Table{
		E1Table1(quick), E2Preprocessing(quick), E3Delay(quick), E4Updates(quick),
		E5Combined(quick), E6Words(quick), E7MarkedAncestor(quick),
		E8JumpAblation(quick), E9CircuitSize(quick), E10MatMul(quick),
		T1Homogenize(), T2Translation(), F1Order(),
	}
}
