package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/tree"
	"repro/internal/tva"
	"repro/internal/workload"
)

// DirectAccessPoint is one row of the direct-access baseline: Count and
// At(j) latency on one answer-set size, engine (semiring count +
// count-guided descent) vs the drain baseline (enumerate and discard).
type DirectAccessPoint struct {
	TreeNodes     int     `json:"tree_nodes"`
	Answers       int     `json:"answers"`
	CountDirectNs float64 `json:"count_direct_ns"` // Snapshot.Count, fast path
	CountDrainNs  float64 `json:"count_drain_ns"`  // full enumeration count
	AtDirectNs    float64 `json:"at_direct_ns"`    // Snapshot.At(answers/2), descent
	AtDrainNs     float64 `json:"at_drain_ns"`     // enumerate to rank answers/2
	PageDirectNs  float64 `json:"page_direct_ns"`  // Snapshot.Page(answers/2, 16)
	CountSpeedup  float64 `json:"count_speedup"`
	AtSpeedup     float64 `json:"at_speedup"`
}

// DirectAccessBaseline is the machine-readable output of the
// direct-access experiment (written by cmd/benchtables as
// BENCH_directaccess.json): the claim is that the direct columns stay
// flat while the drain columns grow linearly with the answer count.
type DirectAccessBaseline struct {
	Query  string              `json:"query"`
	Points []DirectAccessPoint `json:"points"`
}

// DirectAccess measures Count and At(j) latency against the answer-set
// size. The standing query selects every b-node of a random tree, so
// the answer count grows linearly with the tree; before measuring, a
// batch of random edits runs through the engine so the counts being
// read are maintained ones (trunk-repaired), not a fresh build.
func DirectAccess(quick bool) DirectAccessBaseline {
	sizes := sizesFor(quick, []int{4000, 16000, 64000})
	reps := 200
	if quick {
		reps = 50
	}
	base := DirectAccessBaseline{Query: "select:b (unambiguous; DirectAccess fast path)"}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(42))
		ut, err := workload.Tree(workload.ShapeRandom, n, rng)
		if err != nil {
			panic(err)
		}
		q := tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0)
		eng, err := engine.NewTree(ut, q, engine.Options{})
		if err != nil {
			panic(err)
		}
		// Exercise the maintenance path before measuring.
		ed := workload.NewEditor(treeMutator{eng}, rand.New(rand.NewSource(43)))
		for i := 0; i < 64; i++ {
			if err := ed.Step(); err != nil {
				panic(err)
			}
		}
		s := eng.Snapshot()
		if !s.DirectAccess() {
			panic("direct-access experiment query must be unambiguous")
		}

		answers := 0
		for range s.Results() {
			answers++
		}
		mid := answers / 2

		p := DirectAccessPoint{TreeNodes: n, Answers: answers}
		p.CountDirectNs = measureNs(reps, func() {
			if s.Count() != answers {
				panic("direct count diverged")
			}
		})
		p.CountDrainNs = measureNs(3, func() {
			c := 0
			for range s.Results() {
				c++
			}
			if c != answers {
				panic("drain count diverged")
			}
		})
		p.AtDirectNs = measureNs(reps, func() {
			if _, err := s.At(mid); err != nil {
				panic(err)
			}
		})
		p.AtDrainNs = measureNs(3, func() {
			i := 0
			for range s.Results() {
				if i == mid {
					break
				}
				i++
			}
		})
		p.PageDirectNs = measureNs(reps/4+1, func() {
			if got := s.Page(mid, 16); len(got) == 0 {
				panic("empty page")
			}
		})
		p.CountSpeedup = p.CountDrainNs / p.CountDirectNs
		p.AtSpeedup = p.AtDrainNs / p.AtDirectNs
		base.Points = append(base.Points, p)
	}
	return base
}

// measureNs runs f reps times and returns the median latency in ns.
func measureNs(reps int, f func()) float64 {
	ds := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		ds = append(ds, time.Since(t0))
	}
	return float64(median(ds).Nanoseconds())
}

// Table renders the baseline for the benchtables output.
func (b DirectAccessBaseline) Table() Table {
	t := Table{
		ID:     "D1",
		Title:  "Direct access: Count and At(j) vs answer-set size",
		Claim:  "semiring Count and count-guided At(j) are independent of the answer count; the drain baseline grows linearly",
		Header: []string{"nodes", "answers", "Count direct", "Count drain", "At(mid) direct", "At(mid) drain", "Page(mid,16)", "Count speedup", "At speedup"},
	}
	for _, p := range b.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.TreeNodes),
			fmt.Sprint(p.Answers),
			dur(time.Duration(p.CountDirectNs)),
			dur(time.Duration(p.CountDrainNs)),
			dur(time.Duration(p.AtDirectNs)),
			dur(time.Duration(p.AtDrainNs)),
			dur(time.Duration(p.PageDirectNs)),
			fmt.Sprintf("%.0fx", p.CountSpeedup),
			fmt.Sprintf("%.0fx", p.AtSpeedup),
		})
	}
	return t
}
