package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/tree"
	"repro/internal/workload"
)

// This file is experiment E-kernel: the vectorized bitset kernel layer
// (AVX2/POPCNT dispatch in internal/bitset) measured at two levels on
// ONE binary, using bitset.ForceGeneric to flip between the dispatched
// vector kernels and the portable Go loops:
//
//   - kernel level: ns/op of the flat word kernels (Set.Or,
//     Matrix.Count, ComposeInto) across operand widths, vector vs
//     purego — the direct SIMD effect, which unlike multicore speedups
//     is honestly measurable on a 1-CPU host;
//   - end-to-end: B1-style repair ns/edit and a full answer drain
//     ns/answer, vector vs purego — how much of the pipeline the
//     kernels actually carry.
//
// The committed baseline (BENCH_kernels.json, written by cmd/benchtables
// -kernels) records the CPU feature flags alongside the numbers: on a
// host without AVX2 the two paths coincide, speedups sit at ~1.0, and
// the JSON says so via kernels.avx2=false rather than pretending.
// CI bounds (when avx2 is true) require ≥1.5x on the multi-word
// orWords and composeInto points.

// KernelPoint is one kernel-level row: the same operation timed on the
// vector path and the forced-generic path.
type KernelPoint struct {
	// Kernel names the operation: "orWords", "count", "composeInto".
	Kernel string `json:"kernel"`
	// Words is the operand width in 64-bit words (for composeInto, the
	// words per destination row — the vectorized accumulation axis).
	Words    int     `json:"words"`
	VectorNs float64 `json:"vector_ns"`
	PureGoNs float64 `json:"purego_ns"`
	Speedup  float64 `json:"speedup"`
}

// KernelEndToEnd is one pipeline-level comparison row.
type KernelEndToEnd struct {
	// Metric names the unit: "ns/edit" (repair) or "ns/answer" (drain).
	Metric   string  `json:"metric"`
	VectorNs float64 `json:"vector_ns"`
	PureGoNs float64 `json:"purego_ns"`
	Speedup  float64 `json:"speedup"`
}

// KernelsBaseline is the machine-readable output of experiment E-kernel
// (written by cmd/benchtables as BENCH_kernels.json).
type KernelsBaseline struct {
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	TreeNodes  int    `json:"tree_nodes"`
	Edits      int    `json:"edits"`
	QuerySpec  string `json:"query_spec"`
	// Kernels records what this binary detected and dispatched — the
	// feature flags that make the speedup numbers interpretable.
	Kernels bitset.KernelInfo `json:"kernels"`

	Points []KernelPoint  `json:"points"`
	Repair KernelEndToEnd `json:"repair"`
	Drain  KernelEndToEnd `json:"drain"`
}

// timeOp returns mean ns/op of f over iters runs (after one warm-up).
func timeOp(iters int, f func()) float64 {
	f()
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(iters)
}

// bothPaths times f on the live (vector) path and under ForceGeneric.
func bothPaths(iters int, f func()) (vec, gen float64) {
	vec = timeOp(iters, f)
	restore := bitset.ForceGeneric()
	gen = timeOp(iters, f)
	restore()
	return vec, gen
}

func speedup(vec, gen float64) float64 {
	if vec <= 0 {
		return 0
	}
	return gen / vec
}

// Kernels runs experiment E-kernel.
func Kernels(quick bool) KernelsBaseline {
	n, edits := 8000, 400
	setIters, composeIters := 2_000_000, 30_000
	if quick {
		n, edits = 1500, 100
		setIters, composeIters = 100_000, 2_000
	}
	spec, q := buildQuery()
	base := KernelsBaseline{
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		TreeNodes:  n,
		Edits:      edits,
		QuerySpec:  spec,
		Kernels:    bitset.Kernels(),
	}
	rng := rand.New(rand.NewSource(171))

	// Kernel level. Operands are built once outside the timed loops;
	// densities keep every iteration's work identical on both paths.
	for _, words := range []int{1, 16, 64} {
		nbits := words * 64
		dst, src := bitset.NewSet(nbits), bitset.NewSet(nbits)
		for i := 0; i < nbits; i++ {
			if rng.Intn(2) == 0 {
				src.Add(i)
			}
		}
		vec, gen := bothPaths(setIters, func() { dst.Or(src) })
		base.Points = append(base.Points, KernelPoint{
			Kernel: "orWords", Words: words,
			VectorNs: vec, PureGoNs: gen, Speedup: speedup(vec, gen),
		})
	}
	for _, words := range []int{16, 64} {
		m := randMatrixExp(rng, 64, words*64, 0.3)
		sink := 0
		vec, gen := bothPaths(setIters/words, func() { sink += m.Count() })
		_ = sink
		base.Points = append(base.Points, KernelPoint{
			Kernel: "count", Words: words,
			VectorNs: vec, PureGoNs: gen, Speedup: speedup(vec, gen),
		})
	}
	for _, words := range []int{1, 8} {
		cols := words * 64
		a := randMatrixExp(rng, 64, 64, 0.3)
		b := randMatrixExp(rng, 64, cols, 0.3)
		dst := bitset.NewMatrix(64, cols)
		vec, gen := bothPaths(composeIters, func() {
			for i := 0; i < 64; i++ {
				dst.Row(i).Clear()
			}
			bitset.ComposeInto(dst, a, b)
		})
		base.Points = append(base.Points, KernelPoint{
			Kernel: "composeInto", Words: words,
			VectorNs: vec, PureGoNs: gen, Speedup: speedup(vec, gen),
		})
	}

	// End to end. Workers=1 keeps the engine single-goroutine, which the
	// ForceGeneric window requires (the dispatch flags are not
	// synchronized — see its doc comment).
	ut, err := workload.Tree(workload.ShapeRandom, n, rng)
	if err != nil {
		panic(err)
	}
	eng, err := engine.NewTree(ut.Clone(), q, engine.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	labels := []tree.Label{"a", "b", "c"}
	var ids []tree.NodeID
	for _, node := range eng.Tree().Nodes() {
		ids = append(ids, node.ID)
	}
	erng := rand.New(rand.NewSource(172))
	repair := func() float64 {
		for i := 0; i < edits/4; i++ { // warm-up / settle
			if _, err := eng.Relabel(ids[erng.Intn(len(ids))], labels[erng.Intn(len(labels))]); err != nil {
				panic(err)
			}
		}
		t0 := time.Now()
		for i := 0; i < edits; i++ {
			if _, err := eng.Relabel(ids[erng.Intn(len(ids))], labels[erng.Intn(len(labels))]); err != nil {
				panic(err)
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(edits)
	}
	vecRepair := repair()
	restore := bitset.ForceGeneric()
	genRepair := repair()
	restore()
	base.Repair = KernelEndToEnd{
		Metric: "ns/edit", VectorNs: vecRepair, PureGoNs: genRepair,
		Speedup: speedup(vecRepair, genRepair),
	}

	drain := func() float64 {
		snap := eng.Snapshot()
		answers := 0
		t0 := time.Now()
		for range snap.Results() {
			answers++
		}
		if answers == 0 {
			return 0
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(answers)
	}
	drain() // warm-up
	vecDrain := drain()
	restore = bitset.ForceGeneric()
	genDrain := drain()
	restore()
	base.Drain = KernelEndToEnd{
		Metric: "ns/answer", VectorNs: vecDrain, PureGoNs: genDrain,
		Speedup: speedup(vecDrain, genDrain),
	}
	return base
}

// randMatrixExp fills a rows×cols matrix with density p (experiment
// operand construction; not in the timed loops).
func randMatrixExp(rng *rand.Rand, rows, cols int, p float64) bitset.Matrix {
	m := bitset.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < p {
				m.Set(i, j)
			}
		}
	}
	return m
}

// Table renders the baseline for the benchtables output.
func (b KernelsBaseline) Table() Table {
	t := Table{
		ID:    "E-kernel",
		Title: "Vectorized bitset kernels: SIMD dispatch vs portable Go loops",
		Claim: fmt.Sprintf("runtime-dispatched AVX2/POPCNT kernels accelerate the multi-word composition/reachability loops, falling back bit-for-bit to portable Go elsewhere (arch %s, avx2=%v, popcnt=%v, vector=%q, %d CPU(s), %d-node tree, query %s)",
			b.Kernels.Arch, b.Kernels.AVX2, b.Kernels.POPCNT, b.Kernels.Vector, b.CPUs, b.TreeNodes, b.QuerySpec),
		Header: []string{"kernel", "words", "vector ns/op", "purego ns/op", "speedup"},
	}
	for _, p := range b.Points {
		t.Rows = append(t.Rows, []string{
			p.Kernel,
			fmt.Sprintf("%d", p.Words),
			fmt.Sprintf("%.1f", p.VectorNs),
			fmt.Sprintf("%.1f", p.PureGoNs),
			fmt.Sprintf("%.2fx", p.Speedup),
		})
	}
	t.Rows = append(t.Rows, []string{
		"repair (end-to-end)", "—",
		fmt.Sprintf("%.0f %s", b.Repair.VectorNs, b.Repair.Metric),
		fmt.Sprintf("%.0f", b.Repair.PureGoNs),
		fmt.Sprintf("%.2fx", b.Repair.Speedup),
	})
	t.Rows = append(t.Rows, []string{
		"drain (end-to-end)", "—",
		fmt.Sprintf("%.0f %s", b.Drain.VectorNs, b.Drain.Metric),
		fmt.Sprintf("%.0f", b.Drain.PureGoNs),
		fmt.Sprintf("%.2fx", b.Drain.Speedup),
	})
	return t
}
