package experiments

import (
	"fmt"
	"testing"
)

func TestSmokeQuickTables(t *testing.T) {
	for _, tb := range []Table{E8JumpAblation(true), E10MatMul(true), T1Homogenize(), T2Translation(), F1Order(), Kernels(true).Table()} {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty", tb.ID)
		}
		fmt.Println(tb.Markdown())
	}
}
