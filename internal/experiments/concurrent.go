package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/tree"
	"repro/internal/workload"
)

// ConcurrentPoint is one row of the concurrent-readers baseline: the
// aggregate enumeration throughput of `Readers` goroutines, each pulling
// the latest snapshot and enumerating from it, while one writer applies
// an uninterrupted stream of random single-node updates.
type ConcurrentPoint struct {
	Readers          int     `json:"readers"`
	Results          int64   `json:"results"`            // results produced across all readers
	Enumerations     int64   `json:"enumerations"`       // snapshot iterations completed
	Updates          int64   `json:"updates"`            // writer updates applied during the window
	DurationSeconds  float64 `json:"duration_seconds"`   // measurement window
	ResultsPerSecond float64 `json:"results_per_second"` // aggregate throughput
	SpeedupVsOne     float64 `json:"speedup_vs_one"`     // vs the 1-reader row
}

// ConcurrentBaseline is the machine-readable output of the
// concurrent-readers experiment (written by cmd/benchtables as
// BENCH_concurrent.json), the perf trajectory anchor for the snapshot
// engine.
type ConcurrentBaseline struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	TreeNodes  int               `json:"tree_nodes"`
	Query      string            `json:"query"`
	Points     []ConcurrentPoint `json:"points"`
}

// ConcurrentReaders measures aggregate snapshot-enumeration throughput
// at 1, 4 and 16 readers under a concurrent update stream. Readers are
// lock-free (each iteration is one atomic snapshot load plus a walk of
// frozen structure), so on a multicore machine the aggregate throughput
// scales with the reader count; the writer's updates never block or
// disturb them.
func ConcurrentReaders(quick bool) ConcurrentBaseline {
	n := 20000
	window := time.Second
	if quick {
		n = 2000
		window = 200 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(77))
	ut, err := workload.Tree(workload.ShapeRandom, n, rng)
	if err != nil {
		panic(err)
	}
	q := workload.AncestorQuery()

	base := ConcurrentBaseline{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		TreeNodes:  n,
		Query:      "ancestor (E1-E4 standing query)",
	}
	for _, readers := range []int{1, 4, 16} {
		eng, err := engine.NewTree(ut.Clone(), q, engine.Options{})
		if err != nil {
			panic(err)
		}
		var (
			results atomic.Int64
			enums   atomic.Int64
			updates atomic.Int64
			stop    atomic.Bool
			wg      sync.WaitGroup
		)
		// Writer: continuous random single updates.
		wg.Add(1)
		go func() {
			defer wg.Done()
			ed := workload.NewEditor(treeMutator{eng}, rand.New(rand.NewSource(78)))
			for !stop.Load() {
				if err := ed.Step(); err != nil {
					panic(err)
				}
				updates.Add(1)
			}
		}()
		// Readers: latest snapshot, full enumeration, repeat.
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					k := int64(0)
					for range eng.Snapshot().Results() {
						k++
					}
					results.Add(k)
					enums.Add(1)
				}
			}()
		}
		start := time.Now()
		time.Sleep(window)
		stop.Store(true)
		wg.Wait()
		dur := time.Since(start).Seconds()
		base.Points = append(base.Points, ConcurrentPoint{
			Readers:          readers,
			Results:          results.Load(),
			Enumerations:     enums.Load(),
			Updates:          updates.Load(),
			DurationSeconds:  dur,
			ResultsPerSecond: float64(results.Load()) / dur,
		})
	}
	for i := range base.Points {
		base.Points[i].SpeedupVsOne = base.Points[i].ResultsPerSecond / base.Points[0].ResultsPerSecond
	}
	return base
}

// treeMutator adapts the engine's writer API (which returns snapshots)
// to workload.TreeMutator.
type treeMutator struct{ e *engine.TreeEngine }

func (m treeMutator) Tree() *tree.Unranked { return m.e.Tree() }

func (m treeMutator) Relabel(id tree.NodeID, l tree.Label) error {
	_, err := m.e.Relabel(id, l)
	return err
}

func (m treeMutator) InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, _, err := m.e.InsertFirstChild(id, l)
	return v, err
}

func (m treeMutator) InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, _, err := m.e.InsertRightSibling(id, l)
	return v, err
}

func (m treeMutator) Delete(id tree.NodeID) error {
	_, err := m.e.Delete(id)
	return err
}

// The structural half of workload.StructuralTreeMutator.

func (m treeMutator) DeleteSubtree(id tree.NodeID) error {
	_, err := m.e.DeleteSubtree(id)
	return err
}

func (m treeMutator) MoveSubtreeFirstChild(id, dest tree.NodeID) error {
	_, err := m.e.MoveSubtreeFirstChild(id, dest)
	return err
}

func (m treeMutator) MoveSubtreeRightSibling(id, dest tree.NodeID) error {
	_, err := m.e.MoveSubtreeRightSibling(id, dest)
	return err
}

func (m treeMutator) InsertSubtreeFirstChild(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, error) {
	v, _, err := m.e.InsertSubtreeFirstChild(id, frag)
	return v, err
}

func (m treeMutator) InsertSubtreeRightSibling(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, error) {
	v, _, err := m.e.InsertSubtreeRightSibling(id, frag)
	return v, err
}

// Table renders the baseline as a markdown table for the benchtables
// output.
func (b ConcurrentBaseline) Table() Table {
	t := Table{
		ID:     "C1",
		Title:  "Concurrent snapshot readers under an update stream",
		Claim:  fmt.Sprintf("lock-free readers scale with cores (GOMAXPROCS=%d); updates never block them", b.GOMAXPROCS),
		Header: []string{"readers", "results/s", "speedup", "enumerations", "writer updates"},
	}
	for _, p := range b.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Readers),
			fmt.Sprintf("%.0f", p.ResultsPerSecond),
			fmt.Sprintf("%.2fx", p.SpeedupVsOne),
			fmt.Sprint(p.Enumerations),
			fmt.Sprint(p.Updates),
		})
	}
	return t
}
