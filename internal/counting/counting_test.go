package counting

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/tree"
	"repro/internal/tva"
)

var alphaAB = []tree.Label{"a", "b"}

// multiset computes the captured multiset of a ∪-gate by brute force:
// assignment key → derivation count, plus min/max sizes.
func multiset(b *circuit.Box, u int, memo map[*circuit.Box][]map[string]int64) map[string]int64 {
	if ms, ok := memo[b]; ok && ms[u] != nil {
		return ms[u]
	}
	if _, ok := memo[b]; !ok {
		memo[b] = make([]map[string]int64, len(b.Unions))
	}
	out := map[string]int64{}
	memo[b][u] = out
	g := b.Unions[u]
	ev := circuit.NewEvaluator()
	for _, vi := range g.Vars {
		out[ev.VarAssignment(b, int(vi)).Key()]++
	}
	for _, ti := range g.Times {
		tg := b.Times[ti]
		left := multiset(b.Left, int(tg.Left), memo)
		right := multiset(b.Right, int(tg.Right), memo)
		for lk, lc := range left {
			for rk, rc := range right {
				la, _ := parseKey(lk)
				ra, _ := parseKey(rk)
				merged := append(append(tree.Assignment{}, la...), ra...).Normalize()
				out[merged.Key()] += lc * rc
			}
		}
	}
	for _, l := range g.LeftUnions {
		for k, c := range multiset(b.Left, int(l), memo) {
			out[k] += c
		}
	}
	for _, r := range g.RightUnions {
		for k, c := range multiset(b.Right, int(r), memo) {
			out[k] += c
		}
	}
	return out
}

// parseKey reconstructs an assignment from its canonical key.
func parseKey(k string) (tree.Assignment, error) {
	var out tree.Assignment
	var node, v int64
	cur := &node
	neg := false
	for i := 0; i < len(k); i++ {
		switch c := k[i]; {
		case c == '-':
			neg = true
		case c >= '0' && c <= '9':
			*cur = *cur*10 + int64(c-'0')
		case c == ':':
			if neg {
				node = -node
				neg = false
			}
			cur = &v
		case c == ';':
			out = append(out, tree.Singleton{Var: tree.Var(v), Node: tree.NodeID(node)})
			node, v = 0, 0
			cur = &node
		}
	}
	return out, nil
}

func buildRandom(rng *rand.Rand, states, leaves int) (*circuit.Builder, *circuit.Circuit) {
	raw := tva.RandomBinary(rng, states, alphaAB, tree.NewVarSet(0, 1), 0.4)
	a := raw.Homogenize()
	if a.NumStates == 0 {
		return nil, nil
	}
	bd, err := circuit.NewBuilder(a)
	if err != nil {
		panic(err)
	}
	bt := tva.RandomBinaryTree(rng, leaves, alphaAB)
	return bd, bd.Build(bt)
}

// TestDerivationsMatchMultisetBruteForce validates the counting
// semiring against explicit multiset evaluation on random circuits.
func TestDerivationsMatchMultisetBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trials := 0
	for trials < 120 {
		_, c := buildRandom(rng, 1+rng.Intn(3), 1+rng.Intn(6))
		if c == nil || c.Root == nil {
			continue
		}
		trials++
		ev := NewEvaluator[*big.Int](Derivations{})
		memo := map[*circuit.Box][]map[string]int64{}
		var boxes []*circuit.Box
		c.Walk(func(b *circuit.Box) { boxes = append(boxes, b) })
		for _, b := range boxes {
			for u := range b.Unions {
				ms := multiset(b, u, memo)
				var want int64
				for _, cnt := range ms {
					want += cnt
				}
				got := ev.Union(b, u)
				if got.Cmp(big.NewInt(want)) != 0 {
					t.Fatalf("trial %d: derivations = %v, want %d", trials, got, want)
				}
			}
		}
	}
}

// TestTropicalMatchBruteForce validates Min/MaxSize against brute-force
// captured sets.
func TestTropicalMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trials := 0
	for trials < 120 {
		_, c := buildRandom(rng, 1+rng.Intn(3), 1+rng.Intn(6))
		if c == nil || c.Root == nil {
			continue
		}
		trials++
		minE := NewEvaluator[int64](MinSize{})
		maxE := NewEvaluator[int64](MaxSize{})
		boolE := NewEvaluator[bool](Bool{})
		bf := circuit.NewEvaluator()
		var boxes []*circuit.Box
		c.Walk(func(b *circuit.Box) { boxes = append(boxes, b) })
		for _, b := range boxes {
			for u := range b.Unions {
				sets := bf.Union(b, u)
				wantMin, wantMax := int64(1)<<40, int64(-1)
				for _, asg := range sets {
					s := int64(len(asg))
					if s < wantMin {
						wantMin = s
					}
					if s > wantMax {
						wantMax = s
					}
				}
				if len(sets) == 0 {
					t.Fatal("∪-gate with empty captured set should not exist")
				}
				if got := minE.Union(b, u); got != wantMin {
					t.Fatalf("min = %d, want %d", got, wantMin)
				}
				if got := maxE.Union(b, u); got != wantMax {
					t.Fatalf("max = %d, want %d", got, wantMax)
				}
				if !boolE.Union(b, u) {
					t.Fatal("bool semiring says empty for nonempty gate")
				}
			}
		}
	}
}

// TestGammaEmptyFlag checks Gamma's handling of the empty assignment.
func TestGammaEmptyFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, c := buildRandom(rng, 2, 3)
	if c == nil {
		t.Skip("degenerate")
	}
	ev := NewEvaluator[*big.Int](Derivations{})
	empty := bitset.NewSet(len(c.Root.Unions))
	if got := ev.Gamma(c.Root, empty, true); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty-only gamma = %v", got)
	}
	if got := ev.Gamma(c.Root, empty, false); got.Sign() != 0 {
		t.Fatalf("no-gamma = %v", got)
	}
	me := NewEvaluator[int64](MinSize{})
	if v := me.Gamma(c.Root, empty, true); v != 0 {
		t.Fatalf("min with empty assignment = %d", v)
	}
	if v := me.Gamma(c.Root, empty, false); !IsInfinite(v) {
		t.Fatalf("min of nothing = %d", v)
	}
}

// TestPrune checks that pruning drops dead boxes but keeps live values.
func TestPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	_, c := buildRandom(rng, 2, 4)
	if c == nil || c.Root == nil {
		t.Skip("degenerate")
	}
	ev := NewEvaluator[bool](Bool{})
	c.Walk(func(b *circuit.Box) {
		for u := range b.Unions {
			ev.Union(b, u)
		}
	})
	before := len(ev.cache)
	ev.Prune(c.Root)
	if len(ev.cache) != before {
		t.Fatal("prune dropped live boxes")
	}
	ev.Prune(nil)
	if len(ev.cache) != 0 {
		t.Fatal("prune kept dead boxes")
	}
}

// TestUnionsOfAndForget checks the engine-facing cache surface: UnionsOf
// fills and returns the per-box slice, identical values to Union, and
// Forget drops exactly the given box's entry without disturbing others.
func TestUnionsOfAndForget(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		bd, c := buildRandom(rng, 2, 5)
		if c == nil || c.Root == nil || c.Root.Left == nil {
			continue
		}
		_ = bd
		ev := NewEvaluator[*big.Int](Derivations{})
		var boxes []*circuit.Box
		c.Walk(func(b *circuit.Box) { boxes = append(boxes, b) })
		for _, b := range boxes {
			vs := ev.UnionsOf(b)
			if len(vs) != len(b.Unions) {
				t.Fatalf("UnionsOf returned %d values for %d gates", len(vs), len(b.Unions))
			}
			for u := range b.Unions {
				if vs[u].Cmp(ev.Union(b, u)) != 0 {
					t.Fatalf("UnionsOf[%d] != Union", u)
				}
			}
		}
		root := c.Root
		want := ev.UnionsOf(root.Left)
		ev.Forget(root)
		if _, ok := ev.cache[root]; ok {
			t.Fatal("Forget left the root entry")
		}
		got := ev.UnionsOf(root.Left)
		for u := range got {
			if got[u].Cmp(want[u]) != 0 {
				t.Fatal("Forget disturbed a sibling entry")
			}
		}
		// Recomputation after Forget must reproduce the same values.
		fresh := NewEvaluator[*big.Int](Derivations{})
		for u := range root.Unions {
			if fresh.Union(root, u).Cmp(ev.Union(root, u)) != 0 {
				t.Fatal("recomputation after Forget diverged")
			}
		}
		return
	}
	t.Fatal("no usable circuit generated")
}
