// Package counting implements the multiset-semantics remark at the end
// of Section 4 of the paper: "up to redefining Definition 3.1 with
// multisets ... each assignment in S(γ(n,q)) is enumerated exactly as
// many times as there are runs". Evaluating the assignment circuit in a
// commutative semiring computes such aggregates without enumerating:
//
//   - Derivations (ℕ, +, ×) counts circuit derivations per gate: the
//     number of (run, valuation) pairs, with empty-annotation subtree
//     completions collapsed to one by homogenization (exactly the
//     multiplicity with which Algorithm 1 would enumerate). For
//     unambiguous automata this equals the number of satisfying
//     assignments, giving constant-time COUNT(*) after preprocessing.
//   - MinSize / MaxSize (tropical) compute the smallest/largest result
//     size without producing any result.
//
// Because the update machinery rebuilds boxes as fresh objects, a cache
// keyed by box identity is automatically invalidated exactly on the
// hollowing trunk: aggregates are maintained under updates with the same
// O(log n) recomputation as the index. This is the "aggregation on
// factorized representations" connection the paper draws to [32].
package counting

import (
	"math/big"

	"repro/internal/bitset"
	"repro/internal/circuit"
)

// Semiring is a commutative semiring over T.
type Semiring[T any] interface {
	Zero() T                 // neutral for Add (captured set empty)
	One() T                  // neutral for Mul (the empty assignment)
	Add(a, b T) T            // union of captured multisets
	Mul(a, b T) T            // relational product
	Var(g circuit.VarGate) T // value of a var gate's single assignment
}

// Accumulator is an optional Semiring extension for allocation-light
// folding on the hot path: AddTo and MulAddTo may MUTATE acc (which the
// evaluator guarantees was produced by Zero/AddTo/MulAddTo within the
// same per-gate fold and is not yet shared), instead of allocating a
// fresh value per step like Add/Mul. The returned value replaces acc.
// Values handed out of the evaluator are still frozen — only the
// in-flight accumulator is ever mutated.
type Accumulator[T any] interface {
	AddTo(acc, x T) T       // acc + x
	MulAddTo(acc, a, b T) T // acc + a·b
}

// Evaluator computes per-∪-gate semiring values with caching keyed by
// box identity. Boxes rebuilt by updates get fresh identities, so cached
// values of untouched subtrees stay valid across updates.
//
// CONCURRENCY: an Evaluator is NOT safe for concurrent use — every
// method mutates the cache maps. The dynamic engine's parallel write
// path therefore confines each Evaluator to one per-query pipeline,
// touched by exactly one worker goroutine per publication; only the
// immutable value slices it hands out via UnionsOf are shared with
// lock-free readers (see that method's contract). The engine's -race
// churn stress tests enforce this confinement.
type Evaluator[T any] struct {
	S     Semiring[T]
	cache map[*circuit.Box]boxValues[T]
	// acc is e.S when it also implements the in-place Accumulator
	// extension (resolved once at construction, off the hot path).
	acc Accumulator[T]
}

// boxValues is one box's cache entry. have guards partially computed
// slices during recursive evaluation.
type boxValues[T any] struct {
	vals []T
	have []bool
}

// NewEvaluator returns an evaluator for the semiring.
func NewEvaluator[T any](s Semiring[T]) *Evaluator[T] {
	e := &Evaluator[T]{
		S:     s,
		cache: map[*circuit.Box]boxValues[T]{},
	}
	e.acc, _ = s.(Accumulator[T])
	return e
}

// Union returns the value of ∪-gate u of box b.
func (e *Evaluator[T]) Union(b *circuit.Box, u int) T {
	bv, ok := e.cache[b]
	if ok && bv.have[u] {
		return bv.vals[u]
	}
	if !ok {
		bv = boxValues[T]{vals: make([]T, len(b.Unions)), have: make([]bool, len(b.Unions))}
		e.cache[b] = bv
	}
	g := &b.Unions[u]
	v := e.S.Zero()
	if e.acc != nil {
		for _, vi := range g.Vars {
			v = e.acc.AddTo(v, e.S.Var(b.Vars[vi]))
		}
		for _, ti := range g.Times {
			tg := b.Times[ti]
			v = e.acc.MulAddTo(v, e.Union(b.Left, int(tg.Left)), e.Union(b.Right, int(tg.Right)))
		}
		for _, l := range g.LeftUnions {
			v = e.acc.AddTo(v, e.Union(b.Left, int(l)))
		}
		for _, r := range g.RightUnions {
			v = e.acc.AddTo(v, e.Union(b.Right, int(r)))
		}
	} else {
		for _, vi := range g.Vars {
			v = e.S.Add(v, e.S.Var(b.Vars[vi]))
		}
		for _, ti := range g.Times {
			tg := b.Times[ti]
			v = e.S.Add(v, e.S.Mul(e.Union(b.Left, int(tg.Left)), e.Union(b.Right, int(tg.Right))))
		}
		for _, l := range g.LeftUnions {
			v = e.S.Add(v, e.Union(b.Left, int(l)))
		}
		for _, r := range g.RightUnions {
			v = e.S.Add(v, e.Union(b.Right, int(r)))
		}
	}
	// Recursive calls insert entries for other boxes only; bv's slices
	// alias b's cached entry, so writing through bv is writing the cache.
	bv.vals[u] = v
	bv.have[u] = true
	return v
}

// Gamma evaluates the boxed set of accepting root gates plus the empty
// assignment flag (the output of circuit.Builder.RootAccepting).
func (e *Evaluator[T]) Gamma(b *circuit.Box, gamma bitset.Set, emptyOK bool) T {
	v := e.S.Zero()
	add := e.S.Add
	if e.acc != nil {
		add = e.acc.AddTo
	}
	if emptyOK {
		v = add(v, e.S.One())
	}
	gamma.ForEach(func(u int) bool {
		v = add(v, e.Union(b, u))
		return true
	})
	return v
}

// UnionsOf evaluates every ∪-gate of box b and returns the cached value
// slice, indexed by local ∪-gate. The slice is owned by the evaluator's
// cache and is written at most once per box identity, so callers may
// publish it into frozen, concurrently read structures (the engine
// stores it on enumerate.IndexedBox wrappers) as long as they never
// modify it. Returns nil for boxes without ∪-gates.
func (e *Evaluator[T]) UnionsOf(b *circuit.Box) []T {
	for u := range b.Unions {
		e.Union(b, u)
	}
	return e.cache[b].vals
}

// Forget drops the cache entry of one box. The engine calls it when a
// box retires from the live attachment map, so the writer-side cache
// tracks the live term the way the attachment maps do; values already
// published into snapshots are immutable and unaffected.
func (e *Evaluator[T]) Forget(b *circuit.Box) {
	delete(e.cache, b)
}

// Prune drops cache entries for boxes no longer reachable from root,
// bounding memory across long update sequences.
func (e *Evaluator[T]) Prune(root *circuit.Box) {
	live := map[*circuit.Box]bool{}
	var walk func(b *circuit.Box)
	walk = func(b *circuit.Box) {
		if b == nil {
			return
		}
		live[b] = true
		walk(b.Left)
		walk(b.Right)
	}
	walk(root)
	for b := range e.cache {
		if !live[b] {
			delete(e.cache, b)
		}
	}
}

// Derivations is the counting semiring (ℕ, +, ×) over big integers:
// counts circuit derivations (run multiplicities, Section 4 remark).
type Derivations struct{}

// Zero returns 0.
func (Derivations) Zero() *big.Int { return big.NewInt(0) }

// One returns 1.
func (Derivations) One() *big.Int { return big.NewInt(1) }

// Add returns a+b.
func (Derivations) Add(a, b *big.Int) *big.Int { return new(big.Int).Add(a, b) }

// Mul returns a·b.
func (Derivations) Mul(a, b *big.Int) *big.Int { return new(big.Int).Mul(a, b) }

// Var returns 1: each var gate captures one assignment once.
func (Derivations) Var(circuit.VarGate) *big.Int { return big.NewInt(1) }

// AddTo implements the Accumulator extension: acc += x in place.
func (Derivations) AddTo(acc, x *big.Int) *big.Int { return acc.Add(acc, x) }

// MulAddTo implements the Accumulator extension: acc += a·b with one
// temporary instead of two fresh values.
func (Derivations) MulAddTo(acc, a, b *big.Int) *big.Int {
	return acc.Add(acc, new(big.Int).Mul(a, b))
}

// sizeInf is the +∞ (resp. -∞) marker for the tropical semirings.
const sizeInf = int64(1) << 60

// MinSize is the (min, +) tropical semiring on assignment sizes: the
// value of a gate is the smallest |S| over captured assignments S
// (Zero = +∞ for the empty set).
type MinSize struct{}

// Zero returns +∞.
func (MinSize) Zero() int64 { return sizeInf }

// One returns 0 (the empty assignment has size 0).
func (MinSize) One() int64 { return 0 }

// Add returns min(a, b).
func (MinSize) Add(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Mul returns a+b (sizes add under relational product), saturating at
// +∞.
func (MinSize) Mul(a, b int64) int64 {
	if a >= sizeInf || b >= sizeInf {
		return sizeInf
	}
	return a + b
}

// Var returns the number of singletons of the var gate.
func (MinSize) Var(g circuit.VarGate) int64 { return int64(g.Set.Count()) }

// MaxSize is the (max, +) tropical semiring: largest assignment size.
type MaxSize struct{}

// Zero returns -∞.
func (MaxSize) Zero() int64 { return -sizeInf }

// One returns 0.
func (MaxSize) One() int64 { return 0 }

// Add returns max(a, b).
func (MaxSize) Add(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Mul returns a+b, saturating at -∞.
func (MaxSize) Mul(a, b int64) int64 {
	if a <= -sizeInf || b <= -sizeInf {
		return -sizeInf
	}
	return a + b
}

// Var returns the number of singletons of the var gate.
func (MaxSize) Var(g circuit.VarGate) int64 { return int64(g.Set.Count()) }

// Bool is the Boolean semiring: nonemptiness without enumeration.
type Bool struct{}

// Zero returns false.
func (Bool) Zero() bool { return false }

// One returns true.
func (Bool) One() bool { return true }

// Add returns a∨b.
func (Bool) Add(a, b bool) bool { return a || b }

// Mul returns a∧b.
func (Bool) Mul(a, b bool) bool { return a && b }

// Var returns true.
func (Bool) Var(circuit.VarGate) bool { return true }

// IsInfinite reports whether a tropical value is ±∞ (empty captured
// set).
func IsInfinite(v int64) bool { return v >= sizeInf || v <= -sizeInf }
