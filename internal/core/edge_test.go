package core

import (
	"math/rand"
	"testing"

	"repro/internal/enumerate"
	"repro/internal/tree"
	"repro/internal/tva"
)

// TestSingleNodeTree covers the smallest input.
func TestSingleNodeTree(t *testing.T) {
	q := tva.SelectLabel(alphaAB, "a", 0)
	ut := tree.NewUnranked("a")
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := e.All()
	if len(res) != 1 || len(res[0]) != 1 || res[0][0].Node != ut.Root.ID {
		t.Fatalf("results = %v", res)
	}
	// Relabel the root away and back.
	if err := e.Relabel(ut.Root.ID, "b"); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 0 {
		t.Fatal("b root should not match")
	}
	if err := e.Relabel(ut.Root.ID, "a"); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 1 {
		t.Fatal("a root should match again")
	}
}

// TestUnsatisfiableQuery covers an automaton with no accepting states
// after trimming.
func TestUnsatisfiableQuery(t *testing.T) {
	q := tva.SelectLabel(alphaAB, "a", 0)
	q.Final = nil // never accepts
	ut, _ := tree.ParseUnranked("(a (b) (a))")
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.NonEmpty() {
		t.Fatal("unsatisfiable query returned results")
	}
	if _, err := e.InsertFirstChild(ut.Root.ID, "a"); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 0 {
		t.Fatal("still unsatisfiable")
	}
}

// TestBooleanQueryEmptyAssignment covers queries whose only answer is
// the empty assignment (Boolean acceptance).
func TestBooleanQueryEmptyAssignment(t *testing.T) {
	q := tva.LeafCount(alphaAB, 2, 0) // even number of leaves
	ut, _ := tree.ParseUnranked("(a (b) (b))")
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := e.All()
	if len(res) != 1 || len(res[0]) != 0 {
		t.Fatalf("want exactly the empty assignment, got %v", res)
	}
	// One more leaf: odd, rejected.
	if _, err := e.InsertFirstChild(ut.Root.ID, "a"); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 0 {
		t.Fatal("odd leaf count accepted")
	}
}

// TestTwoVariableQueryDynamic fuzzes a two-variable query through edits.
func TestTwoVariableQueryDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// X0 selects an a-node, X1 selects a b-node.
	qa := tva.Cylindrify(tva.SelectLabel(alphaAB, "a", 0), tree.NewVarSet(0, 1))
	qb := tva.Cylindrify(tva.SelectLabel(alphaAB, "b", 1), tree.NewVarSet(0, 1))
	q := tva.IntersectUnranked(qa, qb)
	ut := tva.RandomUnrankedTree(rng, 4, alphaAB)
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 20; step++ {
		nodes := e.Tree().Nodes()
		n := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(3) {
		case 0:
			if err := e.Relabel(n.ID, alphaAB[rng.Intn(2)]); err != nil {
				t.Fatal(err)
			}
		case 1:
			if e.Tree().Size() < 6 {
				if _, err := e.InsertFirstChild(n.ID, alphaAB[rng.Intn(2)]); err != nil {
					t.Fatal(err)
				}
			}
		default:
			if n.IsLeaf() && n.Parent != nil {
				if err := e.Delete(n.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		want, err := q.SatisfyingAssignments(e.Tree(), 6)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "twovar", want, e.All())
		// Every result has exactly two singletons.
		for _, asg := range e.All() {
			if len(asg) != 2 {
				t.Fatalf("assignment %v", asg)
			}
		}
	}
}

// TestEarlyStopThenRestart checks that abandoning an enumeration
// mid-stream leaves the structure intact.
func TestEarlyStopThenRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := tva.SelectLabel(alphaAB, "a", 0)
	ut := tva.RandomUnrankedTree(rng, 200, alphaAB)
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := e.Count()
	// Abandon after 3 results, several times.
	for round := 0; round < 5; round++ {
		k := 0
		for range e.Results() {
			if k++; k == 3 {
				break
			}
		}
	}
	if e.Count() != full {
		t.Fatal("early stop corrupted enumeration")
	}
	// And after an edit.
	if _, err := e.InsertFirstChild(ut.Root.ID, "a"); err != nil {
		t.Fatal(err)
	}
	if e.Count() != full+1 {
		t.Fatal("count after edit wrong")
	}
}

// TestNaiveModeDynamic runs the dynamic fuzz in naive mode too (no
// index maintained).
func TestNaiveModeDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q := tva.RandomUnranked(rng, 2, alphaAB, tree.NewVarSet(0), 0.5)
	ut := tva.RandomUnrankedTree(rng, 4, alphaAB)
	e, err := NewTreeEnumerator(ut, q, Options{Mode: enumerate.ModeNaive})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 15; step++ {
		nodes := e.Tree().Nodes()
		n := nodes[rng.Intn(len(nodes))]
		if n.IsLeaf() && n.Parent != nil && rng.Intn(2) == 0 {
			if err := e.Delete(n.ID); err != nil {
				t.Fatal(err)
			}
		} else if e.Tree().Size() < 6 {
			if _, err := e.InsertFirstChild(n.ID, alphaAB[rng.Intn(2)]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := e.Relabel(n.ID, alphaAB[rng.Intn(2)]); err != nil {
				t.Fatal(err)
			}
		}
		want, err := q.SatisfyingAssignments(e.Tree(), 6)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "naive-dyn", want, e.All())
	}
}

// TestWordIDAtAfterEdits fuzzes positional addressing under edits.
func TestWordIDAtAfterEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := randomWVA(rng, 2, alphaAB, tree.NewVarSet(0))
	e, err := NewWordEnumerator([]tree.Label{"a", "b", "a"}, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 200; step++ {
		ids, _ := e.Word()
		switch rng.Intn(3) {
		case 0:
			if _, err := e.InsertBefore(ids[rng.Intn(len(ids))], alphaAB[rng.Intn(2)]); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := e.InsertAfter(ids[rng.Intn(len(ids))], alphaAB[rng.Intn(2)]); err != nil {
				t.Fatal(err)
			}
		default:
			if len(ids) > 1 {
				if err := e.Delete(ids[rng.Intn(len(ids))]); err != nil {
					t.Fatal(err)
				}
			}
		}
		ids, _ = e.Word()
		for i, id := range ids {
			got, err := e.IDAt(i)
			if err != nil || got != id {
				t.Fatalf("step %d: IDAt(%d) = %d, want %d", step, i, got, id)
			}
		}
	}
}
