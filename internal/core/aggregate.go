package core

import (
	"math/big"

	"repro/internal/counting"
)

// This file exposes the semiring aggregates of package counting on the
// dynamic engine (the Section 4 multiset remark + the factorized-
// aggregation connection). All aggregates are maintained under updates:
// box rebuilds give fresh identities, so only trunk boxes are
// recomputed; stale cache entries are pruned periodically.

const pruneEvery = 4096 // box rebuilds between cache prunes

type aggregates struct {
	deriv *counting.Evaluator[*big.Int]
	min   *counting.Evaluator[int64]
	max   *counting.Evaluator[int64]
	boolE *counting.Evaluator[bool]

	lastPrune int
}

func (e *TreeEnumerator) aggr() *aggregates {
	rebuilt := e.eng.BoxesRebuilt()
	if e.agg == nil {
		e.agg = &aggregates{
			deriv: counting.NewEvaluator[*big.Int](counting.Derivations{}),
			min:   counting.NewEvaluator[int64](counting.MinSize{}),
			max:   counting.NewEvaluator[int64](counting.MaxSize{}),
			boolE: counting.NewEvaluator[bool](counting.Bool{}),
		}
		e.agg.lastPrune = rebuilt
	}
	if rebuilt-e.agg.lastPrune > pruneEvery {
		root, _, _ := e.eng.Snapshot().Accepting()
		e.agg.deriv.Prune(root)
		e.agg.min.Prune(root)
		e.agg.max.Prune(root)
		e.agg.boolE.Prune(root)
		e.agg.lastPrune = rebuilt
	}
	return e.agg
}

// DerivationCount returns the number of circuit derivations of the
// query's results: each satisfying assignment counted once per run of
// the automaton that witnesses it (Section 4's multiset semantics, with
// empty-annotation subtree completions collapsed by homogenization).
// For unambiguous — in particular deterministic — query automata this
// is exactly the number of satisfying assignments, computed in
// O(log n · poly(|Q|)) after each update instead of by enumeration.
func (e *TreeEnumerator) DerivationCount() *big.Int {
	rb, gamma, emptyOK := e.eng.Snapshot().Accepting()
	return e.aggr().deriv.Gamma(rb, gamma, emptyOK)
}

// MinResultSize returns the smallest |S| over all satisfying
// assignments S, and false if there are none. Computed algebraically
// (tropical semiring), without enumerating.
func (e *TreeEnumerator) MinResultSize() (int, bool) {
	rb, gamma, emptyOK := e.eng.Snapshot().Accepting()
	v := e.aggr().min.Gamma(rb, gamma, emptyOK)
	if counting.IsInfinite(v) {
		return 0, false
	}
	return int(v), true
}

// MaxResultSize returns the largest |S| over all satisfying
// assignments, and false if there are none.
func (e *TreeEnumerator) MaxResultSize() (int, bool) {
	rb, gamma, emptyOK := e.eng.Snapshot().Accepting()
	v := e.aggr().max.Gamma(rb, gamma, emptyOK)
	if counting.IsInfinite(v) {
		return 0, false
	}
	return int(v), true
}

// NonEmptyAlgebraic decides nonemptiness in the Boolean semiring; it
// must always agree with NonEmpty (which uses the enumeration path) and
// exists as a cross-check and a cheaper primitive.
func (e *TreeEnumerator) NonEmptyAlgebraic() bool {
	rb, gamma, emptyOK := e.eng.Snapshot().Accepting()
	return e.aggr().boolE.Gamma(rb, gamma, emptyOK)
}
