package core

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/tree"
	"repro/internal/tva"
)

// TestAggregatesUnambiguous checks that for the (unambiguous)
// SelectLabel query the derivation count equals the result count after
// every update, and the tropical aggregates match enumeration.
func TestAggregatesUnambiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := tva.SelectLabel(alphaAB, "a", 0)
	ut := tva.RandomUnrankedTree(rng, 30, alphaAB)
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 60; step++ {
		nodes := e.Tree().Nodes()
		n := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(3) {
		case 0:
			if err := e.Relabel(n.ID, alphaAB[rng.Intn(2)]); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := e.InsertFirstChild(n.ID, alphaAB[rng.Intn(2)]); err != nil {
				t.Fatal(err)
			}
		default:
			if n.IsLeaf() && n.Parent != nil {
				if err := e.Delete(n.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		count := e.Count()
		if got := e.DerivationCount(); got.Cmp(big.NewInt(int64(count))) != 0 {
			t.Fatalf("step %d: derivations %v, results %d", step, got, count)
		}
		if e.NonEmptyAlgebraic() != (count > 0) {
			t.Fatalf("step %d: bool aggregate disagrees", step)
		}
		mn, okMin := e.MinResultSize()
		mx, okMax := e.MaxResultSize()
		if okMin != (count > 0) || okMax != (count > 0) {
			t.Fatalf("step %d: tropical emptiness disagrees", step)
		}
		if count > 0 && (mn != 1 || mx != 1) {
			// SelectLabel results are always single singletons.
			t.Fatalf("step %d: min/max = %d/%d", step, mn, mx)
		}
	}
}

// TestDerivationCountsRuns checks the Section 4 multiset semantics on a
// genuinely ambiguous automaton: the derivation count equals the number
// of (run, valuation) pairs, i.e. results weighted by run multiplicity.
func TestDerivationCountsRuns(t *testing.T) {
	// Automaton: X0 selects one node (any label); nondeterministically
	// the automaton may be in "mode 1" or "mode 2" (duplicated states),
	// so every result has exactly two runs.
	x := tree.NewVarSet(0)
	q := &tva.Unranked{
		NumStates: 4, // q0/q1 for each mode
		Alphabet:  alphaAB,
		Vars:      x,
		Final:     []tva.State{1, 3},
	}
	for _, l := range alphaAB {
		q.Init = append(q.Init,
			tva.InitRule{Label: l, Set: 0, State: 0},
			tva.InitRule{Label: l, Set: x, State: 1},
			tva.InitRule{Label: l, Set: 0, State: 2},
			tva.InitRule{Label: l, Set: x, State: 3},
		)
	}
	q.Delta = []tva.StepTriple{
		{From: 0, Child: 0, To: 0}, {From: 0, Child: 1, To: 1}, {From: 1, Child: 0, To: 1},
		{From: 2, Child: 2, To: 2}, {From: 2, Child: 3, To: 3}, {From: 3, Child: 2, To: 3},
	}
	ut, _ := tree.ParseUnranked("(a (b) (a))")
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 nodes selectable; the annotated node is read in one of the two
	// modes, and all other nodes' runs are fixed by the mode of the
	// path... every result has exactly 2 derivations here? Each subtree
	// without x admits runs in both modes independently; the circuit
	// collapses empty-annotation multiplicity via homogenization, so the
	// count is (number of mode choices along the x-path) = 2 per result.
	count := e.Count()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	want := big.NewInt(6) // 3 results × 2 runs
	if got := e.DerivationCount(); got.Cmp(want) != 0 {
		t.Fatalf("derivations = %v, want %v", got, want)
	}
}

// TestAggregateCacheReuse verifies incrementality: after one relabel on
// a large tree, recomputing the aggregate is much cheaper than from
// scratch (measured in evaluator cache misses via timing-free proxy:
// identical results and no panic is the functional part; the reuse
// itself is structural because untouched boxes keep their identity).
func TestAggregateCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := tva.SelectLabel(alphaAB, "a", 0)
	ut := tva.RandomUnrankedTree(rng, 2000, alphaAB)
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c1 := e.DerivationCount()
	// Relabel a b-leaf to a: count increases by one.
	target := tree.InvalidNode
	for _, n := range e.Tree().Nodes() {
		if n.Label == "b" {
			target = n.ID
			break
		}
	}
	if target < 0 {
		t.Skip("no b node")
	}
	if err := e.Relabel(target, "a"); err != nil {
		t.Fatal(err)
	}
	c2 := e.DerivationCount()
	diff := new(big.Int).Sub(c2, c1)
	if diff.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("count delta = %v, want 1", diff)
	}
}
