package core

import (
	"math/rand"
	"testing"

	"repro/internal/enumerate"
	"repro/internal/forest"
	"repro/internal/tree"
	"repro/internal/tva"
)

var alphaAB = []tree.Label{"a", "b"}

func sameResults(t *testing.T, ctx string, want map[string]tree.Assignment, got []tree.Assignment) {
	t.Helper()
	gotSet := map[string]bool{}
	for _, a := range got {
		k := a.Key()
		if gotSet[k] {
			t.Fatalf("%s: duplicate result %v", ctx, a)
		}
		gotSet[k] = true
		if _, ok := want[k]; !ok {
			t.Fatalf("%s: spurious result %v", ctx, a)
		}
	}
	if len(gotSet) != len(want) {
		t.Fatalf("%s: got %d results, want %d", ctx, len(gotSet), len(want))
	}
}

// TestStaticMatchesOracle runs the full pipeline (translate, homogenize,
// encode, circuit, index, enumerate) against the brute-force oracle on
// random trees and random stepwise TVAs.
func TestStaticMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		q := tva.RandomUnranked(rng, 1+rng.Intn(3), alphaAB, tree.NewVarSet(0), 0.4)
		ut := tva.RandomUnrankedTree(rng, 1+rng.Intn(6), alphaAB)
		want, err := q.SatisfyingAssignments(ut, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []enumerate.Mode{enumerate.ModeIndexed, enumerate.ModeNaive} {
			e, err := NewTreeEnumerator(ut.Clone(), q, Options{Mode: mode})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			sameResults(t, "static", want, e.All())
		}
	}
}

// TestDynamicFuzz is the cornerstone test of the whole reproduction:
// random edits through the enumerator must keep its results equal to the
// from-scratch brute force after every single update.
func TestDynamicFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := []tree.Label{"a", "b"}
	for trial := 0; trial < 12; trial++ {
		q := tva.RandomUnranked(rng, 1+rng.Intn(3), labels, tree.NewVarSet(0), 0.4)
		ut := tva.RandomUnrankedTree(rng, 1+rng.Intn(4), labels)
		e, err := NewTreeEnumerator(ut, q, Options{Mode: enumerate.ModeIndexed})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 25; step++ {
			nodes := e.Tree().Nodes()
			n := nodes[rng.Intn(len(nodes))]
			switch rng.Intn(4) {
			case 0:
				if err := e.Relabel(n.ID, labels[rng.Intn(2)]); err != nil {
					t.Fatal(err)
				}
			case 1:
				if e.Tree().Size() < 7 {
					if _, err := e.InsertFirstChild(n.ID, labels[rng.Intn(2)]); err != nil {
						t.Fatal(err)
					}
				}
			case 2:
				if e.Tree().Size() < 7 && n.Parent != nil {
					if _, err := e.InsertRightSibling(n.ID, labels[rng.Intn(2)]); err != nil {
						t.Fatal(err)
					}
				}
			default:
				if n.IsLeaf() && n.Parent != nil {
					if err := e.Delete(n.ID); err != nil {
						t.Fatal(err)
					}
				}
			}
			want, err := q.SatisfyingAssignments(e.Tree(), 7)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "dynamic", want, e.All())
		}
	}
}

// TestMarkedAncestorDynamic follows the Theorem 9.2 reduction scenario:
// marks toggle via relabelings, queries run via enumeration.
func TestMarkedAncestorDynamic(t *testing.T) {
	q := tva.MarkedAncestor("m", "u", "s", 0)
	ut, err := tree.ParseUnranked("(u (u (u (u (u)))))")
	if err != nil {
		t.Fatal(err)
	}
	nodes := ut.Nodes()
	deepest := nodes[len(nodes)-1]
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Make the deepest node special: no marked ancestor yet.
	if err := e.Relabel(deepest.ID, "s"); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 0 {
		t.Fatalf("no mark set, count = %d", e.Count())
	}
	// Mark the root: now the special node qualifies.
	if err := e.Relabel(e.Tree().Root.ID, "m"); err != nil {
		t.Fatal(err)
	}
	res := e.All()
	if len(res) != 1 || res[0][0].Node != deepest.ID {
		t.Fatalf("results = %v, want the special node", res)
	}
	// Unmark: back to zero.
	if err := e.Relabel(e.Tree().Root.ID, "u"); err != nil {
		t.Fatal(err)
	}
	if e.NonEmpty() {
		t.Fatal("unmarked, still nonempty")
	}
}

// TestSelectLabelGrows checks result counts track inserts/deletes on a
// larger tree, and that stats stay sane.
func TestSelectLabelGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := tva.SelectLabel(alphaAB, "a", 0)
	ut := tree.NewUnranked("b")
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aCount := 0
	ids := []tree.NodeID{e.Tree().Root.ID}
	for i := 0; i < 200; i++ {
		l := alphaAB[rng.Intn(2)]
		if l == "a" {
			aCount++
		}
		v, err := e.InsertFirstChild(ids[rng.Intn(len(ids))], l)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v)
		if got := e.Count(); got != aCount {
			t.Fatalf("step %d: count %d, want %d", i, got, aCount)
		}
	}
	st := e.Stats()
	// The term has one leaf per tree node and one internal node per
	// operator: 2n-1 boxes in total.
	if st.Boxes != 2*e.Tree().Size()-1 {
		t.Fatalf("boxes %d != 2·%d-1", st.Boxes, e.Tree().Size())
	}
	if st.CircuitWidth > st.AutomatonStates {
		t.Fatalf("width %d > |Q'| %d", st.CircuitWidth, st.AutomatonStates)
	}
	// Each result is a single singleton selecting an a-node.
	for _, asg := range e.All() {
		if len(asg) != 1 {
			t.Fatalf("assignment %v", asg)
		}
		if e.Tree().Node(asg[0].Node).Label != "a" {
			t.Fatalf("selected non-a node")
		}
	}
}

// TestWordEnumeratorMatchesOracle fuzzes the Theorem 8.5 pipeline.
func TestWordEnumeratorMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		q := randomWVA(rng, 1+rng.Intn(3), alphaAB, tree.NewVarSet(0))
		n := 1 + rng.Intn(5)
		letters := make([]tree.Label, n)
		for i := range letters {
			letters[i] = alphaAB[rng.Intn(2)]
		}
		e, err := NewWordEnumerator(letters, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 20; step++ {
			ids, labs := e.Word()
			switch rng.Intn(3) {
			case 0:
				if err := e.Relabel(ids[rng.Intn(len(ids))], alphaAB[rng.Intn(2)]); err != nil {
					t.Fatal(err)
				}
			case 1:
				if len(ids) < 7 {
					if _, err := e.InsertAfter(ids[rng.Intn(len(ids))], alphaAB[rng.Intn(2)]); err != nil {
						t.Fatal(err)
					}
				}
			default:
				if len(ids) > 1 {
					if err := e.Delete(ids[rng.Intn(len(ids))]); err != nil {
						t.Fatal(err)
					}
				}
			}
			ids, labs = e.Word()
			want, err := q.SatisfyingAssignments(labs, ids, 8)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "word", want, e.All())
		}
	}
}

func randomWVA(rng *rand.Rand, states int, alpha []tree.Label, vars tree.VarSet) *tva.WVA {
	a := &tva.WVA{NumStates: states, Alphabet: alpha, Vars: vars}
	subsets := []tree.VarSet{}
	tree.SubsetsOf(vars, func(s tree.VarSet) { subsets = append(subsets, s) })
	for q := 0; q < states; q++ {
		for _, l := range alpha {
			for _, s := range subsets {
				for p := 0; p < states; p++ {
					if rng.Float64() < 0.4 {
						a.Trans = append(a.Trans, tva.WTrans{From: tva.State(q), Label: l, Set: s, To: tva.State(p)})
					}
				}
			}
		}
	}
	a.Initial = []tva.State{tva.State(rng.Intn(states))}
	a.Final = []tva.State{tva.State(rng.Intn(states))}
	return a
}

// TestUpdateCostLogarithmic checks Lemma 7.3 empirically: boxes rebuilt
// per update stay around O(log n) on a large tree.
func TestUpdateCostLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := tva.SelectLabel(alphaAB, "a", 0)
	ut := tva.RandomUnrankedTree(rng, 4000, alphaAB)
	e, err := NewTreeEnumerator(ut, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := e.Stats().BoxesRebuilt
	edits := 0
	leaves := []tree.NodeID{}
	for _, n := range e.Tree().Nodes() {
		if n.IsLeaf() && n.Parent != nil {
			leaves = append(leaves, n.ID)
		}
	}
	for i := 0; i < 400; i++ {
		switch rng.Intn(3) {
		case 0:
			nodes := e.Tree().Nodes()
			if err := e.Relabel(nodes[rng.Intn(len(nodes))].ID, alphaAB[rng.Intn(2)]); err != nil {
				t.Fatal(err)
			}
		case 1:
			nodes := e.Tree().Nodes()
			if _, err := e.InsertFirstChild(nodes[rng.Intn(len(nodes))].ID, "a"); err != nil {
				t.Fatal(err)
			}
		default:
			if len(leaves) > 0 {
				id := leaves[len(leaves)-1]
				leaves = leaves[:len(leaves)-1]
				if e.Tree().Node(id) != nil && e.Tree().Node(id).IsLeaf() {
					if err := e.Delete(id); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		edits++
	}
	perEdit := float64(e.Stats().BoxesRebuilt-base) / float64(edits)
	// log2(4000) ≈ 12; allow a generous constant for the amortized
	// scapegoat rebuilds.
	if perEdit > 160 {
		t.Fatalf("boxes rebuilt per edit = %.1f, too large", perEdit)
	}
	forest.HollowingFromTrunk(nil) // keep the forest import honest
}
