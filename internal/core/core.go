// Package core implements the paper's main results: Theorem 8.1 (dynamic
// enumeration of the satisfying assignments of an unranked stepwise TVA
// on an unranked tree) and Theorem 8.5 (the word/WVA analogue). It glues
// the pipeline together:
//
//	tree  ──forest.New──▶ balanced term        (Lemma 7.4, encoding ω)
//	query ──forest.Translate──▶ binary TVA     (Lemma 7.4, faithfulness)
//	      ──Homogenize──▶ homogenized TVA      (Lemma 2.1)
//	term  ──circuit.Builder──▶ assignment circuit, one box per term node
//	                                           (Lemma 3.7)
//	boxes ──enumerate.BuildBoxIndex──▶ I(C)    (Definition 6.1, Lemma 6.3)
//	      ──enumerate.Assignments──▶ results   (Theorem 6.5)
//
// Updates flow through the forest's hollowing trunks (Definition 7.2):
// the engine rebuilds exactly the boxes and index entries of the trunk,
// bottom-up, which is Lemma 7.3.
package core

import (
	"fmt"
	"iter"

	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/enumerate"
	"repro/internal/forest"
	"repro/internal/tree"
	"repro/internal/tva"
)

// Options configure an enumerator.
type Options struct {
	// Mode selects the enumeration algorithm (default: ModeIndexed, the
	// paper's algorithm). ModeNaive and ModeSimple are the baselines of
	// experiments E1/E8.
	Mode enumerate.Mode
}

// Stats reports sizes of the preprocessed structures and cumulative
// update work, for the experiment harness.
type Stats struct {
	TranslatedStates int // |Q′| after trimming (before homogenization)
	AutomatonStates  int // states of the homogenized binary TVA
	CircuitWidth     int
	Boxes            int
	UnionGates       int
	TimesGates       int
	VarGates         int
	TermHeight       int
	BoxesRebuilt     int // cumulative, across all updates
	Rebalances       int // scapegoat rebuilds in the term
}

// TreeEnumerator is the update-aware enumerator of Theorem 8.1.
type TreeEnumerator struct {
	f       *forest.Forest
	query   *tva.Unranked
	binary  *tva.Binary
	builder *circuit.Builder
	opts    Options

	translatedStates int
	boxesRebuilt     int
	agg              *aggregates
}

// NewTreeEnumerator preprocesses the tree and the query: it translates
// the stepwise TVA to the term alphabet, homogenizes it, encodes the tree
// as a balanced term, and builds the assignment circuit and its index.
// Preprocessing is linear in |T| (up to the balancing's O(log) factor
// documented in DESIGN.md) and polynomial in |Q|.
func NewTreeEnumerator(t *tree.Unranked, query *tva.Unranked, opts Options) (*TreeEnumerator, error) {
	ab, err := forest.Translate(query)
	if err != nil {
		return nil, err
	}
	translated := ab.NumStates
	hb := ab.Homogenize()
	builder, err := circuit.NewBuilder(hb)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	e := &TreeEnumerator{
		f:                forest.New(t),
		query:            query,
		binary:           hb,
		builder:          builder,
		opts:             opts,
		translatedStates: translated,
	}
	e.refresh()
	return e, nil
}

// refresh rebuilds circuit boxes and index entries for every term node in
// the drained hollowing trunk (Lemma 7.3).
func (e *TreeEnumerator) refresh() {
	for _, n := range e.f.Drain() {
		e.buildBox(n)
	}
}

func (e *TreeEnumerator) buildBox(n *forest.Node) {
	if n.IsLeaf() {
		n.Box = e.builder.LeafBox(n.BinaryLabel(), n.TreeID)
	} else {
		n.Box = e.builder.InnerBox(n.BinaryLabel(), n.Left.Box, n.Right.Box)
		n.Box.Node = -1
	}
	if e.opts.Mode == enumerate.ModeIndexed {
		enumerate.BuildBoxIndex(n.Box)
	}
	e.boxesRebuilt++
}

// Tree returns the underlying tree (read-only use; edits must go through
// the enumerator).
func (e *TreeEnumerator) Tree() *tree.Unranked { return e.f.Tree }

// Relabel implements relabel(n, l) with O(log|T|·poly(|Q|)) work.
func (e *TreeEnumerator) Relabel(id tree.NodeID, l tree.Label) error {
	if err := e.f.Relabel(id, l); err != nil {
		return err
	}
	e.refresh()
	return nil
}

// InsertFirstChild implements insert(n, l), returning the new node's ID.
func (e *TreeEnumerator) InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, err := e.f.InsertFirstChild(id, l)
	if err != nil {
		return 0, err
	}
	e.refresh()
	return v, nil
}

// InsertRightSibling implements insertR(n, l), returning the new node's
// ID.
func (e *TreeEnumerator) InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, err := e.f.InsertRightSibling(id, l)
	if err != nil {
		return 0, err
	}
	e.refresh()
	return v, nil
}

// Delete implements delete(n) for leaves.
func (e *TreeEnumerator) Delete(id tree.NodeID) error {
	if err := e.f.Delete(id); err != nil {
		return err
	}
	e.refresh()
	return nil
}

// root returns the root box and the accepting boxed set.
func (e *TreeEnumerator) root() (*circuit.Box, bitset.Set, bool) {
	rb := e.f.Root.Box
	gamma, emptyOK := e.builder.RootAccepting(&circuit.Circuit{Root: rb})
	return rb, gamma, emptyOK
}

// Results enumerates the satisfying assignments of the query on the
// current tree, without duplicates, with delay O(|S|·poly(|Q|))
// independent of |T| in the default indexed mode. The iterator reads the
// live structure: do not interleave edits with an open iteration.
func (e *TreeEnumerator) Results() iter.Seq[tree.Assignment] {
	rb, gamma, emptyOK := e.root()
	return enumerate.Assignments(rb, gamma, emptyOK, e.opts.Mode)
}

// Count drains Results and returns the number of satisfying assignments.
func (e *TreeEnumerator) Count() int {
	n := 0
	for range e.Results() {
		n++
	}
	return n
}

// NonEmpty reports whether at least one satisfying assignment exists; by
// the delay bound it runs in time independent of |T| (indexed mode).
func (e *TreeEnumerator) NonEmpty() bool {
	for range e.Results() {
		return true
	}
	return false
}

// All materializes every result (test/benchmark helper).
func (e *TreeEnumerator) All() []tree.Assignment {
	var out []tree.Assignment
	for a := range e.Results() {
		out = append(out, a)
	}
	return out
}

// Stats reports structure sizes.
func (e *TreeEnumerator) Stats() Stats {
	c := &circuit.Circuit{Root: e.f.Root.Box}
	u, x, v := c.CountGates()
	return Stats{
		TranslatedStates: e.translatedStates,
		AutomatonStates:  e.binary.NumStates,
		CircuitWidth:     c.Width(),
		Boxes:            c.NumBoxes(),
		UnionGates:       u,
		TimesGates:       x,
		VarGates:         v,
		TermHeight:       e.f.Root.Height,
		BoxesRebuilt:     e.boxesRebuilt,
		Rebalances:       e.f.Rebuilds,
	}
}
