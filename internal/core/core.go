// Package core implements the paper's main results: Theorem 8.1 (dynamic
// enumeration of the satisfying assignments of an unranked stepwise TVA
// on an unranked tree) and Theorem 8.5 (the word/WVA analogue). It glues
// the pipeline together:
//
//	tree  ──forest.New──▶ balanced term        (Lemma 7.4, encoding ω)
//	query ──forest.Translate──▶ binary TVA     (Lemma 7.4, faithfulness)
//	      ──Homogenize──▶ homogenized TVA      (Lemma 2.1)
//	term  ──circuit.Builder──▶ assignment circuit, one box per term node
//	                                           (Lemma 3.7)
//	boxes ──enumerate.Wrap──▶ I(C)             (Definition 6.1, Lemma 6.3)
//	      ──enumerate.Assignments──▶ results   (Theorem 6.5)
//
// Updates flow through the forest's hollowing trunks (Definition 7.2):
// the engine rebuilds exactly the boxes and index entries of the trunk,
// bottom-up, which is Lemma 7.3.
//
// Since the snapshot refactor the heavy lifting lives in package engine,
// which publishes immutable snapshots for lock-free concurrent readers;
// the enumerators in this package are thin single-threaded compatibility
// shims over it. New code that wants concurrent readers or batched
// updates should use engine.TreeEngine / engine.WordEngine directly (or
// the enumtrees facade's NewEngine / NewWordEngine).
package core

import (
	"iter"

	"repro/internal/engine"
	"repro/internal/tree"
	"repro/internal/tva"
)

// Options configure an enumerator.
type Options = engine.Options

// Stats reports sizes of the preprocessed structures and cumulative
// update work, for the experiment harness.
type Stats = engine.Stats

// TreeEnumerator is the update-aware enumerator of Theorem 8.1, as a
// single-threaded convenience wrapper over engine.TreeEngine: every edit
// publishes a snapshot internally, and the read methods always address
// the latest one.
type TreeEnumerator struct {
	eng *engine.TreeEngine
	agg *aggregates
}

// NewTreeEnumerator preprocesses the tree and the query (see
// engine.NewTree).
func NewTreeEnumerator(t *tree.Unranked, query *tva.Unranked, opts Options) (*TreeEnumerator, error) {
	eng, err := engine.NewTree(t, query, opts)
	if err != nil {
		return nil, err
	}
	return &TreeEnumerator{eng: eng}, nil
}

// Engine exposes the underlying snapshot engine, for callers that want
// to mix this convenience API with concurrent snapshot readers.
func (e *TreeEnumerator) Engine() *engine.TreeEngine { return e.eng }

// Tree returns the underlying tree (read-only use; edits must go through
// the enumerator).
func (e *TreeEnumerator) Tree() *tree.Unranked { return e.eng.Tree() }

// Relabel implements relabel(n, l) with O(log|T|·poly(|Q|)) work.
func (e *TreeEnumerator) Relabel(id tree.NodeID, l tree.Label) error {
	_, err := e.eng.Relabel(id, l)
	return err
}

// InsertFirstChild implements insert(n, l), returning the new node's ID.
func (e *TreeEnumerator) InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, _, err := e.eng.InsertFirstChild(id, l)
	return v, err
}

// InsertRightSibling implements insertR(n, l), returning the new node's
// ID.
func (e *TreeEnumerator) InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, _, err := e.eng.InsertRightSibling(id, l)
	return v, err
}

// Delete implements delete(n) for leaves.
func (e *TreeEnumerator) Delete(id tree.NodeID) error {
	_, err := e.eng.Delete(id)
	return err
}

// Results enumerates the satisfying assignments of the query on the
// current tree, without duplicates, with delay O(|S|·poly(|Q|))
// independent of |T| in the default indexed mode. The iterator reads the
// snapshot current at the call: edits made while an iteration is open do
// not disturb it (it keeps enumerating its own version).
func (e *TreeEnumerator) Results() iter.Seq[tree.Assignment] {
	return e.eng.Snapshot().Results()
}

// Count returns the number of satisfying assignments: an O(poly|Q|)
// semiring lookup for unambiguous queries (engine.Snapshot.Count), a
// drain otherwise.
func (e *TreeEnumerator) Count() int { return e.eng.Snapshot().Count() }

// At returns the j-th element of Results without enumerating the first
// j (count-guided descent; see engine.Snapshot.At).
func (e *TreeEnumerator) At(j int) (tree.Assignment, error) { return e.eng.Snapshot().At(j) }

// Page returns Results elements [offset, offset+limit) statelessly
// (see engine.Snapshot.Page).
func (e *TreeEnumerator) Page(offset, limit int) []tree.Assignment {
	return e.eng.Snapshot().Page(offset, limit)
}

// NonEmpty reports whether at least one satisfying assignment exists; by
// the delay bound it runs in time independent of |T| (indexed mode).
func (e *TreeEnumerator) NonEmpty() bool { return e.eng.Snapshot().NonEmpty() }

// All materializes every result (test/benchmark helper).
func (e *TreeEnumerator) All() []tree.Assignment { return e.eng.Snapshot().All() }

// Stats reports structure sizes.
func (e *TreeEnumerator) Stats() Stats { return e.eng.Snapshot().Stats() }
