package core

import (
	"fmt"
	"iter"

	"repro/internal/circuit"
	"repro/internal/enumerate"
	"repro/internal/forest"
	"repro/internal/tree"
	"repro/internal/tva"
)

// WordEnumerator is the update-aware enumerator of Theorem 8.5: it
// maintains the satisfying assignments of a word variable automaton on a
// dynamic word under letter insertion, deletion and replacement.
type WordEnumerator struct {
	w       *forest.Word
	builder *circuit.Builder
	opts    Options

	translatedStates int
	boxesRebuilt     int
}

// NewWordEnumerator preprocesses the word and the WVA (Corollary 8.4
// translation, then the same pipeline as trees).
func NewWordEnumerator(letters []tree.Label, query *tva.WVA, opts Options) (*WordEnumerator, error) {
	ab, err := forest.TranslateWord(query)
	if err != nil {
		return nil, err
	}
	translated := ab.NumStates
	hb := ab.Homogenize()
	builder, err := circuit.NewBuilder(hb)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	w, err := forest.NewWord(letters)
	if err != nil {
		return nil, err
	}
	e := &WordEnumerator{w: w, builder: builder, opts: opts, translatedStates: translated}
	e.refresh()
	return e, nil
}

func (e *WordEnumerator) refresh() {
	for _, n := range e.w.Drain() {
		if n.IsLeaf() {
			n.Box = e.builder.LeafBox(n.BinaryLabel(), n.TreeID)
		} else {
			n.Box = e.builder.InnerBox(n.BinaryLabel(), n.Left.Box, n.Right.Box)
			n.Box.Node = -1
		}
		if e.opts.Mode == enumerate.ModeIndexed {
			enumerate.BuildBoxIndex(n.Box)
		}
		e.boxesRebuilt++
	}
}

// Word returns the current word content as (letter IDs, labels).
func (e *WordEnumerator) Word() ([]tree.NodeID, []tree.Label) { return e.w.Letters() }

// IDAt resolves a 0-based position to its stable letter ID in O(log n).
func (e *WordEnumerator) IDAt(i int) (tree.NodeID, error) { return e.w.IDAt(i) }

// Len returns the word length.
func (e *WordEnumerator) Len() int { return e.w.Len() }

// Relabel replaces the letter with the given ID.
func (e *WordEnumerator) Relabel(id tree.NodeID, l tree.Label) error {
	if err := e.w.Relabel(id, l); err != nil {
		return err
	}
	e.refresh()
	return nil
}

// InsertAfter inserts a letter after the given ID.
func (e *WordEnumerator) InsertAfter(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, err := e.w.InsertAfter(id, l)
	if err != nil {
		return 0, err
	}
	e.refresh()
	return v, nil
}

// InsertBefore inserts a letter before the given ID.
func (e *WordEnumerator) InsertBefore(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, err := e.w.InsertBefore(id, l)
	if err != nil {
		return 0, err
	}
	e.refresh()
	return v, nil
}

// Delete removes a letter (the word must stay nonempty).
func (e *WordEnumerator) Delete(id tree.NodeID) error {
	if err := e.w.Delete(id); err != nil {
		return err
	}
	e.refresh()
	return nil
}

// Results enumerates the satisfying assignments on the current word.
func (e *WordEnumerator) Results() iter.Seq[tree.Assignment] {
	rb := e.w.Root.Box
	gamma, emptyOK := e.builder.RootAccepting(&circuit.Circuit{Root: rb})
	return enumerate.Assignments(rb, gamma, emptyOK, e.opts.Mode)
}

// Count drains Results and returns the number of results.
func (e *WordEnumerator) Count() int {
	n := 0
	for range e.Results() {
		n++
	}
	return n
}

// All materializes every result.
func (e *WordEnumerator) All() []tree.Assignment {
	var out []tree.Assignment
	for a := range e.Results() {
		out = append(out, a)
	}
	return out
}

// Stats reports structure sizes.
func (e *WordEnumerator) Stats() Stats {
	c := &circuit.Circuit{Root: e.w.Root.Box}
	u, x, v := c.CountGates()
	return Stats{
		TranslatedStates: e.translatedStates,
		AutomatonStates:  e.builder.A.NumStates,
		CircuitWidth:     c.Width(),
		Boxes:            c.NumBoxes(),
		UnionGates:       u,
		TimesGates:       x,
		VarGates:         v,
		TermHeight:       e.w.Root.Height,
		BoxesRebuilt:     e.boxesRebuilt,
		Rebalances:       e.w.Rebuilds,
	}
}
