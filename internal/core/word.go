package core

import (
	"iter"

	"repro/internal/engine"
	"repro/internal/tree"
	"repro/internal/tva"
)

// WordEnumerator is the update-aware enumerator of Theorem 8.5, as a
// single-threaded convenience wrapper over engine.WordEngine.
type WordEnumerator struct {
	eng *engine.WordEngine
}

// NewWordEnumerator preprocesses the word and the WVA (Corollary 8.4
// translation, then the same pipeline as trees).
func NewWordEnumerator(letters []tree.Label, query *tva.WVA, opts Options) (*WordEnumerator, error) {
	eng, err := engine.NewWord(letters, query, opts)
	if err != nil {
		return nil, err
	}
	return &WordEnumerator{eng: eng}, nil
}

// Engine exposes the underlying snapshot engine.
func (e *WordEnumerator) Engine() *engine.WordEngine { return e.eng }

// Word returns the current word content as (letter IDs, labels).
func (e *WordEnumerator) Word() ([]tree.NodeID, []tree.Label) { return e.eng.Word() }

// IDAt resolves a 0-based position to its stable letter ID in O(log n).
func (e *WordEnumerator) IDAt(i int) (tree.NodeID, error) { return e.eng.IDAt(i) }

// Len returns the word length.
func (e *WordEnumerator) Len() int { return e.eng.Len() }

// Relabel replaces the letter with the given ID.
func (e *WordEnumerator) Relabel(id tree.NodeID, l tree.Label) error {
	_, err := e.eng.Relabel(id, l)
	return err
}

// InsertAfter inserts a letter after the given ID.
func (e *WordEnumerator) InsertAfter(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, _, err := e.eng.InsertAfter(id, l)
	return v, err
}

// InsertBefore inserts a letter before the given ID.
func (e *WordEnumerator) InsertBefore(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, _, err := e.eng.InsertBefore(id, l)
	return v, err
}

// Delete removes a letter (the word must stay nonempty).
func (e *WordEnumerator) Delete(id tree.NodeID) error {
	_, err := e.eng.Delete(id)
	return err
}

// Results enumerates the satisfying assignments on the current word.
func (e *WordEnumerator) Results() iter.Seq[tree.Assignment] {
	return e.eng.Snapshot().Results()
}

// Count returns the number of results: an O(poly|Q|) semiring lookup
// for unambiguous queries (engine.Snapshot.Count), a drain otherwise.
func (e *WordEnumerator) Count() int { return e.eng.Snapshot().Count() }

// At returns the j-th element of Results without enumerating the first
// j (count-guided descent; see engine.Snapshot.At).
func (e *WordEnumerator) At(j int) (tree.Assignment, error) { return e.eng.Snapshot().At(j) }

// Page returns Results elements [offset, offset+limit) statelessly
// (see engine.Snapshot.Page).
func (e *WordEnumerator) Page(offset, limit int) []tree.Assignment {
	return e.eng.Snapshot().Page(offset, limit)
}

// All materializes every result.
func (e *WordEnumerator) All() []tree.Assignment { return e.eng.Snapshot().All() }

// Stats reports structure sizes.
func (e *WordEnumerator) Stats() Stats { return e.eng.Snapshot().Stats() }
