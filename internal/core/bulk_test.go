package core

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

// TestMoveRangeThroughEngine checks the bulk update keeps the
// enumeration structure consistent with the from-scratch oracle.
func TestMoveRangeThroughEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q := randomWVA(rng, 2, alphaAB, tree.NewVarSet(0))
	letters := []tree.Label{"a", "b", "a", "b", "b", "a"}
	e, err := NewWordEnumerator(letters, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 25; step++ {
		n := e.Len()
		from := rng.Intn(n)
		k := 1 + rng.Intn(n-from)
		if k == n {
			continue
		}
		dest := rng.Intn(n-k+1) - 1
		if err := e.MoveRange(from, k, dest); err != nil {
			t.Fatalf("step %d: MoveRange(%d,%d,%d): %v", step, from, k, dest, err)
		}
		ids, labs := e.Word()
		want, err := q.SatisfyingAssignments(labs, ids, 8)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "move", want, e.All())
	}
}
