package core

// MoveRange is the bulk word update sketched in the paper's conclusion:
// it moves the k letters starting at position from so that they follow
// position dest of the remaining word (dest = -1 prepends). Letter IDs
// are preserved; the enumeration structure is repaired incrementally and
// republished once (O(k·log n) — see forest.Word.MoveRange for the
// complexity note).
func (e *WordEnumerator) MoveRange(from, k, dest int) error {
	_, err := e.eng.MoveRange(from, k, dest)
	return err
}
