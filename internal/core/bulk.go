package core

// MoveRange is the bulk word update sketched in the paper's conclusion:
// it moves the k letters starting at position from so that they follow
// position dest of the remaining word (dest = -1 prepends). Letter IDs
// are preserved; the enumeration structure is repaired incrementally
// (O(k·log n) — see forest.Word.MoveRange for the complexity note).
func (e *WordEnumerator) MoveRange(from, k, dest int) error {
	if err := e.w.MoveRange(from, k, dest); err != nil {
		return err
	}
	e.refresh()
	return nil
}
