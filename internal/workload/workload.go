// Package workload provides the synthetic inputs of the experiment
// harness: tree shapes, words, queries, and update streams. Every
// experiment (see DESIGN.md §4 and cmd/benchtables) names the generator
// it uses, so results are reproducible from seeds.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/tree"
	"repro/internal/tva"
)

// Shape names accepted by Tree.
const (
	ShapeRandom = "random"
	ShapePath   = "path"
	ShapeStar   = "star"
	ShapeComb   = "comb"
	ShapeXMLish = "xmlish"
)

// Tree builds a tree of the given shape with n nodes over the alphabet
// {a, b, c} (xmlish uses element-like labels).
func Tree(shape string, n int, rng *rand.Rand) (*tree.Unranked, error) {
	switch shape {
	case ShapeRandom:
		return tva.RandomUnrankedTree(rng, n, []tree.Label{"a", "b", "c"}), nil
	case ShapePath:
		t := tree.NewUnranked("a")
		cur := t.Root.ID
		for i := 1; i < n; i++ {
			nn, err := t.InsertFirstChild(cur, pick(rng, "a", "b"))
			if err != nil {
				return nil, err
			}
			cur = nn.ID
		}
		return t, nil
	case ShapeStar:
		t := tree.NewUnranked("a")
		for i := 1; i < n; i++ {
			if _, err := t.InsertFirstChild(t.Root.ID, pick(rng, "a", "b")); err != nil {
				return nil, err
			}
		}
		return t, nil
	case ShapeComb:
		t := tree.NewUnranked("a")
		cur := t.Root.ID
		for i := 1; i < n; i += 2 {
			leaf, err := t.InsertFirstChild(cur, pick(rng, "a", "b"))
			if err != nil {
				return nil, err
			}
			nn, err := t.InsertRightSibling(leaf.ID, "a")
			if err != nil {
				return nil, err
			}
			cur = nn.ID
		}
		return t, nil
	case ShapeXMLish:
		// Document-like: moderate fanout, moderate depth.
		t := tree.NewUnranked("doc")
		frontier := []tree.NodeID{t.Root.ID}
		labels := []tree.Label{"sec", "par", "fig", "ref"}
		for t.Size() < n {
			parent := frontier[rng.Intn(len(frontier))]
			nn, err := t.InsertFirstChild(parent, labels[rng.Intn(len(labels))])
			if err != nil {
				return nil, err
			}
			if rng.Float64() < 0.6 {
				frontier = append(frontier, nn.ID)
			}
			if len(frontier) > 64 {
				frontier = frontier[len(frontier)-64:]
			}
		}
		return t, nil
	default:
		return nil, fmt.Errorf("workload: unknown shape %q", shape)
	}
}

func pick(rng *rand.Rand, ls ...tree.Label) tree.Label { return ls[rng.Intn(len(ls))] }

// Word builds a random word of length n over {a, b, c}.
func Word(n int, rng *rand.Rand) []tree.Label {
	out := make([]tree.Label, n)
	for i := range out {
		out[i] = pick(rng, "a", "b", "c")
	}
	return out
}

// TreeMutator is the edit interface shared by the real enumerator and
// the rebuild baseline, so update streams apply to both.
type TreeMutator interface {
	Tree() *tree.Unranked
	Relabel(id tree.NodeID, l tree.Label) error
	InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, error)
	InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, error)
	Delete(id tree.NodeID) error
}

// Edit is one update of a reproducible stream.
type Edit struct {
	Kind  int // 0 relabel, 1 insert first child, 2 insert right sibling, 3 delete
	Index int // index into the current preorder node list
	Label tree.Label
}

// RandomEdits draws a stream of e edit descriptors.
func RandomEdits(e int, rng *rand.Rand) []Edit {
	out := make([]Edit, e)
	for i := range out {
		out[i] = Edit{Kind: rng.Intn(4), Index: rng.Int(), Label: pick(rng, "a", "b", "c")}
	}
	return out
}

// Apply replays one edit descriptor on a mutator, resolving the index
// against the current tree; invalid combinations degrade to relabels so
// every descriptor performs exactly one update.
func Apply(m TreeMutator, ed Edit) error {
	nodes := m.Tree().Nodes()
	n := nodes[ed.Index%len(nodes)]
	switch ed.Kind {
	case 1:
		_, err := m.InsertFirstChild(n.ID, ed.Label)
		return err
	case 2:
		if n.Parent != nil {
			_, err := m.InsertRightSibling(n.ID, ed.Label)
			return err
		}
	case 3:
		if n.IsLeaf() && n.Parent != nil {
			return m.Delete(n.ID)
		}
	}
	return m.Relabel(n.ID, ed.Label)
}

// Editor applies random edits in O(1) bookkeeping per step (unlike
// Apply, which re-lists all nodes and would pollute update-time
// measurements with Θ(n) scan cost). It tracks live node IDs itself.
type Editor struct {
	m   TreeMutator
	rng *rand.Rand
	ids []tree.NodeID
}

// NewEditor indexes the current nodes of the mutator's tree.
func NewEditor(m TreeMutator, rng *rand.Rand) *Editor {
	ed := &Editor{m: m, rng: rng}
	for _, n := range m.Tree().Nodes() {
		ed.ids = append(ed.ids, n.ID)
	}
	return ed
}

// Step performs one random edit (relabel, insert, insertR or delete).
func (ed *Editor) Step() error {
	for attempt := 0; attempt < 8; attempt++ {
		i := ed.rng.Intn(len(ed.ids))
		id := ed.ids[i]
		n := ed.m.Tree().Node(id)
		if n == nil {
			ed.ids[i] = ed.ids[len(ed.ids)-1]
			ed.ids = ed.ids[:len(ed.ids)-1]
			continue
		}
		l := pick(ed.rng, "a", "b", "c")
		switch ed.rng.Intn(4) {
		case 0:
			return ed.m.Relabel(id, l)
		case 1:
			v, err := ed.m.InsertFirstChild(id, l)
			if err == nil {
				ed.ids = append(ed.ids, v)
			}
			return err
		case 2:
			if n.Parent == nil {
				continue
			}
			v, err := ed.m.InsertRightSibling(id, l)
			if err == nil {
				ed.ids = append(ed.ids, v)
			}
			return err
		default:
			if !n.IsLeaf() || n.Parent == nil {
				continue
			}
			if err := ed.m.Delete(id); err != nil {
				return err
			}
			ed.ids[i] = ed.ids[len(ed.ids)-1]
			ed.ids = ed.ids[:len(ed.ids)-1]
			return nil
		}
	}
	// Fall back to a relabel of the root, which always exists.
	return ed.m.Relabel(ed.m.Tree().Root.ID, pick(ed.rng, "a", "b", "c"))
}

// AncestorQuery returns the standing query of experiments E1-E4 over the
// alphabet {a, b, c}: select every node x (any label) that has an
// a-labeled proper ancestor. Four automaton states.
func AncestorQuery() *tva.Unranked {
	const (
		m0 = tva.State(0) // no x in subtree, subtree root labeled a
		u0 = tva.State(1) // no x in subtree, subtree root not a
		s1 = tva.State(2) // x in subtree, no a-ancestor of x inside
		s2 = tva.State(3) // x in subtree with an a-labeled proper ancestor
	)
	x := tree.NewVarSet(0)
	a := &tva.Unranked{
		NumStates: 4,
		Alphabet:  []tree.Label{"a", "b", "c"},
		Vars:      x,
		Final:     []tva.State{s2},
		Init: []tva.InitRule{
			{Label: "a", Set: 0, State: m0},
			{Label: "b", Set: 0, State: u0},
			{Label: "c", Set: 0, State: u0},
			{Label: "a", Set: x, State: s1},
			{Label: "b", Set: x, State: s1},
			{Label: "c", Set: x, State: s1},
		},
		Delta: []tva.StepTriple{
			{From: m0, Child: m0, To: m0}, {From: m0, Child: u0, To: m0},
			{From: m0, Child: s1, To: s2}, {From: m0, Child: s2, To: s2},
			{From: u0, Child: m0, To: u0}, {From: u0, Child: u0, To: u0},
			{From: u0, Child: s1, To: s1}, {From: u0, Child: s2, To: s2},
			{From: s1, Child: m0, To: s1}, {From: s1, Child: u0, To: s1},
			{From: s2, Child: m0, To: s2}, {From: s2, Child: u0, To: s2},
		},
	}
	return a
}
