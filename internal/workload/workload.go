// Package workload provides the synthetic inputs of the experiment
// harness: tree shapes, words, queries, and update streams. Every
// experiment (see DESIGN.md §4 and cmd/benchtables) names the generator
// it uses, so results are reproducible from seeds.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/tree"
	"repro/internal/tva"
)

// Shape names accepted by Tree.
const (
	ShapeRandom = "random"
	ShapePath   = "path"
	ShapeStar   = "star"
	ShapeComb   = "comb"
	ShapeXMLish = "xmlish"
)

// Tree builds a tree of the given shape with n nodes over the alphabet
// {a, b, c} (xmlish uses element-like labels).
func Tree(shape string, n int, rng *rand.Rand) (*tree.Unranked, error) {
	switch shape {
	case ShapeRandom:
		return tva.RandomUnrankedTree(rng, n, []tree.Label{"a", "b", "c"}), nil
	case ShapePath:
		t := tree.NewUnranked("a")
		cur := t.Root.ID
		for i := 1; i < n; i++ {
			nn, err := t.InsertFirstChild(cur, pick(rng, "a", "b"))
			if err != nil {
				return nil, err
			}
			cur = nn.ID
		}
		return t, nil
	case ShapeStar:
		t := tree.NewUnranked("a")
		for i := 1; i < n; i++ {
			if _, err := t.InsertFirstChild(t.Root.ID, pick(rng, "a", "b")); err != nil {
				return nil, err
			}
		}
		return t, nil
	case ShapeComb:
		t := tree.NewUnranked("a")
		cur := t.Root.ID
		for i := 1; i < n; i += 2 {
			leaf, err := t.InsertFirstChild(cur, pick(rng, "a", "b"))
			if err != nil {
				return nil, err
			}
			nn, err := t.InsertRightSibling(leaf.ID, "a")
			if err != nil {
				return nil, err
			}
			cur = nn.ID
		}
		return t, nil
	case ShapeXMLish:
		// Document-like: moderate fanout, moderate depth.
		t := tree.NewUnranked("doc")
		frontier := []tree.NodeID{t.Root.ID}
		labels := []tree.Label{"sec", "par", "fig", "ref"}
		for t.Size() < n {
			parent := frontier[rng.Intn(len(frontier))]
			nn, err := t.InsertFirstChild(parent, labels[rng.Intn(len(labels))])
			if err != nil {
				return nil, err
			}
			if rng.Float64() < 0.6 {
				frontier = append(frontier, nn.ID)
			}
			if len(frontier) > 64 {
				frontier = frontier[len(frontier)-64:]
			}
		}
		return t, nil
	default:
		return nil, fmt.Errorf("workload: unknown shape %q", shape)
	}
}

func pick(rng *rand.Rand, ls ...tree.Label) tree.Label { return ls[rng.Intn(len(ls))] }

// Word builds a random word of length n over {a, b, c}.
func Word(n int, rng *rand.Rand) []tree.Label {
	out := make([]tree.Label, n)
	for i := range out {
		out[i] = pick(rng, "a", "b", "c")
	}
	return out
}

// TreeMutator is the edit interface shared by the real enumerator and
// the rebuild baseline, so update streams apply to both.
type TreeMutator interface {
	Tree() *tree.Unranked
	Relabel(id tree.NodeID, l tree.Label) error
	InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, error)
	InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, error)
	Delete(id tree.NodeID) error
}

// Edit is one update of a reproducible stream.
type Edit struct {
	Kind  int // 0 relabel, 1 insert first child, 2 insert right sibling, 3 delete
	Index int // index into the current preorder node list
	Label tree.Label
}

// RandomEdits draws a stream of e edit descriptors.
func RandomEdits(e int, rng *rand.Rand) []Edit {
	out := make([]Edit, e)
	for i := range out {
		out[i] = Edit{Kind: rng.Intn(4), Index: rng.Int(), Label: pick(rng, "a", "b", "c")}
	}
	return out
}

// Apply replays one edit descriptor on a mutator, resolving the index
// against the current tree; invalid combinations degrade to relabels so
// every descriptor performs exactly one update.
func Apply(m TreeMutator, ed Edit) error {
	nodes := m.Tree().Nodes()
	n := nodes[ed.Index%len(nodes)]
	switch ed.Kind {
	case 1:
		_, err := m.InsertFirstChild(n.ID, ed.Label)
		return err
	case 2:
		if n.Parent != nil {
			_, err := m.InsertRightSibling(n.ID, ed.Label)
			return err
		}
	case 3:
		if n.IsLeaf() && n.Parent != nil {
			return m.Delete(n.ID)
		}
	}
	return m.Relabel(n.ID, ed.Label)
}

// Editor applies random edits in O(1) bookkeeping per step (unlike
// Apply, which re-lists all nodes and would pollute update-time
// measurements with Θ(n) scan cost). It tracks live node IDs itself.
type Editor struct {
	m   TreeMutator
	rng *rand.Rand
	ids []tree.NodeID
}

// NewEditor indexes the current nodes of the mutator's tree.
func NewEditor(m TreeMutator, rng *rand.Rand) *Editor {
	ed := &Editor{m: m, rng: rng}
	for _, n := range m.Tree().Nodes() {
		ed.ids = append(ed.ids, n.ID)
	}
	return ed
}

// Step performs one random edit (relabel, insert, insertR or delete).
func (ed *Editor) Step() error {
	for attempt := 0; attempt < 8; attempt++ {
		i := ed.rng.Intn(len(ed.ids))
		id := ed.ids[i]
		n := ed.m.Tree().Node(id)
		if n == nil {
			ed.ids[i] = ed.ids[len(ed.ids)-1]
			ed.ids = ed.ids[:len(ed.ids)-1]
			continue
		}
		l := pick(ed.rng, "a", "b", "c")
		switch ed.rng.Intn(4) {
		case 0:
			return ed.m.Relabel(id, l)
		case 1:
			v, err := ed.m.InsertFirstChild(id, l)
			if err == nil {
				ed.ids = append(ed.ids, v)
			}
			return err
		case 2:
			if n.Parent == nil {
				continue
			}
			v, err := ed.m.InsertRightSibling(id, l)
			if err == nil {
				ed.ids = append(ed.ids, v)
			}
			return err
		default:
			if !n.IsLeaf() || n.Parent == nil {
				continue
			}
			if err := ed.m.Delete(id); err != nil {
				return err
			}
			ed.ids[i] = ed.ids[len(ed.ids)-1]
			ed.ids = ed.ids[:len(ed.ids)-1]
			return nil
		}
	}
	// Fall back to a relabel of the root, which always exists.
	return ed.m.Relabel(ed.m.Tree().Root.ID, pick(ed.rng, "a", "b", "c"))
}

// StructuralTreeMutator extends TreeMutator with the subtree edits of
// the structural edit language: whole-subtree delete, move and graft.
// Implemented by baseline.RebuildEnumerator and (via snapshot-dropping
// adapters) by the engine writers, so the structural update streams
// drive both sides of a differential run.
type StructuralTreeMutator interface {
	TreeMutator
	DeleteSubtree(id tree.NodeID) error
	MoveSubtreeFirstChild(id, dest tree.NodeID) error
	MoveSubtreeRightSibling(id, dest tree.NodeID) error
	InsertSubtreeFirstChild(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, error)
	InsertSubtreeRightSibling(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, error)
}

// RandomFragment builds a small random tree of n nodes over {a, b, c},
// suitable as a graft argument for the subtree inserts.
func RandomFragment(rng *rand.Rand, n int) *tree.Unranked {
	if n < 1 {
		n = 1
	}
	return tva.RandomUnrankedTree(rng, n, []tree.Label{"a", "b", "c"})
}

// EditWeights configures the mix of a StructuralEditor. A kind with
// weight 0 never fires; kinds that cannot apply at the drawn node (e.g.
// a subtree move whose destination would be inside the moved subtree)
// are redrawn, so the realized mix tracks the weights closely instead of
// degrading to relabels the way Apply does.
type EditWeights struct {
	Relabel        int
	InsertLeaf     int // insert first child / right sibling (even split)
	DeleteLeaf     int
	InsertSubtree  int // graft a RandomFragment (even split child/sibling)
	DeleteSubtree  int
	MoveSubtree    int // relocate a whole subtree (even split child/sibling)
	MaxFragment    int // largest graft size (default 8)
	MaxDeleteRatio int // skip subtree deletes larger than size/ratio (default 4)
}

// DefaultStructuralWeights is the structural mix of the differential
// suites and experiment E-struct: half leaf edits, half subtree edits.
func DefaultStructuralWeights() EditWeights {
	return EditWeights{Relabel: 20, InsertLeaf: 20, DeleteLeaf: 10, InsertSubtree: 20, DeleteSubtree: 10, MoveSubtree: 20}
}

// Structural edit kinds, indexing StructuralEditor.Counts.
const (
	KindRelabel = iota
	KindInsertLeaf
	KindDeleteLeaf
	KindInsertSubtree
	KindDeleteSubtree
	KindMoveSubtree
	numKinds
)

// StructuralEditor draws weighted structural edits, reproducible from
// its rng. Like Editor it tracks live node IDs itself (lazily dropping
// stale ones) so per-step bookkeeping stays sublinear in the tree.
type StructuralEditor struct {
	m      StructuralTreeMutator
	rng    *rand.Rand
	w      EditWeights
	ids    []tree.NodeID
	Counts [numKinds]int // realized edits by kind
}

// NewStructuralEditor indexes the current nodes of the mutator's tree.
func NewStructuralEditor(m StructuralTreeMutator, w EditWeights, rng *rand.Rand) *StructuralEditor {
	if w.MaxFragment <= 0 {
		w.MaxFragment = 8
	}
	if w.MaxDeleteRatio <= 0 {
		w.MaxDeleteRatio = 4
	}
	ed := &StructuralEditor{m: m, rng: rng, w: w}
	for _, n := range m.Tree().Nodes() {
		ed.ids = append(ed.ids, n.ID)
	}
	return ed
}

// pickLive draws a random live node ID, compacting stale entries.
func (ed *StructuralEditor) pickLive() *tree.UNode {
	for len(ed.ids) > 0 {
		i := ed.rng.Intn(len(ed.ids))
		if n := ed.m.Tree().Node(ed.ids[i]); n != nil {
			return n
		}
		ed.ids[i] = ed.ids[len(ed.ids)-1]
		ed.ids = ed.ids[:len(ed.ids)-1]
	}
	return ed.m.Tree().Root
}

// trackSubtree records the IDs of a freshly grafted subtree.
func (ed *StructuralEditor) trackSubtree(root tree.NodeID) {
	t := ed.m.Tree()
	var rec func(n *tree.UNode)
	rec = func(n *tree.UNode) {
		ed.ids = append(ed.ids, n.ID)
		for c := n.FirstChild; c != nil; c = c.NextSib {
			rec(c)
		}
	}
	if n := t.Node(root); n != nil {
		rec(n)
	}
}

// drawKind samples an edit kind by weight.
func (ed *StructuralEditor) drawKind() int {
	w := [numKinds]int{ed.w.Relabel, ed.w.InsertLeaf, ed.w.DeleteLeaf, ed.w.InsertSubtree, ed.w.DeleteSubtree, ed.w.MoveSubtree}
	total := 0
	for _, x := range w {
		total += x
	}
	if total == 0 {
		return KindRelabel
	}
	r := ed.rng.Intn(total)
	for k, x := range w {
		if r < x {
			return k
		}
		r -= x
	}
	return KindRelabel
}

// Step performs one weighted edit; kinds that cannot apply at the drawn
// node are redrawn (bounded attempts), falling back to a root relabel.
func (ed *StructuralEditor) Step() error {
	t := ed.m.Tree()
	for attempt := 0; attempt < 16; attempt++ {
		n := ed.pickLive()
		l := pick(ed.rng, "a", "b", "c")
		switch ed.drawKind() {
		case KindRelabel:
			ed.Counts[KindRelabel]++
			return ed.m.Relabel(n.ID, l)
		case KindInsertLeaf:
			if ed.rng.Intn(2) == 0 || n.Parent == nil {
				v, err := ed.m.InsertFirstChild(n.ID, l)
				if err == nil {
					ed.ids = append(ed.ids, v)
					ed.Counts[KindInsertLeaf]++
				}
				return err
			}
			v, err := ed.m.InsertRightSibling(n.ID, l)
			if err == nil {
				ed.ids = append(ed.ids, v)
				ed.Counts[KindInsertLeaf]++
			}
			return err
		case KindDeleteLeaf:
			if !n.IsLeaf() || n.Parent == nil {
				continue
			}
			if err := ed.m.Delete(n.ID); err != nil {
				return err
			}
			ed.Counts[KindDeleteLeaf]++
			return nil
		case KindInsertSubtree:
			frag := RandomFragment(ed.rng, 1+ed.rng.Intn(ed.w.MaxFragment))
			var v tree.NodeID
			var err error
			if ed.rng.Intn(2) == 0 || n.Parent == nil {
				v, err = ed.m.InsertSubtreeFirstChild(n.ID, frag)
			} else {
				v, err = ed.m.InsertSubtreeRightSibling(n.ID, frag)
			}
			if err == nil {
				ed.trackSubtree(v)
				ed.Counts[KindInsertSubtree]++
			}
			return err
		case KindDeleteSubtree:
			if n.Parent == nil {
				continue
			}
			// Keep the document from collapsing: skip deletes of more
			// than 1/MaxDeleteRatio of the tree.
			if t.SubtreeSize(n.ID) > t.Size()/ed.w.MaxDeleteRatio {
				continue
			}
			if err := ed.m.DeleteSubtree(n.ID); err != nil {
				return err
			}
			ed.Counts[KindDeleteSubtree]++
			return nil
		case KindMoveSubtree:
			if n.Parent == nil {
				continue
			}
			dest := ed.pickLive()
			if t.InSubtree(n.ID, dest.ID) {
				continue
			}
			var err error
			if ed.rng.Intn(2) == 0 || dest.Parent == nil {
				err = ed.m.MoveSubtreeFirstChild(n.ID, dest.ID)
			} else {
				err = ed.m.MoveSubtreeRightSibling(n.ID, dest.ID)
			}
			if err == nil {
				ed.Counts[KindMoveSubtree]++
			}
			return err
		}
	}
	ed.Counts[KindRelabel]++
	return ed.m.Relabel(t.Root.ID, pick(ed.rng, "a", "b", "c"))
}

// AncestorQuery returns the standing query of experiments E1-E4 over the
// alphabet {a, b, c}: select every node x (any label) that has an
// a-labeled proper ancestor. Four automaton states.
func AncestorQuery() *tva.Unranked {
	const (
		m0 = tva.State(0) // no x in subtree, subtree root labeled a
		u0 = tva.State(1) // no x in subtree, subtree root not a
		s1 = tva.State(2) // x in subtree, no a-ancestor of x inside
		s2 = tva.State(3) // x in subtree with an a-labeled proper ancestor
	)
	x := tree.NewVarSet(0)
	a := &tva.Unranked{
		NumStates: 4,
		Alphabet:  []tree.Label{"a", "b", "c"},
		Vars:      x,
		Final:     []tva.State{s2},
		Init: []tva.InitRule{
			{Label: "a", Set: 0, State: m0},
			{Label: "b", Set: 0, State: u0},
			{Label: "c", Set: 0, State: u0},
			{Label: "a", Set: x, State: s1},
			{Label: "b", Set: x, State: s1},
			{Label: "c", Set: x, State: s1},
		},
		Delta: []tva.StepTriple{
			{From: m0, Child: m0, To: m0}, {From: m0, Child: u0, To: m0},
			{From: m0, Child: s1, To: s2}, {From: m0, Child: s2, To: s2},
			{From: u0, Child: m0, To: u0}, {From: u0, Child: u0, To: u0},
			{From: u0, Child: s1, To: s1}, {From: u0, Child: s2, To: s2},
			{From: s1, Child: m0, To: s1}, {From: s1, Child: u0, To: s1},
			{From: s2, Child: m0, To: s2}, {From: s2, Child: u0, To: s2},
		},
	}
	return a
}
