package workload

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/tree"
)

func TestTreeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []string{ShapeRandom, ShapePath, ShapeStar, ShapeComb, ShapeXMLish} {
		ut, err := Tree(shape, 50, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ut.Size() < 49 || ut.Size() > 52 {
			t.Fatalf("%s: size %d", shape, ut.Size())
		}
	}
	if _, err := Tree("nope", 10, rng); err == nil {
		t.Fatal("unknown shape should fail")
	}
	// Shape sanity.
	p, _ := Tree(ShapePath, 30, rng)
	if p.Height() != 29 {
		t.Fatalf("path height %d", p.Height())
	}
	s, _ := Tree(ShapeStar, 30, rng)
	if s.Height() != 1 {
		t.Fatalf("star height %d", s.Height())
	}
}

func TestWord(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := Word(40, rng)
	if len(w) != 40 {
		t.Fatalf("len %d", len(w))
	}
}

func TestAncestorQuerySemantics(t *testing.T) {
	q := AncestorQuery()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	ut, _ := tree.ParseUnranked("(b (a (c) (b (c))) (c))")
	got, err := q.SatisfyingAssignments(ut, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes under the "a": c, b, c (3 nodes with an a-ancestor).
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3: %v", len(got), got)
	}
	for _, asg := range got {
		n := ut.Node(asg[0].Node)
		found := false
		for p := n.Parent; p != nil; p = p.Parent {
			if p.Label == "a" {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d has no a-ancestor", n.ID)
		}
	}
}

func TestApplyEditStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ut, _ := Tree(ShapeRandom, 30, rng)
	e, err := core.NewTreeEnumerator(ut, AncestorQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	edits := RandomEdits(100, rng)
	for _, ed := range edits {
		if err := Apply(e, ed); err != nil {
			t.Fatal(err)
		}
	}
	// Cross-check against the oracle after the storm if small enough;
	// otherwise just exercise the enumeration.
	if e.Tree().Size() <= 7 {
		want, err := AncestorQuery().SatisfyingAssignments(e.Tree(), 7)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Count(); got != len(want) {
			t.Fatalf("count %d, want %d", got, len(want))
		}
	} else {
		_ = e.Count()
	}
}

func TestEditorStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ut, _ := Tree(ShapeRandom, 6, rng)
	e, err := core.NewTreeEnumerator(ut, AncestorQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ed := NewEditor(e, rng)
	for i := 0; i < 120; i++ {
		if err := ed.Step(); err != nil {
			t.Fatal(err)
		}
		if e.Tree().Size() <= 7 {
			want, err := AncestorQuery().SatisfyingAssignments(e.Tree(), 7)
			if err != nil {
				t.Fatal(err)
			}
			if got := e.Count(); got != len(want) {
				t.Fatalf("step %d: count %d, want %d", i, got, len(want))
			}
		}
	}
}
