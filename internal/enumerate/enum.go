package enumerate

import (
	"iter"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/tree"
)

// EnumStarts counts how many enumerations have been started (one
// increment per iteration of a Ropes/Assignments sequence, not per
// result). It is a test instrumentation hook: regression tests assert
// that the algebraic fast paths (Snapshot.Count, Snapshot.At) perform
// no enumeration work by observing this counter. Production code never
// reads it.
var EnumStarts atomic.Int64

// Mode selects the enumeration strategy.
type Mode int

const (
	// ModeIndexed is the full algorithm of the paper: Algorithm 2 over
	// Algorithm 3, duplicate-free with delay independent of the circuit
	// depth (Theorem 6.5). Requires BuildIndex.
	ModeIndexed Mode = iota
	// ModeNaive is Algorithm 2 over the naive box enumeration:
	// duplicate-free, delay proportional to circuit depth (Section 5).
	ModeNaive
	// ModeSimple is Algorithm 1: duplicates allowed, delay proportional
	// to circuit depth (Section 4).
	ModeSimple
)

// boxEnumFor returns the box-enumeration strategy for a mode.
func boxEnumFor(m Mode) BoxEnum {
	if m == ModeIndexed {
		return IndexedBoxEnum
	}
	return NaiveBoxEnum
}

// Boxwise is Algorithm 2 (Section 5): it enumerates S(Γ) without
// duplicates for the boxed set gamma of box b, yielding for each
// assignment its provenance Prov(S, Γ) = {g ∈ Γ | S ∈ S(g)} as a set of
// local ∪-gate indices. The box enumeration strategy is a parameter
// (Lemma 6.4 supplies the efficient one).
func Boxwise(b *IndexedBox, gamma bitset.Set, be BoxEnum) iter.Seq2[*Rope, bitset.Set] {
	return func(yield func(*Rope, bitset.Set) bool) {
		if gamma.Empty() {
			return
		}
		for br := range be(b, gamma) {
			if !boxwiseStep(br, be, yield) {
				return
			}
		}
	}
}

// boxwiseStep processes one interesting box B′ (lines 4-16 of Algorithm
// 2): outputs the assignments of var gates of B′ whose ∪-wires reach Γ,
// then recursively combines the ×-gates of B′.
func boxwiseStep(br BoxRelation, be BoxEnum, yield func(*Rope, bitset.Set) bool) bool {
	bp := br.Box.Box
	// Provenance of each local ↓-gate: union of the R-rows of the
	// ∪-gates it feeds (this is {h}∘W∘R(B′,Γ) from the paper).
	for vi := range bp.Vars {
		prov := gateProv(br.R, bp.VarOut[vi])
		if prov.Empty() {
			continue
		}
		vg := bp.Vars[vi]
		if !yield(LeafRope(vg.Set, vg.Node), prov) {
			return false
		}
	}
	if len(bp.Times) == 0 {
		return true
	}
	// G×: the ×-gates of B′ in ↓(Γ), with their provenances.
	provT := make([]bitset.Set, len(bp.Times))
	inDown := make([]bool, len(bp.Times))
	gammaL := bitset.NewSet(len(bp.Left.Unions))
	any := false
	for ti := range bp.Times {
		p := gateProv(br.R, bp.TimesOut[ti])
		if p.Empty() {
			continue
		}
		provT[ti] = p
		inDown[ti] = true
		gammaL.Add(int(bp.Times[ti].Left))
		any = true
	}
	if !any {
		return true
	}
	// Lines 10-16: enumerate left factors, then for each the compatible
	// right factors.
	for sl, provL := range Boxwise(br.Box.Left, gammaL, be) {
		gammaR := bitset.NewSet(len(bp.Right.Unions))
		liveT := make([]int32, 0, len(bp.Times))
		for ti := range bp.Times {
			if inDown[ti] && provL.Has(int(bp.Times[ti].Left)) {
				liveT = append(liveT, int32(ti))
				gammaR.Add(int(bp.Times[ti].Right))
			}
		}
		if len(liveT) == 0 {
			continue
		}
		for sr, provR := range Boxwise(br.Box.Right, gammaR, be) {
			var prov bitset.Set
			first := true
			for _, ti := range liveT {
				if !provR.Has(int(bp.Times[ti].Right)) {
					continue
				}
				if first {
					prov = provT[ti].Clone()
					first = false
				} else {
					prov.Or(provT[ti])
				}
			}
			if first {
				continue // no ×-gate matched both sides (cannot happen per Theorem 5.3)
			}
			if !yield(Concat(sl, sr), prov) {
				return false
			}
		}
	}
	return true
}

// gateProv computes the provenance of a local gate: the union of the
// relation rows of the ∪-gates listed in outs.
func gateProv(r bitset.Matrix, outs []int32) bitset.Set {
	prov := bitset.NewSet(r.Cols)
	for _, u := range outs {
		prov.Or(r.Row(int(u)))
	}
	return prov
}

// Ropes enumerates S(Γ) for the boxed set gamma of box b as ropes,
// without duplicates (plus the empty assignment first if emptyOK), using
// the given mode. A nil rope stands for the empty assignment. The
// wrapper tree is only read, so any number of goroutines may run
// independent enumerations from the same wrapper concurrently.
func Ropes(b *IndexedBox, gamma bitset.Set, emptyOK bool, mode Mode) iter.Seq[*Rope] {
	return func(yield func(*Rope) bool) {
		EnumStarts.Add(1)
		if emptyOK {
			if !yield(nil) {
				return
			}
		}
		if b == nil || gamma.Empty() {
			return
		}
		if mode == ModeSimple {
			for r := range Simple(b.Box, gamma) {
				if !yield(r) {
					return
				}
			}
			return
		}
		for r := range Boxwise(b, gamma, boxEnumFor(mode)) {
			if !yield(r) {
				return
			}
		}
	}
}

// Assignments is like Ropes but materializes each assignment (the empty
// assignment materializes to an empty, non-nil slice).
func Assignments(b *IndexedBox, gamma bitset.Set, emptyOK bool, mode Mode) iter.Seq[tree.Assignment] {
	return func(yield func(tree.Assignment) bool) {
		for r := range Ropes(b, gamma, emptyOK, mode) {
			if r == nil {
				if !yield(tree.Assignment{}) {
					return
				}
				continue
			}
			if !yield(r.Materialize()) {
				return
			}
		}
	}
}
