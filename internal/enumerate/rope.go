// Package enumerate implements the enumeration algorithms of Sections 4-6
// of the paper on assignment circuits built by package circuit:
//
//   - Algorithm 1 (Simple): enumeration with duplicates and delay linear
//     in the circuit depth, kept as a baseline and correctness anchor.
//   - Algorithm 2 (the boxwise scheme of Section 5): duplicate-free
//     enumeration with provenance, parameterized by a box-enumeration
//     strategy.
//   - The naive box-enumeration (delay proportional to circuit depth) and
//     the jump-pointer box-enumeration of Section 6 (Algorithm 3), which
//     uses the index structure I(C) of Definition 6.1 to achieve delay
//     independent of the circuit depth.
//
// The index is computed bottom-up per box (Lemma 6.3) and can therefore be
// repaired along a hollowing trunk after updates (Lemma 7.3).
package enumerate

import (
	"iter"

	"repro/internal/tree"
)

// Rope is a persistent, immutable assignment under construction: a binary
// concatenation tree over var-gate outputs. Concatenation is O(1) and
// materialization is O(size), which is what gives Algorithm 2 its
// O(|S|·poly(w)) delay: a produced assignment is shared between iterations
// rather than copied.
type Rope struct {
	set   tree.VarSet // leaf: variables placed at node
	node  tree.NodeID // leaf: the node
	left  *Rope       // internal: concatenation
	right *Rope
	size  int // number of singletons
}

// LeafRope returns the rope for a var gate capturing {⟨Z:n⟩ | Z ∈ set}.
func LeafRope(set tree.VarSet, node tree.NodeID) *Rope {
	return &Rope{set: set, node: node, size: set.Count()}
}

// Concat returns the concatenation of two ropes in O(1).
func Concat(l, r *Rope) *Rope {
	return &Rope{left: l, right: r, size: l.size + r.size}
}

// Size returns the number of singletons in the assignment.
func (r *Rope) Size() int { return r.size }

// Materialize flattens the rope into an assignment in O(size). The v-tree
// discipline of structured DNNFs guarantees the leaves are already in
// document order of the underlying tree, but Normalize is cheap and makes
// the output canonical regardless.
func (r *Rope) Materialize() tree.Assignment {
	out := make(tree.Assignment, 0, r.size)
	var walk func(x *Rope)
	walk = func(x *Rope) {
		if x.left == nil {
			for _, z := range x.set.Vars() {
				out = append(out, tree.Singleton{Var: z, Node: x.node})
			}
			return
		}
		walk(x.left)
		walk(x.right)
	}
	walk(r)
	return out.Normalize()
}

// collectSeq adapts an iterator to a slice; used in tests.
func collectSeq[T any](s iter.Seq[T]) []T {
	var out []T
	for v := range s {
		out = append(out, v)
	}
	return out
}
