package enumerate

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/counting"
	"repro/internal/tree"
	"repro/internal/tva"
)

// countedCircuit builds a random circuit, wraps it with the index, and
// fills per-box derivation counts through counting.Evaluator — the same
// wiring the engine uses — returning also whether the homogenized
// automaton is unambiguous.
func countedCircuit(rng *rand.Rand, states, leaves int) (root *IndexedBox, unamb bool, bd *circuit.Builder, c *circuit.Circuit) {
	raw := tva.RandomBinary(rng, states, alphaAB, tree.NewVarSet(0, 1), 0.4)
	a := raw.Homogenize()
	if a.NumStates == 0 {
		return nil, false, nil, nil
	}
	bd, err := circuit.NewBuilder(a)
	if err != nil {
		panic(err)
	}
	bt := tva.RandomBinaryTree(rng, leaves, alphaAB)
	c = bd.Build(bt)
	if c == nil || c.Root == nil {
		return nil, false, nil, nil
	}
	root = BuildIndex(c)
	ev := counting.NewEvaluator[*big.Int](counting.Derivations{})
	CountCircuit(root, ev.UnionsOf)
	return root, a.Unambiguous(), bd, c
}

// TestAtMatchesRopesOrder checks, on random circuits, that At(j)
// returns exactly the j-th rope of Ropes for every rank: ModeSimple
// always (one output per derivation), ModeIndexed whenever the
// automaton is unambiguous. Total must match the enumeration length in
// the same cases.
func TestAtMatchesRopesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trials, indexedTrials := 0, 0
	for trials < 150 {
		root, unamb, bd, c := countedCircuit(rng, 1+rng.Intn(3), 1+rng.Intn(8))
		if root == nil {
			continue
		}
		trials++
		gamma, emptyOK := bd.RootAccepting(c)
		modes := []Mode{ModeSimple}
		if unamb {
			modes = append(modes, ModeIndexed)
			indexedTrials++
		}
		for _, mode := range modes {
			var keys []string
			for r := range Ropes(root, gamma, emptyOK, mode) {
				if r == nil {
					keys = append(keys, "<empty>")
				} else {
					keys = append(keys, r.Materialize().Key())
				}
			}
			total, err := Total(root, gamma, emptyOK)
			if err != nil {
				t.Fatal(err)
			}
			if mode == ModeSimple || unamb {
				if total.Cmp(big.NewInt(int64(len(keys)))) != 0 {
					t.Fatalf("mode %v: Total = %s, enumerated %d (unamb=%v)", mode, total, len(keys), unamb)
				}
			}
			for j := range keys {
				r, err := At(root, gamma, emptyOK, mode, big.NewInt(int64(j)))
				if err != nil {
					t.Fatalf("mode %v: At(%d): %v", mode, j, err)
				}
				got := "<empty>"
				if r != nil {
					got = r.Materialize().Key()
				}
				if got != keys[j] {
					t.Fatalf("mode %v: At(%d) = %s, want %s", mode, j, got, keys[j])
				}
			}
			if _, err := At(root, gamma, emptyOK, mode, big.NewInt(int64(len(keys)))); err == nil {
				t.Fatalf("mode %v: At past the end succeeded", mode)
			}
			if _, err := At(root, gamma, emptyOK, mode, big.NewInt(-1)); err == nil {
				t.Fatalf("mode %v: At(-1) succeeded", mode)
			}
		}
	}
	if indexedTrials < 20 {
		t.Fatalf("too few unambiguous trials: %d", indexedTrials)
	}
}

// TestAtErrors pins the error surface: ModeNaive has no direct access,
// and wrappers without counts refuse cleanly.
func TestAtErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for {
		root, _, bd, c := countedCircuit(rng, 2, 4)
		if root == nil {
			continue
		}
		gamma, emptyOK := bd.RootAccepting(c)
		if gamma.Empty() {
			continue
		}
		if _, err := At(root, gamma, emptyOK, ModeNaive, big.NewInt(0)); err != ErrNoDirectAccess {
			t.Fatalf("ModeNaive At = %v, want ErrNoDirectAccess", err)
		}
		bare := BuildIndex(c) // no counts filled
		if _, err := At(bare, gamma, emptyOK, ModeIndexed, big.NewInt(0)); err != ErrNoDirectAccess {
			t.Fatalf("countless At = %v, want ErrNoDirectAccess", err)
		}
		if _, err := Total(bare, gamma, emptyOK); err != ErrNoDirectAccess {
			t.Fatalf("countless Total = %v, want ErrNoDirectAccess", err)
		}
		return
	}
}
