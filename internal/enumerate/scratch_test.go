package enumerate

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestDescenderMatchesAt drives one long-lived Descender across many
// circuits, modes and ranks — including interleaved revisits of earlier
// ranks — and checks every answer against the one-shot package At. This
// pins the scratch-reuse contract: recycled matrices, weights and ropes
// never leak state from one At call into the next.
func TestDescenderMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDescender()
	trials := 0
	for trials < 60 {
		root, unamb, bd, c := countedCircuit(rng, 1+rng.Intn(3), 1+rng.Intn(8))
		if root == nil {
			continue
		}
		trials++
		gamma, emptyOK := bd.RootAccepting(c)
		modes := []Mode{ModeSimple}
		if unamb {
			modes = append(modes, ModeIndexed)
		}
		for _, mode := range modes {
			total, err := Total(root, gamma, emptyOK)
			if err != nil {
				t.Fatal(err)
			}
			if !total.IsInt64() || total.Int64() > 2048 {
				continue
			}
			n := int(total.Int64())
			// Visit ranks in a scrambled order so consecutive descents take
			// different shapes through the same scratch.
			order := rng.Perm(n)
			for _, j := range order {
				want, err := At(root, gamma, emptyOK, mode, big.NewInt(int64(j)))
				if err != nil {
					t.Fatalf("At(%d): %v", j, err)
				}
				got, err := d.AtInt(root, gamma, emptyOK, mode, j)
				if err != nil {
					t.Fatalf("Descender.AtInt(%d): %v", j, err)
				}
				wk, gk := "<empty>", "<empty>"
				if want != nil {
					wk = want.Materialize().Key()
				}
				if got != nil {
					gk = got.Materialize().Key()
				}
				if wk != gk {
					t.Fatalf("mode %v rank %d: Descender = %s, want %s", mode, j, gk, wk)
				}
			}
			if _, err := d.AtInt(root, gamma, emptyOK, mode, n); err != ErrRankRange {
				t.Fatalf("mode %v: past-the-end AtInt = %v, want ErrRankRange", mode, err)
			}
			if _, err := d.AtInt(root, gamma, emptyOK, mode, -1); err != ErrRankRange {
				t.Fatalf("mode %v: AtInt(-1) = %v, want ErrRankRange", mode, err)
			}
		}
	}
}

// TestDescenderSteadyStateAllocs pins the point of the scratch: once the
// slabs reach the descent's high-water mark, ranking an answer performs
// (near) zero allocations beyond materialization. The bound is loose —
// big.Int growth may still allocate on some shapes — but a regression to
// per-call matrices/ropes would blow far past it.
func TestDescenderSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for {
		root, unamb, bd, c := countedCircuit(rng, 2, 16)
		if root == nil || !unamb {
			continue
		}
		gamma, emptyOK := bd.RootAccepting(c)
		total, err := Total(root, gamma, emptyOK)
		if err != nil {
			t.Fatal(err)
		}
		if !total.IsInt64() {
			continue
		}
		n := int(total.Int64())
		if n < 8 || n > 4096 {
			continue
		}
		d := NewDescender()
		j := 0
		work := func() {
			if _, err := d.AtInt(root, gamma, emptyOK, ModeIndexed, j%n); err != nil {
				t.Fatal(err)
			}
			j++
		}
		for i := 0; i < n; i++ {
			work() // touch every descent shape: reach the high-water mark
		}
		oneShot := testing.AllocsPerRun(20, func() {
			if _, err := At(root, gamma, emptyOK, ModeIndexed, big.NewInt(int64(j%n))); err != nil {
				t.Fatal(err)
			}
			j++
		})
		reused := testing.AllocsPerRun(20, work)
		if reused > 4 {
			t.Fatalf("steady-state Descender.At allocates %.1f/call, want ≈0 (one-shot At: %.1f)", reused, oneShot)
		}
		if reused > oneShot {
			t.Fatalf("Descender.At (%.1f allocs) costs more than one-shot At (%.1f)", reused, oneShot)
		}
		return
	}
}
