package enumerate

import (
	"slices"

	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/tree"
)

// This file implements the answer-delta co-descent (DESIGN.md §11): given
// two published versions of one query's frozen (box, index, counts) tree,
// it computes the exact added/removed answer sets by descending BOTH
// trees simultaneously and pruning every region whose contribution is
// provably unchanged. The pruning leans on the engine's reuse machinery:
// signature-pruned repair and moved-subtree reuse keep untouched regions
// POINTER-SHARED between versions, and a shared wrapper reached with the
// same routed ∪-gate set contributes the identical answer set to both
// sides — so the descent only pays along the changed spine, and the cost
// is O((|added|+|removed|)·log n·poly|Q|), not O(Count()).
//
// SOUNDNESS. For an UNAMBIGUOUS automaton every answer has exactly one
// circuit derivation, so the decomposition of S(Γ) at a box — routed var
// gates ⊎ routed ×-gates ⊎ ∪-wires into each child — partitions the
// answers by their derivation route. The differ matches routes across
// the two versions (var gates by (set, node) key; ×-gates grouped by the
// gate index on a pointer-shared child; ∪-wires by child position),
// prunes matched routes with provably equal contributions, and emits
// everything else into two candidate streams. Where route matching is
// imperfect — an answer whose derivation moved between routes, a
// rebalance that realigned the v-tree — the answer is emitted on BOTH
// sides and the key-cancellation in the collector erases it: candidates
// satisfy removed ⊇ S_old∖S_new, added ⊇ S_new∖S_old, and the excess is
// identical on both sides, so the cancelled maps are the exact diff.
// Ambiguous automata may derive one answer along several routes (double
// emission on one side would break cancellation), so the engine routes
// them through a full-drain fallback instead of this descent.
//
// Count-guided pruning — skipping any region whose routed derivation
// counts sum to zero — is sound for ambiguous automata too (zero
// derivations ⇔ zero answers) and is what keeps one-sided descents from
// walking empty structure.

// Differ computes added/removed answer sets between two versions of a
// query's frozen enumeration structure. The zero value is NOT ready:
// use NewDiffer. A Differ is reusable across calls but not safe for
// concurrent use (it owns the candidate maps); the frozen inputs are
// only read, so any number of goroutines may run their own Differ over
// the same snapshots.
type Differ struct {
	be      BoxEnum
	added   map[string]tree.Assignment
	removed map[string]tree.Assignment
}

// NewDiffer returns a Differ enumerating candidate regions with the
// given mode's box-enumeration strategy (ModeSimple is rejected by the
// engine before it gets here; the differ itself only needs a
// duplicate-free strategy).
func NewDiffer(mode Mode) *Differ {
	return &Differ{
		be:      boxEnumFor(mode),
		added:   map[string]tree.Assignment{},
		removed: map[string]tree.Assignment{},
	}
}

// Diff returns the answers added and removed between the old version
// (oldRoot, oldGamma, oldEmptyOK) and the new version (newRoot,
// newGamma, newEmptyOK) of one query, each sorted by assignment key for
// deterministic output. Either root may be nil (an empty side). The
// exactness contract requires an unambiguous automaton (see the file
// comment); the engine enforces that gate.
func (d *Differ) Diff(oldRoot *IndexedBox, oldGamma bitset.Set, oldEmptyOK bool,
	newRoot *IndexedBox, newGamma bitset.Set, newEmptyOK bool) (added, removed []tree.Assignment) {
	clear(d.added)
	clear(d.removed)
	if oldEmptyOK != newEmptyOK {
		if oldEmptyOK {
			d.emit(nil, true)
		} else {
			d.emit(nil, false)
		}
	}
	d.region(oldRoot, oldGamma, newRoot, newGamma, d.emit)
	added = make([]tree.Assignment, 0, len(d.added))
	for _, a := range d.added {
		added = append(added, a)
	}
	removed = make([]tree.Assignment, 0, len(d.removed))
	for _, a := range d.removed {
		removed = append(removed, a)
	}
	sortByKey(added)
	sortByKey(removed)
	return added, removed
}

func sortByKey(as []tree.Assignment) {
	slices.SortFunc(as, func(a, b tree.Assignment) int {
		ka, kb := a.Key(), b.Key()
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		}
		return 0
	})
}

// emit inserts one candidate into the collector with key cancellation: a
// rope emitted as old (removed candidate) cancels a pending added
// candidate with the same key, and vice versa. A nil rope is the empty
// assignment.
func (d *Differ) emit(r *Rope, old bool) {
	var a tree.Assignment
	if r == nil {
		a = tree.Assignment{}
	} else {
		a = r.Materialize()
	}
	k := a.Key()
	if old {
		if _, ok := d.added[k]; ok {
			delete(d.added, k)
			return
		}
		d.removed[k] = a
		return
	}
	if _, ok := d.removed[k]; ok {
		delete(d.removed, k)
		return
	}
	d.added[k] = a
}

// sideEmpty reports whether one side of the descent provably contributes
// nothing: no box, no routed gates, or — count-guided pruning — routed
// derivation counts that sum to zero.
func sideEmpty(b *IndexedBox, g bitset.Set) bool {
	if b == nil || g.Empty() {
		return true
	}
	if b.Counts == nil {
		return false // counting disabled: unknown, keep descending
	}
	zero := true
	g.ForEach(func(i int) bool {
		if c := b.Counts[i]; c == nil || c.Sign() != 0 {
			zero = false
			return false
		}
		return true
	})
	return zero
}

// drainInto enumerates one side's region in full into the collector.
// Used when the other side is provably empty, or when no structural
// matching is possible (a fully rebuilt region) — the cost is the
// region's answer count, which in those cases is part of the diff.
func (d *Differ) drainInto(b *IndexedBox, g bitset.Set, old bool, emit func(*Rope, bool)) {
	if sideEmpty(b, g) {
		return
	}
	for r := range Boxwise(b, g, d.be) {
		emit(r, old)
	}
}

// region diffs S(o, Go) against S(n, Gn), emitting candidates through
// emit (the collector, or a product context's concat wrapper).
func (d *Differ) region(o *IndexedBox, Go bitset.Set, n *IndexedBox, Gn bitset.Set, emit func(*Rope, bool)) {
	oe, ne := sideEmpty(o, Go), sideEmpty(n, Gn)
	if oe && ne {
		return
	}
	if oe {
		d.drainInto(n, Gn, false, emit)
		return
	}
	if ne {
		d.drainInto(o, Go, true, emit)
		return
	}
	// The reuse-implies-identical prune: the SAME frozen wrapper reached
	// with the SAME routed gate set contributes the same answers to both
	// versions. This is what the engine's pointer reuse buys the differ.
	if o == n && Go.Equal(Gn) {
		return
	}
	d.diffVars(o, Go, n, Gn, emit)
	d.diffPass(o, Go, n, Gn, emit)
	d.diffProducts(o, Go, n, Gn, emit)
}

// routedVars collects the var gates of a leaf box routed toward the
// gate set, keyed by their (set, node) payload.
type varKey struct {
	set  tree.VarSet
	node tree.NodeID
}

func routedVars(b *IndexedBox, g bitset.Set) map[varKey]bool {
	bp := b.Box
	if len(bp.Vars) == 0 {
		return nil
	}
	out := make(map[varKey]bool, len(bp.Vars))
	for vi := range bp.Vars {
		if anyRouted(bp.VarOut[vi], g) {
			out[varKey{bp.Vars[vi].Set, bp.Vars[vi].Node}] = true
		}
	}
	return out
}

// anyRouted reports whether any ∪-gate in outs is in g.
func anyRouted(outs []int32, g bitset.Set) bool {
	for _, u := range outs {
		if g.Has(int(u)) {
			return true
		}
	}
	return false
}

// diffVars matches the routed var-gate singletons of both sides by
// (set, node) key: a key on both sides is an unchanged answer route and
// emits nothing — the relabel fast path, where the whole leaf diff is
// O(vars) key work.
func (d *Differ) diffVars(o *IndexedBox, Go bitset.Set, n *IndexedBox, Gn bitset.Set, emit func(*Rope, bool)) {
	ov, nv := routedVars(o, Go), routedVars(n, Gn)
	for k := range ov {
		if !nv[k] {
			emit(LeafRope(k.set, k.node), true)
		}
	}
	for k := range nv {
		if !ov[k] {
			emit(LeafRope(k.set, k.node), false)
		}
	}
}

// neRow computes the ∪-wire pass-through set: the child ∪-gates wired
// into any routed gate of this box ({l : W.Row(l) ∩ G ≠ ∅}).
func neRow(w bitset.Matrix, rows int, g bitset.Set) bitset.Set {
	out := bitset.NewSet(rows)
	if rows == w.Rows {
		return w.RowsIntersectingInto(g, out)
	}
	for l := 0; l < rows; l++ {
		if w.Row(l).Intersects(g) {
			out.Add(l)
		}
	}
	return out
}

// diffPass recurses the ∪-wire pass-through routes into both children:
// partial assignments passed through unchanged, so the parent's emit is
// used directly. A side without children contributes empty sets and the
// recursion degrades to one-sided drains.
func (d *Differ) diffPass(o *IndexedBox, Go bitset.Set, n *IndexedBox, Gn bitset.Set, emit func(*Rope, bool)) {
	var oL, oR, nL, nR bitset.Set
	var ol, or_, nl, nr *IndexedBox
	if !o.IsLeaf() {
		ol, or_ = o.Left, o.Right
		oL = neRow(o.Box.WLeft, len(o.Box.Left.Unions), Go)
		oR = neRow(o.Box.WRight, len(o.Box.Right.Unions), Go)
	}
	if !n.IsLeaf() {
		nl, nr = n.Left, n.Right
		nL = neRow(n.Box.WLeft, len(n.Box.Left.Unions), Gn)
		nR = neRow(n.Box.WRight, len(n.Box.Right.Unions), Gn)
	}
	if ol != nil || nl != nil {
		d.region(ol, oL, nl, nL, emit)
	}
	if or_ != nil || nr != nil {
		d.region(or_, oR, nr, nR, emit)
	}
}

// routedTimes returns the ×-gates of the box routed toward g.
func routedTimes(b *IndexedBox, g bitset.Set) []int32 {
	bp := b.Box
	var out []int32
	for ti := range bp.Times {
		if anyRouted(bp.TimesOut[ti], g) {
			out = append(out, int32(ti))
		}
	}
	return out
}

// diffProducts diffs the ×-gate routes. When one child is
// POINTER-SHARED between versions, the ×-gates are grouped by their
// gate index on the shared side: each group's contribution is
// S(changedChild, gates) × S(sharedChild, {g}), so the group diffs by
// recursing on the changed factor and concatenating the sub-diff with
// ONE enumeration of the shared co-factor — output-proportional cost.
// (Both children shared is the same case: the changed-factor recursion
// prunes or diffs gate sets on the shared wrapper.) With neither child
// shared the region was rebuilt outright and both sides' products are
// drained; cancellation keeps that exact.
func (d *Differ) diffProducts(o *IndexedBox, Go bitset.Set, n *IndexedBox, Gn bitset.Set, emit func(*Rope, bool)) {
	oLeaf, nLeaf := o.IsLeaf(), n.IsLeaf()
	if oLeaf && nLeaf {
		return
	}
	var ot, nt []int32
	if !oLeaf {
		ot = routedTimes(o, Go)
	}
	if !nLeaf {
		nt = routedTimes(n, Gn)
	}
	if len(ot) == 0 && len(nt) == 0 {
		return
	}
	switch {
	case !oLeaf && !nLeaf && o.Right == n.Right:
		d.diffGrouped(o, ot, n, nt, o.Right, true, emit)
	case !oLeaf && !nLeaf && o.Left == n.Left:
		d.diffGrouped(o, ot, n, nt, o.Left, false, emit)
	default:
		// No shared factor: drain every routed product on both sides.
		for _, ti := range ot {
			d.drainProduct(o, o.Box.Times[ti], true, emit)
		}
		for _, ti := range nt {
			d.drainProduct(n, n.Box.Times[ti], false, emit)
		}
	}
}

// drainProduct enumerates one ×-gate's full product into the collector.
func (d *Differ) drainProduct(b *IndexedBox, t circuit.TimesGate, old bool, emit func(*Rope, bool)) {
	gl := bitset.NewSet(len(b.Box.Left.Unions))
	gl.Add(int(t.Left))
	if sideEmpty(b.Left, gl) {
		return
	}
	gr := bitset.NewSet(len(b.Box.Right.Unions))
	gr.Add(int(t.Right))
	if sideEmpty(b.Right, gr) {
		return
	}
	for sl := range Boxwise(b.Left, gl, d.be) {
		for sr := range Boxwise(b.Right, gr, d.be) {
			emit(Concat(sl, sr), old)
		}
	}
}

// diffPart is one emission captured from a changed-factor recursion,
// awaiting concatenation with the shared co-factor.
type diffPart struct {
	rope *Rope
	old  bool
}

// diffGrouped implements the shared-factor product diff: routed ×-gates
// grouped by their gate on the shared child (byRight selects which side
// is shared), the changed factors diffed recursively per group, and each
// group's sub-diff concatenated with one enumeration of the co-factor.
func (d *Differ) diffGrouped(o *IndexedBox, ot []int32, n *IndexedBox, nt []int32,
	shared *IndexedBox, byRight bool, emit func(*Rope, bool)) {
	type group struct {
		oldG, newG bitset.Set
	}
	key := func(t circuit.TimesGate) (sharedGate, changedGate int32) {
		if byRight {
			return t.Right, t.Left
		}
		return t.Left, t.Right
	}
	changedSize := func(b *IndexedBox) int {
		if byRight {
			return len(b.Box.Left.Unions)
		}
		return len(b.Box.Right.Unions)
	}
	groups := map[int32]*group{}
	lookup := func(sg int32) *group {
		g := groups[sg]
		if g == nil {
			g = &group{oldG: bitset.NewSet(changedSize(o)), newG: bitset.NewSet(changedSize(n))}
			groups[sg] = g
		}
		return g
	}
	for _, ti := range ot {
		sg, cg := key(o.Box.Times[ti])
		lookup(sg).oldG.Add(int(cg))
	}
	for _, ti := range nt {
		sg, cg := key(n.Box.Times[ti])
		lookup(sg).newG.Add(int(cg))
	}
	ochanged, nchanged := o.Left, n.Left
	if !byRight {
		ochanged, nchanged = o.Right, n.Right
	}
	var parts []diffPart
	for sg, g := range groups {
		parts = parts[:0]
		d.region(ochanged, g.oldG, nchanged, g.newG, func(r *Rope, old bool) {
			parts = append(parts, diffPart{r, old})
		})
		if len(parts) == 0 {
			continue
		}
		cg := bitset.NewSet(len(shared.Box.Unions))
		cg.Add(int(sg))
		if sideEmpty(shared, cg) {
			continue
		}
		for co := range Boxwise(shared, cg, d.be) {
			for _, p := range parts {
				if byRight {
					emit(Concat(p.rope, co), p.old)
				} else {
					emit(Concat(co, p.rope), p.old)
				}
			}
		}
	}
}
