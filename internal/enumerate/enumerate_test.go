package enumerate

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/tree"
	"repro/internal/tva"
)

var alphaAB = []tree.Label{"a", "b"}

// buildRandom returns a random circuit with its builder, or nil if the
// automaton degenerated to nothing.
func buildRandom(rng *rand.Rand, states, leaves int, vars tree.VarSet) (*circuit.Builder, *circuit.Circuit) {
	raw := tva.RandomBinary(rng, states, alphaAB, vars, 0.4)
	a := raw.Homogenize()
	if a.NumStates == 0 {
		return nil, nil
	}
	bd, err := circuit.NewBuilder(a)
	if err != nil {
		panic(err)
	}
	bt := tva.RandomBinaryTree(rng, leaves, alphaAB)
	c := bd.Build(bt)
	return bd, c
}

// allNodes lists the wrappers of an indexed circuit bottom-up.
func allNodes(root *IndexedBox) []*IndexedBox {
	var out []*IndexedBox
	root.Walk(func(n *IndexedBox) { out = append(out, n) })
	return out
}

// wantSet evaluates S(Γ) by brute force.
func wantSet(b *circuit.Box, gamma bitset.Set) map[string]tree.Assignment {
	ev := circuit.NewEvaluator()
	out := map[string]tree.Assignment{}
	gamma.ForEach(func(u int) bool {
		for k, v := range ev.Union(b, u) {
			out[k] = v
		}
		return true
	})
	return out
}

// TestModesMatchBruteForce cross-checks all three enumeration modes
// against the captured-set semantics on random boxed sets of random
// circuits, including duplicate-freeness and provenance.
func TestModesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trials := 0
	for trials < 120 {
		_, c := buildRandom(rng, 1+rng.Intn(3), 1+rng.Intn(8), tree.NewVarSet(0, 1))
		if c == nil || c.Root == nil {
			continue
		}
		trials++
		root := BuildIndex(c)
		boxes := allNodes(root)
		// Pick a random box with ∪-gates and a random boxed set.
		b := boxes[rng.Intn(len(boxes))]
		if len(b.Box.Unions) == 0 {
			continue
		}
		gamma := bitset.NewSet(len(b.Box.Unions))
		for u := range b.Box.Unions {
			if rng.Intn(2) == 0 {
				gamma.Add(u)
			}
		}
		if gamma.Empty() {
			gamma.Add(rng.Intn(len(b.Box.Unions)))
		}
		want := wantSet(b.Box, gamma)
		ev := circuit.NewEvaluator()

		for _, mode := range []Mode{ModeIndexed, ModeNaive} {
			got := map[string]bool{}
			for rope, prov := range Boxwise(b, gamma, boxEnumFor(mode)) {
				asg := rope.Materialize()
				k := asg.Key()
				if got[k] {
					t.Fatalf("mode %d: duplicate assignment %v", mode, asg)
				}
				got[k] = true
				if _, ok := want[k]; !ok {
					t.Fatalf("mode %d: spurious assignment %v", mode, asg)
				}
				// Provenance must be exactly {g ∈ Γ : S ∈ S(g)}.
				wantProv := bitset.NewSet(len(b.Box.Unions))
				gamma.ForEach(func(u int) bool {
					if _, ok := ev.Union(b.Box, u)[k]; ok {
						wantProv.Add(u)
					}
					return true
				})
				if !prov.Equal(wantProv) {
					t.Fatalf("mode %d: prov of %v = %v, want %v", mode, asg, prov, wantProv)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("mode %d: got %d assignments, want %d", mode, len(got), len(want))
			}
		}

		// Algorithm 1: same distinct set, duplicates allowed.
		distinct := map[string]bool{}
		for rope := range Simple(b.Box, gamma) {
			k := rope.Materialize().Key()
			if _, ok := want[k]; !ok {
				t.Fatalf("simple: spurious assignment %q", k)
			}
			distinct[k] = true
		}
		if len(distinct) != len(want) {
			t.Fatalf("simple: got %d distinct, want %d", len(distinct), len(want))
		}
	}
}

// TestBoxEnumStrategiesAgree checks that Algorithm 3 yields exactly the
// same set of (box, relation) pairs as the naive DFS, with the first
// interesting box (in preorder) first, as Figure 1 sketches.
func TestBoxEnumStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trials := 0
	for trials < 120 {
		_, c := buildRandom(rng, 1+rng.Intn(3), 2+rng.Intn(10), tree.NewVarSet(0))
		if c == nil || c.Root == nil || len(c.Root.Unions) == 0 {
			continue
		}
		trials++
		root := BuildIndex(c)
		boxes := allNodes(root)
		b := boxes[rng.Intn(len(boxes))]
		if len(b.Box.Unions) == 0 {
			continue
		}
		gamma := bitset.NewSet(len(b.Box.Unions))
		for u := range b.Box.Unions {
			if rng.Intn(2) == 0 {
				gamma.Add(u)
			}
		}
		if gamma.Empty() {
			gamma.Add(rng.Intn(len(b.Box.Unions)))
		}

		naive := map[*IndexedBox]bitset.Matrix{}
		var naiveOrder []*IndexedBox
		for br := range NaiveBoxEnum(b, gamma) {
			if _, dup := naive[br.Box]; dup {
				t.Fatal("naive box-enum yielded a box twice")
			}
			naive[br.Box] = br.R
			naiveOrder = append(naiveOrder, br.Box)
		}
		indexed := map[*IndexedBox]bitset.Matrix{}
		first := true
		for br := range IndexedBoxEnum(b, gamma) {
			if _, dup := indexed[br.Box]; dup {
				t.Fatal("indexed box-enum yielded a box twice")
			}
			indexed[br.Box] = br.R
			if first {
				first = false
				// The DFS preorder-first interesting box must be the
				// indexed enumeration's first output (fib property).
				if len(naiveOrder) > 0 && naiveOrder[0] != br.Box {
					t.Fatalf("indexed first box is not fib: got n%d, want n%d",
						br.Box.Box.Node, naiveOrder[0].Box.Node)
				}
			}
		}
		if len(naive) != len(indexed) {
			t.Fatalf("box sets differ: naive %d, indexed %d", len(naive), len(indexed))
		}
		for bx, r := range naive {
			r2, ok := indexed[bx]
			if !ok {
				t.Fatalf("indexed missing box n%d", bx.Box.Node)
			}
			if !r.Equal(r2) {
				t.Fatalf("relation differs for box n%d:\nnaive:\n%sindexed:\n%s", bx.Box.Node, r, r2)
			}
		}
	}
}

// TestRootEnumerationMatchesAutomaton runs the full pipeline on random
// automata and trees: root boxed set Γ + empty flag must enumerate the
// satisfying assignments exactly.
func TestRootEnumerationMatchesAutomaton(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trials := 0
	for trials < 80 {
		raw := tva.RandomBinary(rng, 1+rng.Intn(3), alphaAB, tree.NewVarSet(0), 0.4)
		a := raw.Homogenize()
		if a.NumStates == 0 {
			continue
		}
		trials++
		bd, err := circuit.NewBuilder(a)
		if err != nil {
			t.Fatal(err)
		}
		bt := tva.RandomBinaryTree(rng, 1+rng.Intn(6), alphaAB)
		c := bd.Build(bt)
		root := BuildIndex(c)
		gamma, emptyOK := bd.RootAccepting(c)
		want, err := a.SatisfyingAssignments(bt, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeIndexed, ModeNaive} {
			got := map[string]bool{}
			for asg := range Assignments(root, gamma, emptyOK, mode) {
				k := asg.Key()
				if got[k] {
					t.Fatalf("mode %d: duplicate %v", mode, asg)
				}
				got[k] = true
			}
			if len(got) != len(want) {
				t.Fatalf("mode %d: got %d, want %d", mode, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("mode %d: missing %q", mode, k)
				}
			}
		}
	}
}

// TestDeepChainJump builds a deep left-comb tree with activity only at
// the bottom and checks that the index's fib pointer jumps straight to
// it: the number of boxes the indexed enumeration visits must not depend
// on the depth.
func TestDeepChainJump(t *testing.T) {
	// Query: select one a-labeled leaf (variable X0); tree: left comb
	// with all leaves labeled b except the deepest, labeled a.
	x := tree.NewVarSet(0)
	raw := &tva.Binary{
		NumStates: 2,
		Alphabet:  alphaAB,
		Vars:      x,
		Init: []tva.InitRule{
			{Label: "a", Set: 0, State: 0}, {Label: "b", Set: 0, State: 0},
			{Label: "a", Set: x, State: 1},
		},
		Final: []tva.State{1},
	}
	for _, l := range alphaAB {
		raw.Delta = append(raw.Delta,
			tva.Triple{Label: l, Left: 0, Right: 0, Out: 0},
			tva.Triple{Label: l, Left: 1, Right: 0, Out: 1},
			tva.Triple{Label: l, Left: 0, Right: 1, Out: 1},
		)
	}
	a := raw.Homogenize()
	bd, err := circuit.NewBuilder(a)
	if err != nil {
		t.Fatal(err)
	}
	bt := tree.NewBinary()
	cur := bt.Leaf("a") // the only a-leaf, deepest
	for i := 0; i < 200; i++ {
		cur = bt.Inner("b", cur, bt.Leaf("b"))
	}
	bt.SetRoot(cur)
	c := bd.Build(bt)
	root := BuildIndex(c)
	gamma, emptyOK := bd.RootAccepting(c)
	if emptyOK {
		t.Fatal("empty valuation should not be accepted")
	}
	n := 0
	var boxesVisited int
	for br := range IndexedBoxEnum(root, gamma) {
		boxesVisited++
		_ = br
	}
	for asg := range Assignments(root, gamma, false, ModeIndexed) {
		n++
		if len(asg) != 1 {
			t.Fatalf("assignment size %d", len(asg))
		}
	}
	if n != 1 {
		t.Fatalf("got %d assignments, want 1", n)
	}
	// Only the single interesting leaf box should be yielded by
	// box-enum, despite depth 200.
	if boxesVisited != 1 {
		t.Fatalf("indexed box-enum yielded %d boxes, want 1", boxesVisited)
	}
}

// TestIndexTargetsSmall sanity-checks that per-box target lists stay
// small (O(width)) rather than growing with the tree.
func TestIndexTargetsSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		_, c := buildRandom(rng, 3, 64, tree.NewVarSet(0))
		if c == nil || c.Root == nil {
			continue
		}
		root := BuildIndex(c)
		w := c.Width()
		bound := 6*w + 2
		root.Walk(func(n *IndexedBox) {
			idx := n.Index
			if len(idx.Targets) > bound {
				t.Fatalf("box n%d has %d targets > bound %d (w=%d)", n.Box.Node, len(idx.Targets), bound, w)
			}
		})
	}
}

func TestRopeMaterialize(t *testing.T) {
	r := Concat(LeafRope(tree.NewVarSet(0, 2), 5), LeafRope(tree.NewVarSet(1), 7))
	if r.Size() != 3 {
		t.Fatalf("Size = %d", r.Size())
	}
	asg := r.Materialize()
	want := tree.Assignment{{Var: 0, Node: 5}, {Var: 2, Node: 5}, {Var: 1, Node: 7}}.Normalize()
	if asg.Key() != want.Key() {
		t.Fatalf("Materialize = %v, want %v", asg, want)
	}
}

func TestEmptyGammaAndEmptyFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, c := buildRandom(rng, 2, 3, tree.NewVarSet(0))
	if c == nil || c.Root == nil {
		t.Skip("degenerate")
	}
	root := BuildIndex(c)
	empty := bitset.NewSet(len(c.Root.Unions))
	got := collectSeq(Assignments(root, empty, true, ModeIndexed))
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("want exactly the empty assignment, got %v", got)
	}
	got = collectSeq(Assignments(root, empty, false, ModeIndexed))
	if len(got) != 0 {
		t.Fatalf("want nothing, got %v", got)
	}
}
