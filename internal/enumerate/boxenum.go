package enumerate

import (
	"iter"

	"repro/internal/bitset"
	"repro/internal/circuit"
)

// BoxRelation is one output of box-enum (Section 5): an interesting box B′
// together with the full ∪-reachability relation R(B′, Γ) (rows: ∪-gates
// of B′, columns: ∪-gates of Γ's box, populated only on Γ's columns).
type BoxRelation struct {
	Box *IndexedBox
	R   bitset.Matrix
}

// BoxEnum enumerates, exactly once each, the interesting boxes for the
// boxed set gamma of box b, i.e. the boxes B′ with ↓(Γ) ∩ B′ ≠ ∅.
type BoxEnum func(b *IndexedBox, gamma bitset.Set) iter.Seq[BoxRelation]

// interesting reports whether the box holds ↓-gates for the relation R:
// some ∪-gate with a nonempty R-row has a local var- or ×-input.
func interesting(b *circuit.Box, r bitset.Matrix) bool {
	for u := range b.Unions {
		if r.Row(u).Empty() {
			continue
		}
		if len(b.Unions[u].Vars) > 0 || len(b.Unions[u].Times) > 0 {
			return true
		}
	}
	return false
}

// seedRelation builds the identity relation restricted to gamma.
func seedRelation(b *circuit.Box, gamma bitset.Set) bitset.Matrix {
	r := bitset.NewMatrix(len(b.Unions), len(b.Unions))
	gamma.ForEach(func(g int) bool {
		r.Set(g, g)
		return true
	})
	return r
}

// NaiveBoxEnum is the straightforward implementation discussed in Section
// 5: depth-first traversal of the tree of boxes carrying the relation
// along, with delay proportional to the depth of the circuit. It is the
// baseline of experiment E8. It never touches the index, so it works on
// wrappers built without one.
func NaiveBoxEnum(b *IndexedBox, gamma bitset.Set) iter.Seq[BoxRelation] {
	return func(yield func(BoxRelation) bool) {
		naiveRec(b, seedRelation(b.Box, gamma), yield)
	}
}

func naiveRec(n *IndexedBox, r bitset.Matrix, yield func(BoxRelation) bool) bool {
	b := n.Box
	if interesting(b, r) {
		if !yield(BoxRelation{n, r}) {
			return false
		}
	}
	if n.IsLeaf() {
		return true
	}
	rl := bitset.Compose(b.WLeft, r)
	if !rl.Empty() {
		if !naiveRec(n.Left, rl, yield) {
			return false
		}
	}
	rr := bitset.Compose(b.WRight, r)
	if !rr.Empty() {
		if !naiveRec(n.Right, rr, yield) {
			return false
		}
	}
	return true
}

// IndexedBoxEnum is Algorithm 3 (Lemma 6.4): box enumeration with delay
// O(w³) independent of the circuit depth, jumping with the fib/fbb
// pointers of the index structure. The wrapper tree must have been built
// with the index (Wrap withIndex / BuildIndex).
func IndexedBoxEnum(b *IndexedBox, gamma bitset.Set) iter.Seq[BoxRelation] {
	return func(yield func(BoxRelation) bool) {
		indexedRec(b, seedRelation(b.Box, gamma), yield)
	}
}

// indexedRec is b-enum(B, R) of Algorithm 3. It receives R = R(B, Γ) and
// outputs the relations R(B′, Γ) for all interesting boxes B′ in the
// subtree of B. The explicit iteration over the bidirectional boxes on
// the path from B to the first interesting box B1 plays the role of the
// paper's tail-recursion elimination.
func indexedRec(n *IndexedBox, r bitset.Matrix, yield func(BoxRelation) bool) bool {
	idx := n.Index
	gates := r.NonEmptyRows()

	// Line 4: jump to the first interesting box B1 and output it.
	fib := idx.FoldFib(gates)
	if fib < 0 {
		return true // empty relation: nothing below
	}
	b1 := idx.Targets[fib]
	r1 := bitset.Compose(idx.Rel[fib], r)
	if !yield(BoxRelation{b1, r1}) {
		return false
	}
	// Lines 7-10: all interesting boxes strictly below B1.
	if !b1.IsLeaf() {
		rl := bitset.Compose(b1.Box.WLeft, r1)
		if !rl.Empty() {
			if !indexedRec(b1.Left, rl, yield) {
				return false
			}
		}
		rr := bitset.Compose(b1.Box.WRight, r1)
		if !rr.Empty() {
			if !indexedRec(b1.Right, rr, yield) {
				return false
			}
		}
	}
	// Lines 11-17: walk the bidirectional boxes on the path from B down
	// to B1; each right subtree hanging off that path holds further
	// interesting boxes, enumerated recursively. The left descent
	// continues toward B1 (which stays the first interesting box of
	// every shrinking region, so the fib fold re-identifies it).
	for {
		fbb := idx.FoldFbb(gates)
		fib = idx.FoldFib(gates)
		if fbb < 0 || !idx.StrictAncestor(fbb, fib) {
			return true
		}
		bb := idx.Targets[fbb]
		rb := bitset.Compose(idx.Rel[fbb], r)
		rr := bitset.Compose(bb.Box.WRight, rb)
		if !rr.Empty() {
			if !indexedRec(bb.Right, rr, yield) {
				return false
			}
		}
		r = bitset.Compose(bb.Box.WLeft, rb)
		n = bb.Left
		idx = n.Index
		gates = r.NonEmptyRows()
	}
}
