package enumerate

import (
	"math/big"

	"repro/internal/bitset"
	"repro/internal/tree"
)

// This file owns the reusable scratch of the count-guided descent
// (direct.go): a Descender bundles per-call arenas for the transient
// relation matrices, big.Int weights, factor-weight slices and ropes the
// descent builds, so a worker draining a rank range (Snapshot.ParallelAll
// / Chunks) pays the descent's allocations once at the high-water mark
// instead of once per answer. One Descender per goroutine — nothing here
// is safe for concurrent use.

// slicePool is a bump allocator over slabs of []T: get returns a cleared
// length-n slice valid until the next Reset; slabs are retained across
// Resets, so steady-state loops stop allocating.
type slicePool[T any] struct {
	free [][]T
	used [][]T
	cur  []T
}

const sliceSlabLen = 512

func (p *slicePool[T]) get(n int) []T {
	if len(p.cur)+n > cap(p.cur) {
		p.grow(n)
	}
	off := len(p.cur)
	p.cur = p.cur[: off+n : cap(p.cur)]
	s := p.cur[off : off+n : off+n]
	clear(s)
	return s
}

func (p *slicePool[T]) grow(n int) {
	if cap(p.cur) > 0 {
		p.used = append(p.used, p.cur)
	}
	p.cur = nil
	for len(p.free) > 0 {
		s := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		if cap(s) >= n {
			p.cur = s[:0]
			return
		}
		p.used = append(p.used, s)
	}
	p.cur = make([]T, 0, max(n, sliceSlabLen))
}

func (p *slicePool[T]) reset() {
	if cap(p.cur) > 0 {
		p.used = append(p.used, p.cur)
	}
	p.cur = nil
	p.free = append(p.free, p.used...)
	clear(p.used)
	p.used = p.used[:0]
}

// bigArena hands out reusable big.Int values. A recycled big.Int keeps
// its limb storage, so steady-state descents perform no big.Int
// allocations for the weight arithmetic. Returned values are NOT zeroed
// — callers must Set before reading.
type bigArena struct {
	slabs [][]big.Int
	si    int // slab index
	off   int // next free element of slabs[si]
}

const bigSlabLen = 64

func (a *bigArena) get() *big.Int {
	if a.si == len(a.slabs) {
		a.slabs = append(a.slabs, make([]big.Int, bigSlabLen))
	}
	s := a.slabs[a.si]
	v := &s[a.off]
	a.off++
	if a.off == len(s) {
		a.si++
		a.off = 0
	}
	return v
}

func (a *bigArena) reset() { a.si, a.off = 0, 0 }

// RopeArena hands out Rope nodes from retained slabs: the rope graphs a
// descent builds (Leaf / Concat) live until the arena's next Reset, which
// recycles them all at once. Materialize copies everything out, so the
// usual discipline — materialize the answer, then reuse the arena for
// the next rank — needs no per-rope bookkeeping.
type RopeArena struct {
	slabs [][]Rope
	si    int
	off   int
}

const ropeSlabLen = 256

func (a *RopeArena) get() *Rope {
	if a.si == len(a.slabs) {
		a.slabs = append(a.slabs, make([]Rope, ropeSlabLen))
	}
	s := a.slabs[a.si]
	r := &s[a.off]
	a.off++
	if a.off == len(s) {
		a.si++
		a.off = 0
	}
	return r
}

// Leaf is LeafRope allocated from the arena.
func (a *RopeArena) Leaf(set tree.VarSet, node tree.NodeID) *Rope {
	r := a.get()
	*r = Rope{set: set, node: node, size: set.Count()}
	return r
}

// Concat is Concat allocated from the arena.
func (a *RopeArena) Concat(l, r *Rope) *Rope {
	c := a.get()
	*c = Rope{left: l, right: r, size: l.size + r.size}
	return c
}

// Reset recycles every rope handed out since the last Reset.
func (a *RopeArena) Reset() { a.si, a.off = 0, 0 }

// Descender runs count-guided descents (the direct.go At logic) with
// reusable scratch: relation matrices and gate sets come from a
// bitset.Arena, weights from a big.Int arena, per-factor weight vectors
// from slab pools, and the answer's rope from a RopeArena. All scratch
// is recycled at the start of every At call, so a loop over ranks — the
// unit of work of the parallel bulk-enumeration layer — allocates only
// until the slabs reach the descent's high-water mark.
//
// CONCURRENCY: a Descender is confined to one goroutine. The ropes it
// returns are arena-owned: valid until the descender's NEXT At call (or
// Reset), so materialize (or otherwise consume) each answer before
// asking for the next. Assignments materialized from them are ordinary
// heap values with no such restriction. The zero value is ready to use.
type Descender struct {
	mats  bitset.Arena
	ints  bigArena
	wgts  slicePool[*big.Int]
	cols  slicePool[int]
	ropes RopeArena
	rank  big.Int
}

// NewDescender returns an empty Descender. The zero value works too;
// the constructor exists for call-site clarity.
func NewDescender() *Descender { return new(Descender) }

// Reset recycles all scratch, invalidating ropes returned by earlier At
// calls. At calls Reset itself; callers only need it to drop references
// eagerly.
func (d *Descender) Reset() {
	d.mats.Reset()
	d.ints.reset()
	d.wgts.reset()
	d.cols.reset()
	d.ropes.Reset()
}
