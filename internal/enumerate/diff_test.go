package enumerate

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/tree"
)

// leafBoxFor hand-assembles a leaf box with one var gate per entry,
// each behind its own ∪-gate (gate i ← var i).
func leafBoxFor(vars ...circuit.VarGate) *circuit.Box {
	b := &circuit.Box{Vars: vars}
	b.Unions = make([]circuit.UnionGate, len(vars))
	b.VarOut = make([][]int32, len(vars))
	for i := range vars {
		b.Unions[i] = circuit.UnionGate{Vars: []int32{int32(i)}}
		b.VarOut[i] = []int32{int32(i)}
	}
	return b
}

// productBoxOver hand-assembles an inner box with a single ×-gate
// pairing ∪-gate 0 of each child, behind ∪-gate 0.
func productBoxOver(l, r *IndexedBox) *IndexedBox {
	b := &circuit.Box{
		Left:     l.Box,
		Right:    r.Box,
		Times:    []circuit.TimesGate{{Left: 0, Right: 0}},
		Unions:   []circuit.UnionGate{{Times: []int32{0}}},
		TimesOut: [][]int32{{0}},
		WLeft:    bitset.MatrixOn(make([]uint64, bitset.Words(len(l.Box.Unions), 1)), len(l.Box.Unions), 1),
		WRight:   bitset.MatrixOn(make([]uint64, bitset.Words(len(r.Box.Unions), 1)), len(r.Box.Unions), 1),
	}
	return Wrap(b, l, r, true)
}

func gset(n int, elems ...int) bitset.Set {
	s := bitset.NewSet(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

func keysOf(as []tree.Assignment) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Key()
	}
	return out
}

// TestDifferLeaf covers the leaf-level contract: pointer-shared regions
// with equal gate sets prune to an empty delta, gate-set narrowing emits
// exactly the dropped var route, a nil side drains the other in full,
// and the emptyOK flag diffs as the empty assignment.
func TestDifferLeaf(t *testing.T) {
	b := Wrap(leafBoxFor(
		circuit.VarGate{Set: 1, Node: 3},
		circuit.VarGate{Set: 1, Node: 7},
	), nil, nil, true)
	g01 := gset(2, 0, 1)
	g0 := gset(2, 0)

	d := NewDiffer(ModeIndexed)
	if a, r := d.Diff(b, g01, false, b, g01, false); len(a)+len(r) != 0 {
		t.Fatalf("shared region with equal gates must prune: added %v removed %v", a, r)
	}
	a, r := d.Diff(b, g01, false, b, g0, false)
	if len(a) != 0 || len(r) != 1 || r[0].Key() != "7:0;" {
		t.Fatalf("gate narrowing: added %v removed %v", keysOf(a), keysOf(r))
	}
	a, r = d.Diff(nil, bitset.NewSet(0), false, b, g0, false)
	if len(r) != 0 || len(a) != 1 || a[0].Key() != "3:0;" {
		t.Fatalf("nil old side: added %v removed %v", keysOf(a), keysOf(r))
	}
	a, r = d.Diff(b, g0, true, b, g0, false)
	if len(a) != 0 || len(r) != 1 || len(r[0]) != 0 {
		t.Fatalf("emptyOK drop: added %v removed %v", keysOf(a), keysOf(r))
	}
}

// TestDifferProductSharedFactor changes one factor of a product region:
// the diff must route through the shared-factor grouping (the other
// factor is pointer-shared) and emit exactly the old and new products.
func TestDifferProductSharedFactor(t *testing.T) {
	l := Wrap(leafBoxFor(circuit.VarGate{Set: 1, Node: 1}), nil, nil, true)
	r1 := Wrap(leafBoxFor(circuit.VarGate{Set: 2, Node: 2}), nil, nil, true)
	r2 := Wrap(leafBoxFor(circuit.VarGate{Set: 2, Node: 9}), nil, nil, true)
	o := productBoxOver(l, r1)
	n := productBoxOver(l, r2)
	g := gset(1, 0)

	d := NewDiffer(ModeIndexed)
	a, rm := d.Diff(o, g, false, n, g, false)
	if len(a) != 1 || a[0].Key() != "1:0;9:1;" {
		t.Fatalf("added = %v", keysOf(a))
	}
	if len(rm) != 1 || rm[0].Key() != "1:0;2:1;" {
		t.Fatalf("removed = %v", keysOf(rm))
	}

	// Same structure on both sides: even though the parent wrappers are
	// distinct pointers, the shared-factor recursion bottoms out on the
	// pointer-shared leaves and the delta is empty.
	n2 := productBoxOver(l, r1)
	if a, rm := d.Diff(o, g, false, n2, g, false); len(a)+len(rm) != 0 {
		t.Fatalf("identical versions: added %v removed %v", keysOf(a), keysOf(rm))
	}
}
