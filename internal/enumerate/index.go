package enumerate

import (
	"math/big"
	"sort"

	"repro/internal/bitset"
	"repro/internal/circuit"
)

// IndexedBox pairs an immutable circuit box with the enumerate-layer
// data attached to it: the tree structure mirroring the tree of boxes
// and, when built in indexed mode, the per-box part of the index
// structure I(C) of Definition 6.1. It is the typed replacement for the
// untyped side field the circuit layer used to carry.
//
// An IndexedBox — like the box it wraps — is frozen after construction:
// nothing reachable from it is ever modified. A box plus its index
// therefore form a shareable unit, and the update machinery repairs the
// index along a hollowing trunk by building fresh IndexedBox nodes over
// the fresh boxes while reusing the wrappers of all untouched subtrees
// (Lemma 7.3). Any number of goroutines may enumerate from the same
// IndexedBox concurrently.
type IndexedBox struct {
	Box   *circuit.Box
	Left  *IndexedBox
	Right *IndexedBox
	// Index is nil when the wrapper was built without the Definition 6.1
	// index (ModeNaive / ModeSimple pipelines).
	Index *BoxIndex
	// Counts, when counting is enabled, holds the number of circuit
	// derivations of each local ∪-gate — the Section 4 multiset count of
	// (run, valuation) pairs, computed by counting.Derivations — indexed
	// by local ∪-gate. It is the per-box state of the direct-access
	// descent (direct.go). Like everything else reachable from the
	// wrapper it is frozen: the engine fills it before the wrapper is
	// shared and nothing may mutate it (or the big.Ints inside) after.
	// Nil when counting is disabled or the box has no ∪-gates.
	Counts []*big.Int
}

// IsLeaf reports whether the wrapped box is a leaf of the tree of boxes.
func (n *IndexedBox) IsLeaf() bool { return n.Left == nil }

// Walk visits every wrapper bottom-up (children before parents).
func (n *IndexedBox) Walk(f func(*IndexedBox)) {
	if n == nil {
		return
	}
	n.Left.Walk(f)
	n.Right.Walk(f)
	f(n)
}

// Wrap builds the IndexedBox for a box whose children wrappers are given
// (nil for leaf boxes); left and right must wrap b.Left and b.Right.
// With withIndex set, the children must have been wrapped with an index
// too, and the box's part of I(C) is computed from theirs (Lemma 6.3).
func Wrap(b *circuit.Box, left, right *IndexedBox, withIndex bool) *IndexedBox {
	n := &IndexedBox{Box: b, Left: left, Right: right}
	if withIndex {
		n.Index = buildBoxIndex(n)
	}
	return n
}

// WrapCircuit wraps a whole circuit bottom-up.
func WrapCircuit(c *circuit.Circuit, withIndex bool) *IndexedBox {
	var rec func(b *circuit.Box) *IndexedBox
	rec = func(b *circuit.Box) *IndexedBox {
		if b == nil {
			return nil
		}
		return Wrap(b, rec(b.Left), rec(b.Right), withIndex)
	}
	return rec(c.Root)
}

// BuildIndex computes the index structure for the whole circuit bottom-up
// (Lemma 6.3), returning the root wrapper.
func BuildIndex(c *circuit.Circuit) *IndexedBox { return WrapCircuit(c, true) }

// BoxIndex is the per-box part of the index structure I(C) of Definition
// 6.1. For each box B it stores:
//
//   - a list of target boxes: the boxes of the form fib(g) or fbb(g) for
//     ∪-gates g of B, closed under pairwise least common ancestors and
//     sorted by preorder of the tree of boxes (the "linear order implied
//     by preorder over 𝔅′" of Definition 6.1);
//   - the reachability relation R(B*, B) for every target B* (Lemma 6.3);
//   - the pairwise-lca table over the targets, which also answers
//     ancestor queries (A ancestor of B iff lca(A,B) = A);
//   - per ∪-gate g: fib(g) as a target position, and the pair
//     (FbbF, FbbE) summarizing the ∪-path structure below g. FbbE is the
//     deepest box of g's unbranched descent path; FbbF is the first
//     bidirectional box fbb(g) (equal to FbbE when defined, -1 when g's
//     ∪-paths never split). Together they let fbb(Γ) for arbitrary boxed
//     sets Γ be computed by an associative fold (Equation (2) together
//     with Observation 6.2), including the cases where individual fbb(g)
//     are undefined.
//
// Everything is computed bottom-up from the children's BoxIndex values
// (Lemma 6.3), which is what makes the index repairable along a hollowing
// trunk after updates (Lemma 7.3).
type BoxIndex struct {
	Targets []*IndexedBox
	// side/childIdx locate each target: side 0 = the box itself (always
	// target 0), 1 = a target of the left child, 2 = of the right child.
	side     []int8
	childIdx []int16

	Rel []bitset.Matrix // Rel[i] = R(Targets[i], B); rows Targets[i].Unions, cols B.Unions
	Lca [][]int16       // Lca[i][j] = target position of lca(Targets[i], Targets[j])

	Fib  []int16 // per ∪-gate: target position of fib(g)
	FbbF []int16 // per ∪-gate: target position of fbb(g), -1 if undefined
	FbbE []int16 // per ∪-gate: target position of the end of g's unbranched descent
}

// targetKey identifies a prospective target during construction.
type targetKey struct {
	side int8
	ci   int16
}

// buildBoxIndex computes the index for one wrapper from its children's
// indexes (which must already be built).
func buildBoxIndex(n *IndexedBox) *BoxIndex {
	b := n.Box
	if n.IsLeaf() {
		idx := &BoxIndex{
			Targets:  []*IndexedBox{n},
			side:     []int8{0},
			childIdx: []int16{0},
			Rel:      []bitset.Matrix{bitset.Identity(len(b.Unions))},
			Lca:      [][]int16{{0}},
			Fib:      make([]int16, len(b.Unions)),
			FbbF:     make([]int16, len(b.Unions)),
			FbbE:     make([]int16, len(b.Unions)),
		}
		for g := range b.Unions {
			idx.Fib[g] = 0
			idx.FbbF[g] = -1
			idx.FbbE[g] = 0
		}
		return idx
	}
	li := n.Left.Index
	ri := n.Right.Index

	// Step 1: raw per-gate values in (side, childIdx) form.
	type fe struct{ f, e int16 } // child-level target positions; f may be -1
	rawFib := make([]targetKey, len(b.Unions))
	rawFbb := make([]struct {
		side int8
		f, e int16
	}, len(b.Unions))
	for g := range b.Unions {
		u := &b.Unions[g]
		hasLocal := len(u.Vars)+len(u.Times) > 0
		switch {
		case hasLocal:
			rawFib[g] = targetKey{0, 0}
		case len(u.LeftUnions) > 0:
			best := int16(-1)
			for _, cg := range u.LeftUnions {
				if f := li.Fib[cg]; best < 0 || f < best {
					best = f
				}
			}
			rawFib[g] = targetKey{1, best}
		case len(u.RightUnions) > 0:
			best := int16(-1)
			for _, cg := range u.RightUnions {
				if f := ri.Fib[cg]; best < 0 || f < best {
					best = f
				}
			}
			rawFib[g] = targetKey{2, best}
		default:
			// A ∪-gate always has at least one input; with no local and
			// no child inputs the circuit is malformed.
			panic("enumerate: ∪-gate with no inputs")
		}

		hasL, hasR := len(u.LeftUnions) > 0, len(u.RightUnions) > 0
		switch {
		case hasL && hasR:
			rawFbb[g] = struct {
				side int8
				f, e int16
			}{0, 0, 0} // bidirectional at b itself
		case !hasL && !hasR:
			rawFbb[g] = struct {
				side int8
				f, e int16
			}{0, -1, 0} // ∪-paths end here
		case hasL:
			cur := fe{-1, -1}
			for _, cg := range u.LeftUnions {
				nxt := fe{li.FbbF[cg], li.FbbE[cg]}
				if cur.e < 0 {
					cur = nxt
				} else {
					cur.f, cur.e = combineFbb(li.Lca, cur.f, cur.e, nxt.f, nxt.e)
				}
			}
			rawFbb[g] = struct {
				side int8
				f, e int16
			}{1, cur.f, cur.e}
		default:
			cur := fe{-1, -1}
			for _, cg := range u.RightUnions {
				nxt := fe{ri.FbbF[cg], ri.FbbE[cg]}
				if cur.e < 0 {
					cur = nxt
				} else {
					cur.f, cur.e = combineFbb(ri.Lca, cur.f, cur.e, nxt.f, nxt.e)
				}
			}
			rawFbb[g] = struct {
				side int8
				f, e int16
			}{2, cur.f, cur.e}
		}
	}

	// Step 2: collect seeds.
	seedSet := map[targetKey]bool{{0, 0}: true}
	for g := range b.Unions {
		if rawFib[g].side != 0 {
			seedSet[rawFib[g]] = true
		}
		if rawFbb[g].side != 0 {
			if rawFbb[g].f >= 0 {
				seedSet[targetKey{rawFbb[g].side, rawFbb[g].f}] = true
			}
			seedSet[targetKey{rawFbb[g].side, rawFbb[g].e}] = true
		}
	}

	// Step 3: sort by preorder and close under pairwise lca (lca of
	// consecutive elements in preorder suffices, as for virtual trees).
	childLca := func(side int8, x, y int16) int16 {
		if side == 1 {
			return li.Lca[x][y]
		}
		return ri.Lca[x][y]
	}
	var seeds []targetKey
	for k := range seedSet {
		seeds = append(seeds, k)
	}
	sortTargets(seeds)
	for i := 0; i+1 < len(seeds); i++ {
		a, c := seeds[i], seeds[i+1]
		if a.side != 0 && a.side == c.side {
			k := targetKey{a.side, childLca(a.side, a.ci, c.ci)}
			if !seedSet[k] {
				seedSet[k] = true
			}
		}
		// Cross-side or self lca is the box itself, already present.
	}
	seeds = seeds[:0]
	for k := range seedSet {
		seeds = append(seeds, k)
	}
	sortTargets(seeds)

	// Step 4: materialize targets, position maps, relations.
	idx := &BoxIndex{
		Fib:  make([]int16, len(b.Unions)),
		FbbF: make([]int16, len(b.Unions)),
		FbbE: make([]int16, len(b.Unions)),
	}
	leftPos := make([]int16, len(li.Targets))
	rightPos := make([]int16, len(ri.Targets))
	for i := range leftPos {
		leftPos[i] = -1
	}
	for i := range rightPos {
		rightPos[i] = -1
	}
	for _, k := range seeds {
		pos := int16(len(idx.Targets))
		idx.side = append(idx.side, k.side)
		idx.childIdx = append(idx.childIdx, k.ci)
		switch k.side {
		case 0:
			idx.Targets = append(idx.Targets, n)
			idx.Rel = append(idx.Rel, bitset.Identity(len(b.Unions)))
		case 1:
			idx.Targets = append(idx.Targets, li.Targets[k.ci])
			idx.Rel = append(idx.Rel, bitset.Compose(li.Rel[k.ci], b.WLeft))
			leftPos[k.ci] = pos
		default:
			idx.Targets = append(idx.Targets, ri.Targets[k.ci])
			idx.Rel = append(idx.Rel, bitset.Compose(ri.Rel[k.ci], b.WRight))
			rightPos[k.ci] = pos
		}
	}

	// Step 5: lca table.
	nt := len(idx.Targets)
	idx.Lca = make([][]int16, nt)
	for i := 0; i < nt; i++ {
		idx.Lca[i] = make([]int16, nt)
		for j := 0; j < nt; j++ {
			si, sj := idx.side[i], idx.side[j]
			switch {
			case si == 0 || sj == 0 || si != sj:
				idx.Lca[i][j] = 0
			case si == 1:
				idx.Lca[i][j] = leftPos[li.Lca[idx.childIdx[i]][idx.childIdx[j]]]
			default:
				idx.Lca[i][j] = rightPos[ri.Lca[idx.childIdx[i]][idx.childIdx[j]]]
			}
			if idx.Lca[i][j] < 0 {
				panic("enumerate: lca closure incomplete")
			}
		}
	}

	// Step 6: map per-gate values to target positions.
	mapKey := func(k targetKey) int16 {
		switch k.side {
		case 0:
			return 0
		case 1:
			return leftPos[k.ci]
		default:
			return rightPos[k.ci]
		}
	}
	for g := range b.Unions {
		idx.Fib[g] = mapKey(rawFib[g])
		if idx.Fib[g] < 0 {
			panic("enumerate: fib target not materialized")
		}
		fb := rawFbb[g]
		if fb.side == 0 {
			idx.FbbF[g] = fb.f // 0 or -1
			idx.FbbE[g] = 0
		} else {
			if fb.f >= 0 {
				idx.FbbF[g] = mapKey(targetKey{fb.side, fb.f})
			} else {
				idx.FbbF[g] = -1
			}
			idx.FbbE[g] = mapKey(targetKey{fb.side, fb.e})
		}
		if idx.FbbE[g] < 0 {
			panic("enumerate: fbb end target not materialized")
		}
	}
	return idx
}

// sortTargets sorts target keys by preorder of the tree of boxes: the box
// itself first, then left-subtree targets in the left child's target
// order, then right-subtree targets.
func sortTargets(ks []targetKey) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].side != ks[j].side {
			return ks[i].side < ks[j].side
		}
		return ks[i].ci < ks[j].ci
	})
}

// combineFbb merges the (F, E) summaries of two boxed sets living in the
// same box, using that box's lca table. The result summarizes the union:
// E is the deepest box of the common unbranched prefix of the union's
// ∪-paths, F the first box where they split (-1 if they never do).
func combineFbb(lca [][]int16, f1, e1, f2, e2 int16) (f, e int16) {
	d := lca[e1][e2]
	if d != e1 && d != e2 {
		// The two descent paths split strictly above both ends: the
		// union is bidirectional exactly at their divergence box.
		return d, d
	}
	if d == e1 && d == e2 {
		// Same end box: whichever side already branches wins.
		if f1 >= 0 {
			return f1, e1
		}
		if f2 >= 0 {
			return f2, e2
		}
		return -1, e1
	}
	if d == e1 {
		// e1 is a strict ancestor of e2. If side 1 branches at e1 it is
		// the first split; otherwise side 1's paths end at e1 and the
		// union behaves like side 2 below.
		if f1 >= 0 {
			return f1, e1
		}
		return f2, e2
	}
	// e2 strict ancestor of e1: symmetric.
	if f2 >= 0 {
		return f2, e2
	}
	return f1, e1
}

// FoldFib returns the target position of fib(Γ) = min over g ∈ Γ of
// fib(g) in preorder (Equation (1)); -1 if Γ is empty.
func (idx *BoxIndex) FoldFib(gamma bitset.Set) int16 {
	best := int16(-1)
	gamma.ForEach(func(g int) bool {
		if f := idx.Fib[g]; best < 0 || f < best {
			best = f
		}
		return true
	})
	return best
}

// FoldFbb returns the target position of fbb(Γ) for a boxed set Γ
// (Equation (2) with Observation 6.2, generalized to handle gates whose
// singleton fbb is undefined); -1 if undefined.
func (idx *BoxIndex) FoldFbb(gamma bitset.Set) int16 {
	f, e := int16(-1), int16(-1)
	first := true
	gamma.ForEach(func(g int) bool {
		if first {
			f, e = idx.FbbF[g], idx.FbbE[g]
			first = false
			return true
		}
		f, e = combineFbb(idx.Lca, f, e, idx.FbbF[g], idx.FbbE[g])
		return true
	})
	return f
}

// StrictAncestor reports whether target i is a strict ancestor of target
// j in the tree of boxes.
func (idx *BoxIndex) StrictAncestor(i, j int16) bool {
	return i != j && idx.Lca[i][j] == i
}
