package enumerate

import (
	"math/big"
	"slices"

	"repro/internal/bitset"
	"repro/internal/circuit"
)

// IndexedBox pairs an immutable circuit box with the enumerate-layer
// data attached to it: the tree structure mirroring the tree of boxes
// and, when built in indexed mode, the per-box part of the index
// structure I(C) of Definition 6.1. It is the typed replacement for the
// untyped side field the circuit layer used to carry.
//
// An IndexedBox — like the box it wraps — is frozen after construction:
// nothing reachable from it is ever modified. A box plus its index
// therefore form a shareable unit, and the update machinery repairs the
// index along a hollowing trunk by building fresh IndexedBox nodes over
// the fresh boxes while reusing the wrappers of all untouched subtrees
// (Lemma 7.3). Any number of goroutines may enumerate from the same
// IndexedBox concurrently.
type IndexedBox struct {
	Box   *circuit.Box
	Left  *IndexedBox
	Right *IndexedBox
	// Index is nil when the wrapper was built without the Definition 6.1
	// index (ModeNaive / ModeSimple pipelines).
	Index *BoxIndex
	// Counts, when counting is enabled, holds the number of circuit
	// derivations of each local ∪-gate — the Section 4 multiset count of
	// (run, valuation) pairs, computed by counting.Derivations — indexed
	// by local ∪-gate. It is the per-box state of the direct-access
	// descent (direct.go). Like everything else reachable from the
	// wrapper it is frozen: the engine fills it before the wrapper is
	// shared and nothing may mutate it (or the big.Ints inside) after.
	// Nil when counting is disabled or the box has no ∪-gates.
	Counts []*big.Int
}

// IsLeaf reports whether the wrapped box is a leaf of the tree of boxes.
func (n *IndexedBox) IsLeaf() bool { return n.Left == nil }

// Walk visits every wrapper bottom-up (children before parents).
func (n *IndexedBox) Walk(f func(*IndexedBox)) {
	if n == nil {
		return
	}
	n.Left.Walk(f)
	n.Right.Walk(f)
	f(n)
}

// Indexer builds IndexedBox wrappers. It owns the reusable construction
// scratch (raw per-gate tables, seed buffers, child position maps), so a
// long-lived Indexer — one per engine pipeline — makes per-box index
// repair allocate only the frozen result arrays. The zero value is
// ready to use.
//
// CONCURRENCY: an Indexer is NOT safe for concurrent use (the scratch is
// shared across calls); confine it like a circuit.Builder. The wrappers
// it returns are immutable and freely shareable.
type Indexer struct {
	rawFib   []targetKey
	rawFbb   []rawFbbVal
	seeds    []targetKey
	leftPos  []int16
	rightPos []int16
	// batchDst/batchSrc collect each side's (destination, child-relation)
	// pairs for the batched ComposeManyInto in buildBoxIndex. They are
	// cleared (headers zeroed) after every build so the scratch never
	// keeps a previous index generation's backing arrays alive.
	batchDst []bitset.Matrix
	batchSrc []bitset.Matrix
}

// Wrap builds the IndexedBox for a box whose children wrappers are given
// (nil for leaf boxes); left and right must wrap b.Left and b.Right.
// With withIndex set, the children must have been wrapped with an index
// too, and the box's part of I(C) is computed from theirs (Lemma 6.3).
func (ix *Indexer) Wrap(b *circuit.Box, left, right *IndexedBox, withIndex bool) *IndexedBox {
	n := &IndexedBox{Box: b, Left: left, Right: right}
	if withIndex {
		n.Index = ix.buildBoxIndex(n)
	}
	return n
}

// Wrap is Indexer.Wrap with one-shot scratch, for callers without a
// long-lived Indexer.
func Wrap(b *circuit.Box, left, right *IndexedBox, withIndex bool) *IndexedBox {
	var ix Indexer
	return ix.Wrap(b, left, right, withIndex)
}

// WrapCircuit wraps a whole circuit bottom-up.
func WrapCircuit(c *circuit.Circuit, withIndex bool) *IndexedBox {
	var ix Indexer
	var rec func(b *circuit.Box) *IndexedBox
	rec = func(b *circuit.Box) *IndexedBox {
		if b == nil {
			return nil
		}
		return ix.Wrap(b, rec(b.Left), rec(b.Right), withIndex)
	}
	return rec(c.Root)
}

// BuildIndex computes the index structure for the whole circuit bottom-up
// (Lemma 6.3), returning the root wrapper.
func BuildIndex(c *circuit.Circuit) *IndexedBox { return WrapCircuit(c, true) }

// BoxIndex is the per-box part of the index structure I(C) of Definition
// 6.1. For each box B it stores:
//
//   - a list of target boxes: the boxes of the form fib(g) or fbb(g) for
//     ∪-gates g of B, closed under pairwise least common ancestors and
//     sorted by preorder of the tree of boxes (the "linear order implied
//     by preorder over 𝔅′" of Definition 6.1);
//   - the reachability relation R(B*, B) for every target B* (Lemma 6.3);
//   - the pairwise-lca table over the targets — row-major in one flat
//     array, read through Lca(i, j) — which also answers ancestor
//     queries (A ancestor of B iff lca(A,B) = A);
//   - per ∪-gate g: fib(g) as a target position, and the pair
//     (FbbF, FbbE) summarizing the ∪-path structure below g. FbbE is the
//     deepest box of g's unbranched descent path; FbbF is the first
//     bidirectional box fbb(g) (equal to FbbE when defined, -1 when g's
//     ∪-paths never split). Together they let fbb(Γ) for arbitrary boxed
//     sets Γ be computed by an associative fold (Equation (2) together
//     with Observation 6.2), including the cases where individual fbb(g)
//     are undefined.
//
// Everything is computed bottom-up from the children's BoxIndex values
// (Lemma 6.3), which is what makes the index repairable along a hollowing
// trunk after updates (Lemma 7.3).
type BoxIndex struct {
	Targets []*IndexedBox
	// locs locates each target: side 0 = the box itself (always target
	// 0), 1 = a target of the left child, 2 = of the right child; ci is
	// the child-level target position.
	locs []targetKey

	Rel []bitset.Matrix // Rel[i] = R(Targets[i], B); rows Targets[i].Unions, cols B.Unions
	lca []int16         // row-major len(Targets)² table; see Lca

	Fib  []int16 // per ∪-gate: target position of fib(g)
	FbbF []int16 // per ∪-gate: target position of fbb(g), -1 if undefined
	FbbE []int16 // per ∪-gate: target position of the end of g's unbranched descent
}

// Lca returns the target position of lca(Targets[i], Targets[j]).
func (idx *BoxIndex) Lca(i, j int16) int16 {
	return idx.lca[int(i)*len(idx.Targets)+int(j)]
}

// targetKey identifies a prospective target during construction.
type targetKey struct {
	side int8
	ci   int16
}

// rawFbbVal is the per-gate (side, F, E) summary before target
// materialization.
type rawFbbVal struct {
	side int8
	f, e int16
}

// buildBoxIndex computes the index for one wrapper from its children's
// indexes (which must already be built).
func (ix *Indexer) buildBoxIndex(n *IndexedBox) *BoxIndex {
	b := n.Box
	nu := len(b.Unions)
	if n.IsLeaf() {
		idx := &BoxIndex{
			Targets: []*IndexedBox{n},
			locs:    []targetKey{{0, 0}},
			Rel:     []bitset.Matrix{bitset.Identity(nu)},
			lca:     []int16{0},
		}
		flat := make([]int16, 3*nu)
		idx.Fib, idx.FbbF, idx.FbbE = flat[:nu:nu], flat[nu:2*nu:2*nu], flat[2*nu:]
		for g := 0; g < nu; g++ {
			idx.FbbF[g] = -1 // Fib and FbbE stay 0: the box itself
		}
		return idx
	}
	li := n.Left.Index
	ri := n.Right.Index

	// Step 1: raw per-gate values in (side, childIdx) form.
	if cap(ix.rawFib) < nu {
		ix.rawFib = make([]targetKey, nu)
		ix.rawFbb = make([]rawFbbVal, nu)
	}
	rawFib := ix.rawFib[:nu]
	rawFbb := ix.rawFbb[:nu]
	for g := 0; g < nu; g++ {
		u := &b.Unions[g]
		hasLocal := len(u.Vars)+len(u.Times) > 0
		switch {
		case hasLocal:
			rawFib[g] = targetKey{0, 0}
		case len(u.LeftUnions) > 0:
			best := int16(-1)
			for _, cg := range u.LeftUnions {
				if f := li.Fib[cg]; best < 0 || f < best {
					best = f
				}
			}
			rawFib[g] = targetKey{1, best}
		case len(u.RightUnions) > 0:
			best := int16(-1)
			for _, cg := range u.RightUnions {
				if f := ri.Fib[cg]; best < 0 || f < best {
					best = f
				}
			}
			rawFib[g] = targetKey{2, best}
		default:
			// A ∪-gate always has at least one input; with no local and
			// no child inputs the circuit is malformed.
			panic("enumerate: ∪-gate with no inputs")
		}

		hasL, hasR := len(u.LeftUnions) > 0, len(u.RightUnions) > 0
		switch {
		case hasL && hasR:
			rawFbb[g] = rawFbbVal{0, 0, 0} // bidirectional at b itself
		case !hasL && !hasR:
			rawFbb[g] = rawFbbVal{0, -1, 0} // ∪-paths end here
		case hasL:
			f, e := int16(-1), int16(-1)
			for _, cg := range u.LeftUnions {
				if e < 0 {
					f, e = li.FbbF[cg], li.FbbE[cg]
				} else {
					f, e = li.combineFbb(f, e, li.FbbF[cg], li.FbbE[cg])
				}
			}
			rawFbb[g] = rawFbbVal{1, f, e}
		default:
			f, e := int16(-1), int16(-1)
			for _, cg := range u.RightUnions {
				if e < 0 {
					f, e = ri.FbbF[cg], ri.FbbE[cg]
				} else {
					f, e = ri.combineFbb(f, e, ri.FbbF[cg], ri.FbbE[cg])
				}
			}
			rawFbb[g] = rawFbbVal{2, f, e}
		}
	}

	// Step 2: collect seeds (duplicates allowed; sorted and compacted).
	seeds := append(ix.seeds[:0], targetKey{0, 0})
	for g := 0; g < nu; g++ {
		if rawFib[g].side != 0 {
			seeds = append(seeds, rawFib[g])
		}
		if rawFbb[g].side != 0 {
			if rawFbb[g].f >= 0 {
				seeds = append(seeds, targetKey{rawFbb[g].side, rawFbb[g].f})
			}
			seeds = append(seeds, targetKey{rawFbb[g].side, rawFbb[g].e})
		}
	}
	sortCompactTargets := func(ks []targetKey) []targetKey {
		slices.SortFunc(ks, func(a, b targetKey) int {
			if a.side != b.side {
				return int(a.side) - int(b.side)
			}
			return int(a.ci) - int(b.ci)
		})
		return slices.Compact(ks)
	}
	seeds = sortCompactTargets(seeds)

	// Step 3: close under pairwise lca (lca of consecutive elements in
	// preorder suffices, as for virtual trees). Cross-side or self lca is
	// the box itself, already present.
	base := len(seeds)
	for i := 0; i+1 < base; i++ {
		a, c := seeds[i], seeds[i+1]
		if a.side != 0 && a.side == c.side {
			var k targetKey
			if a.side == 1 {
				k = targetKey{1, li.Lca(a.ci, c.ci)}
			} else {
				k = targetKey{2, ri.Lca(a.ci, c.ci)}
			}
			seeds = append(seeds, k)
		}
	}
	if len(seeds) > base {
		seeds = sortCompactTargets(seeds)
	}
	ix.seeds = seeds

	// Step 4: materialize targets, position maps, relations. The Rel
	// matrices all live on one backing allocation.
	nt := len(seeds)
	idx := &BoxIndex{
		Targets: make([]*IndexedBox, nt),
		locs:    make([]targetKey, nt),
		Rel:     make([]bitset.Matrix, nt),
	}
	copy(idx.locs, seeds)
	ix.leftPos = growPos(ix.leftPos, len(li.Targets))
	ix.rightPos = growPos(ix.rightPos, len(ri.Targets))
	leftPos, rightPos := ix.leftPos, ix.rightPos
	relWords := 0
	for _, k := range seeds {
		switch k.side {
		case 0:
			relWords += bitset.Words(nu, nu)
		case 1:
			relWords += bitset.Words(li.Rel[k.ci].Rows, nu)
		default:
			relWords += bitset.Words(ri.Rel[k.ci].Rows, nu)
		}
	}
	relBits := make([]uint64, relWords)
	off := 0
	carve := func(rows int) []uint64 {
		w := bitset.Words(rows, nu)
		out := relBits[off : off+w : off+w]
		off += w
		return out
	}
	// Seeds are sorted by side — the box itself, then all left-child
	// targets, then all right-child targets — so each side is one
	// contiguous run and its compositions against the shared wire matrix
	// go through a single batched ComposeManyInto call (one validation
	// and one kernel dispatch per box side, not per target).
	idx.Targets[0] = n
	idx.Rel[0] = bitset.IdentityOn(carve(nu), nu)
	i2 := 1
	for i2 < nt && seeds[i2].side == 1 {
		i2++
	}
	bDst := ix.batchDst[:0]
	bSrc := ix.batchSrc[:0]
	for pos := 1; pos < i2; pos++ {
		k := seeds[pos]
		idx.Targets[pos] = li.Targets[k.ci]
		rel := li.Rel[k.ci]
		idx.Rel[pos] = bitset.MatrixOn(carve(rel.Rows), rel.Rows, nu)
		bDst = append(bDst, idx.Rel[pos])
		bSrc = append(bSrc, rel)
		leftPos[k.ci] = int16(pos)
	}
	bitset.ComposeManyInto(bDst, bSrc, b.WLeft)
	bDst, bSrc = bDst[:0], bSrc[:0]
	for pos := i2; pos < nt; pos++ {
		k := seeds[pos]
		idx.Targets[pos] = ri.Targets[k.ci]
		rel := ri.Rel[k.ci]
		idx.Rel[pos] = bitset.MatrixOn(carve(rel.Rows), rel.Rows, nu)
		bDst = append(bDst, idx.Rel[pos])
		bSrc = append(bSrc, rel)
		rightPos[k.ci] = int16(pos)
	}
	bitset.ComposeManyInto(bDst, bSrc, b.WRight)
	// Drop the matrix headers from the scratch so stale backings from
	// this build don't stay reachable across later repairs.
	for i := range bDst[:cap(bDst)] {
		bDst[:cap(bDst)][i] = bitset.Matrix{}
	}
	for i := range bSrc[:cap(bSrc)] {
		bSrc[:cap(bSrc)][i] = bitset.Matrix{}
	}
	ix.batchDst, ix.batchSrc = bDst[:0], bSrc[:0]

	// Step 5: lca table, flat row-major.
	idx.lca = make([]int16, nt*nt)
	for i := 0; i < nt; i++ {
		row := idx.lca[i*nt : (i+1)*nt]
		for j := 0; j < nt; j++ {
			si, sj := idx.locs[i].side, idx.locs[j].side
			switch {
			case si == 0 || sj == 0 || si != sj:
				row[j] = 0
			case si == 1:
				row[j] = leftPos[li.Lca(idx.locs[i].ci, idx.locs[j].ci)]
			default:
				row[j] = rightPos[ri.Lca(idx.locs[i].ci, idx.locs[j].ci)]
			}
			if row[j] < 0 {
				panic("enumerate: lca closure incomplete")
			}
		}
	}

	// Step 6: map per-gate values to target positions.
	flat := make([]int16, 3*nu)
	idx.Fib, idx.FbbF, idx.FbbE = flat[:nu:nu], flat[nu:2*nu:2*nu], flat[2*nu:]
	mapKey := func(k targetKey) int16 {
		switch k.side {
		case 0:
			return 0
		case 1:
			return leftPos[k.ci]
		default:
			return rightPos[k.ci]
		}
	}
	for g := 0; g < nu; g++ {
		idx.Fib[g] = mapKey(rawFib[g])
		if idx.Fib[g] < 0 {
			panic("enumerate: fib target not materialized")
		}
		fb := rawFbb[g]
		if fb.side == 0 {
			idx.FbbF[g] = fb.f // 0 or -1
			idx.FbbE[g] = 0
		} else {
			if fb.f >= 0 {
				idx.FbbF[g] = mapKey(targetKey{fb.side, fb.f})
			} else {
				idx.FbbF[g] = -1
			}
			idx.FbbE[g] = mapKey(targetKey{fb.side, fb.e})
		}
		if idx.FbbE[g] < 0 {
			panic("enumerate: fbb end target not materialized")
		}
	}
	return idx
}

// growPos returns a length-n position buffer filled with -1.
func growPos(s []int16, n int) []int16 {
	if cap(s) < n {
		s = make([]int16, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = -1
	}
	return s
}

// combineFbb merges the (F, E) summaries of two boxed sets living in
// this box, using its lca table. The result summarizes the union: E is
// the deepest box of the common unbranched prefix of the union's
// ∪-paths, F the first box where they split (-1 if they never do).
func (idx *BoxIndex) combineFbb(f1, e1, f2, e2 int16) (f, e int16) {
	d := idx.Lca(e1, e2)
	if d != e1 && d != e2 {
		// The two descent paths split strictly above both ends: the
		// union is bidirectional exactly at their divergence box.
		return d, d
	}
	if d == e1 && d == e2 {
		// Same end box: whichever side already branches wins.
		if f1 >= 0 {
			return f1, e1
		}
		if f2 >= 0 {
			return f2, e2
		}
		return -1, e1
	}
	if d == e1 {
		// e1 is a strict ancestor of e2. If side 1 branches at e1 it is
		// the first split; otherwise side 1's paths end at e1 and the
		// union behaves like side 2 below.
		if f1 >= 0 {
			return f1, e1
		}
		return f2, e2
	}
	// e2 strict ancestor of e1: symmetric.
	if f2 >= 0 {
		return f2, e2
	}
	return f1, e1
}

// FoldFib returns the target position of fib(Γ) = min over g ∈ Γ of
// fib(g) in preorder (Equation (1)); -1 if Γ is empty.
func (idx *BoxIndex) FoldFib(gamma bitset.Set) int16 {
	best := int16(-1)
	for g := gamma.Next(0); g >= 0; g = gamma.Next(g + 1) {
		if f := idx.Fib[g]; best < 0 || f < best {
			best = f
		}
	}
	return best
}

// FoldFbb returns the target position of fbb(Γ) for a boxed set Γ
// (Equation (2) with Observation 6.2, generalized to handle gates whose
// singleton fbb is undefined); -1 if undefined.
func (idx *BoxIndex) FoldFbb(gamma bitset.Set) int16 {
	g := gamma.Next(0)
	if g < 0 {
		return -1
	}
	f, e := idx.FbbF[g], idx.FbbE[g]
	for g = gamma.Next(g + 1); g >= 0; g = gamma.Next(g + 1) {
		f, e = idx.combineFbb(f, e, idx.FbbF[g], idx.FbbE[g])
	}
	return f
}

// StrictAncestor reports whether target i is a strict ancestor of target
// j in the tree of boxes.
func (idx *BoxIndex) StrictAncestor(i, j int16) bool {
	return i != j && idx.Lca(i, j) == i
}
