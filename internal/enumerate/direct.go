package enumerate

import (
	"errors"
	"math/big"

	"repro/internal/bitset"
	"repro/internal/circuit"
)

// This file implements rank-indexed direct access over a frozen
// (box, index, counts) tree: At(root, Γ, emptyOK, mode, j) returns the
// j-th rope of Ropes(root, Γ, emptyOK, mode) without producing the
// first j. The descent is count-guided: per-box derivation counts
// (IndexedBox.Counts, maintained by the engine with the same hollowing-
// trunk invalidation as the index) tell, at every branch point of the
// enumeration recursion, how many outputs each branch contributes, so
// whole branches are skipped in O(poly(w)) each. Total cost is
// O(h·poly(w)) for a box tree of height h — independent of the number
// of answers, and logarithmic in |T| on the engine's balanced terms.
//
// Correctness rests on the derivation counts being exact answer counts,
// i.e. on the query automaton being unambiguous (tva.Unambiguous): then
// every assignment has exactly one derivation, the sets captured by the
// ∪-gates of any boxed set arising in Algorithm 2 are pairwise
// disjoint, and every provenance computed below is a singleton. Callers
// gate on that check; the descent additionally verifies every
// provenance it touches and fails with ErrAmbiguous on a violation
// instead of returning a wrong rank. (The verification is sound but not
// complete: ambiguity confined to the inside of a single gate is not
// structurally visible, which is why the automaton-level check is the
// authoritative gate.)
//
// For ModeIndexed the descent mirrors IndexedBoxEnum + Boxwise
// (indexedRec's jump order, then Algorithm 2's var/product order per
// interesting box). Product blocks are handled by WEIGHTED ranks: the
// j-th product of a box is found by descending the left factors with
// per-gate weights (how many outputs each left factor fans out to),
// then the right factors with the remaining offset — the same recursion
// as the enumeration, so the order matches output for output.
//
// For ModeSimple the descent follows Algorithm 1's gate recursion
// directly (vars, then ×-gates left-major, then child ∪-gates), where
// derivation counts are exact block lengths even for ambiguous
// automata, because Algorithm 1 enumerates with multiplicity.
//
// All transient state — relation matrices, weights, factor-weight
// vectors, the answer rope — lives on a Descender (scratch.go), so a
// worker calling At in a loop reuses one set of slabs. The package-level
// At wraps a throwaway Descender for one-shot callers.

// Errors reported by the direct-access descent.
var (
	// ErrNoDirectAccess means the wrapper tree was built without the
	// structures the requested mode needs (counts, or the Definition 6.1
	// index for ModeIndexed — ModeNaive has no direct-access support).
	ErrNoDirectAccess = errors.New("enumerate: wrapper tree has no direct-access support")
	// ErrRankRange means j is outside [0, Total).
	ErrRankRange = errors.New("enumerate: rank out of range")
	// ErrAmbiguous means a non-singleton provenance was encountered:
	// derivation counts overcount distinct assignments and ranks are
	// undefined. Callers should fall back to enumeration.
	ErrAmbiguous = errors.New("enumerate: ambiguous derivations, ranks undefined")
)

// Total returns the number of derivations of the boxed set gamma, plus
// one for the empty assignment if emptyOK: the exact length of the
// ModeSimple enumeration always, and of the duplicate-free enumerations
// exactly when the automaton is unambiguous.
func Total(root *IndexedBox, gamma bitset.Set, emptyOK bool) (*big.Int, error) {
	return totalInto(new(big.Int), root, gamma, emptyOK)
}

// totalInto is Total accumulating into a caller-provided big.Int.
func totalInto(total *big.Int, root *IndexedBox, gamma bitset.Set, emptyOK bool) (*big.Int, error) {
	total.SetInt64(0)
	if emptyOK {
		total.SetInt64(1)
	}
	if root == nil || gamma.Empty() {
		return total, nil
	}
	if root.Counts == nil {
		return nil, ErrNoDirectAccess
	}
	gamma.ForEach(func(g int) bool {
		total.Add(total, root.Counts[g])
		return true
	})
	return total, nil
}

// At returns the j-th rope (0-based) of Ropes(root, gamma, emptyOK,
// mode). A nil rope with a nil error is the empty assignment. At never
// mutates j. One-shot wrapper over a fresh Descender; loops over many
// ranks should hold a Descender and call its At instead.
func At(root *IndexedBox, gamma bitset.Set, emptyOK bool, mode Mode, j *big.Int) (*Rope, error) {
	return new(Descender).At(root, gamma, emptyOK, mode, j)
}

// At returns the j-th rope (0-based) of Ropes(root, gamma, emptyOK,
// mode), reusing the descender's scratch: the call recycles everything
// handed out by previous calls, so the returned rope is only valid until
// the descender's next At (materialize it first). A nil rope with a nil
// error is the empty assignment. At never mutates j.
func (d *Descender) At(root *IndexedBox, gamma bitset.Set, emptyOK bool, mode Mode, j *big.Int) (*Rope, error) {
	if j.Sign() < 0 {
		return nil, ErrRankRange
	}
	d.Reset()
	total, err := totalInto(d.ints.get(), root, gamma, emptyOK)
	if err != nil {
		return nil, err
	}
	if j.Cmp(total) >= 0 {
		return nil, ErrRankRange
	}
	rank := d.ints.get().Set(j)
	if emptyOK {
		if rank.Sign() == 0 {
			return nil, nil
		}
		rank.Sub(rank, bigOne)
	}
	switch mode {
	case ModeSimple:
		return d.simpleAt(root, gamma, rank)
	case ModeIndexed:
		if root.Index == nil {
			return nil, ErrNoDirectAccess
		}
		rope, _, _, err := d.descendRegion(root, d.seedRelation(root.Box, gamma), nil, rank)
		return rope, err
	default:
		return nil, ErrNoDirectAccess
	}
}

// AtInt is At for a machine-word rank, reusing an internal big.Int.
func (d *Descender) AtInt(root *IndexedBox, gamma bitset.Set, emptyOK bool, mode Mode, j int) (*Rope, error) {
	d.rank.SetInt64(int64(j))
	return d.At(root, gamma, emptyOK, mode, &d.rank)
}

// bigOne and bigZero are shared constants; nothing may mutate them.
var (
	bigOne  = big.NewInt(1)
	bigZero = new(big.Int)
)

// weightOf reads the weight of a top column; a nil vector means all
// ones (the unweighted top-level call).
func weightOf(w []*big.Int, col int) *big.Int {
	if w == nil {
		return bigOne
	}
	return w[col]
}

// singleCol returns the sole element of a provenance set, or
// ErrAmbiguous if it has more than one (see the file comment).
func singleCol(s bitset.Set) (int, error) {
	c, ok := s.Single()
	if !ok {
		// Empty or more than one element; callers only pass nonempty
		// provenances, so this means ambiguity either way.
		return -1, ErrAmbiguous
	}
	return c, nil
}

// seedRelation is boxenum.go's seedRelation carved from the descender's
// arena: the identity relation on gamma's gates.
func (d *Descender) seedRelation(b *circuit.Box, gamma bitset.Set) bitset.Matrix {
	r := d.mats.Matrix(len(b.Unions), len(b.Unions))
	gamma.ForEach(func(g int) bool {
		r.Set(g, g)
		return true
	})
	return r
}

// gateProv is enum.go's gateProv carved from the descender's arena: the
// union of the relation rows of a gate's ∪-outputs.
func (d *Descender) gateProv(r bitset.Matrix, outs []int32) bitset.Set {
	prov := d.mats.Set(r.Cols)
	for _, u := range outs {
		prov.Or(r.Row(int(u)))
	}
	return prov
}

// regionWeight returns the weighted number of outputs of the Algorithm
// 2/3 recursion on (n, r): Σ over ∪-gates u of n with a nonempty
// relation row of Counts[u] · w(column of u). Every assignment topped
// in n's subtree that reaches the top boxed set is derived at exactly
// one such gate (unambiguity), so the sum skips the whole region in one
// O(w) pass.
func (d *Descender) regionWeight(n *IndexedBox, r bitset.Matrix, w []*big.Int) (*big.Int, error) {
	if n.Counts == nil && len(n.Box.Unions) > 0 {
		return nil, ErrNoDirectAccess
	}
	total := d.ints.get().SetInt64(0)
	var tmp *big.Int
	for u := 0; u < r.Rows; u++ {
		if r.RowEmpty(u) {
			continue
		}
		if w == nil {
			total.Add(total, n.Counts[u])
			continue
		}
		col, err := singleCol(r.Row(u))
		if err != nil {
			return nil, err
		}
		if w[col].Sign() == 0 {
			continue
		}
		if tmp == nil {
			tmp = d.ints.get()
		}
		total.Add(total, tmp.Mul(n.Counts[u], w[col]))
	}
	return total, nil
}

// productWeight returns the weighted number of products boxwiseStep
// emits at box b1 under relation r1: Σ over ×-gates in ↓(Γ) of
// D(left factor)·D(right factor)·w(provenance column).
func (d *Descender) productWeight(b1 *IndexedBox, r1 bitset.Matrix, w []*big.Int) (*big.Int, error) {
	bp := b1.Box
	total := d.ints.get().SetInt64(0)
	blk := d.ints.get()
	for ti := range bp.Times {
		prov := d.gateProv(r1, bp.TimesOut[ti])
		if prov.Empty() {
			continue
		}
		col, err := singleCol(prov)
		if err != nil {
			return nil, err
		}
		tg := bp.Times[ti]
		blk.Mul(b1.Left.Counts[tg.Left], b1.Right.Counts[tg.Right])
		total.Add(total, blk.Mul(blk, weightOf(w, col)))
	}
	return total, nil
}

// descendRegion finds the j-th weighted output of the enumeration
// region indexedRec(n, r) — every output counted w(its provenance
// column) times — and returns the rope, its provenance column, and the
// offset of j inside the output's weight block (always 0 at the
// unweighted top level; for product descents it is the rank handed to
// the next factor). j is consumed. The control flow mirrors indexedRec
// (boxenum.go) with boxwiseStep (enum.go) inlined at each interesting
// box, so outputs are visited in exactly the order Boxwise emits them.
func (d *Descender) descendRegion(n *IndexedBox, r bitset.Matrix, w []*big.Int, j *big.Int) (*Rope, int, *big.Int, error) {
outer:
	for {
		idx := n.Index
		if idx == nil {
			return nil, -1, nil, ErrNoDirectAccess
		}
		gates := r.NonEmptyRowsInto(d.mats.Set(r.Rows))
		fib := idx.FoldFib(gates)
		if fib < 0 {
			// Empty relation: the caller's region count said otherwise.
			return nil, -1, nil, ErrAmbiguous
		}
		b1 := idx.Targets[fib]
		r1 := d.mats.Compose(idx.Rel[fib], r)
		bp := b1.Box

		// boxwiseStep at B1, part 1: var gates in ↓(Γ).
		for vi := range bp.Vars {
			prov := d.gateProv(r1, bp.VarOut[vi])
			if prov.Empty() {
				continue
			}
			col, err := singleCol(prov)
			if err != nil {
				return nil, -1, nil, err
			}
			wv := weightOf(w, col)
			if j.Cmp(wv) < 0 {
				vg := bp.Vars[vi]
				return d.ropes.Leaf(vg.Set, vg.Node), col, j, nil
			}
			j.Sub(j, wv)
		}
		// boxwiseStep at B1, part 2: ×-gate products.
		if len(bp.Times) > 0 {
			pc, err := d.productWeight(b1, r1, w)
			if err != nil {
				return nil, -1, nil, err
			}
			if j.Cmp(pc) < 0 {
				return d.descendProducts(b1, r1, w, j)
			}
			j.Sub(j, pc)
		}
		// Interesting boxes strictly below B1 (indexedRec lines 7-10).
		if !b1.IsLeaf() {
			rl := d.mats.Compose(bp.WLeft, r1)
			if !rl.Empty() {
				c, err := d.regionWeight(b1.Left, rl, w)
				if err != nil {
					return nil, -1, nil, err
				}
				if j.Cmp(c) < 0 {
					n, r = b1.Left, rl
					continue outer
				}
				j.Sub(j, c)
			}
			rr := d.mats.Compose(bp.WRight, r1)
			if !rr.Empty() {
				c, err := d.regionWeight(b1.Right, rr, w)
				if err != nil {
					return nil, -1, nil, err
				}
				if j.Cmp(c) < 0 {
					n, r = b1.Right, rr
					continue outer
				}
				j.Sub(j, c)
			}
		}
		// Bidirectional boxes on the path from n down to B1 (indexedRec
		// lines 11-17): each hangs a right region with further outputs.
		for {
			gates = r.NonEmptyRowsInto(d.mats.Set(r.Rows))
			fbb := idx.FoldFbb(gates)
			fib = idx.FoldFib(gates)
			if fbb < 0 || !idx.StrictAncestor(fbb, fib) {
				// Region exhausted with j left over: count inconsistency.
				return nil, -1, nil, ErrAmbiguous
			}
			bb := idx.Targets[fbb]
			rb := d.mats.Compose(idx.Rel[fbb], r)
			rr := d.mats.Compose(bb.Box.WRight, rb)
			if !rr.Empty() {
				c, err := d.regionWeight(bb.Right, rr, w)
				if err != nil {
					return nil, -1, nil, err
				}
				if j.Cmp(c) < 0 {
					n, r = bb.Right, rr
					continue outer
				}
				j.Sub(j, c)
			}
			r = d.mats.Compose(bb.Box.WLeft, rb)
			n = bb.Left
			idx = n.Index
			if idx == nil {
				return nil, -1, nil, ErrNoDirectAccess
			}
		}
	}
}

// descendProducts finds the j-th weighted product of boxwiseStep at box
// b1 under relation r1. Products are emitted left-factor-major: for
// each left factor sl (in Boxwise(b1.Left, ΓL) order) all compatible
// right factors (in Boxwise(b1.Right, ΓR(sl)) order). The left descent
// therefore runs with per-gate weights — each left factor captured by
// gate g fans out to Σ over ×-gates (g, h) of D(h)·w(prov) outputs —
// and the offset it returns ranks the right factor.
func (d *Descender) descendProducts(b1 *IndexedBox, r1 bitset.Matrix, w []*big.Int, j *big.Int) (*Rope, int, *big.Int, error) {
	bp := b1.Box
	wL := d.wgts.get(len(bp.Left.Unions))
	gammaL := d.mats.Set(len(bp.Left.Unions))
	for ti := range bp.Times {
		prov := d.gateProv(r1, bp.TimesOut[ti])
		if prov.Empty() {
			continue
		}
		col, err := singleCol(prov)
		if err != nil {
			return nil, -1, nil, err
		}
		tg := bp.Times[ti]
		contrib := d.ints.get().Mul(b1.Right.Counts[tg.Right], weightOf(w, col))
		lg := int(tg.Left)
		if wL[lg] == nil {
			wL[lg] = contrib
			gammaL.Add(lg)
		} else {
			wL[lg].Add(wL[lg], contrib)
		}
	}
	for g := range wL {
		if wL[g] == nil {
			wL[g] = bigZero
		}
	}
	sl, lcol, off, err := d.descendRegion(b1.Left, d.seedRelation(bp.Left, gammaL), wL, j)
	if err != nil {
		return nil, -1, nil, err
	}
	// The right factors compatible with sl: the ×-gates whose left input
	// is sl's provenance gate, enumerated as Boxwise(b1.Right, ΓR).
	wR := d.wgts.get(len(bp.Right.Unions))
	cols := d.cols.get(len(bp.Right.Unions))
	gammaR := d.mats.Set(len(bp.Right.Unions))
	for ti := range bp.Times {
		tg := bp.Times[ti]
		if int(tg.Left) != lcol {
			continue
		}
		prov := d.gateProv(r1, bp.TimesOut[ti])
		if prov.Empty() {
			continue
		}
		col, err := singleCol(prov)
		if err != nil {
			return nil, -1, nil, err
		}
		rg := int(tg.Right)
		if wR[rg] != nil {
			// Two ×-gates with the same factor pair derive every product
			// twice: ambiguous.
			return nil, -1, nil, ErrAmbiguous
		}
		wR[rg] = weightOf(w, col)
		cols[rg] = col
		gammaR.Add(rg)
	}
	for g := range wR {
		if wR[g] == nil {
			wR[g] = bigZero
		}
	}
	sr, rcol, off2, err := d.descendRegion(b1.Right, d.seedRelation(bp.Right, gammaR), wR, off)
	if err != nil {
		return nil, -1, nil, err
	}
	return d.ropes.Concat(sl, sr), cols[rcol], off2, nil
}

// simpleAt finds the j-th rope of Simple(root.Box, gamma): Algorithm
// 1's enumeration order, where derivation counts are exact block
// lengths by construction (one output per derivation), ambiguous or
// not.
func (d *Descender) simpleAt(root *IndexedBox, gamma bitset.Set, j *big.Int) (*Rope, error) {
	var (
		out *Rope
		err error = ErrRankRange
	)
	gamma.ForEach(func(g int) bool {
		c := root.Counts[g]
		if j.Cmp(c) < 0 {
			out, err = d.simpleAtUnion(root, g, j)
			return false
		}
		j.Sub(j, c)
		return true
	})
	return out, err
}

// simpleAtUnion finds the j-th rope of simpleUnion(n.Box, u): var
// inputs first, then ×-inputs left-factor-major, then the child
// ∪-inputs, exactly the input order of Algorithm 1.
func (d *Descender) simpleAtUnion(n *IndexedBox, u int, j *big.Int) (*Rope, error) {
	if n.Counts == nil && len(n.Box.Unions) > 0 {
		return nil, ErrNoDirectAccess
	}
	g := &n.Box.Unions[u]
	if j.IsInt64() && j.Int64() < int64(len(g.Vars)) {
		vg := n.Box.Vars[g.Vars[j.Int64()]]
		return d.ropes.Leaf(vg.Set, vg.Node), nil
	}
	j.Sub(j, d.ints.get().SetInt64(int64(len(g.Vars))))
	blk := d.ints.get()
	for _, t := range g.Times {
		tg := n.Box.Times[t]
		cl, cr := n.Left.Counts[tg.Left], n.Right.Counts[tg.Right]
		blk.Mul(cl, cr)
		if j.Cmp(blk) < 0 {
			jl, jr := d.ints.get(), d.ints.get()
			jl.DivMod(j, cr, jr)
			sl, err := d.simpleAtUnion(n.Left, int(tg.Left), jl)
			if err != nil {
				return nil, err
			}
			sr, err := d.simpleAtUnion(n.Right, int(tg.Right), jr)
			if err != nil {
				return nil, err
			}
			return d.ropes.Concat(sl, sr), nil
		}
		j.Sub(j, blk)
	}
	for _, l := range g.LeftUnions {
		c := n.Left.Counts[l]
		if j.Cmp(c) < 0 {
			return d.simpleAtUnion(n.Left, int(l), j)
		}
		j.Sub(j, c)
	}
	for _, r := range g.RightUnions {
		c := n.Right.Counts[r]
		if j.Cmp(c) < 0 {
			return d.simpleAtUnion(n.Right, int(r), j)
		}
		j.Sub(j, c)
	}
	return nil, ErrRankRange
}

// CountCircuit computes the per-gate derivation counts of a circuit
// directly (no evaluator cache), for callers outside the engine that
// wrapped a circuit with WrapCircuit and want direct access on it:
// fills Counts on every wrapper bottom-up.
func CountCircuit(root *IndexedBox, count func(b *circuit.Box) []*big.Int) {
	root.Walk(func(n *IndexedBox) {
		if n.Counts == nil {
			n.Counts = count(n.Box)
		}
	})
}
