package enumerate

import (
	"iter"

	"repro/internal/bitset"
	"repro/internal/circuit"
)

// Simple implements Algorithm 1 (Section 4): enumerate the assignments
// captured by the ∪-gates of gamma (a set of local ∪-gate indices of box
// b), with duplicates, by naive preorder traversal of the circuit. The
// worst-case delay is O(depth(C) · |S|). It exists as a correctness anchor
// and as the baseline whose delay experiment E8 contrasts with the
// indexed enumeration.
func Simple(b *circuit.Box, gamma bitset.Set) iter.Seq[*Rope] {
	return func(yield func(*Rope) bool) {
		gamma.ForEach(func(u int) bool {
			return simpleUnion(b, u, yield)
		})
	}
}

// simpleUnion enumerates S of one ∪-gate; returns false if the consumer
// stopped.
func simpleUnion(b *circuit.Box, u int, yield func(*Rope) bool) bool {
	g := &b.Unions[u]
	for _, v := range g.Vars {
		vg := b.Vars[v]
		if !yield(LeafRope(vg.Set, vg.Node)) {
			return false
		}
	}
	for _, t := range g.Times {
		tg := b.Times[t]
		ok := true
		simpleUnion(b.Left, int(tg.Left), func(sl *Rope) bool {
			return simpleUnion(b.Right, int(tg.Right), func(sr *Rope) bool {
				if !yield(Concat(sl, sr)) {
					ok = false
					return false
				}
				return true
			}) && ok
		})
		if !ok {
			return false
		}
	}
	for _, l := range g.LeftUnions {
		if !simpleUnion(b.Left, int(l), yield) {
			return false
		}
	}
	for _, r := range g.RightUnions {
		if !simpleUnion(b.Right, int(r), yield) {
			return false
		}
	}
	return true
}
