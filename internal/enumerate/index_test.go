package enumerate

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/tree"
)

// bruteReach computes the set of ∪-gates of each descendant box reachable
// from gamma by ∪-paths, by naive propagation. Returns a map from box to
// the gate set.
func bruteReach(b *circuit.Box, gamma bitset.Set) map[*circuit.Box]bitset.Set {
	out := map[*circuit.Box]bitset.Set{}
	var rec func(bx *circuit.Box, gates bitset.Set)
	rec = func(bx *circuit.Box, gates bitset.Set) {
		if gates.Empty() {
			return
		}
		out[bx] = gates
		if bx.IsLeaf() {
			return
		}
		left := bitset.NewSet(len(bx.Left.Unions))
		right := bitset.NewSet(len(bx.Right.Unions))
		gates.ForEach(func(g int) bool {
			for _, l := range bx.Unions[g].LeftUnions {
				left.Add(int(l))
			}
			for _, r := range bx.Unions[g].RightUnions {
				right.Add(int(r))
			}
			return true
		})
		rec(bx.Left, left)
		rec(bx.Right, right)
	}
	rec(b, gamma)
	return out
}

// bruteFib returns the preorder-first interesting box for gamma, or nil.
func bruteFib(b *circuit.Box, gamma bitset.Set) *circuit.Box {
	reach := bruteReach(b, gamma)
	var first *circuit.Box
	var pre func(bx *circuit.Box)
	pre = func(bx *circuit.Box) {
		if bx == nil || first != nil {
			return
		}
		if gates, ok := reach[bx]; ok {
			intr := false
			gates.ForEach(func(g int) bool {
				if len(bx.Unions[g].Vars) > 0 || len(bx.Unions[g].Times) > 0 {
					intr = true
					return false
				}
				return true
			})
			if intr {
				first = bx
				return
			}
		}
		pre(bx.Left)
		pre(bx.Right)
	}
	pre(b)
	return first
}

// bruteFbb returns the preorder-first bidirectional box for gamma, or
// nil: the first box (in preorder) whose reachable gate set has ∪-wires
// into both children.
func bruteFbb(b *circuit.Box, gamma bitset.Set) *circuit.Box {
	reach := bruteReach(b, gamma)
	var first *circuit.Box
	var pre func(bx *circuit.Box)
	pre = func(bx *circuit.Box) {
		if bx == nil || first != nil {
			return
		}
		if gates, ok := reach[bx]; ok && !bx.IsLeaf() {
			hasL, hasR := false, false
			gates.ForEach(func(g int) bool {
				if len(bx.Unions[g].LeftUnions) > 0 {
					hasL = true
				}
				if len(bx.Unions[g].RightUnions) > 0 {
					hasR = true
				}
				return true
			})
			if hasL && hasR {
				first = bx
				return
			}
		}
		pre(bx.Left)
		pre(bx.Right)
	}
	pre(b)
	return first
}

// TestIndexFibFbbAgainstBruteForce validates the jump pointers of
// Definition 6.1 on random circuits and random boxed sets: the folded
// fib/fbb must equal the independently computed preorder-first
// interesting / bidirectional box.
func TestIndexFibFbbAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	trials := 0
	for trials < 300 {
		_, c := buildRandom(rng, 1+rng.Intn(3), 1+rng.Intn(12), tree.NewVarSet(0))
		if c == nil || c.Root == nil {
			continue
		}
		trials++
		croot := BuildIndex(c)
		nodes := allNodes(croot)
		nb := nodes[rng.Intn(len(nodes))]
		b := nb.Box
		if len(b.Unions) == 0 {
			continue
		}
		gamma := bitset.NewSet(len(b.Unions))
		for u := range b.Unions {
			if rng.Intn(2) == 0 {
				gamma.Add(u)
			}
		}
		if gamma.Empty() {
			gamma.Add(rng.Intn(len(b.Unions)))
		}
		idx := nb.Index

		wantFib := bruteFib(b, gamma)
		gotFibPos := idx.FoldFib(gamma)
		if wantFib == nil {
			t.Fatal("every nonempty boxed set has an interesting box")
		}
		if idx.Targets[gotFibPos].Box != wantFib {
			t.Fatalf("trial %d: fib mismatch: got %p want %p", trials,
				idx.Targets[gotFibPos].Box, wantFib)
		}

		wantFbb := bruteFbb(b, gamma)
		gotFbbPos := idx.FoldFbb(gamma)
		if wantFbb == nil {
			if gotFbbPos >= 0 {
				t.Fatalf("trial %d: fbb should be undefined, got %p", trials, idx.Targets[gotFbbPos])
			}
		} else {
			if gotFbbPos < 0 {
				t.Fatalf("trial %d: fbb undefined, want %p", trials, wantFbb)
			}
			if idx.Targets[gotFbbPos].Box != wantFbb {
				t.Fatalf("trial %d: fbb mismatch", trials)
			}
		}

		// Reachability relations must match brute-force propagation.
		reach := bruteReach(b, gamma)
		for i, target := range idx.Targets {
			wantGates, ok := reach[target.Box]
			r := bitset.Compose(idx.Rel[i], seedRelation(b, gamma))
			gotGates := r.NonEmptyRows()
			if !ok {
				if !gotGates.Empty() {
					t.Fatalf("trial %d: relation nonempty for unreachable target", trials)
				}
				continue
			}
			if !gotGates.Equal(wantGates) {
				t.Fatalf("trial %d: relation rows %v want %v", trials, gotGates, wantGates)
			}
		}
	}
}

// TestIndexLcaTable validates the per-box lca tables against brute-force
// lca computation in the box tree.
func TestIndexLcaTable(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	trials := 0
	for trials < 100 {
		_, c := buildRandom(rng, 1+rng.Intn(3), 1+rng.Intn(10), tree.NewVarSet(0))
		if c == nil || c.Root == nil {
			continue
		}
		trials++
		croot := BuildIndex(c)
		// Wrappers carry no parent pointers; compute them by walking.
		parents := map[*IndexedBox]*IndexedBox{}
		croot.Walk(func(n *IndexedBox) {
			if !n.IsLeaf() {
				parents[n.Left] = n
				parents[n.Right] = n
			}
		})
		depth := func(n *IndexedBox) int {
			d := 0
			for x := n; parents[x] != nil; x = parents[x] {
				d++
			}
			return d
		}
		lca := func(a, b *IndexedBox) *IndexedBox {
			for depth(a) > depth(b) {
				a = parents[a]
			}
			for depth(b) > depth(a) {
				b = parents[b]
			}
			for a != b {
				a, b = parents[a], parents[b]
			}
			return a
		}
		croot.Walk(func(n *IndexedBox) {
			idx := n.Index
			for i := range idx.Targets {
				for j := range idx.Targets {
					want := lca(idx.Targets[i], idx.Targets[j])
					got := idx.Targets[idx.Lca(int16(i), int16(j))]
					if got != want {
						t.Fatalf("lca table wrong at box %p (%d, %d)", n.Box, i, j)
					}
				}
			}
		})
	}
}
