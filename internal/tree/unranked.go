package tree

import (
	"fmt"
	"strings"
)

// UNode is a node of an unranked tree. Children are kept in a doubly linked
// sibling list so that the edit operations of Definition 7.1 are O(1) on
// the tree itself (the cost of an update lies in maintaining the balanced
// term and the circuit, not the tree).
type UNode struct {
	ID     NodeID
	Label  Label
	Parent *UNode

	FirstChild *UNode
	LastChild  *UNode
	PrevSib    *UNode
	NextSib    *UNode
}

// IsLeaf reports whether the node has no children.
func (n *UNode) IsLeaf() bool { return n.FirstChild == nil }

// Children returns the children of n in sibling order.
func (n *UNode) Children() []*UNode {
	var out []*UNode
	for c := n.FirstChild; c != nil; c = c.NextSib {
		out = append(out, c)
	}
	return out
}

// Unranked is a mutable unranked Λ-tree. It owns its nodes and hands out
// stable NodeIDs; the dynamic enumeration pipeline addresses nodes through
// those IDs.
type Unranked struct {
	Root   *UNode
	nodes  map[NodeID]*UNode
	nextID NodeID
}

// NewUnranked creates a tree consisting of a single root with the given
// label.
func NewUnranked(rootLabel Label) *Unranked {
	t := &Unranked{nodes: map[NodeID]*UNode{}}
	t.Root = t.newNode(rootLabel)
	return t
}

func (t *Unranked) newNode(l Label) *UNode {
	n := &UNode{ID: t.nextID, Label: l}
	t.nextID++
	t.nodes[n.ID] = n
	return n
}

// Size returns the number of nodes.
func (t *Unranked) Size() int { return len(t.nodes) }

// Node returns the node with the given ID, or nil if it does not exist
// (e.g. it was deleted).
func (t *Unranked) Node(id NodeID) *UNode { return t.nodes[id] }

// Nodes returns all nodes in document (preorder) order.
func (t *Unranked) Nodes() []*UNode {
	out := make([]*UNode, 0, len(t.nodes))
	var walk func(n *UNode)
	walk = func(n *UNode) {
		out = append(out, n)
		for c := n.FirstChild; c != nil; c = c.NextSib {
			walk(c)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return out
}

// Height returns the height of the tree (a single node has height 0).
func (t *Unranked) Height() int {
	var h func(n *UNode) int
	h = func(n *UNode) int {
		best := -1
		for c := n.FirstChild; c != nil; c = c.NextSib {
			if ch := h(c); ch > best {
				best = ch
			}
		}
		return best + 1
	}
	if t.Root == nil {
		return -1
	}
	return h(t.Root)
}

// Relabel implements relabel(n, l): change the label of n to l.
func (t *Unranked) Relabel(id NodeID, l Label) error {
	n := t.nodes[id]
	if n == nil {
		return fmt.Errorf("tree: relabel: node n%d does not exist", id)
	}
	n.Label = l
	return nil
}

// InsertFirstChild implements insert(n, l): insert a new l-labeled node as
// the first child of n. It returns the new node.
func (t *Unranked) InsertFirstChild(id NodeID, l Label) (*UNode, error) {
	n := t.nodes[id]
	if n == nil {
		return nil, fmt.Errorf("tree: insert: node n%d does not exist", id)
	}
	v := t.newNode(l)
	v.Parent = n
	v.NextSib = n.FirstChild
	if n.FirstChild != nil {
		n.FirstChild.PrevSib = v
	} else {
		n.LastChild = v
	}
	n.FirstChild = v
	return v, nil
}

// InsertRightSibling implements insertR(n, l): insert a new l-labeled node
// as the right sibling of n. It returns the new node. The root has no
// sibling position (the result would not be a tree), so this is an error
// for the root.
func (t *Unranked) InsertRightSibling(id NodeID, l Label) (*UNode, error) {
	n := t.nodes[id]
	if n == nil {
		return nil, fmt.Errorf("tree: insertR: node n%d does not exist", id)
	}
	if n.Parent == nil {
		return nil, fmt.Errorf("tree: insertR: node n%d is the root", id)
	}
	v := t.newNode(l)
	v.Parent = n.Parent
	v.PrevSib = n
	v.NextSib = n.NextSib
	if n.NextSib != nil {
		n.NextSib.PrevSib = v
	} else {
		n.Parent.LastChild = v
	}
	n.NextSib = v
	return v, nil
}

// Delete implements delete(n): remove the leaf n from the tree. Deleting
// an internal node or the root is an error (the tree must stay a tree and
// stay nonempty).
func (t *Unranked) Delete(id NodeID) error {
	n := t.nodes[id]
	if n == nil {
		return fmt.Errorf("tree: delete: node n%d does not exist", id)
	}
	if !n.IsLeaf() {
		return fmt.Errorf("tree: delete: node n%d is not a leaf", id)
	}
	if n.Parent == nil {
		return fmt.Errorf("tree: delete: node n%d is the root", id)
	}
	p := n.Parent
	if n.PrevSib != nil {
		n.PrevSib.NextSib = n.NextSib
	} else {
		p.FirstChild = n.NextSib
	}
	if n.NextSib != nil {
		n.NextSib.PrevSib = n.PrevSib
	} else {
		p.LastChild = n.PrevSib
	}
	n.Parent, n.PrevSib, n.NextSib = nil, nil, nil
	delete(t.nodes, id)
	return nil
}

// String renders the tree as an S-expression, e.g. "(a (b) (c (d)))".
func (t *Unranked) String() string {
	var b strings.Builder
	var walk func(n *UNode)
	walk = func(n *UNode) {
		b.WriteByte('(')
		b.WriteString(string(n.Label))
		for c := n.FirstChild; c != nil; c = c.NextSib {
			b.WriteByte(' ')
			walk(c)
		}
		b.WriteByte(')')
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return b.String()
}

// ParseUnranked parses the S-expression format produced by String.
// Labels are runs of characters other than '(', ')' and whitespace.
func ParseUnranked(s string) (*Unranked, error) {
	p := &sexpParser{src: s}
	p.skipSpace()
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tree: parse: trailing input at offset %d", p.pos)
	}
	t := &Unranked{nodes: map[NodeID]*UNode{}}
	t.Root = t.adopt(root, nil)
	return t, nil
}

type sexpNode struct {
	label    Label
	children []*sexpNode
}

func (t *Unranked) adopt(s *sexpNode, parent *UNode) *UNode {
	n := t.newNode(s.label)
	n.Parent = parent
	var prev *UNode
	for _, c := range s.children {
		cn := t.adopt(c, n)
		if prev == nil {
			n.FirstChild = cn
		} else {
			prev.NextSib = cn
			cn.PrevSib = prev
		}
		prev = cn
	}
	n.LastChild = prev
	return n
}

type sexpParser struct {
	src string
	pos int
}

func (p *sexpParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *sexpParser) parseNode() (*sexpNode, error) {
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, fmt.Errorf("tree: parse: expected '(' at offset %d", p.pos)
	}
	p.pos++
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune("() \t\n\r", rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("tree: parse: expected label at offset %d", p.pos)
	}
	n := &sexpNode{label: Label(p.src[start:p.pos])}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("tree: parse: unexpected end of input")
		}
		if p.src[p.pos] == ')' {
			p.pos++
			return n, nil
		}
		c, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		n.children = append(n.children, c)
	}
}

// Clone returns a deep copy of the tree preserving node IDs.
func (t *Unranked) Clone() *Unranked {
	c := &Unranked{nodes: map[NodeID]*UNode{}, nextID: t.nextID}
	var walk func(n *UNode, parent *UNode) *UNode
	walk = func(n *UNode, parent *UNode) *UNode {
		cn := &UNode{ID: n.ID, Label: n.Label, Parent: parent}
		c.nodes[cn.ID] = cn
		var prev *UNode
		for ch := n.FirstChild; ch != nil; ch = ch.NextSib {
			cc := walk(ch, cn)
			if prev == nil {
				cn.FirstChild = cc
			} else {
				prev.NextSib = cc
				cc.PrevSib = prev
			}
			prev = cc
		}
		cn.LastChild = prev
		return cn
	}
	if t.Root != nil {
		c.Root = walk(t.Root, nil)
	}
	return c
}
