package tree

import (
	"fmt"
	"strings"
)

// UNode is a node of an unranked tree. Children are kept in a doubly linked
// sibling list so that the edit operations of Definition 7.1 are O(1) on
// the tree itself (the cost of an update lies in maintaining the balanced
// term and the circuit, not the tree).
type UNode struct {
	ID     NodeID
	Label  Label
	Parent *UNode

	FirstChild *UNode
	LastChild  *UNode
	PrevSib    *UNode
	NextSib    *UNode
}

// IsLeaf reports whether the node has no children.
func (n *UNode) IsLeaf() bool { return n.FirstChild == nil }

// Children returns the children of n in sibling order.
func (n *UNode) Children() []*UNode {
	var out []*UNode
	for c := n.FirstChild; c != nil; c = c.NextSib {
		out = append(out, c)
	}
	return out
}

// Unranked is a mutable unranked Λ-tree. It owns its nodes and hands out
// stable NodeIDs; the dynamic enumeration pipeline addresses nodes through
// those IDs.
type Unranked struct {
	Root   *UNode
	nodes  map[NodeID]*UNode
	nextID NodeID
}

// NewUnranked creates a tree consisting of a single root with the given
// label.
func NewUnranked(rootLabel Label) *Unranked {
	t := &Unranked{nodes: map[NodeID]*UNode{}}
	t.Root = t.newNode(rootLabel)
	return t
}

func (t *Unranked) newNode(l Label) *UNode {
	n := &UNode{ID: t.nextID, Label: l}
	t.nextID++
	t.nodes[n.ID] = n
	return n
}

// Size returns the number of nodes.
func (t *Unranked) Size() int { return len(t.nodes) }

// Node returns the node with the given ID, or nil if it does not exist
// (e.g. it was deleted).
func (t *Unranked) Node(id NodeID) *UNode { return t.nodes[id] }

// Nodes returns all nodes in document (preorder) order.
func (t *Unranked) Nodes() []*UNode {
	out := make([]*UNode, 0, len(t.nodes))
	var walk func(n *UNode)
	walk = func(n *UNode) {
		out = append(out, n)
		for c := n.FirstChild; c != nil; c = c.NextSib {
			walk(c)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return out
}

// Height returns the height of the tree (a single node has height 0).
func (t *Unranked) Height() int {
	var h func(n *UNode) int
	h = func(n *UNode) int {
		best := -1
		for c := n.FirstChild; c != nil; c = c.NextSib {
			if ch := h(c); ch > best {
				best = ch
			}
		}
		return best + 1
	}
	if t.Root == nil {
		return -1
	}
	return h(t.Root)
}

// Relabel implements relabel(n, l): change the label of n to l.
func (t *Unranked) Relabel(id NodeID, l Label) error {
	n := t.nodes[id]
	if n == nil {
		return fmt.Errorf("tree: relabel: node n%d does not exist", id)
	}
	n.Label = l
	return nil
}

// InsertFirstChild implements insert(n, l): insert a new l-labeled node as
// the first child of n. It returns the new node.
func (t *Unranked) InsertFirstChild(id NodeID, l Label) (*UNode, error) {
	n := t.nodes[id]
	if n == nil {
		return nil, fmt.Errorf("tree: insert: node n%d does not exist", id)
	}
	v := t.newNode(l)
	v.Parent = n
	v.NextSib = n.FirstChild
	if n.FirstChild != nil {
		n.FirstChild.PrevSib = v
	} else {
		n.LastChild = v
	}
	n.FirstChild = v
	return v, nil
}

// InsertRightSibling implements insertR(n, l): insert a new l-labeled node
// as the right sibling of n. It returns the new node. The root has no
// sibling position (the result would not be a tree), so this is an error
// for the root.
func (t *Unranked) InsertRightSibling(id NodeID, l Label) (*UNode, error) {
	n := t.nodes[id]
	if n == nil {
		return nil, fmt.Errorf("tree: insertR: node n%d does not exist", id)
	}
	if n.Parent == nil {
		return nil, fmt.Errorf("tree: insertR: node n%d is the root", id)
	}
	v := t.newNode(l)
	v.Parent = n.Parent
	v.PrevSib = n
	v.NextSib = n.NextSib
	if n.NextSib != nil {
		n.NextSib.PrevSib = v
	} else {
		n.Parent.LastChild = v
	}
	n.NextSib = v
	return v, nil
}

// Delete implements delete(n): remove the leaf n from the tree. Deleting
// an internal node or the root is an error (the tree must stay a tree and
// stay nonempty).
func (t *Unranked) Delete(id NodeID) error {
	n := t.nodes[id]
	if n == nil {
		return fmt.Errorf("tree: delete: node n%d does not exist", id)
	}
	if !n.IsLeaf() {
		return fmt.Errorf("tree: delete: node n%d is not a leaf", id)
	}
	if n.Parent == nil {
		return fmt.Errorf("tree: delete: node n%d is the root", id)
	}
	t.detach(n)
	delete(t.nodes, id)
	return nil
}

// detach unlinks n from its parent and siblings, leaving the subtree's
// internal pointers intact (the detached fragment stays walkable).
func (t *Unranked) detach(n *UNode) {
	p := n.Parent
	if n.PrevSib != nil {
		n.PrevSib.NextSib = n.NextSib
	} else {
		p.FirstChild = n.NextSib
	}
	if n.NextSib != nil {
		n.NextSib.PrevSib = n.PrevSib
	} else {
		p.LastChild = n.PrevSib
	}
	n.Parent, n.PrevSib, n.NextSib = nil, nil, nil
}

// InSubtree reports whether node v lies in the subtree rooted at n
// (inclusive), by walking v's parent chain. O(depth(v)).
func (t *Unranked) InSubtree(n, v NodeID) bool {
	for x := t.nodes[v]; x != nil; x = x.Parent {
		if x.ID == n {
			return true
		}
	}
	return false
}

// SubtreeSize returns the number of nodes in the subtree rooted at id, or
// 0 if the node does not exist.
func (t *Unranked) SubtreeSize(id NodeID) int {
	n := t.nodes[id]
	if n == nil {
		return 0
	}
	var rec func(x *UNode) int
	rec = func(x *UNode) int {
		s := 1
		for c := x.FirstChild; c != nil; c = c.NextSib {
			s += rec(c)
		}
		return s
	}
	return rec(n)
}

// DeleteSubtree implements the structural edit deleteSub(n): remove the
// whole subtree rooted at n. The root is not deletable (the tree must
// stay nonempty). The detached fragment is returned with its internal
// parent/child/sibling links intact — callers that maintain per-node
// side structure (the forest algebra term's leaf map) walk it to release
// their entries — but its nodes are no longer addressable through the
// tree. O(|subtree|).
func (t *Unranked) DeleteSubtree(id NodeID) (*UNode, int, error) {
	n := t.nodes[id]
	if n == nil {
		return nil, 0, fmt.Errorf("tree: deleteSub: node n%d does not exist", id)
	}
	if n.Parent == nil {
		return nil, 0, fmt.Errorf("tree: deleteSub: node n%d is the root", id)
	}
	t.detach(n)
	count := 0
	var purge func(x *UNode)
	purge = func(x *UNode) {
		delete(t.nodes, x.ID)
		count++
		for c := x.FirstChild; c != nil; c = c.NextSib {
			purge(c)
		}
	}
	purge(n)
	return n, count, nil
}

// moveChecks validates a subtree move: both nodes exist, the moved node
// is not the root, and the destination is not inside the moved subtree
// (which would disconnect the tree). O(depth(dest)).
func (t *Unranked) moveChecks(op string, id, dest NodeID) (*UNode, *UNode, error) {
	n := t.nodes[id]
	if n == nil {
		return nil, nil, fmt.Errorf("tree: %s: node n%d does not exist", op, id)
	}
	d := t.nodes[dest]
	if d == nil {
		return nil, nil, fmt.Errorf("tree: %s: destination n%d does not exist", op, dest)
	}
	if n.Parent == nil {
		return nil, nil, fmt.Errorf("tree: %s: node n%d is the root", op, id)
	}
	if t.InSubtree(id, dest) {
		return nil, nil, fmt.Errorf("tree: %s: destination n%d is inside the moved subtree of n%d", op, dest, id)
	}
	return n, d, nil
}

// MoveSubtreeFirstChild implements move(n, dest): detach the subtree
// rooted at n and reattach it as the FIRST CHILD of dest. Node IDs and
// the subtree's internal structure are preserved. O(depth) validation
// plus O(1) pointer surgery.
func (t *Unranked) MoveSubtreeFirstChild(id, dest NodeID) error {
	n, d, err := t.moveChecks("move", id, dest)
	if err != nil {
		return err
	}
	t.detach(n)
	n.Parent = d
	n.NextSib = d.FirstChild
	if d.FirstChild != nil {
		d.FirstChild.PrevSib = n
	} else {
		d.LastChild = n
	}
	d.FirstChild = n
	return nil
}

// MoveSubtreeRightSibling implements moveR(n, dest): detach the subtree
// rooted at n and reattach it as the RIGHT SIBLING of dest. dest must not
// be the root (the result must stay a tree). O(depth) validation plus
// O(1) pointer surgery.
func (t *Unranked) MoveSubtreeRightSibling(id, dest NodeID) error {
	n, d, err := t.moveChecks("moveR", id, dest)
	if err != nil {
		return err
	}
	if d.Parent == nil {
		return fmt.Errorf("tree: moveR: destination n%d is the root", dest)
	}
	t.detach(n)
	n.Parent = d.Parent
	n.PrevSib = d
	n.NextSib = d.NextSib
	if d.NextSib != nil {
		d.NextSib.PrevSib = n
	} else {
		d.Parent.LastChild = n
	}
	d.NextSib = n
	return nil
}

// graft deep-copies the fragment rooted at src (from another tree) into
// this tree under fresh node IDs, returning the copy's root. O(|fragment|).
func (t *Unranked) graft(src *UNode, parent *UNode) *UNode {
	n := t.newNode(src.Label)
	n.Parent = parent
	var prev *UNode
	for c := src.FirstChild; c != nil; c = c.NextSib {
		cn := t.graft(c, n)
		if prev == nil {
			n.FirstChild = cn
		} else {
			prev.NextSib = cn
			cn.PrevSib = prev
		}
		prev = cn
	}
	n.LastChild = prev
	return n
}

// GraftFirstChild implements the structural edit insertSub(n, F): a copy
// of the fragment tree F (under fresh IDs — the fragment itself is not
// consumed) becomes the first child of n. Returns the copy's root.
func (t *Unranked) GraftFirstChild(id NodeID, frag *Unranked) (*UNode, error) {
	n := t.nodes[id]
	if n == nil {
		return nil, fmt.Errorf("tree: insertSub: node n%d does not exist", id)
	}
	if frag == nil || frag.Root == nil {
		return nil, fmt.Errorf("tree: insertSub: empty fragment")
	}
	v := t.graft(frag.Root, n)
	v.NextSib = n.FirstChild
	if n.FirstChild != nil {
		n.FirstChild.PrevSib = v
	} else {
		n.LastChild = v
	}
	n.FirstChild = v
	return v, nil
}

// GraftRightSibling implements insertSubR(n, F): a copy of the fragment
// tree F (under fresh IDs) becomes the right sibling of n. Returns the
// copy's root.
func (t *Unranked) GraftRightSibling(id NodeID, frag *Unranked) (*UNode, error) {
	n := t.nodes[id]
	if n == nil {
		return nil, fmt.Errorf("tree: insertSubR: node n%d does not exist", id)
	}
	if n.Parent == nil {
		return nil, fmt.Errorf("tree: insertSubR: node n%d is the root", id)
	}
	if frag == nil || frag.Root == nil {
		return nil, fmt.Errorf("tree: insertSubR: empty fragment")
	}
	v := t.graft(frag.Root, n.Parent)
	v.PrevSib = n
	v.NextSib = n.NextSib
	if n.NextSib != nil {
		n.NextSib.PrevSib = v
	} else {
		n.Parent.LastChild = v
	}
	n.NextSib = v
	return v, nil
}

// String renders the tree as an S-expression, e.g. "(a (b) (c (d)))".
func (t *Unranked) String() string {
	var b strings.Builder
	var walk func(n *UNode)
	walk = func(n *UNode) {
		b.WriteByte('(')
		b.WriteString(string(n.Label))
		for c := n.FirstChild; c != nil; c = c.NextSib {
			b.WriteByte(' ')
			walk(c)
		}
		b.WriteByte(')')
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return b.String()
}

// ParseUnranked parses the S-expression format produced by String.
// Labels are runs of characters other than '(', ')' and whitespace.
func ParseUnranked(s string) (*Unranked, error) {
	p := &sexpParser{src: s}
	p.skipSpace()
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tree: parse: trailing input at offset %d", p.pos)
	}
	t := &Unranked{nodes: map[NodeID]*UNode{}}
	t.Root = t.adopt(root, nil)
	return t, nil
}

type sexpNode struct {
	label    Label
	children []*sexpNode
}

func (t *Unranked) adopt(s *sexpNode, parent *UNode) *UNode {
	n := t.newNode(s.label)
	n.Parent = parent
	var prev *UNode
	for _, c := range s.children {
		cn := t.adopt(c, n)
		if prev == nil {
			n.FirstChild = cn
		} else {
			prev.NextSib = cn
			cn.PrevSib = prev
		}
		prev = cn
	}
	n.LastChild = prev
	return n
}

type sexpParser struct {
	src string
	pos int
}

func (p *sexpParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *sexpParser) parseNode() (*sexpNode, error) {
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, fmt.Errorf("tree: parse: expected '(' at offset %d", p.pos)
	}
	p.pos++
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune("() \t\n\r", rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("tree: parse: expected label at offset %d", p.pos)
	}
	n := &sexpNode{label: Label(p.src[start:p.pos])}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("tree: parse: unexpected end of input")
		}
		if p.src[p.pos] == ')' {
			p.pos++
			return n, nil
		}
		c, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		n.children = append(n.children, c)
	}
}

// Clone returns a deep copy of the tree preserving node IDs.
func (t *Unranked) Clone() *Unranked {
	c := &Unranked{nodes: map[NodeID]*UNode{}, nextID: t.nextID}
	var walk func(n *UNode, parent *UNode) *UNode
	walk = func(n *UNode, parent *UNode) *UNode {
		cn := &UNode{ID: n.ID, Label: n.Label, Parent: parent}
		c.nodes[cn.ID] = cn
		var prev *UNode
		for ch := n.FirstChild; ch != nil; ch = ch.NextSib {
			cc := walk(ch, cn)
			if prev == nil {
				cn.FirstChild = cc
			} else {
				prev.NextSib = cc
				cc.PrevSib = prev
			}
			prev = cc
		}
		cn.LastChild = prev
		return cn
	}
	if t.Root != nil {
		c.Root = walk(t.Root, nil)
	}
	return c
}
