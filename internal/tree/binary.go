package tree

import (
	"fmt"
	"strings"
)

// BNode is a node of a binary Λ-tree (Section 2): every internal node has
// exactly two children, referred to as left and right.
type BNode struct {
	ID    NodeID
	Label Label
	Left  *BNode
	Right *BNode
}

// IsLeaf reports whether the node has no children.
func (n *BNode) IsLeaf() bool { return n.Left == nil }

// Binary is an immutable binary Λ-tree. The circuit of Lemma 3.7 is built
// on binary trees; unranked trees reach this form through the forest
// algebra encoding of Section 7.
type Binary struct {
	Root   *BNode
	nextID NodeID
}

// NewBinary creates an empty binary tree builder.
func NewBinary() *Binary { return &Binary{} }

// Leaf creates a new leaf with the given label.
func (t *Binary) Leaf(l Label) *BNode {
	n := &BNode{ID: t.nextID, Label: l}
	t.nextID++
	return n
}

// Inner creates a new internal node with the given label and children.
// Both children must be non-nil: binary trees in the paper are full.
func (t *Binary) Inner(l Label, left, right *BNode) *BNode {
	if left == nil || right == nil {
		panic("tree: Inner requires two children")
	}
	n := &BNode{ID: t.nextID, Label: l, Left: left, Right: right}
	t.nextID++
	return n
}

// SetRoot marks n as the root of the tree.
func (t *Binary) SetRoot(n *BNode) { t.Root = n }

// Size returns the number of nodes below and including the root.
func (t *Binary) Size() int {
	var count func(n *BNode) int
	count = func(n *BNode) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.Left) + count(n.Right)
	}
	return count(t.Root)
}

// Height returns the height of the tree (single node: 0; empty: -1).
func (t *Binary) Height() int {
	var h func(n *BNode) int
	h = func(n *BNode) int {
		if n == nil {
			return -1
		}
		l, r := h(n.Left), h(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.Root)
}

// Leaves returns the leaves of the tree in left-to-right order.
func (t *Binary) Leaves() []*BNode {
	var out []*BNode
	var walk func(n *BNode)
	walk = func(n *BNode) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return out
}

// Validate checks the full-binary-tree invariant: every internal node has
// exactly two children.
func (t *Binary) Validate() error {
	var walk func(n *BNode) error
	walk = func(n *BNode) error {
		if n == nil {
			return nil
		}
		if (n.Left == nil) != (n.Right == nil) {
			return fmt.Errorf("tree: node n%d has exactly one child", n.ID)
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	return walk(t.Root)
}

// String renders the tree as an S-expression.
func (t *Binary) String() string {
	var b strings.Builder
	var walk func(n *BNode)
	walk = func(n *BNode) {
		b.WriteByte('(')
		b.WriteString(string(n.Label))
		if n.Left != nil {
			b.WriteByte(' ')
			walk(n.Left)
			b.WriteByte(' ')
			walk(n.Right)
		}
		b.WriteByte(')')
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return b.String()
}

// ParseBinary parses the S-expression format; every node must have zero or
// two children.
func ParseBinary(s string) (*Binary, error) {
	p := &sexpParser{src: s}
	p.skipSpace()
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tree: parse: trailing input at offset %d", p.pos)
	}
	t := NewBinary()
	bn, err := t.adoptBinary(root)
	if err != nil {
		return nil, err
	}
	t.SetRoot(bn)
	return t, nil
}

func (t *Binary) adoptBinary(s *sexpNode) (*BNode, error) {
	switch len(s.children) {
	case 0:
		return t.Leaf(s.label), nil
	case 2:
		l, err := t.adoptBinary(s.children[0])
		if err != nil {
			return nil, err
		}
		r, err := t.adoptBinary(s.children[1])
		if err != nil {
			return nil, err
		}
		return t.Inner(s.label, l, r), nil
	default:
		return nil, fmt.Errorf("tree: parse: node %q has %d children, want 0 or 2", s.label, len(s.children))
	}
}
