// Package tree implements the Λ-trees of the paper: rooted ordered trees
// with labeled nodes, in both the unranked flavor (Section 7, the input to
// the dynamic enumeration pipeline) and the binary flavor (Sections 2-6,
// the form on which circuits are built). It also implements valuations,
// assignments (Section 2) and the edit operations of Definition 7.1.
package tree

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Label is a node label from the tree alphabet Λ.
type Label string

// Var is a query variable from the variable set X, identified by its index.
// At most MaxVars variables are supported because variable sets are packed
// into 32-bit masks.
type Var uint8

// MaxVars is the maximum number of distinct variables in a query.
const MaxVars = 32

// VarSet is a set of variables packed as a bit mask: bit i set means
// variable i is present. It implements the 2^X annotations the automata
// read on nodes.
type VarSet uint32

// NewVarSet builds a VarSet from the given variables.
func NewVarSet(vars ...Var) VarSet {
	var s VarSet
	for _, v := range vars {
		s |= 1 << v
	}
	return s
}

// Has reports whether v is in the set.
func (s VarSet) Has(v Var) bool { return s&(1<<v) != 0 }

// Add returns s with v added.
func (s VarSet) Add(v Var) VarSet { return s | 1<<v }

// Remove returns s without v.
func (s VarSet) Remove(v Var) VarSet { return s &^ (1 << v) }

// Empty reports whether the set is empty.
func (s VarSet) Empty() bool { return s == 0 }

// Count returns the number of variables in the set.
func (s VarSet) Count() int { return bits.OnesCount32(uint32(s)) }

// Vars returns the variables of the set in increasing order.
func (s VarSet) Vars() []Var {
	out := make([]Var, 0, s.Count())
	for m := uint32(s); m != 0; m &= m - 1 {
		out = append(out, Var(bits.TrailingZeros32(m)))
	}
	return out
}

// String renders the set as "{X0, X2}".
func (s VarSet) String() string {
	parts := make([]string, 0, s.Count())
	for _, v := range s.Vars() {
		parts = append(parts, fmt.Sprintf("X%d", v))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SubsetsOf enumerates all subsets of universe (including the empty set),
// calling f on each. Used by automata constructions that must consider
// every possible annotation over the live variables.
func SubsetsOf(universe VarSet, f func(VarSet)) {
	u := uint32(universe)
	sub := uint32(0)
	for {
		f(VarSet(sub))
		if sub == u {
			return
		}
		sub = (sub - u) & u // next subset of u after sub
	}
}

// NodeID is a stable identifier for a tree node. IDs are unique within a
// tree for its whole lifetime (they are never reused after deletions), so
// assignments remain meaningful across updates that do not touch their
// nodes.
type NodeID int

// InvalidNode is the sentinel NodeID meaning "no node": unapplied batch
// positions, holes of forest-typed terms, not-yet-found search results.
// Real IDs are never negative.
const InvalidNode NodeID = -1

// Singleton is a pair ⟨Z : n⟩ stating that variable Z is assigned node n
// (Section 2). Assignments are sets of singletons.
type Singleton struct {
	Var  Var
	Node NodeID
}

// String renders the singleton as "⟨X1:n4⟩".
func (s Singleton) String() string { return fmt.Sprintf("<X%d:n%d>", s.Var, s.Node) }

// Assignment is a set of singletons, kept sorted by (Node, Var). It is the
// output format of the enumeration algorithms: the assignment α(ν) of a
// valuation ν.
type Assignment []Singleton

// Normalize sorts the assignment and removes duplicates, returning the
// canonical form.
func (a Assignment) Normalize() Assignment {
	sort.Slice(a, func(i, j int) bool {
		if a[i].Node != a[j].Node {
			return a[i].Node < a[j].Node
		}
		return a[i].Var < a[j].Var
	})
	out := a[:0]
	for i, s := range a {
		if i == 0 || s != a[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Key returns a canonical string usable as a map key for set-of-assignment
// comparisons in tests and oracles. The assignment must be normalized.
func (a Assignment) Key() string {
	var b strings.Builder
	for _, s := range a {
		fmt.Fprintf(&b, "%d:%d;", s.Node, s.Var)
	}
	return b.String()
}

// String renders the assignment as "{⟨X0:n1⟩, ⟨X1:n2⟩}".
func (a Assignment) String() string {
	parts := make([]string, len(a))
	for i, s := range a {
		parts[i] = s.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Valuation maps nodes to their annotation. It is the ν of the paper; the
// corresponding assignment α(ν) lists ⟨Z:n⟩ for every Z ∈ ν(n).
type Valuation map[NodeID]VarSet

// Assignment converts the valuation to its assignment form α(ν).
func (v Valuation) Assignment() Assignment {
	var out Assignment
	for n, set := range v {
		for _, z := range set.Vars() {
			out = append(out, Singleton{Var: z, Node: n})
		}
	}
	return out.Normalize()
}

// AssignmentValuation converts an assignment back to a valuation.
func AssignmentValuation(a Assignment) Valuation {
	v := Valuation{}
	for _, s := range a {
		v[s.Node] |= 1 << s.Var
	}
	return v
}
