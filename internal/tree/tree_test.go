package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarSet(t *testing.T) {
	s := NewVarSet(0, 3, 5)
	if !s.Has(0) || !s.Has(3) || !s.Has(5) || s.Has(1) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	s = s.Add(1).Remove(3)
	want := []Var{0, 1, 5}
	got := s.Vars()
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if s.Empty() || !VarSet(0).Empty() {
		t.Fatal("Empty wrong")
	}
	if s.String() != "{X0, X1, X5}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSubsetsOf(t *testing.T) {
	u := NewVarSet(1, 4)
	var got []VarSet
	SubsetsOf(u, func(s VarSet) { got = append(got, s) })
	if len(got) != 4 {
		t.Fatalf("got %d subsets, want 4", len(got))
	}
	seen := map[VarSet]bool{}
	for _, s := range got {
		if s&^u != 0 {
			t.Fatalf("subset %v not within universe %v", s, u)
		}
		if seen[s] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[s] = true
	}
	// Empty universe yields exactly the empty set.
	n := 0
	SubsetsOf(0, func(s VarSet) {
		if !s.Empty() {
			t.Fatal("nonempty subset of empty universe")
		}
		n++
	})
	if n != 1 {
		t.Fatalf("empty universe yielded %d subsets", n)
	}
}

func TestAssignmentNormalizeAndKey(t *testing.T) {
	a := Assignment{{1, 5}, {0, 5}, {1, 5}, {0, 2}}
	a = a.Normalize()
	want := Assignment{{0, 2}, {0, 5}, {1, 5}}
	if len(a) != len(want) {
		t.Fatalf("Normalize = %v", a)
	}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", a, want)
		}
	}
	if a.Key() != "2:0;5:0;5:1;" {
		t.Fatalf("Key = %q", a.Key())
	}
}

func TestValuationRoundTrip(t *testing.T) {
	v := Valuation{2: NewVarSet(0, 1), 7: NewVarSet(3)}
	a := v.Assignment()
	if len(a) != 3 {
		t.Fatalf("Assignment = %v", a)
	}
	back := AssignmentValuation(a)
	if len(back) != 2 || back[2] != v[2] || back[7] != v[7] {
		t.Fatalf("round trip failed: %v", back)
	}
}

func TestUnrankedBuildAndEdits(t *testing.T) {
	tr := NewUnranked("r")
	if tr.Size() != 1 || tr.Root.Label != "r" {
		t.Fatal("NewUnranked wrong")
	}
	b, err := tr.InsertFirstChild(tr.Root.ID, "b")
	if err != nil {
		t.Fatal(err)
	}
	a, err := tr.InsertFirstChild(tr.Root.ID, "a")
	if err != nil {
		t.Fatal(err)
	}
	c, err := tr.InsertRightSibling(b.ID, "c")
	if err != nil {
		t.Fatal(err)
	}
	// Order should now be a, b, c.
	if got := tr.String(); got != "(r (a) (b) (c))" {
		t.Fatalf("tree = %s", got)
	}
	if tr.Size() != 4 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if err := tr.Relabel(a.ID, "z"); err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "(r (z) (b) (c))" {
		t.Fatalf("after relabel: %s", got)
	}
	if err := tr.Delete(b.ID); err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "(r (z) (c))" {
		t.Fatalf("after delete: %s", got)
	}
	if tr.Node(b.ID) != nil {
		t.Fatal("deleted node still addressable")
	}
	// Delete first and last children too.
	if err := tr.Delete(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(c.ID); err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "(r)" {
		t.Fatalf("after deletes: %s", got)
	}
}

func TestUnrankedEditErrors(t *testing.T) {
	tr := NewUnranked("r")
	c, _ := tr.InsertFirstChild(tr.Root.ID, "c")
	if err := tr.Delete(tr.Root.ID); err == nil {
		t.Fatal("deleting internal root should fail")
	}
	if _, err := tr.InsertRightSibling(tr.Root.ID, "x"); err == nil {
		t.Fatal("insertR on root should fail")
	}
	if err := tr.Delete(NodeID(99)); err == nil {
		t.Fatal("deleting missing node should fail")
	}
	if err := tr.Relabel(NodeID(99), "x"); err == nil {
		t.Fatal("relabeling missing node should fail")
	}
	if _, err := tr.InsertFirstChild(NodeID(99), "x"); err == nil {
		t.Fatal("insert under missing node should fail")
	}
	if _, err := tr.InsertRightSibling(NodeID(99), "x"); err == nil {
		t.Fatal("insertR of missing node should fail")
	}
	_ = tr.Delete(c.ID)
	if err := tr.Delete(tr.Root.ID); err == nil {
		t.Fatal("deleting the root should fail even when it is a leaf")
	}
}

func TestUnrankedParsePrintRoundTrip(t *testing.T) {
	cases := []string{
		"(a)",
		"(a (b))",
		"(a (b) (c (d) (e)) (f))",
		"(root (x (y (z))))",
	}
	for _, s := range cases {
		tr, err := ParseUnranked(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if got := tr.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
	for _, bad := range []string{"", "a", "(a", "(a))", "()", "(a)x"} {
		if _, err := ParseUnranked(bad); err == nil {
			t.Fatalf("parse %q should fail", bad)
		}
	}
}

func TestUnrankedHeightAndNodes(t *testing.T) {
	tr, _ := ParseUnranked("(a (b (c) (d (e))) (f))")
	if tr.Height() != 3 {
		t.Fatalf("Height = %d", tr.Height())
	}
	nodes := tr.Nodes()
	if len(nodes) != 6 {
		t.Fatalf("Nodes = %d", len(nodes))
	}
	labels := ""
	for _, n := range nodes {
		labels += string(n.Label)
	}
	if labels != "abcdef" {
		t.Fatalf("preorder = %s", labels)
	}
}

func TestUnrankedClone(t *testing.T) {
	tr, _ := ParseUnranked("(a (b) (c (d)))")
	cl := tr.Clone()
	if cl.String() != tr.String() {
		t.Fatal("clone differs")
	}
	// IDs preserved.
	for _, n := range tr.Nodes() {
		cn := cl.Node(n.ID)
		if cn == nil || cn.Label != n.Label {
			t.Fatalf("clone lost node %d", n.ID)
		}
	}
	// Mutating the clone must not touch the original.
	var leaf *UNode
	for _, n := range cl.Nodes() {
		if n.IsLeaf() {
			leaf = n
		}
	}
	_ = cl.Delete(leaf.ID)
	if tr.Node(leaf.ID) == nil {
		t.Fatal("clone shares nodes with original")
	}
}

func TestBinaryBuildAndValidate(t *testing.T) {
	b := NewBinary()
	n := b.Inner("r", b.Leaf("a"), b.Inner("s", b.Leaf("b"), b.Leaf("c")))
	b.SetRoot(n)
	if b.Size() != 5 {
		t.Fatalf("Size = %d", b.Size())
	}
	if b.Height() != 2 {
		t.Fatalf("Height = %d", b.Height())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	leaves := b.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("Leaves = %d", len(leaves))
	}
	order := ""
	for _, l := range leaves {
		order += string(l.Label)
	}
	if order != "abc" {
		t.Fatalf("leaf order = %s", order)
	}
	if got := b.String(); got != "(r (a) (s (b) (c)))" {
		t.Fatalf("String = %s", got)
	}
}

func TestBinaryParse(t *testing.T) {
	b, err := ParseBinary("(r (a) (s (b) (c)))")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != "(r (a) (s (b) (c)))" {
		t.Fatalf("round trip = %s", b.String())
	}
	if _, err := ParseBinary("(r (a))"); err == nil {
		t.Fatal("unary node should fail")
	}
	if _, err := ParseBinary("(r (a) (b) (c))"); err == nil {
		t.Fatal("ternary node should fail")
	}
}

func TestBinaryInnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil child")
		}
	}()
	b := NewBinary()
	b.Inner("x", b.Leaf("a"), nil)
}

// randomUnranked builds a random tree with n nodes by attaching each new
// node under a uniformly random existing node.
func randomUnranked(rng *rand.Rand, n int) *Unranked {
	tr := NewUnranked("r")
	ids := []NodeID{tr.Root.ID}
	for i := 1; i < n; i++ {
		parent := ids[rng.Intn(len(ids))]
		var nn *UNode
		if rng.Intn(2) == 0 {
			nn, _ = tr.InsertFirstChild(parent, Label([]string{"a", "b", "c"}[rng.Intn(3)]))
		} else {
			p := tr.Node(parent)
			if p.Parent == nil {
				nn, _ = tr.InsertFirstChild(parent, "a")
			} else {
				nn, _ = tr.InsertRightSibling(parent, "b")
			}
		}
		ids = append(ids, nn.ID)
	}
	return tr
}

func TestQuickUnrankedParseRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%40) + 1
		tr := randomUnranked(rng, n)
		if tr.Size() != n {
			return false
		}
		back, err := ParseUnranked(tr.String())
		if err != nil {
			return false
		}
		return back.String() == tr.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEditsPreserveLinkedListInvariants(t *testing.T) {
	check := func(tr *Unranked) bool {
		for _, n := range tr.Nodes() {
			// first/last consistency
			if (n.FirstChild == nil) != (n.LastChild == nil) {
				return false
			}
			for c := n.FirstChild; c != nil; c = c.NextSib {
				if c.Parent != n {
					return false
				}
				if c.NextSib != nil && c.NextSib.PrevSib != c {
					return false
				}
				if c.NextSib == nil && n.LastChild != c {
					return false
				}
				if c.PrevSib == nil && n.FirstChild != c {
					return false
				}
			}
		}
		return true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomUnranked(rng, 20)
		// Random edit storm.
		for i := 0; i < 50; i++ {
			nodes := tr.Nodes()
			n := nodes[rng.Intn(len(nodes))]
			switch rng.Intn(4) {
			case 0:
				_ = tr.Relabel(n.ID, "x")
			case 1:
				_, _ = tr.InsertFirstChild(n.ID, "y")
			case 2:
				if n.Parent != nil {
					_, _ = tr.InsertRightSibling(n.ID, "z")
				}
			case 3:
				if n.IsLeaf() && n.Parent != nil {
					_ = tr.Delete(n.ID)
				}
			}
			if !check(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
