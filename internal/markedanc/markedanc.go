// Package markedanc implements the marked-ancestor problem of Section 9
// and the reduction of Theorem 9.2: an MSO enumeration structure with
// relabeling updates solves existential marked-ancestor queries, so the
// Ω(log n / log log n) cell-probe lower bound of Alstrup, Husfeldt and
// Rauhe transfers to enumeration update time. The package provides the
// enumeration-based solver (the reduction, run forward) and a simple
// walk-to-root baseline, plus the reference curve used by experiment E7.
package markedanc

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/tree"
	"repro/internal/tva"
)

// Solver answers existential marked ancestor queries under mark updates.
type Solver interface {
	// Mark marks a node.
	Mark(id tree.NodeID) error
	// Unmark unmarks a node.
	Unmark(id tree.NodeID) error
	// Query reports whether the node has a marked proper ancestor.
	Query(id tree.NodeID) (bool, error)
}

// Labels used by the reduction.
const (
	Marked   tree.Label = "m"
	Unmarked tree.Label = "u"
	Special  tree.Label = "s"
)

// EnumerationSolver is the Theorem 9.2 reduction: the tree is labeled
// marked/unmarked, marks toggle via relabel updates, and a query labels
// the probe node special, asks whether the enumeration is nonempty, and
// restores the label. Both operations cost O(log n · poly(|Q|)).
type EnumerationSolver struct {
	e *core.TreeEnumerator
}

// NewEnumerationSolver builds the solver over a copy-free view of the
// tree, which must use the Unmarked label everywhere initially.
func NewEnumerationSolver(t *tree.Unranked) (*EnumerationSolver, error) {
	q := tva.MarkedAncestor(Marked, Unmarked, Special, 0)
	e, err := core.NewTreeEnumerator(t, q, core.Options{})
	if err != nil {
		return nil, err
	}
	return &EnumerationSolver{e: e}, nil
}

// Mark marks a node (relabel to m).
func (s *EnumerationSolver) Mark(id tree.NodeID) error { return s.e.Relabel(id, Marked) }

// Unmark unmarks a node (relabel to u).
func (s *EnumerationSolver) Unmark(id tree.NodeID) error { return s.e.Relabel(id, Unmarked) }

// Query relabels the node to special, tests nonemptiness of Φ, and
// restores the node.
func (s *EnumerationSolver) Query(id tree.NodeID) (bool, error) {
	n := s.e.Tree().Node(id)
	if n == nil {
		return false, fmt.Errorf("markedanc: node %d does not exist", id)
	}
	old := n.Label
	if err := s.e.Relabel(id, Special); err != nil {
		return false, err
	}
	ans := s.e.NonEmpty()
	if err := s.e.Relabel(id, old); err != nil {
		return false, err
	}
	return ans, nil
}

// Stats exposes the underlying enumerator's stats.
func (s *EnumerationSolver) Stats() core.Stats { return s.e.Stats() }

// WalkSolver is the trivial baseline: O(1) updates, O(depth) queries by
// walking to the root. On the deep instances of experiment E7 its query
// time is linear while the enumeration solver stays logarithmic.
type WalkSolver struct {
	t     *tree.Unranked
	marks map[tree.NodeID]bool
}

// NewWalkSolver builds the baseline solver.
func NewWalkSolver(t *tree.Unranked) *WalkSolver {
	return &WalkSolver{t: t, marks: map[tree.NodeID]bool{}}
}

// Mark marks a node.
func (s *WalkSolver) Mark(id tree.NodeID) error {
	if s.t.Node(id) == nil {
		return fmt.Errorf("markedanc: node %d does not exist", id)
	}
	s.marks[id] = true
	return nil
}

// Unmark unmarks a node.
func (s *WalkSolver) Unmark(id tree.NodeID) error {
	if s.t.Node(id) == nil {
		return fmt.Errorf("markedanc: node %d does not exist", id)
	}
	delete(s.marks, id)
	return nil
}

// Query walks to the root.
func (s *WalkSolver) Query(id tree.NodeID) (bool, error) {
	n := s.t.Node(id)
	if n == nil {
		return false, fmt.Errorf("markedanc: node %d does not exist", id)
	}
	for p := n.Parent; p != nil; p = p.Parent {
		if s.marks[p.ID] {
			return true, nil
		}
	}
	return false, nil
}

// LowerBoundCurve returns the Ω(log n / log log n) reference value of
// Theorem 9.2 for instance size n (up to the constant the experiment
// normalizes away).
func LowerBoundCurve(n int) float64 {
	if n < 4 {
		return 1
	}
	return math.Log2(float64(n)) / math.Log2(math.Log2(float64(n)))
}
