package markedanc

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
	"repro/internal/tva"
)

// TestSolversAgree fuzzes both solvers against each other on random
// trees with random mark toggles and queries.
func TestSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		ut := tva.RandomUnrankedTree(rng, 2+rng.Intn(30), []tree.Label{Unmarked})
		// Normalize all labels to Unmarked.
		for _, n := range ut.Nodes() {
			if err := ut.Relabel(n.ID, Unmarked); err != nil {
				t.Fatal(err)
			}
		}
		walk := NewWalkSolver(ut)
		enum, err := NewEnumerationSolver(ut)
		if err != nil {
			t.Fatal(err)
		}
		nodes := ut.Nodes()
		marked := map[tree.NodeID]bool{}
		for step := 0; step < 60; step++ {
			n := nodes[rng.Intn(len(nodes))]
			switch rng.Intn(3) {
			case 0:
				if err := walk.Mark(n.ID); err != nil {
					t.Fatal(err)
				}
				if err := enum.Mark(n.ID); err != nil {
					t.Fatal(err)
				}
				marked[n.ID] = true
			case 1:
				if err := walk.Unmark(n.ID); err != nil {
					t.Fatal(err)
				}
				if err := enum.Unmark(n.ID); err != nil {
					t.Fatal(err)
				}
				delete(marked, n.ID)
			default:
				w, err := walk.Query(n.ID)
				if err != nil {
					t.Fatal(err)
				}
				e, err := enum.Query(n.ID)
				if err != nil {
					t.Fatal(err)
				}
				if w != e {
					t.Fatalf("trial %d step %d: walk=%v enum=%v for node %d", trial, step, w, e, n.ID)
				}
				// Independent check.
				want := false
				for p := n.Parent; p != nil; p = p.Parent {
					if marked[p.ID] {
						want = true
					}
				}
				if w != want {
					t.Fatalf("walk solver wrong: %v vs %v", w, want)
				}
			}
		}
	}
}

func TestQueryRestoresLabel(t *testing.T) {
	ut, _ := tree.ParseUnranked("(u (u) (u (u)))")
	enum, err := NewEnumerationSolver(ut)
	if err != nil {
		t.Fatal(err)
	}
	nodes := ut.Nodes()
	target := nodes[len(nodes)-1]
	if _, err := enum.Query(target.ID); err != nil {
		t.Fatal(err)
	}
	if target.Label != Unmarked {
		t.Fatalf("label not restored: %s", target.Label)
	}
	// Errors for missing nodes.
	if _, err := enum.Query(tree.NodeID(999)); err == nil {
		t.Fatal("expected error")
	}
	w := NewWalkSolver(ut)
	if err := w.Mark(tree.NodeID(999)); err == nil {
		t.Fatal("expected error")
	}
	if err := w.Unmark(tree.NodeID(999)); err == nil {
		t.Fatal("expected error")
	}
	if _, err := w.Query(tree.NodeID(999)); err == nil {
		t.Fatal("expected error")
	}
}

func TestLowerBoundCurve(t *testing.T) {
	if LowerBoundCurve(2) != 1 {
		t.Fatal("small n should clamp to 1")
	}
	if LowerBoundCurve(1<<20) <= LowerBoundCurve(1<<10) {
		t.Fatal("curve should grow")
	}
}
