package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/enumerate"
	"repro/internal/tree"
	"repro/internal/tva"
)

var alphaAB = []tree.Label{"a", "b"}

// TestRebuildMatchesIncremental compares the rebuild baseline and the
// incremental enumerator on the same edit sequence.
func TestRebuildMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := tva.SelectLabel(alphaAB, "a", 0)
	ut := tva.RandomUnrankedTree(rng, 10, alphaAB)
	inc, err := core.NewTreeEnumerator(ut.Clone(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reb, err := NewRebuildEnumerator(ut.Clone(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 25; step++ {
		nodes := inc.Tree().Nodes()
		n := nodes[rng.Intn(len(nodes))]
		l := alphaAB[rng.Intn(2)]
		switch rng.Intn(3) {
		case 0:
			if err := inc.Relabel(n.ID, l); err != nil {
				t.Fatal(err)
			}
			if err := reb.Relabel(n.ID, l); err != nil {
				t.Fatal(err)
			}
		case 1:
			v1, err := inc.InsertFirstChild(n.ID, l)
			if err != nil {
				t.Fatal(err)
			}
			v2, err := reb.InsertFirstChild(n.ID, l)
			if err != nil {
				t.Fatal(err)
			}
			if v1 != v2 {
				t.Fatalf("diverging node IDs %d vs %d", v1, v2)
			}
		default:
			if n.IsLeaf() && n.Parent != nil {
				if err := inc.Delete(n.ID); err != nil {
					t.Fatal(err)
				}
				if err := reb.Delete(n.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		a := map[string]bool{}
		for asg := range inc.Results() {
			a[asg.Key()] = true
		}
		b := map[string]bool{}
		for asg := range reb.Results() {
			b[asg.Key()] = true
		}
		if len(a) != len(b) {
			t.Fatalf("step %d: incremental %d vs rebuild %d", step, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("step %d: rebuild missing %q", step, k)
			}
		}
	}
	// InsertRightSibling parity too.
	nodes := inc.Tree().Nodes()
	for _, n := range nodes {
		if n.Parent != nil {
			v1, err := inc.InsertRightSibling(n.ID, "b")
			if err != nil {
				t.Fatal(err)
			}
			v2, err := reb.InsertRightSibling(n.ID, "b")
			if err != nil {
				t.Fatal(err)
			}
			if v1 != v2 || inc.Count() != reb.Count() {
				t.Fatal("insertR parity broken")
			}
			break
		}
	}
}

// TestDeterminizeFirstExplodes verifies the E5 premise: the determinized
// route grows much faster in |Q| than the nondeterministic one.
func TestDeterminizeFirstExplodes(t *testing.T) {
	alpha := []tree.Label{"a", "b"}
	var lastRatio float64
	for k := 1; k <= 4; k++ {
		q := tva.DescendantAtDepth(alpha, "b", k, 0)
		db, st, err := DeterminizeFirst(q)
		if err != nil {
			t.Fatal(err)
		}
		if !db.IsDeterministic() {
			t.Fatal("determinize-first route produced a nondeterministic automaton")
		}
		if st.DetStates < st.NondetStates {
			// Trimming may shrink it on tiny k, but by k=4 the blowup
			// must show.
			if k >= 4 {
				t.Fatalf("k=%d: det %d < nondet %d", k, st.DetStates, st.NondetStates)
			}
		}
		lastRatio = float64(st.DetStates) / float64(st.NondetStates)
	}
	if lastRatio < 1.5 {
		t.Fatalf("expected determinization blowup, ratio %.2f", lastRatio)
	}
}

// TestStaticBinaryRelabel checks the ABM'18-style comparison point.
func TestStaticBinaryRelabel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	raw := tva.RandomBinary(rng, 2, alphaAB, tree.NewVarSet(0), 0.5)
	bt := tva.RandomBinaryTree(rng, 6, alphaAB)
	s, err := NewStaticBinaryRelabel(bt, raw, enumerate.ModeIndexed)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		want, err := raw.SatisfyingAssignments(bt, 8)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for asg := range s.Results() {
			got[asg.Key()] = true
		}
		if len(got) != len(want) {
			t.Fatalf("got %d, want %d", len(got), len(want))
		}
	}
	check()
	leaves := bt.Leaves()
	for step := 0; step < 10; step++ {
		s.Relabel(leaves[rng.Intn(len(leaves))], alphaAB[rng.Intn(2)])
		check()
	}
}
