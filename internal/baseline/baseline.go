// Package baseline implements the comparison algorithms that reproduce
// the Table 1 landscape and the combined-complexity contrast of
// experiment E5:
//
//   - RebuildEnumerator: updates recompute the whole enumeration
//     structure from scratch (linear update time) — the static
//     algorithms of Bagan / Kazana-Segoufin made update-aware naively;
//   - NaiveDelay: the paper's own pipeline but with the naive box
//     enumeration, whose delay grows with the circuit depth — the
//     polylog-delay regime of Losemann-Martens;
//   - DeterminizeFirst: determinizes the query automaton before running
//     the pipeline — the prior-work requirement the paper's combined
//     tractability removes (exponential in |Q|).
package baseline

import (
	"iter"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/enumerate"
	"repro/internal/forest"
	"repro/internal/tree"
	"repro/internal/tva"
)

// RebuildEnumerator re-runs the full preprocessing on every update. Its
// enumeration matches the paper's (indexed, constant delay); only the
// update cost differs: Θ(|T|) per edit.
type RebuildEnumerator struct {
	t    *tree.Unranked
	q    *tva.Unranked
	e    *core.TreeEnumerator
	opts core.Options
}

// NewRebuildEnumerator preprocesses once.
func NewRebuildEnumerator(t *tree.Unranked, q *tva.Unranked, opts core.Options) (*RebuildEnumerator, error) {
	e, err := core.NewTreeEnumerator(t.Clone(), q, opts)
	if err != nil {
		return nil, err
	}
	return &RebuildEnumerator{t: t, q: q, e: e, opts: opts}, nil
}

func (r *RebuildEnumerator) rebuild() error {
	e, err := core.NewTreeEnumerator(r.t.Clone(), r.q, r.opts)
	if err != nil {
		return err
	}
	r.e = e
	return nil
}

// Tree returns the maintained tree.
func (r *RebuildEnumerator) Tree() *tree.Unranked { return r.t }

// Relabel edits the tree and rebuilds from scratch.
func (r *RebuildEnumerator) Relabel(id tree.NodeID, l tree.Label) error {
	if err := r.t.Relabel(id, l); err != nil {
		return err
	}
	return r.rebuild()
}

// InsertFirstChild edits the tree and rebuilds from scratch.
func (r *RebuildEnumerator) InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, err := r.t.InsertFirstChild(id, l)
	if err != nil {
		return 0, err
	}
	return v.ID, r.rebuild()
}

// InsertRightSibling edits the tree and rebuilds from scratch.
func (r *RebuildEnumerator) InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, err := r.t.InsertRightSibling(id, l)
	if err != nil {
		return 0, err
	}
	return v.ID, r.rebuild()
}

// Delete edits the tree and rebuilds from scratch.
func (r *RebuildEnumerator) Delete(id tree.NodeID) error {
	if err := r.t.Delete(id); err != nil {
		return err
	}
	return r.rebuild()
}

// DeleteSubtree edits the tree and rebuilds from scratch.
func (r *RebuildEnumerator) DeleteSubtree(id tree.NodeID) error {
	if _, _, err := r.t.DeleteSubtree(id); err != nil {
		return err
	}
	return r.rebuild()
}

// MoveSubtreeFirstChild edits the tree and rebuilds from scratch.
func (r *RebuildEnumerator) MoveSubtreeFirstChild(id, dest tree.NodeID) error {
	if err := r.t.MoveSubtreeFirstChild(id, dest); err != nil {
		return err
	}
	return r.rebuild()
}

// MoveSubtreeRightSibling edits the tree and rebuilds from scratch.
func (r *RebuildEnumerator) MoveSubtreeRightSibling(id, dest tree.NodeID) error {
	if err := r.t.MoveSubtreeRightSibling(id, dest); err != nil {
		return err
	}
	return r.rebuild()
}

// InsertSubtreeFirstChild edits the tree and rebuilds from scratch. The
// grafted copy's node IDs match the engine's only if both sides consume
// IDs in lockstep, which holds when the same edit script drives both.
func (r *RebuildEnumerator) InsertSubtreeFirstChild(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, error) {
	v, err := r.t.GraftFirstChild(id, frag)
	if err != nil {
		return 0, err
	}
	return v.ID, r.rebuild()
}

// InsertSubtreeRightSibling edits the tree and rebuilds from scratch.
func (r *RebuildEnumerator) InsertSubtreeRightSibling(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, error) {
	v, err := r.t.GraftRightSibling(id, frag)
	if err != nil {
		return 0, err
	}
	return v.ID, r.rebuild()
}

// Results enumerates on the current structure.
func (r *RebuildEnumerator) Results() iter.Seq[tree.Assignment] { return r.e.Results() }

// Count drains Results.
func (r *RebuildEnumerator) Count() int { return r.e.Count() }

// DeterminizeFirstStats preprocesses the query by translating it to the
// binary term alphabet and then determinizing, returning the state and
// transition counts of both routes. Experiment E5 sweeps |Q| and shows
// the nondeterministic route staying polynomial while determinization
// explodes; the numbers themselves are the result (the determinized
// automaton still runs through the same pipeline).
type DeterminizeFirstStats struct {
	NondetStates int
	NondetSize   int
	DetStates    int
	DetSize      int
}

// DeterminizeFirst translates and then determinizes the query automaton,
// returning the determinized binary TVA and the size comparison.
func DeterminizeFirst(q *tva.Unranked) (*tva.Binary, DeterminizeFirstStats, error) {
	nb, err := forest.Translate(q)
	if err != nil {
		return nil, DeterminizeFirstStats{}, err
	}
	db := tva.Determinize(nb).Trim()
	return db, DeterminizeFirstStats{
		NondetStates: nb.NumStates,
		NondetSize:   nb.Size(),
		DetStates:    db.NumStates,
		DetSize:      db.Size(),
	}, nil
}

// StaticBinaryRelabel is the [Amarilli-Bourhis-Mengel 2018] style
// comparison point: a circuit built directly on a binary tree (no forest
// encoding), supporting only relabel updates with cost proportional to
// the depth of that tree. Used by the E8 ablation.
type StaticBinaryRelabel struct {
	builder *circuit.Builder
	tree    *tree.Binary
	boxes   map[*tree.BNode]*enumerate.IndexedBox
	parents map[*tree.BNode]*tree.BNode
	root    *enumerate.IndexedBox
	mode    enumerate.Mode
}

// NewStaticBinaryRelabel builds the circuit bottom-up on the binary tree
// as-is.
func NewStaticBinaryRelabel(t *tree.Binary, a *tva.Binary, mode enumerate.Mode) (*StaticBinaryRelabel, error) {
	h := a
	if !a.Homogenized {
		h = a.Homogenize()
	}
	bd, err := circuit.NewBuilder(h)
	if err != nil {
		return nil, err
	}
	s := &StaticBinaryRelabel{
		builder: bd,
		tree:    t,
		boxes:   map[*tree.BNode]*enumerate.IndexedBox{},
		parents: map[*tree.BNode]*tree.BNode{},
		mode:    mode,
	}
	indexed := mode == enumerate.ModeIndexed
	var rec func(n *tree.BNode) *enumerate.IndexedBox
	rec = func(n *tree.BNode) *enumerate.IndexedBox {
		var b *enumerate.IndexedBox
		if n.IsLeaf() {
			b = enumerate.Wrap(bd.LeafBox(n.Label, n.ID), nil, nil, indexed)
		} else {
			s.parents[n.Left] = n
			s.parents[n.Right] = n
			l, r := rec(n.Left), rec(n.Right)
			b = enumerate.Wrap(bd.InnerBox(n.Label, n.ID, l.Box, r.Box), l, r, indexed)
		}
		s.boxes[n] = b
		return b
	}
	s.root = rec(t.Root)
	return s, nil
}

// Relabel updates a node label and rebuilds the boxes on the path to the
// root: O(depth(T)·poly(|Q|)), the cost the balanced encoding avoids.
func (s *StaticBinaryRelabel) Relabel(n *tree.BNode, l tree.Label) {
	n.Label = l
	indexed := s.mode == enumerate.ModeIndexed
	for cur := n; cur != nil; cur = s.parents[cur] {
		var b *enumerate.IndexedBox
		if cur.IsLeaf() {
			b = enumerate.Wrap(s.builder.LeafBox(cur.Label, cur.ID), nil, nil, indexed)
		} else {
			l, r := s.boxes[cur.Left], s.boxes[cur.Right]
			b = enumerate.Wrap(s.builder.InnerBox(cur.Label, cur.ID, l.Box, r.Box), l, r, indexed)
		}
		s.boxes[cur] = b
	}
	s.root = s.boxes[s.tree.Root]
}

// Results enumerates the satisfying assignments.
func (s *StaticBinaryRelabel) Results() iter.Seq[tree.Assignment] {
	gamma, emptyOK := s.builder.RootAccepting(&circuit.Circuit{Root: s.root.Box})
	return enumerate.Assignments(s.root, gamma, emptyOK, s.mode)
}

// Count drains Results.
func (s *StaticBinaryRelabel) Count() int {
	n := 0
	for range s.Results() {
		n++
	}
	return n
}
