//go:build !amd64 || purego

package bitset

import "runtime"

// Portable dispatch: on non-amd64 targets, and under -tags purego on
// any target, every kernel wrapper aliases the generic Go loop in
// kernels.go directly — no feature detection, no assembly, no runtime
// branching. CI builds and tests this configuration on every push so
// the fallback can never rot behind the vector path.

func kernelInfo() KernelInfo {
	return KernelInfo{Arch: runtime.GOARCH, PureGo: true, Vector: "generic"}
}

func forceGeneric() (restore func()) { return func() {} }

func orWords(dst, src []uint64)     { orWordsGeneric(dst, src) }
func andWords(dst, src []uint64)    { andWordsGeneric(dst, src) }
func andNotWords(dst, src []uint64) { andNotWordsGeneric(dst, src) }

func intersectWords(a, b []uint64) bool { return intersectWordsGeneric(a, b) }
func anyWords(p []uint64) bool          { return anyWordsGeneric(p) }
func popcountWords(p []uint64) int      { return popcountWordsGeneric(p) }

func composeRows(dst, a, b []uint64, rows, aStride, bStride int) {
	composeRowsGeneric(dst, a, b, rows, aStride, bStride)
}
