//go:build amd64 && !purego

package bitset

import "runtime"

// This file is the amd64 half of the kernel dispatch: CPUID feature
// detection at init (dependency-free — the cpuid/xgetbv leaves are two
// tiny assembly stubs, so go.mod stays empty), package-level flags
// selected ONCE, and thin wrappers that branch on those flags before
// calling either the AVX2/POPCNT assembly (kernels_amd64.s) or the
// portable loops (kernels.go). The branch is a single predictable
// compare per kernel call; everything else about the hot paths —
// zero allocations, //go:noescape argument passing — is unchanged, so
// the alloc guards of circuit and enumerate hold on both paths.
//
// Thresholds: the vector kernels win on multi-word operands and only
// there (a one-word OR is one scalar instruction; a YMM round-trip
// plus VZEROUPPER loses). Each wrapper falls back to the generic loop
// below its kernel's profitable length, so single-word boxes — the
// common case of the paper's small-|Q| regime — never pay vector
// overhead, and wide boxes (the multi-word regime the E-kernel
// experiment measures) get the full SIMD width.

// Dispatch state. cpuAVX2/cpuPOPCNT record what CPUID detected (frozen
// after init, reported by Kernels); useAVX2/usePOPCNT gate the actual
// dispatch and are flipped only by ForceGeneric under test harnesses.
var (
	cpuAVX2   bool
	cpuPOPCNT bool
	useAVX2   bool
	usePOPCNT bool
)

// Minimum operand lengths (in words) for vector dispatch.
const (
	minVecOr    = 4 // one YMM register's worth
	minVecAny   = 8
	minVecCount = 8
)

// cpuid and xgetbv are the raw instruction stubs (cpuid_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	cpuPOPCNT = c1&(1<<23) != 0
	hasOSXSAVE := c1&(1<<27) != 0
	hasAVX := c1&(1<<28) != 0
	// AVX2 needs the CPU feature AND OS support for saving YMM state
	// (XCR0 bits 1|2 via xgetbv, only readable when OSXSAVE is set).
	osAVX := false
	if hasOSXSAVE {
		xa, _ := xgetbv()
		osAVX = xa&6 == 6
	}
	if maxID >= 7 {
		_, b7, _, _ := cpuid(7, 0)
		cpuAVX2 = hasAVX && osAVX && b7&(1<<5) != 0
	}
	useAVX2 = cpuAVX2
	usePOPCNT = cpuPOPCNT
}

func kernelInfo() KernelInfo {
	v := "generic"
	if useAVX2 {
		v = "avx2"
	}
	return KernelInfo{Arch: runtime.GOARCH, PureGo: false, AVX2: cpuAVX2, POPCNT: cpuPOPCNT, Vector: v}
}

func forceGeneric() (restore func()) {
	sa, sp := useAVX2, usePOPCNT
	useAVX2, usePOPCNT = false, false
	return func() { useAVX2, usePOPCNT = sa, sp }
}

// Assembly kernels (kernels_amd64.s). All are //go:noescape so that
// passing &slice[0] never forces the backing array to the heap — the
// zero-allocation guarantees of the arena-carved hot paths depend on it.

//go:noescape
func orWordsAVX2(dst, src *uint64, n int)

//go:noescape
func andWordsAVX2(dst, src *uint64, n int)

//go:noescape
func andNotWordsAVX2(dst, src *uint64, n int)

//go:noescape
func intersectsAVX2(a, b *uint64, n int) bool

//go:noescape
func anyWordsAVX2(p *uint64, n int) bool

//go:noescape
func popcntWords(p *uint64, n int) int

//go:noescape
func composeRowsAVX2(dst, a, b *uint64, rows, aStride, bStride int)

// Dispatched wrappers. Each falls back to the generic loop when the
// vector kernels are unavailable, below threshold, or when the operand
// shapes would make the generic path's bounds panic — the fallback
// preserves the exact panic behavior of the portable code.

func orWords(dst, src []uint64) {
	if n := len(src); useAVX2 && n >= minVecOr && len(dst) >= n {
		orWordsAVX2(&dst[0], &src[0], n)
		return
	}
	orWordsGeneric(dst, src)
}

func andWords(dst, src []uint64) {
	if n := len(src); useAVX2 && n >= minVecOr && len(dst) >= n {
		andWordsAVX2(&dst[0], &src[0], n)
		return
	}
	andWordsGeneric(dst, src)
}

func andNotWords(dst, src []uint64) {
	if n := len(src); useAVX2 && n >= minVecOr && len(dst) >= n {
		andNotWordsAVX2(&dst[0], &src[0], n)
		return
	}
	andNotWordsGeneric(dst, src)
}

func intersectWords(a, b []uint64) bool {
	if n := len(b); useAVX2 && n >= minVecOr && len(a) >= n {
		return intersectsAVX2(&a[0], &b[0], n)
	}
	return intersectWordsGeneric(a, b)
}

func anyWords(p []uint64) bool {
	if n := len(p); useAVX2 && n >= minVecAny {
		return anyWordsAVX2(&p[0], n)
	}
	return anyWordsGeneric(p)
}

func popcountWords(p []uint64) int {
	if n := len(p); usePOPCNT && n >= minVecCount {
		return popcntWords(&p[0], n)
	}
	return popcountWordsGeneric(p)
}

func composeRows(dst, a, b []uint64, rows, aStride, bStride int) {
	// bStride >= 2: with single-word b-rows there is nothing to
	// vectorize and the accumulator-in-register generic loop wins.
	if useAVX2 && bStride >= 2 && rows > 0 && len(a) > 0 && len(b) > 0 && len(dst) > 0 {
		composeRowsAVX2(&dst[0], &a[0], &b[0], rows, aStride, bStride)
		return
	}
	composeRowsGeneric(dst, a, b, rows, aStride, bStride)
}
