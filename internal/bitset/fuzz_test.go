package bitset

import "testing"

// Differential fuzz targets: every dispatched kernel against the
// portable Go loop, bit for bit. The f.Add seeds plus the committed
// corpus under testdata/fuzz run as ordinary tests on every `go test`
// (including the -tags purego and -race CI legs, where the two paths
// coincide and the targets check self-consistency); `go test -fuzz`
// explores beyond them. Shapes are derived from fuzzer bytes so odd
// strides, tail words, thresholds, and empty operands all fall out of
// the input space.

// fuzzWords deterministically expands data into n words, cycling
// through data so short inputs still populate every word.
func fuzzWords(data []byte, n int) []uint64 {
	out := make([]uint64, n)
	if len(data) == 0 {
		return out
	}
	for i := 0; i < n*8; i++ {
		out[i/8] |= uint64(data[i%len(data)]) << uint(8*(i%8))
	}
	return out
}

// fuzzMatrix builds a rows×cols matrix from fuzzer bytes, restoring the
// padding-bits-zero invariant that NewMatrix/Set maintain.
func fuzzMatrix(data []byte, rows, cols int) Matrix {
	stride := (cols + 63) / 64
	m := MatrixOn(fuzzWords(data, rows*stride), rows, cols)
	if extra := cols & 63; extra != 0 {
		mask := uint64(1)<<uint(extra) - 1
		for i := 0; i < rows; i++ {
			m.bits[(i+1)*stride-1] &= mask
		}
	}
	return m
}

func FuzzOrWords(f *testing.F) {
	f.Add([]byte{0xff}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, uint8(4))
	f.Add([]byte{0xaa, 0x55, 0, 0, 0x80}, uint8(17))
	f.Add([]byte{}, uint8(65))
	f.Add([]byte{0x01, 0x80, 0xfe}, uint8(100))
	f.Fuzz(func(t *testing.T, data []byte, n uint8) {
		words := int(n)
		dst := fuzzWords(data, words)
		var src []uint64
		if len(data) > 0 {
			src = fuzzWords(data[len(data)/2:], words)
		} else {
			src = make([]uint64, words)
		}

		ops := []struct {
			name string
			run  func(d, s []uint64)
		}{
			{"or", orWords},
			{"and", andWords},
			{"andnot", andNotWords},
		}
		for _, op := range ops {
			dv := append([]uint64(nil), dst...)
			op.run(dv, src)
			dg := append([]uint64(nil), dst...)
			restore := ForceGeneric()
			op.run(dg, src)
			restore()
			for w := range dv {
				if dv[w] != dg[w] {
					t.Fatalf("%s word %d: vector %#x generic %#x", op.name, w, dv[w], dg[w])
				}
			}
		}

		gotI := intersectWords(dst, src)
		gotA := anyWords(dst)
		restore := ForceGeneric()
		wantI := intersectWords(dst, src)
		wantA := anyWords(dst)
		restore()
		if gotI != wantI {
			t.Fatalf("intersect: vector %v generic %v", gotI, wantI)
		}
		if gotA != wantA {
			t.Fatalf("any: vector %v generic %v", gotA, wantA)
		}
	})
}

func FuzzComposeInto(f *testing.F) {
	f.Add([]byte{0xff, 0x01}, uint8(1), uint8(1), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4), uint8(70), uint8(65))
	f.Add([]byte{0xaa, 0x55, 0x0f}, uint8(9), uint8(33), uint8(200))
	f.Add([]byte{0x80}, uint8(16), uint8(64), uint8(129))
	f.Fuzz(func(t *testing.T, data []byte, rb, mb, cb uint8) {
		rows := int(rb%24) + 1
		mid := int(mb) + 1
		cols := int(cb) + 1
		a := fuzzMatrix(data, rows, mid)
		var b Matrix
		if len(data) > 0 {
			b = fuzzMatrix(data[len(data)/3:], mid, cols)
		} else {
			b = NewMatrix(mid, cols)
		}

		want := ComposeNaive(a, b)
		if got := Compose(a, b); !got.Equal(want) {
			t.Fatalf("vector Compose %dx%dx%d differs from naive", rows, mid, cols)
		}
		restore := ForceGeneric()
		gen := Compose(a, b)
		restore()
		if !gen.Equal(want) {
			t.Fatalf("generic Compose %dx%dx%d differs from naive", rows, mid, cols)
		}

		// Batch form must agree with the single-pair form.
		dst := []Matrix{NewMatrix(rows, cols)}
		ComposeManyInto(dst, []Matrix{a}, b)
		if !dst[0].Equal(want) {
			t.Fatalf("ComposeManyInto %dx%dx%d differs from naive", rows, mid, cols)
		}
	})
}

func FuzzCount(f *testing.F) {
	f.Add([]byte{0xff, 0xff}, uint8(3), uint8(64))
	f.Add([]byte{1}, uint8(20), uint8(130))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, rb, cb uint8) {
		rows := int(rb%32) + 1
		cols := int(cb) + 1
		m := fuzzMatrix(data, rows, cols)

		want := 0
		for i := 0; i < rows; i++ {
			row := m.Row(i)
			for j := 0; j < cols; j++ {
				if row.Has(j) {
					want++
				}
			}
		}
		if got := m.Count(); got != want {
			t.Fatalf("vector Count %d, per-bit %d", got, want)
		}
		restore := ForceGeneric()
		gen := m.Count()
		empty := m.Empty()
		restore()
		if gen != want {
			t.Fatalf("generic Count %d, per-bit %d", gen, want)
		}
		if m.Empty() != empty || m.Empty() != (want == 0) {
			t.Fatal("Empty disagrees between paths")
		}
	})
}

func FuzzNonEmptyRows(f *testing.F) {
	f.Add([]byte{0xf0}, uint8(7), uint8(9))
	f.Add([]byte{0, 0, 1}, uint8(40), uint8(200))
	f.Add([]byte{0xff}, uint8(64), uint8(65))
	f.Fuzz(func(t *testing.T, data []byte, rb, cb uint8) {
		rows := int(rb%96) + 1
		cols := int(cb) + 1
		m := fuzzMatrix(data, rows, cols)

		want := NewSet(rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if m.Get(i, j) {
					want.Add(i)
					break
				}
			}
		}
		if got := m.NonEmptyRowsInto(NewSet(rows)); !got.Equal(want) {
			t.Fatalf("vector NonEmptyRows %v, want %v", got, want)
		}
		restore := ForceGeneric()
		gen := m.NonEmptyRowsInto(NewSet(rows))
		restore()
		if !gen.Equal(want) {
			t.Fatalf("generic NonEmptyRows %v, want %v", gen, want)
		}

		// RowsIntersectingInto against the full-universe set must agree
		// with NonEmptyRows.
		g := NewSet(cols)
		for j := 0; j < cols; j++ {
			g.Add(j)
		}
		if got := m.RowsIntersectingInto(g, NewSet(rows)); !got.Equal(want) {
			t.Fatalf("RowsIntersectingInto(universe) %v, want %v", got, want)
		}
	})
}
