package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(130)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) = false after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	if s.First() != 0 {
		t.Fatalf("First = %d, want 0", s.First())
	}
	s.Remove(0)
	s.Remove(64)
	if s.Has(0) || s.Has(64) {
		t.Fatal("Remove did not remove")
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	got := s.Elems()
	want := []int{1, 63, 65, 127, 128, 129}
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
}

func TestSetAddRemoveIdempotent(t *testing.T) {
	s := NewSet(100)
	s.Add(42)
	s.Add(42)
	if s.Count() != 1 {
		t.Fatalf("Count = %d after double Add, want 1", s.Count())
	}
	s.Remove(42)
	s.Remove(42)
	if s.Count() != 0 {
		t.Fatalf("Count = %d after double Remove, want 0", s.Count())
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(70)
	b := NewSet(70)
	a.Add(1)
	a.Add(65)
	b.Add(2)
	b.Add(65)

	u := a.Clone()
	u.Or(b)
	if u.Count() != 3 || !u.Has(1) || !u.Has(2) || !u.Has(65) {
		t.Fatalf("Or wrong: %v", u)
	}

	i := a.Clone()
	i.And(b)
	if i.Count() != 1 || !i.Has(65) {
		t.Fatalf("And wrong: %v", i)
	}

	d := a.Clone()
	d.AndNot(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Fatalf("AndNot wrong: %v", d)
	}

	if !a.Intersects(b) {
		t.Fatal("Intersects should be true")
	}
	c := NewSet(70)
	c.Add(3)
	if a.Intersects(c) {
		t.Fatal("Intersects should be false")
	}
}

func TestSetCloneIndependence(t *testing.T) {
	a := NewSet(10)
	a.Add(3)
	b := a.Clone()
	b.Add(4)
	if a.Has(4) {
		t.Fatal("Clone shares storage")
	}
	if !b.Has(3) {
		t.Fatal("Clone lost element")
	}
}

func TestSetForEachEarlyStop(t *testing.T) {
	s := NewSet(200)
	for i := 0; i < 200; i += 3 {
		s.Add(i)
	}
	n := 0
	s.ForEach(func(int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(10)
	s.Add(1)
	s.Add(5)
	if got := s.String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := NewSet(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestSetEqual(t *testing.T) {
	a := NewSet(10)
	b := NewSet(10)
	a.Add(7)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.Add(7)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	if a.Equal(NewSet(11)) {
		t.Fatal("different capacities reported equal")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 70)
	m.Set(0, 0)
	m.Set(1, 65)
	m.Set(2, 69)
	if !m.Get(0, 0) || !m.Get(1, 65) || !m.Get(2, 69) {
		t.Fatal("Get/Set mismatch")
	}
	if m.Get(0, 1) {
		t.Fatal("spurious entry")
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d", m.Count())
	}
	m.Unset(1, 65)
	if m.Get(1, 65) {
		t.Fatal("Unset failed")
	}

	r := m.Row(2)
	if !r.Has(69) || r.Count() != 1 {
		t.Fatal("Row wrong")
	}
	// Row shares storage.
	r.Add(1)
	if !m.Get(2, 1) {
		t.Fatal("Row does not share storage")
	}
}

func TestMatrixNonEmptyRowsAndColUnion(t *testing.T) {
	m := NewMatrix(4, 5)
	m.Set(1, 2)
	m.Set(3, 0)
	m.Set(3, 4)
	ne := m.NonEmptyRows()
	if ne.Count() != 2 || !ne.Has(1) || !ne.Has(3) {
		t.Fatalf("NonEmptyRows = %v", ne)
	}
	rows := NewSet(4)
	rows.Add(1)
	rows.Add(3)
	u := m.ColUnion(rows)
	if u.Count() != 3 || !u.Has(0) || !u.Has(2) || !u.Has(4) {
		t.Fatalf("ColUnion = %v", u)
	}
}

func TestIdentityCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 17, 23, 0.3)
	id17 := Identity(17)
	id23 := Identity(23)
	if !Compose(id17, m).Equal(m) {
		t.Fatal("I∘m != m")
	}
	if !Compose(m, id23).Equal(m) {
		t.Fatal("m∘I != m")
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int, p float64) Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < p {
				m.Set(i, j)
			}
		}
	}
	return m
}

// TestComposeAgreesWithNaive is the core property: the word-packed
// composition must agree with the textbook join on random relations.
func TestComposeAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		r := 1 + rng.Intn(40)
		m := 1 + rng.Intn(40)
		c := 1 + rng.Intn(100)
		a := randomMatrix(rng, r, m, rng.Float64())
		b := randomMatrix(rng, m, c, rng.Float64())
		fast := Compose(a, b)
		slow := ComposeNaive(a, b)
		if !fast.Equal(slow) {
			t.Fatalf("trial %d: Compose != ComposeNaive\nA:\n%sB:\n%sfast:\n%sslow:\n%s",
				trial, a, b, fast, slow)
		}
	}
}

// TestComposeAssociative checks (a∘b)∘c == a∘(b∘c), which the enumeration
// algorithms rely on when folding chains of reachability relations.
func TestComposeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n1, n2, n3, n4 := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := randomMatrix(rng, n1, n2, 0.3)
		b := randomMatrix(rng, n2, n3, 0.3)
		c := randomMatrix(rng, n3, n4, 0.3)
		left := Compose(Compose(a, b), c)
		right := Compose(a, Compose(b, c))
		if !left.Equal(right) {
			t.Fatalf("trial %d: composition not associative", trial)
		}
	}
}

func TestComposeDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Compose(NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestQuickSetRoundTrip(t *testing.T) {
	f := func(elems []uint16) bool {
		s := NewSet(1 << 16)
		seen := map[int]bool{}
		for _, e := range elems {
			s.Add(int(e))
			seen[int(e)] = true
		}
		if s.Count() != len(seen) {
			return false
		}
		for e := range seen {
			if !s.Has(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComposeImage(t *testing.T) {
	// The image of a singleton row set under a∘b equals the union over
	// intermediate elements, checked via ColUnion.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 10, 12, 0.4)
		b := randomMatrix(rng, 12, 9, 0.4)
		ab := Compose(a, b)
		for i := 0; i < 10; i++ {
			want := b.ColUnion(a.Row(i))
			if !ab.Row(i).Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
