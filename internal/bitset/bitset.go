// Package bitset provides word-packed bit sets and boolean matrices.
//
// These are the low-level carriers for the ∪-reachability relations of
// Sections 5 and 6 of the paper: a relation R(B′, B) between the ∪-gates of
// two boxes is a boolean matrix, and the enumeration algorithms repeatedly
// compose such relations. The paper bounds each composition by O(w³) with
// the naive join algorithm and remarks that any Boolean matrix
// multiplication algorithm (exponent ω) can be substituted. We provide the
// naive triple loop (ComposeNaive) and a word-parallel variant (Compose)
// that processes 64 columns per machine operation; benchmark E10 compares
// the two.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a fixed-capacity bit set over the universe [0, n).
// The zero value is an empty set of capacity 0.
type Set struct {
	words []uint64
	n     int
}

// NewSet returns an empty set with capacity for n elements.
func NewSet(n int) Set {
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set (the size of the universe, not the
// number of elements currently present; see Count).
func (s Set) Len() int { return s.n }

// Add inserts i into the set.
func (s Set) Add(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Remove deletes i from the set.
func (s Set) Remove(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is in the set.
func (s Set) Has(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return !anyWords(s.words) }

// Count returns the number of elements in the set.
func (s Set) Count() int { return popcountWords(s.words) }

// Clear removes all elements.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. The sets must have the same
// capacity.
func (s Set) CopyFrom(o Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: CopyFrom capacity mismatch %d != %d", s.n, o.n))
	}
	copy(s.words, o.words)
}

// Or adds every element of o to s.
func (s Set) Or(o Set) { orWords(s.words, o.words) }

// And removes from s every element not in o.
func (s Set) And(o Set) { andWords(s.words, o.words) }

// AndNot removes from s every element of o.
func (s Set) AndNot(o Set) { andNotWords(s.words, o.words) }

// Intersects reports whether s and o share an element.
func (s Set) Intersects(o Set) bool { return intersectWords(s.words, o.words) }

// Equal reports whether s and o contain exactly the same elements.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// First returns the smallest element of the set, or -1 if empty.
func (s Set) First() int {
	for i, w := range s.words {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Next returns the smallest element ≥ i, or -1 if there is none. It is
// the closure-free iteration primitive for hot loops:
//
//	for g := s.Next(0); g >= 0; g = s.Next(g + 1) { ... }
func (s Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i >> 6
	if wi >= len(s.words) {
		return -1
	}
	if w := s.words[wi] >> uint(i&63); w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if w := s.words[wi]; w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Single returns the set's sole element when it has exactly one, else
// (-1, false) — the closure-free form of the "is this provenance a
// singleton" test of the direct-access descent.
func (s Set) Single() (int, bool) {
	e := -1
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		if e >= 0 || w&(w-1) != 0 {
			return -1, false
		}
		e = i<<6 + bits.TrailingZeros64(w)
	}
	return e, e >= 0
}

// ForEach calls f for every element in increasing order. If f returns
// false, iteration stops.
func (s Set) ForEach(f func(int) bool) {
	for i, w := range s.words {
		base := i << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(base + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elems returns the elements of the set in increasing order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// String renders the set as "{1, 5, 7}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
