package bitset

import (
	"math/rand"
	"testing"
)

// randMatrix fills a rows×cols matrix with density ~p.
func randMatrix(rng *rand.Rand, rows, cols int, p float64) Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < p {
				m.Set(i, j)
			}
		}
	}
	return m
}

// TestComposeKernelsAgainstNaive drives every composition path — the
// stride-1 fast path, the unrolled multi-word path, and arena-carved
// destinations — against the textbook triple loop across random shapes,
// including dimensions straddling the 64-column word boundary.
func TestComposeKernelsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []int{1, 3, 17, 63, 64, 65, 130, 300}
	var ar Arena
	for trial := 0; trial < 60; trial++ {
		r := dims[rng.Intn(len(dims))]
		m := dims[rng.Intn(len(dims))]
		c := dims[rng.Intn(len(dims))]
		a := randMatrix(rng, r, m, 0.2)
		b := randMatrix(rng, m, c, 0.2)
		want := ComposeNaive(a, b)
		if got := Compose(a, b); !got.Equal(want) {
			t.Fatalf("Compose %dx%dx%d diverges from naive", r, m, c)
		}
		ar.Reset()
		if got := ar.Compose(a, b); !got.Equal(want) {
			t.Fatalf("Arena.Compose %dx%dx%d diverges from naive", r, m, c)
		}
		if got := ComposeInto(NewMatrix(r, c), a, b); !got.Equal(want) {
			t.Fatalf("ComposeInto %dx%dx%d diverges from naive", r, m, c)
		}
		// NonEmptyRowsInto must agree with the allocating variant.
		got := want.NonEmptyRowsInto(ar.Set(want.Rows))
		if !got.Equal(want.NonEmptyRows()) {
			t.Fatalf("NonEmptyRowsInto diverges on %dx%d", want.Rows, want.Cols)
		}
	}
}

// TestComposeIntoAccumulates pins the OR-accumulate contract: bits
// already set in the destination survive the composition.
func TestComposeIntoAccumulates(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	a.Set(0, 1)
	b.Set(1, 0)
	dst := NewMatrix(2, 2)
	dst.Set(1, 1) // pre-existing bit, untouched by a∘b
	ComposeInto(dst, a, b)
	if !dst.Get(0, 0) || !dst.Get(1, 1) {
		t.Fatalf("ComposeInto lost bits: %v", dst)
	}
}

// TestArenaCarvesAreDisjoint verifies that values carved between Resets
// never alias, across enough carves to force slab growth and recycling.
func TestArenaCarvesAreDisjoint(t *testing.T) {
	var ar Arena
	for cycle := 0; cycle < 3; cycle++ {
		ar.Reset()
		var carved []Matrix
		for i := 0; i < 40; i++ {
			m := ar.Matrix(9, 130) // 3 words/row: multi-word path
			for r := 0; r < m.Rows; r++ {
				if !m.RowEmpty(r) {
					t.Fatalf("cycle %d: carve %d not cleared", cycle, i)
				}
			}
			m.Set(i%9, i%130)
			carved = append(carved, m)
		}
		s := ar.Set(200)
		if !s.Empty() {
			t.Fatal("carved set not empty")
		}
		s.Add(199)
		for i, m := range carved {
			if got := m.Count(); got != 1 || !m.Get(i%9, i%130) {
				t.Fatalf("cycle %d: carve %d clobbered (count %d)", cycle, i, got)
			}
		}
	}
}

// TestArenaSteadyStateAllocs pins the point of the arena: once the slabs
// reach the loop's high-water mark, carving allocates nothing.
func TestArenaSteadyStateAllocs(t *testing.T) {
	var ar Arena
	work := func() {
		ar.Reset()
		for i := 0; i < 16; i++ {
			m := ar.Matrix(8, 64)
			m.Set(1, 2)
			ar.Set(100).Add(3)
		}
	}
	work() // reach the high-water mark
	if avg := testing.AllocsPerRun(50, work); avg > 0.5 {
		t.Fatalf("arena steady state allocates %.1f allocs/cycle, want 0", avg)
	}
}
