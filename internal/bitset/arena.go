package bitset

// Arena is a bump allocator for short-lived matrices and sets: carved
// values share backing word slabs that survive Reset, so a hot loop
// that composes many transient relations (the count-guided descent, one
// arena per worker) allocates only while the slabs are still growing
// toward the loop's high-water mark.
//
// Carved values are valid until the next Reset; Reset recycles ALL of
// them at once. An Arena is NOT safe for concurrent use — confine one
// per goroutine, like a circuit.Builder.
type Arena struct {
	free [][]uint64 // slabs available for carving
	used [][]uint64 // slabs carved from (or skipped) since the last Reset
	cur  []uint64   // current slab; len = used prefix, cap = slab size
}

// arenaSlabWords is the minimum slab size; requests larger than a slab
// get a dedicated slab of exactly their size.
const arenaSlabWords = 1024

// words carves n zeroed words. Carving clears the region explicitly
// (slabs are dirty after Reset), which is a memclr — far cheaper than a
// fresh allocation per matrix.
func (a *Arena) words(n int) []uint64 {
	if len(a.cur)+n > cap(a.cur) {
		a.grow(n)
	}
	off := len(a.cur)
	a.cur = a.cur[: off+n : cap(a.cur)]
	w := a.cur[off : off+n : off+n]
	clear(w)
	return w
}

// grow installs a slab with room for at least n more words: a retained
// free slab if one fits, else a fresh allocation. The outgoing current
// slab — and any free slab too small for this request — moves to the
// used list, out of reach until Reset.
func (a *Arena) grow(n int) {
	if cap(a.cur) > 0 {
		a.used = append(a.used, a.cur)
	}
	a.cur = nil
	for len(a.free) > 0 {
		s := a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		if cap(s) >= n {
			a.cur = s[:0]
			return
		}
		a.used = append(a.used, s)
	}
	a.cur = make([]uint64, 0, max(n, arenaSlabWords))
}

// Matrix carves an all-false rows×cols matrix from the arena.
func (a *Arena) Matrix(rows, cols int) Matrix {
	return MatrixOn(a.words(Words(rows, cols)), rows, cols)
}

// Set carves an empty set of capacity n from the arena.
func (a *Arena) Set(n int) Set {
	return Set{words: a.words((n + 63) / 64), n: n}
}

// Compose carves the result matrix from the arena and composes x∘y into
// it: Compose without the allocation.
func (a *Arena) Compose(x, y Matrix) Matrix {
	return ComposeInto(a.Matrix(x.Rows, y.Cols), x, y)
}

// Reset recycles every value carved since the last Reset. The backing
// slabs are retained, so steady-state loops stop allocating.
func (a *Arena) Reset() {
	if cap(a.cur) > 0 {
		a.used = append(a.used, a.cur)
	}
	a.cur = nil
	a.free = append(a.free, a.used...)
	clear(a.used)
	a.used = a.used[:0]
}
