//go:build amd64 && !purego

#include "textflag.h"

// AVX2/POPCNT kernels for the flat word-slice operations of the
// package. Layout conventions shared by every kernel below:
//
//   - operands are raw *uint64 bases plus a word count, handed over by
//     the dispatch wrappers (dispatch_amd64.go) which already did the
//     length/threshold checks;
//   - the main loops step 16 words (four YMM registers, 128 bytes) per
//     iteration, with a 4-word (one YMM) loop and a scalar word loop
//     picking up the tail, so ANY length and ANY stride — including the
//     odd strides and tail words the fuzz targets exercise — take the
//     exact same bit-for-bit effect as the generic Go loops;
//   - all loads/stores are unaligned (VMOVDQU): matrices are carved at
//     word granularity from shared backings (MatrixOn, Arena), so rows
//     have no 32-byte alignment guarantee;
//   - every kernel that touched a YMM register executes VZEROUPPER
//     before returning, keeping subsequent SSE code (the Go runtime's
//     memmove, etc.) out of the AVX transition penalty.

// func orWordsAVX2(dst, src *uint64, n int)
TEXT ·orWordsAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX

or16:
	LEAQ 16(AX), DX
	CMPQ DX, CX
	JG   or4
	VMOVDQU (SI)(AX*8), Y0
	VMOVDQU 32(SI)(AX*8), Y1
	VMOVDQU 64(SI)(AX*8), Y2
	VMOVDQU 96(SI)(AX*8), Y3
	VPOR    (DI)(AX*8), Y0, Y0
	VPOR    32(DI)(AX*8), Y1, Y1
	VPOR    64(DI)(AX*8), Y2, Y2
	VPOR    96(DI)(AX*8), Y3, Y3
	VMOVDQU Y0, (DI)(AX*8)
	VMOVDQU Y1, 32(DI)(AX*8)
	VMOVDQU Y2, 64(DI)(AX*8)
	VMOVDQU Y3, 96(DI)(AX*8)
	MOVQ    DX, AX
	JMP     or16

or4:
	LEAQ 4(AX), DX
	CMPQ DX, CX
	JG   or1
	VMOVDQU (SI)(AX*8), Y0
	VPOR    (DI)(AX*8), Y0, Y0
	VMOVDQU Y0, (DI)(AX*8)
	MOVQ    DX, AX
	JMP     or4

or1:
	CMPQ AX, CX
	JGE  ordone
	MOVQ (SI)(AX*8), DX
	ORQ  DX, (DI)(AX*8)
	INCQ AX
	JMP  or1

ordone:
	VZEROUPPER
	RET

// func andWordsAVX2(dst, src *uint64, n int)
TEXT ·andWordsAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX

and16:
	LEAQ 16(AX), DX
	CMPQ DX, CX
	JG   and4
	VMOVDQU (SI)(AX*8), Y0
	VMOVDQU 32(SI)(AX*8), Y1
	VMOVDQU 64(SI)(AX*8), Y2
	VMOVDQU 96(SI)(AX*8), Y3
	VPAND   (DI)(AX*8), Y0, Y0
	VPAND   32(DI)(AX*8), Y1, Y1
	VPAND   64(DI)(AX*8), Y2, Y2
	VPAND   96(DI)(AX*8), Y3, Y3
	VMOVDQU Y0, (DI)(AX*8)
	VMOVDQU Y1, 32(DI)(AX*8)
	VMOVDQU Y2, 64(DI)(AX*8)
	VMOVDQU Y3, 96(DI)(AX*8)
	MOVQ    DX, AX
	JMP     and16

and4:
	LEAQ 4(AX), DX
	CMPQ DX, CX
	JG   and1
	VMOVDQU (SI)(AX*8), Y0
	VPAND   (DI)(AX*8), Y0, Y0
	VMOVDQU Y0, (DI)(AX*8)
	MOVQ    DX, AX
	JMP     and4

and1:
	CMPQ AX, CX
	JGE  anddone
	MOVQ (SI)(AX*8), DX
	ANDQ DX, (DI)(AX*8)
	INCQ AX
	JMP  and1

anddone:
	VZEROUPPER
	RET

// func andNotWordsAVX2(dst, src *uint64, n int)
//
// dst &^= src. VPANDN computes NOT(second Go operand's register) AND
// (first Go operand), so loading src into the NOT slot and the dst
// memory word into the other gives dst & ^src.
TEXT ·andNotWordsAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX

an4:
	LEAQ 4(AX), DX
	CMPQ DX, CX
	JG   an1
	VMOVDQU (SI)(AX*8), Y0
	VPANDN  (DI)(AX*8), Y0, Y1
	VMOVDQU Y1, (DI)(AX*8)
	MOVQ    DX, AX
	JMP     an4

an1:
	CMPQ AX, CX
	JGE  andone
	MOVQ (SI)(AX*8), DX
	NOTQ DX
	ANDQ DX, (DI)(AX*8)
	INCQ AX
	JMP  an1

andone:
	VZEROUPPER
	RET

// func intersectsAVX2(a, b *uint64, n int) bool
TEXT ·intersectsAVX2(SB), NOSPLIT, $0-25
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	XORQ AX, AX

is8:
	LEAQ 8(AX), DX
	CMPQ DX, CX
	JG   is1
	VMOVDQU (SI)(AX*8), Y0
	VMOVDQU 32(SI)(AX*8), Y1
	VPAND   (DI)(AX*8), Y0, Y0
	VPAND   32(DI)(AX*8), Y1, Y1
	VPOR    Y1, Y0, Y0
	VPTEST  Y0, Y0
	JNZ     isfound
	MOVQ    DX, AX
	JMP     is8

is1:
	CMPQ AX, CX
	JGE  isempty
	MOVQ (SI)(AX*8), DX
	ANDQ (DI)(AX*8), DX
	JNE  isfound
	INCQ AX
	JMP  is1

isempty:
	VZEROUPPER
	MOVB $0, ret+24(FP)
	RET

isfound:
	VZEROUPPER
	MOVB $1, ret+24(FP)
	RET

// func anyWordsAVX2(p *uint64, n int) bool
TEXT ·anyWordsAVX2(SB), NOSPLIT, $0-17
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
	XORQ AX, AX

ay8:
	LEAQ 8(AX), DX
	CMPQ DX, CX
	JG   ay1
	VMOVDQU (SI)(AX*8), Y0
	VPOR    32(SI)(AX*8), Y0, Y0
	VPTEST  Y0, Y0
	JNZ     ayfound
	MOVQ    DX, AX
	JMP     ay8

ay1:
	CMPQ AX, CX
	JGE  ayempty
	CMPQ (SI)(AX*8), $0
	JNE  ayfound
	INCQ AX
	JMP  ay1

ayempty:
	VZEROUPPER
	MOVB $0, ret+16(FP)
	RET

ayfound:
	VZEROUPPER
	MOVB $1, ret+16(FP)
	RET

// func popcntWords(p *uint64, n int) int
//
// Four POPCNT lanes with independent destination registers: POPCNT has
// a false output dependency on several microarchitectures, so a single
// rolling destination would serialize the loop.
TEXT ·popcntWords(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
	XORQ AX, AX
	XORQ R8, R8
	XORQ R9, R9
	XORQ R10, R10
	XORQ R11, R11

pc4:
	LEAQ 4(AX), DX
	CMPQ DX, CX
	JG   pc1
	POPCNTQ (SI)(AX*8), BX
	POPCNTQ 8(SI)(AX*8), R12
	POPCNTQ 16(SI)(AX*8), R13
	POPCNTQ 24(SI)(AX*8), R14
	ADDQ    BX, R8
	ADDQ    R12, R9
	ADDQ    R13, R10
	ADDQ    R14, R11
	MOVQ    DX, AX
	JMP     pc4

pc1:
	CMPQ AX, CX
	JGE  pcdone
	POPCNTQ (SI)(AX*8), BX
	ADDQ    BX, R8
	INCQ    AX
	JMP     pc1

pcdone:
	ADDQ R9, R8
	ADDQ R11, R10
	ADDQ R10, R8
	MOVQ R8, ret+16(FP)
	RET

// func composeRowsAVX2(dst, a, b *uint64, rows, aStride, bStride int)
//
// The multi-word composition row accumulation, whole-matrix: for each
// row i of a and each set bit j in it (BSF word scan), OR row j of b
// into row i of dst. Row pointers advance by stride per outer
// iteration, so one call covers the entire matrix — the per-row
// function-call and bounds overhead of the old path is paid once.
//
// Register plan: DI dst row, SI a row, BX b base, CX remaining rows,
// R8 aStride, R9 bStride, R10 word index, R11 current a word, R12 bit
// base, R13 selected b row, R14 BSF result, AX inner word index,
// DX scratch.
TEXT ·composeRowsAVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ rows+24(FP), CX
	MOVQ aStride+32(FP), R8
	MOVQ bStride+40(FP), R9

crrow:
	TESTQ CX, CX
	JZ    crdone
	XORQ  R10, R10

crword:
	CMPQ  R10, R8
	JGE   crrownext
	MOVQ  (SI)(R10*8), R11
	TESTQ R11, R11
	JZ    crwordnext
	MOVQ  R10, R12
	SHLQ  $6, R12

crbit:
	BSFQ  R11, R14
	LEAQ  -1(R11), DX
	ANDQ  DX, R11
	LEAQ  (R12)(R14*1), R13
	IMULQ R9, R13
	LEAQ  (BX)(R13*8), R13
	XORQ  AX, AX

cror8:
	LEAQ 8(AX), DX
	CMPQ DX, R9
	JG   cror4
	VMOVDQU (R13)(AX*8), Y0
	VMOVDQU 32(R13)(AX*8), Y1
	VPOR    (DI)(AX*8), Y0, Y0
	VPOR    32(DI)(AX*8), Y1, Y1
	VMOVDQU Y0, (DI)(AX*8)
	VMOVDQU Y1, 32(DI)(AX*8)
	MOVQ    DX, AX
	JMP     cror8

cror4:
	LEAQ 4(AX), DX
	CMPQ DX, R9
	JG   cror1
	VMOVDQU (R13)(AX*8), Y0
	VPOR    (DI)(AX*8), Y0, Y0
	VMOVDQU Y0, (DI)(AX*8)
	MOVQ    DX, AX
	JMP     cror4

cror1:
	CMPQ AX, R9
	JGE  crornext
	MOVQ (R13)(AX*8), DX
	ORQ  DX, (DI)(AX*8)
	INCQ AX
	JMP  cror1

crornext:
	TESTQ R11, R11
	JNZ   crbit

crwordnext:
	INCQ R10
	JMP  crword

crrownext:
	LEAQ (SI)(R8*8), SI
	LEAQ (DI)(R9*8), DI
	DECQ CX
	JMP  crrow

crdone:
	VZEROUPPER
	RET
