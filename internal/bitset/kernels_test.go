package bitset

import (
	"fmt"
	"math/rand"
	"testing"
)

// The tests in this file pin the kernel dispatch layer: every dispatched
// kernel must be bit-for-bit equal to the portable Go loop it replaces,
// on every length (tail words), every stride (odd strides), and every
// dispatch threshold boundary. ForceGeneric lets one binary run both
// paths; on hosts without AVX2 (and under -tags purego) the two paths
// coincide and the tests degenerate to self-consistency, which is the
// honest behavior.

func randWords(rng *rand.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

func TestKernelInfo(t *testing.T) {
	info := Kernels()
	t.Logf("kernels: %+v", info)
	if info.Vector != "avx2" && info.Vector != "generic" {
		t.Fatalf("unknown vector kernel set %q", info.Vector)
	}
	if info.PureGo && info.Vector != "generic" {
		t.Fatalf("purego build reports vector kernels %q", info.Vector)
	}
	if info.Vector == "avx2" && !info.AVX2 {
		t.Fatal("avx2 kernels live but AVX2 not detected")
	}
	if info.PureGo && (info.AVX2 || info.POPCNT) {
		t.Fatal("purego build must not report detected CPU features")
	}
}

func TestForceGenericRestores(t *testing.T) {
	before := Kernels()
	restore := ForceGeneric()
	if v := Kernels().Vector; v != "generic" {
		restore()
		t.Fatalf("ForceGeneric left vector set %q", v)
	}
	restore()
	if after := Kernels(); after != before {
		t.Fatalf("restore mismatch: before %+v, after %+v", before, after)
	}
}

// kernelLengths crosses every dispatch threshold (minVecOr=4, minVecAny
// and minVecCount=8), the 4/8/16-word unroll widths, and odd tails.
var kernelLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 11, 15, 16, 17, 23, 31, 32, 33, 63, 64, 65, 100, 129}

func TestWordKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inplace := []struct {
		name string
		run  func(dst, src []uint64)
	}{
		{"or", orWords},
		{"and", andWords},
		{"andnot", andNotWords},
	}
	for _, n := range kernelLengths {
		for trial := 0; trial < 8; trial++ {
			dst := randWords(rng, n)
			src := randWords(rng, n)
			for _, op := range inplace {
				dv := append([]uint64(nil), dst...)
				op.run(dv, src)
				dg := append([]uint64(nil), dst...)
				restore := ForceGeneric()
				op.run(dg, src)
				restore()
				for w := range dv {
					if dv[w] != dg[w] {
						t.Fatalf("%s n=%d trial=%d: word %d vector %#x generic %#x", op.name, n, trial, w, dv[w], dg[w])
					}
				}
			}

			gotI := intersectWords(dst, src)
			gotA := anyWords(dst)
			gotC := popcountWords(dst)
			restore := ForceGeneric()
			wantI := intersectWords(dst, src)
			wantA := anyWords(dst)
			wantC := popcountWords(dst)
			restore()
			if gotI != wantI {
				t.Fatalf("intersect n=%d: vector %v generic %v", n, gotI, wantI)
			}
			if gotA != wantA {
				t.Fatalf("any n=%d: vector %v generic %v", n, gotA, wantA)
			}
			if gotC != wantC {
				t.Fatalf("popcount n=%d: vector %d generic %d", n, gotC, wantC)
			}
		}
	}
}

// TestWordKernelsSparse drives the early-exit predicates through slices
// that are all-zero except one bit at each possible word position, so
// both the "found in the vector block" and "found in the scalar tail"
// exits are exercised.
func TestWordKernelsSparse(t *testing.T) {
	for _, n := range kernelLengths {
		zero := make([]uint64, n)
		if anyWords(zero) {
			t.Fatalf("anyWords(zero[%d]) = true", n)
		}
		if popcountWords(zero) != 0 {
			t.Fatalf("popcountWords(zero[%d]) != 0", n)
		}
		if intersectWords(zero, zero) {
			t.Fatalf("intersectWords(zero, zero) n=%d = true", n)
		}
		for w := 0; w < n; w++ {
			p := make([]uint64, n)
			p[w] = 1 << uint(w%64)
			if !anyWords(p) {
				t.Fatalf("anyWords n=%d bit in word %d missed", n, w)
			}
			if popcountWords(p) != 1 {
				t.Fatalf("popcountWords n=%d bit in word %d != 1", n, w)
			}
			if !intersectWords(p, p) {
				t.Fatalf("intersectWords n=%d bit in word %d missed", n, w)
			}
			if intersectWords(p, zero) || intersectWords(zero, p) {
				t.Fatalf("intersectWords n=%d phantom intersection", n)
			}
		}
	}
}

func TestComposeIntoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dims := []struct{ r, m, c int }{
		{1, 1, 1}, {3, 5, 7}, {8, 64, 64}, {10, 70, 65}, {16, 100, 128},
		{5, 33, 200}, {40, 64, 300}, {7, 129, 66}, {1, 200, 513},
	}
	for _, d := range dims {
		for _, density := range []float64{0.02, 0.3, 0.9} {
			a := randMatrix(rng, d.r, d.m, density)
			b := randMatrix(rng, d.m, d.c, density)
			want := ComposeNaive(a, b)
			if got := Compose(a, b); !got.Equal(want) {
				t.Fatalf("Compose %dx%dx%d density %v != naive", d.r, d.m, d.c, density)
			}
			restore := ForceGeneric()
			gen := Compose(a, b)
			restore()
			if !gen.Equal(want) {
				t.Fatalf("generic Compose %dx%dx%d density %v != naive", d.r, d.m, d.c, density)
			}
		}
	}
}

func TestComposeManyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, cols := range []int{9, 64, 130, 320} {
		mid := 70
		b := randMatrix(rng, mid, cols, 0.25)
		var as, dsts, want []Matrix
		for _, rows := range []int{1, 5, 17, 64} {
			a := randMatrix(rng, rows, mid, 0.25)
			as = append(as, a)
			dsts = append(dsts, NewMatrix(rows, cols))
			want = append(want, ComposeInto(NewMatrix(rows, cols), a, b))
		}
		ComposeManyInto(dsts, as, b)
		for i := range dsts {
			if !dsts[i].Equal(want[i]) {
				t.Fatalf("cols=%d: batch result %d differs from ComposeInto", cols, i)
			}
		}
	}

	// Mixed-width batch over a single-word b (the stride-1 fast path).
	b := randMatrix(rng, 40, 50, 0.3)
	a := randMatrix(rng, 12, 40, 0.3)
	dst := []Matrix{NewMatrix(12, 50)}
	ComposeManyInto(dst, []Matrix{a}, b)
	if want := Compose(a, b); !dst[0].Equal(want) {
		t.Fatal("stride-1 batch differs from Compose")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("length-mismatched ComposeManyInto did not panic")
		}
	}()
	ComposeManyInto(dst, nil, b)
}

func TestSetNext(t *testing.T) {
	s := NewSet(200)
	for _, e := range []int{0, 1, 63, 64, 65, 130, 199} {
		s.Add(e)
	}
	var got []int
	for g := s.Next(0); g >= 0; g = s.Next(g + 1) {
		got = append(got, g)
	}
	want := s.Elems()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Next walk %v, Elems %v", got, want)
	}
	if s.Next(-5) != 0 {
		t.Fatalf("Next(-5) = %d, want 0", s.Next(-5))
	}
	if s.Next(200) != -1 || s.Next(1000) != -1 {
		t.Fatal("Next past capacity should be -1")
	}
	if s.Next(66) != 130 {
		t.Fatalf("Next(66) = %d, want 130", s.Next(66))
	}
	if e := NewSet(70); e.Next(0) != -1 {
		t.Fatal("Next on empty set should be -1")
	}
}

func TestSetSingle(t *testing.T) {
	cases := []struct {
		elems []int
		want  int
		ok    bool
	}{
		{nil, -1, false},
		{[]int{5}, 5, true},
		{[]int{100}, 100, true},
		{[]int{5, 6}, -1, false},
		{[]int{5, 100}, -1, false},
		{[]int{63, 64}, -1, false},
	}
	for _, c := range cases {
		s := NewSet(130)
		for _, e := range c.elems {
			s.Add(e)
		}
		got, ok := s.Single()
		if got != c.want || ok != c.ok {
			t.Fatalf("Single%v = (%d, %v), want (%d, %v)", c.elems, got, ok, c.want, c.ok)
		}
	}
}

func TestSetCol(t *testing.T) {
	for _, cols := range []int{1, 64, 130} {
		m := NewMatrix(100, cols)
		want := NewMatrix(100, cols)
		rows := []int32{0, 3, 41, 97}
		j := cols - 1
		m.SetCol(rows, j)
		for _, r := range rows {
			want.Set(int(r), j)
		}
		if !m.Equal(want) {
			t.Fatalf("SetCol cols=%d differs from per-bit Set", cols)
		}
		m.SetCol(nil, 0)
		if !m.Equal(want) {
			t.Fatal("empty SetCol changed the matrix")
		}
	}
}

func TestRowsIntersectingInto(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, cols := range []int{7, 64, 130, 300} {
		m := randMatrix(rng, 50, cols, 0.1)
		for trial := 0; trial < 4; trial++ {
			g := NewSet(cols)
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.05 {
					g.Add(j)
				}
			}
			got := m.RowsIntersectingInto(g, NewSet(50))
			want := NewSet(50)
			for i := 0; i < 50; i++ {
				if m.Row(i).Intersects(g) {
					want.Add(i)
				}
			}
			if !got.Equal(want) {
				t.Fatalf("cols=%d trial=%d: RowsIntersectingInto %v, want %v", cols, trial, got, want)
			}
		}
	}
}

func TestColUnionMatchesRowOr(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, cols := range []int{5, 64, 200} {
		m := randMatrix(rng, 80, cols, 0.2)
		rows := NewSet(80)
		for i := 0; i < 80; i++ {
			if rng.Float64() < 0.3 {
				rows.Add(i)
			}
		}
		want := NewSet(cols)
		rows.ForEach(func(i int) bool { want.Or(m.Row(i)); return true })
		if got := m.ColUnion(rows); !got.Equal(want) {
			t.Fatalf("cols=%d: ColUnion %v, want %v", cols, got, want)
		}
	}
}

func TestMatrixCountEmptyKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, cols := range []int{3, 64, 65, 290} {
		m := randMatrix(rng, 30, cols, 0.15)
		want := 0
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if m.Get(i, j) {
					want++
				}
			}
		}
		if got := m.Count(); got != want {
			t.Fatalf("cols=%d: Count %d, want %d", cols, got, want)
		}
		if m.Empty() != (want == 0) {
			t.Fatalf("cols=%d: Empty inconsistent with Count", cols)
		}
		for i := 0; i < m.Rows; i++ {
			if m.RowEmpty(i) != (m.Row(i).Count() == 0) {
				t.Fatalf("cols=%d: RowEmpty(%d) inconsistent", cols, i)
			}
		}
		z := NewMatrix(30, cols)
		if !z.Empty() || z.Count() != 0 {
			t.Fatalf("cols=%d: fresh matrix not empty", cols)
		}
	}
}

// ---- benchmarks ----
//
// Each kernel benchmark runs the live (possibly vector) path and the
// forced-generic path on identical operands; the E-kernel experiment
// (internal/experiments) reports the same comparison as a committed
// baseline with the CPU feature flags alongside.

func BenchmarkOrWords(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 16, 64} {
		dst := randWords(rng, n)
		src := randWords(rng, n)
		b.Run(fmt.Sprintf("words=%d/vector", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				orWords(dst, src)
			}
		})
		b.Run(fmt.Sprintf("words=%d/purego", n), func(b *testing.B) {
			restore := ForceGeneric()
			defer restore()
			for i := 0; i < b.N; i++ {
				orWords(dst, src)
			}
		})
	}
}

func BenchmarkCountWords(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{16, 64} {
		p := randWords(rng, n)
		b.Run(fmt.Sprintf("words=%d/vector", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = popcountWords(p)
			}
		})
		b.Run(fmt.Sprintf("words=%d/purego", n), func(b *testing.B) {
			restore := ForceGeneric()
			defer restore()
			for i := 0; i < b.N; i++ {
				sinkInt = popcountWordsGeneric(p)
			}
		})
	}
}

var sinkInt int

func BenchmarkComposeInto(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for _, c := range []struct{ rows, mid, cols int }{{64, 64, 64}, {64, 64, 512}} {
		a := randMatrix(rng, c.rows, c.mid, 0.3)
		bb := randMatrix(rng, c.mid, c.cols, 0.3)
		dst := NewMatrix(c.rows, c.cols)
		clear := func() {
			for i := range dst.bits {
				dst.bits[i] = 0
			}
		}
		name := fmt.Sprintf("rows=%d/cols=%d", c.rows, c.cols)
		b.Run(name+"/vector", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clear()
				ComposeInto(dst, a, bb)
			}
		})
		b.Run(name+"/purego", func(b *testing.B) {
			restore := ForceGeneric()
			defer restore()
			for i := 0; i < b.N; i++ {
				clear()
				ComposeInto(dst, a, bb)
			}
		})
	}
}
