package bitset

import (
	"fmt"
	"math/bits"
)

// Matrix is a boolean matrix with word-packed rows. Entry (i, j) set means
// the relation contains the pair (row element i, column element j).
//
// In the enumeration engine rows index the ∪-gates of a descendant box B′
// and columns index the ∪-gates of an ancestor box B (or a boxed set Γ),
// so the matrix is the ∪-reachability relation R(B′, B) of Section 5.
type Matrix struct {
	Rows   int
	Cols   int
	stride int // words per row
	bits   []uint64
}

// NewMatrix returns an all-false rows×cols matrix.
func NewMatrix(rows, cols int) Matrix {
	stride := (cols + 63) / 64
	return Matrix{Rows: rows, Cols: cols, stride: stride, bits: make([]uint64, rows*stride)}
}

// Identity returns the n×n identity relation.
func Identity(n int) Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i)
	}
	return m
}

// Words returns the number of backing words a rows×cols matrix needs,
// for callers that lay several matrices out on one allocation (MatrixOn).
func Words(rows, cols int) int { return rows * ((cols + 63) / 64) }

// MatrixOn returns a rows×cols matrix laid out on the given backing
// words, which must have exactly Words(rows, cols) entries and be
// all-zero (freshly allocated, or cleared by the caller when reusing
// scratch — the helper does NOT clear, so carving many matrices from
// one fresh allocation pays the runtime's zeroing once, not per
// matrix). Together with Words this lets hot paths carve many small
// matrices out of one allocation; the resulting matrices behave exactly
// like NewMatrix results.
func MatrixOn(bits []uint64, rows, cols int) Matrix {
	stride := (cols + 63) / 64
	if len(bits) != rows*stride {
		panic(fmt.Sprintf("bitset: MatrixOn backing has %d words, want %d", len(bits), rows*stride))
	}
	return Matrix{Rows: rows, Cols: cols, stride: stride, bits: bits}
}

// NewMatrixPair returns two all-false matrices carved from one backing
// allocation — the box builder's wire-matrix pair (WLeft, WRight).
func NewMatrixPair(rows1, cols1, rows2, cols2 int) (Matrix, Matrix) {
	n1 := Words(rows1, cols1)
	bits := make([]uint64, n1+Words(rows2, cols2))
	return MatrixOn(bits[:n1:n1], rows1, cols1), MatrixOn(bits[n1:], rows2, cols2)
}

// IdentityOn is Identity on a caller-provided backing (see MatrixOn).
func IdentityOn(bits []uint64, n int) Matrix {
	m := MatrixOn(bits, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i)
	}
	return m
}

// ComposeInto is Compose OR-accumulating into a caller-provided
// destination matrix, which must be a.Rows×b.Cols and ALL-FALSE on
// entry (typically carved with MatrixOn from a fresh allocation; the
// helper does not clear it — see MatrixOn), and must not alias a or b.
// It returns dst.
//
// This is the composition hot loop of the enumeration descent, so it is
// written word-parallel twice over: when every matrix fits one word per
// row (the common case — boxes rarely carry more than 64 ∪-gates) the
// whole composition runs on raw words with no closure calls and an
// all-zero early exit per row; the general multi-word path goes through
// the dispatched composeRows kernel — AVX2 row accumulation on amd64
// hosts that support it, an inlined TrailingZeros64 word loop otherwise.
func ComposeInto(dst, a, b Matrix) Matrix {
	checkCompose(dst, a, b)
	if a.stride == 1 && b.stride == 1 {
		composeRows1(dst.bits, a.bits, b.bits, a.Rows)
		return dst
	}
	composeRows(dst.bits, a.bits, b.bits, a.Rows, a.stride, b.stride)
	return dst
}

// checkCompose validates the ComposeInto shape contract.
func checkCompose(dst, a, b Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("bitset: ComposeInto dimension mismatch %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("bitset: ComposeInto destination is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
}

// composeRows1 is the single-word-rows composition fast path: row i of
// the result is the OR of the b-row words selected by the bits of a's
// row word, accumulated in a register.
func composeRows1(dst, a, b []uint64, rows int) {
	for i := 0; i < rows; i++ {
		w := a[i]
		if w == 0 {
			continue
		}
		acc := dst[i]
		for w != 0 {
			acc |= b[bits.TrailingZeros64(w)]
			w &= w - 1
		}
		dst[i] = acc
	}
}

// ComposeManyInto is ComposeInto batched over many left operands
// sharing one right operand: dsts[i] = as[i] ∘ b, accumulated into
// dsts[i] (same all-false, non-aliasing contract as ComposeInto). The
// batch form exists for the per-box wiring loops — the index builder
// composes every child relation of a box against the same W matrix —
// where it amortizes the validation and kernel dispatch across the
// whole box instead of paying them per matrix.
func ComposeManyInto(dsts, as []Matrix, b Matrix) {
	if len(dsts) != len(as) {
		panic(fmt.Sprintf("bitset: ComposeManyInto got %d destinations for %d operands", len(dsts), len(as)))
	}
	for i := range as {
		checkCompose(dsts[i], as[i], b)
	}
	if b.stride == 1 {
		for i := range as {
			if a := as[i]; a.stride == 1 {
				composeRows1(dsts[i].bits, a.bits, b.bits, a.Rows)
			} else {
				composeRows(dsts[i].bits, a.bits, b.bits, a.Rows, a.stride, b.stride)
			}
		}
		return
	}
	for i := range as {
		a := as[i]
		composeRows(dsts[i].bits, a.bits, b.bits, a.Rows, a.stride, b.stride)
	}
}

// Set makes (i, j) true.
func (m Matrix) Set(i, j int) { m.bits[i*m.stride+j>>6] |= 1 << uint(j&63) }

// Unset makes (i, j) false.
func (m Matrix) Unset(i, j int) { m.bits[i*m.stride+j>>6] &^= 1 << uint(j&63) }

// Get reports whether (i, j) is true.
func (m Matrix) Get(i, j int) bool { return m.bits[i*m.stride+j>>6]&(1<<uint(j&63)) != 0 }

// Row returns row i as a Set sharing the matrix storage: mutating the set
// mutates the matrix.
func (m Matrix) Row(i int) Set {
	return Set{words: m.bits[i*m.stride : (i+1)*m.stride], n: m.Cols}
}

// Clone returns an independent copy.
func (m Matrix) Clone() Matrix {
	c := m
	c.bits = make([]uint64, len(m.bits))
	copy(c.bits, m.bits)
	return c
}

// Empty reports whether no entry is set.
func (m Matrix) Empty() bool { return !anyWords(m.bits) }

// Count returns the number of true entries. Padding bits past Cols are
// an invariant zero (Set masks, ComposeInto only ORs rows together), so
// the count is one flat popcount sweep over the backing — POPCNT lanes
// on amd64 — rather than a per-row walk.
func (m Matrix) Count() int { return popcountWords(m.bits) }

// Equal reports whether m and o have identical dimensions and entries.
func (m Matrix) Equal(o Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.bits {
		if m.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// NonEmptyRows returns the set of row indices with at least one true entry.
// This is π₁(R), the projection to the first component used by the
// enumeration algorithms (Algorithm 2 line 4, Algorithm 3 lines 4 and 11).
func (m Matrix) NonEmptyRows() Set {
	s := NewSet(m.Rows)
	m.NonEmptyRowsInto(s)
	return s
}

// NonEmptyRowsInto is NonEmptyRows writing into a caller-provided set of
// capacity m.Rows, which must be empty on entry; it returns dst. With
// single-word rows the scan is branch-light: one word test per row,
// bit-packed straight into dst's words.
func (m Matrix) NonEmptyRowsInto(dst Set) Set {
	if dst.n != m.Rows {
		panic(fmt.Sprintf("bitset: NonEmptyRowsInto capacity %d, want %d", dst.n, m.Rows))
	}
	if m.stride == 1 {
		for i, w := range m.bits {
			if w != 0 {
				dst.words[i>>6] |= 1 << uint(i&63)
			}
		}
		return dst
	}
	for i := 0; i < m.Rows; i++ {
		if !m.RowEmpty(i) {
			dst.Add(i)
		}
	}
	return dst
}

// RowEmpty reports whether row i has no true entry, without materializing
// the row as a Set.
func (m Matrix) RowEmpty(i int) bool {
	return !anyWords(m.bits[i*m.stride : (i+1)*m.stride])
}

// ColUnion returns the union of the rows indexed by rows, i.e. the image of
// the set rows under the relation. The row scan is an inlined
// TrailingZeros64 word loop (no closure per element) feeding the
// dispatched OR kernel.
func (m Matrix) ColUnion(rows Set) Set {
	out := NewSet(m.Cols)
	for wi, w := range rows.words {
		base := wi << 6
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			w &= w - 1
			orWords(out.words, m.bits[i*m.stride:(i+1)*m.stride])
		}
	}
	return out
}

// SetCol sets (int(r), j) for every r in rows — the bulk form of Set
// used by the circuit builder's wire-matrix loops, which paint one
// ancestor column across many descendant rows. The column word and mask
// are computed once for the whole batch.
func (m Matrix) SetCol(rows []int32, j int) {
	wj := j >> 6
	mask := uint64(1) << uint(j&63)
	for _, r := range rows {
		m.bits[int(r)*m.stride+wj] |= mask
	}
}

// RowsIntersectingInto adds to dst every row index whose row shares an
// element with g, and returns dst. dst must have capacity m.Rows; g is
// truncated or zero-extended to the row width as needed. This is the
// "which wires land in the changed gate set" scan of the answer-delta
// pipeline, run per repair — one dispatched intersection kernel per row
// instead of a Set materialization + closure walk.
func (m Matrix) RowsIntersectingInto(g Set, dst Set) Set {
	if dst.n != m.Rows {
		panic(fmt.Sprintf("bitset: RowsIntersectingInto capacity %d, want %d", dst.n, m.Rows))
	}
	n := m.stride
	if len(g.words) < n {
		n = len(g.words)
	}
	if n == 0 {
		return dst
	}
	gw := g.words[:n]
	for i := 0; i < m.Rows; i++ {
		if intersectWords(m.bits[i*m.stride:i*m.stride+n], gw) {
			dst.words[i>>6] |= 1 << uint(i&63)
		}
	}
	return dst
}

// Compose returns the relational composition a∘b as a matrix:
// (i, k) ∈ a∘b iff ∃j: (i, j) ∈ a ∧ (j, k) ∈ b.
// a must be rows×mid and b mid×cols. This is boolean matrix multiplication
// implemented word-parallel: for each true (i, j) the whole row b[j] is
// OR-ed into the output row in Cols/64 operations.
func Compose(a, b Matrix) Matrix {
	return ComposeInto(NewMatrix(a.Rows, b.Cols), a, b)
}

// ComposeNaive is the textbook O(rows·mid·cols) triple loop. It exists to
// make benchmark E10 (naive join vs word-packed composition, the paper's ω
// remark) honest; the engine always uses Compose.
func ComposeNaive(a, b Matrix) Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("bitset: ComposeNaive dimension mismatch %d != %d", a.Cols, b.Rows))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if !a.Get(i, j) {
				continue
			}
			for k := 0; k < b.Cols; k++ {
				if b.Get(j, k) {
					out.Set(i, k)
				}
			}
		}
	}
	return out
}

// String renders the matrix as 0/1 rows, for debugging.
func (m Matrix) String() string {
	out := make([]byte, 0, m.Rows*(m.Cols+1))
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.Get(i, j) {
				out = append(out, '1')
			} else {
				out = append(out, '0')
			}
		}
		out = append(out, '\n')
	}
	return string(out)
}
