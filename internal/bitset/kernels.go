package bitset

import "math/bits"

// This file is the portable half of the kernel layer: pure-Go word-loop
// implementations of every flat kernel the package dispatches. On amd64
// (without the purego build tag) dispatch_amd64.go routes the wrappers
// to AVX2/POPCNT assembly when CPUID says the host supports it; on every
// other target, and under -tags purego, dispatch_generic.go aliases the
// wrappers straight to these loops. The two paths are bit-for-bit
// equivalent (pinned by the differential fuzz targets in fuzz_test.go),
// so callers never observe which one ran.
//
// The generic loops are themselves the restructured scalar fallback the
// vectorization pass produced: no per-bit closures anywhere — bit scans
// are inlined TrailingZeros64 word loops, ORs are unrolled by four — so
// the purego build is faster than the pre-dispatch code, not merely
// compatible with it.

// KernelInfo reports which kernel implementations the package selected
// at init, for benchmark baselines that must record their environment:
// a committed speedup number is meaningless without the feature flags
// of the machine that produced it.
type KernelInfo struct {
	// Arch is runtime.GOARCH of the build.
	Arch string `json:"arch"`
	// PureGo is true when the build carries no vector kernels at all
	// (the purego build tag, or a non-amd64 target).
	PureGo bool `json:"purego"`
	// AVX2 and POPCNT report what CPUID detected on this host at init
	// (always false on PureGo builds, which never ask).
	AVX2   bool `json:"avx2"`
	POPCNT bool `json:"popcnt"`
	// Vector names the kernel set currently live: "avx2" when the
	// vector kernels are dispatched, "generic" otherwise (unsupported
	// host, purego build, or a ForceGeneric window).
	Vector string `json:"vector"`
}

// Kernels returns the dispatch selection made at package init.
func Kernels() KernelInfo { return kernelInfo() }

// ForceGeneric disables the vector kernels until the returned restore
// function runs, so differential tests and the E-kernel experiment can
// measure the portable path inside a vectorized binary. It flips the
// package-level dispatch flags: NOT safe to call while other goroutines
// are using this package — test and benchmark harnesses only.
func ForceGeneric() (restore func()) { return forceGeneric() }

// orWordsGeneric ORs the first len(src) words of src into dst, unrolled
// by four.
func orWordsGeneric(dst, src []uint64) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	w := 0
	for ; w+4 <= len(src); w += 4 {
		dst[w] |= src[w]
		dst[w+1] |= src[w+1]
		dst[w+2] |= src[w+2]
		dst[w+3] |= src[w+3]
	}
	for ; w < len(src); w++ {
		dst[w] |= src[w]
	}
}

// andWordsGeneric ANDs the first len(src) words of src into dst.
func andWordsGeneric(dst, src []uint64) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	w := 0
	for ; w+4 <= len(src); w += 4 {
		dst[w] &= src[w]
		dst[w+1] &= src[w+1]
		dst[w+2] &= src[w+2]
		dst[w+3] &= src[w+3]
	}
	for ; w < len(src); w++ {
		dst[w] &= src[w]
	}
}

// andNotWordsGeneric clears from dst every bit set in the first
// len(src) words of src.
func andNotWordsGeneric(dst, src []uint64) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	w := 0
	for ; w+4 <= len(src); w += 4 {
		dst[w] &^= src[w]
		dst[w+1] &^= src[w+1]
		dst[w+2] &^= src[w+2]
		dst[w+3] &^= src[w+3]
	}
	for ; w < len(src); w++ {
		dst[w] &^= src[w]
	}
}

// intersectWordsGeneric reports whether a and b share a set bit in the
// first len(b) words.
func intersectWordsGeneric(a, b []uint64) bool {
	if len(b) == 0 {
		return false
	}
	_ = a[len(b)-1]
	for w, v := range b {
		if a[w]&v != 0 {
			return true
		}
	}
	return false
}

// anyWordsGeneric reports whether any word of p is nonzero.
func anyWordsGeneric(p []uint64) bool {
	for _, w := range p {
		if w != 0 {
			return true
		}
	}
	return false
}

// popcountWordsGeneric returns the number of set bits across p.
func popcountWordsGeneric(p []uint64) int {
	c := 0
	for _, w := range p {
		c += bits.OnesCount64(w)
	}
	return c
}

// composeRowsGeneric is the general (multi-word) boolean-composition row
// accumulation: for each row i and each bit j set in row i of a
// (aStride words per row), OR row j of b (bStride words per row) into
// row i of dst (bStride words per row). The bit scan is an inlined
// TrailingZeros64 word loop — no closure per bit, unlike the old
// Row(i).ForEach path.
func composeRowsGeneric(dst, a, b []uint64, rows, aStride, bStride int) {
	for i := 0; i < rows; i++ {
		drow := dst[i*bStride : (i+1)*bStride]
		arow := a[i*aStride : (i+1)*aStride]
		for wi, w := range arow {
			base := wi << 6
			for w != 0 {
				j := base + bits.TrailingZeros64(w)
				w &= w - 1
				orWordsGeneric(drow, b[j*bStride:(j+1)*bStride])
			}
		}
	}
}
