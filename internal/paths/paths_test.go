package paths

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/tree"
	"repro/internal/tva"
)

func TestParse(t *testing.T) {
	q, err := Parse("/doc//sec/fig")
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{{Child, "doc"}, {Descendant, "sec"}, {Child, "fig"}}
	if len(q.Steps) != len(want) {
		t.Fatalf("steps = %v", q.Steps)
	}
	for i := range want {
		if q.Steps[i] != want[i] {
			t.Fatalf("step %d = %v, want %v", i, q.Steps[i], want[i])
		}
	}
	if q.String() != "/doc//sec/fig" {
		t.Fatalf("String = %q", q.String())
	}
	for _, bad := range []string{"", "a/b", "/", "/a//", "//"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

// TestCompileMatchesSelect fuzzes the compiled automaton against the
// direct top-down evaluator on random trees.
func TestCompileMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alpha := []tree.Label{"a", "b", "c"}
	queries := []string{
		"/a", "//a", "/*", "//*",
		"/a/b", "/a//b", "//a/b", "//a//b",
		"//a/*/b", "/a//b//c", "//b//b",
		"/*//a/b",
	}
	for _, qs := range queries {
		q, err := Parse(qs)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Compile(q, alpha, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if a.NumStates != 2*len(q.Steps) {
			t.Fatalf("%s: %d states, want %d", qs, a.NumStates, 2*len(q.Steps))
		}
		for trial := 0; trial < 20; trial++ {
			ut := tva.RandomUnrankedTree(rng, 1+rng.Intn(7), alpha)
			want := Select(q, ut)
			got, err := a.SatisfyingAssignments(ut, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s on %s: automaton %d, select %d (%v)", qs, ut, len(got), len(want), want)
			}
			wantSet := map[tree.NodeID]bool{}
			for _, id := range want {
				wantSet[id] = true
			}
			for _, asg := range got {
				if len(asg) != 1 || !wantSet[asg[0].Node] {
					t.Fatalf("%s on %s: spurious %v", qs, ut, asg)
				}
			}
		}
	}
}

// TestPathsDynamic runs a path query through the dynamic engine under
// edits.
func TestPathsDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	alpha := []tree.Label{"a", "b", "c"}
	a := MustCompile("//a/b", alpha, 0)
	ut := tva.RandomUnrankedTree(rng, 5, alpha)
	e, err := core.NewTreeEnumerator(ut, a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := Parse("//a/b")
	for step := 0; step < 40; step++ {
		nodes := e.Tree().Nodes()
		n := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(3) {
		case 0:
			if err := e.Relabel(n.ID, alpha[rng.Intn(3)]); err != nil {
				t.Fatal(err)
			}
		case 1:
			if e.Tree().Size() < 40 {
				if _, err := e.InsertFirstChild(n.ID, alpha[rng.Intn(3)]); err != nil {
					t.Fatal(err)
				}
			}
		default:
			if n.IsLeaf() && n.Parent != nil {
				if err := e.Delete(n.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := Select(q, e.Tree())
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []tree.NodeID
		for _, asg := range e.All() {
			got = append(got, asg[0].Node)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("step %d: got %v, want %v", step, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: got %v, want %v", step, got, want)
			}
		}
	}
}

// TestMustCompilePanics covers the panic path.
func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile("not-a-path", []tree.Label{"a"}, 0)
}
