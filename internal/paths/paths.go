// Package paths compiles XPath-like forward path queries to compact
// nondeterministic stepwise TVAs: a query with k steps becomes an
// automaton with 2k+1 states that *guesses* which nodes play which
// steps. This is exactly the query class where the paper's combined
// complexity matters: the natural automaton is nondeterministic and
// small, while determinizing it (as prior enumeration algorithms
// required) blows up — compare experiment E5.
//
// Syntax: "/a/b" (child steps), "//a" (descendant step), "*" wildcards,
// e.g. "/doc//sec/fig". The node matched by the last step is selected
// as the query variable.
package paths

import (
	"fmt"
	"strings"

	"repro/internal/tree"
	"repro/internal/tva"
)

// Axis relates a step's node to the previous step's node.
type Axis int

// The two supported axes.
const (
	// Child: the step's node is a child of the previous step's node
	// (for the first step: the root itself).
	Child Axis = iota
	// Descendant: the step's node is a descendant-or-self of a child of
	// the previous step's node ("//" semantics; for the first step: any
	// node).
	Descendant
)

// Step is one location step.
type Step struct {
	Axis  Axis
	Label tree.Label // "*" matches any label
}

// Query is a parsed path query.
type Query struct {
	Steps []Step
}

// String renders the query back to path syntax.
func (q Query) String() string {
	var b strings.Builder
	for _, s := range q.Steps {
		if s.Axis == Child {
			b.WriteString("/")
		} else {
			b.WriteString("//")
		}
		b.WriteString(string(s.Label))
	}
	return b.String()
}

// Parse parses a path query. The query must start with "/" or "//" and
// have at least one step.
func Parse(s string) (Query, error) {
	if !strings.HasPrefix(s, "/") {
		return Query{}, fmt.Errorf("paths: query must start with / or //")
	}
	var q Query
	i := 0
	for i < len(s) {
		axis := Child
		if strings.HasPrefix(s[i:], "//") {
			axis = Descendant
			i += 2
		} else if s[i] == '/' {
			i++
		} else {
			return Query{}, fmt.Errorf("paths: expected / at offset %d", i)
		}
		j := i
		for j < len(s) && s[j] != '/' {
			j++
		}
		if j == i {
			return Query{}, fmt.Errorf("paths: empty step at offset %d", i)
		}
		q.Steps = append(q.Steps, Step{Axis: axis, Label: tree.Label(s[i:j])})
		i = j
	}
	if len(q.Steps) == 0 {
		return Query{}, fmt.Errorf("paths: no steps")
	}
	return q, nil
}

// matches reports whether a label satisfies a step's label pattern.
func (s Step) matches(l tree.Label) bool { return s.Label == "*" || s.Label == l }

// Compile builds the stepwise TVA selecting, as variable x, the nodes
// matched by the query on trees over the given alphabet. The automaton
// has 2k+1 states for k steps and is nondeterministic (each unannotated
// node guesses whether it plays a step role).
func Compile(q Query, alphabet []tree.Label, x tree.Var) (*tva.Unranked, error) {
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("paths: empty query")
	}
	k := len(q.Steps)
	// States: plain = 0; role(i) = 1+i for i < k-1 (node playing step i,
	// x not yet absorbed); done(i) = k+i for i ≤ k-1 (x below, steps
	// i..k-1 matched, the node carrying it matches step i).
	plain := tva.State(0)
	role := func(i int) tva.State { return tva.State(1 + i) }
	done := func(i int) tva.State { return tva.State(k + i) }
	a := &tva.Unranked{
		NumStates: 2 * k,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      tree.NewVarSet(x),
		Final:     []tva.State{done(0)},
	}
	xset := tree.NewVarSet(x)
	for _, l := range alphabet {
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: 0, State: plain})
		for i := 0; i < k-1; i++ {
			if q.Steps[i].matches(l) {
				a.Init = append(a.Init, tva.InitRule{Label: l, Set: 0, State: role(i)})
			}
		}
		if q.Steps[k-1].matches(l) {
			a.Init = append(a.Init, tva.InitRule{Label: l, Set: xset, State: done(k - 1)})
		}
	}
	add := func(from, child, to tva.State) {
		a.Delta = append(a.Delta, tva.StepTriple{From: from, Child: child, To: to})
	}
	add(plain, plain, plain)
	for i := 0; i < k-1; i++ {
		add(role(i), plain, role(i))
		// Step i absorbs completed progress i+1 from a child.
		add(role(i), done(i+1), done(i))
	}
	for i := 0; i < k; i++ {
		add(done(i), plain, done(i))
		// Descendant steps float through plain ancestors.
		if q.Steps[i].Axis == Descendant {
			add(plain, done(i), done(i))
		}
	}
	return a, nil
}

// MustCompile parses and compiles, panicking on malformed queries
// (convenience for tests and examples with literal queries).
func MustCompile(path string, alphabet []tree.Label, x tree.Var) *tva.Unranked {
	q, err := Parse(path)
	if err != nil {
		panic(err)
	}
	a, err := Compile(q, alphabet, x)
	if err != nil {
		panic(err)
	}
	return a
}

// Select evaluates the query directly on a tree by top-down search (the
// reference semantics used by tests): it returns the IDs of matched
// nodes.
func Select(q Query, t *tree.Unranked) []tree.NodeID {
	// cur: nodes that match the first i steps (the last matched node).
	cur := map[*tree.UNode]bool{}
	// Virtual start: the "document node" above the root; step 0 relates
	// to it.
	for i, s := range q.Steps {
		next := map[*tree.UNode]bool{}
		candidates := func(from *tree.UNode, f func(*tree.UNode)) {
			// Children of from (or the root for the virtual start).
			var kids []*tree.UNode
			if from == nil {
				kids = []*tree.UNode{t.Root}
			} else {
				for c := from.FirstChild; c != nil; c = c.NextSib {
					kids = append(kids, c)
				}
			}
			if s.Axis == Child {
				for _, c := range kids {
					f(c)
				}
				return
			}
			// Descendant-or-self of the children.
			var walk func(n *tree.UNode)
			walk = func(n *tree.UNode) {
				f(n)
				for c := n.FirstChild; c != nil; c = c.NextSib {
					walk(c)
				}
			}
			for _, c := range kids {
				walk(c)
			}
		}
		apply := func(from *tree.UNode) {
			candidates(from, func(n *tree.UNode) {
				if s.matches(n.Label) {
					next[n] = true
				}
			})
		}
		if i == 0 {
			apply(nil)
		} else {
			for n := range cur {
				apply(n)
			}
		}
		cur = next
	}
	var out []tree.NodeID
	for n := range cur {
		out = append(out, n.ID)
	}
	return out
}
