// Package leaktest is a tiny goroutine-leak guard for tests: snapshot
// the goroutine count before the scenario, run it, and poll until the
// count returns to the baseline — failing with a full stack dump if it
// does not. It exists for the engine's goroutine-spawning read and
// subscription paths (Chunks early-break, Subscribe/Unregister churn),
// where a forgotten cancellation shows up as a goroutine that outlives
// the test body.
//
// Counting goroutines is deliberately crude but dependency-free and
// race-detector-friendly: scenarios that legitimately keep background
// goroutines (none in this repo) would need a more surgical guard.
package leaktest

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check runs fn and asserts that every goroutine it started is gone
// shortly after it returns. Call it at the top of a test:
//
//	leaktest.Check(t, func() { ...scenario... })
//
// The goroutine count is allowed to transiently exceed the baseline
// while fn runs; only the settled count after fn matters. Polls for up
// to 5 seconds before failing (goroutine teardown is asynchronous —
// e.g. a delivery goroutine observing a closed done channel).
func Check(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), condense(string(buf[:n])))
}

// condense drops testing-harness goroutines from a stack dump so the
// leaked ones stand out.
func condense(dump string) string {
	var keep []string
	for _, g := range strings.Split(dump, "\n\n") {
		if strings.Contains(g, "testing.") || strings.Contains(g, "runtime.Stack") {
			continue
		}
		keep = append(keep, g)
	}
	return strings.Join(keep, "\n\n")
}
