// Package mso implements the MSO layer of Corollaries 8.2 and 8.3: a
// formula language over unranked trees with second-order variables,
// compiled to unranked stepwise TVAs through the classical
// Thatcher-Wright closure operations (product for ∧, union for ∨,
// determinization + complement for ¬, projection for ∃). First-order
// variables are the usual sugar: singleton-constrained second-order
// variables.
//
// The compilation is nonelementary in the formula in the worst case (as
// it must be); the point of the paper — and of this reproduction — is
// that everything *after* the formula-to-automaton step is polynomial in
// the automaton and (quasi)linear in the tree.
package mso

import (
	"fmt"
	"strings"

	"repro/internal/tree"
)

// Formula is an MSO formula over unranked Λ-trees. All variables are
// second-order (sets of nodes); see Singleton and the FO helpers for
// first-order use.
type Formula interface {
	fmt.Stringer
	freeVars() tree.VarSet
}

// Atomic formulas. Variables are tree.Var indices.
type (
	// TrueF is the formula ⊤.
	TrueF struct{}
	// FalseF is the formula ⊥.
	FalseF struct{}
	// Subset is X ⊆ Y.
	Subset struct{ X, Y tree.Var }
	// Singleton states that X contains exactly one node.
	Singleton struct{ X tree.Var }
	// HasLabel states that every node in X carries the given label.
	HasLabel struct {
		X     tree.Var
		Label tree.Label
	}
	// Child states that X = {x}, Y = {y} and y is a child of x.
	Child struct{ X, Y tree.Var }
	// NextSibling states that X = {x}, Y = {y} and y is the sibling
	// immediately to the right of x.
	NextSibling struct{ X, Y tree.Var }
	// Root states that X = {x} and x is the root.
	Root struct{ X tree.Var }
	// Leaf states that X = {x} and x has no children.
	Leaf struct{ X tree.Var }
	// Descendant states that X = {x}, Y = {y} and y is a proper
	// descendant of x.
	Descendant struct{ X, Y tree.Var }
)

// Connectives and quantifiers.
type (
	// And is conjunction.
	And struct{ L, R Formula }
	// Or is disjunction.
	Or struct{ L, R Formula }
	// Not is negation.
	Not struct{ F Formula }
	// Exists is second-order existential quantification ∃X.F.
	Exists struct {
		X tree.Var
		F Formula
	}
)

// Convenience constructors.

// Conj builds the conjunction of all arguments (⊤ for none).
func Conj(fs ...Formula) Formula {
	var out Formula = TrueF{}
	for i, f := range fs {
		if i == 0 {
			out = f
		} else {
			out = And{out, f}
		}
	}
	return out
}

// Disj builds the disjunction of all arguments (⊥ for none).
func Disj(fs ...Formula) Formula {
	var out Formula = FalseF{}
	for i, f := range fs {
		if i == 0 {
			out = f
		} else {
			out = Or{out, f}
		}
	}
	return out
}

// Forall is ∀X.F ≡ ¬∃X.¬F.
func Forall(x tree.Var, f Formula) Formula { return Not{Exists{x, Not{f}}} }

// Implies is F → G.
func Implies(f, g Formula) Formula { return Or{Not{f}, g} }

func (TrueF) freeVars() tree.VarSet       { return 0 }
func (FalseF) freeVars() tree.VarSet      { return 0 }
func (f Subset) freeVars() tree.VarSet    { return tree.NewVarSet(f.X, f.Y) }
func (f Singleton) freeVars() tree.VarSet { return tree.NewVarSet(f.X) }
func (f HasLabel) freeVars() tree.VarSet  { return tree.NewVarSet(f.X) }
func (f Child) freeVars() tree.VarSet     { return tree.NewVarSet(f.X, f.Y) }
func (f NextSibling) freeVars() tree.VarSet {
	return tree.NewVarSet(f.X, f.Y)
}
func (f Root) freeVars() tree.VarSet       { return tree.NewVarSet(f.X) }
func (f Leaf) freeVars() tree.VarSet       { return tree.NewVarSet(f.X) }
func (f Descendant) freeVars() tree.VarSet { return tree.NewVarSet(f.X, f.Y) }
func (f And) freeVars() tree.VarSet        { return f.L.freeVars() | f.R.freeVars() }
func (f Or) freeVars() tree.VarSet         { return f.L.freeVars() | f.R.freeVars() }
func (f Not) freeVars() tree.VarSet        { return f.F.freeVars() }
func (f Exists) freeVars() tree.VarSet     { return f.F.freeVars().Remove(f.X) }

// FreeVars returns the free variables of the formula.
func FreeVars(f Formula) tree.VarSet { return f.freeVars() }

func (TrueF) String() string       { return "⊤" }
func (FalseF) String() string      { return "⊥" }
func (f Subset) String() string    { return fmt.Sprintf("X%d⊆X%d", f.X, f.Y) }
func (f Singleton) String() string { return fmt.Sprintf("Sing(X%d)", f.X) }
func (f HasLabel) String() string  { return fmt.Sprintf("Lab_%s(X%d)", f.Label, f.X) }
func (f Child) String() string     { return fmt.Sprintf("Child(X%d,X%d)", f.X, f.Y) }
func (f NextSibling) String() string {
	return fmt.Sprintf("NextSib(X%d,X%d)", f.X, f.Y)
}
func (f Root) String() string       { return fmt.Sprintf("Root(X%d)", f.X) }
func (f Leaf) String() string       { return fmt.Sprintf("Leaf(X%d)", f.X) }
func (f Descendant) String() string { return fmt.Sprintf("Desc(X%d,X%d)", f.X, f.Y) }
func (f And) String() string        { return "(" + f.L.String() + " ∧ " + f.R.String() + ")" }
func (f Or) String() string         { return "(" + f.L.String() + " ∨ " + f.R.String() + ")" }
func (f Not) String() string        { return "¬" + f.F.String() }
func (f Exists) String() string     { return fmt.Sprintf("∃X%d.%s", f.X, f.F.String()) }

// ParseableString renders without unicode, for CLI round trips.
func ParseableString(f Formula) string {
	s := f.String()
	s = strings.NewReplacer("⊤", "true", "⊥", "false", "∧", "&", "∨", "|", "¬", "!", "∃", "E", "⊆", "<=").Replace(s)
	return s
}
