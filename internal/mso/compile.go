package mso

import (
	"fmt"

	"repro/internal/tree"
	"repro/internal/tva"
)

// Compile translates the formula into an unranked stepwise TVA over the
// given alphabet whose satisfying assignments (on the free variables) are
// exactly the satisfying assignments of the formula (Thatcher-Wright,
// used by Corollary 8.2). Negation determinizes, so compilation can be
// exponential in formula depth.
func Compile(f Formula, alphabet []tree.Label) (*tva.Unranked, error) {
	if len(alphabet) == 0 {
		return nil, fmt.Errorf("mso: empty alphabet")
	}
	a, err := compile(f, alphabet)
	if err != nil {
		return nil, err
	}
	return a.Trim(), nil
}

// CompileFO compiles a formula whose listed variables are first-order:
// it conjoins Singleton constraints for each of them (the standard
// rewriting in the proof of Corollary 8.3).
func CompileFO(f Formula, alphabet []tree.Label, foVars ...tree.Var) (*tva.Unranked, error) {
	for _, x := range foVars {
		f = And{f, Singleton{x}}
	}
	return Compile(f, alphabet)
}

func compile(f Formula, alphabet []tree.Label) (*tva.Unranked, error) {
	switch g := f.(type) {
	case TrueF:
		return trueAutomaton(alphabet), nil
	case FalseF:
		a := trueAutomaton(alphabet)
		a.Final = nil
		return a, nil
	case Subset:
		return atomSubset(alphabet, g.X, g.Y), nil
	case Singleton:
		return atomSingleton(alphabet, g.X), nil
	case HasLabel:
		return atomHasLabel(alphabet, g.X, g.Label), nil
	case Child:
		return atomChild(alphabet, g.X, g.Y), nil
	case NextSibling:
		return atomNextSibling(alphabet, g.X, g.Y), nil
	case Root:
		return atomRoot(alphabet, g.X), nil
	case Leaf:
		return atomLeaf(alphabet, g.X), nil
	case Descendant:
		return atomDescendant(alphabet, g.X, g.Y), nil
	case And:
		l, err := compile(g.L, alphabet)
		if err != nil {
			return nil, err
		}
		r, err := compile(g.R, alphabet)
		if err != nil {
			return nil, err
		}
		u := l.Vars | r.Vars
		return tva.IntersectUnranked(tva.Cylindrify(l, u), tva.Cylindrify(r, u)), nil
	case Or:
		l, err := compile(g.L, alphabet)
		if err != nil {
			return nil, err
		}
		r, err := compile(g.R, alphabet)
		if err != nil {
			return nil, err
		}
		u := l.Vars | r.Vars
		return tva.UnionUnranked(tva.Cylindrify(l, u), tva.Cylindrify(r, u)), nil
	case Not:
		inner, err := compile(g.F, alphabet)
		if err != nil {
			return nil, err
		}
		return tva.ComplementUnranked(inner.Trim()), nil
	case Exists:
		inner, err := compile(g.F, alphabet)
		if err != nil {
			return nil, err
		}
		// The quantified variable might not occur in the body; then ∃X.F
		// is F itself.
		if !inner.Vars.Has(g.X) {
			return inner, nil
		}
		return tva.Project(inner, g.X), nil
	default:
		return nil, fmt.Errorf("mso: unknown formula %T", f)
	}
}

// trueAutomaton accepts every tree under every valuation of no variables.
func trueAutomaton(alphabet []tree.Label) *tva.Unranked {
	a := &tva.Unranked{
		NumStates: 1,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Final:     []tva.State{0},
		Delta:     []tva.StepTriple{{From: 0, Child: 0, To: 0}},
	}
	for _, l := range alphabet {
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: 0, State: 0})
	}
	return a
}

// eachAnnotation enumerates all annotations over the universe u, calling
// f with each.
func eachAnnotation(u tree.VarSet, f func(tree.VarSet)) { tree.SubsetsOf(u, f) }

// atomSubset: every node annotated with X is annotated with Y.
func atomSubset(alphabet []tree.Label, x, y tree.Var) *tva.Unranked {
	u := tree.NewVarSet(x, y)
	a := &tva.Unranked{
		NumStates: 1,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      u,
		Final:     []tva.State{0},
		Delta:     []tva.StepTriple{{From: 0, Child: 0, To: 0}},
	}
	for _, l := range alphabet {
		eachAnnotation(u, func(s tree.VarSet) {
			if !s.Has(x) || s.Has(y) {
				a.Init = append(a.Init, tva.InitRule{Label: l, Set: s, State: 0})
			}
		})
	}
	return a
}

// atomSingleton: exactly one node carries X.
func atomSingleton(alphabet []tree.Label, x tree.Var) *tva.Unranked {
	const (
		none = tva.State(0)
		one  = tva.State(1)
	)
	u := tree.NewVarSet(x)
	a := &tva.Unranked{
		NumStates: 2,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      u,
		Final:     []tva.State{one},
		Delta: []tva.StepTriple{
			{From: none, Child: none, To: none},
			{From: none, Child: one, To: one},
			{From: one, Child: none, To: one},
		},
	}
	for _, l := range alphabet {
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: 0, State: none})
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: u, State: one})
	}
	return a
}

// atomHasLabel: every node annotated with X carries the given label.
func atomHasLabel(alphabet []tree.Label, x tree.Var, lab tree.Label) *tva.Unranked {
	u := tree.NewVarSet(x)
	a := &tva.Unranked{
		NumStates: 1,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      u,
		Final:     []tva.State{0},
		Delta:     []tva.StepTriple{{From: 0, Child: 0, To: 0}},
	}
	for _, l := range alphabet {
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: 0, State: 0})
		if l == lab {
			a.Init = append(a.Init, tva.InitRule{Label: l, Set: u, State: 0})
		}
	}
	return a
}

// atomChild: X={x}, Y={y}, y a child of x.
func atomChild(alphabet []tree.Label, x, y tree.Var) *tva.Unranked {
	const (
		plain = tva.State(0) // no annotated node in subtree
		xw    = tva.State(1) // scanning x, y not yet read
		yr    = tva.State(2) // this node is y
		done  = tva.State(3) // pair complete in subtree
	)
	a := &tva.Unranked{
		NumStates: 4,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      tree.NewVarSet(x, y),
		Final:     []tva.State{done},
		Delta: []tva.StepTriple{
			{From: plain, Child: plain, To: plain},
			{From: plain, Child: done, To: done},
			{From: done, Child: plain, To: done},
			{From: xw, Child: plain, To: xw},
			{From: xw, Child: yr, To: done},
			{From: yr, Child: plain, To: yr},
		},
	}
	for _, l := range alphabet {
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: 0, State: plain})
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: tree.NewVarSet(x), State: xw})
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: tree.NewVarSet(y), State: yr})
	}
	return a
}

// atomNextSibling: X={x}, Y={y}, y immediately right of x.
func atomNextSibling(alphabet []tree.Label, x, y tree.Var) *tva.Unranked {
	const (
		plain = tva.State(0)
		xn    = tva.State(1) // this node is x
		yn    = tva.State(2) // this node is y
		mid   = tva.State(3) // scan just read x
		done  = tva.State(4)
	)
	a := &tva.Unranked{
		NumStates: 5,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      tree.NewVarSet(x, y),
		Final:     []tva.State{done},
		Delta: []tva.StepTriple{
			{From: plain, Child: plain, To: plain},
			{From: plain, Child: xn, To: mid},
			{From: mid, Child: yn, To: done},
			{From: done, Child: plain, To: done},
			{From: plain, Child: done, To: done},
			{From: xn, Child: plain, To: xn},
			{From: yn, Child: plain, To: yn},
		},
	}
	for _, l := range alphabet {
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: 0, State: plain})
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: tree.NewVarSet(x), State: xn})
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: tree.NewVarSet(y), State: yn})
	}
	return a
}

// atomRoot: X={x}, x is the root.
func atomRoot(alphabet []tree.Label, x tree.Var) *tva.Unranked {
	const (
		plain = tva.State(0)
		xr    = tva.State(1)
	)
	a := &tva.Unranked{
		NumStates: 2,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      tree.NewVarSet(x),
		Final:     []tva.State{xr},
		Delta: []tva.StepTriple{
			{From: plain, Child: plain, To: plain},
			{From: xr, Child: plain, To: xr},
		},
	}
	for _, l := range alphabet {
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: 0, State: plain})
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: tree.NewVarSet(x), State: xr})
	}
	return a
}

// atomLeaf: X={x}, x is a leaf.
func atomLeaf(alphabet []tree.Label, x tree.Var) *tva.Unranked {
	const (
		plain = tva.State(0)
		xl    = tva.State(1) // this node is x; must finish with no children
		done  = tva.State(2)
	)
	a := &tva.Unranked{
		NumStates: 3,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      tree.NewVarSet(x),
		Final:     []tva.State{done, xl}, // xl accepts the single-node tree with x at the root
		Delta: []tva.StepTriple{
			{From: plain, Child: plain, To: plain},
			{From: plain, Child: xl, To: done},
			{From: plain, Child: done, To: done},
			{From: done, Child: plain, To: done},
		},
	}
	for _, l := range alphabet {
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: 0, State: plain})
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: tree.NewVarSet(x), State: xl})
	}
	return a
}

// atomDescendant: X={x}, Y={y}, y a proper descendant of x.
func atomDescendant(alphabet []tree.Label, x, y tree.Var) *tva.Unranked {
	const (
		plain = tva.State(0)
		yd    = tva.State(1) // subtree contains y, x not yet above it
		xw    = tva.State(2) // scanning x
		done  = tva.State(3)
	)
	a := &tva.Unranked{
		NumStates: 4,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      tree.NewVarSet(x, y),
		Final:     []tva.State{done},
		Delta: []tva.StepTriple{
			{From: plain, Child: plain, To: plain},
			{From: plain, Child: yd, To: yd},
			{From: yd, Child: plain, To: yd},
			{From: xw, Child: plain, To: xw},
			{From: xw, Child: yd, To: done},
			{From: done, Child: plain, To: done},
			{From: plain, Child: done, To: done},
		},
	}
	for _, l := range alphabet {
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: 0, State: plain})
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: tree.NewVarSet(x), State: xw})
		a.Init = append(a.Init, tva.InitRule{Label: l, Set: tree.NewVarSet(y), State: yd})
	}
	return a
}
