package mso

import (
	"fmt"

	"repro/internal/tree"
)

// Eval is the direct model-checking semantics of MSO formulas, used as
// the ground truth the compiler is tested against. Exists enumerates all
// 2^n node subsets, so this is strictly for small trees.
func Eval(f Formula, t *tree.Unranked, nu tree.Valuation) bool {
	switch g := f.(type) {
	case TrueF:
		return true
	case FalseF:
		return false
	case Subset:
		for _, n := range t.Nodes() {
			s := nu[n.ID]
			if s.Has(g.X) && !s.Has(g.Y) {
				return false
			}
		}
		return true
	case Singleton:
		return len(nodesWith(t, nu, g.X)) == 1
	case HasLabel:
		for _, n := range nodesWith(t, nu, g.X) {
			if n.Label != g.Label {
				return false
			}
		}
		return true
	case Child:
		xs, ys := nodesWith(t, nu, g.X), nodesWith(t, nu, g.Y)
		return len(xs) == 1 && len(ys) == 1 && ys[0].Parent == xs[0]
	case NextSibling:
		xs, ys := nodesWith(t, nu, g.X), nodesWith(t, nu, g.Y)
		return len(xs) == 1 && len(ys) == 1 && xs[0].NextSib == ys[0]
	case Root:
		xs := nodesWith(t, nu, g.X)
		return len(xs) == 1 && xs[0] == t.Root
	case Leaf:
		xs := nodesWith(t, nu, g.X)
		return len(xs) == 1 && xs[0].IsLeaf()
	case Descendant:
		xs, ys := nodesWith(t, nu, g.X), nodesWith(t, nu, g.Y)
		if len(xs) != 1 || len(ys) != 1 {
			return false
		}
		for p := ys[0].Parent; p != nil; p = p.Parent {
			if p == xs[0] {
				return true
			}
		}
		return false
	case And:
		return Eval(g.L, t, nu) && Eval(g.R, t, nu)
	case Or:
		return Eval(g.L, t, nu) || Eval(g.R, t, nu)
	case Not:
		return !Eval(g.F, t, nu)
	case Exists:
		nodes := t.Nodes()
		// Try every subset of nodes as the interpretation of X.
		var rec func(i int, cur tree.Valuation) bool
		rec = func(i int, cur tree.Valuation) bool {
			if i == len(nodes) {
				return Eval(g.F, t, cur)
			}
			// X absent at node i.
			old, had := cur[nodes[i].ID]
			cur[nodes[i].ID] = old.Remove(g.X)
			if cur[nodes[i].ID] == 0 {
				delete(cur, nodes[i].ID)
			}
			if rec(i+1, cur) {
				restore(cur, nodes[i].ID, old, had)
				return true
			}
			// X present at node i.
			cur[nodes[i].ID] = old.Remove(g.X).Add(g.X)
			ok := rec(i+1, cur)
			restore(cur, nodes[i].ID, old, had)
			return ok
		}
		// Work on a copy so callers' valuations are untouched.
		cp := tree.Valuation{}
		for k, v := range nu {
			cp[k] = v
		}
		return rec(0, cp)
	default:
		panic(fmt.Sprintf("mso: unknown formula %T", f))
	}
}

func restore(nu tree.Valuation, id tree.NodeID, old tree.VarSet, had bool) {
	if had {
		nu[id] = old
	} else {
		delete(nu, id)
	}
}

func nodesWith(t *tree.Unranked, nu tree.Valuation, x tree.Var) []*tree.UNode {
	var out []*tree.UNode
	for _, n := range t.Nodes() {
		if nu[n.ID].Has(x) {
			out = append(out, n)
		}
	}
	return out
}

// SatisfyingAssignments enumerates by brute force the satisfying
// assignments of the formula over its free variables (ground truth for
// compiler tests).
func SatisfyingAssignments(f Formula, t *tree.Unranked, maxNodes int) (map[string]tree.Assignment, error) {
	nodes := t.Nodes()
	if len(nodes) > maxNodes {
		return nil, fmt.Errorf("mso: brute force on %d nodes exceeds cap %d", len(nodes), maxNodes)
	}
	free := FreeVars(f)
	subsets := []tree.VarSet{}
	tree.SubsetsOf(free, func(s tree.VarSet) { subsets = append(subsets, s) })
	out := map[string]tree.Assignment{}
	nu := tree.Valuation{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(nodes) {
			if Eval(f, t, nu) {
				a := nu.Assignment()
				out[a.Key()] = a
			}
			return
		}
		for _, s := range subsets {
			if s == 0 {
				delete(nu, nodes[i].ID)
			} else {
				nu[nodes[i].ID] = s
			}
			rec(i + 1)
		}
		delete(nu, nodes[i].ID)
	}
	rec(0)
	return out, nil
}
