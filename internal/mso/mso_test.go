package mso

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/tree"
	"repro/internal/tva"
)

var alphaAB = []tree.Label{"a", "b"}

// checkCompiled compiles the formula and compares its satisfying
// assignments against the Eval-based oracle on the given tree.
func checkCompiled(t *testing.T, f Formula, ut *tree.Unranked) {
	t.Helper()
	want, err := SatisfyingAssignments(f, ut, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Compile(f, alphaAB)
	if err != nil {
		t.Fatalf("compile %s: %v", f, err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("compiled %s invalid: %v", f, err)
	}
	got, err := a.SatisfyingAssignments(ut, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s on %s: got %d assignments, want %d\ngot: %v\nwant: %v",
			f, ut, len(got), len(want), got, want)
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Fatalf("%s on %s: missing %q", f, ut, k)
		}
	}
}

var testTrees = []string{
	"(a)",
	"(a (b))",
	"(b (a) (b))",
	"(a (b (a)) (b))",
	"(a (a (b) (a)) (b))",
}

func TestAtoms(t *testing.T) {
	formulas := []Formula{
		TrueF{},
		FalseF{},
		Subset{0, 1},
		Singleton{0},
		HasLabel{0, "a"},
		Child{0, 1},
		NextSibling{0, 1},
		Root{0},
		Leaf{0},
		Descendant{0, 1},
	}
	for _, f := range formulas {
		for _, s := range testTrees {
			ut, err := tree.ParseUnranked(s)
			if err != nil {
				t.Fatal(err)
			}
			checkCompiled(t, f, ut)
		}
	}
}

func TestConnectives(t *testing.T) {
	formulas := []Formula{
		And{Singleton{0}, HasLabel{0, "a"}},
		Or{HasLabel{0, "a"}, HasLabel{0, "b"}},
		Not{Singleton{0}},
		And{Singleton{0}, Not{HasLabel{0, "a"}}},
		Implies(Singleton{0}, HasLabel{0, "b"}),
		And{And{Singleton{0}, Singleton{1}}, Child{0, 1}},
		And{And{Singleton{0}, Singleton{1}}, Or{Child{0, 1}, NextSibling{0, 1}}},
	}
	for _, f := range formulas {
		for _, s := range testTrees {
			ut, _ := tree.ParseUnranked(s)
			checkCompiled(t, f, ut)
		}
	}
}

func TestQuantifiers(t *testing.T) {
	// "x has some child" ≡ ∃Y (Sing(Y) ∧ Child(x, Y)); x first-order.
	hasChild := Exists{1, Conj(Singleton{1}, Child{0, 1})}
	// "x is an a-labeled node with a b-labeled descendant".
	aWithBDesc := Conj(
		HasLabel{0, "a"},
		Exists{1, Conj(Singleton{1}, HasLabel{1, "b"}, Descendant{0, 1})},
	)
	for _, fo := range []Formula{hasChild, aWithBDesc} {
		f := And{fo, Singleton{0}}
		for _, s := range testTrees {
			ut, _ := tree.ParseUnranked(s)
			checkCompiled(t, f, ut)
		}
	}
	// Forall: every node in X is labeled a — vacuous over empty X, so
	// combine with nonemptiness.
	f := Conj(Singleton{0}, Forall(1, Implies(Conj(Singleton{1}, Subset{1, 0}), HasLabel{1, "a"})))
	for _, s := range testTrees {
		ut, _ := tree.ParseUnranked(s)
		checkCompiled(t, f, ut)
	}
}

func TestCompileFO(t *testing.T) {
	// Φ(x, y): y child of x, both free first-order.
	a, err := CompileFO(Child{0, 1}, alphaAB, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ut, _ := tree.ParseUnranked("(a (b) (a (b)))")
	got, err := a.SatisfyingAssignments(ut, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Edges: root→b, root→a, a→b : 3 child pairs.
	if len(got) != 3 {
		t.Fatalf("got %d pairs, want 3: %v", len(got), got)
	}
	for _, asg := range got {
		if len(asg) != 2 {
			t.Fatalf("assignment %v should have 2 singletons", asg)
		}
	}
}

// TestMarkedAncestorViaMSO expresses the Theorem 9.2 query in MSO and
// checks it against the hand-built automaton used by the lower-bound
// experiment.
func TestMarkedAncestorViaMSO(t *testing.T) {
	alpha := []tree.Label{"m", "u", "s"}
	// Φ(x): x is special and has a marked proper ancestor.
	phi := Conj(
		HasLabel{0, "s"},
		Exists{1, Conj(Singleton{1}, HasLabel{1, "m"}, Descendant{1, 0})},
	)
	a, err := CompileFO(phi, alpha, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := tva.MarkedAncestor("m", "u", "s", 0)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		ut := tva.RandomUnrankedTree(rng, 1+rng.Intn(6), alpha)
		want, err := ref.SatisfyingAssignments(ut, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.SatisfyingAssignments(ut, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d on %s: got %d, want %d", trial, ut, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("trial %d: missing %q", trial, k)
			}
		}
	}
}

// TestEndToEndCorollary83 runs a compiled FO query through the full
// dynamic pipeline: constant-delay enumeration with updates.
func TestEndToEndCorollary83(t *testing.T) {
	// Φ(x): x is labeled a and has a b-labeled child.
	phi := Conj(
		HasLabel{0, "a"},
		Exists{1, Conj(Singleton{1}, HasLabel{1, "b"}, Child{0, 1})},
	)
	q, err := CompileFO(phi, alphaAB, 0)
	if err != nil {
		t.Fatal(err)
	}
	ut, _ := tree.ParseUnranked("(a (b) (a (a)))")
	e, err := core.NewTreeEnumerator(ut, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Count() != 1 {
		t.Fatalf("count = %d, want 1", e.Count())
	}
	// Relabel the deepest a to b: its parent now qualifies too.
	var deepest tree.NodeID
	for _, n := range e.Tree().Nodes() {
		if n.IsLeaf() && n.Label == "a" {
			deepest = n.ID
		}
	}
	if err := e.Relabel(deepest, "b"); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 2 {
		t.Fatalf("after relabel: count = %d, want 2", e.Count())
	}
	// Check against the oracle.
	want, err := q.SatisfyingAssignments(e.Tree(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 2 {
		t.Fatalf("oracle disagreed: %d", len(want))
	}
}

func TestFreeVarsAndStrings(t *testing.T) {
	f := Exists{1, Conj(Singleton{1}, Child{0, 1}, HasLabel{2, "a"})}
	if FreeVars(f) != tree.NewVarSet(0, 2) {
		t.Fatalf("FreeVars = %v", FreeVars(f))
	}
	if f.String() == "" || ParseableString(f) == "" {
		t.Fatal("empty rendering")
	}
	if len(ParseableString(Not{TrueF{}})) == 0 {
		t.Fatal("empty rendering")
	}
}
