// Package spanner implements document spanners over dynamic words
// (Theorem 8.5): information-extraction queries written as regex-like
// patterns with capture variables, compiled to word variable automata in
// the style of extended sequential VAs, and evaluated with the paper's
// update-aware constant-delay pipeline.
//
// Captures follow the extended-VA convention: Capture(x, p) annotates
// every position matched by p with the variable x, so a satisfying
// assignment lists, for each capture variable, the exact set of positions
// it covers.
package spanner

import (
	"fmt"

	"repro/internal/tree"
	"repro/internal/tva"
)

// Pattern is a regex-like pattern over word labels.
type Pattern interface{ isPattern() }

type (
	// Empty matches the empty factor.
	Empty struct{}
	// Lit matches one position with the given label.
	Lit struct{ Label tree.Label }
	// Any matches one position with any label of the alphabet.
	Any struct{}
	// Seq matches the concatenation of its parts.
	Seq struct{ Parts []Pattern }
	// Alt matches any one of its branches.
	Alt struct{ Branches []Pattern }
	// Star matches zero or more repetitions.
	Star struct{ Inner Pattern }
	// Plus matches one or more repetitions.
	Plus struct{ Inner Pattern }
	// Opt matches zero or one occurrence.
	Opt struct{ Inner Pattern }
	// Capture annotates every position matched by Inner with Var.
	Capture struct {
		Var   tree.Var
		Inner Pattern
	}
)

func (Empty) isPattern()   {}
func (Lit) isPattern()     {}
func (Any) isPattern()     {}
func (Seq) isPattern()     {}
func (Alt) isPattern()     {}
func (Star) isPattern()    {}
func (Plus) isPattern()    {}
func (Opt) isPattern()     {}
func (Capture) isPattern() {}

// Cat is shorthand for Seq.
func Cat(ps ...Pattern) Pattern { return Seq{ps} }

// Or is shorthand for Alt.
func Or(ps ...Pattern) Pattern { return Alt{ps} }

// epsilon-NFA used during compilation.
type enfa struct {
	n     int
	eps   [][]int
	trans []etrans
}

type etrans struct {
	from  int
	label tree.Label
	any   bool
	vars  tree.VarSet
	to    int
}

func (e *enfa) state() int {
	e.n++
	e.eps = append(e.eps, nil)
	return e.n - 1
}

func (e *enfa) addEps(a, b int) { e.eps[a] = append(e.eps[a], b) }

// build compiles the pattern into the ε-NFA, returning (start, end).
// active is the set of capture variables currently in scope.
func (e *enfa) build(p Pattern, active tree.VarSet) (int, int, error) {
	switch g := p.(type) {
	case Empty:
		s, t := e.state(), e.state()
		e.addEps(s, t)
		return s, t, nil
	case Lit:
		s, t := e.state(), e.state()
		e.trans = append(e.trans, etrans{s, g.Label, false, active, t})
		return s, t, nil
	case Any:
		s, t := e.state(), e.state()
		e.trans = append(e.trans, etrans{s, "", true, active, t})
		return s, t, nil
	case Seq:
		if len(g.Parts) == 0 {
			return e.build(Empty{}, active)
		}
		s, t, err := e.build(g.Parts[0], active)
		if err != nil {
			return 0, 0, err
		}
		for _, part := range g.Parts[1:] {
			s2, t2, err := e.build(part, active)
			if err != nil {
				return 0, 0, err
			}
			e.addEps(t, s2)
			t = t2
		}
		return s, t, nil
	case Alt:
		if len(g.Branches) == 0 {
			return 0, 0, fmt.Errorf("spanner: empty alternation")
		}
		s, t := e.state(), e.state()
		for _, br := range g.Branches {
			bs, bt, err := e.build(br, active)
			if err != nil {
				return 0, 0, err
			}
			e.addEps(s, bs)
			e.addEps(bt, t)
		}
		return s, t, nil
	case Star:
		s, t := e.state(), e.state()
		is, it, err := e.build(g.Inner, active)
		if err != nil {
			return 0, 0, err
		}
		e.addEps(s, t)
		e.addEps(s, is)
		e.addEps(it, is)
		e.addEps(it, t)
		return s, t, nil
	case Plus:
		return e.build(Seq{[]Pattern{g.Inner, Star{g.Inner}}}, active)
	case Opt:
		return e.build(Alt{[]Pattern{g.Inner, Empty{}}}, active)
	case Capture:
		return e.build(g.Inner, active.Add(g.Var))
	default:
		return 0, 0, fmt.Errorf("spanner: unknown pattern %T", p)
	}
}

// vars collects all capture variables of a pattern.
func vars(p Pattern) tree.VarSet {
	switch g := p.(type) {
	case Seq:
		var v tree.VarSet
		for _, q := range g.Parts {
			v |= vars(q)
		}
		return v
	case Alt:
		var v tree.VarSet
		for _, q := range g.Branches {
			v |= vars(q)
		}
		return v
	case Star:
		return vars(g.Inner)
	case Plus:
		return vars(g.Inner)
	case Opt:
		return vars(g.Inner)
	case Capture:
		return vars(g.Inner).Add(g.Var)
	default:
		return 0
	}
}

// CompileWVA compiles the pattern into a word variable automaton over the
// given alphabet (ε-NFA construction followed by ε-elimination). The
// pattern must match whole words.
func CompileWVA(p Pattern, alphabet []tree.Label) (*tva.WVA, error) {
	e := &enfa{}
	start, end, err := e.build(p, 0)
	if err != nil {
		return nil, err
	}
	// ε-closures.
	closure := make([][]int, e.n)
	for s := 0; s < e.n; s++ {
		seen := make([]bool, e.n)
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			closure[s] = append(closure[s], u)
			for _, v := range e.eps[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	out := &tva.WVA{
		NumStates: e.n,
		Alphabet:  append([]tree.Label(nil), alphabet...),
		Vars:      vars(p),
		Initial:   []tva.State{tva.State(start)},
	}
	seenT := map[tva.WTrans]bool{}
	addT := func(t tva.WTrans) {
		if !seenT[t] {
			seenT[t] = true
			out.Trans = append(out.Trans, t)
		}
	}
	inClosure := make([]map[int]bool, e.n)
	for s := range closure {
		inClosure[s] = map[int]bool{}
		for _, u := range closure[s] {
			inClosure[s][u] = true
		}
	}
	for u := 0; u < e.n; u++ {
		for _, t := range e.trans {
			if !inClosure[u][t.from] {
				continue
			}
			if t.any {
				for _, l := range alphabet {
					addT(tva.WTrans{From: tva.State(u), Label: l, Set: t.vars, To: tva.State(t.to)})
				}
			} else {
				addT(tva.WTrans{From: tva.State(u), Label: t.label, Set: t.vars, To: tva.State(t.to)})
			}
		}
	}
	for u := 0; u < e.n; u++ {
		if inClosure[u][end] {
			out.Final = append(out.Final, tva.State(u))
		}
	}
	return out, nil
}

// Contains wraps a pattern so that it matches anywhere in the word:
// Σ* p Σ*.
func Contains(p Pattern) Pattern {
	return Cat(Star{Any{}}, p, Star{Any{}})
}

// TextLabels converts a string into one label per rune, the word form
// consumed by the enumerators.
func TextLabels(s string) []tree.Label {
	out := make([]tree.Label, 0, len(s))
	for _, r := range s {
		out = append(out, tree.Label(string(r)))
	}
	return out
}

// ByteAlphabet returns labels for all runes occurring in the given
// strings (a convenient closed alphabet for examples).
func ByteAlphabet(samples ...string) []tree.Label {
	seen := map[tree.Label]bool{}
	var out []tree.Label
	for _, s := range samples {
		for _, r := range s {
			l := tree.Label(string(r))
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// Spans groups an assignment by variable: the sorted positions each
// capture variable covers (as stable letter IDs).
func Spans(a tree.Assignment) map[tree.Var][]tree.NodeID {
	out := map[tree.Var][]tree.NodeID{}
	for _, s := range a {
		out[s.Var] = append(out[s.Var], s.Node)
	}
	return out
}
