package spanner

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/tree"
	"repro/internal/tva"
)

var alphaAB = []tree.Label{"a", "b"}

// matchOracle reports whether the pattern matches the whole word, by
// recursive descent (independent of the automaton machinery).
func matchOracle(p Pattern, w []tree.Label) bool {
	return len(matchEnds(p, w, 0)) > 0 && contains(matchEnds(p, w, 0), len(w))
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// matchEnds returns all positions j such that p matches w[i:j].
func matchEnds(p Pattern, w []tree.Label, i int) []int {
	switch g := p.(type) {
	case Empty:
		return []int{i}
	case Lit:
		if i < len(w) && w[i] == g.Label {
			return []int{i + 1}
		}
		return nil
	case Any:
		if i < len(w) {
			return []int{i + 1}
		}
		return nil
	case Seq:
		cur := []int{i}
		for _, part := range g.Parts {
			var next []int
			for _, j := range cur {
				for _, k := range matchEnds(part, w, j) {
					if !contains(next, k) {
						next = append(next, k)
					}
				}
			}
			cur = next
		}
		return cur
	case Alt:
		var out []int
		for _, br := range g.Branches {
			for _, j := range matchEnds(br, w, i) {
				if !contains(out, j) {
					out = append(out, j)
				}
			}
		}
		return out
	case Star:
		out := []int{i}
		frontier := []int{i}
		for len(frontier) > 0 {
			var next []int
			for _, j := range frontier {
				for _, k := range matchEnds(g.Inner, w, j) {
					if k > j && !contains(out, k) {
						out = append(out, k)
						next = append(next, k)
					}
				}
			}
			frontier = next
		}
		return out
	case Plus:
		return matchEnds(Seq{[]Pattern{g.Inner, Star{g.Inner}}}, w, i)
	case Opt:
		return matchEnds(Alt{[]Pattern{g.Inner, Empty{}}}, w, i)
	case Capture:
		return matchEnds(g.Inner, w, i)
	default:
		panic("unknown pattern")
	}
}

func randomPattern(rng *rand.Rand, depth int) Pattern {
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return Lit{alphaAB[rng.Intn(2)]}
		case 1:
			return Any{}
		default:
			return Empty{}
		}
	}
	switch rng.Intn(5) {
	case 0:
		return Cat(randomPattern(rng, depth-1), randomPattern(rng, depth-1))
	case 1:
		return Or(randomPattern(rng, depth-1), randomPattern(rng, depth-1))
	case 2:
		return Star{randomPattern(rng, depth-1)}
	case 3:
		return Opt{randomPattern(rng, depth-1)}
	default:
		return Plus{randomPattern(rng, depth-1)}
	}
}

// TestCompileMatchesOracle checks Boolean matching of compiled WVAs
// against the recursive-descent oracle on random patterns and words.
func TestCompileMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := randomPattern(rng, 1+rng.Intn(3))
		a, err := CompileWVA(p, alphaAB)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("pattern %#v: %v", p, err)
		}
		n := rng.Intn(6)
		w := make([]tree.Label, n)
		ids := make([]tree.NodeID, n)
		for i := range w {
			w[i] = alphaAB[rng.Intn(2)]
			ids[i] = tree.NodeID(i)
		}
		want := matchOracle(p, w)
		got := a.Accepts(w, ids, tree.Valuation{})
		if want != got {
			t.Fatalf("trial %d: pattern %#v on %v: oracle %v, automaton %v", trial, p, w, want, got)
		}
	}
}

// TestCaptureSemantics checks that captures annotate exactly the matched
// positions.
func TestCaptureSemantics(t *testing.T) {
	// Word a b b a; pattern Σ* a x:(b+) Σ* — capture runs of b after an a.
	p := Cat(Star{Any{}}, Lit{"a"}, Capture{0, Plus{Lit{"b"}}}, Star{Any{}})
	a, err := CompileWVA(p, alphaAB)
	if err != nil {
		t.Fatal(err)
	}
	word := []tree.Label{"a", "b", "b", "a"}
	ids := []tree.NodeID{0, 1, 2, 3}
	got, err := a.SatisfyingAssignments(word, ids, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Matches: x={1}, x={1,2} (b+ can stop early only if the rest is
	// consumed by Σ*), x={2}? The b at position 2 is preceded by b, not
	// a... but Σ* can absorb "a b" and the a at position... position 2's
	// preceding letter is b, so x must start right after an a: only
	// position 1 starts a capture; x ∈ {{1},{1,2}}.
	if len(got) != 2 {
		t.Fatalf("got %d assignments: %v", len(got), got)
	}
	want1 := tree.Assignment{{Var: 0, Node: 1}}.Normalize()
	want2 := tree.Assignment{{Var: 0, Node: 1}, {Var: 0, Node: 2}}.Normalize()
	if _, ok := got[want1.Key()]; !ok {
		t.Fatalf("missing %v", want1)
	}
	if _, ok := got[want2.Key()]; !ok {
		t.Fatalf("missing %v", want2)
	}
}

// TestDynamicSpanner runs a spanner through the dynamic word pipeline
// with edits, cross-checked against brute force.
func TestDynamicSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Contains(Cat(Lit{"a"}, Capture{0, Plus{Lit{"b"}}}))
	q, err := CompileWVA(p, alphaAB)
	if err != nil {
		t.Fatal(err)
	}
	letters := []tree.Label{"a", "b", "a"}
	e, err := core.NewWordEnumerator(letters, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 30; step++ {
		ids, labs := e.Word()
		switch rng.Intn(3) {
		case 0:
			if err := e.Relabel(ids[rng.Intn(len(ids))], alphaAB[rng.Intn(2)]); err != nil {
				t.Fatal(err)
			}
		case 1:
			if len(ids) < 8 {
				if _, err := e.InsertAfter(ids[rng.Intn(len(ids))], alphaAB[rng.Intn(2)]); err != nil {
					t.Fatal(err)
				}
			}
		default:
			if len(ids) > 1 {
				if err := e.Delete(ids[rng.Intn(len(ids))]); err != nil {
					t.Fatal(err)
				}
			}
		}
		ids, labs = e.Word()
		want, err := q.SatisfyingAssignments(labs, ids, 9)
		if err != nil {
			t.Fatal(err)
		}
		got := e.All()
		if len(got) != len(want) {
			t.Fatalf("step %d: got %d, want %d (word %v)", step, len(got), len(want), labs)
		}
		for _, a := range got {
			if _, ok := want[a.Key()]; !ok {
				t.Fatalf("step %d: spurious %v", step, a)
			}
		}
	}
}

func TestHelpers(t *testing.T) {
	labs := TextLabels("ab")
	if len(labs) != 2 || labs[0] != "a" || labs[1] != "b" {
		t.Fatalf("TextLabels = %v", labs)
	}
	alpha := ByteAlphabet("aba", "c")
	if len(alpha) != 3 {
		t.Fatalf("ByteAlphabet = %v", alpha)
	}
	spans := Spans(tree.Assignment{{Var: 0, Node: 1}, {Var: 0, Node: 2}, {Var: 1, Node: 5}})
	if len(spans) != 2 || len(spans[0]) != 2 || len(spans[1]) != 1 {
		t.Fatalf("Spans = %v", spans)
	}
	if _, err := CompileWVA(Or(), alphaAB); err == nil {
		t.Fatal("empty alternation should fail")
	}
	_ = tva.WVA{}
}
