package engine

import (
	"math/rand"
	"testing"

	"repro/internal/enumerate"
	"repro/internal/mso"
	"repro/internal/paths"
	"repro/internal/spanner"
	"repro/internal/tree"
	"repro/internal/tva"
)

// checkDirectAccess verifies the full direct-access contract of one
// snapshot against its own enumeration: Count matches the drained
// length, At(j) equals the j-th Results element for every j, out-of-
// range ranks error, and Page slices agree.
func checkDirectAccess(t *testing.T, s *Snapshot) {
	t.Helper()
	var drained []tree.Assignment
	for a := range s.Results() {
		drained = append(drained, a)
	}
	if got := s.Count(); got != len(drained) {
		t.Fatalf("v%d: Count = %d, drained %d (direct=%v)", s.Version(), got, len(drained), s.DirectAccess())
	}
	for j := range drained {
		a, err := s.At(j)
		if err != nil {
			t.Fatalf("v%d: At(%d): %v", s.Version(), j, err)
		}
		if a.Key() != drained[j].Key() {
			t.Fatalf("v%d: At(%d) = %v, Results[%d] = %v (direct=%v)",
				s.Version(), j, a, j, drained[j], s.DirectAccess())
		}
	}
	if _, err := s.At(len(drained)); err == nil {
		t.Fatalf("v%d: At(%d) succeeded past the end", s.Version(), len(drained))
	}
	if _, err := s.At(-1); err == nil {
		t.Fatalf("v%d: At(-1) succeeded", s.Version())
	}
	off, lim := len(drained)/3, 4
	page := s.Page(off, lim)
	want := drained[off:min(off+lim, len(drained))]
	if len(page) != len(want) {
		t.Fatalf("v%d: Page(%d,%d) has %d elements, want %d", s.Version(), off, lim, len(page), len(want))
	}
	for i := range page {
		if page[i].Key() != want[i].Key() {
			t.Fatalf("v%d: Page(%d,%d)[%d] = %v, want %v", s.Version(), off, lim, i, page[i], want[i])
		}
	}
}

// directAccessQueries are the tree queries the At/Count contract is
// exercised with: single-variable selection, the multi-state ancestor
// query, a two-variable product-heavy FO query, and a path query whose
// automaton is ambiguous (several runs per answer), which must take the
// fallback and still agree.
func directAccessQueries(t *testing.T) map[string]*tva.Unranked {
	t.Helper()
	alpha := []tree.Label{"a", "b", "c"}
	pair, err := mso.CompileFO(mso.Child{X: 0, Y: 1}, alpha, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*tva.Unranked{
		"selectB":   tva.SelectLabel(alpha, "b", 0),
		"ancestor":  tva.MarkedAncestor("a", "b", "c", 0),
		"childPair": pair,
		"pathAB":    paths.MustCompile("//a//b", alpha, 0),
	}
}

// wantDirect is the expected DirectAccess classification per query:
// only the ambiguous path automaton falls back.
var wantDirect = map[string]bool{
	"selectB": true, "ancestor": true, "childPair": true, "pathAB": false,
}

// TestAtMatchesResults checks, for every query and after every update
// batch, that At(j) returns exactly the j-th element of Results — the
// acceptance contract of the direct-access subsystem.
func TestAtMatchesResults(t *testing.T) {
	for name, q := range directAccessQueries(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			ut := tva.RandomUnrankedTree(rng, 30, []tree.Label{"a", "b", "c"})
			e, err := NewTree(ut, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := e.Snapshot().DirectAccess(); got != wantDirect[name] {
				t.Fatalf("DirectAccess = %v, want %v", got, wantDirect[name])
			}
			checkDirectAccess(t, e.Snapshot())
			for step := 0; step < 12; step++ {
				batch := randomTreeBatch(rng, e.Tree(), 4)
				s, _, err := e.ApplyBatch(batch)
				if err != nil {
					t.Fatal(err)
				}
				checkDirectAccess(t, s)
			}
		})
	}
}

// randomTreeBatch draws a batch of valid edits against the current tree
// (IDs are resolved per edit position optimistically; inserts later in
// the batch may target nodes created earlier only via existing IDs).
func randomTreeBatch(rng *rand.Rand, ut *tree.Unranked, n int) []Update {
	labels := []tree.Label{"a", "b", "c"}
	var batch []Update
	for i := 0; i < n; i++ {
		nodes := ut.Nodes()
		nd := nodes[rng.Intn(len(nodes))]
		l := labels[rng.Intn(len(labels))]
		switch rng.Intn(4) {
		case 0:
			batch = append(batch, Update{Op: OpRelabel, Node: nd.ID, Label: l})
		case 1:
			batch = append(batch, Update{Op: OpInsertFirstChild, Node: nd.ID, Label: l})
		case 2:
			if nd.Parent != nil {
				batch = append(batch, Update{Op: OpInsertRightSibling, Node: nd.ID, Label: l})
			}
		default:
			if nd.IsLeaf() && nd.Parent != nil {
				batch = append(batch, Update{Op: OpDelete, Node: nd.ID})
			}
		}
	}
	return batch
}

// TestCountAndAtDoNoEnumeration is the regression test for the
// O(#answers) Snapshot.Count bug: on a large answer set, Count, At and
// Page must not start a single enumeration (observed through the
// enumerate.EnumStarts instrumentation counter), and the algebraic
// count must equal the drained one.
func TestCountAndAtDoNoEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ut := tva.RandomUnrankedTree(rng, 4000, alphaAB)
	e := mustTreeEngine(t, ut)
	s := e.Snapshot()
	if !s.DirectAccess() {
		t.Fatal("selectB snapshot should support direct access")
	}
	before := enumerate.EnumStarts.Load()
	count := s.Count()
	mid, err := s.At(count / 2)
	if err != nil {
		t.Fatal(err)
	}
	page := s.Page(count-10, 20)
	if got := enumerate.EnumStarts.Load(); got != before {
		t.Fatalf("Count/At/Page started %d enumerations", got-before)
	}
	if count < 1000 {
		t.Fatalf("answer set unexpectedly small: %d", count)
	}
	drained := 0
	for range s.Results() {
		drained++
	}
	if count != drained {
		t.Fatalf("Count = %d, drained %d", count, drained)
	}
	if len(mid) != 1 || len(page) != 10 {
		t.Fatalf("At/Page shape wrong: |mid|=%d |page|=%d", len(mid), len(page))
	}
	if enumerate.EnumStarts.Load() == before {
		t.Fatal("instrumentation counter did not observe the drain")
	}
}

// TestAmbiguousQueryFallsBack pins the ambiguity contract: the //a//b
// path automaton admits several runs per answer (one per a-ancestor),
// so the registration check must refuse direct access, Derivations must
// overcount, and Count/At must still be exact via the fallback.
func TestAmbiguousQueryFallsBack(t *testing.T) {
	alpha := []tree.Label{"a", "b", "c"}
	// a-root → a → b: the b-node has two a-ancestors, hence two runs.
	ut, err := tree.ParseUnranked("(a (a (b)))")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewTree(ut, paths.MustCompile("//a//b", alpha, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.DirectAccess() {
		t.Fatal("path query //a//b must not be classified unambiguous")
	}
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	if d := s.Derivations(); d.Int64() != 2 {
		t.Fatalf("Derivations = %s, want 2 (one per a-ancestor)", d)
	}
	checkDirectAccess(t, s)
}

// TestDirectAccessModes checks the mode matrix: ModeSimple supports
// direct access even for ambiguous automata (one output per
// derivation), ModeNaive never does, and both stay consistent with
// their own Results order.
func TestDirectAccessModes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ut := tva.RandomUnrankedTree(rng, 25, []tree.Label{"a", "b", "c"})
	q := paths.MustCompile("//a//b", []tree.Label{"a", "b", "c"}, 0)
	for _, tc := range []struct {
		name   string
		mode   enumerate.Mode
		direct bool
	}{
		{"simple", enumerate.ModeSimple, true},
		{"naive", enumerate.ModeNaive, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewTree(ut.Clone(), q, Options{Mode: tc.mode})
			if err != nil {
				t.Fatal(err)
			}
			s := e.Snapshot()
			if s.DirectAccess() != tc.direct {
				t.Fatalf("DirectAccess = %v, want %v", s.DirectAccess(), tc.direct)
			}
			checkDirectAccess(t, s)
		})
	}
}

// TestWordDirectAccess runs the contract on the word pipeline with a
// spanner query producing multi-singleton assignments, across letter
// edits.
func TestWordDirectAccess(t *testing.T) {
	alpha := []tree.Label{"a", "b"}
	q, err := spanner.CompileWVA(
		spanner.Contains(spanner.Cat(
			spanner.Lit{Label: "a"},
			spanner.Capture{Var: 0, Inner: spanner.Plus{Inner: spanner.Lit{Label: "b"}}})),
		alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	letters := make([]tree.Label, 40)
	for i := range letters {
		letters[i] = alpha[rng.Intn(2)]
	}
	e, err := NewWord(letters, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkDirectAccess(t, e.Snapshot())
	for step := 0; step < 15; step++ {
		ids, _ := e.Word()
		id := ids[rng.Intn(len(ids))]
		var s *Snapshot
		switch rng.Intn(3) {
		case 0:
			s, err = e.Relabel(id, alpha[rng.Intn(2)])
		case 1:
			_, s, err = e.InsertAfter(id, alpha[rng.Intn(2)])
		default:
			if e.Len() > 1 {
				s, err = e.Delete(id)
			} else {
				continue
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		checkDirectAccess(t, s)
	}
}

// TestSemiringCountVsDrain is the ambiguity property test: across
// random nondeterministic TVAs and MSO-compiled queries, the semiring
// derivation count must equal the drained result count exactly when the
// registration-time unambiguity check says so, and the public Count
// must equal the drained count ALWAYS (ambiguous automata take the
// enumeration fallback instead of silently returning derivation
// counts). Derivations itself may only ever overcount.
func TestSemiringCountVsDrain(t *testing.T) {
	alpha := []tree.Label{"a", "b"}
	unambiguousSeen, ambiguousSeen := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		q := tva.RandomUnranked(rng, 2+int(seed%3), alpha, tree.VarSet(1), 0.25)
		ut := tva.RandomUnrankedTree(rng, 12, alpha)
		e, err := NewTree(ut, q, Options{})
		if err != nil {
			continue // degenerate random automaton
		}
		for step := 0; step < 4; step++ {
			s := e.Snapshot()
			drained := 0
			for range s.Results() {
				drained++
			}
			if got := s.Count(); got != drained {
				t.Fatalf("seed %d step %d: Count = %d, drained %d (direct=%v)",
					seed, step, got, drained, s.DirectAccess())
			}
			deriv := s.Derivations()
			if s.DirectAccess() {
				unambiguousSeen++
				if deriv.Int64() != int64(drained) {
					t.Fatalf("seed %d step %d: unambiguous but derivations %s != drained %d",
						seed, step, deriv, drained)
				}
			} else {
				ambiguousSeen++
				if deriv.Int64() < int64(drained) {
					t.Fatalf("seed %d step %d: derivations %s undercount drained %d",
						seed, step, deriv, drained)
				}
			}
			nodes := e.Tree().Nodes()
			if _, err := e.Relabel(nodes[rng.Intn(len(nodes))].ID, alpha[rng.Intn(2)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if unambiguousSeen == 0 || ambiguousSeen == 0 {
		t.Fatalf("property test did not cover both classes: unambiguous=%d ambiguous=%d",
			unambiguousSeen, ambiguousSeen)
	}

	// MSO-compiled queries go through determinization and must always be
	// classified unambiguous.
	phi := mso.Conj(
		mso.HasLabel{X: 0, Label: "b"},
		mso.Not{F: mso.Exists{X: 1, F: mso.Conj(
			mso.Singleton{X: 1}, mso.HasLabel{X: 1, Label: "a"}, mso.Child{X: 0, Y: 1})}},
	)
	q, err := mso.CompileFO(phi, alpha, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	e, err := NewTree(tva.RandomUnrankedTree(rng, 30, alpha), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if !s.DirectAccess() {
		t.Fatal("MSO-compiled (determinized) query must be unambiguous")
	}
	drained := 0
	for range s.Results() {
		drained++
	}
	if s.Derivations().Int64() != int64(drained) {
		t.Fatalf("MSO query: derivations %s, drained %d", s.Derivations(), drained)
	}
}

// TestMultiSnapshotDirectAccess checks that a QuerySet publication
// serves Count/At for every standing query from one MultiSnapshot.
func TestMultiSnapshotDirectAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ut := tva.RandomUnrankedTree(rng, 35, []tree.Label{"a", "b", "c"})
	qs := NewTreeSet(ut)
	ids := []QueryID{}
	for _, q := range []*tva.Unranked{
		tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0),
		tva.MarkedAncestor("a", "b", "c", 0),
	} {
		id, err := qs.Register(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	m, _, err := qs.ApplyBatch(randomTreeBatch(rng, qs.Tree(), 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		checkDirectAccess(t, m.Query(id))
	}
}

// TestPageHugeLimit guards the preallocation clamp: a caller-supplied
// limit far past the answer count must not allocate proportionally.
func TestPageHugeLimit(t *testing.T) {
	ut, err := tree.ParseUnranked("(a (b) (b) (b))")
	if err != nil {
		t.Fatal(err)
	}
	e := mustTreeEngine(t, ut)
	s := e.Snapshot()
	got := s.Page(1, 1<<30)
	if len(got) != 2 {
		t.Fatalf("Page(1, huge) returned %d elements, want 2", len(got))
	}
	if got := s.Page(1<<30, 1<<30); len(got) != 0 {
		t.Fatalf("Page past the end returned %d elements", len(got))
	}
}
