package engine_test

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/leaktest"
	"repro/internal/tree"
	"repro/internal/tva"
	"repro/internal/workload"
)

// Goroutine-leak guards over the engine's goroutine-spawning paths: the
// PR 6 parallel streaming read (Chunks fans out workers that must die on
// an early break) and the delta-subscription lifecycle (each Subscribe
// starts a delivery goroutine that must die on Unregister, even with an
// undelivered pending delta and no consumer). Run under -race in CI.

func leakEngine(t *testing.T, n int) *engine.TreeEngine {
	t.Helper()
	ut, err := workload.Tree(workload.ShapeRandom, n, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	q := tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0)
	e, err := engine.NewTree(ut, q, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestLeakChunksEarlyBreak breaks out of a fanned-out Chunks stream
// after the first chunk; the producer workers behind it must wind down.
func TestLeakChunksEarlyBreak(t *testing.T) {
	e := leakEngine(t, 2000)
	leaktest.Check(t, func() {
		for range 20 {
			snap := e.Snapshot()
			for chunk := range snap.Chunks(4, 8) {
				_ = chunk
				break // early break: workers + feeder must terminate
			}
		}
	})
}

// TestLeakSubscribeUnregisterChurn churns subscriptions with pending
// undelivered deltas and no consumer ever draining: every delivery
// goroutine must exit once its query is unregistered.
func TestLeakSubscribeUnregisterChurn(t *testing.T) {
	leaktest.Check(t, func() {
		for range 10 {
			e := leakEngine(t, 200)
			var chans []<-chan engine.Delta
			for range 5 {
				ch, err := e.Subscribe()
				if err != nil {
					t.Fatal(err)
				}
				chans = append(chans, ch)
			}
			// Publications pile deltas onto the never-draining
			// subscribers (seed resync still pending, offers coalesce).
			for i := range 4 {
				l := tree.Label("b")
				if i%2 == 1 {
					l = "c"
				}
				if _, _, err := e.ApplyBatch([]engine.Update{{Op: engine.OpRelabel, Node: 1, Label: l}}); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Set().Unregister(e.ID()); err != nil {
				t.Fatal(err)
			}
			// Channels must be closed — drain to the close without help
			// from any writer.
			for _, ch := range chans {
				for range ch {
				}
			}
		}
	})
}

// TestLeakSubscribeWithActiveConsumer is the well-behaved variant: a
// consumer drains until close; after Unregister nothing survives.
func TestLeakSubscribeWithActiveConsumer(t *testing.T) {
	leaktest.Check(t, func() {
		e := leakEngine(t, 500)
		ch, err := e.Subscribe()
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range ch {
			}
		}()
		for i := range 8 {
			l := tree.Label("b")
			if i%2 == 1 {
				l = "c"
			}
			if _, _, err := e.ApplyBatch([]engine.Update{{Op: engine.OpRelabel, Node: 1, Label: l}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Set().Unregister(e.ID()); err != nil {
			t.Fatal(err)
		}
		<-done
	})
}
