// Package engine is the snapshot-isolated dynamic enumeration engine:
// the concurrent serving layer over the paper's pipeline (Theorems 8.1
// and 8.5).
//
// The engine splits the pipeline into a single-writer / many-reader
// architecture built on publication by snapshot:
//
//   - The WRITER side (Engine, specialized by TreeEngine and WordEngine)
//     applies updates — single edits or batches — under a mutex. Each
//     update flows through the forest layer's path-copying edits: fresh
//     term nodes appear along the logarithmic hollowing trunk
//     (Definition 7.2) while all untouched subtrees persist. The engine
//     then rebuilds exactly the circuit boxes and index entries of the
//     trunk (Lemma 7.3) as fresh, frozen (Box, BoxIndex) units and
//     atomically publishes the new root as a Snapshot.
//
//   - The READER side (Snapshot) is lock-free: Engine.Snapshot is a
//     single atomic pointer load, and everything reachable from a
//     snapshot is immutable. Enumeration from a snapshot is therefore
//     unaffected by any number of concurrent updates, restartable, and
//     safe from any number of goroutines; later updates only make newer
//     snapshots available, they never disturb an in-flight iteration.
//
// Batched updates (ApplyBatch) amortize the publication work: all edits
// of a batch run back-to-back on the forest, the dirtied trunk is
// deduplicated by Drain, and boxes shared by several edits' trunks are
// rebuilt once instead of once per edit — one publication per batch.
package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/enumerate"
	"repro/internal/forest"
)

// Options configure an engine.
type Options struct {
	// Mode selects the enumeration algorithm (default: ModeIndexed, the
	// paper's algorithm). ModeNaive and ModeSimple are the baselines of
	// experiments E1/E8.
	Mode enumerate.Mode
}

// Source is the writer-side view of a maintained forest algebra term:
// both forest.Forest (trees, Theorem 8.1) and forest.Word (words,
// Theorem 8.5) implement it, which is what lets one engine core serve
// both pipelines.
type Source interface {
	// TermRoot returns the current term root.
	TermRoot() *forest.Node
	// Drain returns the term nodes needing circuit-box (re)construction,
	// children before parents, and resets the dirty list.
	Drain() []*forest.Node
	// DrainRetired returns the term nodes dropped from the term since
	// the last call (their attachments can be released) and resets the
	// list.
	DrainRetired() []*forest.Node
	// Rebalances returns the cumulative number of scapegoat rebuilds.
	Rebalances() int
}

// Engine is the shared writer core: it owns the circuit builder, the
// attachment of frozen (Box, BoxIndex) units to term nodes, and the
// published snapshot. All mutation goes through Mutate, which serializes
// writers; Snapshot is safe from any goroutine at any time.
type Engine struct {
	mu      sync.Mutex
	src     Source
	builder *circuit.Builder
	mode    enumerate.Mode

	// attach maps live term nodes to their frozen wrapper. Entries of
	// term nodes retired by path copying are released eagerly after
	// every rebuild (DrainRetired), so the map — and with it the set of
	// superseded boxes the writer keeps alive — tracks the live term;
	// published snapshots hold their own references and are unaffected.
	attach map[*forest.Node]*enumerate.IndexedBox

	snap atomic.Pointer[Snapshot]

	version          uint64
	boxesRebuilt     int
	translatedStates int
}

// initEngine wires the shared fields and performs the initial build and
// publication. Called by NewTree / NewWord with the freshly built source
// (whose dirty list holds the whole term).
func (e *Engine) initEngine(src Source, builder *circuit.Builder, translated int, opts Options) {
	e.src = src
	e.builder = builder
	e.mode = opts.Mode
	e.translatedStates = translated
	e.attach = map[*forest.Node]*enumerate.IndexedBox{}
	e.rebuildTrunk()
	e.publish()
}

// Mutate runs edit under the writer lock, rebuilds the boxes and index
// entries of the dirtied trunk bottom-up (Lemma 7.3), and atomically
// publishes the resulting snapshot. The returned snapshot reflects
// whatever the edit managed to apply, also when it returns an error
// (forest edits are atomic, so a failed single edit publishes an
// unchanged structure).
func (e *Engine) Mutate(edit func() error) (*Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	err := edit()
	e.rebuildTrunk()
	return e.publish(), err
}

// Snapshot returns the currently published snapshot: one atomic load, no
// locks. The result is immutable and remains fully usable — including
// restartable enumeration — no matter how many updates are applied
// afterwards.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// BoxesRebuilt returns the cumulative number of circuit boxes built,
// including the initial construction (the update-work counter of the
// amortization experiments).
func (e *Engine) BoxesRebuilt() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.boxesRebuilt
}

// rebuildTrunk builds a fresh frozen (box, index) unit for every node of
// the drained hollowing trunk, children before parents, sharing the
// wrappers of all untouched subtrees (Lemma 7.3).
func (e *Engine) rebuildTrunk() {
	indexed := e.mode == enumerate.ModeIndexed
	for _, n := range e.src.Drain() {
		var ib *enumerate.IndexedBox
		if n.IsLeaf() {
			ib = enumerate.Wrap(e.builder.LeafBox(n.BinaryLabel(), n.TreeID), nil, nil, indexed)
		} else {
			l, r := e.attach[n.Left], e.attach[n.Right]
			ib = enumerate.Wrap(e.builder.InnerBox(n.BinaryLabel(), -1, l.Box, r.Box), l, r, indexed)
		}
		e.attach[n] = ib
		e.boxesRebuilt++
	}
	// Release the attachments of superseded trunk nodes right away:
	// O(trunk) deletes, and the old boxes become garbage as soon as no
	// snapshot references them. (Nodes created and dropped within the
	// same batch were never attached; deleting them is a no-op.)
	for _, n := range e.src.DrainRetired() {
		delete(e.attach, n)
	}
}

// publish assembles and atomically installs the snapshot for the current
// term. O(poly |Q|): it touches only the root box.
func (e *Engine) publish() *Snapshot {
	root := e.attach[e.src.TermRoot()]
	gamma, emptyOK := e.builder.RootAccepting(&circuit.Circuit{Root: root.Box})
	e.version++
	s := &Snapshot{
		root:             root,
		gamma:            gamma,
		emptyOK:          emptyOK,
		mode:             e.mode,
		version:          e.version,
		termHeight:       e.src.TermRoot().Height,
		boxesRebuilt:     e.boxesRebuilt,
		rebalances:       e.src.Rebalances(),
		translatedStates: e.translatedStates,
		automatonStates:  e.builder.A.NumStates,
	}
	e.snap.Store(s)
	return s
}
