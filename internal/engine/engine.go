// Package engine is the snapshot-isolated dynamic enumeration engine:
// the concurrent serving layer over the paper's pipeline (Theorems 8.1
// and 8.5).
//
// The engine is a QUERY-SET engine: one maintained forest algebra term
// serves any number of standing queries over the same document. The
// writer core splits into
//
//   - ONE shared source (forest.Forest or forest.Word): the document,
//     its balanced term, the path-copying edits and the scapegoat
//     rebalances. This work is independent of the number of queries —
//     k standing queries pay for it once, not k times.
//
//   - N per-query PIPELINES, one per registered query: a circuit
//     builder for the query's homogenized automaton, the attachment map
//     from live term nodes to frozen (Box, BoxIndex) units, the counting
//     evaluator, the enumeration mode, and — in each published snapshot
//     — the γ set of accepting states at the root. Only the
//     O(log|T|)·poly(|Q|) box and index repair along the hollowing trunk
//     (Lemma 7.3) scales with the number of queries — and
//     SIGNATURE-PRUNED REPAIR (pipeline.tryReuse, DESIGN.md §7) cuts
//     even that: a trunk box whose rebuild would reproduce the
//     superseded box gate for gate (γ-neutral relabels, path copies
//     over reused children) keeps its old frozen (box, index, counts)
//     unit at O(1), so a relabel the query does not distinguish repairs
//     the whole trunk without building a single box.
//
// PARALLEL WRITE PATH. Each batch drains the source's trunk ONCE into an
// immutable forest.TrunkDelta; per-query repair then runs through
// pipeline.applyDelta, a self-contained replay with no shared mutable
// state, fanned out across a bounded worker pool (default GOMAXPROCS,
// see Options.Workers / SetWorkers). Pipelines share only immutable
// structure — the delta's frozen term nodes and the boxes of untouched
// subtrees — so per-edit publish latency stays flat in the number of
// subscribers on enough cores: O(log|T|) shared term work plus
// O(log|T|·poly(|Q|)·k/workers) repair. A single standing query (or
// Workers=1) takes a deterministic sequential path with no goroutines,
// so single-query latency does not regress.
//
// Queries register and unregister at runtime. Registration is
// LOCK-LIGHT: the writer lock is held only to pin the current term
// version (and on splice-in); the new pipeline's (box, index, counts)
// tree is built against the pinned term OFF the critical section, while
// edits keep streaming. Deltas published in between are recorded and
// replayed onto the new pipeline before it is spliced in, so the late
// query answers exactly as if registered under a full lock — without
// stalling the edit stream for every other subscriber while a large
// query preprocesses. Unregistration drops exactly one pipeline's
// attachments.
//
// MULTI-QUERY OPTIMIZER (pipeline dedupe). Registrations of
// CONTENT-EQUAL automata — the realistic shape when many subscribers
// register variants of one template — share ONE refcounted pipeline
// instead of paying k× box repair: register keys pipelines by the same
// content key the process-wide circuit.Program cache uses (the
// automaton's canonical rule fingerprint, verified rule for rule on
// collision) plus the enumeration mode, and a registration whose key
// matches a standing pipeline just bumps its refcount and maps the new
// QueryID onto it — no O(|T|) build, no delta replay, no extra repair
// on any future batch. Equal automata accept exactly the same
// assignments in exactly the same enumeration order (construction is
// deterministic in the rule content), so the per-query "projection" of
// a shared pipeline is the identity: every twin's Snapshot in a
// MultiSnapshot is the shared pipeline's snapshot, and Results / Count
// / At ranks are preserved per query by construction. Unregister
// decrements the refcount and retires the pipeline — attachments,
// counting cache, boxes — only when it hits zero; a QueryID leaving
// while its twin stays live never invalidates the shared structure.
// The write path fans out over DISTINCT pipelines (worker scheduling
// weights by pipelines, not QueryIDs), which is what makes k standing
// duplicates cost ~1 pipeline per batch. Options.NoDedupe keeps a
// registration on a private pipeline (the differential oracle's knob,
// and the pre-optimizer behavior).
//
// Publication is an immutable MultiSnapshot — query ID → Snapshot —
// installed through a single atomic.Pointer. Readers stay lock-free:
// one atomic load yields a consistent version of every standing query,
// and everything reachable from it is frozen. Cumulative work counters
// are published the same way (Engine.Stats): an immutable EngineStats
// value per publication, readable concurrently with the parallel
// writer.
//
// GOROUTINE CONFINEMENT. A pipeline — its circuit.Builder, its attach
// map, its counting.Evaluator, its γ cache — is touched by at most one
// goroutine at a time: exactly one pool worker per publication (the
// workers partition the pipeline slice), or the registering goroutine
// before splice-in. Nothing in a pipeline is safe for concurrent use and
// nothing needs to be; the -race churn stress tests
// (TestParallelRegisterChurnStress and friends) enforce the discipline.
//
// TreeEngine and WordEngine remain as thin single-query shims over
// TreeSet and WordSet for callers that serve one query per document.
//
// Batched updates (ApplyBatch) amortize the publication work: all edits
// of a batch run back-to-back on the forest, the dirtied trunk is
// deduplicated into one TrunkDelta, and boxes shared by several edits'
// trunks are rebuilt once per pipeline instead of once per edit — one
// publication per batch.
package engine

import (
	"fmt"
	"math/big"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/counting"
	"repro/internal/enumerate"
	"repro/internal/forest"
	"repro/internal/tree"
)

// Options configure a registered query (Mode) and, for convenience, the
// engine it registers into (Workers).
type Options struct {
	// Mode selects the enumeration algorithm (default: ModeIndexed, the
	// paper's algorithm). ModeNaive and ModeSimple are the baselines of
	// experiments E1/E8.
	Mode enumerate.Mode

	// Workers bounds the engine's worker pool for the parallel write
	// path: how many goroutines fan one trunk delta out across the
	// standing queries' pipelines. It is an ENGINE-wide setting carried
	// on the per-query Options for convenience — a positive value at
	// Register adopts it for the whole engine, exactly like
	// Engine.SetWorkers. Zero keeps the current setting (default:
	// runtime.GOMAXPROCS(0)); 1 forces the deterministic sequential
	// path. The pool never exceeds the number of registered queries.
	Workers int

	// FullRebuild disables signature-pruned box reuse for this query:
	// every trunk node's box is rebuilt even when the rebuild would be
	// structurally identical to the superseded one. The answers are the
	// same either way — this is the diagnostic/testing knob behind the
	// pruned-vs-full-rebuild differential suite and the B1 experiment's
	// comparison rows, not something production callers want.
	FullRebuild bool

	// NoDedupe opts this registration out of the multi-query optimizer:
	// it gets a PRIVATE pipeline even when a standing pipeline over a
	// content-equal automaton exists, and never serves as a dedupe
	// target itself. The answers are identical either way — this is the
	// diagnostic knob behind the dedupe differential suite (and the
	// pre-optimizer one-pipeline-per-query behavior), not something
	// production callers want.
	NoDedupe bool
}

// QueryID identifies a registered query within an Engine. IDs are
// assigned by Register, never reused, and start at 1; the zero value is
// never a valid query.
type QueryID int

// Source is the writer-side view of a maintained forest algebra term:
// both forest.Forest (trees, Theorem 8.1) and forest.Word (words,
// Theorem 8.5) implement it, which is what lets one engine core serve
// both pipelines.
type Source interface {
	// TermRoot returns the current term root.
	TermRoot() *forest.Node
	// DrainDelta returns the batch's hollowing information — fresh trunk
	// nodes (children before parents), retired nodes, resulting root —
	// as one immutable, replayable TrunkDelta, and resets the dirty
	// protocol. Many consumers may replay the returned delta
	// concurrently; the source never mutates nodes reachable from it.
	// (Late registration needs no extra protocol: it pins TermRoot and
	// walks the frozen term directly.)
	DrainDelta() forest.TrunkDelta
	// Rebalances returns the cumulative number of scapegoat rebuilds.
	Rebalances() int
	// CheckBalanceDeep verifies the height budget of EVERY term node
	// (O(n); the differential suites call it after each batch).
	CheckBalanceDeep() error
}

// pipeKey identifies the work a pipeline does, for the multi-query
// optimizer: the content fingerprint of the homogenized automaton's
// canonical rules (the same fingerprint the circuit.Program cache
// hashes; verified by Program.ContentEqual on lookup, so a hash
// collision can never alias two distinct queries onto one pipeline),
// the enumeration mode, the FullRebuild knob and the pre-homogenization
// state count (a stats-only input, included so shared pipelines are
// indistinguishable from private ones on every observable surface).
type pipeKey struct {
	fp          uint64
	mode        enumerate.Mode
	fullRebuild bool
	translated  int
}

// pipeline is the per-PIPELINE half of the engine: everything that
// depends on one standing automaton. Since the multi-query optimizer,
// a pipeline may serve SEVERAL registered QueryIDs at once (refs is the
// refcount, guarded by the engine lock like the registration maps): all
// twins read the same published Snapshot, which is sound because their
// automata are content-equal. The shared term work (path copies,
// rebalances) lives in the Source; a pipeline only ever consumes
// immutable trunk deltas. A pipeline is GOROUTINE-CONFINED: it is
// mutated by exactly one goroutine at a time (one pool worker per
// publication, or the registering goroutine before splice-in) and none
// of its state — builder, attach map, counting evaluator, γ cache — is
// safe for concurrent use.
type pipeline struct {
	// refs counts the QueryIDs served by this pipeline; the pipeline
	// retires (attachments dropped, counting cache released) only when
	// it reaches zero. key/shared record its slot in the engine's
	// dedupe index (shared is false for Options.NoDedupe pipelines,
	// which are never dedupe targets). All three are guarded by the
	// engine mutex, not touched by the worker pool.
	refs   int
	key    pipeKey
	shared bool

	builder *circuit.Builder
	mode    enumerate.Mode
	// indexer owns the reusable index-construction scratch; confined to
	// the pipeline like the builder's arena.
	indexer enumerate.Indexer

	// attach maps live term nodes to their frozen wrapper. Entries of
	// term nodes retired by path copying are released eagerly by every
	// delta replay, so the map — and with it the set of superseded boxes
	// the writer keeps alive — tracks the live term; published snapshots
	// hold their own references and are unaffected.
	attach map[*forest.Node]*enumerate.IndexedBox

	// counts is the counting-semiring evaluator (Section 4 multiset
	// remark): per-box derivation counts cached by box identity, so the
	// hollowing-trunk rebuild invalidates exactly the trunk and count
	// maintenance rides the same O(log|T|)·poly(|Q|) repair as the
	// index. attachNode publishes each box's count slice into its frozen
	// wrapper (IndexedBox.Counts) for the lock-free readers; the
	// evaluator cache itself is pipeline-owned and tracks the live term
	// (Forget on retirement).
	counts *counting.Evaluator[*big.Int]

	// unambiguous records the registration-time tva.Unambiguous check:
	// when set, derivation counts equal answer counts and snapshots take
	// the O(poly|Q|) Count / At fast paths.
	unambiguous bool

	// fullRebuild disables the signature-pruned reuse fast path
	// (Options.FullRebuild): every trunk box is rebuilt.
	fullRebuild bool

	translatedStates int
	boxesRebuilt     int // cumulative for this query, incl. registration
	boxesReused      int // trunk boxes served by signature-pruned reuse

	// gamma caches the accepting boxed set at the root, keyed by the
	// root box it was computed for: publications that leave this
	// pipeline's root untouched (register/unregister of OTHER queries)
	// skip the poly(|Q|) RootAccepting recomputation. count is the total
	// derivation count at that root (the Snapshot.Derivations value),
	// cached under the same key.
	gamma     bitset.Set
	emptyOK   bool
	count     *big.Int
	gammaRoot *circuit.Box
}

// attachNode builds the frozen (box, index) unit for one term node whose
// children (if any) are already attached, and records it.
func (p *pipeline) attachNode(n *forest.Node) {
	indexed := p.mode == enumerate.ModeIndexed
	var ib *enumerate.IndexedBox
	if n.IsLeaf() {
		ib = p.indexer.Wrap(p.builder.LeafBox(n.BinaryLabel(), n.TreeID), nil, nil, indexed)
	} else {
		l, r := p.attach[n.Left], p.attach[n.Right]
		ib = p.indexer.Wrap(p.builder.InnerBox(n.BinaryLabel(), tree.InvalidNode, l.Box, r.Box), l, r, indexed)
	}
	ib.Counts = p.counts.UnionsOf(ib.Box)
	p.attach[n] = ib
	p.boxesRebuilt++
}

// tryReuse is the signature-pruned repair fast path: if the trunk node's
// rebuild is guaranteed to reproduce the superseded node's box gate for
// gate, the old frozen (box, index, counts) unit is returned for reuse
// and nothing is built. Two sound cases:
//
//   - LEAF whose current label yields the same gate structure the old
//     box has (Builder.LeafReusable: template signature plus structural
//     verify) — the relabel case, where a label change the automaton
//     does not distinguish keeps γ shape identical;
//   - INNER whose children wrappers are POINTER-EQUAL to the old box's
//     and whose label (term operator) is unchanged — box construction
//     is deterministic in (label, left, right), so the rebuild would be
//     identical. This is what stops propagation: once the box at the
//     bottom of the trunk is reused, every ancestor's children compare
//     pointer-equal and repair costs O(1) per trunk node instead of a
//     poly(|Q|) rebuild.
//
// Pointer equality of the children is REQUIRED for the inner case: a
// rebuilt child with identical shape but fresh identity carries updated
// gates below, and an old parent box would keep enumerating the stale
// subtree. The leaf case has no children, and identity of the node is
// pinned by LeafReusable's Node check.
func (p *pipeline) tryReuse(n, prev *forest.Node) *enumerate.IndexedBox {
	if prev == nil {
		return nil
	}
	old, ok := p.attach[prev]
	if !ok {
		return nil
	}
	if n.IsLeaf() {
		if p.builder.LeafReusable(old.Box, n.BinaryLabel(), n.TreeID) {
			return old
		}
		return nil
	}
	if old.IsLeaf() {
		return nil
	}
	l, r := p.attach[n.Left], p.attach[n.Right]
	if l != nil && r != nil && old.Left == l && old.Right == r && old.Box.Label == n.BinaryLabel() {
		return old
	}
	return nil
}

// replay brings the pipeline's attachments from the previous term
// version to the delta's: per trunk node, children before parents,
// either a signature-pruned REUSE of the superseded node's frozen (box,
// index, counts) unit (tryReuse) or a fresh rebuild, sharing the
// wrappers of all untouched subtrees either way (Lemma 7.3); then the
// retirement cleanup — Forget the counting cache entry and drop the
// attachment of every node the batch removed from the term (paid here,
// on the replaying goroutine, not by the writer). Boxes kept alive by
// reuse skip the Forget: their counts still serve the live attachment.
// Nodes never attached are a no-op.
func (p *pipeline) replay(delta forest.TrunkDelta) {
	var kept map[*circuit.Box]bool
	for i, n := range delta.Fresh {
		if !p.fullRebuild {
			if ib := p.tryReuse(n, delta.PrevOf(i)); ib != nil {
				p.attach[n] = ib
				p.boxesReused++
				if kept == nil {
					kept = make(map[*circuit.Box]bool, len(delta.Fresh))
				}
				kept[ib.Box] = true
				continue
			}
		}
		p.attachNode(n)
	}
	// Moved roots: a structural edit relocated these whole subterms
	// without rebuilding them, so every node under a moved root keeps its
	// frozen (box, index, counts) unit untouched — no work, only the reuse
	// credit (a subterm of weight w is a full binary term of 2w−1 nodes).
	for _, m := range delta.Moved {
		if _, ok := p.attach[m]; ok {
			p.boxesReused += 2*m.Weight - 1
		}
	}
	for _, n := range delta.Retired {
		if ib, ok := p.attach[n]; ok {
			if !kept[ib.Box] {
				p.counts.Forget(ib.Box)
			}
			delete(p.attach, n)
		}
	}
}

// pubInfo carries the shared per-publication values every pipeline's
// snapshot records; it is read-only for the workers.
type pubInfo struct {
	version    uint64
	termHeight int
	pathCopies int
	rebalances int
	reads      *readCounters // engine-owned read-path counters
}

// applyDelta is the self-contained per-query unit of the parallel write
// path: replay the immutable trunk delta (box/index/count repair plus
// retirement cleanup), recompute γ and the root derivation count if this
// pipeline's root box changed, and assemble the query's published
// Snapshot. It touches no state outside the pipeline, so the engine may
// run any number of applyDelta calls — one per pipeline — concurrently
// against the same delta.
func (p *pipeline) applyDelta(delta forest.TrunkDelta, pub pubInfo) *Snapshot {
	p.replay(delta)
	rootIB := p.attach[delta.Root]
	if p.gammaRoot != rootIB.Box {
		p.gamma, p.emptyOK = p.builder.RootAccepting(&circuit.Circuit{Root: rootIB.Box})
		p.count = p.counts.Gamma(rootIB.Box, p.gamma, p.emptyOK)
		p.gammaRoot = rootIB.Box
	}
	return &Snapshot{
		root:             rootIB,
		gamma:            p.gamma,
		emptyOK:          p.emptyOK,
		count:            p.count,
		unambiguous:      p.unambiguous,
		mode:             p.mode,
		version:          pub.version,
		termHeight:       pub.termHeight,
		boxesRebuilt:     p.boxesRebuilt,
		boxesReused:      p.boxesReused,
		pathCopies:       pub.pathCopies,
		rebalances:       pub.rebalances,
		translatedStates: p.translatedStates,
		automatonStates:  p.builder.A.NumStates,
		reads:            pub.reads,
	}
}

// Engine is the shared writer core of a query set: it owns the source's
// trunk drain, the per-query pipelines, the worker pool bound, and the
// published MultiSnapshot. All mutation goes through Mutate / Register /
// Unregister, which serialize writers; Snapshot and Stats are safe from
// any goroutine at any time.
type Engine struct {
	mu      sync.Mutex
	src     Source
	pipes   map[QueryID]*pipeline // several IDs may share one pipeline
	order   []QueryID             // registered IDs, ascending (publication order)
	nextID  QueryID
	workers int

	// byKey is the multi-query optimizer's dedupe index: content key →
	// standing shareable pipelines (a short chain, in case distinct
	// automata ever collide on the 64-bit fingerprint — lookups verify
	// rule content before sharing). NoDedupe pipelines are absent.
	byKey map[pipeKey][]*pipeline
	// dedupedRegs counts registrations served by bumping a standing
	// pipeline's refcount instead of building (cumulative, monotone).
	dedupedRegs int

	// regPins holds the absolute delta-log start index of every
	// in-flight lock-light registration; while any is pinned, deltaLog
	// records every published TrunkDelta so the registering goroutines
	// can replay what they missed before splicing their pipelines in.
	// logBase is the absolute index of deltaLog[0]; whenever a pin
	// drops, the prefix no remaining pin needs is trimmed, so the log is
	// bounded by the deltas published during the longest STILL-RUNNING
	// registration (not by overlapping chains of them).
	regPins  []int
	logBase  int
	deltaLog []forest.TrunkDelta

	snap  atomic.Pointer[MultiSnapshot]
	stats atomic.Pointer[EngineStats]

	// reads aggregates read-path work (answers enumerated, parallel
	// drains) across every snapshot this engine publishes; snapshots
	// carry a pointer and bump the atomics lock-free.
	reads readCounters

	version    uint64
	pathCopies int // cumulative term nodes drained (shared across queries)
	// boxesReleased/reusedReleased accumulate the boxesRebuilt/boxesReused
	// counters of unregistered pipelines so EngineStats.BoxesRebuilt and
	// .BoxesReused stay cumulative and monotone.
	boxesReleased  int
	reusedReleased int

	// subs is the delta-streaming subscriber registry (delta.go): per
	// QueryID, the live Subscribe channels fed at publication time.
	// differ is the engine's reusable count-guided co-descent differ;
	// publication is serialized under e.mu, so one instance suffices.
	subs             map[QueryID][]*subscriber
	differ           *enumerate.Differ
	deltaResyncLimit int
	// Write-path delta counters (mutated under e.mu during publication,
	// surfaced via EngineStats): deltas offered to subscribers, answers
	// added/removed across computed per-pipeline diffs, and offers that
	// coalesced into a still-pending delivery.
	deltasEmitted   int64
	answersAdded    int64
	answersRemoved  int64
	deltasCoalesced int64
}

// initEngine wires the shared fields around the freshly built source,
// consumes the initial build's delta (there are no pipelines yet to
// replay it — late registration walks the live term instead), and
// installs the empty version-0 MultiSnapshot so Snapshot never returns
// nil. The first registration publishes version 1. Called by NewTreeSet
// / NewWordSet.
func (e *Engine) initEngine(src Source) {
	e.src = src
	e.pipes = map[QueryID]*pipeline{}
	e.byKey = map[pipeKey][]*pipeline{}
	e.workers = runtime.GOMAXPROCS(0)
	delta := src.DrainDelta()
	e.pathCopies += len(delta.Fresh)
	e.snap.Store(&MultiSnapshot{snaps: map[QueryID]*Snapshot{}})
	e.publishStats()
}

// CheckBalanceDeep verifies the height budget of every node of the
// current term: the scapegoat invariant the structural edits must
// maintain. O(n) — a test/differential-oracle hook, not a production
// call. Writer-side: callers must not race it with mutations.
func (e *Engine) CheckBalanceDeep() error { return e.src.CheckBalanceDeep() }

// SetWorkers bounds the worker pool of the parallel write path: at most
// n goroutines fan each trunk delta out across the standing queries'
// pipelines. n <= 0 resets to the default, runtime.GOMAXPROCS(0); n == 1
// forces the deterministic sequential path. The bound applies from the
// next publication on.
func (e *Engine) SetWorkers(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.setWorkersLocked(n)
}

func (e *Engine) setWorkersLocked(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.workers = n
}

// lookupShared returns the standing shareable pipeline for the key, or
// nil. Callers hold e.mu. The fingerprint match is verified against the
// actual rule content (Program.ContentEqual) so a hash collision can
// never alias two distinct queries onto one pipeline.
func (e *Engine) lookupShared(key pipeKey, prog *circuit.Program) *pipeline {
	for _, cand := range e.byKey[key] {
		if cand.builder.Program().ContentEqual(prog) {
			return cand
		}
	}
	return nil
}

// adoptLocked maps a fresh QueryID onto the pipeline (bumping its
// refcount), publishes a MultiSnapshot that includes the new query, and
// returns the ID. Callers hold e.mu; the pipeline is already current
// (a standing dedupe target, or a freshly built one that replayed the
// delta log).
func (e *Engine) adoptLocked(p *pipeline) QueryID {
	p.refs++
	e.nextID++
	id := e.nextID
	e.pipes[id] = p
	e.order = append(e.order, id) // nextID is increasing: order stays sorted
	e.applyAndPublish()
	return id
}

// register creates — or, for a content-equal automaton, SHARES — the
// pipeline for a prepared query builder. The dedupe fast path: if a
// shareable standing pipeline has the same content key (automaton rule
// fingerprint + mode + knobs, verified rule for rule), the new QueryID
// just joins it — refcount up, one publication, no O(|T|) build and no
// extra repair on any future batch. Otherwise the pipeline is built
// against the pinned current term OFF the writer's critical section,
// the deltas published meanwhile are replayed, and the finished
// pipeline is spliced in under a short lock hold, publishing a
// MultiSnapshot that includes the new query. Edits (and other
// registrations) stream concurrently with the O(|T|) build —
// registering a large query no longer stalls the update stream.
func (e *Engine) register(builder *circuit.Builder, translated int, opts Options) QueryID {
	key := pipeKey{
		fp:          builder.Program().Fingerprint(),
		mode:        opts.Mode,
		fullRebuild: opts.FullRebuild,
		translated:  translated,
	}
	if !opts.NoDedupe {
		e.mu.Lock()
		if opts.Workers > 0 {
			e.setWorkersLocked(opts.Workers)
		}
		if twin := e.lookupShared(key, builder.Program()); twin != nil {
			e.dedupedRegs++
			id := e.adoptLocked(twin)
			e.mu.Unlock()
			return id
		}
		e.mu.Unlock()
	}

	p := &pipeline{
		key:              key,
		builder:          builder,
		mode:             opts.Mode,
		attach:           map[*forest.Node]*enumerate.IndexedBox{},
		counts:           counting.NewEvaluator[*big.Int](counting.Derivations{}),
		translatedStates: translated,
		fullRebuild:      opts.FullRebuild,
	}
	// The unambiguity verdict only gates the ModeIndexed fast paths
	// (ModeSimple is always direct, ModeNaive never): don't pay the
	// product construction for baseline modes. Off-lock: the builder is
	// confined to this goroutine until splice-in.
	if opts.Mode == enumerate.ModeIndexed {
		p.unambiguous = builder.A.Unambiguous()
	}

	// Short lock hold #1: pin the current term version and start
	// recording deltas. Any trunk left undrained by a non-Mutate path is
	// absorbed first so the pinned walk sees exactly the live term
	// (normally a no-op: every mutation drains before publishing).
	e.mu.Lock()
	if opts.Workers > 0 {
		e.setWorkersLocked(opts.Workers)
	}
	e.absorbPending()
	root := e.src.TermRoot()
	pin := e.logBase + len(e.deltaLog)
	e.regPins = append(e.regPins, pin)
	e.mu.Unlock()

	// Off the critical section: the O(|T|) bottom-up build against the
	// pinned term. Path copying never mutates published nodes, so the
	// walk reads only frozen structure even while edits stream.
	root.Walk(p.attachNode)

	// Short lock hold #2: catch up on the deltas published since the
	// pin (their fresh nodes' children are either pinned — attached by
	// the walk — or fresh in an earlier delta, so replay order is
	// children-first throughout), then splice the pipeline in.
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, d := range e.deltaLog[pin-e.logBase:] {
		p.replay(d)
	}
	e.unpin(pin)
	if !opts.NoDedupe {
		// A twin may have finished registering while we built: converge
		// on it (our build is discarded) so the one-shared-pipeline-
		// per-key invariant holds no matter how registrations race.
		if twin := e.lookupShared(key, builder.Program()); twin != nil {
			e.dedupedRegs++
			return e.adoptLocked(twin)
		}
		p.shared = true
		e.byKey[key] = append(e.byKey[key], p)
	}
	return e.adoptLocked(p)
}

// Unregister removes a standing query and publishes a MultiSnapshot
// without it. The query's pipeline loses one reference; only when the
// LAST QueryID sharing it leaves are its attachments released (the
// boxes stay alive only as long as already-published snapshots
// reference them) — unregistering a query whose twin still stands
// never retires the shared structure. The shared term and every other
// pipeline are untouched.
func (e *Engine) Unregister(id QueryID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.pipes[id]
	if !ok {
		return fmt.Errorf("engine: query %d is not registered", id)
	}
	p.refs--
	if p.refs == 0 {
		if p.shared {
			chain := e.byKey[p.key]
			i := slices.Index(chain, p)
			chain = slices.Delete(chain, i, i+1)
			if len(chain) == 0 {
				delete(e.byKey, p.key)
			} else {
				e.byKey[p.key] = chain
			}
		}
		e.boxesReleased += p.boxesRebuilt
		e.reusedReleased += p.boxesReused
	}
	delete(e.pipes, id)
	i := slices.Index(e.order, id)
	e.order = slices.Delete(e.order, i, i+1)
	e.closeSubsLocked(id)
	e.applyAndPublish()
	return nil
}

// Queries returns the currently registered query IDs, ascending.
func (e *Engine) Queries() []QueryID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return slices.Clone(e.order)
}

// Mutate runs edit under the writer lock, drains the dirtied trunk into
// one immutable delta, fans it out to every registered pipeline — in
// parallel across the worker pool for k > 1 — and atomically publishes
// the resulting MultiSnapshot. The returned snapshot reflects whatever
// the edit managed to apply, also when it returns an error (forest edits
// are atomic, so a failed single edit publishes an unchanged structure).
func (e *Engine) Mutate(edit func() error) (*MultiSnapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	err := edit()
	return e.applyAndPublish(), err
}

// Snapshot returns the currently published MultiSnapshot: one atomic
// load, no locks. The result is immutable — a consistent version of
// every standing query — and remains fully usable no matter how many
// updates, registrations or unregistrations follow.
func (e *Engine) Snapshot() *MultiSnapshot { return e.snap.Load() }

// unpin drops one registration's pin and trims the delta-log prefix no
// remaining pin needs, releasing the references that kept retired term
// nodes (and their boxes) alive. Callers hold e.mu and have already
// replayed the log from their pin.
func (e *Engine) unpin(pin int) {
	i := slices.Index(e.regPins, pin)
	e.regPins = slices.Delete(e.regPins, i, i+1)
	if len(e.regPins) == 0 {
		e.logBase += len(e.deltaLog)
		e.deltaLog = nil
		return
	}
	if drop := slices.Min(e.regPins) - e.logBase; drop > 0 {
		// slices.Delete shifts in place and zeroes the tail, so the
		// dropped deltas' nodes become collectable.
		e.deltaLog = slices.Delete(e.deltaLog, 0, drop)
		e.logBase += drop
	}
}

// absorbPending drains any trunk left by a non-publication path into the
// standing pipelines without publishing (defensive; the dirty protocol
// is normally empty outside applyAndPublish). Callers hold e.mu.
func (e *Engine) absorbPending() {
	delta := e.src.DrainDelta()
	if delta.Empty() {
		return
	}
	e.pathCopies += len(delta.Fresh)
	if len(e.regPins) > 0 {
		e.deltaLog = append(e.deltaLog, delta)
	}
	for _, p := range e.distinctPipes(e.order) {
		p.replay(delta)
	}
}

// distinctPipes returns the DISTINCT pipelines behind the given query
// IDs, in first-appearance order (ascending first QueryID). This is the
// unit the write path fans out over: k registrations sharing d
// pipelines cost d repairs, not k. Callers hold e.mu.
func (e *Engine) distinctPipes(ids []QueryID) []*pipeline {
	out := make([]*pipeline, 0, len(ids))
	seen := make(map[*pipeline]bool, len(ids))
	for _, id := range ids {
		if p := e.pipes[id]; !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// applyAndPublish is the write path's back half: drain the trunk ONCE
// into an immutable TrunkDelta, fan pipeline.applyDelta out across the
// worker pool (sequentially for a single query or Workers=1), assemble
// and atomically install the MultiSnapshot, and publish the stats
// reading. Callers hold e.mu. O(log|T|·poly(|Q|)·k/workers) plus the
// O(queries) assembly.
func (e *Engine) applyAndPublish() *MultiSnapshot {
	delta := e.src.DrainDelta()
	e.pathCopies += len(delta.Fresh)
	if len(e.regPins) > 0 && !delta.Empty() {
		e.deltaLog = append(e.deltaLog, delta)
	}
	e.version++
	pub := pubInfo{
		version:    e.version,
		termHeight: delta.Root.Height,
		pathCopies: e.pathCopies,
		rebalances: e.src.Rebalances(),
		reads:      &e.reads,
	}

	ids := slices.Clone(e.order)
	// The fan-out unit is the DISTINCT pipeline: k registered queries
	// deduped onto d pipelines repair d (box, index, counts) trees, and
	// the worker pool is sized by d, not k.
	pipes := e.distinctPipes(ids)
	snaps := make(map[*pipeline]*Snapshot, len(pipes))
	if w := min(e.workers, len(pipes)); w <= 1 || delta.Empty() {
		// Deterministic sequential path: d <= 1, Workers == 1, or an
		// empty delta (register/unregister publications — replay is a
		// no-op and γ is cached, so per-pipeline work is O(1) and
		// spawning workers would cost more than it saves). No
		// goroutines, no pool overhead — single-query latency is
		// identical to the pre-parallel engine.
		for _, p := range pipes {
			snaps[p] = p.applyDelta(delta, pub)
		}
	} else {
		// Bounded pool: w workers claim pipeline indices from a shared
		// counter. Each pipeline is touched by exactly one worker
		// (goroutine confinement), all workers replay the same immutable
		// delta, and wg.Wait orders every worker write before the
		// publication below.
		out := make([]*Snapshot, len(pipes))
		var next atomic.Int64
		var wg sync.WaitGroup
		for range w {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(pipes) {
						return
					}
					out[i] = pipes[i].applyDelta(delta, pub)
				}
			}()
		}
		wg.Wait()
		for i, p := range pipes {
			snaps[p] = out[i]
		}
	}

	m := &MultiSnapshot{
		version: e.version,
		ids:     ids,
		snaps:   make(map[QueryID]*Snapshot, len(ids)),
	}
	// Twin QueryIDs project the SAME snapshot: content-equal automata
	// answer identically, so the per-query view of a shared pipeline is
	// the identity projection.
	for _, id := range ids {
		m.snaps[id] = snaps[e.pipes[id]]
	}
	e.dispatchDeltas(e.snap.Load(), m)
	e.snap.Store(m)
	e.publishStats()
	return m
}
