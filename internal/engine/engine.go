// Package engine is the snapshot-isolated dynamic enumeration engine:
// the concurrent serving layer over the paper's pipeline (Theorems 8.1
// and 8.5).
//
// The engine is a QUERY-SET engine: one maintained forest algebra term
// serves any number of standing queries over the same document. The
// writer core splits into
//
//   - ONE shared source (forest.Forest or forest.Word): the document,
//     its balanced term, the path-copying edits and the scapegoat
//     rebalances. This work is independent of the number of queries —
//     k standing queries pay for it once, not k times.
//
//   - N per-query PIPELINES, one per registered query: a circuit
//     builder for the query's homogenized automaton, the attachment map
//     from live term nodes to frozen (Box, BoxIndex) units, the
//     enumeration mode, and — in each published snapshot — the γ set of
//     accepting states at the root. Only the O(log|T|)·poly(|Q|) box
//     and index repair along the hollowing trunk (Lemma 7.3) scales
//     with the number of queries.
//
// Queries register and unregister at runtime: registration builds the
// new pipeline's (box, index) tree against the current term version by
// a bottom-up walk of the live term (forest.WalkTerm), without touching
// other pipelines' attachments; unregistration drops exactly one
// pipeline's attachments.
//
// Publication is an immutable MultiSnapshot — query ID → Snapshot —
// installed through a single atomic.Pointer. Readers stay lock-free:
// one atomic load yields a consistent version of every standing query,
// and everything reachable from it is frozen. Per-query enumeration
// (Snapshot.Results and friends) is unchanged from the single-query
// engine.
//
// TreeEngine and WordEngine remain as thin single-query shims over
// TreeSet and WordSet for callers that serve one query per document.
//
// Batched updates (ApplyBatch) amortize the publication work: all edits
// of a batch run back-to-back on the forest, the dirtied trunk is
// deduplicated by Drain, and boxes shared by several edits' trunks are
// rebuilt once per pipeline instead of once per edit — one publication
// per batch.
package engine

import (
	"fmt"
	"math/big"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/counting"
	"repro/internal/enumerate"
	"repro/internal/forest"
	"repro/internal/tree"
)

// Options configure a registered query.
type Options struct {
	// Mode selects the enumeration algorithm (default: ModeIndexed, the
	// paper's algorithm). ModeNaive and ModeSimple are the baselines of
	// experiments E1/E8.
	Mode enumerate.Mode
}

// QueryID identifies a registered query within an Engine. IDs are
// assigned by Register, never reused, and start at 1; the zero value is
// never a valid query.
type QueryID int

// Source is the writer-side view of a maintained forest algebra term:
// both forest.Forest (trees, Theorem 8.1) and forest.Word (words,
// Theorem 8.5) implement it, which is what lets one engine core serve
// both pipelines.
type Source interface {
	// TermRoot returns the current term root.
	TermRoot() *forest.Node
	// Drain returns the term nodes needing circuit-box (re)construction,
	// children before parents, and resets the dirty list.
	Drain() []*forest.Node
	// DrainRetired returns the term nodes dropped from the term since
	// the last call (their attachments can be released) and resets the
	// list.
	DrainRetired() []*forest.Node
	// WalkTerm visits every node of the live term bottom-up without
	// consuming the dirty protocol (late query registration).
	WalkTerm(func(*forest.Node))
	// Rebalances returns the cumulative number of scapegoat rebuilds.
	Rebalances() int
}

// pipeline is the per-query half of the engine: everything that depends
// on one registered query. The shared term work (path copies,
// rebalances) lives in the Source; a pipeline only ever consumes the
// drained trunk. The query's γ (accepting boxed set at the root) is
// recomputed at each publication and lives in the published Snapshot.
type pipeline struct {
	builder *circuit.Builder
	mode    enumerate.Mode

	// attach maps live term nodes to their frozen wrapper. Entries of
	// term nodes retired by path copying are released eagerly after
	// every rebuild (DrainRetired), so the map — and with it the set of
	// superseded boxes the writer keeps alive — tracks the live term;
	// published snapshots hold their own references and are unaffected.
	attach map[*forest.Node]*enumerate.IndexedBox

	// counts is the counting-semiring evaluator (Section 4 multiset
	// remark): per-box derivation counts cached by box identity, so the
	// hollowing-trunk rebuild invalidates exactly the trunk and count
	// maintenance rides the same O(log|T|)·poly(|Q|) repair as the
	// index. attachNode publishes each box's count slice into its frozen
	// wrapper (IndexedBox.Counts) for the lock-free readers; the
	// evaluator cache itself is writer-owned and tracks the live term
	// (Forget on retirement).
	counts *counting.Evaluator[*big.Int]

	// unambiguous records the registration-time tva.Unambiguous check:
	// when set, derivation counts equal answer counts and snapshots take
	// the O(poly|Q|) Count / At fast paths.
	unambiguous bool

	translatedStates int
	boxesRebuilt     int // cumulative for this query, incl. registration

	// gamma caches the accepting boxed set at the root, keyed by the
	// root box it was computed for: publications that leave this
	// pipeline's root untouched (register/unregister of OTHER queries)
	// skip the poly(|Q|) RootAccepting recomputation. count is the total
	// derivation count at that root (the Snapshot.Derivations value),
	// cached under the same key.
	gamma     bitset.Set
	emptyOK   bool
	count     *big.Int
	gammaRoot *circuit.Box
}

// attachNode builds the frozen (box, index) unit for one term node whose
// children (if any) are already attached, and records it.
func (p *pipeline) attachNode(n *forest.Node) {
	indexed := p.mode == enumerate.ModeIndexed
	var ib *enumerate.IndexedBox
	if n.IsLeaf() {
		ib = enumerate.Wrap(p.builder.LeafBox(n.BinaryLabel(), n.TreeID), nil, nil, indexed)
	} else {
		l, r := p.attach[n.Left], p.attach[n.Right]
		ib = enumerate.Wrap(p.builder.InnerBox(n.BinaryLabel(), tree.InvalidNode, l.Box, r.Box), l, r, indexed)
	}
	ib.Counts = p.counts.UnionsOf(ib.Box)
	p.attach[n] = ib
	p.boxesRebuilt++
}

// Engine is the shared writer core of a query set: it owns the source's
// trunk drain, the per-query pipelines, and the published MultiSnapshot.
// All mutation goes through Mutate / Register / Unregister, which
// serialize writers; Snapshot is safe from any goroutine at any time.
type Engine struct {
	mu     sync.Mutex
	src    Source
	pipes  map[QueryID]*pipeline
	order  []QueryID // registered IDs, ascending (publication order)
	nextID QueryID

	snap atomic.Pointer[MultiSnapshot]

	version    uint64
	pathCopies int // cumulative term nodes drained (shared across queries)
	// boxesReleased accumulates the boxesRebuilt counters of unregistered
	// pipelines so BoxesRebuilt stays cumulative and monotone.
	boxesReleased int
}

// initEngine wires the shared fields around the freshly built source,
// consumes the initial build's dirty list (there are no pipelines yet to
// attach it to — late registration walks the live term instead), and
// installs the empty version-0 MultiSnapshot so Snapshot never returns
// nil. The first registration publishes version 1. Called by NewTreeSet
// / NewWordSet.
func (e *Engine) initEngine(src Source) {
	e.src = src
	e.pipes = map[QueryID]*pipeline{}
	e.rebuildTrunk()
	e.snap.Store(&MultiSnapshot{snaps: map[QueryID]*Snapshot{}})
}

// register creates the pipeline for a prepared query builder, builds its
// (box, index) tree against the current term by a bottom-up walk of the
// live term — other pipelines' attachments are untouched — and publishes
// a MultiSnapshot that includes the new query.
func (e *Engine) register(builder *circuit.Builder, translated int, opts Options) QueryID {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Flush any pending trunk first so the walk below sees exactly the
	// live term and existing pipelines stay in sync (the dirty list is
	// normally empty here: every mutation drains before publishing).
	e.rebuildTrunk()
	p := &pipeline{
		builder:          builder,
		mode:             opts.Mode,
		attach:           map[*forest.Node]*enumerate.IndexedBox{},
		counts:           counting.NewEvaluator[*big.Int](counting.Derivations{}),
		translatedStates: translated,
	}
	// The unambiguity verdict only gates the ModeIndexed fast paths
	// (ModeSimple is always direct, ModeNaive never): don't pay the
	// product construction for baseline modes.
	if opts.Mode == enumerate.ModeIndexed {
		p.unambiguous = builder.A.Unambiguous()
	}
	e.src.WalkTerm(p.attachNode)
	e.nextID++
	id := e.nextID
	e.pipes[id] = p
	e.order = append(e.order, id) // nextID is increasing: order stays sorted
	e.publish()
	return id
}

// Unregister removes a standing query and publishes a MultiSnapshot
// without it. Exactly this query's attachments are released (the boxes
// stay alive only as long as already-published snapshots reference
// them); the shared term and every other pipeline are untouched.
func (e *Engine) Unregister(id QueryID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.pipes[id]
	if !ok {
		return fmt.Errorf("engine: query %d is not registered", id)
	}
	e.boxesReleased += p.boxesRebuilt
	delete(e.pipes, id)
	i := slices.Index(e.order, id)
	e.order = slices.Delete(e.order, i, i+1)
	e.publish()
	return nil
}

// Queries returns the currently registered query IDs, ascending.
func (e *Engine) Queries() []QueryID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return slices.Clone(e.order)
}

// Mutate runs edit under the writer lock, fans the dirtied trunk out to
// every registered pipeline bottom-up (Lemma 7.3, once per query), and
// atomically publishes the resulting MultiSnapshot. The returned
// snapshot reflects whatever the edit managed to apply, also when it
// returns an error (forest edits are atomic, so a failed single edit
// publishes an unchanged structure).
func (e *Engine) Mutate(edit func() error) (*MultiSnapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	err := edit()
	e.rebuildTrunk()
	return e.publish(), err
}

// Snapshot returns the currently published MultiSnapshot: one atomic
// load, no locks. The result is immutable — a consistent version of
// every standing query — and remains fully usable no matter how many
// updates, registrations or unregistrations follow.
func (e *Engine) Snapshot() *MultiSnapshot { return e.snap.Load() }

// BoxesRebuilt returns the cumulative number of circuit boxes built
// across all pipelines, including registration walks and pipelines
// unregistered since (the counter is monotone; it is the per-query
// update-work counter of the amortization experiments, summed).
func (e *Engine) BoxesRebuilt() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := e.boxesReleased
	for _, p := range e.pipes {
		total += p.boxesRebuilt
	}
	return total
}

// QueryBoxesRebuilt returns the cumulative box-construction count of one
// registered query's pipeline; ok is false if the query is not
// registered.
func (e *Engine) QueryBoxesRebuilt(id QueryID) (count int, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.pipes[id]
	if !ok {
		return 0, false
	}
	return p.boxesRebuilt, true
}

// PathCopies returns the cumulative number of fresh term nodes the
// source handed to the engine: the initial build plus every path-copied
// trunk node and scapegoat rebuild since. This is the SHARED term work —
// it does not grow with the number of registered queries, which is the
// measurable payoff of the query-set architecture (experiment C2).
func (e *Engine) PathCopies() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pathCopies
}

// Rebalances returns the source's cumulative scapegoat rebuild count
// (shared term work, like PathCopies).
func (e *Engine) Rebalances() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.src.Rebalances()
}

// rebuildTrunk drains the hollowing trunk ONCE and fans every drained
// node out to all registered pipelines: each builds a fresh frozen
// (box, index) unit for the node, children before parents, sharing the
// wrappers of all untouched subtrees (Lemma 7.3). Retired term nodes are
// released from every pipeline's attachment map.
func (e *Engine) rebuildTrunk() {
	for _, n := range e.src.Drain() {
		e.pathCopies++
		for _, id := range e.order {
			e.pipes[id].attachNode(n)
		}
	}
	// Release the attachments of superseded trunk nodes right away:
	// O(trunk · queries) deletes, and the old boxes become garbage as
	// soon as no snapshot references them. (Nodes created and dropped
	// within the same batch were never attached; deleting them is a
	// no-op.)
	for _, n := range e.src.DrainRetired() {
		for _, p := range e.pipes {
			if ib, ok := p.attach[n]; ok {
				p.counts.Forget(ib.Box)
				delete(p.attach, n)
			}
		}
	}
}

// publish assembles and atomically installs the MultiSnapshot for the
// current term: one Snapshot per registered query, all at the same
// version. O(queries · poly |Q|): per query it touches only the root
// box.
func (e *Engine) publish() *MultiSnapshot {
	e.version++
	root := e.src.TermRoot()
	m := &MultiSnapshot{
		version: e.version,
		ids:     slices.Clone(e.order),
		snaps:   make(map[QueryID]*Snapshot, len(e.order)),
	}
	for _, id := range e.order {
		p := e.pipes[id]
		rootIB := p.attach[root]
		if p.gammaRoot != rootIB.Box {
			p.gamma, p.emptyOK = p.builder.RootAccepting(&circuit.Circuit{Root: rootIB.Box})
			p.count = p.counts.Gamma(rootIB.Box, p.gamma, p.emptyOK)
			p.gammaRoot = rootIB.Box
		}
		m.snaps[id] = &Snapshot{
			root:             rootIB,
			gamma:            p.gamma,
			emptyOK:          p.emptyOK,
			count:            p.count,
			unambiguous:      p.unambiguous,
			mode:             p.mode,
			version:          e.version,
			termHeight:       root.Height,
			boxesRebuilt:     p.boxesRebuilt,
			rebalances:       e.src.Rebalances(),
			translatedStates: p.translatedStates,
			automatonStates:  p.builder.A.NumStates,
		}
	}
	e.snap.Store(m)
	return m
}
