package engine

import "repro/internal/tree"

// UpdateOp identifies one edit operation of Definition 7.1 (trees) or
// its word counterpart.
type UpdateOp uint8

const (
	// OpRelabel replaces the label of a tree node / word letter.
	OpRelabel UpdateOp = iota
	// OpDelete removes a tree leaf / word letter.
	OpDelete
	// OpInsertFirstChild inserts a new first child (trees only).
	OpInsertFirstChild
	// OpInsertRightSibling inserts a new right sibling (trees only).
	OpInsertRightSibling
	// OpInsertAfter inserts a letter after the given one (words only).
	OpInsertAfter
	// OpInsertBefore inserts a letter before the given one (words only).
	OpInsertBefore
)

// String returns the edit-language name of the operation.
func (op UpdateOp) String() string {
	switch op {
	case OpRelabel:
		return "relabel"
	case OpDelete:
		return "delete"
	case OpInsertFirstChild:
		return "insert"
	case OpInsertRightSibling:
		return "insertR"
	case OpInsertAfter:
		return "insertAfter"
	case OpInsertBefore:
		return "insertBefore"
	}
	return "?"
}

// Update is one edit of a batch: an operation, the node (or letter) it
// targets, and the label for relabels and inserts.
type Update struct {
	Op    UpdateOp
	Node  tree.NodeID
	Label tree.Label
}
