package engine

import "repro/internal/tree"

// UpdateOp identifies one edit operation of Definition 7.1 (trees), a
// structural edit (subtree insert/delete/move, word range edits), or a
// word letter edit.
type UpdateOp uint8

const (
	// OpRelabel replaces the label of a tree node / word letter.
	OpRelabel UpdateOp = iota
	// OpDelete removes a tree leaf / word letter.
	OpDelete
	// OpInsertFirstChild inserts a new first child (trees only).
	OpInsertFirstChild
	// OpInsertRightSibling inserts a new right sibling (trees only).
	OpInsertRightSibling
	// OpInsertAfter inserts a letter after the given one (words only).
	OpInsertAfter
	// OpInsertBefore inserts a letter before the given one (words only).
	OpInsertBefore

	// Structural tree edits.

	// OpDeleteSubtree removes the whole subtree of Node (trees only).
	OpDeleteSubtree
	// OpMoveSubtreeFirstChild moves the subtree of Node to be the first
	// child subtree of Dest (trees only).
	OpMoveSubtreeFirstChild
	// OpMoveSubtreeRightSibling moves the subtree of Node to be the
	// right-sibling subtree of Dest (trees only).
	OpMoveSubtreeRightSibling
	// OpInsertSubtreeFirstChild grafts a copy of Fragment as the first
	// child subtree of Node (trees only).
	OpInsertSubtreeFirstChild
	// OpInsertSubtreeRightSibling grafts a copy of Fragment as the
	// right-sibling subtree of Node (trees only).
	OpInsertSubtreeRightSibling

	// Structural word edits (positions, not letter IDs).

	// OpMoveRange moves the K letters from position From after position
	// To of the remaining word, To = -1 prepending (words only).
	OpMoveRange
	// OpInsertRange inserts Labels at position From (words only).
	OpInsertRange
	// OpDeleteRange removes the K letters from position From (words
	// only).
	OpDeleteRange
	// OpConcat appends Labels at the end of the word (words only).
	OpConcat
)

// String returns the edit-language name of the operation.
func (op UpdateOp) String() string {
	switch op {
	case OpRelabel:
		return "relabel"
	case OpDelete:
		return "delete"
	case OpInsertFirstChild:
		return "insert"
	case OpInsertRightSibling:
		return "insertR"
	case OpInsertAfter:
		return "insertAfter"
	case OpInsertBefore:
		return "insertBefore"
	case OpDeleteSubtree:
		return "deleteSub"
	case OpMoveSubtreeFirstChild:
		return "moveSub"
	case OpMoveSubtreeRightSibling:
		return "moveSubR"
	case OpInsertSubtreeFirstChild:
		return "insertSub"
	case OpInsertSubtreeRightSibling:
		return "insertSubR"
	case OpMoveRange:
		return "moveRange"
	case OpInsertRange:
		return "insertRange"
	case OpDeleteRange:
		return "deleteRange"
	case OpConcat:
		return "concat"
	}
	return "?"
}

// Update is one edit of a batch. Node, Label serve the leaf edits; the
// structural tree edits add Dest (move destinations) and Fragment
// (grafted subtree); the word range edits use the positional fields
// From/K/To and Labels instead of IDs.
type Update struct {
	Op    UpdateOp
	Node  tree.NodeID
	Label tree.Label

	// Dest is the destination node of subtree moves.
	Dest tree.NodeID
	// Fragment is the grafted tree of subtree inserts (copied in under
	// fresh IDs; the fragment itself is not consumed).
	Fragment *tree.Unranked

	// From, K, To are the positional arguments of the word range edits:
	// source position, range length, destination position (To = -1
	// prepends; see forest.Word.MoveRange).
	From int
	K    int
	To   int
	// Labels carries the letters of OpInsertRange / OpConcat.
	Labels []tree.Label
}
