package engine

import "fmt"

// shim is the shared half of the single-query engines (TreeEngine,
// WordEngine): it pins one query ID and projects that query's slice out
// of the owning Engine's MultiSnapshots.
type shim struct {
	eng *Engine
	id  QueryID
}

// ID returns the engine's query ID within Set.
func (s shim) ID() QueryID { return s.id }

// project extracts this query's slice of a MultiSnapshot, failing fast
// with a clear message if the query was unregistered out from under the
// shim (instead of returning a nil snapshot that panics far away).
func (s shim) project(m *MultiSnapshot) *Snapshot {
	snap := m.Query(s.id)
	if snap == nil {
		panic(fmt.Sprintf("engine: query %d was unregistered from under its single-query shim", s.id))
	}
	return snap
}

// Snapshot returns this query's slice of the currently published
// MultiSnapshot: still one atomic load, no locks.
func (s shim) Snapshot() *Snapshot { return s.project(s.eng.Snapshot()) }

// Subscribe opens an answer-delta stream for this engine's query: one
// Delta per publication, coalescing under backpressure, closed when the
// engine is unregistered. See Engine.Subscribe.
func (s shim) Subscribe() (<-chan Delta, error) { return s.eng.Subscribe(s.id) }

// BoxesRebuilt returns the cumulative number of circuit boxes built for
// this query, including the initial construction (the update-work
// counter of the amortization experiments). Like every shim method it
// fails fast if the query was unregistered out from under the shim.
func (s shim) BoxesRebuilt() int {
	n, ok := s.eng.QueryBoxesRebuilt(s.id)
	if !ok {
		panic(fmt.Sprintf("engine: query %d was unregistered from under its single-query shim", s.id))
	}
	return n
}
