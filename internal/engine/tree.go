package engine

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/forest"
	"repro/internal/tree"
	"repro/internal/tva"
)

// TreeSet is the multi-query engine of Theorem 8.1 over one dynamic
// unranked tree: it maintains the satisfying assignments of any number
// of standing stepwise-TVA queries, registered and unregistered at
// runtime, under the edit operations of Definition 7.1. Edits (single or
// batched) go through the writer API below and publish ONE MultiSnapshot
// covering every standing query; any number of goroutines read via
// Snapshot. The term/forest work of an edit is shared across all
// queries — only the logarithmic box/index repair scales with the query
// count.
type TreeSet struct {
	Engine
	f *forest.Forest
}

// NewTreeSet encodes the tree as a balanced term (linear in |T| up to
// the balancing's O(log) factor documented in DESIGN.md) and publishes
// an empty MultiSnapshot. Queries are added with Register.
func NewTreeSet(t *tree.Unranked) *TreeSet {
	s := &TreeSet{f: forest.New(t)}
	s.initEngine(s.f)
	return s
}

// Register adds a standing query: it translates the stepwise TVA to the
// term alphabet, homogenizes it, builds the query's (box, index) tree
// against the CURRENT term version — polynomial in |Q|, linear in |T|,
// independent of the other registered queries — and publishes a
// MultiSnapshot including the new query. A query registered after any
// number of edits answers exactly as if it had been registered from the
// start.
func (s *TreeSet) Register(query *tva.Unranked, opts Options) (QueryID, error) {
	ab, err := forest.Translate(query)
	if err != nil {
		return 0, err
	}
	builder, err := circuit.NewBuilder(ab.Homogenize())
	if err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	return s.register(builder, ab.NumStates, opts), nil
}

// Tree returns the underlying tree. It is owned by the writer: read it
// only from the goroutine applying updates (concurrent readers should
// work from snapshots, which are self-contained).
func (s *TreeSet) Tree() *tree.Unranked { return s.f.Tree }

// Relabel implements relabel(n, l) with O(log|T|·poly(|Q|)·queries) work
// and publishes the resulting MultiSnapshot.
func (s *TreeSet) Relabel(id tree.NodeID, l tree.Label) (*MultiSnapshot, error) {
	return s.Mutate(func() error { return s.f.Relabel(id, l) })
}

// InsertFirstChild implements insert(n, l), returning the new node's ID
// and the resulting MultiSnapshot.
func (s *TreeSet) InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, *MultiSnapshot, error) {
	var v tree.NodeID
	m, err := s.Mutate(func() error {
		var err error
		v, err = s.f.InsertFirstChild(id, l)
		return err
	})
	return v, m, err
}

// InsertRightSibling implements insertR(n, l), returning the new node's
// ID and the resulting MultiSnapshot.
func (s *TreeSet) InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, *MultiSnapshot, error) {
	var v tree.NodeID
	m, err := s.Mutate(func() error {
		var err error
		v, err = s.f.InsertRightSibling(id, l)
		return err
	})
	return v, m, err
}

// Delete implements delete(n) for leaves and publishes the resulting
// MultiSnapshot.
func (s *TreeSet) Delete(id tree.NodeID) (*MultiSnapshot, error) {
	return s.Mutate(func() error { return s.f.Delete(id) })
}

// DeleteSubtree implements deleteSub(n): the whole subtree of n is
// removed and one MultiSnapshot is published; repair cost is O(log|T| +
// releasing the dropped boxes) per query.
func (s *TreeSet) DeleteSubtree(id tree.NodeID) (*MultiSnapshot, error) {
	return s.Mutate(func() error { return s.f.DeleteSubtree(id) })
}

// MoveSubtreeFirstChild implements moveSub(n, d): the subtree of n
// becomes the first child subtree of d. The moved subtree's frozen
// boxes are reused wholesale (TrunkDelta.Moved), so per-query repair is
// O(log|T| + boundary), independent of the subtree size.
func (s *TreeSet) MoveSubtreeFirstChild(id, dest tree.NodeID) (*MultiSnapshot, error) {
	return s.Mutate(func() error { return s.f.MoveSubtreeFirstChild(id, dest) })
}

// MoveSubtreeRightSibling implements moveSubR(n, d): the subtree of n
// becomes the right-sibling subtree of d (same reuse as
// MoveSubtreeFirstChild).
func (s *TreeSet) MoveSubtreeRightSibling(id, dest tree.NodeID) (*MultiSnapshot, error) {
	return s.Mutate(func() error { return s.f.MoveSubtreeRightSibling(id, dest) })
}

// InsertSubtreeFirstChild implements insertSub(n, F): a copy of the
// fragment becomes the first child subtree of n (bulk-built balanced
// term, one splice). Returns the copy's root ID.
func (s *TreeSet) InsertSubtreeFirstChild(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, *MultiSnapshot, error) {
	var v tree.NodeID
	m, err := s.Mutate(func() error {
		var err error
		v, err = s.f.InsertSubtreeFirstChild(id, frag)
		return err
	})
	return v, m, err
}

// InsertSubtreeRightSibling implements insertSubR(n, F): a copy of the
// fragment becomes the right-sibling subtree of n.
func (s *TreeSet) InsertSubtreeRightSibling(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, *MultiSnapshot, error) {
	var v tree.NodeID
	m, err := s.Mutate(func() error {
		var err error
		v, err = s.f.InsertSubtreeRightSibling(id, frag)
		return err
	})
	return v, m, err
}

// ApplyBatch applies the updates in order under one writer-lock hold and
// publishes ONE MultiSnapshot for the whole batch. Box and index repair
// is amortized across the batch per query: trunk nodes dirtied by
// several edits are rebuilt once, not once per edit, so k clustered
// edits cost well below k single publications — and the forest/term work
// is paid once regardless of how many queries stand.
//
// The returned IDs give, per batch position, the node created by an
// insert operation (tree.InvalidNode for relabels, deletes and unapplied
// positions; node 0 is a valid ID, the root of parsed trees). On the
// first failing update the batch stops; the edits already applied are
// still published (each forest edit is atomic), and the error identifies
// the position.
func (s *TreeSet) ApplyBatch(batch []Update) (*MultiSnapshot, []tree.NodeID, error) {
	ids := make([]tree.NodeID, len(batch))
	for i := range ids {
		ids[i] = tree.InvalidNode
	}
	m, err := s.Mutate(func() error {
		for i, u := range batch {
			var v tree.NodeID
			var err error
			switch u.Op {
			case OpRelabel:
				err = s.f.Relabel(u.Node, u.Label)
			case OpInsertFirstChild:
				v, err = s.f.InsertFirstChild(u.Node, u.Label)
			case OpInsertRightSibling:
				v, err = s.f.InsertRightSibling(u.Node, u.Label)
			case OpDelete:
				err = s.f.Delete(u.Node)
			case OpDeleteSubtree:
				err = s.f.DeleteSubtree(u.Node)
			case OpMoveSubtreeFirstChild:
				err = s.f.MoveSubtreeFirstChild(u.Node, u.Dest)
			case OpMoveSubtreeRightSibling:
				err = s.f.MoveSubtreeRightSibling(u.Node, u.Dest)
			case OpInsertSubtreeFirstChild:
				v, err = s.f.InsertSubtreeFirstChild(u.Node, u.Fragment)
			case OpInsertSubtreeRightSibling:
				v, err = s.f.InsertSubtreeRightSibling(u.Node, u.Fragment)
			default:
				err = fmt.Errorf("engine: update %v is not a tree operation", u.Op)
			}
			if err != nil {
				return fmt.Errorf("engine: batch update %d (%v n%d): %w", i, u.Op, u.Node, err)
			}
			switch u.Op {
			case OpInsertFirstChild, OpInsertRightSibling,
				OpInsertSubtreeFirstChild, OpInsertSubtreeRightSibling:
				ids[i] = v
			}
		}
		return nil
	})
	return m, ids, err
}

// TreeEngine is the single-query shim over TreeSet (the Theorem 8.1
// engine most callers want): one standing query, the same writer API,
// and plain Snapshot results. It is a thin projection — the underlying
// TreeSet is reachable via Set for callers that later add more standing
// queries to the same document.
type TreeEngine struct {
	shim
	set   *TreeSet
	query *tva.Unranked
}

// NewTree preprocesses the tree and the query: it builds the shared term
// once and registers the single standing query, publishing the first
// snapshot. Preprocessing is linear in |T| (up to the balancing's O(log)
// factor) and polynomial in |Q|.
func NewTree(t *tree.Unranked, query *tva.Unranked, opts Options) (*TreeEngine, error) {
	s := NewTreeSet(t)
	id, err := s.Register(query, opts)
	if err != nil {
		return nil, err
	}
	return &TreeEngine{shim: shim{eng: &s.Engine, id: id}, set: s, query: query}, nil
}

// Set returns the underlying multi-query engine; further queries
// registered on it share this engine's term and update stream. Do NOT
// unregister this engine's own query (ID) through it: the shim has no
// other query to project and fails fast (panics) on its next use.
func (e *TreeEngine) Set() *TreeSet { return e.set }

// Tree returns the underlying tree (writer-side view; see TreeSet.Tree).
func (e *TreeEngine) Tree() *tree.Unranked { return e.set.Tree() }

// Query returns the standing query automaton.
func (e *TreeEngine) Query() *tva.Unranked { return e.query }

// Relabel implements relabel(n, l) with O(log|T|·poly(|Q|)) work and
// publishes the resulting snapshot.
func (e *TreeEngine) Relabel(id tree.NodeID, l tree.Label) (*Snapshot, error) {
	m, err := e.set.Relabel(id, l)
	return e.project(m), err
}

// InsertFirstChild implements insert(n, l), returning the new node's ID
// and the resulting snapshot.
func (e *TreeEngine) InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, *Snapshot, error) {
	v, m, err := e.set.InsertFirstChild(id, l)
	return v, e.project(m), err
}

// InsertRightSibling implements insertR(n, l), returning the new node's
// ID and the resulting snapshot.
func (e *TreeEngine) InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, *Snapshot, error) {
	v, m, err := e.set.InsertRightSibling(id, l)
	return v, e.project(m), err
}

// Delete implements delete(n) for leaves and publishes the resulting
// snapshot.
func (e *TreeEngine) Delete(id tree.NodeID) (*Snapshot, error) {
	m, err := e.set.Delete(id)
	return e.project(m), err
}

// DeleteSubtree implements deleteSub(n) (see TreeSet.DeleteSubtree).
func (e *TreeEngine) DeleteSubtree(id tree.NodeID) (*Snapshot, error) {
	m, err := e.set.DeleteSubtree(id)
	return e.project(m), err
}

// MoveSubtreeFirstChild implements moveSub(n, d) (see
// TreeSet.MoveSubtreeFirstChild).
func (e *TreeEngine) MoveSubtreeFirstChild(id, dest tree.NodeID) (*Snapshot, error) {
	m, err := e.set.MoveSubtreeFirstChild(id, dest)
	return e.project(m), err
}

// MoveSubtreeRightSibling implements moveSubR(n, d) (see
// TreeSet.MoveSubtreeRightSibling).
func (e *TreeEngine) MoveSubtreeRightSibling(id, dest tree.NodeID) (*Snapshot, error) {
	m, err := e.set.MoveSubtreeRightSibling(id, dest)
	return e.project(m), err
}

// InsertSubtreeFirstChild implements insertSub(n, F), returning the
// fragment copy's root ID.
func (e *TreeEngine) InsertSubtreeFirstChild(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, *Snapshot, error) {
	v, m, err := e.set.InsertSubtreeFirstChild(id, frag)
	return v, e.project(m), err
}

// InsertSubtreeRightSibling implements insertSubR(n, F), returning the
// fragment copy's root ID.
func (e *TreeEngine) InsertSubtreeRightSibling(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, *Snapshot, error) {
	v, m, err := e.set.InsertSubtreeRightSibling(id, frag)
	return v, e.project(m), err
}

// ApplyBatch applies the updates in order under one writer-lock hold and
// publishes once for the whole batch (see TreeSet.ApplyBatch for the
// amortization, InvalidNode-sentinel ID and error contracts).
func (e *TreeEngine) ApplyBatch(batch []Update) (*Snapshot, []tree.NodeID, error) {
	m, ids, err := e.set.ApplyBatch(batch)
	return e.project(m), ids, err
}
