package engine

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/forest"
	"repro/internal/tree"
	"repro/internal/tva"
)

// TreeEngine is the snapshot-isolated engine of Theorem 8.1: it
// maintains the satisfying assignments of an unranked stepwise TVA on a
// dynamic unranked tree. Edits (single or batched) go through the writer
// API below; any number of goroutines read via Snapshot.
type TreeEngine struct {
	Engine
	f     *forest.Forest
	query *tva.Unranked
}

// NewTree preprocesses the tree and the query: it translates the
// stepwise TVA to the term alphabet, homogenizes it, encodes the tree as
// a balanced term, builds the assignment circuit and its index, and
// publishes the first snapshot. Preprocessing is linear in |T| (up to
// the balancing's O(log) factor documented in DESIGN.md) and polynomial
// in |Q|.
func NewTree(t *tree.Unranked, query *tva.Unranked, opts Options) (*TreeEngine, error) {
	ab, err := forest.Translate(query)
	if err != nil {
		return nil, err
	}
	translated := ab.NumStates
	hb := ab.Homogenize()
	builder, err := circuit.NewBuilder(hb)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &TreeEngine{f: forest.New(t), query: query}
	e.initEngine(e.f, builder, translated, opts)
	return e, nil
}

// Tree returns the underlying tree. It is owned by the writer: read it
// only from the goroutine applying updates (concurrent readers should
// work from snapshots, which are self-contained).
func (e *TreeEngine) Tree() *tree.Unranked { return e.f.Tree }

// Query returns the preprocessed query automaton.
func (e *TreeEngine) Query() *tva.Unranked { return e.query }

// Relabel implements relabel(n, l) with O(log|T|·poly(|Q|)) work and
// publishes the resulting snapshot.
func (e *TreeEngine) Relabel(id tree.NodeID, l tree.Label) (*Snapshot, error) {
	return e.Mutate(func() error { return e.f.Relabel(id, l) })
}

// InsertFirstChild implements insert(n, l), returning the new node's ID
// and the resulting snapshot.
func (e *TreeEngine) InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, *Snapshot, error) {
	var v tree.NodeID
	s, err := e.Mutate(func() error {
		var err error
		v, err = e.f.InsertFirstChild(id, l)
		return err
	})
	return v, s, err
}

// InsertRightSibling implements insertR(n, l), returning the new node's
// ID and the resulting snapshot.
func (e *TreeEngine) InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, *Snapshot, error) {
	var v tree.NodeID
	s, err := e.Mutate(func() error {
		var err error
		v, err = e.f.InsertRightSibling(id, l)
		return err
	})
	return v, s, err
}

// Delete implements delete(n) for leaves and publishes the resulting
// snapshot.
func (e *TreeEngine) Delete(id tree.NodeID) (*Snapshot, error) {
	return e.Mutate(func() error { return e.f.Delete(id) })
}

// ApplyBatch applies the updates in order under one writer-lock hold and
// publishes ONE snapshot for the whole batch. Box and index repair is
// amortized across the batch: trunk nodes dirtied by several edits are
// rebuilt once, not once per edit, so k clustered edits cost well below
// k single publications.
//
// The returned IDs give, per batch position, the node created by an
// insert operation (-1 for relabels, deletes and unapplied positions;
// node 0 is a valid ID, the root of parsed trees). On the first failing
// update the batch stops; the edits already applied are still published
// (each forest edit is atomic), and the error identifies the position.
func (e *TreeEngine) ApplyBatch(batch []Update) (*Snapshot, []tree.NodeID, error) {
	ids := make([]tree.NodeID, len(batch))
	for i := range ids {
		ids[i] = -1
	}
	s, err := e.Mutate(func() error {
		for i, u := range batch {
			var v tree.NodeID
			var err error
			switch u.Op {
			case OpRelabel:
				err = e.f.Relabel(u.Node, u.Label)
			case OpInsertFirstChild:
				v, err = e.f.InsertFirstChild(u.Node, u.Label)
			case OpInsertRightSibling:
				v, err = e.f.InsertRightSibling(u.Node, u.Label)
			case OpDelete:
				err = e.f.Delete(u.Node)
			default:
				err = fmt.Errorf("engine: update %v is not a tree operation", u.Op)
			}
			if err != nil {
				return fmt.Errorf("engine: batch update %d (%v n%d): %w", i, u.Op, u.Node, err)
			}
			if u.Op == OpInsertFirstChild || u.Op == OpInsertRightSibling {
				ids[i] = v
			}
		}
		return nil
	})
	return s, ids, err
}
