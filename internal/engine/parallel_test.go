package engine

import (
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/enumerate"
	"repro/internal/paths"
	"repro/internal/tree"
	"repro/internal/tva"
)

// randomValidBatch draws one always-valid batch against the current tree
// state: homogeneous per round (relabels, inserts, or deletes of
// distinct leaves), so it cannot fail halfway. The same rng state over
// identical trees yields identical batches, which is what lets the
// sequential and parallel engines replay one stream.
func randomValidBatch(tr *tree.Unranked, size int, rng *rand.Rand) []Update {
	labels := []tree.Label{"a", "b", "c"}
	nodes := tr.Nodes()
	var batch []Update
	switch rng.Intn(3) {
	case 0: // relabels
		for j := 0; j < size; j++ {
			n := nodes[rng.Intn(len(nodes))]
			batch = append(batch, Update{Op: OpRelabel, Node: n.ID, Label: labels[rng.Intn(3)]})
		}
	case 1: // inserts (first child and right sibling mixed)
		for j := 0; j < size; j++ {
			n := nodes[rng.Intn(len(nodes))]
			if n.Parent != nil && rng.Intn(2) == 0 {
				batch = append(batch, Update{Op: OpInsertRightSibling, Node: n.ID, Label: labels[rng.Intn(3)]})
			} else {
				batch = append(batch, Update{Op: OpInsertFirstChild, Node: n.ID, Label: labels[rng.Intn(3)]})
			}
		}
	default: // deletes of distinct leaves (tree stays nonempty)
		var leaves []tree.NodeID
		for _, n := range nodes {
			if n.IsLeaf() && n.Parent != nil {
				leaves = append(leaves, n.ID)
			}
		}
		rng.Shuffle(len(leaves), func(a, b int) { leaves[a], leaves[b] = leaves[b], leaves[a] })
		for j := 0; j < size && j < len(leaves); j++ {
			batch = append(batch, Update{Op: OpDelete, Node: leaves[j]})
		}
		if len(batch) == 0 {
			batch = append(batch, Update{Op: OpRelabel, Node: tr.Root.ID, Label: labels[rng.Intn(3)]})
		}
	}
	return batch
}

// diffSnapshots compares one query's slice of two MultiSnapshots:
// identical Results (as sorted keys), identical Count, and identical
// At(j) for the first, middle and last rank — the full read surface the
// parallel write path must keep bit-for-bit deterministic.
func diffSnapshots(t *testing.T, label string, a, b *Snapshot) {
	t.Helper()
	ka, kb := resultKeys(a.Results()), resultKeys(b.Results())
	if !slices.Equal(ka, kb) {
		t.Fatalf("%s: results diverged: sequential %d, parallel %d", label, len(ka), len(kb))
	}
	ca, cb := a.Count(), b.Count()
	if ca != cb || ca != len(ka) {
		t.Fatalf("%s: counts diverged: sequential %d, parallel %d, enumerated %d", label, ca, cb, len(ka))
	}
	for _, j := range []int{0, ca / 2, ca - 1} {
		if j < 0 || j >= ca {
			continue
		}
		ra, errA := a.At(j)
		rb, errB := b.At(j)
		if errA != nil || errB != nil {
			t.Fatalf("%s: At(%d) errored: sequential %v, parallel %v", label, j, errA, errB)
		}
		if ra.Normalize().Key() != rb.Normalize().Key() {
			t.Fatalf("%s: At(%d) diverged: %v vs %v", label, j, ra, rb)
		}
	}
}

// TestParallelSequentialDifferential is the parallel-vs-sequential
// property test of the write path: the same edit script applied to two
// engines — worker pool off (Workers=1, the deterministic sequential
// path) and on (Workers=4) — must publish identical Results, Count and
// At for EVERY standing query after every batch. The query mix covers
// the unambiguous fast paths, an ambiguous automaton (//a//b, which
// falls back to enumeration for Count/At) and the ModeSimple and
// ModeNaive baseline pipelines.
func TestParallelSequentialDifferential(t *testing.T) {
	alpha := []tree.Label{"a", "b", "c"}
	type sq struct {
		name string
		q    *tva.Unranked
		opts Options
	}
	queries := []sq{
		{"select:a", tva.SelectLabel(alpha, "a", 0), Options{}},
		{"select:b", tva.SelectLabel(alpha, "b", 0), Options{}},
		{"descdepth:b:2", tva.DescendantAtDepth(alpha, "b", 2, 0), Options{}},
		{"path://a/b", paths.MustCompile("//a/b", alpha, 0), Options{}},
		{"path://a//b", paths.MustCompile("//a//b", alpha, 0), Options{}}, // ambiguous
		{"select:c/simple", tva.SelectLabel(alpha, "c", 0), Options{Mode: enumerate.ModeSimple}},
		{"select:b/naive", tva.SelectLabel(alpha, "b", 0), Options{Mode: enumerate.ModeNaive}},
	}

	rng := rand.New(rand.NewSource(51))
	ut := tva.RandomUnrankedTree(rng, 80, alpha)

	build := func(workers int) (*TreeSet, []QueryID) {
		s := NewTreeSet(ut.Clone())
		s.SetWorkers(workers)
		ids := make([]QueryID, len(queries))
		for i, q := range queries {
			id, err := s.Register(q.q, q.opts)
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		return s, ids
	}
	seq, seqIDs := build(1)
	par, parIDs := build(4)

	srng := rand.New(rand.NewSource(52))
	for b := 0; b < 25; b++ {
		batch := randomValidBatch(seq.Tree(), 1+srng.Intn(6), srng)
		ms, _, err := seq.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("batch %d (sequential): %v", b, err)
		}
		mp, _, err := par.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("batch %d (parallel): %v", b, err)
		}
		for i, q := range queries {
			diffSnapshots(t, q.name, ms.Query(seqIDs[i]), mp.Query(parIDs[i]))
		}
	}
	// Cross-check the last version against the tree for the plain
	// selections, so the differential can't be trivially "equal but both
	// wrong".
	if got := resultKeys(seq.Snapshot().Query(seqIDs[0]).Results()); !slices.Equal(got, expectedLabel(seq.Tree(), "a")) {
		t.Fatal("sequential engine diverged from the tree")
	}
}

// TestParallelSequentialWordDifferential is the word-side slice of the
// differential: one letter-edit script, worker pool off vs on, identical
// results for both standing word queries after every batch.
func TestParallelSequentialWordDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	letters := make([]tree.Label, 30)
	for i := range letters {
		letters[i] = []tree.Label{"a", "b"}[rng.Intn(2)]
	}
	build := func(workers int) (*WordSet, QueryID, QueryID) {
		s, err := NewWordSet(letters)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		qa, err := s.Register(selectLetterWVA("a"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		qb, err := s.Register(selectLetterWVA("b"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s, qa, qb
	}
	seq, sa, sb := build(1)
	par, pa, pb := build(4)

	for i := 0; i < 80; i++ {
		ids, _ := seq.Word()
		id := ids[rng.Intn(len(ids))]
		l := []tree.Label{"a", "b"}[rng.Intn(2)]
		var batch []Update
		switch rng.Intn(3) {
		case 0:
			batch = []Update{{Op: OpRelabel, Node: id, Label: l}}
		case 1:
			batch = []Update{{Op: OpInsertAfter, Node: id, Label: l}}
		default:
			if seq.Len() > 1 {
				batch = []Update{{Op: OpDelete, Node: id}}
			} else {
				batch = []Update{{Op: OpInsertBefore, Node: id, Label: l}}
			}
		}
		ms, _, err := seq.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("step %d (sequential): %v", i, err)
		}
		mp, _, err := par.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("step %d (parallel): %v", i, err)
		}
		diffSnapshots(t, "word select:a", ms.Query(sa), mp.Query(pa))
		diffSnapshots(t, "word select:b", ms.Query(sb), mp.Query(pb))
	}
	if got := resultKeys(seq.Snapshot().Query(sb).Results()); !slices.Equal(got, expectedLetters(seq, "b")) {
		t.Fatal("sequential word engine diverged from the word")
	}
}

// TestParallelRegisterChurnStress is the -race stress of the parallel
// write path under registration churn: the writer streams relabel-only
// batches through a Workers=4 pool while a churner continuously
// registers (via the lock-light path: pin, off-lock build, delta replay,
// splice) and unregisters an extra select:b query, and readers verify
// every MultiSnapshot they load. Relabels over {a, b} preserve the node
// count, so count(a) + count(b) = |T| in every consistent version — and
// a churned select:b copy present in a version must agree exactly with
// the permanent select:b query of the SAME version, which pins the
// correctness of the deltas replayed onto the late pipeline. CI runs
// this at GOMAXPROCS=1 and GOMAXPROCS=4.
func TestParallelRegisterChurnStress(t *testing.T) {
	const (
		readers    = 3
		nodes      = 120
		minReads   = 250
		minBatches = 200
		minChurn   = 25
		maxBatches = 30000
	)
	rng := rand.New(rand.NewSource(71))
	ut := tva.RandomUnrankedTree(rng, nodes, []tree.Label{"a", "b"})
	s := NewTreeSet(ut)
	s.SetWorkers(4)
	qa, err := s.Register(selectLabel("a"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := s.Register(selectLabel("b"), Options{})
	if err != nil {
		t.Fatal(err)
	}

	var (
		done    atomic.Bool
		reads   atomic.Int64
		churned atomic.Int64
		wg      sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				m := s.Snapshot()
				if m.Version() == 0 {
					continue
				}
				ca := m.Query(qa).Count()
				cb := m.Query(qb).Count()
				if ca+cb != nodes {
					t.Errorf("v%d: count(a)+count(b) = %d+%d, want %d", m.Version(), ca, cb, nodes)
					return
				}
				for _, id := range m.Queries() {
					if id == qa || id == qb {
						continue
					}
					// Every churned query is another select:b: its late
					// pipeline must answer exactly like the permanent one
					// on the same version.
					if cc := m.Query(id).Count(); cc != cb {
						t.Errorf("v%d: churned select:b counts %d, permanent %d", m.Version(), cc, cb)
						return
					}
				}
				reads.Add(1)
			}
		}()
	}

	// Churner: the lock-light registration path runs concurrently with
	// the writer's parallel repairs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			id, err := s.Register(selectLabel("b"), Options{})
			if err != nil {
				t.Error(err)
				return
			}
			churned.Add(1)
			if err := s.Unregister(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Writer: relabel-only batches (the node count stays fixed).
	wrng := rand.New(rand.NewSource(72))
	labels := []tree.Label{"a", "b"}
	var ids []tree.NodeID
	for _, n := range s.Tree().Nodes() {
		ids = append(ids, n.ID)
	}
	// The writer keeps publishing until the readers verified enough
	// versions AND the churner exercised the lock-light path often
	// enough (capped so a failure can't spin forever).
	for i := 0; i < maxBatches && !t.Failed(); i++ {
		if i >= minBatches && reads.Load() >= minReads && churned.Load() >= minChurn {
			break
		}
		var batch []Update
		for j := 0; j < 1+wrng.Intn(5); j++ {
			batch = append(batch, Update{Op: OpRelabel, Node: ids[wrng.Intn(len(ids))], Label: labels[wrng.Intn(2)]})
		}
		if _, _, err := s.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// After the storm the final version must agree with the tree exactly
	// (determinism of the parallel path end-to-end).
	m := s.Snapshot()
	if got := resultKeys(m.Query(qa).Results()); !slices.Equal(got, expectedLabel(s.Tree(), "a")) {
		t.Fatal("final snapshot diverged from the tree after churn")
	}
	t.Logf("%d consistent reads, %d lock-light registrations under the parallel writer", reads.Load(), churned.Load())
}

// TestDeltaLogTrimming pins the delta-log bookkeeping of lock-light
// registration: the log records deltas only while pins are held, each
// completing registration replays exactly its suffix, and dropping a
// pin trims the prefix no remaining pin needs — so overlapping
// registration churn cannot grow the log without bound.
func TestDeltaLogTrimming(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ut := tva.RandomUnrankedTree(rng, 50, []tree.Label{"a", "b", "c"})
	s := NewTreeSet(ut)
	if _, err := s.Register(selectLabel("a"), Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		randomEdit(t, s, rng)
	}
	if len(s.deltaLog) != 0 || len(s.regPins) != 0 {
		t.Fatalf("delta log active with no registration in flight: %d deltas, %d pins", len(s.deltaLog), len(s.regPins))
	}

	// Simulate a long-running registration overlapping a real one: hold
	// an artificial early pin while edits stream and another query
	// registers, then drop it.
	s.mu.Lock()
	early := s.logBase + len(s.deltaLog)
	s.regPins = append(s.regPins, early)
	s.mu.Unlock()

	for i := 0; i < 8; i++ {
		randomEdit(t, s, rng)
	}
	if len(s.deltaLog) == 0 {
		t.Fatal("pinned edits were not logged")
	}
	qb, err := s.Register(selectLabel("b"), Options{}) // overlapping pin, replays the logged suffix
	if err != nil {
		t.Fatal(err)
	}
	if got := resultKeys(s.Snapshot().Query(qb).Results()); !slices.Equal(got, expectedLabel(s.Tree(), "b")) {
		t.Fatal("overlapping registration answered wrong")
	}
	// The early pin still holds the full log (its registration hasn't
	// replayed anything yet).
	s.mu.Lock()
	logged := len(s.deltaLog)
	s.mu.Unlock()
	if logged == 0 {
		t.Fatal("log trimmed while the earliest pin still needs it")
	}

	for i := 0; i < 8; i++ {
		randomEdit(t, s, rng)
	}
	s.mu.Lock()
	s.unpin(early)
	trimmed := len(s.deltaLog)
	pins := len(s.regPins)
	s.mu.Unlock()
	if trimmed != 0 || pins != 0 {
		t.Fatalf("dropping the last pin left %d deltas, %d pins", trimmed, pins)
	}

	// Registrations and edits keep working after the churn.
	for i := 0; i < 8; i++ {
		randomEdit(t, s, rng)
	}
	if got := resultKeys(s.Snapshot().Query(qb).Results()); !slices.Equal(got, expectedLabel(s.Tree(), "b")) {
		t.Fatal("query wrong after pin churn")
	}
}

// TestEngineStatsSurface pins the unified stats surface: Engine.Stats is
// one immutable reading per publication, consistent with the deprecated
// counter wrappers, monotone across edits and unregistrations, and
// readable while the parallel writer runs (the churn stress above
// hammers the concurrency; this test checks the values).
func TestEngineStatsSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	ut := tva.RandomUnrankedTree(rng, 60, []tree.Label{"a", "b", "c"})
	s := NewTreeSet(ut)
	s.SetWorkers(2)
	qa, err := s.Register(selectLabel("a"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := s.Register(selectLabel("b"), Options{Workers: 4}) // adopts the engine-wide pool bound
	if err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Workers != 4 {
		t.Fatalf("Options.Workers not adopted: %d", st.Workers)
	}
	if st.Queries != 2 || len(st.QueryBoxesRebuilt) != 2 {
		t.Fatalf("stats queries = %d (%v), want 2", st.Queries, st.QueryBoxesRebuilt)
	}
	if st.BoxesRebuilt != st.QueryBoxesRebuilt[qa]+st.QueryBoxesRebuilt[qb] {
		t.Fatalf("BoxesRebuilt %d is not the per-query sum %v", st.BoxesRebuilt, st.QueryBoxesRebuilt)
	}
	// Deprecated wrappers read the same publication.
	if s.BoxesRebuilt() != st.BoxesRebuilt || s.PathCopies() != st.PathCopies || s.Rebalances() != st.Rebalances {
		t.Fatal("deprecated counter wrappers disagree with Stats()")
	}
	if n, ok := s.QueryBoxesRebuilt(qa); !ok || n != st.QueryBoxesRebuilt[qa] {
		t.Fatal("QueryBoxesRebuilt wrapper disagrees with Stats()")
	}

	for i := 0; i < 30; i++ {
		randomEdit(t, s, rng)
	}
	st2 := s.Stats()
	if st2.Version <= st.Version || st2.PathCopies <= st.PathCopies || st2.BoxesRebuilt <= st.BoxesRebuilt {
		t.Fatalf("stats not monotone across edits: %+v -> %+v", st, st2)
	}
	// The snapshot-side Stats carries the same publication's counters.
	snapStats := s.Snapshot().Query(qa).Stats()
	if snapStats.PathCopies != st2.PathCopies || snapStats.Rebalances != st2.Rebalances {
		t.Fatalf("snapshot stats (%d copies, %d rebalances) disagree with engine stats (%d, %d)",
			snapStats.PathCopies, snapStats.Rebalances, st2.PathCopies, st2.Rebalances)
	}
	if snapStats.BoxesRebuilt != st2.QueryBoxesRebuilt[qa] {
		t.Fatal("snapshot per-query BoxesRebuilt disagrees with engine stats")
	}

	// Unregistering keeps the cumulative counter monotone.
	if err := s.Unregister(qb); err != nil {
		t.Fatal(err)
	}
	st3 := s.Stats()
	if st3.BoxesRebuilt < st2.BoxesRebuilt {
		t.Fatalf("BoxesRebuilt went backwards across unregister: %d -> %d", st2.BoxesRebuilt, st3.BoxesRebuilt)
	}
	if _, ok := st3.QueryBoxesRebuilt[qb]; ok {
		t.Fatal("unregistered query still in per-query stats")
	}
	// The returned map is the caller's copy.
	st3.QueryBoxesRebuilt[qa] = -1
	if n, _ := s.QueryBoxesRebuilt(qa); n == -1 {
		t.Fatal("Stats() leaked the engine's internal map")
	}
}
