package engine

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/bitset"
	"repro/internal/enumerate"
	"repro/internal/tree"
)

// Delta is one push notification of a standing query's answer change:
// the answers added and removed by the publication(s) it covers, carried
// to subscribers so that a monitor watching a large answer set pays per
// publication for the CHANGE, not for a full re-read (DESIGN.md §11).
//
// A Delta composes the consumer's materialized answer set from the
// previous delivery to Version: apply Removed, then Added. Deliveries
// are contiguous — every publication of the engine is covered by exactly
// one received Delta — so a consumer that starts from its subscription's
// initial resync and folds every Delta in order mirrors the engine's
// published answer set exactly.
//
// When the consumer is slower than the writer, consecutive publications
// are coalesced into one Delta (Coalesced set): the composition of the
// missed deltas, with internal churn cancelled. If the coalesced change
// outgrows the engine's resync limit, the Delta degrades to a RESYNC:
// Added/Removed are nil and Resync holds the latest published Snapshot —
// the consumer rebuilds its set from it (cheaper than shipping a diff
// larger than the answer set). The first Delta of every subscription is
// such a resync, establishing the base version.
type Delta struct {
	// Version is the publication sequence number this Delta brings the
	// consumer up to (MultiSnapshot.Version of the covered publication,
	// or of the latest covered one when Coalesced).
	Version uint64
	// Added and Removed are the composed answer diff, sorted by
	// assignment key. Shared across subscribers: read-only. Both nil
	// when Resync is set.
	Added   []tree.Assignment
	Removed []tree.Assignment
	// Coalesced reports that this Delta covers more than one publication
	// (the consumer fell behind and intermediate deltas were merged).
	Coalesced bool
	// Resync, when non-nil, replaces the diff: the consumer must rebuild
	// its materialized set from this Snapshot (see above).
	Resync *Snapshot
}

const (
	// deltaChanCap bounds each subscriber's delivery channel; combined
	// with the single merged pending slot it caps the per-subscriber
	// queue without ever blocking the writer.
	deltaChanCap = 8
	// defaultDeltaResyncLimit is the coalesced-diff size above which a
	// slow consumer is resynced from a snapshot instead
	// (Engine.SetDeltaResyncLimit overrides).
	defaultDeltaResyncLimit = 4096
)

// subscriber is one Subscribe registration: a bounded delivery channel
// fed by a dedicated goroutine off a single merged pending slot. The
// writer (engine publication, under e.mu) only ever touches the pending
// slot — it never blocks on the channel — and the delivery goroutine
// drains the slot into the channel, blocking on the CONSUMER, not the
// writer. Closing is driven by Unregister: closed stops the merge,
// done unblocks an in-flight channel send, and the delivery goroutine
// closes ch on its way out (channels are closed by their only sender).
type subscriber struct {
	ch   chan Delta
	done chan struct{}

	mu          sync.Mutex
	cond        sync.Cond
	pending     *Delta
	closed      bool
	resyncLimit int
}

func newSubscriber(resyncLimit int, seed Delta) *subscriber {
	s := &subscriber{
		ch:          make(chan Delta, deltaChanCap),
		done:        make(chan struct{}),
		pending:     &seed,
		resyncLimit: resyncLimit,
	}
	s.cond.L = &s.mu
	go s.deliver()
	return s
}

// deliver is the subscriber's delivery loop: move the merged pending
// Delta into the channel, block on the consumer only.
func (s *subscriber) deliver() {
	for {
		s.mu.Lock()
		for s.pending == nil && !s.closed {
			s.cond.Wait()
		}
		d := s.pending
		s.pending = nil
		closed := s.closed
		s.mu.Unlock()
		if d != nil {
			if closed {
				// Final flush is best-effort: the consumer is likely gone.
				select {
				case s.ch <- *d:
				default:
				}
			} else {
				select {
				case s.ch <- *d:
				case <-s.done:
					close(s.ch)
					return
				}
				continue
			}
		}
		close(s.ch)
		return
	}
}

// stop closes the subscription: no further merges, the delivery
// goroutine flushes and closes the channel. Called under e.mu (like
// offer), so a stopped subscriber is never offered again.
func (s *subscriber) stop() {
	s.mu.Lock()
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
	close(s.done)
}

// offer hands one publication's delta to the subscriber, never
// blocking: an empty pending slot takes it as-is; a still-undelivered
// pending is COALESCED — the two diffs composed with churn cancelled,
// degrading to a snapshot resync when the composition outgrows the
// limit. Returns whether it coalesced. Called under e.mu.
func (s *subscriber) offer(version uint64, added, removed []tree.Assignment, snap *Snapshot) (coalesced bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.pending == nil {
		s.pending = &Delta{Version: version, Added: added, Removed: removed}
		s.cond.Signal()
		return false
	}
	p := s.pending
	p.Version = version
	p.Coalesced = true
	if p.Resync == nil {
		p.Added, p.Removed = composeDelta(p.Added, p.Removed, added, removed)
		if len(p.Added)+len(p.Removed) > s.resyncLimit {
			p.Added, p.Removed = nil, nil
			p.Resync = snap
		}
	} else {
		p.Resync = snap
	}
	s.cond.Signal()
	return true
}

// composeDelta composes two consecutive diffs into one: the later diff's
// removals cancel earlier additions and vice versa, so an answer that
// appeared and disappeared while the consumer was away never reaches it.
// Inputs are read-only (they may be shared with other subscribers); the
// result is fresh, sorted by key.
func composeDelta(added1, removed1, added2, removed2 []tree.Assignment) (added, removed []tree.Assignment) {
	am := make(map[string]tree.Assignment, len(added1)+len(added2))
	rm := make(map[string]tree.Assignment, len(removed1)+len(removed2))
	for _, a := range added1 {
		am[a.Key()] = a
	}
	for _, a := range removed1 {
		rm[a.Key()] = a
	}
	for _, a := range removed2 {
		k := a.Key()
		if _, ok := am[k]; ok {
			delete(am, k)
		} else {
			rm[k] = a
		}
	}
	for _, a := range added2 {
		k := a.Key()
		if _, ok := rm[k]; ok {
			delete(rm, k)
		} else {
			am[k] = a
		}
	}
	added = make([]tree.Assignment, 0, len(am))
	for _, a := range am {
		added = append(added, a)
	}
	removed = make([]tree.Assignment, 0, len(rm))
	for _, a := range rm {
		removed = append(removed, a)
	}
	sortAssignments(added)
	sortAssignments(removed)
	return added, removed
}

func sortAssignments(as []tree.Assignment) {
	slices.SortFunc(as, func(a, b tree.Assignment) int {
		ka, kb := a.Key(), b.Key()
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		}
		return 0
	})
}

// Subscribe registers a push consumer for one standing query's answer
// deltas. The returned channel delivers one Delta per publication (also
// empty ones, so consumers can track the version deterministically),
// coalescing when the consumer falls behind; its FIRST Delta is always
// a snapshot resync establishing the base version. The channel is
// closed when the query is unregistered. The writer never blocks on a
// subscriber: backpressure turns into coalescing, and past the resync
// limit into a fresh snapshot resync.
func (e *Engine) Subscribe(id QueryID) (<-chan Delta, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.pipes[id]; !ok {
		return nil, fmt.Errorf("engine: query %d is not registered", id)
	}
	cur := e.snap.Load()
	seed := Delta{Version: cur.Version(), Resync: cur.Query(id)}
	limit := e.deltaResyncLimit
	if limit <= 0 {
		limit = defaultDeltaResyncLimit
	}
	s := newSubscriber(limit, seed)
	if e.subs == nil {
		e.subs = map[QueryID][]*subscriber{}
	}
	e.subs[id] = append(e.subs[id], s)
	return s.ch, nil
}

// SetDeltaResyncLimit sets the coalesced-diff size above which slow
// subscribers are resynced from a snapshot instead of receiving the
// composed diff (0 restores the default). Applies to subscriptions
// created after the call.
func (e *Engine) SetDeltaResyncLimit(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.deltaResyncLimit = n
}

// closeSubsLocked closes every subscriber of one query (Unregister).
// Callers hold e.mu.
func (e *Engine) closeSubsLocked(id QueryID) {
	for _, s := range e.subs[id] {
		s.stop()
	}
	delete(e.subs, id)
}

// dispatchDeltas is the publication-time hook of the delta stream
// (called by applyAndPublish under e.mu, after the worker pool finished
// and before the MultiSnapshot is installed): per DISTINCT subscribed
// pipeline snapshot, compute the answer diff old→new once and offer it
// to every subscriber of every QueryID projecting that snapshot — twins
// share one diff like they share one repair.
func (e *Engine) dispatchDeltas(prev, next *MultiSnapshot) {
	if len(e.subs) == 0 {
		return
	}
	type diffRes struct {
		added, removed []tree.Assignment
	}
	cache := map[*Snapshot]diffRes{}
	for id, subs := range e.subs {
		ns := next.snaps[id]
		if ns == nil {
			continue // unregistering publication: closeSubsLocked handles it
		}
		res, ok := cache[ns]
		if !ok {
			res.added, res.removed = e.computeDelta(prev.snaps[id], ns)
			cache[ns] = res
			e.answersAdded += int64(len(res.added))
			e.answersRemoved += int64(len(res.removed))
		}
		for _, s := range subs {
			e.deltasEmitted++
			if s.offer(next.version, res.added, res.removed, ns) {
				e.deltasCoalesced++
			}
		}
	}
}

// computeDelta diffs one query's consecutive published snapshots.
// Short-circuit: a publication that left this pipeline's root, γ and
// emptyOK untouched (edits under other queries' regions never exist —
// but registrations, unregistrations and fully-reused repairs do)
// changed nothing. Then the count-guided co-descent (enumerate.Differ)
// for unambiguous indexed pipelines — O((|added|+|removed|)·log n·
// poly|Q|) by pruning pointer-shared regions — and the full-drain
// key diff as the fallback for ambiguous automata (whose answers may
// derive along several routes, breaking the descent's cancellation
// argument) and baseline modes.
func (e *Engine) computeDelta(ps, ns *Snapshot) (added, removed []tree.Assignment) {
	if ps == ns {
		return nil, nil
	}
	if ps != nil && ps.root == ns.root && ps.emptyOK == ns.emptyOK && ps.gamma.Equal(ns.gamma) {
		return nil, nil
	}
	coDescent := ns.mode == enumerate.ModeIndexed && ns.unambiguous &&
		(ps == nil || ps.mode == enumerate.ModeIndexed)
	if coDescent {
		if e.differ == nil {
			e.differ = enumerate.NewDiffer(enumerate.ModeIndexed)
		}
		if ps == nil {
			return e.differ.Diff(nil, bitset.NewSet(0), false, ns.root, ns.gamma, ns.emptyOK)
		}
		return e.differ.Diff(ps.root, ps.gamma, ps.emptyOK, ns.root, ns.gamma, ns.emptyOK)
	}
	oldSet := drainKeyed(ps)
	newSet := drainKeyed(ns)
	for k, a := range newSet {
		if _, ok := oldSet[k]; !ok {
			added = append(added, a)
		}
	}
	for k, a := range oldSet {
		if _, ok := newSet[k]; !ok {
			removed = append(removed, a)
		}
	}
	sortAssignments(added)
	sortAssignments(removed)
	return added, removed
}

// drainKeyed materializes a snapshot's answers keyed by assignment key,
// walking the frozen structure directly so the write-path fallback does
// not inflate the read-path counters. Nil-safe (empty map).
func drainKeyed(s *Snapshot) map[string]tree.Assignment {
	out := map[string]tree.Assignment{}
	if s == nil {
		return out
	}
	for a := range enumerate.Assignments(s.root, s.gamma, s.emptyOK, s.mode) {
		out[a.Key()] = a
	}
	return out
}
