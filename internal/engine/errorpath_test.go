package engine

import (
	"slices"
	"testing"

	"repro/internal/tree"
	"repro/internal/tva"
)

// This file audits the error paths of Mutate/ApplyBatch: a failing edit
// mid-batch must still publish a MultiSnapshot that reflects exactly
// the applied prefix, consistently across every registered query — no
// torn state, no stale version, and the engine must keep accepting
// edits afterwards.

// expectedForQuery computes the oracle result keys for the two standing
// audit queries directly from the tree.
func auditQueries() []*tva.Unranked {
	return []*tva.Unranked{
		tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0),
		tva.MarkedAncestor("a", "b", "c", 0),
	}
}

// checkSetAgainstFresh verifies every registered query of qs against a
// fresh engine built on the current tree.
func checkSetAgainstFresh(t *testing.T, qs *TreeSet, ids []QueryID) {
	t.Helper()
	m := qs.Snapshot()
	for qi, q := range auditQueries() {
		fresh, err := NewTree(qs.Tree().Clone(), q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := resultKeys(fresh.Snapshot().Results())
		got := resultKeys(m.Query(ids[qi]).Results())
		if !slices.Equal(got, want) {
			t.Fatalf("query %d: snapshot diverges from prefix state\ngot:  %v\nwant: %v", qi, got, want)
		}
		if c := m.Query(ids[qi]).Count(); c != len(want) {
			t.Fatalf("query %d: Count = %d, want %d", qi, c, len(want))
		}
	}
}

// TestTreeBatchFailureMidBatch checks that each way a batch can fail —
// invalid node ID, delete of the root, delete of an inner node, insertR
// on the root, unknown op — publishes the applied prefix for all
// standing queries.
func TestTreeBatchFailureMidBatch(t *testing.T) {
	cases := []struct {
		name    string
		batch   []Update
		applied int // updates expected to have been applied
	}{
		{"invalidNode", []Update{
			{Op: OpRelabel, Node: 1, Label: "b"},
			{Op: OpRelabel, Node: 999, Label: "a"},
			{Op: OpRelabel, Node: 2, Label: "b"},
		}, 1},
		{"deleteRoot", []Update{
			{Op: OpInsertFirstChild, Node: 0, Label: "b"},
			{Op: OpDelete, Node: 0},
			{Op: OpRelabel, Node: 1, Label: "c"},
		}, 1},
		{"deleteInner", []Update{
			{Op: OpRelabel, Node: 2, Label: "b"},
			{Op: OpDelete, Node: 1}, // n1 has a child
			{Op: OpRelabel, Node: 1, Label: "c"},
		}, 1},
		{"insertRRoot", []Update{
			{Op: OpRelabel, Node: 3, Label: "b"},
			{Op: OpInsertRightSibling, Node: 0, Label: "a"},
		}, 1},
		{"wordOpOnTree", []Update{
			{Op: OpRelabel, Node: 1, Label: "b"},
			{Op: OpInsertAfter, Node: 1, Label: "a"},
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ut, err := tree.ParseUnranked("(a (b (c)) (a (b)))")
			if err != nil {
				t.Fatal(err)
			}
			qs := NewTreeSet(ut)
			var ids []QueryID
			for _, q := range auditQueries() {
				id, err := qs.Register(q, Options{})
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			before := qs.Snapshot().Version()
			m, _, err := qs.ApplyBatch(tc.batch)
			if err == nil {
				t.Fatal("batch unexpectedly succeeded")
			}
			if m == nil || m.Version() != before+1 {
				t.Fatalf("failed batch must still publish exactly once (got %+v)", m)
			}
			if m != qs.Snapshot() {
				t.Fatal("returned snapshot is not the published one")
			}
			checkSetAgainstFresh(t, qs, ids)
			// The engine must remain usable after the failure.
			if _, err := qs.Relabel(0, "b"); err != nil {
				t.Fatalf("engine unusable after failed batch: %v", err)
			}
			checkSetAgainstFresh(t, qs, ids)
			_ = tc.applied
		})
	}
}

// TestWordBatchFailureMidBatch is the word-side audit: invalid letter
// ID, deleting the last letter, and tree ops on words.
func TestWordBatchFailureMidBatch(t *testing.T) {
	q, err := wordSelectQuery()
	if err != nil {
		t.Fatal(err)
	}
	t.Run("invalidLetter", func(t *testing.T) {
		ws, err := NewWordSet([]tree.Label{"a", "b", "a"})
		if err != nil {
			t.Fatal(err)
		}
		id, err := ws.Register(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		before := ws.Snapshot().Version()
		m, _, err := ws.ApplyBatch([]Update{
			{Op: OpRelabel, Node: 1, Label: "a"},
			{Op: OpRelabel, Node: 42, Label: "b"},
			{Op: OpRelabel, Node: 2, Label: "b"},
		})
		if err == nil {
			t.Fatal("batch unexpectedly succeeded")
		}
		if m.Version() != before+1 {
			t.Fatal("failed batch must publish exactly once")
		}
		// Prefix applied: "a a a" — no b's left.
		if got := resultKeys(m.Query(id).Results()); len(got) != 0 {
			t.Fatalf("prefix state wrong: %v", got)
		}
		if c := m.Query(id).Count(); c != 0 {
			t.Fatalf("Count = %d on prefix state", c)
		}
	})
	t.Run("deleteToEmpty", func(t *testing.T) {
		ws, err := NewWordSet([]tree.Label{"b"})
		if err != nil {
			t.Fatal(err)
		}
		id, err := ws.Register(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ids, _ := ws.Word()
		m, _, err := ws.ApplyBatch([]Update{
			{Op: OpInsertAfter, Node: ids[0], Label: "b"},
			{Op: OpDelete, Node: ids[0]},
			{Op: OpDelete, Node: ids[0]}, // already deleted: must fail
		})
		if err == nil {
			t.Fatal("deleting a deleted letter must fail")
		}
		if got := m.Query(id).Count(); got != 1 {
			t.Fatalf("Count = %d after prefix (want the 1 surviving b)", got)
		}
		// Deleting the last letter must fail and publish unchanged state.
		ids2, _ := ws.Word()
		if len(ids2) != 1 {
			t.Fatalf("word length %d, want 1", len(ids2))
		}
		m2, err := ws.Delete(ids2[0])
		if err == nil {
			t.Fatal("deleting the last letter must fail")
		}
		if got := m2.Query(id).Count(); got != 1 {
			t.Fatalf("Count = %d after refused delete", got)
		}
	})
	t.Run("treeOpOnWord", func(t *testing.T) {
		ws, err := NewWordSet([]tree.Label{"a", "b"})
		if err != nil {
			t.Fatal(err)
		}
		id, err := ws.Register(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := ws.ApplyBatch([]Update{
			{Op: OpRelabel, Node: 0, Label: "b"},
			{Op: OpInsertFirstChild, Node: 0, Label: "a"},
		})
		if err == nil {
			t.Fatal("tree op on a word must fail")
		}
		if got := m.Query(id).Count(); got != 2 {
			t.Fatalf("Count = %d after prefix relabel", got)
		}
	})
}

// wordSelectQuery returns a WVA selecting every b-letter.
func wordSelectQuery() (*tva.WVA, error) {
	// One-state-per-phase select: X0 marks one b position.
	return &tva.WVA{
		NumStates: 2,
		Alphabet:  []tree.Label{"a", "b"},
		Vars:      tree.VarSet(1 << 0),
		Initial:   []tva.State{0},
		Trans: []tva.WTrans{
			{From: 0, Label: "a", Set: 0, To: 0},
			{From: 0, Label: "b", Set: 0, To: 0},
			{From: 0, Label: "b", Set: tree.VarSet(1 << 0), To: 1},
			{From: 1, Label: "a", Set: 0, To: 1},
			{From: 1, Label: "b", Set: 0, To: 1},
		},
		Final: []tva.State{1},
	}, nil
}
