package engine_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/enumerate"
	"repro/internal/tree"
	"repro/internal/tva"
)

// This file is the differential and lifecycle suite of the multi-query
// optimizer (DESIGN.md §9): registrations of content-equal automata
// share ONE refcounted pipeline, and nothing observable may change —
// every script runs through an engine with k duplicate registrations
// DEDUPED and an engine with the same registrations under
// Options.NoDedupe (one private pipeline each, the pre-optimizer
// behavior), and after every batch each query pair must agree on the
// full result sequence, Count, At probes and Page slices. A refcount
// churn stress registers and unregisters twins under -race while edits
// stream: a QueryID leaving must never retire the boxes its live twin
// still serves.

// compareDedupePair checks the whole per-query read surface of one
// (deduped, private) snapshot pair after one batch.
func compareDedupePair(t *testing.T, s *diffScript, step, qi int, dedup, plain *engine.Snapshot) {
	t.Helper()
	ds, ps := drainSeq(dedup), drainSeq(plain)
	if !slices.Equal(ds, ps) {
		t.Fatalf("step %d query %d: dedupe and NoDedupe engines diverge\ndedupe:   %v\nnodedupe: %v\nscript:\n%s",
			step, qi, ds, ps, s)
	}
	if dc, pc := dedup.Count(), plain.Count(); dc != pc {
		t.Fatalf("step %d query %d: Count diverges: dedupe %d, nodedupe %d\nscript:\n%s", step, qi, dc, pc, s)
	}
	for _, j := range []int{0, len(ds) / 2, len(ds) - 1, len(ds)} {
		if j < 0 {
			continue
		}
		da, derr := dedup.At(j)
		pa, perr := plain.At(j)
		if (derr == nil) != (perr == nil) {
			t.Fatalf("step %d query %d: At(%d) errors diverge: %v vs %v\nscript:\n%s", step, qi, j, derr, perr, s)
		}
		if derr == nil && da.Key() != pa.Key() {
			t.Fatalf("step %d query %d: At(%d) diverges: %v vs %v\nscript:\n%s", step, qi, j, da, pa, s)
		}
	}
	for _, off := range []int{0, len(ds) / 2} {
		dp, pp := dedup.Page(off, 3), plain.Page(off, 3)
		if len(dp) != len(pp) {
			t.Fatalf("step %d query %d: Page(%d,3) lengths diverge: %d vs %d\nscript:\n%s",
				step, qi, off, len(dp), len(pp), s)
		}
		for i := range dp {
			if dp[i].Key() != pp[i].Key() {
				t.Fatalf("step %d query %d: Page(%d,3)[%d] diverges\nscript:\n%s", step, qi, off, i, s)
			}
		}
	}
}

// runDedupeVsNoDedupe replays one script through two QuerySets over the
// same document — the query registered dupes times with the optimizer on
// vs the same registrations under NoDedupe — and compares every query
// pair after every batch. It also pins that the optimizer actually
// engaged on the dedupe side and stayed off on the other.
func runDedupeVsNoDedupe(t *testing.T, s *diffScript) {
	t.Helper()
	const dupes = 3
	mkBatches := func() [][]engine.Update {
		out := make([][]engine.Update, len(s.batches))
		for bi, raw := range s.batches {
			for _, ed := range raw {
				u, err := parseDiffEdit(ed)
				if err != nil {
					t.Fatalf("%v\nscript:\n%s", err, s)
				}
				out[bi] = append(out[bi], u)
			}
		}
		return out
	}

	var dedupIDs, plainIDs []engine.QueryID
	var dedupEng, plainEng interface {
		Snapshot() *engine.MultiSnapshot
		Stats() engine.EngineStats
		ApplyBatch([]engine.Update) (*engine.MultiSnapshot, []tree.NodeID, error)
	}
	if s.isWord {
		q, err := diffWordQuery(s.query)
		if err != nil {
			t.Fatalf("script query: %v\nscript:\n%s", err, s)
		}
		dw, err := engine.NewWordSet(s.letters)
		if err != nil {
			t.Fatalf("engine: %v\nscript:\n%s", err, s)
		}
		pw, err := engine.NewWordSet(s.letters)
		if err != nil {
			t.Fatalf("engine: %v\nscript:\n%s", err, s)
		}
		for i := 0; i < dupes; i++ {
			did, err := dw.Register(q, engine.Options{})
			if err != nil {
				t.Fatalf("register: %v\nscript:\n%s", err, s)
			}
			pid, err := pw.Register(q, engine.Options{NoDedupe: true})
			if err != nil {
				t.Fatalf("register: %v\nscript:\n%s", err, s)
			}
			dedupIDs, plainIDs = append(dedupIDs, did), append(plainIDs, pid)
		}
		dedupEng, plainEng = dw, pw
	} else {
		q, err := diffTreeQuery(s.query)
		if err != nil {
			t.Fatalf("script query: %v\nscript:\n%s", err, s)
		}
		ut, err := tree.ParseUnranked(s.tree)
		if err != nil {
			t.Fatalf("script tree: %v\nscript:\n%s", err, s)
		}
		dt := engine.NewTreeSet(ut.Clone())
		pt := engine.NewTreeSet(ut)
		for i := 0; i < dupes; i++ {
			did, err := dt.Register(q, engine.Options{})
			if err != nil {
				t.Fatalf("register: %v\nscript:\n%s", err, s)
			}
			pid, err := pt.Register(q, engine.Options{NoDedupe: true})
			if err != nil {
				t.Fatalf("register: %v\nscript:\n%s", err, s)
			}
			dedupIDs, plainIDs = append(dedupIDs, did), append(plainIDs, pid)
		}
		dedupEng, plainEng = dt, pt
	}

	if st := dedupEng.Stats(); st.Pipelines != 1 || st.PipelinesShared != 1 || st.RegistrationsDeduped != dupes-1 {
		t.Fatalf("dedupe engine: pipelines %d shared %d deduped %d, want 1/1/%d\nscript:\n%s",
			st.Pipelines, st.PipelinesShared, st.RegistrationsDeduped, dupes-1, s)
	}
	if st := plainEng.Stats(); st.Pipelines != dupes || st.RegistrationsDeduped != 0 {
		t.Fatalf("NoDedupe engine: pipelines %d deduped %d, want %d/0\nscript:\n%s",
			st.Pipelines, st.RegistrationsDeduped, dupes, s)
	}

	check := func(step int, dm, pm *engine.MultiSnapshot) {
		for qi := range dedupIDs {
			compareDedupePair(t, s, step, qi, dm.Query(dedupIDs[qi]), pm.Query(plainIDs[qi]))
		}
	}
	check(0, dedupEng.Snapshot(), plainEng.Snapshot())
	for bi, batch := range mkBatches() {
		dm, _, derr := dedupEng.ApplyBatch(batch)
		pm, _, perr := plainEng.ApplyBatch(batch)
		if (derr == nil) != (perr == nil) {
			t.Fatalf("batch %d: errors diverge: %v vs %v\nscript:\n%s", bi, derr, perr, s)
		}
		check(bi+1, dm, pm)
	}
}

// TestDedupeDifferentialCorpus replays the committed seed corpus through
// the dedupe-vs-NoDedupe comparison.
func TestDedupeDifferentialCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "differential", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus scripts found")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			s, err := parseDiffScript(string(data))
			if err != nil {
				t.Fatal(err)
			}
			runDedupeVsNoDedupe(t, s)
		})
	}
}

// TestDedupeDifferentialRandom draws fresh random edit scripts — trees
// and words, ambiguous (path://a//b) and unambiguous queries — for the
// dedupe-vs-NoDedupe comparison.
func TestDedupeDifferentialRandom(t *testing.T) {
	queries := []string{"select:b", "ancestor", "childpair", "path://a//b"}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		s := randomDiffScript(rng, queries[seed%int64(len(queries))], false, true)
		t.Run(fmt.Sprintf("tree%d", seed), func(t *testing.T) { runDedupeVsNoDedupe(t, s) })
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(600 + seed))
		s := randomDiffScript(rng, "span", true, true)
		t.Run(fmt.Sprintf("word%d", seed), func(t *testing.T) { runDedupeVsNoDedupe(t, s) })
	}
}

// TestDedupeStatsLifecycle walks the refcount lifecycle on one engine:
// twins share a pipeline (and a published *Snapshot), distinct automata
// and NoDedupe registrations stay private, a twin's departure leaves the
// shared pipeline serving, and the last departure retires it without
// breaking the cumulative counters.
func TestDedupeStatsLifecycle(t *testing.T) {
	ut, err := tree.ParseUnranked("(a (b) (a (b) (c)))")
	if err != nil {
		t.Fatal(err)
	}
	qb, err := diffTreeQuery("select:b")
	if err != nil {
		t.Fatal(err)
	}
	qa, err := diffTreeQuery("ancestor")
	if err != nil {
		t.Fatal(err)
	}
	qs := engine.NewTreeSet(ut)

	id1, err := qs.Register(qb, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := qs.Register(qb, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := qs.Stats()
	if st.Queries != 2 || st.Pipelines != 1 || st.PipelinesShared != 1 || st.RegistrationsDeduped != 1 {
		t.Fatalf("after twin registration: %+v", st)
	}
	if st.QueryBoxesRebuilt[id1] != st.QueryBoxesRebuilt[id2] {
		t.Fatalf("twins must report the shared pipeline's counter: %d vs %d",
			st.QueryBoxesRebuilt[id1], st.QueryBoxesRebuilt[id2])
	}
	if st.BoxesRebuilt != st.QueryBoxesRebuilt[id1] {
		t.Fatalf("shared pipeline double-counted: total %d, pipeline %d", st.BoxesRebuilt, st.QueryBoxesRebuilt[id1])
	}
	m := qs.Snapshot()
	if m.Query(id1) != m.Query(id2) {
		t.Fatal("twins should project the same published snapshot")
	}

	// A distinct automaton and a NoDedupe duplicate each get their own
	// pipeline; a later deduped registration still joins the SHARED one.
	if _, err := qs.Register(qa, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	idPriv, err := qs.Register(qb, engine.Options{NoDedupe: true})
	if err != nil {
		t.Fatal(err)
	}
	st = qs.Stats()
	if st.Pipelines != 3 || st.PipelinesShared != 1 || st.RegistrationsDeduped != 1 {
		t.Fatalf("after distinct+NoDedupe registrations: %+v", st)
	}
	if m = qs.Snapshot(); m.Query(idPriv) == m.Query(id1) {
		t.Fatal("NoDedupe registration must not share the twin pipeline's snapshot")
	}
	id3, err := qs.Register(qb, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st = qs.Stats()
	if st.RegistrationsDeduped != 2 || st.Pipelines != 3 {
		t.Fatalf("deduped registration should join the shared pipeline, not the NoDedupe one: %+v", st)
	}

	// Different enumeration modes never share a pipeline.
	idNaive, err := qs.Register(qb, engine.Options{Mode: enumerate.ModeNaive})
	if err != nil {
		t.Fatal(err)
	}
	if st = qs.Stats(); st.Pipelines != 4 || st.RegistrationsDeduped != 2 {
		t.Fatalf("mode must be part of the content key: %+v", st)
	}

	// Unregistering one twin leaves the shared pipeline fully serving;
	// edits after the departure keep every remaining query correct.
	before := drainSeq(qs.Snapshot().Query(id2))
	if err := qs.Unregister(id1); err != nil {
		t.Fatal(err)
	}
	if got := drainSeq(qs.Snapshot().Query(id2)); !slices.Equal(got, before) {
		t.Fatalf("twin diverged after partner unregistered: %v vs %v", got, before)
	}
	m, err = qs.Relabel(0, "b")
	if err != nil {
		t.Fatal(err)
	}
	want := drainSeq(m.Query(idPriv))
	if got := drainSeq(m.Query(id2)); !slices.Equal(got, want) {
		t.Fatalf("shared pipeline diverged from private twin after edit: %v vs %v", got, want)
	}
	if got := drainSeq(m.Query(id3)); !slices.Equal(got, want) {
		t.Fatalf("second twin diverged after edit: %v vs %v", got, want)
	}

	// The last twin's departure retires the pipeline; the cumulative
	// BoxesRebuilt total must not drop (released counters are folded in).
	total := qs.Stats().BoxesRebuilt
	if err := qs.Unregister(id2); err != nil {
		t.Fatal(err)
	}
	if err := qs.Unregister(id3); err != nil {
		t.Fatal(err)
	}
	st = qs.Stats()
	if st.PipelinesShared != 0 {
		t.Fatalf("no shared pipeline should remain: %+v", st)
	}
	if st.BoxesRebuilt < total {
		t.Fatalf("cumulative BoxesRebuilt went backwards: %d -> %d", total, st.BoxesRebuilt)
	}
	// A fresh registration after full retirement builds anew and may be
	// shared again.
	id4, err := qs.Register(qb, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id5, err := qs.Register(qb, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m = qs.Snapshot()
	if m.Query(id4) != m.Query(id5) {
		t.Fatal("post-retirement twins should share a fresh pipeline")
	}
	if got := drainSeq(m.Query(id4)); !slices.Equal(got, drainSeq(m.Query(idPriv))) {
		t.Fatal("fresh shared pipeline diverges from the standing private one")
	}
	_ = idNaive
}

// TestDedupeRefcountChurnStress is the -race stress of the refcount
// lifecycle: writers stream batches while churners register and
// unregister duplicate automata against permanently standing twins. A
// QueryID unregistered while its twin stays live must not retire the
// shared boxes — every churner compares its freshly registered twin
// against the permanent one on the SAME MultiSnapshot before leaving,
// and readers keep draining the permanent queries throughout. One spec
// has no permanent twin, so two churners race whole build/retire cycles
// against each other (the splice-in convergence path).
func TestDedupeRefcountChurnStress(t *testing.T) {
	specs := []string{"select:b", "ancestor", "childpair", "path://a//b"}
	queries := make([]*tva.Unranked, len(specs))
	for i, sp := range specs {
		q, err := diffTreeQuery(sp)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}
	rng := rand.New(rand.NewSource(21))
	ut := tva.RandomUnrankedTree(rng, 120, []tree.Label{"a", "b", "c"})
	qs := engine.NewTreeSet(ut)

	// Permanent twins for the first three specs; spec 3 churns bare.
	perm := make([]engine.QueryID, 3)
	for i := 0; i < 3; i++ {
		id, err := qs.Register(queries[i], engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		perm[i] = id
	}

	var (
		done    atomic.Bool
		wg      sync.WaitGroup
		failMu  sync.Mutex
		failure string
	)
	fail := func(msg string) {
		failMu.Lock()
		if failure == "" {
			failure = msg
		}
		failMu.Unlock()
		done.Store(true)
	}

	// Churners: register a duplicate, verify against the live twin on
	// one consistent MultiSnapshot, unregister, repeat.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			spec := c % 3
			if c == 3 {
				spec = 3 // bare spec: no permanent twin, races churner 2's builds
			}
			for !done.Load() {
				id, err := qs.Register(queries[spec], engine.Options{})
				if err != nil {
					fail(fmt.Sprintf("churner %d register: %v", c, err))
					return
				}
				m := qs.Snapshot()
				mine := drainSeq(m.Query(id))
				if spec < 3 {
					if twin := drainSeq(m.Query(perm[spec])); !slices.Equal(mine, twin) {
						fail(fmt.Sprintf("churner %d: twin diverged: %d vs %d answers", c, len(mine), len(twin)))
						return
					}
				} else if n := m.Query(id).Count(); n != len(mine) {
					fail(fmt.Sprintf("churner %d: Count %d != drained %d", c, n, len(mine)))
					return
				}
				if err := qs.Unregister(id); err != nil {
					fail(fmt.Sprintf("churner %d unregister: %v", c, err))
					return
				}
			}
		}(c)
	}
	// The second bare-spec churner (shares spec 3 with churner 3).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			id, err := qs.Register(queries[3], engine.Options{})
			if err != nil {
				fail(fmt.Sprintf("bare churner register: %v", err))
				return
			}
			snap := qs.Snapshot().Query(id)
			if n := snap.Count(); n < 0 {
				fail("bare churner: negative count")
				return
			}
			if err := qs.Unregister(id); err != nil {
				fail(fmt.Sprintf("bare churner unregister: %v", err))
				return
			}
		}
	}()
	// Readers drain the permanent queries from whatever version is live.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				m := qs.Snapshot()
				for _, id := range perm {
					if s := m.Query(id); s != nil {
						drainSeq(s)
					}
				}
				if st := qs.Stats(); st.Pipelines > st.Queries {
					fail(fmt.Sprintf("stats invariant broken: %d pipelines > %d queries", st.Pipelines, st.Queries))
					return
				}
			}
		}()
	}

	// Writer: random valid batches, like the engine stress writer.
	labels := []tree.Label{"a", "b", "c"}
	wrng := rand.New(rand.NewSource(22))
	for i := 0; i < 150 && !done.Load(); i++ {
		tr := qs.Tree()
		nodes := tr.Nodes()
		k := 1 + wrng.Intn(5)
		var batch []engine.Update
		switch wrng.Intn(3) {
		case 0:
			for j := 0; j < k; j++ {
				n := nodes[wrng.Intn(len(nodes))]
				batch = append(batch, engine.Update{Op: engine.OpRelabel, Node: n.ID, Label: labels[wrng.Intn(3)]})
			}
		case 1:
			for j := 0; j < k; j++ {
				n := nodes[wrng.Intn(len(nodes))]
				batch = append(batch, engine.Update{Op: engine.OpInsertFirstChild, Node: n.ID, Label: labels[wrng.Intn(3)]})
			}
		default:
			var leaves []tree.NodeID
			for _, n := range nodes {
				if n.IsLeaf() && n.Parent != nil {
					leaves = append(leaves, n.ID)
				}
			}
			wrng.Shuffle(len(leaves), func(a, b int) { leaves[a], leaves[b] = leaves[b], leaves[a] })
			for j := 0; j < k && j < len(leaves); j++ {
				batch = append(batch, engine.Update{Op: engine.OpDelete, Node: leaves[j]})
			}
			if len(batch) == 0 {
				batch = append(batch, engine.Update{Op: engine.OpRelabel, Node: tr.Root.ID, Label: labels[wrng.Intn(3)]})
			}
		}
		if _, _, err := qs.ApplyBatch(batch); err != nil {
			fail(fmt.Sprintf("writer batch %d: %v", i, err))
			break
		}
	}
	done.Store(true)
	wg.Wait()
	if failure != "" {
		t.Fatal(failure)
	}

	// After the churn, the permanent twins still answer exactly like a
	// freshly built private pipeline over the final document.
	oracle, err := qs.Register(queries[0], engine.Options{NoDedupe: true})
	if err != nil {
		t.Fatal(err)
	}
	m := qs.Snapshot()
	if got, want := drainSeq(m.Query(perm[0])), drainSeq(m.Query(oracle)); !slices.Equal(got, want) {
		t.Fatalf("permanent twin diverged from fresh oracle after churn: %d vs %d answers", len(got), len(want))
	}
}
