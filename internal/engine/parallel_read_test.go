package engine_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/enumerate"
	"repro/internal/tree"
	"repro/internal/tva"
)

// This file is the property suite of the rank-partitioned parallel
// read path: across the differential corpus (trees + words, ambiguous +
// unambiguous automata, both direct-access modes), ParallelAll(w) and
// the Chunks stream must reproduce the sequential enumeration answer
// for answer, in order — including mid-script, after every batch — and
// a parallel drain must see its own frozen snapshot while ApplyBatch
// publishes new versions underneath it. Run under -race these tests
// also pin the confinement discipline of the per-worker descenders.

// orderedKeys drains a snapshot's Results in enumeration order.
func orderedKeys(snap *engine.Snapshot) []string {
	var out []string
	for a := range snap.Results() {
		out = append(out, a.Key())
	}
	return out
}

// assignmentKeys projects materialized assignments to their keys.
func assignmentKeys(as []tree.Assignment) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Key()
	}
	return out
}

// forEachScriptSnapshot replays a differential script on the engine
// (no oracle) and hands every published snapshot to fn.
func forEachScriptSnapshot(t *testing.T, s *diffScript, mode enumerate.Mode, fn func(step int, snap *engine.Snapshot)) {
	t.Helper()
	var (
		snap  *engine.Snapshot
		apply func(batch []engine.Update) *engine.Snapshot
	)
	if s.isWord {
		q, err := diffWordQuery(s.query)
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.NewWord(s.letters, q, engine.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		snap = e.Snapshot()
		apply = func(batch []engine.Update) *engine.Snapshot {
			sn, _, err := e.ApplyBatch(batch)
			if err != nil {
				t.Fatalf("batch: %v\nscript:\n%s", err, s)
			}
			return sn
		}
	} else {
		q, err := diffTreeQuery(s.query)
		if err != nil {
			t.Fatal(err)
		}
		ut, err := tree.ParseUnranked(s.tree)
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.NewTree(ut, q, engine.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		snap = e.Snapshot()
		apply = func(batch []engine.Update) *engine.Snapshot {
			sn, _, err := e.ApplyBatch(batch)
			if err != nil {
				t.Fatalf("batch: %v\nscript:\n%s", err, s)
			}
			return sn
		}
	}
	fn(0, snap)
	for bi, raw := range s.batches {
		batch := make([]engine.Update, 0, len(raw))
		for _, ed := range raw {
			u, err := parseDiffEdit(ed)
			if err != nil {
				t.Fatalf("%v\nscript:\n%s", err, s)
			}
			batch = append(batch, u)
		}
		fn(bi+1, apply(batch))
	}
}

// checkParallelReads is the per-snapshot property: All() must equal the
// Results order (the All-via-Page rewrite), ParallelAll(w) must equal
// All() for every worker count, and the Chunks stream must concatenate
// to exactly the same sequence at awkward chunk sizes.
func checkParallelReads(t *testing.T, s *diffScript, step int, snap *engine.Snapshot) {
	t.Helper()
	want := orderedKeys(snap)
	if got := assignmentKeys(snap.All()); !equalStrings(got, want) {
		t.Fatalf("step %d (direct=%v): All diverges from Results order\nAll:     %v\nResults: %v\nscript:\n%s",
			step, snap.DirectAccess(), got, want, s)
	}
	for _, w := range []int{1, 2, 4, 8} {
		if got := assignmentKeys(snap.ParallelAll(w)); !equalStrings(got, want) {
			t.Fatalf("step %d: ParallelAll(%d) diverges (direct=%v)\ngot:  %v\nwant: %v\nscript:\n%s",
				step, w, snap.DirectAccess(), got, want, s)
		}
	}
	for _, cs := range []int{1, 3, 64} {
		var got []string
		for chunk := range snap.Chunks(4, cs) {
			if len(chunk) == 0 || len(chunk) > cs {
				t.Fatalf("step %d: Chunks(4, %d) yielded a chunk of %d answers\nscript:\n%s",
					step, cs, len(chunk), s)
			}
			got = append(got, assignmentKeys(chunk)...)
		}
		if !equalStrings(got, want) {
			t.Fatalf("step %d: Chunks(4, %d) diverges (direct=%v)\ngot:  %v\nwant: %v\nscript:\n%s",
				step, cs, snap.DirectAccess(), got, want, s)
		}
	}
	// Abandoning the stream early must neither deadlock nor panic.
	for range snap.Chunks(3, 2) {
		break
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelAllMatchesSequential runs the property over the committed
// corpus in both direct-access-capable modes. The corpus mixes trees
// and words and includes the ambiguous path query, so both the
// rank-partitioned descent path and the sharded-drain fallback are
// exercised (the test logs which snapshots engaged which).
func TestParallelAllMatchesSequential(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "differential", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus scripts found")
	}
	modes := map[string]enumerate.Mode{"indexed": enumerate.ModeIndexed, "simple": enumerate.ModeSimple}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		s, err := parseDiffScript(string(data))
		if err != nil {
			t.Fatal(err)
		}
		for mn, mode := range modes {
			t.Run(filepath.Base(f)+"/"+mn, func(t *testing.T) {
				direct, fallback := 0, 0
				forEachScriptSnapshot(t, s, mode, func(step int, snap *engine.Snapshot) {
					if snap.DirectAccess() {
						direct++
					} else {
						fallback++
					}
					checkParallelReads(t, s, step, snap)
				})
				t.Logf("%d direct-access snapshots, %d fallback", direct, fallback)
			})
		}
	}
}

// TestParallelAllMatchesSequentialRandom is the same property over
// freshly drawn random scripts, including the ambiguous path query.
func TestParallelAllMatchesSequentialRandom(t *testing.T) {
	queries := []string{"select:b", "ancestor", "childpair", "path://a//b"}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		s := randomDiffScript(rng, queries[seed%int64(len(queries))], false, true)
		t.Run(fmt.Sprintf("tree%d", seed), func(t *testing.T) {
			forEachScriptSnapshot(t, s, enumerate.ModeIndexed, func(step int, snap *engine.Snapshot) {
				checkParallelReads(t, s, step, snap)
			})
		})
	}
	rng := rand.New(rand.NewSource(800))
	s := randomDiffScript(rng, "span", true, true)
	t.Run("word", func(t *testing.T) {
		forEachScriptSnapshot(t, s, enumerate.ModeIndexed, func(step int, snap *engine.Snapshot) {
			checkParallelReads(t, s, step, snap)
		})
	})
}

// wideTree builds "(a (b) (c) (b) ...)": a root with n alternating
// b/c children, so select:b has ~n/2 answers and every odd child ID is
// a b node.
func wideTree(t *testing.T, n int) *tree.Unranked {
	t.Helper()
	var b strings.Builder
	b.WriteString("(a")
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			b.WriteString(" (b)")
		} else {
			b.WriteString(" (c)")
		}
	}
	b.WriteString(")")
	ut, err := tree.ParseUnranked(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return ut
}

// TestParallelDrainSnapshotIsolation runs parallel drains of a pinned
// snapshot while ApplyBatch publishes new versions concurrently: every
// drain must reproduce the pinned version's answers exactly, no matter
// how many relabels land mid-drain. Under -race this also proves the
// read path shares nothing mutable with the writer.
func TestParallelDrainSnapshotIsolation(t *testing.T) {
	const kids = 240
	e, err := engine.NewTree(wideTree(t, kids), tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap0 := e.Snapshot()
	want := assignmentKeys(snap0.All())
	if len(want) != kids/2 {
		t.Fatalf("seed answer count = %d, want %d", len(want), kids/2)
	}

	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				if got := assignmentKeys(snap0.ParallelAll(4)); !equalStrings(got, want) {
					errc <- fmt.Sprintf("ParallelAll drained %d answers from the pinned snapshot, want %d", len(got), len(want))
					return
				}
				var got []string
				for chunk := range snap0.Chunks(3, 7) {
					got = append(got, assignmentKeys(chunk)...)
				}
				if !equalStrings(got, want) {
					errc <- fmt.Sprintf("Chunks drained %d answers from the pinned snapshot, want %d", len(got), len(want))
					return
				}
			}
		}()
	}
	// The writer: flip b children to c and back, one batch per flip,
	// racing the drains above.
	for flip := 0; flip < 20; flip++ {
		label := tree.Label("c")
		if flip%2 == 1 {
			label = tree.Label("b")
		}
		var batch []engine.Update
		for id := 1; id <= kids; id += 8 {
			batch = append(batch, engine.Update{Op: engine.OpRelabel, Node: tree.NodeID(id), Label: label})
		}
		if _, _, err := e.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Error(msg)
	}
	// Sanity: the engine moved on — the latest snapshot differs from the
	// pinned one.
	if e.Snapshot().Version() == snap0.Version() {
		t.Fatal("writer published nothing")
	}
}

// TestParallelDrainAllocations is the allocation guard of the descent
// scratch: per answer, the rank-partitioned parallel drain must not
// allocate more than the sequential Page sweep (the workers' fixed
// setup — descenders, goroutines, the output slice — is amortized over
// a large answer set).
func TestParallelDrainAllocations(t *testing.T) {
	const kids = 4000
	e, err := engine.NewTree(wideTree(t, kids), tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if !snap.DirectAccess() {
		t.Fatal("select query lost direct access")
	}
	n := snap.Count()
	if n != kids/2 {
		t.Fatalf("Count = %d, want %d", n, kids/2)
	}
	snap.Page(0, n) // warm both paths once
	snap.ParallelAll(4)
	perPage := testing.AllocsPerRun(3, func() { snap.Page(0, n) }) / float64(n)
	perPar := testing.AllocsPerRun(3, func() { snap.ParallelAll(4) }) / float64(n)
	t.Logf("allocs/answer: Page %.2f, ParallelAll(4) %.2f", perPage, perPar)
	if perPar > perPage+0.5 {
		t.Fatalf("parallel drain allocates %.2f/answer, sequential Page %.2f/answer", perPar, perPage)
	}
}

// TestReadStats pins the read-path counters: answers flow into
// AnswersEnumerated from every read API, and exactly the fanned-out
// drains bump ParallelDrains.
func TestReadStats(t *testing.T) {
	e, err := engine.NewTree(wideTree(t, 64), tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	n := snap.Count()
	stats := func() engine.EngineStats { return e.Set().Stats() }

	base := stats()
	if got := assignmentKeys(snap.All()); len(got) != n {
		t.Fatalf("All returned %d answers, want %d", len(got), n)
	}
	afterAll := stats()
	if afterAll.AnswersEnumerated < base.AnswersEnumerated+int64(n) {
		t.Fatalf("All moved AnswersEnumerated %d -> %d, want +%d",
			base.AnswersEnumerated, afterAll.AnswersEnumerated, n)
	}
	if afterAll.ParallelDrains != base.ParallelDrains {
		t.Fatalf("All bumped ParallelDrains to %d", afterAll.ParallelDrains)
	}

	snap.ParallelAll(4)
	afterPar := stats()
	if afterPar.ParallelDrains != afterAll.ParallelDrains+1 {
		t.Fatalf("ParallelAll moved ParallelDrains %d -> %d, want +1",
			afterAll.ParallelDrains, afterPar.ParallelDrains)
	}
	if afterPar.AnswersEnumerated < afterAll.AnswersEnumerated+int64(n) {
		t.Fatalf("ParallelAll moved AnswersEnumerated %d -> %d, want +%d",
			afterAll.AnswersEnumerated, afterPar.AnswersEnumerated, n)
	}

	for range snap.Chunks(4, 8) {
	}
	afterChunks := stats()
	if afterChunks.ParallelDrains != afterPar.ParallelDrains+1 {
		t.Fatalf("Chunks moved ParallelDrains %d -> %d, want +1",
			afterPar.ParallelDrains, afterChunks.ParallelDrains)
	}
	if afterChunks.AnswersEnumerated < afterPar.AnswersEnumerated+int64(n) {
		t.Fatalf("Chunks moved AnswersEnumerated %d -> %d, want +%d",
			afterPar.AnswersEnumerated, afterChunks.AnswersEnumerated, n)
	}
}
