package engine

import "slices"

// MultiSnapshot is one published version of a whole query set: an
// immutable map from registered query ID to that query's Snapshot, all
// taken against the same term version. Like Snapshot, everything
// reachable from a MultiSnapshot is frozen, so all methods are safe from
// any number of goroutines and unaffected by later updates,
// registrations or unregistrations.
//
// A MultiSnapshot is the unit of consistency across standing queries:
// because the engine installs it through a single atomic pointer, a
// reader that loads one sees every query answered on the SAME document
// version — there is no window where query A reflects an edit and query
// B does not.
type MultiSnapshot struct {
	version uint64
	ids     []QueryID // ascending
	snaps   map[QueryID]*Snapshot
}

// Version returns the publication sequence number (monotonically
// increasing per engine; registrations and unregistrations publish too).
// Version 0 is the empty snapshot of a set with no query registered yet;
// the first registration publishes version 1.
func (m *MultiSnapshot) Version() uint64 { return m.version }

// Query returns the snapshot of one registered query, or nil if the
// query was not registered when this version was published.
func (m *MultiSnapshot) Query(id QueryID) *Snapshot { return m.snaps[id] }

// Queries returns the IDs of the queries captured by this version,
// ascending. The result is a fresh slice the caller may modify.
func (m *MultiSnapshot) Queries() []QueryID { return slices.Clone(m.ids) }

// Len returns the number of queries captured by this version.
func (m *MultiSnapshot) Len() int { return len(m.ids) }
