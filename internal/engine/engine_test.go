package engine

import (
	"fmt"
	"iter"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/forest"
	"repro/internal/tree"
	"repro/internal/tva"
)

var alphaAB = []tree.Label{"a", "b"}

// selectB returns the standing test query: X0 selects a b-labeled node.
func selectB() *tva.Unranked { return tva.SelectLabel([]tree.Label{"a", "b", "c"}, "b", 0) }

// expectedB lists the keys of the expected result set of selectB on t:
// one singleton assignment per b-labeled node.
func expectedB(t *tree.Unranked) []string {
	var out []string
	for _, n := range t.Nodes() {
		if n.Label == "b" {
			out = append(out, tree.Assignment{{Var: 0, Node: n.ID}}.Normalize().Key())
		}
	}
	slices.Sort(out)
	return out
}

// resultKeys drains a snapshot into sorted assignment keys.
func resultKeys(rs iter.Seq[tree.Assignment]) []string {
	var out []string
	for a := range rs {
		out = append(out, a.Key())
	}
	slices.Sort(out)
	return out
}

func mustTreeEngine(t *testing.T, ut *tree.Unranked) *TreeEngine {
	t.Helper()
	e, err := NewTree(ut, selectB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSnapshotMatchesTree cross-checks every published snapshot against
// the tree version it was taken from, over a random single-edit stream.
func TestSnapshotMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ut := tva.RandomUnrankedTree(rng, 40, []tree.Label{"a", "b", "c"})
	e := mustTreeEngine(t, ut)
	check := func(s *Snapshot) {
		t.Helper()
		want := expectedB(e.Tree())
		if got := resultKeys(s.Results()); !slices.Equal(got, want) {
			t.Fatalf("snapshot v%d: got %v, want %v", s.Version(), got, want)
		}
	}
	check(e.Snapshot())
	for step := 0; step < 200; step++ {
		nodes := e.Tree().Nodes()
		n := nodes[rng.Intn(len(nodes))]
		l := []tree.Label{"a", "b", "c"}[rng.Intn(3)]
		var s *Snapshot
		var err error
		switch rng.Intn(4) {
		case 0:
			s, err = e.Relabel(n.ID, l)
		case 1:
			_, s, err = e.InsertFirstChild(n.ID, l)
		case 2:
			if n.Parent == nil {
				continue
			}
			_, s, err = e.InsertRightSibling(n.ID, l)
		default:
			if !n.IsLeaf() || n.Parent == nil {
				continue
			}
			s, err = e.Delete(n.ID)
		}
		if err != nil {
			t.Fatal(err)
		}
		check(s)
	}
}

// TestSnapshotIsolationMidIteration is the deterministic isolation
// check: an in-flight Results iteration, paused halfway, must be
// unaffected by updates applied in between — and the snapshot must stay
// fully re-enumerable afterwards.
func TestSnapshotIsolationMidIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ut := tva.RandomUnrankedTree(rng, 120, []tree.Label{"a", "b"})
	e := mustTreeEngine(t, ut)

	snap := e.Snapshot()
	want := resultKeys(snap.Results())
	if len(want) < 10 {
		t.Fatalf("test tree too small: %d results", len(want))
	}

	next, stop := iter.Pull(snap.Results())
	defer stop()
	var got []string
	for i := 0; i < len(want)/2; i++ {
		a, ok := next()
		if !ok {
			t.Fatal("iteration ended early")
		}
		got = append(got, a.Key())
	}

	// Hammer the engine: relabel every b away, insert fresh subtrees,
	// delete leaves. The paused iteration must not notice.
	for _, n := range e.Tree().Nodes() {
		if n.Label == "b" {
			if _, err := e.Relabel(n.ID, "a"); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 30; i++ {
		if _, _, err := e.InsertFirstChild(e.Tree().Root.ID, "b"); err != nil {
			t.Fatal(err)
		}
	}

	for {
		a, ok := next()
		if !ok {
			break
		}
		got = append(got, a.Key())
	}
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatalf("interleaved iteration diverged: got %d results, want %d", len(got), len(want))
	}
	// Restartability: the old snapshot still answers for its version.
	if again := resultKeys(snap.Results()); !slices.Equal(again, want) {
		t.Fatal("old snapshot changed after updates")
	}
	// And the latest snapshot sees the new state.
	if got := resultKeys(e.Snapshot().Results()); len(got) != 30 {
		t.Fatalf("latest snapshot has %d results, want 30", len(got))
	}
}

// TestApplyBatchMatchesSequential applies the same edit stream batched
// and one-by-one: the final result sets must agree, and the batch must
// publish once with strictly less box-repair work.
func TestApplyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ut := tva.RandomUnrankedTree(rng, 60, []tree.Label{"a", "b", "c"})

	eBatch := mustTreeEngine(t, ut.Clone())
	eSeq := mustTreeEngine(t, ut.Clone())
	if eBatch.Snapshot().Version() != 1 {
		t.Fatalf("initial version = %d, want 1", eBatch.Snapshot().Version())
	}

	// A clustered batch: relabels concentrated on few nodes, so trunks
	// overlap and batching amortizes.
	var batch []Update
	nodes := ut.Nodes()
	for i := 0; i < 24; i++ {
		n := nodes[rng.Intn(10)%len(nodes)]
		batch = append(batch, Update{Op: OpRelabel, Node: n.ID, Label: []tree.Label{"a", "b", "c"}[rng.Intn(3)]})
	}
	base := eBatch.BoxesRebuilt()
	snapB, _, err := eBatch.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	batchWork := eBatch.BoxesRebuilt() - base

	base = eSeq.BoxesRebuilt()
	var snapS *Snapshot
	for _, u := range batch {
		if snapS, err = eSeq.Relabel(u.Node, u.Label); err != nil {
			t.Fatal(err)
		}
	}
	seqWork := eSeq.BoxesRebuilt() - base

	if got, want := resultKeys(snapB.Results()), resultKeys(snapS.Results()); !slices.Equal(got, want) {
		t.Fatalf("batch result %v != sequential result %v", got, want)
	}
	if snapB.Version() != 2 {
		t.Fatalf("batch published %d times, want once", snapB.Version()-1)
	}
	if batchWork >= seqWork {
		t.Fatalf("batching did not amortize: batch rebuilt %d boxes, sequential %d", batchWork, seqWork)
	}
	t.Logf("box repair: batch %d vs sequential %d (%d edits)", batchWork, seqWork, len(batch))
}

// TestApplyBatchInsertIDsAndErrors checks the ID return and the
// stop-at-first-error contract.
func TestApplyBatchInsertIDsAndErrors(t *testing.T) {
	ut := tree.NewUnranked("a")
	e := mustTreeEngine(t, ut)

	snap, ids, err := e.ApplyBatch([]Update{
		{Op: OpInsertFirstChild, Node: ut.Root.ID, Label: "b"},
		{Op: OpInsertRightSibling, Node: ut.Root.ID, Label: "b"}, // invalid: the root has no siblings
	})
	if err == nil {
		t.Fatal("expected error for insertR at the root")
	}
	if ids[0] < 0 {
		t.Fatal("first insert should have returned a fresh ID")
	}
	if ids[1] != tree.InvalidNode {
		t.Fatalf("unapplied position should stay InvalidNode, got %d", ids[1])
	}
	// The first edit was applied and published despite the later error.
	if got := resultKeys(snap.Results()); len(got) != 1 {
		t.Fatalf("partial batch published %d results, want 1", len(got))
	}

	snap2, ids2, err := e.ApplyBatch([]Update{
		{Op: OpInsertFirstChild, Node: ut.Root.ID, Label: "b"},
		{Op: OpRelabel, Node: ids[0], Label: "a"},
		{Op: OpDelete, Node: ids[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ids2[0] < 0 || ids2[1] != tree.InvalidNode || ids2[2] != tree.InvalidNode {
		t.Fatalf("ids = %v: only inserts return fresh IDs, -1 elsewhere", ids2)
	}
	// The old b-child was relabeled away and deleted; only the batch's
	// fresh insert remains.
	if got := resultKeys(snap2.Results()); len(got) != 1 {
		t.Fatalf("got %d results, want 1", len(got))
	}

	// Word-only operations are rejected on a tree engine.
	if _, _, err := e.ApplyBatch([]Update{{Op: OpInsertAfter, Node: 0, Label: "b"}}); err == nil {
		t.Fatal("expected error for a word op on a tree engine")
	}
}

// TestWordEngineBatchAndSnapshots covers the word side: batched letter
// edits, snapshot isolation, MoveRange as one publication.
func TestWordEngineBatchAndSnapshots(t *testing.T) {
	q := &tva.WVA{
		NumStates: 2,
		Alphabet:  alphaAB,
		Vars:      tree.NewVarSet(0),
		Initial:   []tva.State{0},
		Final:     []tva.State{1},
	}
	// Accept any word with exactly one marked b (X0 on it).
	for _, l := range alphaAB {
		q.Trans = append(q.Trans,
			tva.WTrans{From: 0, Label: l, Set: 0, To: 0},
			tva.WTrans{From: 1, Label: l, Set: 0, To: 1},
		)
	}
	q.Trans = append(q.Trans, tva.WTrans{From: 0, Label: "b", Set: tree.NewVarSet(0), To: 1})

	e, err := NewWord([]tree.Label{"a", "b", "a"}, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	if before.Count() != 1 {
		t.Fatalf("initial count = %d, want 1", before.Count())
	}

	ids, _ := e.Word()
	snap, newIDs, err := e.ApplyBatch([]Update{
		{Op: OpInsertAfter, Node: ids[2], Label: "b"},
		{Op: OpInsertBefore, Node: ids[0], Label: "b"},
		{Op: OpRelabel, Node: ids[1], Label: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if newIDs[0] == newIDs[1] {
		t.Fatal("insert IDs must be distinct")
	}
	if snap.Count() != 2 {
		t.Fatalf("after batch count = %d, want 2", snap.Count())
	}
	if before.Count() != 1 {
		t.Fatal("old word snapshot changed after batch")
	}
	if snap.Version() != before.Version()+1 {
		t.Fatalf("batch published %d snapshots, want 1", snap.Version()-before.Version())
	}

	// MoveRange: one publication, stable IDs.
	v := snap.Version()
	moved, err := e.MoveRange(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Version() != v+1 {
		t.Fatalf("MoveRange published %d snapshots, want 1", moved.Version()-v)
	}
	if moved.Count() != 2 {
		t.Fatalf("after move count = %d, want 2", moved.Count())
	}
}

// TestStatsAndVersioning sanity-checks the monotone version counter and
// the lazily computed stats.
func TestStatsAndVersioning(t *testing.T) {
	ut := tree.NewUnranked("a")
	e := mustTreeEngine(t, ut)
	var last uint64
	for i := 0; i < 5; i++ {
		s, _, err := e.InsertFirstChild(ut.Root.ID, "b")
		_ = s
		snap := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Version() <= last {
			t.Fatalf("version not increasing: %d after %d", snap.Version(), last)
		}
		last = snap.Version()
		st := snap.Stats()
		if st.Boxes == 0 || st.BoxesRebuilt == 0 {
			t.Fatalf("stats empty: %+v", st)
		}
		if st2 := snap.Stats(); st2 != st {
			t.Fatal("stats not stable across calls")
		}
	}
}

// TestAttachTracksLiveTerm verifies the eager-release bookkeeping: after
// a long random edit storm (including inserts, deletes and the scapegoat
// rebuilds they trigger) the attachment map must hold exactly one frozen
// wrapper per live term node — no leaked superseded entries, no missing
// live ones.
func TestAttachTracksLiveTerm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ut := tva.RandomUnrankedTree(rng, 30, []tree.Label{"a", "b"})
	e := mustTreeEngine(t, ut)
	labels := []tree.Label{"a", "b"}
	for i := 0; i < 3000; i++ {
		nodes := e.Tree().Nodes()
		n := nodes[rng.Intn(len(nodes))]
		var err error
		switch rng.Intn(4) {
		case 0:
			_, err = e.Relabel(n.ID, labels[rng.Intn(2)])
		case 1:
			_, _, err = e.InsertFirstChild(n.ID, labels[rng.Intn(2)])
		case 2:
			if n.Parent == nil {
				continue
			}
			_, _, err = e.InsertRightSibling(n.ID, labels[rng.Intn(2)])
		default:
			if !n.IsLeaf() || n.Parent == nil {
				continue
			}
			_, err = e.Delete(n.ID)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	attach := e.set.pipes[e.id].attach
	live := 0
	var rec func(n *forest.Node)
	rec = func(n *forest.Node) {
		if n == nil {
			return
		}
		live++
		if attach[n] == nil {
			t.Fatalf("live term node %v has no attachment", n.Op)
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(e.set.f.TermRoot())
	if len(attach) != live {
		t.Fatalf("attach map has %d entries for %d live term nodes (leak)", len(attach), live)
	}
	want := expectedB(e.Tree())
	if got := resultKeys(e.Snapshot().Results()); !slices.Equal(got, want) {
		t.Fatalf("post-storm results wrong: got %d, want %d", len(got), len(want))
	}
}

func ExampleTreeEngine_ApplyBatch() {
	ut := tree.NewUnranked("a")
	e, _ := NewTree(ut, tva.SelectLabel([]tree.Label{"a", "b"}, "b", 0), Options{})
	snap, _, _ := e.ApplyBatch([]Update{
		{Op: OpInsertFirstChild, Node: ut.Root.ID, Label: "b"},
		{Op: OpInsertFirstChild, Node: ut.Root.ID, Label: "b"},
	})
	fmt.Println(snap.Count())
	// Output: 2
}
