package engine

import (
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tree"
	"repro/internal/tva"
)

// selectLabel builds the standing query "X0 selects an l-labeled node"
// over the {a, b, c} test alphabet.
func selectLabel(l tree.Label) *tva.Unranked {
	return tva.SelectLabel([]tree.Label{"a", "b", "c"}, l, 0)
}

// expectedLabel lists the keys of the expected result set of
// selectLabel(l) on t.
func expectedLabel(t *tree.Unranked, l tree.Label) []string {
	var out []string
	for _, n := range t.Nodes() {
		if n.Label == l {
			out = append(out, tree.Assignment{{Var: 0, Node: n.ID}}.Normalize().Key())
		}
	}
	slices.Sort(out)
	return out
}

// randomEdit applies one random valid edit to the set, mirroring the
// single-engine tests.
func randomEdit(t *testing.T, s *TreeSet, rng *rand.Rand) {
	t.Helper()
	labels := []tree.Label{"a", "b", "c"}
	nodes := s.Tree().Nodes()
	n := nodes[rng.Intn(len(nodes))]
	l := labels[rng.Intn(3)]
	var err error
	switch rng.Intn(4) {
	case 0:
		_, err = s.Relabel(n.ID, l)
	case 1:
		_, _, err = s.InsertFirstChild(n.ID, l)
	case 2:
		if n.Parent == nil {
			return
		}
		_, _, err = s.InsertRightSibling(n.ID, l)
	default:
		if !n.IsLeaf() || n.Parent == nil {
			return
		}
		_, err = s.Delete(n.ID)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestLateRegistrationMatchesFresh is the property test of runtime
// registration: a query registered AFTER a random edit script must
// enumerate exactly what a fresh engine built at that version does — and
// registering it must not disturb the queries already standing.
func TestLateRegistrationMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ut := tva.RandomUnrankedTree(rng, 30+rng.Intn(50), []tree.Label{"a", "b", "c"})
		s := NewTreeSet(ut)
		early, err := s.Register(selectLabel("b"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			randomEdit(t, s, rng)
		}
		beforeReg := resultKeys(s.Snapshot().Query(early).Results())

		late, err := s.Register(selectLabel("a"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := s.Snapshot()

		// The late query answers as a fresh engine at this version would.
		fresh, err := NewTree(s.Tree().Clone(), selectLabel("a"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := resultKeys(fresh.Snapshot().Results())
		if got := resultKeys(m.Query(late).Results()); !slices.Equal(got, want) {
			t.Fatalf("seed %d: late registration got %d results, fresh engine %d", seed, len(got), len(want))
		}
		// Double-check against the tree directly.
		if wantTree := expectedLabel(s.Tree(), "a"); !slices.Equal(want, wantTree) {
			t.Fatalf("seed %d: fresh engine disagrees with the tree", seed)
		}
		// The early query is untouched by the registration.
		if got := resultKeys(m.Query(early).Results()); !slices.Equal(got, beforeReg) {
			t.Fatalf("seed %d: registration disturbed a standing query", seed)
		}

		// And both queries stay correct under further edits.
		for i := 0; i < 40; i++ {
			randomEdit(t, s, rng)
		}
		m = s.Snapshot()
		if got := resultKeys(m.Query(late).Results()); !slices.Equal(got, expectedLabel(s.Tree(), "a")) {
			t.Fatalf("seed %d: late query wrong after further edits", seed)
		}
		if got := resultKeys(m.Query(early).Results()); !slices.Equal(got, expectedLabel(s.Tree(), "b")) {
			t.Fatalf("seed %d: early query wrong after further edits", seed)
		}
	}
}

// TestQuerySetSharesTermWork pins the C2 acceptance property at test
// scale: a shared set applying a batch stream to k=4 standing queries
// performs the term work (path copies, rebalances) ONCE — counters equal
// to the k=1 case — while k independent engines perform it k times.
func TestQuerySetSharesTermWork(t *testing.T) {
	const k = 4
	rng := rand.New(rand.NewSource(11))
	ut := tva.RandomUnrankedTree(rng, 200, []tree.Label{"a", "b", "c"})
	queries := []*tva.Unranked{selectLabel("a"), selectLabel("b"), selectLabel("c"), selectLabel("a")}

	stream := func(apply func(batch []Update)) {
		srng := rand.New(rand.NewSource(12))
		labels := []tree.Label{"a", "b", "c"}
		ids := []tree.NodeID{}
		for _, n := range ut.Nodes() {
			ids = append(ids, n.ID)
		}
		for b := 0; b < 30; b++ {
			var batch []Update
			for j := 0; j < 5; j++ {
				batch = append(batch, Update{Op: OpRelabel, Node: ids[srng.Intn(len(ids))], Label: labels[srng.Intn(3)]})
			}
			apply(batch)
		}
	}

	run := func(nq int) (pathCopies, rebalances int) {
		single := NewTreeSet(ut.Clone())
		for i := 0; i < nq; i++ {
			if _, err := single.Register(queries[i], Options{}); err != nil {
				t.Fatal(err)
			}
		}
		stream(func(batch []Update) {
			if _, _, err := single.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
		})
		return single.PathCopies(), single.Rebalances()
	}

	pc1, rb1 := run(1)
	pcK, rbK := run(k)
	if pcK != pc1 || rbK != rb1 {
		t.Fatalf("shared term work grew with queries: k=1 (%d copies, %d rebalances) vs k=%d (%d, %d)",
			pc1, rb1, k, pcK, rbK)
	}

	// k independent engines: the same stream costs k× the term work.
	engines := make([]*TreeEngine, k)
	for i := range engines {
		e, err := NewTree(ut.Clone(), queries[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	stream(func(batch []Update) {
		for _, e := range engines {
			if _, _, err := e.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
	})
	total := 0
	for _, e := range engines {
		total += e.Set().PathCopies()
	}
	if total != k*pc1 {
		t.Fatalf("independent engines did %d path copies, want %d×%d = %d", total, k, pc1, k*pc1)
	}
}

// TestUnregisterReleasesPipeline checks that unregistering removes
// exactly one pipeline — its attachments are dropped, the others keep
// answering — and that already-published snapshots still cover the
// removed query.
func TestUnregisterReleasesPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ut := tva.RandomUnrankedTree(rng, 60, []tree.Label{"a", "b", "c"})
	s := NewTreeSet(ut)
	qa, err := s.Register(selectLabel("a"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := s.Register(selectLabel("b"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Snapshot()
	boxesBefore := s.BoxesRebuilt()

	if err := s.Unregister(qa); err != nil {
		t.Fatal(err)
	}
	if got := s.BoxesRebuilt(); got < boxesBefore {
		t.Fatalf("BoxesRebuilt went backwards across unregister: %d -> %d", boxesBefore, got)
	}
	if err := s.Unregister(qa); err == nil {
		t.Fatal("double unregister must fail")
	}
	if got := s.Queries(); !slices.Equal(got, []QueryID{qb}) {
		t.Fatalf("queries after unregister = %v, want [%v]", got, qb)
	}
	if len(s.pipes) != 1 {
		t.Fatalf("pipelines not released: %d remain", len(s.pipes))
	}

	// The new snapshot lacks qa; the old one still answers it.
	m := s.Snapshot()
	if m.Query(qa) != nil {
		t.Fatal("unregistered query still published")
	}
	if before.Query(qa) == nil || before.Query(qa).Count() != len(expectedLabel(ut, "a")) {
		t.Fatal("pre-unregister snapshot no longer answers the removed query")
	}

	// The surviving query keeps serving through further edits.
	for i := 0; i < 40; i++ {
		randomEdit(t, s, rng)
	}
	if got := resultKeys(s.Snapshot().Query(qb).Results()); !slices.Equal(got, expectedLabel(s.Tree(), "b")) {
		t.Fatal("surviving query wrong after unregister + edits")
	}
}

// selectLetterWVA builds the word query "X0 selects an l-labeled
// letter" over the {a, b} test alphabet.
func selectLetterWVA(l tree.Label) *tva.WVA {
	q := &tva.WVA{
		NumStates: 2,
		Alphabet:  []tree.Label{"a", "b"},
		Vars:      tree.NewVarSet(0),
		Initial:   []tva.State{0},
		Final:     []tva.State{1},
	}
	for _, c := range q.Alphabet {
		q.Trans = append(q.Trans,
			tva.WTrans{From: 0, Label: c, Set: 0, To: 0},
			tva.WTrans{From: 1, Label: c, Set: 0, To: 1},
		)
	}
	q.Trans = append(q.Trans, tva.WTrans{From: 0, Label: l, Set: tree.NewVarSet(0), To: 1})
	return q
}

// expectedLetters lists the expected result keys of selectLetterWVA(l)
// on the current word: one singleton per l-labeled letter.
func expectedLetters(s *WordSet, l tree.Label) []string {
	ids, labels := s.Word()
	var out []string
	for i, lab := range labels {
		if lab == l {
			out = append(out, tree.Assignment{{Var: 0, Node: ids[i]}}.Normalize().Key())
		}
	}
	slices.Sort(out)
	return out
}

// TestWordSetLateRegistrationAndUnregister is the word-side mirror of
// the tree QuerySet tests: edits (including MoveRange bulk updates that
// trigger term rebuilds) precede a late registration, which must answer
// exactly per the current word; unregistering releases one pipeline
// while the survivor keeps serving.
func TestWordSetLateRegistrationAndUnregister(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	letters := make([]tree.Label, 24)
	for i := range letters {
		letters[i] = []tree.Label{"a", "b"}[rng.Intn(2)]
	}
	s, err := NewWordSet(letters)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := s.Register(selectLetterWVA("b"), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Edit storm: relabels, inserts, deletes, and bulk moves.
	for i := 0; i < 60; i++ {
		ids, _ := s.Word()
		id := ids[rng.Intn(len(ids))]
		l := []tree.Label{"a", "b"}[rng.Intn(2)]
		switch rng.Intn(5) {
		case 0:
			_, err = s.Relabel(id, l)
		case 1:
			_, _, err = s.InsertAfter(id, l)
		case 2:
			_, _, err = s.InsertBefore(id, l)
		case 3:
			if s.Len() > 1 {
				_, err = s.Delete(id)
			}
		default:
			if n := s.Len(); n >= 4 {
				from, k := rng.Intn(n-2), 1+rng.Intn(2)
				_, err = s.MoveRange(from, k, rng.Intn(n-k+1)-1)
			}
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := resultKeys(s.Snapshot().Query(qb).Results()); !slices.Equal(got, expectedLetters(s, "b")) {
		t.Fatal("standing word query wrong after edit storm")
	}

	// Late registration walks the edited (and rebuilt) live term.
	qa, err := s.Register(selectLetterWVA("a"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Snapshot()
	if got := resultKeys(m.Query(qa).Results()); !slices.Equal(got, expectedLetters(s, "a")) {
		t.Fatal("late word registration enumerates wrong assignments")
	}

	// Unregister the early query; the late one keeps serving under more
	// edits.
	if err := s.Unregister(qb); err != nil {
		t.Fatal(err)
	}
	ids, _ := s.Word()
	if _, _, err := s.InsertAfter(ids[0], "a"); err != nil {
		t.Fatal(err)
	}
	m = s.Snapshot()
	if m.Query(qb) != nil {
		t.Fatal("unregistered word query still published")
	}
	if got := resultKeys(m.Query(qa).Results()); !slices.Equal(got, expectedLetters(s, "a")) {
		t.Fatal("surviving word query wrong after unregister + edit")
	}
}

// TestQuerySetStress is the -race stress of the multi-query contract:
// concurrent readers enumerate every query of whatever MultiSnapshot
// they load — including queries being churned in and out by a third
// goroutine — while the writer streams relabel-only batches. Relabels
// over {a, b} preserve the node count, so every consistent MultiSnapshot
// must satisfy count(select:a) + count(select:b) = |T| across its two
// permanent queries, no matter how the load interleaves.
func TestQuerySetStress(t *testing.T) {
	const (
		readers  = 4
		nodes    = 120
		minReads = 300
	)
	rng := rand.New(rand.NewSource(31))
	ut := tva.RandomUnrankedTree(rng, nodes, []tree.Label{"a", "b"})
	s := NewTreeSet(ut)
	qa, err := s.Register(selectLabel("a"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := s.Register(selectLabel("b"), Options{})
	if err != nil {
		t.Fatal(err)
	}

	var (
		done  atomic.Bool
		reads atomic.Int64
		wg    sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				m := s.Snapshot()
				if m.Version() == 0 {
					continue
				}
				ca := m.Query(qa).Count()
				cb := m.Query(qb).Count()
				if ca+cb != nodes {
					t.Errorf("v%d: count(a)+count(b) = %d+%d, want %d", m.Version(), ca, cb, nodes)
					return
				}
				// Enumerate every churned query present in this version
				// too: their pipelines must be fully usable.
				for _, id := range m.Queries() {
					if id != qa && id != qb {
						m.Query(id).Count()
					}
				}
				reads.Add(1)
			}
		}()
	}

	// Churner: registers and unregisters a third query continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			id, err := s.Register(selectLabel("b"), Options{})
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.Unregister(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Writer: relabel-only batches (the node count stays fixed).
	wrng := rand.New(rand.NewSource(32))
	labels := []tree.Label{"a", "b"}
	ids := []tree.NodeID{}
	for _, n := range s.Tree().Nodes() {
		ids = append(ids, n.ID)
	}
	for i := 0; reads.Load() < minReads && !t.Failed(); i++ {
		var batch []Update
		for j := 0; j < 1+wrng.Intn(5); j++ {
			batch = append(batch, Update{Op: OpRelabel, Node: ids[wrng.Intn(len(ids))], Label: labels[wrng.Intn(2)]})
		}
		if _, _, err := s.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	t.Logf("%d consistent multi-query reads under register/unregister churn", reads.Load())
}
