package engine

import (
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tree"
	"repro/internal/tva"
)

// TestSnapshotIsolationStress is the -race stress test of the snapshot
// contract: N reader goroutines continuously pull the latest snapshot
// and enumerate it in full, while the writer applies interleaved
// insert/delete/relabel batches. Every verified snapshot's result set
// must match the tree version it was taken from — the writer records the
// expected set (keyed by snapshot version) right after each publication,
// and readers verify whichever published versions they manage to
// observe.
func TestSnapshotIsolationStress(t *testing.T) {
	const (
		readers     = 4
		minBatches  = 150
		maxBatches  = 20000
		minVerified = 200
		minVersions = 5
	)
	rng := rand.New(rand.NewSource(42))
	ut := tva.RandomUnrankedTree(rng, 150, []tree.Label{"a", "b", "c"})
	e := mustTreeEngine(t, ut)

	// expected maps snapshot version -> sorted result keys. Written only
	// by the writer goroutine; readers skip versions not yet recorded.
	var expected sync.Map
	expected.Store(e.Snapshot().Version(), expectedB(e.Tree()))

	var (
		done     atomic.Bool
		verified atomic.Int64
		distinct atomic.Int64
		versions sync.Map // distinct versions any reader verified
		wg       sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				snap := e.Snapshot()
				want, ok := expected.Load(snap.Version())
				got := resultKeys(snap.Results()) // enumerate regardless: races would trip -race
				if !ok {
					continue // published after our load but before the writer recorded it
				}
				if !slices.Equal(got, want.([]string)) {
					t.Errorf("snapshot v%d: got %d results, want %d",
						snap.Version(), len(got), len(want.([]string)))
					return
				}
				verified.Add(1)
				if _, seen := versions.LoadOrStore(snap.Version(), true); !seen {
					distinct.Add(1)
				}
			}
		}()
	}

	// Writer: random batches of 1-6 valid edits. Each batch kind uses
	// distinct targets so it cannot fail halfway. The writer keeps
	// publishing until the readers have verified enough distinct
	// versions (the stream outruns a cold reader startup otherwise).
	wrng := rand.New(rand.NewSource(43))
	labels := []tree.Label{"a", "b", "c"}
	for i := 0; i < maxBatches; i++ {
		if i >= minBatches && verified.Load() >= minVerified && distinct.Load() >= minVersions {
			break
		}
		tr := e.Tree()
		nodes := tr.Nodes()
		k := 1 + wrng.Intn(6)
		var batch []Update
		switch wrng.Intn(3) {
		case 0: // relabels
			for j := 0; j < k; j++ {
				n := nodes[wrng.Intn(len(nodes))]
				batch = append(batch, Update{Op: OpRelabel, Node: n.ID, Label: labels[wrng.Intn(3)]})
			}
		case 1: // inserts (first child and right sibling mixed)
			for j := 0; j < k; j++ {
				n := nodes[wrng.Intn(len(nodes))]
				if n.Parent != nil && wrng.Intn(2) == 0 {
					batch = append(batch, Update{Op: OpInsertRightSibling, Node: n.ID, Label: labels[wrng.Intn(3)]})
				} else {
					batch = append(batch, Update{Op: OpInsertFirstChild, Node: n.ID, Label: labels[wrng.Intn(3)]})
				}
			}
		default: // deletes of distinct leaves (stay nonempty)
			var leaves []tree.NodeID
			for _, n := range nodes {
				if n.IsLeaf() && n.Parent != nil {
					leaves = append(leaves, n.ID)
				}
			}
			wrng.Shuffle(len(leaves), func(a, b int) { leaves[a], leaves[b] = leaves[b], leaves[a] })
			for j := 0; j < k && j < len(leaves); j++ {
				batch = append(batch, Update{Op: OpDelete, Node: leaves[j]})
			}
			if len(batch) == 0 {
				batch = append(batch, Update{Op: OpRelabel, Node: tr.Root.ID, Label: labels[wrng.Intn(3)]})
			}
		}
		snap, _, err := e.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		expected.Store(snap.Version(), expectedB(e.Tree()))
	}
	done.Store(true)
	wg.Wait()

	if verified.Load() < minVerified || distinct.Load() < minVersions {
		t.Fatalf("stress too weak: %d verifications over %d distinct versions",
			verified.Load(), distinct.Load())
	}
	t.Logf("verified %d enumerations across %d distinct snapshot versions", verified.Load(), distinct.Load())
}

// TestConcurrentReadersOneSnapshot runs many goroutines enumerating the
// SAME snapshot concurrently (the shared, frozen (box, index) units are
// read from all of them at once) while the writer keeps updating.
func TestConcurrentReadersOneSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ut := tva.RandomUnrankedTree(rng, 200, []tree.Label{"a", "b"})
	e := mustTreeEngine(t, ut)
	snap := e.Snapshot()
	want := resultKeys(snap.Results())

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got := resultKeys(snap.Results()); !slices.Equal(got, want) {
					errs <- "shared snapshot enumeration diverged"
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(8))
		for i := 0; i < 300; i++ {
			nodes := e.Tree().Nodes()
			n := nodes[wrng.Intn(len(nodes))]
			if _, err := e.Relabel(n.ID, []tree.Label{"a", "b"}[wrng.Intn(2)]); err != nil {
				errs <- err.Error()
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
