package engine_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/enumerate"
	"repro/internal/tree"
	"repro/internal/tva"
)

// This file is the differential suite of signature-pruned repair: every
// script — the seeded corpus under testdata/differential plus fresh
// random ones — runs through TWO engines over the same document, the
// default (pruned) one and one with Options.FullRebuild, and after every
// batch the two must agree on the whole circuit STRUCTURE (box-for-box
// Sig + circuit.ShapeEqual over the published trees — a reused box must
// be gate for gate the box a rebuild would have produced), on the full
// result sequence (order included, so even enumeration order may not
// drift), on Count, and on At(j) probes. A final test pins that the
// suite actually exercises the reuse path (BoxesReused > 0 on a
// neutral-relabel stream) so the comparison can never silently
// degenerate into pruned-vs-pruned.

// drainSeq materializes the engine's enumeration order (unsorted).
func drainSeq(s *engine.Snapshot) []string {
	var out []string
	for a := range s.Results() {
		out = append(out, a.Key())
	}
	return out
}

// compareBoxTrees walks the two snapshots' circuit trees in lockstep
// and requires every box pair to agree on the structural signature AND
// on circuit.ShapeEqual, the exact relation the signature approximates.
// This is stronger than comparing answers: a reused box must be gate
// for gate the box the full rebuild produced (only Label/Node/identity
// may differ), at every trunk position, after every batch.
func compareBoxTrees(t *testing.T, s *diffScript, step int, pruned, full *engine.Snapshot) {
	t.Helper()
	var rec func(p, f *enumerate.IndexedBox)
	rec = func(p, f *enumerate.IndexedBox) {
		if (p == nil) != (f == nil) {
			t.Fatalf("step %d: box trees have different shapes\nscript:\n%s", step, s)
		}
		if p == nil {
			return
		}
		if p.Box.Sig != f.Box.Sig {
			t.Fatalf("step %d: box signatures diverge at n%d: %x vs %x\nscript:\n%s",
				step, p.Box.Node, p.Box.Sig, f.Box.Sig, s)
		}
		if !circuit.ShapeEqual(p.Box, f.Box) {
			t.Fatalf("step %d: box gate structure diverges at n%d\nscript:\n%s", step, p.Box.Node, s)
		}
		rec(p.Left, f.Left)
		rec(p.Right, f.Right)
	}
	rec(pruned.Root(), full.Root())
}

// comparePrunedFull checks one publication pair.
func comparePrunedFull(t *testing.T, s *diffScript, step int, pruned, full *engine.Snapshot) {
	t.Helper()
	compareBoxTrees(t, s, step, pruned, full)
	ps, fs := drainSeq(pruned), drainSeq(full)
	if !slices.Equal(ps, fs) {
		t.Fatalf("step %d: pruned and full-rebuild engines diverge\npruned: %v\nfull:   %v\nscript:\n%s", step, ps, fs, s)
	}
	if pc, fc := pruned.Count(), full.Count(); pc != fc {
		t.Fatalf("step %d: Count diverges: pruned %d, full %d\nscript:\n%s", step, pc, fc, s)
	}
	for _, j := range []int{0, len(ps) / 2, len(ps) - 1} {
		if j < 0 || j >= len(ps) {
			continue
		}
		pa, perr := pruned.At(j)
		fa, ferr := full.At(j)
		if (perr == nil) != (ferr == nil) {
			t.Fatalf("step %d: At(%d) errors diverge: %v vs %v\nscript:\n%s", step, j, perr, ferr, s)
		}
		if perr == nil && pa.Key() != fa.Key() {
			t.Fatalf("step %d: At(%d) diverges: %v vs %v\nscript:\n%s", step, j, pa, fa, s)
		}
	}
}

// runPrunedVsFull replays one script through both engines.
func runPrunedVsFull(t *testing.T, s *diffScript) {
	t.Helper()
	mkBatches := func() [][]engine.Update {
		out := make([][]engine.Update, len(s.batches))
		for bi, raw := range s.batches {
			for _, ed := range raw {
				u, err := parseDiffEdit(ed)
				if err != nil {
					t.Fatalf("%v\nscript:\n%s", err, s)
				}
				out[bi] = append(out[bi], u)
			}
		}
		return out
	}
	if s.isWord {
		q, err := diffWordQuery(s.query)
		if err != nil {
			t.Fatalf("script query: %v\nscript:\n%s", err, s)
		}
		pruned, err := engine.NewWord(s.letters, q, engine.Options{})
		if err != nil {
			t.Fatalf("engine: %v\nscript:\n%s", err, s)
		}
		full, err := engine.NewWord(s.letters, q, engine.Options{FullRebuild: true})
		if err != nil {
			t.Fatalf("engine: %v\nscript:\n%s", err, s)
		}
		comparePrunedFull(t, s, 0, pruned.Snapshot(), full.Snapshot())
		for bi, batch := range mkBatches() {
			psnap, _, perr := pruned.ApplyBatch(batch)
			fsnap, _, ferr := full.ApplyBatch(batch)
			if (perr == nil) != (ferr == nil) {
				t.Fatalf("batch %d: errors diverge: %v vs %v\nscript:\n%s", bi, perr, ferr, s)
			}
			comparePrunedFull(t, s, bi+1, psnap, fsnap)
		}
		return
	}
	q, err := diffTreeQuery(s.query)
	if err != nil {
		t.Fatalf("script query: %v\nscript:\n%s", err, s)
	}
	ut, err := tree.ParseUnranked(s.tree)
	if err != nil {
		t.Fatalf("script tree: %v\nscript:\n%s", err, s)
	}
	pruned, err := engine.NewTree(ut.Clone(), q, engine.Options{})
	if err != nil {
		t.Fatalf("engine: %v\nscript:\n%s", err, s)
	}
	full, err := engine.NewTree(ut, q, engine.Options{FullRebuild: true})
	if err != nil {
		t.Fatalf("engine: %v\nscript:\n%s", err, s)
	}
	comparePrunedFull(t, s, 0, pruned.Snapshot(), full.Snapshot())
	for bi, batch := range mkBatches() {
		psnap, _, perr := pruned.ApplyBatch(batch)
		fsnap, _, ferr := full.ApplyBatch(batch)
		if (perr == nil) != (ferr == nil) {
			t.Fatalf("batch %d: errors diverge: %v vs %v\nscript:\n%s", bi, perr, ferr, s)
		}
		comparePrunedFull(t, s, bi+1, psnap, fsnap)
	}
}

// TestDifferentialPrunedVsFullCorpus replays the committed seed corpus
// through the pruned-vs-full comparison.
func TestDifferentialPrunedVsFullCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "differential", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus scripts found")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			s, err := parseDiffScript(string(data))
			if err != nil {
				t.Fatal(err)
			}
			runPrunedVsFull(t, s)
		})
	}
}

// TestDifferentialPrunedVsFullRandom draws fresh random edit scripts —
// trees and words, all query kinds including the ambiguous path query —
// for the pruned-vs-full comparison. Failures print the script in
// corpus format.
func TestDifferentialPrunedVsFullRandom(t *testing.T) {
	queries := []string{"select:b", "ancestor", "childpair", "path://a//b"}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		s := randomDiffScript(rng, queries[seed%int64(len(queries))], false, true)
		t.Run(fmt.Sprintf("tree%d", seed), func(t *testing.T) { runPrunedVsFull(t, s) })
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		s := randomDiffScript(rng, "span", true, true)
		t.Run(fmt.Sprintf("word%d", seed), func(t *testing.T) { runPrunedVsFull(t, s) })
	}
}

// TestPruningEngagesOnNeutralRelabels pins that signature-pruned repair
// actually fires: on a stream of relabels the query does not distinguish
// (non-b nodes toggling between a and c under select:b), the whole trunk
// is reused — BoxesReused grows, BoxesRebuilt stays flat — while the
// answers keep matching a FullRebuild twin, whose BoxesReused must stay
// zero. A query-visible relabel then checks pruning steps aside.
func TestPruningEngagesOnNeutralRelabels(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ut := tva.RandomUnrankedTree(rng, 200, []tree.Label{"a", "b", "c"})
	q, err := diffTreeQuery("select:b")
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := engine.NewTree(ut.Clone(), q, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := engine.NewTree(ut.Clone(), q, engine.Options{FullRebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	var neutral []tree.NodeID
	for _, n := range pruned.Tree().Nodes() {
		if n.Label != "b" {
			neutral = append(neutral, n.ID)
		}
	}
	if len(neutral) == 0 {
		t.Fatal("test tree has no neutral nodes")
	}
	base := pruned.Set().Stats()
	rebuiltBase := base.BoxesRebuilt
	for i := 0; i < 40; i++ {
		id := neutral[rng.Intn(len(neutral))]
		l := tree.Label("a")
		if rng.Intn(2) == 0 {
			l = "c"
		}
		psnap, perr := pruned.Relabel(id, l)
		fsnap, ferr := full.Relabel(id, l)
		if perr != nil || ferr != nil {
			t.Fatalf("relabel: %v / %v", perr, ferr)
		}
		comparePrunedFull(t, &diffScript{tree: "(neutral stream)", query: "select:b"}, i+1, psnap, fsnap)
	}
	st := pruned.Set().Stats()
	if st.BoxesReused == 0 {
		t.Fatal("neutral relabels should reuse trunk boxes (BoxesReused stayed 0)")
	}
	if st.BoxesRebuilt != rebuiltBase {
		t.Fatalf("neutral relabels rebuilt %d boxes, want 0", st.BoxesRebuilt-rebuiltBase)
	}
	if fst := full.Set().Stats(); fst.BoxesReused != 0 {
		t.Fatalf("FullRebuild engine reused %d boxes, want 0", fst.BoxesReused)
	}
	// The snapshot-side stats carry the same counter.
	if snapReused := pruned.Snapshot().Stats().BoxesReused; snapReused != st.BoxesReused {
		t.Fatalf("snapshot BoxesReused %d disagrees with engine stats %d", snapReused, st.BoxesReused)
	}

	// A visible relabel (b → a changes the answer set) must NOT be
	// pruned: answers change and boxes are rebuilt.
	var bNode tree.NodeID = tree.InvalidNode
	for _, n := range pruned.Tree().Nodes() {
		if n.Label == "b" {
			bNode = n.ID
			break
		}
	}
	if bNode == tree.InvalidNode {
		t.Skip("no b-labeled node left to relabel")
	}
	before := pruned.Snapshot().Count()
	psnap, err := pruned.Relabel(bNode, "a")
	if err != nil {
		t.Fatal(err)
	}
	fsnap, err := full.Relabel(bNode, "a")
	if err != nil {
		t.Fatal(err)
	}
	comparePrunedFull(t, &diffScript{tree: "(visible relabel)", query: "select:b"}, 999, psnap, fsnap)
	if psnap.Count() != before-1 {
		t.Fatalf("visible relabel: count %d, want %d", psnap.Count(), before-1)
	}
	if after := pruned.Set().Stats(); after.BoxesRebuilt == st.BoxesRebuilt {
		t.Fatal("visible relabel should rebuild trunk boxes")
	}
}
