package engine

import (
	"iter"
	"sync"

	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/enumerate"
	"repro/internal/tree"
)

// Stats reports sizes of the preprocessed structures and cumulative
// update work, for the experiment harness. Counters are as of the
// snapshot's publication.
type Stats struct {
	TranslatedStates int // |Q′| after trimming (before homogenization)
	AutomatonStates  int // states of the homogenized binary TVA
	CircuitWidth     int
	Boxes            int
	UnionGates       int
	TimesGates       int
	VarGates         int
	TermHeight       int
	BoxesRebuilt     int // cumulative, across all updates
	Rebalances       int // scapegoat rebuilds in the term
}

// Snapshot is one published version of the enumeration structure: the
// root of a frozen (box, index) tree plus the accepting boxed set of the
// automaton on it. Everything reachable from a snapshot is immutable, so
// all methods are safe from any number of goroutines, and an in-flight
// enumeration is unaffected by updates applied to the engine after the
// snapshot was taken.
type Snapshot struct {
	root    *enumerate.IndexedBox
	gamma   bitset.Set
	emptyOK bool
	mode    enumerate.Mode

	version          uint64
	termHeight       int
	boxesRebuilt     int
	rebalances       int
	translatedStates int
	automatonStates  int

	statsOnce sync.Once
	stats     Stats
}

// Version returns the publication sequence number of the snapshot
// (monotonically increasing per engine, starting at 1).
func (s *Snapshot) Version() uint64 { return s.version }

// Results enumerates the satisfying assignments of the query on this
// version of the input, without duplicates, with delay O(|S|·poly(|Q|))
// independent of |T| in the default indexed mode. The iteration may be
// abandoned, restarted, and run concurrently with engine updates and
// with other iterations of the same snapshot.
func (s *Snapshot) Results() iter.Seq[tree.Assignment] {
	return enumerate.Assignments(s.root, s.gamma, s.emptyOK, s.mode)
}

// Ropes is Results without materialization: assignments as shared ropes
// (nil = the empty assignment).
func (s *Snapshot) Ropes() iter.Seq[*enumerate.Rope] {
	return enumerate.Ropes(s.root, s.gamma, s.emptyOK, s.mode)
}

// Count drains Results and returns the number of satisfying assignments.
func (s *Snapshot) Count() int {
	n := 0
	for range s.Results() {
		n++
	}
	return n
}

// NonEmpty reports whether at least one satisfying assignment exists; by
// the delay bound it runs in time independent of |T| (indexed mode).
func (s *Snapshot) NonEmpty() bool {
	for range s.Results() {
		return true
	}
	return false
}

// All materializes every result (test/benchmark helper).
func (s *Snapshot) All() []tree.Assignment {
	var out []tree.Assignment
	for a := range s.Results() {
		out = append(out, a)
	}
	return out
}

// Accepting exposes the snapshot's root box together with its accepting
// boxed set and empty-assignment flag, for algebraic evaluators (package
// counting) that walk the frozen circuit directly.
func (s *Snapshot) Accepting() (*circuit.Box, bitset.Set, bool) {
	return s.root.Box, s.gamma, s.emptyOK
}

// Root returns the root of the snapshot's frozen wrapper tree.
func (s *Snapshot) Root() *enumerate.IndexedBox { return s.root }

// Stats reports structure sizes for this version. The circuit walk runs
// once, lazily, on first call (so publishing a snapshot stays O(log n)).
func (s *Snapshot) Stats() Stats {
	s.statsOnce.Do(func() {
		c := &circuit.Circuit{Root: s.root.Box}
		u, x, v := c.CountGates()
		s.stats = Stats{
			TranslatedStates: s.translatedStates,
			AutomatonStates:  s.automatonStates,
			CircuitWidth:     c.Width(),
			Boxes:            c.NumBoxes(),
			UnionGates:       u,
			TimesGates:       x,
			VarGates:         v,
			TermHeight:       s.termHeight,
			BoxesRebuilt:     s.boxesRebuilt,
			Rebalances:       s.rebalances,
		}
	})
	return s.stats
}
