package engine

import (
	"errors"
	"fmt"
	"iter"
	"math"
	"math/big"
	"sync"

	"repro/internal/bitset"
	"repro/internal/circuit"
	"repro/internal/enumerate"
	"repro/internal/tree"
)

// Stats reports sizes of the preprocessed structures and cumulative
// update work, for the experiment harness. Counters are as of the
// snapshot's publication.
type Stats struct {
	TranslatedStates int // |Q′| after trimming (before homogenization)
	AutomatonStates  int // states of the homogenized binary TVA
	CircuitWidth     int
	Boxes            int
	UnionGates       int
	TimesGates       int
	VarGates         int
	TermHeight       int
	BoxesRebuilt     int // cumulative for this query, across all updates
	BoxesReused      int // trunk boxes served by signature-pruned reuse
	PathCopies       int // cumulative shared term work (see EngineStats)
	Rebalances       int // scapegoat rebuilds in the term
}

// Snapshot is one published version of the enumeration structure: the
// root of a frozen (box, index) tree plus the accepting boxed set of the
// automaton on it. Everything reachable from a snapshot is immutable, so
// all methods are safe from any number of goroutines, and an in-flight
// enumeration is unaffected by updates applied to the engine after the
// snapshot was taken.
type Snapshot struct {
	root    *enumerate.IndexedBox
	gamma   bitset.Set
	emptyOK bool
	mode    enumerate.Mode

	// count is the total derivation count at the root (Section 4
	// multiset remark), folded by the pipeline's counting evaluator at
	// publication; unambiguous records the registration-time
	// tva.Unambiguous verdict that makes it an exact answer count.
	count       *big.Int
	unambiguous bool

	version          uint64
	termHeight       int
	boxesRebuilt     int
	boxesReused      int
	pathCopies       int
	rebalances       int
	translatedStates int
	automatonStates  int

	statsOnce sync.Once
	stats     Stats

	drainOnce  sync.Once
	drainCount int

	// reads points at the owning engine's read-path counters
	// (answers enumerated, parallel drains); nil on zero-value snapshots.
	reads *readCounters
}

// Version returns the publication sequence number of the snapshot
// (monotonically increasing per engine, starting at 1).
func (s *Snapshot) Version() uint64 { return s.version }

// Results enumerates the satisfying assignments of the query on this
// version of the input, without duplicates, with delay O(|S|·poly(|Q|))
// independent of |T| in the default indexed mode. The iteration may be
// abandoned, restarted, and run concurrently with engine updates and
// with other iterations of the same snapshot.
func (s *Snapshot) Results() iter.Seq[tree.Assignment] {
	inner := enumerate.Assignments(s.root, s.gamma, s.emptyOK, s.mode)
	if s.reads == nil {
		return inner
	}
	return func(yield func(tree.Assignment) bool) {
		n := 0
		defer func() { s.noteAnswers(n) }()
		for a := range inner {
			n++
			if !yield(a) {
				return
			}
		}
	}
}

// Ropes is Results without materialization: assignments as shared ropes
// (nil = the empty assignment).
func (s *Snapshot) Ropes() iter.Seq[*enumerate.Rope] {
	return enumerate.Ropes(s.root, s.gamma, s.emptyOK, s.mode)
}

// Count returns the number of elements Results enumerates. When the
// snapshot supports direct access (see DirectAccess) this is an
// O(poly(|Q|)) read of the maintained derivation count — no enumeration
// happens, regardless of the answer-set size; otherwise it falls back
// to draining Results once (cached per snapshot). Counts above MaxInt
// saturate; CountBig is exact.
func (s *Snapshot) Count() int {
	if s.DirectAccess() {
		if !s.count.IsInt64() {
			return math.MaxInt
		}
		c := s.count.Int64()
		if c > math.MaxInt {
			return math.MaxInt
		}
		return int(c)
	}
	return s.drain()
}

// CountBig is Count without the int saturation.
func (s *Snapshot) CountBig() *big.Int {
	if s.DirectAccess() {
		return new(big.Int).Set(s.count)
	}
	return big.NewInt(int64(s.drain()))
}

// drain counts by enumeration, once per snapshot.
func (s *Snapshot) drain() int {
	s.drainOnce.Do(func() {
		for range s.Results() {
			s.drainCount++
		}
	})
	return s.drainCount
}

// Derivations returns the number of circuit derivations of the query on
// this version: each satisfying assignment counted once per automaton
// run witnessing it (the paper's Section 4 multiset semantics, with
// empty-completion runs collapsed by homogenization). It is maintained
// under updates by the pipeline's counting evaluator and read here in
// O(1). For unambiguous automata — reported by DirectAccess — it equals
// the number of satisfying assignments.
func (s *Snapshot) Derivations() *big.Int {
	if s.count == nil {
		return big.NewInt(0) // zero-value snapshots of tests
	}
	return new(big.Int).Set(s.count)
}

// DirectAccess reports whether Count, At and Page take the fast paths
// whose cost is independent of the answer-set size: true when the
// maintained derivation counts are exact ranks for Results' order —
// the query automaton passed the registration-time unambiguity check
// (tva.Unambiguous) in the indexed mode, or the mode is ModeSimple,
// whose enumeration has exactly one element per derivation by
// construction. When false, the same methods stay correct but fall
// back to (partial) enumeration.
func (s *Snapshot) DirectAccess() bool {
	if s.count == nil {
		return false
	}
	return s.mode == enumerate.ModeSimple ||
		(s.mode == enumerate.ModeIndexed && s.unambiguous)
}

// At returns the j-th element (0-based) of Results, in Results' order,
// without enumerating the first j: on direct-access snapshots it
// descends the frozen (box, index, counts) tree in O(log|T|·poly(|Q|))
// — stateless, so "answers 10⁶ to 10⁶+20" costs the same as "answers 0
// to 20" and any number of goroutines may page concurrently. On
// snapshots without direct access (ambiguous automaton, ModeNaive) it
// falls back to enumerating j+1 elements. Returns an error iff j is out
// of range.
func (s *Snapshot) At(j int) (tree.Assignment, error) {
	if s.DirectAccess() {
		a, err := s.atRank(enumerate.NewDescender(), j)
		if err == nil {
			s.noteAnswers(1)
		}
		return a, err
	}
	return s.atByEnumeration(j)
}

// atRank is the direct-access rank read on a caller-provided descender:
// the bulk paths (Page, ParallelAll, Chunks workers) call it in a loop,
// one goroutine-confined descender each, so the descent scratch is paid
// once per worker instead of once per answer. Callers have checked
// DirectAccess.
func (s *Snapshot) atRank(d *enumerate.Descender, j int) (tree.Assignment, error) {
	if j < 0 {
		return nil, fmt.Errorf("engine: rank %d out of range", j)
	}
	rope, err := d.AtInt(s.root, s.gamma, s.emptyOK, s.mode, j)
	switch {
	case err == nil:
		if rope == nil {
			return tree.Assignment{}, nil
		}
		return rope.Materialize(), nil
	case errors.Is(err, enumerate.ErrRankRange):
		return nil, fmt.Errorf("engine: rank %d out of range (count %s)", j, s.count)
	}
	// ErrAmbiguous / ErrNoDirectAccess: defensive fall-through to the
	// enumeration path, which is always correct.
	return s.atByEnumeration(j)
}

// atByEnumeration serves a rank by enumerating j+1 answers — the
// non-direct-access path, and the defensive fallback of atRank.
func (s *Snapshot) atByEnumeration(j int) (tree.Assignment, error) {
	if j < 0 {
		return nil, fmt.Errorf("engine: rank %d out of range", j)
	}
	i := 0
	for a := range s.Results() {
		if i == j {
			return a, nil
		}
		i++
	}
	return nil, fmt.Errorf("engine: rank %d out of range (count %d)", j, i)
}

// Page returns Results elements [offset, offset+limit) in Results'
// order — the stateless pagination primitive: no cursor, no per-client
// enumeration state, and under updates each page is simply served from
// whichever immutable snapshot the caller holds. Short (or empty) pages
// mean the range ran past the end. On direct-access snapshots each page
// costs O(limit·log|T|·poly(|Q|)) independent of offset; otherwise one
// enumeration of offset+limit elements.
func (s *Snapshot) Page(offset, limit int) []tree.Assignment {
	if offset < 0 || limit <= 0 {
		return nil
	}
	if s.DirectAccess() {
		out, _ := s.pageWith(enumerate.NewDescender(), offset, limit)
		s.noteAnswers(len(out))
		return out
	}
	var out []tree.Assignment
	i := 0
	for a := range s.Results() {
		if i >= offset {
			out = append(out, a)
			if len(out) == limit {
				break
			}
		}
		i++
	}
	return out
}

// pageWith is the direct-access page loop on a caller-provided
// descender (see atRank). The error is non-nil only when a rank inside
// the clamped range failed — a count inconsistency, not a short page.
func (s *Snapshot) pageWith(d *enumerate.Descender, offset, limit int) ([]tree.Assignment, error) {
	end := offset + limit
	if c := s.Count(); end > c || end < offset {
		end = c
	}
	if end <= offset {
		return nil, nil
	}
	out := make([]tree.Assignment, 0, end-offset)
	for j := offset; j < end; j++ {
		a, err := s.atRank(d, j)
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
	return out, nil
}

// NonEmpty reports whether at least one satisfying assignment exists; by
// the delay bound it runs in time independent of |T| (indexed mode).
func (s *Snapshot) NonEmpty() bool {
	for range s.Results() {
		return true
	}
	return false
}

// All materializes every result in Results' order. On direct-access
// snapshots it routes through the Page descent — one reusable descender
// for the whole sweep — instead of paying the enumeration iterator's
// rope/resume overhead per answer; otherwise it drains Results.
// ParallelAll is the same sweep fanned out across workers.
func (s *Snapshot) All() []tree.Assignment {
	if s.DirectAccess() {
		n := s.Count()
		if n == 0 {
			return nil
		}
		return s.Page(0, n)
	}
	var out []tree.Assignment
	for a := range s.Results() {
		out = append(out, a)
	}
	return out
}

// Accepting exposes the snapshot's root box together with its accepting
// boxed set and empty-assignment flag, for algebraic evaluators (package
// counting) that walk the frozen circuit directly.
func (s *Snapshot) Accepting() (*circuit.Box, bitset.Set, bool) {
	return s.root.Box, s.gamma, s.emptyOK
}

// Root returns the root of the snapshot's frozen wrapper tree.
func (s *Snapshot) Root() *enumerate.IndexedBox { return s.root }

// Stats reports structure sizes for this version. The circuit walk runs
// once, lazily, on first call (so publishing a snapshot stays O(log n)).
func (s *Snapshot) Stats() Stats {
	s.statsOnce.Do(func() {
		c := &circuit.Circuit{Root: s.root.Box}
		u, x, v := c.CountGates()
		s.stats = Stats{
			TranslatedStates: s.translatedStates,
			AutomatonStates:  s.automatonStates,
			CircuitWidth:     c.Width(),
			Boxes:            c.NumBoxes(),
			UnionGates:       u,
			TimesGates:       x,
			VarGates:         v,
			TermHeight:       s.termHeight,
			BoxesRebuilt:     s.boxesRebuilt,
			BoxesReused:      s.boxesReused,
			PathCopies:       s.pathCopies,
			Rebalances:       s.rebalances,
		}
	})
	return s.stats
}
