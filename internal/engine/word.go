package engine

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/forest"
	"repro/internal/tree"
	"repro/internal/tva"
)

// WordSet is the multi-query engine of Theorem 8.5 over one dynamic
// word: it maintains the satisfying assignments of any number of
// standing word variable automata under letter insertion, deletion and
// replacement, sharing the term work across queries exactly like
// TreeSet.
type WordSet struct {
	Engine
	w *forest.Word
}

// NewWordSet encodes the nonempty word as a balanced term and publishes
// an empty MultiSnapshot. Queries are added with Register.
func NewWordSet(letters []tree.Label) (*WordSet, error) {
	w, err := forest.NewWord(letters)
	if err != nil {
		return nil, err
	}
	s := &WordSet{w: w}
	s.initEngine(w)
	return s, nil
}

// Register adds a standing query (Corollary 8.4 translation, then the
// same pipeline as trees) against the current word version.
func (s *WordSet) Register(query *tva.WVA, opts Options) (QueryID, error) {
	ab, err := forest.TranslateWord(query)
	if err != nil {
		return 0, err
	}
	builder, err := circuit.NewBuilder(ab.Homogenize())
	if err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	return s.register(builder, ab.NumStates, opts), nil
}

// Word returns the current word content as (letter IDs, labels).
// Writer-side view: concurrent readers should work from snapshots.
func (s *WordSet) Word() ([]tree.NodeID, []tree.Label) { return s.w.Letters() }

// IDAt resolves a 0-based position to its stable letter ID in O(log n).
func (s *WordSet) IDAt(i int) (tree.NodeID, error) { return s.w.IDAt(i) }

// Len returns the word length.
func (s *WordSet) Len() int { return s.w.Len() }

// Relabel replaces the letter with the given ID and publishes the
// resulting MultiSnapshot.
func (s *WordSet) Relabel(id tree.NodeID, l tree.Label) (*MultiSnapshot, error) {
	return s.Mutate(func() error { return s.w.Relabel(id, l) })
}

// InsertAfter inserts a letter after the given ID.
func (s *WordSet) InsertAfter(id tree.NodeID, l tree.Label) (tree.NodeID, *MultiSnapshot, error) {
	var v tree.NodeID
	m, err := s.Mutate(func() error {
		var err error
		v, err = s.w.InsertAfter(id, l)
		return err
	})
	return v, m, err
}

// InsertBefore inserts a letter before the given ID (needed to prepend
// at position 0).
func (s *WordSet) InsertBefore(id tree.NodeID, l tree.Label) (tree.NodeID, *MultiSnapshot, error) {
	var v tree.NodeID
	m, err := s.Mutate(func() error {
		var err error
		v, err = s.w.InsertBefore(id, l)
		return err
	})
	return v, m, err
}

// Delete removes a letter (the word must stay nonempty).
func (s *WordSet) Delete(id tree.NodeID) (*MultiSnapshot, error) {
	return s.Mutate(func() error { return s.w.Delete(id) })
}

// MoveRange is the bulk word update sketched in the paper's conclusion:
// it moves the k letters starting at position from so that they follow
// position dest of the remaining word (dest = -1 prepends). Letter IDs
// are preserved and the range travels as ONE shared rope piece
// (TrunkDelta.Moved), so per-query repair is O(log n) regardless of k.
func (s *WordSet) MoveRange(from, k, dest int) (*MultiSnapshot, error) {
	return s.Mutate(func() error { return s.w.MoveRange(from, k, dest) })
}

// InsertRange inserts the labels at position pos (one bulk-built
// balanced piece, one publication), returning the fresh letter IDs.
func (s *WordSet) InsertRange(pos int, labels []tree.Label) ([]tree.NodeID, *MultiSnapshot, error) {
	var ids []tree.NodeID
	m, err := s.Mutate(func() error {
		var err error
		ids, err = s.w.InsertRange(pos, labels)
		return err
	})
	return ids, m, err
}

// Concat appends the labels at the end of the word (forest
// concatenation), returning the fresh letter IDs.
func (s *WordSet) Concat(labels []tree.Label) ([]tree.NodeID, *MultiSnapshot, error) {
	var ids []tree.NodeID
	m, err := s.Mutate(func() error {
		var err error
		ids, err = s.w.Concat(labels)
		return err
	})
	return ids, m, err
}

// DeleteRange removes the k letters from position from; the word must
// stay nonempty.
func (s *WordSet) DeleteRange(from, k int) (*MultiSnapshot, error) {
	return s.Mutate(func() error { return s.w.DeleteRange(from, k) })
}

// ApplyBatch applies the letter updates in order under one writer-lock
// hold and publishes ONE MultiSnapshot for the whole batch (see
// TreeSet.ApplyBatch for the amortization, InvalidNode-sentinel ID and
// error contracts).
func (s *WordSet) ApplyBatch(batch []Update) (*MultiSnapshot, []tree.NodeID, error) {
	ids := make([]tree.NodeID, len(batch))
	for i := range ids {
		ids[i] = tree.InvalidNode
	}
	m, err := s.Mutate(func() error {
		for i, u := range batch {
			var v tree.NodeID
			var err error
			switch u.Op {
			case OpRelabel:
				err = s.w.Relabel(u.Node, u.Label)
			case OpInsertAfter:
				v, err = s.w.InsertAfter(u.Node, u.Label)
			case OpInsertBefore:
				v, err = s.w.InsertBefore(u.Node, u.Label)
			case OpDelete:
				err = s.w.Delete(u.Node)
			case OpMoveRange:
				err = s.w.MoveRange(u.From, u.K, u.To)
			case OpInsertRange:
				_, err = s.w.InsertRange(u.From, u.Labels)
			case OpDeleteRange:
				err = s.w.DeleteRange(u.From, u.K)
			case OpConcat:
				_, err = s.w.Concat(u.Labels)
			default:
				err = fmt.Errorf("engine: update %v is not a word operation", u.Op)
			}
			if err != nil {
				return fmt.Errorf("engine: batch update %d (%v n%d): %w", i, u.Op, u.Node, err)
			}
			if u.Op == OpInsertAfter || u.Op == OpInsertBefore {
				ids[i] = v
			}
		}
		return nil
	})
	return m, ids, err
}

// WordEngine is the single-query shim over WordSet: one standing word
// query, plain Snapshot results.
type WordEngine struct {
	shim
	set *WordSet
}

// NewWord preprocesses the word and the WVA and publishes the first
// snapshot.
func NewWord(letters []tree.Label, query *tva.WVA, opts Options) (*WordEngine, error) {
	s, err := NewWordSet(letters)
	if err != nil {
		return nil, err
	}
	id, err := s.Register(query, opts)
	if err != nil {
		return nil, err
	}
	return &WordEngine{shim: shim{eng: &s.Engine, id: id}, set: s}, nil
}

// Set returns the underlying multi-query engine; further queries
// registered on it share this engine's term and update stream. Do NOT
// unregister this engine's own query (ID) through it: the shim has no
// other query to project and fails fast (panics) on its next use.
func (e *WordEngine) Set() *WordSet { return e.set }

// Word returns the current word content as (letter IDs, labels).
// Writer-side view: concurrent readers should work from snapshots.
func (e *WordEngine) Word() ([]tree.NodeID, []tree.Label) { return e.set.Word() }

// IDAt resolves a 0-based position to its stable letter ID in O(log n).
func (e *WordEngine) IDAt(i int) (tree.NodeID, error) { return e.set.IDAt(i) }

// Len returns the word length.
func (e *WordEngine) Len() int { return e.set.Len() }

// Relabel replaces the letter with the given ID and publishes the
// resulting snapshot.
func (e *WordEngine) Relabel(id tree.NodeID, l tree.Label) (*Snapshot, error) {
	m, err := e.set.Relabel(id, l)
	return e.project(m), err
}

// InsertAfter inserts a letter after the given ID.
func (e *WordEngine) InsertAfter(id tree.NodeID, l tree.Label) (tree.NodeID, *Snapshot, error) {
	v, m, err := e.set.InsertAfter(id, l)
	return v, e.project(m), err
}

// InsertBefore inserts a letter before the given ID.
func (e *WordEngine) InsertBefore(id tree.NodeID, l tree.Label) (tree.NodeID, *Snapshot, error) {
	v, m, err := e.set.InsertBefore(id, l)
	return v, e.project(m), err
}

// Delete removes a letter (the word must stay nonempty).
func (e *WordEngine) Delete(id tree.NodeID) (*Snapshot, error) {
	m, err := e.set.Delete(id)
	return e.project(m), err
}

// MoveRange moves k letters (see WordSet.MoveRange), publishing once.
func (e *WordEngine) MoveRange(from, k, dest int) (*Snapshot, error) {
	m, err := e.set.MoveRange(from, k, dest)
	return e.project(m), err
}

// InsertRange inserts labels at a position (see WordSet.InsertRange).
func (e *WordEngine) InsertRange(pos int, labels []tree.Label) ([]tree.NodeID, *Snapshot, error) {
	ids, m, err := e.set.InsertRange(pos, labels)
	return ids, e.project(m), err
}

// Concat appends labels at the end (see WordSet.Concat).
func (e *WordEngine) Concat(labels []tree.Label) ([]tree.NodeID, *Snapshot, error) {
	ids, m, err := e.set.Concat(labels)
	return ids, e.project(m), err
}

// DeleteRange removes k letters from a position (see
// WordSet.DeleteRange).
func (e *WordEngine) DeleteRange(from, k int) (*Snapshot, error) {
	m, err := e.set.DeleteRange(from, k)
	return e.project(m), err
}

// ApplyBatch applies the letter updates under one lock hold, publishing
// once (see WordSet.ApplyBatch).
func (e *WordEngine) ApplyBatch(batch []Update) (*Snapshot, []tree.NodeID, error) {
	m, ids, err := e.set.ApplyBatch(batch)
	return e.project(m), ids, err
}
