package engine

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/forest"
	"repro/internal/tree"
	"repro/internal/tva"
)

// WordEngine is the snapshot-isolated engine of Theorem 8.5: it
// maintains the satisfying assignments of a word variable automaton on a
// dynamic word under letter insertion, deletion and replacement.
type WordEngine struct {
	Engine
	w *forest.Word
}

// NewWord preprocesses the word and the WVA (Corollary 8.4 translation,
// then the same pipeline as trees) and publishes the first snapshot.
func NewWord(letters []tree.Label, query *tva.WVA, opts Options) (*WordEngine, error) {
	ab, err := forest.TranslateWord(query)
	if err != nil {
		return nil, err
	}
	translated := ab.NumStates
	hb := ab.Homogenize()
	builder, err := circuit.NewBuilder(hb)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	w, err := forest.NewWord(letters)
	if err != nil {
		return nil, err
	}
	e := &WordEngine{w: w}
	e.initEngine(w, builder, translated, opts)
	return e, nil
}

// Word returns the current word content as (letter IDs, labels).
// Writer-side view: concurrent readers should work from snapshots.
func (e *WordEngine) Word() ([]tree.NodeID, []tree.Label) { return e.w.Letters() }

// IDAt resolves a 0-based position to its stable letter ID in O(log n).
func (e *WordEngine) IDAt(i int) (tree.NodeID, error) { return e.w.IDAt(i) }

// Len returns the word length.
func (e *WordEngine) Len() int { return e.w.Len() }

// Relabel replaces the letter with the given ID and publishes the
// resulting snapshot.
func (e *WordEngine) Relabel(id tree.NodeID, l tree.Label) (*Snapshot, error) {
	return e.Mutate(func() error { return e.w.Relabel(id, l) })
}

// InsertAfter inserts a letter after the given ID.
func (e *WordEngine) InsertAfter(id tree.NodeID, l tree.Label) (tree.NodeID, *Snapshot, error) {
	var v tree.NodeID
	s, err := e.Mutate(func() error {
		var err error
		v, err = e.w.InsertAfter(id, l)
		return err
	})
	return v, s, err
}

// InsertBefore inserts a letter before the given ID.
func (e *WordEngine) InsertBefore(id tree.NodeID, l tree.Label) (tree.NodeID, *Snapshot, error) {
	var v tree.NodeID
	s, err := e.Mutate(func() error {
		var err error
		v, err = e.w.InsertBefore(id, l)
		return err
	})
	return v, s, err
}

// Delete removes a letter (the word must stay nonempty).
func (e *WordEngine) Delete(id tree.NodeID) (*Snapshot, error) {
	return e.Mutate(func() error { return e.w.Delete(id) })
}

// MoveRange is the bulk word update sketched in the paper's conclusion:
// it moves the k letters starting at position from so that they follow
// position dest of the remaining word (dest = -1 prepends). Letter IDs
// are preserved. The whole move publishes ONE snapshot: the O(k·log n)
// box repair is amortized over a single Drain, the same batching as
// ApplyBatch.
func (e *WordEngine) MoveRange(from, k, dest int) (*Snapshot, error) {
	return e.Mutate(func() error { return e.w.MoveRange(from, k, dest) })
}

// ApplyBatch applies the letter updates in order under one writer-lock
// hold and publishes ONE snapshot for the whole batch (see
// TreeEngine.ApplyBatch for the amortization, -1-sentinel ID and error
// contracts).
func (e *WordEngine) ApplyBatch(batch []Update) (*Snapshot, []tree.NodeID, error) {
	ids := make([]tree.NodeID, len(batch))
	for i := range ids {
		ids[i] = -1
	}
	s, err := e.Mutate(func() error {
		for i, u := range batch {
			var v tree.NodeID
			var err error
			switch u.Op {
			case OpRelabel:
				err = e.w.Relabel(u.Node, u.Label)
			case OpInsertAfter:
				v, err = e.w.InsertAfter(u.Node, u.Label)
			case OpInsertBefore:
				v, err = e.w.InsertBefore(u.Node, u.Label)
			case OpDelete:
				err = e.w.Delete(u.Node)
			default:
				err = fmt.Errorf("engine: update %v is not a word operation", u.Op)
			}
			if err != nil {
				return fmt.Errorf("engine: batch update %d (%v n%d): %w", i, u.Op, u.Node, err)
			}
			if u.Op == OpInsertAfter || u.Op == OpInsertBefore {
				ids[i] = v
			}
		}
		return nil
	})
	return s, ids, err
}
