package engine

import (
	"iter"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/enumerate"
	"repro/internal/tree"
)

// This file is the rank-partitioned parallel bulk-enumeration layer:
// because direct access is STATELESS — Snapshot.At(j) reaches any rank
// by count-guided descent with no shared cursor — bulk materialization
// is embarrassingly parallel: split [0, Count()) into per-worker rank
// ranges and drain each range concurrently, one enumerate.Descender
// (goroutine-confined descent scratch) per worker. ParallelAll is the
// scatter into a preallocated slice; Chunks is the order-preserving
// streaming variant (scatter over chunk ranks, bounded-channel gather
// with a reorder buffer). Snapshots without direct access (ambiguous
// automata, ModeNaive) take a sharded-drain fallback: every worker runs
// its own rope enumeration — snapshots are immutable, so concurrent
// iterations are free — and materializes only the ranks of its shard,
// parallelizing the materialization cost even when ranks cannot be
// jumped to.

// readCounters aggregates read-path work across every snapshot an
// engine publishes. Plain atomics: bulk drains bump them once per
// call, not per answer, so contention is negligible.
type readCounters struct {
	// answersEnumerated counts assignments produced by the snapshot read
	// APIs — bulk drains, pages, ranked access, and the enumeration
	// fallbacks behind them. It is a work counter, not a delivery
	// counter: a defensive fallback that enumerates i answers to serve
	// one rank counts i.
	answersEnumerated atomic.Int64
	// parallelDrains counts ParallelAll / Chunks invocations that
	// actually fanned out (more than one worker engaged).
	parallelDrains atomic.Int64
}

// noteAnswers records n produced answers; snapshots not published by an
// engine (zero values in tests) have no counter and skip.
func (s *Snapshot) noteAnswers(n int) {
	if s.reads != nil && n > 0 {
		s.reads.answersEnumerated.Add(int64(n))
	}
}

// noteParallelDrain records one fanned-out bulk drain.
func (s *Snapshot) noteParallelDrain() {
	if s.reads != nil {
		s.reads.parallelDrains.Add(1)
	}
}

// ParallelAll materializes every result in Results' order across the
// given number of workers (<= 0 means GOMAXPROCS). On direct-access
// snapshots worker k drains the rank range [k·n/W, (k+1)·n/W) by
// count-guided descent with its own reusable scratch, writing into
// disjoint regions of one preallocated slice — no locks, no channels,
// wall-clock n/W·O(log|T|·poly|Q|) on W free cores. Other snapshots
// take the sharded-drain fallback (see shardedAll). The result is
// exactly All(): same answers, same order.
func (s *Snapshot) ParallelAll(workers int) []tree.Assignment {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !s.DirectAccess() {
		return s.shardedAll(workers)
	}
	n := s.Count()
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return s.All()
	}
	out := make([]tree.Assignment, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo, hi := k*n/workers, (k+1)*n/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := enumerate.NewDescender()
			for j := lo; j < hi; j++ {
				a, err := s.atRank(d, j)
				if err != nil {
					failed.Store(true)
					return
				}
				out[j] = a
			}
		}()
	}
	wg.Wait()
	s.noteParallelDrain()
	if failed.Load() {
		// A worker hit a rank the counts cannot serve (count
		// inconsistency surfaced mid-drain). The sharded drain never
		// trusts ranks, so it is the correct recovery.
		return s.shardedAll(workers)
	}
	s.noteAnswers(n)
	return out
}

// shardedAll is the bulk-materialization fallback for snapshots without
// direct access: W workers each run an independent rope enumeration of
// the full answer set — safe and contention-free, snapshots are frozen
// — and worker k materializes exactly the ranks ≡ k (mod W) into its
// disjoint slots of the shared output. Every worker pays the O(delay)
// iteration cost, but materialization (the per-answer copy, the
// dominant cost for long assignments) splits W ways.
func (s *Snapshot) shardedAll(workers int) []tree.Assignment {
	n := s.drain()
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return s.All()
	}
	out := make([]tree.Assignment, n)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			j := 0
			for rope := range s.Ropes() {
				if j%workers == shard {
					if rope == nil {
						out[j] = tree.Assignment{}
					} else {
						out[j] = rope.Materialize()
					}
				}
				j++
				if j > n {
					return // snapshot invariant violated; stay in bounds
				}
			}
		}(k)
	}
	wg.Wait()
	s.noteParallelDrain()
	s.noteAnswers(n)
	return out
}

// chunkRes is one computed chunk in flight from a worker to the
// reassembling consumer.
type chunkRes struct {
	idx  int
	data []tree.Assignment
}

// Chunks streams Results in order as []tree.Assignment chunks of the
// given size (<= 0 means 512), computed by the given number of workers
// (<= 0 means GOMAXPROCS). It is the streaming complement of
// ParallelAll: chunks are produced out of order by the workers —
// direct-access snapshots claim chunk indices dynamically and serve
// each by count-guided descent; others shard chunks over independent
// rope drains (each worker materializes only its own chunks) — and
// reassembled in order by a bounded gather: a channel of capacity ~2W
// plus a reorder buffer, so an abandoned iteration stops the workers
// and total buffering stays O(W·chunkSize) no matter how large the
// answer set is. Concatenating the chunks yields exactly All().
func (s *Snapshot) Chunks(workers, chunkSize int) iter.Seq[[]tree.Assignment] {
	return func(yield func([]tree.Assignment) bool) {
		if chunkSize <= 0 {
			chunkSize = 512
		}
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		direct := s.DirectAccess()
		var n int
		if direct {
			n = s.Count()
		} else {
			n = s.drain()
		}
		if n == 0 {
			return
		}
		chunks := (n + chunkSize - 1) / chunkSize
		if workers > chunks {
			workers = chunks
		}
		if workers == 1 {
			// One worker: no gather needed, serve chunks in order off the
			// consumer's own goroutine.
			s.sequentialChunks(n, chunkSize, yield)
			return
		}

		out := make(chan chunkRes, 2*workers)
		done := make(chan struct{})
		var next atomic.Int64 // dynamic chunk claiming (direct path)
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				if direct {
					s.chunkWorkerDirect(n, chunkSize, chunks, &next, out, done)
				} else {
					s.chunkWorkerSharded(n, chunkSize, chunks, shard, workers, out, done)
				}
			}(k)
		}
		go func() { wg.Wait(); close(out) }()
		defer close(done)

		s.noteParallelDrain()
		pending := make(map[int][]tree.Assignment, workers)
		nextYield := 0
		for r := range out {
			pending[r.idx] = r.data
			for {
				data, ok := pending[nextYield]
				if !ok {
					break
				}
				delete(pending, nextYield)
				nextYield++
				s.noteAnswers(len(data))
				if !yield(data) {
					return
				}
			}
		}
	}
}

// sequentialChunks serves the single-worker (or single-chunk) case of
// Chunks with no goroutines: in-order pages on direct-access snapshots,
// a straight batched drain otherwise.
func (s *Snapshot) sequentialChunks(n, chunkSize int, yield func([]tree.Assignment) bool) {
	if s.DirectAccess() {
		d := enumerate.NewDescender()
		for lo := 0; lo < n; lo += chunkSize {
			hi := min(lo+chunkSize, n)
			data, err := s.pageWith(d, lo, hi-lo)
			if err != nil || len(data) == 0 {
				return
			}
			s.noteAnswers(len(data))
			if !yield(data) {
				return
			}
		}
		return
	}
	data := make([]tree.Assignment, 0, chunkSize)
	for a := range s.Results() {
		data = append(data, a)
		if len(data) == chunkSize {
			if !yield(data) {
				return
			}
			data = make([]tree.Assignment, 0, chunkSize)
		}
	}
	if len(data) > 0 {
		yield(data)
	}
}

// chunkWorkerDirect is one scatter worker of the direct-access Chunks
// path: claim the next unserved chunk index, materialize its rank range
// by count-guided descent, hand it to the gather channel. Dynamic
// claiming load-balances automatically when chunks cost unevenly.
func (s *Snapshot) chunkWorkerDirect(n, chunkSize, chunks int, next *atomic.Int64, out chan<- chunkRes, done <-chan struct{}) {
	d := enumerate.NewDescender()
	for {
		c := int(next.Add(1)) - 1
		if c >= chunks {
			return
		}
		lo := c * chunkSize
		hi := min(lo+chunkSize, n)
		data := make([]tree.Assignment, 0, hi-lo)
		for j := lo; j < hi; j++ {
			a, err := s.atRank(d, j)
			if err != nil {
				return // count inconsistency; chunk withheld, stream ends short
			}
			data = append(data, a)
		}
		select {
		case out <- chunkRes{idx: c, data: data}:
		case <-done:
			return
		}
	}
}

// chunkWorkerSharded is one scatter worker of the fallback Chunks path:
// an independent rope drain that materializes only the chunks
// preassigned to this shard (chunk index ≡ shard mod workers). Chunk
// indices leave each worker in increasing order, so the consumer's
// reorder buffer stays bounded by the channel capacity plus one chunk
// per worker.
func (s *Snapshot) chunkWorkerSharded(n, chunkSize, chunks, shard, workers int, out chan<- chunkRes, done <-chan struct{}) {
	var data []tree.Assignment
	j := 0
	for rope := range s.Ropes() {
		if j >= n {
			return // snapshot invariant violated; stay in bounds
		}
		c := j / chunkSize
		if c%workers == shard {
			if data == nil {
				lo := c * chunkSize
				hi := min(lo+chunkSize, n)
				data = make([]tree.Assignment, 0, hi-lo)
			}
			if rope == nil {
				data = append(data, tree.Assignment{})
			} else {
				data = append(data, rope.Materialize())
			}
			if cap(data) == len(data) {
				select {
				case out <- chunkRes{idx: c, data: data}:
				case <-done:
					return
				}
				data = nil
			}
		}
		j++
	}
}
