package engine_test

import (
	"fmt"
	"iter"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mso"
	"repro/internal/paths"
	"repro/internal/spanner"
	"repro/internal/tree"
	"repro/internal/tva"
)

// This file is the differential oracle of the direct-access subsystem:
// edit scripts — the seeded corpus under testdata/differential plus
// freshly drawn random ones — run through the snapshot engine
// (TreeSet/WordSet) while an independent rebuild-from-scratch oracle
// replays the same edits, and after every batch the engine's Results,
// Count, and At(j) are checked against it. Scripts are plain text so a
// failing random script can be pasted into the corpus verbatim (the
// test prints it in corpus format on failure).
//
// Script format, one directive per line ('#' comments):
//
//	tree (a (b) (a (b)))          // or:  word a b a b
//	query select:b                // select:<l> | ancestor | childpair |
//	                              // path:<expr> | span (words)
//	batch relabel 0 b; insert 1 a // tree ops: relabel/insert/insertR/delete
//	batch insertA 0 b; delete 2   // word ops: relabel/insertA/insertB/delete
//	batch deleteSub 3             // structural tree ops: deleteSub <id>,
//	batch moveSub 2 5             //   moveSub/moveSubR <id> <dest>,
//	batch insertSub 1 (a (b))     //   insertSub/insertSubR <id> <sexpr>
//	batch moveRange 1 2 3         // word range ops: moveRange <from> <k> <to>,
//	batch insertRange 0 a b       //   insertRange <pos> <labels...>,
//	batch deleteRange 2 2         //   deleteRange <from> <k>, concat <labels...>
//
// After every batch the maintained term's height budget is re-verified
// on every node (Engine.CheckBalanceDeep), so the corpus doubles as the
// balance-invariant oracle for structural edits.

// resultKeys drains an enumeration into sorted assignment keys.
func resultKeys(rs iter.Seq[tree.Assignment]) []string {
	var out []string
	for a := range rs {
		out = append(out, a.Key())
	}
	slices.Sort(out)
	return out
}

// diffScript is one parsed differential script.
type diffScript struct {
	isWord  bool
	tree    string
	letters []tree.Label
	query   string
	batches [][]string // raw edit strings per batch
}

func (s *diffScript) String() string {
	var b strings.Builder
	if s.isWord {
		parts := make([]string, len(s.letters))
		for i, l := range s.letters {
			parts[i] = string(l)
		}
		fmt.Fprintf(&b, "word %s\n", strings.Join(parts, " "))
	} else {
		fmt.Fprintf(&b, "tree %s\n", s.tree)
	}
	fmt.Fprintf(&b, "query %s\n", s.query)
	for _, batch := range s.batches {
		fmt.Fprintf(&b, "batch %s\n", strings.Join(batch, "; "))
	}
	return b.String()
}

func parseDiffScript(text string) (*diffScript, error) {
	s := &diffScript{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		directive, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch directive {
		case "tree":
			s.tree = rest
		case "word":
			s.isWord = true
			for _, f := range strings.Fields(rest) {
				s.letters = append(s.letters, tree.Label(f))
			}
		case "query":
			s.query = rest
		case "batch":
			var batch []string
			for _, ed := range strings.Split(rest, ";") {
				if ed = strings.TrimSpace(ed); ed != "" {
					batch = append(batch, ed)
				}
			}
			s.batches = append(s.batches, batch)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", ln+1, directive)
		}
	}
	if (s.tree == "") == (len(s.letters) == 0) {
		return nil, fmt.Errorf("script needs exactly one of tree/word")
	}
	if s.query == "" {
		return nil, fmt.Errorf("script needs a query")
	}
	return s, nil
}

// parseDiffEdit turns one edit directive into an Update: leaf ops
// ("relabel 3 b", word insertA/insertB), structural tree ops
// (deleteSub/moveSub/moveSubR/insertSub/insertSubR) and word range ops
// (moveRange/insertRange/deleteRange/concat, positional).
func parseDiffEdit(ed string) (engine.Update, error) {
	f := strings.Fields(ed)
	if len(f) < 2 {
		return engine.Update{}, fmt.Errorf("malformed edit %q", ed)
	}
	ints := func(args ...string) ([]int, error) {
		out := make([]int, len(args))
		for i, a := range args {
			v, err := strconv.Atoi(a)
			if err != nil {
				return nil, fmt.Errorf("edit %q: %w", ed, err)
			}
			out[i] = v
		}
		return out, nil
	}
	labels := func(args []string) []tree.Label {
		out := make([]tree.Label, len(args))
		for i, a := range args {
			out[i] = tree.Label(a)
		}
		return out
	}
	// Word range ops take positions, not node IDs.
	switch f[0] {
	case "moveRange":
		if len(f) != 4 {
			return engine.Update{}, fmt.Errorf("edit %q needs from k to", ed)
		}
		v, err := ints(f[1], f[2], f[3])
		if err != nil {
			return engine.Update{}, err
		}
		return engine.Update{Op: engine.OpMoveRange, From: v[0], K: v[1], To: v[2]}, nil
	case "insertRange":
		if len(f) < 3 {
			return engine.Update{}, fmt.Errorf("edit %q needs pos labels", ed)
		}
		v, err := ints(f[1])
		if err != nil {
			return engine.Update{}, err
		}
		return engine.Update{Op: engine.OpInsertRange, From: v[0], Labels: labels(f[2:])}, nil
	case "deleteRange":
		if len(f) != 3 {
			return engine.Update{}, fmt.Errorf("edit %q needs from k", ed)
		}
		v, err := ints(f[1], f[2])
		if err != nil {
			return engine.Update{}, err
		}
		return engine.Update{Op: engine.OpDeleteRange, From: v[0], K: v[1]}, nil
	case "concat":
		return engine.Update{Op: engine.OpConcat, Labels: labels(f[1:])}, nil
	}
	id, err := strconv.Atoi(f[1])
	if err != nil {
		return engine.Update{}, err
	}
	u := engine.Update{Node: tree.NodeID(id)}
	switch f[0] {
	case "deleteSub":
		u.Op = engine.OpDeleteSubtree
		return u, nil
	case "moveSub", "moveSubR":
		if len(f) != 3 {
			return engine.Update{}, fmt.Errorf("edit %q needs id dest", ed)
		}
		v, err := ints(f[2])
		if err != nil {
			return engine.Update{}, err
		}
		u.Op = engine.OpMoveSubtreeFirstChild
		if f[0] == "moveSubR" {
			u.Op = engine.OpMoveSubtreeRightSibling
		}
		u.Dest = tree.NodeID(v[0])
		return u, nil
	case "insertSub", "insertSubR":
		frag, err := tree.ParseUnranked(strings.Join(f[2:], " "))
		if err != nil {
			return engine.Update{}, fmt.Errorf("edit %q fragment: %w", ed, err)
		}
		u.Op = engine.OpInsertSubtreeFirstChild
		if f[0] == "insertSubR" {
			u.Op = engine.OpInsertSubtreeRightSibling
		}
		u.Fragment = frag
		return u, nil
	}
	ops := map[string]engine.UpdateOp{
		"relabel": engine.OpRelabel, "insert": engine.OpInsertFirstChild, "insertR": engine.OpInsertRightSibling,
		"insertA": engine.OpInsertAfter, "insertB": engine.OpInsertBefore, "delete": engine.OpDelete,
	}
	op, ok := ops[f[0]]
	if !ok {
		return engine.Update{}, fmt.Errorf("unknown edit op %q", f[0])
	}
	u.Op = op
	if op != engine.OpDelete {
		if len(f) != 3 {
			return engine.Update{}, fmt.Errorf("edit %q needs a label", ed)
		}
		u.Label = tree.Label(f[2])
	}
	return u, nil
}

func diffTreeQuery(spec string) (*tva.Unranked, error) {
	alpha := []tree.Label{"a", "b", "c"}
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "select":
		return tva.SelectLabel(alpha, tree.Label(arg), 0), nil
	case "ancestor":
		return tva.MarkedAncestor("a", "b", "c", 0), nil
	case "childpair":
		return mso.CompileFO(mso.Child{X: 0, Y: 1}, alpha, 0, 1)
	case "path":
		return paths.MustCompile(arg, alpha, 0), nil
	}
	return nil, fmt.Errorf("unknown tree query %q", spec)
}

func diffWordQuery(spec string) (*tva.WVA, error) {
	if spec != "span" {
		return nil, fmt.Errorf("unknown word query %q", spec)
	}
	return spanner.CompileWVA(
		spanner.Contains(spanner.Cat(
			spanner.Lit{Label: "a"},
			spanner.Capture{Var: 0, Inner: spanner.Plus{Inner: spanner.Lit{Label: "b"}}})),
		[]tree.Label{"a", "b", "c"})
}

// runDiffScript replays one script and fails the test on any divergence
// between the engine and the rebuild oracle, or between At(j) and the
// engine's own enumeration order.
func runDiffScript(t *testing.T, s *diffScript) {
	t.Helper()
	if s.isWord {
		runDiffWord(t, s)
		return
	}
	q, err := diffTreeQuery(s.query)
	if err != nil {
		t.Fatalf("script query: %v\nscript:\n%s", err, s)
	}
	ut, err := tree.ParseUnranked(s.tree)
	if err != nil {
		t.Fatalf("script tree: %v\nscript:\n%s", err, s)
	}
	oracle, err := baseline.NewRebuildEnumerator(ut.Clone(), q, core.Options{})
	if err != nil {
		t.Fatalf("oracle: %v\nscript:\n%s", err, s)
	}
	e, err := engine.NewTree(ut, q, engine.Options{})
	if err != nil {
		t.Fatalf("engine: %v\nscript:\n%s", err, s)
	}
	checkAgainstOracle(t, s, 0, e.Snapshot(), resultKeys(oracle.Results()))
	for bi, raw := range s.batches {
		batch := make([]engine.Update, 0, len(raw))
		for _, ed := range raw {
			u, err := parseDiffEdit(ed)
			if err != nil {
				t.Fatalf("%v\nscript:\n%s", err, s)
			}
			batch = append(batch, u)
		}
		snap, _, err := e.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("batch %d: %v\nscript:\n%s", bi, err, s)
		}
		if err := e.Set().CheckBalanceDeep(); err != nil {
			t.Fatalf("batch %d: height budget violated: %v\nscript:\n%s", bi, err, s)
		}
		for _, u := range batch {
			if err := applyOracleEdit(oracle, u); err != nil {
				t.Fatalf("oracle batch %d: %v\nscript:\n%s", bi, err, s)
			}
		}
		checkAgainstOracle(t, s, bi+1, snap, resultKeys(oracle.Results()))
	}
}

func applyOracleEdit(o *baseline.RebuildEnumerator, u engine.Update) error {
	switch u.Op {
	case engine.OpRelabel:
		return o.Relabel(u.Node, u.Label)
	case engine.OpInsertFirstChild:
		_, err := o.InsertFirstChild(u.Node, u.Label)
		return err
	case engine.OpInsertRightSibling:
		_, err := o.InsertRightSibling(u.Node, u.Label)
		return err
	case engine.OpDelete:
		return o.Delete(u.Node)
	case engine.OpDeleteSubtree:
		return o.DeleteSubtree(u.Node)
	case engine.OpMoveSubtreeFirstChild:
		return o.MoveSubtreeFirstChild(u.Node, u.Dest)
	case engine.OpMoveSubtreeRightSibling:
		return o.MoveSubtreeRightSibling(u.Node, u.Dest)
	case engine.OpInsertSubtreeFirstChild:
		_, err := o.InsertSubtreeFirstChild(u.Node, u.Fragment)
		return err
	case engine.OpInsertSubtreeRightSibling:
		_, err := o.InsertSubtreeRightSibling(u.Node, u.Fragment)
		return err
	}
	return fmt.Errorf("bad oracle op %v", u.Op)
}

// checkAgainstOracle compares one snapshot with the oracle's sorted
// result keys and checks At(j) self-consistency on every rank.
func checkAgainstOracle(t *testing.T, s *diffScript, step int, snap *engine.Snapshot, want []string) {
	t.Helper()
	var drained []tree.Assignment
	for a := range snap.Results() {
		drained = append(drained, a)
	}
	got := make([]string, len(drained))
	for i, a := range drained {
		got[i] = a.Key()
	}
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatalf("step %d: results diverge\nengine: %v\noracle: %v\nscript:\n%s", step, got, want, s)
	}
	if c := snap.Count(); c != len(want) {
		t.Fatalf("step %d: Count = %d, oracle %d (direct=%v)\nscript:\n%s",
			step, c, len(want), snap.DirectAccess(), s)
	}
	for j := range drained {
		a, err := snap.At(j)
		if err != nil {
			t.Fatalf("step %d: At(%d): %v\nscript:\n%s", step, j, err, s)
		}
		if a.Key() != drained[j].Key() {
			t.Fatalf("step %d: At(%d) = %v, Results[%d] = %v\nscript:\n%s",
				step, j, a, j, drained[j], s)
		}
	}
	if _, err := snap.At(len(drained)); err == nil {
		t.Fatalf("step %d: At past end succeeded\nscript:\n%s", step, s)
	}
	// Page windows must agree with the enumeration order, including a
	// window running past the end (short page, never an error).
	n := len(drained)
	for _, win := range [][2]int{{0, n + 1}, {n / 3, 2}, {n, 3}} {
		off, lim := win[0], win[1]
		if lim <= 0 {
			continue
		}
		page := snap.Page(off, lim)
		end := min(off+lim, n)
		if len(page) != end-off {
			t.Fatalf("step %d: Page(%d,%d) returned %d answers, want %d\nscript:\n%s",
				step, off, lim, len(page), end-off, s)
		}
		for i, a := range page {
			if a.Key() != drained[off+i].Key() {
				t.Fatalf("step %d: Page(%d,%d)[%d] = %v, Results[%d] = %v\nscript:\n%s",
					step, off, lim, i, a, off+i, drained[off+i], s)
			}
		}
	}
}

func runDiffWord(t *testing.T, s *diffScript) {
	t.Helper()
	q, err := diffWordQuery(s.query)
	if err != nil {
		t.Fatalf("script query: %v\nscript:\n%s", err, s)
	}
	e, err := engine.NewWord(s.letters, q, engine.Options{})
	if err != nil {
		t.Fatalf("engine: %v\nscript:\n%s", err, s)
	}
	// The rebuilt oracle numbers letters positionally while the engine
	// keeps stable letter IDs: map the oracle's positions onto the
	// engine's current IDs before comparing.
	oracleKeys := func() []string {
		ids, labels := e.Word()
		o, err := core.NewWordEnumerator(labels, q, core.Options{})
		if err != nil {
			t.Fatalf("oracle rebuild: %v\nscript:\n%s", err, s)
		}
		var keys []string
		for a := range o.Results() {
			mapped := make(tree.Assignment, len(a))
			for i, sg := range a {
				mapped[i] = tree.Singleton{Var: sg.Var, Node: ids[sg.Node]}
			}
			keys = append(keys, mapped.Normalize().Key())
		}
		slices.Sort(keys)
		return keys
	}
	checkAgainstOracle(t, s, 0, e.Snapshot(), oracleKeys())
	for bi, raw := range s.batches {
		batch := make([]engine.Update, 0, len(raw))
		for _, ed := range raw {
			u, err := parseDiffEdit(ed)
			if err != nil {
				t.Fatalf("%v\nscript:\n%s", err, s)
			}
			batch = append(batch, u)
		}
		snap, _, err := e.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("batch %d: %v\nscript:\n%s", bi, err, s)
		}
		if err := e.Set().CheckBalanceDeep(); err != nil {
			t.Fatalf("batch %d: height budget violated: %v\nscript:\n%s", bi, err, s)
		}
		checkAgainstOracle(t, s, bi+1, snap, oracleKeys())
	}
}

// TestDifferentialOracleCorpus replays the committed seed corpus: the
// smoke half of the oracle, fast enough for every CI run.
func TestDifferentialOracleCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "differential", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus scripts found")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			s, err := parseDiffScript(string(data))
			if err != nil {
				t.Fatal(err)
			}
			runDiffScript(t, s)
		})
	}
}

// TestDifferentialOracleRandom draws random edit scripts — trees and
// words, all query kinds including the ambiguous path query — and runs
// them through the oracle. A failure prints the script in corpus
// format, ready to be committed under testdata/differential.
func TestDifferentialOracleRandom(t *testing.T) {
	queries := []string{"select:b", "ancestor", "childpair", "path://a//b"}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		s := randomDiffScript(rng, queries[seed%int64(len(queries))], false, false)
		t.Run(fmt.Sprintf("tree%d", seed), func(t *testing.T) { runDiffScript(t, s) })
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		s := randomDiffScript(rng, "span", true, false)
		t.Run(fmt.Sprintf("word%d", seed), func(t *testing.T) { runDiffScript(t, s) })
	}
}

// TestDifferentialOracleStructural is the structural half of the random
// oracle: weighted scripts where roughly half the edits are subtree
// grafts, moves and deletes (trees) or range moves, inserts, deletes and
// concats (words), against ambiguous and unambiguous automata. The
// height budget is invariant-checked after every batch (runDiffScript).
func TestDifferentialOracleStructural(t *testing.T) {
	queries := []string{"select:b", "ancestor", "childpair", "path://a//b"}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		s := randomDiffScript(rng, queries[seed%int64(len(queries))], false, true)
		t.Run(fmt.Sprintf("tree%d", seed), func(t *testing.T) { runDiffScript(t, s) })
	}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		s := randomDiffScript(rng, "span", true, true)
		t.Run(fmt.Sprintf("word%d", seed), func(t *testing.T) { runDiffScript(t, s) })
	}
}

// randomDiffScript builds a random script by simulating the document so
// every generated edit is valid when replayed. With structural set, the
// draw is weighted half-and-half between leaf and structural edits —
// the fix for the old relabel-dominated scripts, which structurally
// exercised nothing but single-leaf splices.
func randomDiffScript(rng *rand.Rand, query string, isWord, structural bool) *diffScript {
	labels := []string{"a", "b", "c"}
	pick := func() string { return labels[rng.Intn(len(labels))] }
	kinds := 4
	if structural {
		kinds = 8
	}
	s := &diffScript{isWord: isWord, query: query}
	if isWord {
		n := 5 + rng.Intn(10)
		sim := make([]int, n) // letter IDs
		for i := range sim {
			s.letters = append(s.letters, tree.Label(pick()))
			sim[i] = i
		}
		next := n
		for b := 0; b < 6; b++ {
			var batch []string
			for k := 0; k < 1+rng.Intn(3); k++ {
				i := rng.Intn(len(sim))
				id := sim[i]
				switch rng.Intn(kinds) {
				case 0:
					batch = append(batch, fmt.Sprintf("relabel %d %s", id, pick()))
				case 1:
					batch = append(batch, fmt.Sprintf("insertA %d %s", id, pick()))
					sim = append(sim[:i+1], append([]int{next}, sim[i+1:]...)...)
					next++
				case 2:
					batch = append(batch, fmt.Sprintf("insertB %d %s", id, pick()))
					sim = append(sim[:i], append([]int{next}, sim[i:]...)...)
					next++
				case 3:
					if len(sim) > 1 {
						batch = append(batch, fmt.Sprintf("delete %d", id))
						sim = append(sim[:i], sim[i+1:]...)
					}
				case 4: // moveRange
					from := rng.Intn(len(sim))
					k := 1 + rng.Intn(len(sim)-from)
					rest := len(sim) - k
					to := rng.Intn(rest+1) - 1
					batch = append(batch, fmt.Sprintf("moveRange %d %d %d", from, k, to))
					block := slices.Clone(sim[from : from+k])
					remain := append(slices.Clone(sim[:from]), sim[from+k:]...)
					sim = slices.Concat(remain[:to+1], block, remain[to+1:])
				case 5: // insertRange
					pos := rng.Intn(len(sim) + 1)
					m := 1 + rng.Intn(3)
					parts := make([]string, m)
					fresh := make([]int, m)
					for j := 0; j < m; j++ {
						parts[j] = pick()
						fresh[j] = next
						next++
					}
					batch = append(batch, fmt.Sprintf("insertRange %d %s", pos, strings.Join(parts, " ")))
					sim = slices.Concat(sim[:pos:pos], fresh, sim[pos:])
				case 6: // deleteRange (word must stay nonempty)
					if len(sim) < 2 {
						continue
					}
					from := rng.Intn(len(sim) - 1)
					k := 1 + rng.Intn(min(len(sim)-from, len(sim)-1))
					batch = append(batch, fmt.Sprintf("deleteRange %d %d", from, k))
					sim = slices.Concat(sim[:from:from], sim[from+k:])
				default: // concat
					m := 1 + rng.Intn(3)
					parts := make([]string, m)
					for j := 0; j < m; j++ {
						parts[j] = pick()
						sim = append(sim, next)
						next++
					}
					batch = append(batch, "concat "+strings.Join(parts, " "))
				}
			}
			if len(batch) > 0 {
				s.batches = append(s.batches, batch)
			}
		}
		return s
	}
	// Serialize and reparse so the simulated node IDs match the IDs the
	// replay will assign (ParseUnranked numbers nodes in preorder).
	s.tree = tva.RandomUnrankedTree(rng, 6+rng.Intn(12), []tree.Label{"a", "b", "c"}).String()
	ut, err := tree.ParseUnranked(s.tree)
	if err != nil {
		panic(err)
	}
	for b := 0; b < 6; b++ {
		var batch []string
		for k := 0; k < 1+rng.Intn(3); k++ {
			nodes := ut.Nodes()
			nd := nodes[rng.Intn(len(nodes))]
			switch rng.Intn(kinds) {
			case 0:
				l := pick()
				batch = append(batch, fmt.Sprintf("relabel %d %s", nd.ID, l))
				if err := ut.Relabel(nd.ID, tree.Label(l)); err != nil {
					panic(err)
				}
			case 1:
				l := pick()
				batch = append(batch, fmt.Sprintf("insert %d %s", nd.ID, l))
				if _, err := ut.InsertFirstChild(nd.ID, tree.Label(l)); err != nil {
					panic(err)
				}
			case 2:
				if nd.Parent != nil {
					l := pick()
					batch = append(batch, fmt.Sprintf("insertR %d %s", nd.ID, l))
					if _, err := ut.InsertRightSibling(nd.ID, tree.Label(l)); err != nil {
						panic(err)
					}
				}
			case 3:
				if nd.IsLeaf() && nd.Parent != nil {
					batch = append(batch, fmt.Sprintf("delete %d", nd.ID))
					if err := ut.Delete(nd.ID); err != nil {
						panic(err)
					}
				}
			case 4: // deleteSub (keep at least half the tree)
				if nd.Parent != nil && ut.SubtreeSize(nd.ID) <= ut.Size()/2 {
					batch = append(batch, fmt.Sprintf("deleteSub %d", nd.ID))
					if _, _, err := ut.DeleteSubtree(nd.ID); err != nil {
						panic(err)
					}
				}
			case 5: // moveSub / moveSubR
				dest := nodes[rng.Intn(len(nodes))]
				if nd.Parent == nil || ut.InSubtree(nd.ID, dest.ID) {
					continue
				}
				if rng.Intn(2) == 0 || dest.Parent == nil {
					batch = append(batch, fmt.Sprintf("moveSub %d %d", nd.ID, dest.ID))
					if err := ut.MoveSubtreeFirstChild(nd.ID, dest.ID); err != nil {
						panic(err)
					}
				} else {
					batch = append(batch, fmt.Sprintf("moveSubR %d %d", nd.ID, dest.ID))
					if err := ut.MoveSubtreeRightSibling(nd.ID, dest.ID); err != nil {
						panic(err)
					}
				}
			default: // insertSub / insertSubR
				frag := tva.RandomUnrankedTree(rng, 1+rng.Intn(4), []tree.Label{"a", "b", "c"})
				fs := frag.String()
				parsed, err := tree.ParseUnranked(fs)
				if err != nil {
					panic(err)
				}
				if rng.Intn(2) == 0 || nd.Parent == nil {
					batch = append(batch, fmt.Sprintf("insertSub %d %s", nd.ID, fs))
					if _, err := ut.GraftFirstChild(nd.ID, parsed); err != nil {
						panic(err)
					}
				} else {
					batch = append(batch, fmt.Sprintf("insertSubR %d %s", nd.ID, fs))
					if _, err := ut.GraftRightSibling(nd.ID, parsed); err != nil {
						panic(err)
					}
				}
			}
		}
		if len(batch) > 0 {
			s.batches = append(s.batches, batch)
		}
	}
	return s
}
