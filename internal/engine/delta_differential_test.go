package engine_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/enumerate"
	"repro/internal/tree"
)

// This file is the differential oracle of answer-delta streaming: the
// same edit scripts as differential_test.go run through an engine with a
// Subscribe consumer attached, and after every batch the consumer's
// materialized set — the initial resync folded with every received
// Delta — is compared against a full re-enumeration of the published
// snapshot. The fold is STRICT (removing an absent answer or adding a
// present one fails immediately), so the deltas must be exact, not just
// eventually consistent. Unambiguous queries exercise the count-guided
// co-descent differ; the ambiguous path query and ModeNaive exercise the
// full-drain fallback.

const deltaRecvTimeout = 30 * time.Second

// deltaConsumer folds a subscription's Delta stream into a materialized
// answer set, strictly.
type deltaConsumer struct {
	ch        <-chan engine.Delta
	set       map[string]tree.Assignment
	version   uint64
	coalesced int
	resyncs   int
}

func newDeltaConsumer(t *testing.T, ch <-chan engine.Delta) *deltaConsumer {
	t.Helper()
	c := &deltaConsumer{ch: ch, set: map[string]tree.Assignment{}}
	d := c.recv(t)
	if d.Resync == nil {
		t.Fatalf("first delta of a subscription must be a resync, got %+v", d)
	}
	c.fold(t, d)
	return c
}

func (c *deltaConsumer) recv(t *testing.T) engine.Delta {
	t.Helper()
	select {
	case d, ok := <-c.ch:
		if !ok {
			t.Fatalf("delta channel closed at version %d", c.version)
		}
		return d
	case <-time.After(deltaRecvTimeout):
		t.Fatalf("no delta within %v (at version %d)", deltaRecvTimeout, c.version)
	}
	panic("unreachable")
}

func (c *deltaConsumer) fold(t *testing.T, d engine.Delta) {
	t.Helper()
	if d.Version < c.version {
		t.Fatalf("delta version went backwards: %d after %d", d.Version, c.version)
	}
	if d.Coalesced {
		c.coalesced++
	}
	if d.Resync != nil {
		if d.Added != nil || d.Removed != nil {
			t.Fatalf("resync delta carries a diff: %+v", d)
		}
		c.resyncs++
		c.set = map[string]tree.Assignment{}
		for a := range d.Resync.Results() {
			c.set[a.Key()] = a
		}
		c.version = d.Version
		return
	}
	for _, a := range d.Removed {
		k := a.Key()
		if _, ok := c.set[k]; !ok {
			t.Fatalf("delta v%d removes absent answer %s", d.Version, k)
		}
		delete(c.set, k)
	}
	for _, a := range d.Added {
		k := a.Key()
		if _, ok := c.set[k]; ok {
			t.Fatalf("delta v%d adds already-present answer %s", d.Version, k)
		}
		c.set[k] = a
	}
	c.version = d.Version
}

// advance folds deltas until the consumer's version reaches target (the
// just-published version; coalesced deltas may cover several steps in
// one receive, but never overshoot the latest publication).
func (c *deltaConsumer) advance(t *testing.T, target uint64) {
	t.Helper()
	for c.version < target {
		c.fold(t, c.recv(t))
	}
	if c.version != target {
		t.Fatalf("delta stream overshot: at %d, wanted %d", c.version, target)
	}
}

func (c *deltaConsumer) keys() []string {
	out := make([]string, 0, len(c.set))
	for k := range c.set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// deltaEngine is the slice of TreeEngine/WordEngine the replay needs.
type deltaEngine interface {
	ApplyBatch([]engine.Update) (*engine.Snapshot, []tree.NodeID, error)
	Subscribe() (<-chan engine.Delta, error)
	Snapshot() *engine.Snapshot
}

// runDeltaScript replays one script with a subscriber attached and
// fails on any divergence between the delta-replayed set and a full
// re-enumeration of the published snapshot after every batch.
func runDeltaScript(t *testing.T, s *diffScript, opts engine.Options) {
	t.Helper()
	var e deltaEngine
	if s.isWord {
		q, err := diffWordQuery(s.query)
		if err != nil {
			t.Fatalf("script query: %v\nscript:\n%s", err, s)
		}
		we, err := engine.NewWord(s.letters, q, opts)
		if err != nil {
			t.Fatalf("engine: %v\nscript:\n%s", err, s)
		}
		e = we
	} else {
		q, err := diffTreeQuery(s.query)
		if err != nil {
			t.Fatalf("script query: %v\nscript:\n%s", err, s)
		}
		ut, err := tree.ParseUnranked(s.tree)
		if err != nil {
			t.Fatalf("script tree: %v\nscript:\n%s", err, s)
		}
		te, err := engine.NewTree(ut, q, opts)
		if err != nil {
			t.Fatalf("engine: %v\nscript:\n%s", err, s)
		}
		e = te
	}
	ch, err := e.Subscribe()
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	c := newDeltaConsumer(t, ch)
	if want := resultKeys(e.Snapshot().Results()); !slices.Equal(c.keys(), want) {
		t.Fatalf("initial resync diverges\nreplayed: %v\nfull:     %v\nscript:\n%s", c.keys(), want, s)
	}
	for bi, raw := range s.batches {
		batch := make([]engine.Update, 0, len(raw))
		for _, ed := range raw {
			u, err := parseDiffEdit(ed)
			if err != nil {
				t.Fatalf("%v\nscript:\n%s", err, s)
			}
			batch = append(batch, u)
		}
		snap, _, err := e.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("batch %d: %v\nscript:\n%s", bi, err, s)
		}
		c.advance(t, snap.Version())
		if want := resultKeys(snap.Results()); !slices.Equal(c.keys(), want) {
			t.Fatalf("batch %d: delta replay diverges\nreplayed: %v\nfull:     %v\nscript:\n%s",
				bi, c.keys(), want, s)
		}
	}
}

// TestDeltaReplayCorpus replays the committed differential corpus with a
// delta subscriber (all query kinds, including the ambiguous path query
// on the fallback path).
func TestDeltaReplayCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "differential", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus scripts found")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			s, err := parseDiffScript(string(data))
			if err != nil {
				t.Fatal(err)
			}
			runDeltaScript(t, s, engine.Options{})
		})
	}
}

// TestDeltaReplayRandom draws random leaf-edit scripts — trees across
// all query kinds and words — and checks the delta replay after every
// batch.
func TestDeltaReplayRandom(t *testing.T) {
	queries := []string{"select:b", "ancestor", "childpair", "path://a//b"}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		s := randomDiffScript(rng, queries[seed%int64(len(queries))], false, false)
		t.Run(fmt.Sprintf("tree%d", seed), func(t *testing.T) { runDeltaScript(t, s, engine.Options{}) })
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(600 + seed))
		s := randomDiffScript(rng, "span", true, false)
		t.Run(fmt.Sprintf("word%d", seed), func(t *testing.T) { runDeltaScript(t, s, engine.Options{}) })
	}
}

// TestDeltaReplayStructural is the structural half: subtree moves,
// grafts and deletes (whose repair reuses moved regions wholesale — the
// exact units the co-descent prunes on) and word range ops, against
// ambiguous and unambiguous automata.
func TestDeltaReplayStructural(t *testing.T) {
	queries := []string{"select:b", "ancestor", "childpair", "path://a//b"}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		s := randomDiffScript(rng, queries[seed%int64(len(queries))], false, true)
		t.Run(fmt.Sprintf("tree%d", seed), func(t *testing.T) { runDeltaScript(t, s, engine.Options{}) })
	}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(800 + seed))
		s := randomDiffScript(rng, "span", true, true)
		t.Run(fmt.Sprintf("word%d", seed), func(t *testing.T) { runDeltaScript(t, s, engine.Options{}) })
	}
}

// TestDeltaReplayModeNaive forces the non-indexed fallback (no counts,
// no co-descent) through the same structural replay.
func TestDeltaReplayModeNaive(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		s := randomDiffScript(rng, "select:b", false, true)
		t.Run(fmt.Sprintf("tree%d", seed), func(t *testing.T) {
			runDeltaScript(t, s, engine.Options{Mode: enumerate.ModeNaive})
		})
	}
}

// TestDeltaCoalescing starves the consumer while many batches publish:
// the pending delta must coalesce (Coalesced set), the composed fold
// must still land exactly on the final answer set, and with a tiny
// resync limit the composition must degrade to a snapshot resync.
func TestDeltaCoalescing(t *testing.T) {
	build := func(t *testing.T) (*engine.TreeEngine, <-chan engine.Delta) {
		ut, err := tree.ParseUnranked("(a (b) (c) (b) (c) (b) (c))")
		if err != nil {
			t.Fatal(err)
		}
		q, err := diffTreeQuery("select:b")
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.NewTree(ut, q, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ch, err := e.Subscribe()
		if err != nil {
			t.Fatal(err)
		}
		return e, ch
	}
	churn := func(t *testing.T, e *engine.TreeEngine) *engine.Snapshot {
		// Far more publications than channel capacity + pending slot can
		// hold without the consumer draining: coalescing must engage.
		var last *engine.Snapshot
		for i := 0; i < 64; i++ {
			l := tree.Label("b")
			if i%2 == 1 {
				l = "c"
			}
			snap, _, err := e.ApplyBatch([]engine.Update{
				{Op: engine.OpRelabel, Node: 1, Label: l},
				{Op: engine.OpRelabel, Node: 3, Label: l},
			})
			if err != nil {
				t.Fatal(err)
			}
			last = snap
		}
		return last
	}
	t.Run("coalesce", func(t *testing.T) {
		e, ch := build(t)
		last := churn(t, e)
		c := newDeltaConsumer(t, ch)
		c.advance(t, last.Version())
		if c.coalesced == 0 {
			t.Fatal("64 undrained publications never coalesced")
		}
		if want := resultKeys(last.Results()); !slices.Equal(c.keys(), want) {
			t.Fatalf("coalesced replay diverges\nreplayed: %v\nfull: %v", c.keys(), want)
		}
		if st := e.Set().Stats(); st.DeltasCoalesced == 0 {
			t.Fatalf("Stats().DeltasCoalesced = 0 after coalescing run: %+v", st)
		}
	})
	t.Run("resync", func(t *testing.T) {
		e, ch := build(t)
		e.Set().SetDeltaResyncLimit(1)
		ch2, err := e.Subscribe()
		if err != nil {
			t.Fatal(err)
		}
		last := churn(t, e)
		for _, watch := range []<-chan engine.Delta{ch, ch2} {
			c := newDeltaConsumer(t, watch)
			c.advance(t, last.Version())
			if want := resultKeys(last.Results()); !slices.Equal(c.keys(), want) {
				t.Fatalf("replay diverges\nreplayed: %v\nfull: %v", c.keys(), want)
			}
		}
	})
}

// TestDeltaResyncEngages: with resync limit 1, any coalesced composition
// with ≥2 changed answers must arrive as a Resync delta.
func TestDeltaResyncEngages(t *testing.T) {
	ut, err := tree.ParseUnranked("(a (b) (c) (b) (c))")
	if err != nil {
		t.Fatal(err)
	}
	q, err := diffTreeQuery("select:b")
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.NewTree(ut, q, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Set().SetDeltaResyncLimit(1)
	ch, err := e.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	// Consume the seed resync FIRST, then starve: otherwise every
	// publication merges into the still-pending seed and the overflow
	// path never runs.
	c := newDeltaConsumer(t, ch)
	var last *engine.Snapshot
	for i := 0; i < 64; i++ {
		l := tree.Label("b")
		if i%2 == 1 {
			l = "c"
		}
		snap, _, err := e.ApplyBatch([]engine.Update{
			{Op: engine.OpRelabel, Node: 1, Label: l},
			{Op: engine.OpRelabel, Node: 3, Label: l},
		})
		if err != nil {
			t.Fatal(err)
		}
		last = snap
	}
	c.advance(t, last.Version())
	if c.resyncs < 2 { // the seed resync plus at least one overflow
		t.Fatalf("starved subscription with limit 1 never resynced (resyncs=%d, coalesced=%d)",
			c.resyncs, c.coalesced)
	}
	if want := resultKeys(last.Results()); !slices.Equal(c.keys(), want) {
		t.Fatalf("resync replay diverges\nreplayed: %v\nfull: %v", c.keys(), want)
	}
}

// TestDeltaUnregisterCloses: unregistering the query closes every
// subscriber channel.
func TestDeltaUnregisterCloses(t *testing.T) {
	ut, err := tree.ParseUnranked("(a (b))")
	if err != nil {
		t.Fatal(err)
	}
	q, err := diffTreeQuery("select:b")
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.NewTree(ut, q, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Set().Unregister(e.ID()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(deltaRecvTimeout)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // closed, as required
			}
		case <-deadline:
			t.Fatal("channel not closed after Unregister")
		}
	}
}

// TestDeltaStats: a subscribed engine surfaces the delta counters.
func TestDeltaStats(t *testing.T) {
	ut, err := tree.ParseUnranked("(a (b) (c))")
	if err != nil {
		t.Fatal(err)
	}
	q, err := diffTreeQuery("select:b")
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.NewTree(ut, q, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := e.ApplyBatch([]engine.Update{{Op: engine.OpRelabel, Node: 2, Label: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	c := newDeltaConsumer(t, ch)
	c.advance(t, snap.Version())
	st := e.Set().Stats()
	if st.DeltasEmitted == 0 {
		t.Fatalf("DeltasEmitted = 0 after a subscribed publication: %+v", st)
	}
	if st.AnswersAdded != 1 || st.AnswersRemoved != 0 {
		t.Fatalf("AnswersAdded/Removed = %d/%d, want 1/0", st.AnswersAdded, st.AnswersRemoved)
	}
}
