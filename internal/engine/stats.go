package engine

import (
	"maps"

	"repro/internal/circuit"
)

// EngineStats is one immutable reading of the engine's cumulative work
// counters, taken at a publication. Engine.Stats returns the latest
// reading with a single atomic load, so it is safe to call concurrently
// with the parallel write path: the writer assembles a fresh EngineStats
// after the worker pool has finished each publication (the pool's
// WaitGroup orders every per-pipeline counter write before the stats
// store) and installs it through an atomic pointer, exactly like the
// MultiSnapshot.
//
// The shared-vs-per-query split is the cost model of the query-set
// architecture: PathCopies and Rebalances are the term work an edit pays
// ONCE regardless of the number of standing queries, while BoxesRebuilt
// is the per-query repair that fans out across the worker pool.
type EngineStats struct {
	// Version is the publication sequence number this reading was taken
	// at (MultiSnapshot.Version of the same publication).
	Version uint64
	// Queries is the number of standing queries at the publication.
	Queries int
	// Pipelines is the number of DISTINCT (box, index, counts) pipelines
	// behind the standing queries: the multi-query optimizer dedupes
	// registrations of content-equal automata onto one refcounted
	// pipeline, so Pipelines <= Queries, and the gap is repair work the
	// write path does not pay (per-batch cost scales with Pipelines).
	Pipelines int
	// PipelinesShared is the number of standing pipelines currently
	// serving more than one registered query (refcount > 1).
	PipelinesShared int
	// RegistrationsDeduped is the cumulative number of registrations the
	// optimizer served by joining a standing pipeline instead of
	// building one — each skipped an O(|T|) construction walk and all
	// future repair (monotone; unregistrations do not decrease it).
	RegistrationsDeduped int
	// Workers is the engine's worker-pool bound (Options.Workers /
	// SetWorkers; the pool additionally never exceeds Queries).
	Workers int
	// PathCopies is the cumulative number of fresh term nodes the source
	// handed to the engine: the initial build plus every path-copied
	// trunk node and scapegoat rebuild since. Shared term work — flat in
	// the number of registered queries (experiment C2).
	PathCopies int
	// Rebalances is the source's cumulative scapegoat rebuild count
	// (shared term work, like PathCopies).
	Rebalances int
	// BoxesRebuilt is the cumulative number of circuit boxes built
	// across all pipelines, including registration walks and pipelines
	// unregistered since (monotone; the per-query update-work counter of
	// the amortization experiments, summed).
	BoxesRebuilt int
	// BoxesReused is the cumulative number of trunk boxes that
	// signature-pruned repair served by reusing the superseded node's
	// frozen (box, index, counts) unit instead of rebuilding it —
	// repair work saved, summed across all pipelines (monotone, like
	// BoxesRebuilt).
	BoxesReused int
	// QueryBoxesRebuilt maps each standing query to its pipeline's
	// cumulative box-construction count (queries deduped onto one shared
	// pipeline report the same counter).
	QueryBoxesRebuilt map[QueryID]int
	// ProgramCacheSize is the current entry count of the process-wide
	// compiled-transition-program cache (circuit.ProgramCacheSize): a
	// GLOBAL reading, shared by every engine in the process, bounded by
	// clock eviction under register/unregister churn.
	ProgramCacheSize int
	// AnswersEnumerated is the cumulative number of assignments the
	// engine's snapshots produced through the read APIs (bulk drains,
	// pages, ranked access, and the enumeration fallbacks behind them; a
	// work counter — a fallback that enumerates i answers to serve one
	// rank counts i). Unlike the write-side counters it advances between
	// publications: Engine.Stats reads it live.
	AnswersEnumerated int64
	// ParallelDrains is the cumulative number of ParallelAll / Chunks
	// calls that fanned out across more than one worker (read live,
	// like AnswersEnumerated).
	ParallelDrains int64
	// DeltasEmitted is the cumulative number of answer deltas offered to
	// Subscribe consumers (one per subscriber per publication; the
	// initial resync seeding a subscription is not counted).
	DeltasEmitted int64
	// AnswersAdded / AnswersRemoved accumulate the sizes of the computed
	// per-pipeline answer diffs (counted once per distinct pipeline per
	// publication, regardless of the number of subscribers sharing it):
	// the work the delta stream SHIPS, as opposed to the answer-set
	// sizes a full re-read would pay.
	AnswersAdded   int64
	AnswersRemoved int64
	// DeltasCoalesced is the cumulative number of offers that merged
	// into a still-undelivered pending delta because the consumer fell
	// behind (each surfaces to that consumer as Delta.Coalesced).
	DeltasCoalesced int64
}

// Stats returns the engine's latest published work counters: one atomic
// load plus a map clone, no locks, safe from any goroutine at any time
// (in particular concurrently with the parallel writer). The returned
// value is the caller's own copy.
func (e *Engine) Stats() EngineStats {
	st := *e.stats.Load()
	st.QueryBoxesRebuilt = maps.Clone(st.QueryBoxesRebuilt)
	// Read-path counters advance between publications (readers never
	// publish); overlay the live values so Stats reflects reads that
	// happened since the last write. The program cache is process-wide
	// and moves with every engine's registrations, so it is read live
	// too.
	st.AnswersEnumerated = e.reads.answersEnumerated.Load()
	st.ParallelDrains = e.reads.parallelDrains.Load()
	st.ProgramCacheSize = circuit.ProgramCacheSize()
	return st
}

// publishStats assembles and installs the EngineStats reading for the
// current publication. Callers hold e.mu, after any worker pool of the
// publication has been waited for.
func (e *Engine) publishStats() {
	st := &EngineStats{
		Version:              e.version,
		Queries:              len(e.order),
		Workers:              e.workers,
		PathCopies:           e.pathCopies,
		Rebalances:           e.src.Rebalances(),
		BoxesRebuilt:         e.boxesReleased,
		BoxesReused:          e.reusedReleased,
		RegistrationsDeduped: e.dedupedRegs,
		QueryBoxesRebuilt:    make(map[QueryID]int, len(e.pipes)),
		ProgramCacheSize:     circuit.ProgramCacheSize(),
		AnswersEnumerated:    e.reads.answersEnumerated.Load(),
		ParallelDrains:       e.reads.parallelDrains.Load(),
		DeltasEmitted:        e.deltasEmitted,
		AnswersAdded:         e.answersAdded,
		AnswersRemoved:       e.answersRemoved,
		DeltasCoalesced:      e.deltasCoalesced,
	}
	// Repair-work counters sum over DISTINCT pipelines (a shared
	// pipeline's work is paid once, so it is counted once); the
	// per-query map still carries one entry per QueryID.
	seen := make(map[*pipeline]bool, len(e.pipes))
	for id, p := range e.pipes {
		st.QueryBoxesRebuilt[id] = p.boxesRebuilt
		if seen[p] {
			continue
		}
		seen[p] = true
		st.Pipelines++
		if p.refs > 1 {
			st.PipelinesShared++
		}
		st.BoxesRebuilt += p.boxesRebuilt
		st.BoxesReused += p.boxesReused
	}
	e.stats.Store(st)
}

// BoxesRebuilt returns the cumulative number of circuit boxes built
// across all pipelines.
//
// Deprecated: read Stats().BoxesRebuilt; this wrapper remains so
// existing callers compile.
func (e *Engine) BoxesRebuilt() int { return e.stats.Load().BoxesRebuilt }

// QueryBoxesRebuilt returns the cumulative box-construction count of one
// registered query's pipeline; ok is false if the query is not
// registered.
//
// Deprecated: read Stats().QueryBoxesRebuilt; this wrapper remains so
// existing callers compile.
func (e *Engine) QueryBoxesRebuilt(id QueryID) (count int, ok bool) {
	count, ok = e.stats.Load().QueryBoxesRebuilt[id]
	return count, ok
}

// PathCopies returns the cumulative number of fresh term nodes the
// source handed to the engine (shared term work; see
// EngineStats.PathCopies).
//
// Deprecated: read Stats().PathCopies; this wrapper remains so existing
// callers compile.
func (e *Engine) PathCopies() int { return e.stats.Load().PathCopies }

// Rebalances returns the source's cumulative scapegoat rebuild count as
// of the latest publication.
//
// Deprecated: read Stats().Rebalances; this wrapper remains so existing
// callers compile.
func (e *Engine) Rebalances() int { return e.stats.Load().Rebalances }
