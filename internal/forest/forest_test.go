package forest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tree"
	"repro/internal/tva"
)

// shapes used across balance tests.
func pathTree(n int) *tree.Unranked {
	t := tree.NewUnranked("a")
	cur := t.Root.ID
	for i := 1; i < n; i++ {
		nn, _ := t.InsertFirstChild(cur, "a")
		cur = nn.ID
	}
	return t
}

func starTree(n int) *tree.Unranked {
	t := tree.NewUnranked("a")
	for i := 1; i < n; i++ {
		_, _ = t.InsertFirstChild(t.Root.ID, "b")
	}
	return t
}

func combTree(n int) *tree.Unranked {
	// A path where every path node also has one leaf child.
	t := tree.NewUnranked("a")
	cur := t.Root.ID
	for i := 1; i < n; i += 2 {
		leaf, _ := t.InsertFirstChild(cur, "b")
		nn, err := t.InsertRightSibling(leaf.ID, "a")
		if err != nil {
			break
		}
		cur = nn.ID
	}
	return t
}

func randomTree(rng *rand.Rand, n int) *tree.Unranked {
	return tva.RandomUnrankedTree(rng, n, []tree.Label{"a", "b", "c"})
}

func TestBuildDecodeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	builders := []func() *tree.Unranked{
		func() *tree.Unranked { return pathTree(1) },
		func() *tree.Unranked { return pathTree(17) },
		func() *tree.Unranked { return starTree(23) },
		func() *tree.Unranked { return combTree(20) },
		func() *tree.Unranked { return randomTree(rng, 40) },
		func() *tree.Unranked { return randomTree(rng, 200) },
	}
	for i, mk := range builders {
		ut := mk()
		f := New(ut)
		if err := ValidateTerm(f.Root); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if err := DecodeTree(f.Root, ut); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if f.Root.Weight != ut.Size() {
			t.Fatalf("case %d: weight %d != size %d", i, f.Root.Weight, ut.Size())
		}
		// Drain after initial build covers every node exactly once,
		// children first.
		drained := f.DrainDelta().Fresh
		seen := map[*Node]bool{}
		for _, n := range drained {
			if seen[n] {
				t.Fatalf("case %d: node drained twice", i)
			}
			seen[n] = true
			if !n.IsLeaf() && (!seen[n.Left] || !seen[n.Right]) {
				t.Fatalf("case %d: parent drained before child", i)
			}
		}
		if !seen[f.Root] {
			t.Fatalf("case %d: root not drained", i)
		}
	}
}

// TestBuildHeightLogarithmic checks the Lemma 7.4 height guarantee on
// adversarial shapes: built terms must have height O(log n).
func TestBuildHeightLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	check := func(name string, ut *tree.Unranked) {
		f := New(ut)
		n := float64(ut.Size())
		bound := 2.2*math.Log2(n+1) + 6
		if float64(f.Root.Height) > bound {
			t.Errorf("%s (n=%d): height %d > %.1f", name, ut.Size(), f.Root.Height, bound)
		}
	}
	for _, n := range []int{10, 100, 1000, 5000} {
		check("path", pathTree(n))
		check("star", starTree(n))
		check("comb", combTree(n))
		check("random", randomTree(rng, n))
	}
}

// applyRandomEdit performs one random valid edit through the Forest and
// returns false if none was possible.
func applyRandomEdit(rng *rand.Rand, f *Forest) bool {
	nodes := f.Tree.Nodes()
	n := nodes[rng.Intn(len(nodes))]
	labels := []tree.Label{"a", "b", "c"}
	switch rng.Intn(4) {
	case 0:
		return f.Relabel(n.ID, labels[rng.Intn(3)]) == nil
	case 1:
		_, err := f.InsertFirstChild(n.ID, labels[rng.Intn(3)])
		return err == nil
	case 2:
		if n.Parent == nil {
			return false
		}
		_, err := f.InsertRightSibling(n.ID, labels[rng.Intn(3)])
		return err == nil
	default:
		if !n.IsLeaf() || n.Parent == nil {
			return false
		}
		return f.Delete(n.ID) == nil
	}
}

// TestEditsPreserveDecode is the core forest fuzz test: after every edit
// the term must still decode to the tree, satisfy the typing rules, stay
// balanced, and the drained trunk must be consistent.
func TestEditsPreserveDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		ut := randomTree(rng, 1+rng.Intn(30))
		f := New(ut)
		f.DrainDelta()
		for step := 0; step < 60; step++ {
			if !applyRandomEdit(rng, f) {
				continue
			}
			if err := ValidateTerm(f.Root); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if err := DecodeTree(f.Root, f.Tree); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if f.Root.Weight != f.Tree.Size() {
				t.Fatalf("trial %d step %d: weight %d != size %d",
					trial, step, f.Root.Weight, f.Tree.Size())
			}
			bound := f.heightBudget(f.Root.Weight)
			if f.Root.Height > bound {
				t.Fatalf("trial %d step %d: height %d > budget %d",
					trial, step, f.Root.Height, bound)
			}
			trunk := f.DrainDelta().Fresh
			h := HollowingFromTrunk(trunk)
			if h.TrunkSize() == 0 {
				t.Fatalf("trial %d step %d: empty trunk after edit", trial, step)
			}
			// Trunk order: children first among trunk members.
			pos := map[*Node]int{}
			for i, n := range trunk {
				pos[n] = i
			}
			for i, n := range trunk {
				for _, c := range []*Node{n.Left, n.Right} {
					if c == nil {
						continue
					}
					if j, ok := pos[c]; ok && j > i {
						t.Fatalf("trial %d step %d: child drained after parent", trial, step)
					}
				}
			}
			// The root must always be in the trunk (its box changes).
			if _, ok := pos[f.Root]; !ok {
				t.Fatalf("trial %d step %d: root missing from trunk", trial, step)
			}
		}
	}
}

// TestAmortizedTrunkLogarithmic runs long random edit sequences on a
// larger tree and checks that the average trunk stays O(log n).
func TestAmortizedTrunkLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ut := randomTree(rng, 3000)
	f := New(ut)
	f.DrainDelta()
	edits, totalTrunk := 0, 0
	for step := 0; step < 2000; step++ {
		if !applyRandomEdit(rng, f) {
			continue
		}
		edits++
		totalTrunk += len(f.DrainDelta().Fresh)
	}
	avg := float64(totalTrunk) / float64(edits)
	limit := 14 * math.Log2(float64(f.Tree.Size()))
	if avg > limit {
		t.Fatalf("amortized trunk %.1f exceeds %.1f (n=%d, rebuilds=%d)",
			avg, limit, f.Tree.Size(), f.Rebuilds)
	}
}

func TestWordBasics(t *testing.T) {
	w, err := NewWord([]tree.Label{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWord(nil); err == nil {
		t.Fatal("empty word should fail")
	}
	ids, labels := w.Letters()
	if len(ids) != 3 || labels[0] != "a" || labels[1] != "b" || labels[2] != "c" {
		t.Fatalf("Letters = %v %v", ids, labels)
	}
	// Positional addressing.
	for i, id := range ids {
		got, err := w.IDAt(i)
		if err != nil || got != id {
			t.Fatalf("IDAt(%d) = %v, %v", i, got, err)
		}
	}
	if _, err := w.IDAt(3); err == nil {
		t.Fatal("IDAt out of range should fail")
	}
	// Edits.
	if _, err := w.InsertAfter(ids[1], "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.InsertBefore(ids[0], "y"); err != nil {
		t.Fatal(err)
	}
	if err := w.Relabel(ids[2], "z"); err != nil {
		t.Fatal(err)
	}
	if err := w.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	_, labels = w.Letters()
	want := []tree.Label{"y", "b", "x", "z"}
	if len(labels) != len(want) {
		t.Fatalf("word = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("word = %v, want %v", labels, want)
		}
	}
	if err := ValidateTerm(w.Root); err != nil {
		t.Fatal(err)
	}
}

func TestWordEditStormBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, _ := NewWord([]tree.Label{"a"})
	ref := []tree.Label{"a"}
	refIDs := []tree.NodeID{0}
	w.DrainDelta()
	for step := 0; step < 3000; step++ {
		switch rng.Intn(3) {
		case 0: // insert
			i := rng.Intn(len(ref))
			l := tree.Label([]string{"a", "b", "c"}[rng.Intn(3)])
			id, err := w.InsertAfter(refIDs[i], l)
			if err != nil {
				t.Fatal(err)
			}
			ref = append(ref[:i+1], append([]tree.Label{l}, ref[i+1:]...)...)
			refIDs = append(refIDs[:i+1], append([]tree.NodeID{id}, refIDs[i+1:]...)...)
		case 1: // relabel
			i := rng.Intn(len(ref))
			l := tree.Label([]string{"a", "b", "c"}[rng.Intn(3)])
			if err := w.Relabel(refIDs[i], l); err != nil {
				t.Fatal(err)
			}
			ref[i] = l
		default: // delete
			if len(ref) == 1 {
				continue
			}
			i := rng.Intn(len(ref))
			if err := w.Delete(refIDs[i]); err != nil {
				t.Fatal(err)
			}
			ref = append(ref[:i], ref[i+1:]...)
			refIDs = append(refIDs[:i], refIDs[i+1:]...)
		}
		if step%100 == 0 {
			if err := ValidateTerm(w.Root); err != nil {
				t.Fatal(err)
			}
		}
		_, labels := w.Letters()
		if len(labels) != len(ref) {
			t.Fatalf("step %d: length %d != %d", step, len(labels), len(ref))
		}
		for i := range ref {
			if labels[i] != ref[i] {
				t.Fatalf("step %d: word %v != ref %v", step, labels, ref)
			}
		}
		if w.Root.Height > w.heightBudget(w.Root.Weight) {
			t.Fatalf("step %d: height %d over budget", step, w.Root.Height)
		}
	}
}

// TestTranslateFaithful is the Lemma 7.4 faithfulness check: the
// satisfying assignments of A on T equal those of A′ on the term.
func TestTranslateFaithful(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	alpha := []tree.Label{"a", "b"}
	trials := 0
	for trials < 40 {
		a := tva.RandomUnranked(rng, 1+rng.Intn(3), alpha, tree.NewVarSet(0), 0.4)
		ut := randomTree(rng, 1+rng.Intn(5))
		want, err := a.SatisfyingAssignments(ut, 6)
		if err != nil {
			t.Fatal(err)
		}
		trials++
		ab, err := Translate(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := ab.Validate(); err != nil {
			t.Fatal(err)
		}
		f := New(ut)
		bt := ToBinary(f.Root)
		got, err := ab.SatisfyingAssignments(bt, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d assignments, want %d\ntree: %s\ngot: %v\nwant: %v",
				trials, len(got), len(want), ut, got, want)
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("trial %d: missing %q", trials, k)
			}
		}
	}
}

// TestTranslateWordFaithful checks Corollary 8.4 on random WVAs and
// random words.
func TestTranslateWordFaithful(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := []tree.Label{"a", "b"}
	for trial := 0; trial < 40; trial++ {
		a := randomWVA(rng, 1+rng.Intn(3), alpha, tree.NewVarSet(0), 0.4)
		n := 1 + rng.Intn(6)
		letters := make([]tree.Label, n)
		for i := range letters {
			letters[i] = alpha[rng.Intn(2)]
		}
		w, err := NewWord(letters)
		if err != nil {
			t.Fatal(err)
		}
		ids, _ := w.Letters()
		want, err := a.SatisfyingAssignments(letters, ids, 8)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := TranslateWord(a)
		if err != nil {
			t.Fatal(err)
		}
		bt := ToBinary(w.Root)
		got, err := ab.SatisfyingAssignments(bt, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d (word %v)", trial, len(got), len(want), letters)
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("trial %d: missing %q", trial, k)
			}
		}
	}
}

func randomWVA(rng *rand.Rand, states int, alpha []tree.Label, vars tree.VarSet, density float64) *tva.WVA {
	a := &tva.WVA{NumStates: states, Alphabet: alpha, Vars: vars}
	subsets := []tree.VarSet{}
	tree.SubsetsOf(vars, func(s tree.VarSet) { subsets = append(subsets, s) })
	for q := 0; q < states; q++ {
		for _, l := range alpha {
			for _, s := range subsets {
				for p := 0; p < states; p++ {
					if rng.Float64() < density {
						a.Trans = append(a.Trans, tva.WTrans{From: tva.State(q), Label: l, Set: s, To: tva.State(p)})
					}
				}
			}
		}
	}
	a.Initial = []tva.State{tva.State(rng.Intn(states))}
	a.Final = []tva.State{tva.State(rng.Intn(states))}
	return a
}

// TestTranslationSizeBounds checks the Lemma 7.4 / Corollary 8.4 size
// bounds before trimming obscures them: |Q′| = O(|Q|⁴) for trees and
// O(|Q|²) for words.
func TestTranslationSizeBounds(t *testing.T) {
	alpha := []tree.Label{"a", "b"}
	for k := 1; k <= 4; k++ {
		a := tva.DescendantAtDepth(alpha, "b", k, 0)
		n := a.NumStates + 2
		ab, err := Translate(a)
		if err != nil {
			t.Fatal(err)
		}
		if ab.NumStates > n*n*n*n+n*n {
			t.Fatalf("k=%d: %d states > |Q|⁴ bound", k, ab.NumStates)
		}
	}
}
