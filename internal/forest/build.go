package forest

import (
	"math"

	"repro/internal/tree"
)

// Forest maintains an unranked tree together with its balanced forest
// algebra term (the encoding ω of Lemma 7.4), under the edit operations
// of Definition 7.1 plus the structural edits (subtree insert, delete,
// move — see structural.go). The embedded editCore tracks which term
// nodes were created, superseded or relocated since the last DrainDelta,
// in bottom-up order, so that the dynamic engine can rebuild exactly the
// circuit boxes of the hollowing trunk (Lemma 7.3).
type Forest struct {
	editCore
	Tree *tree.Unranked

	// leafOf maps every tree node to its term leaf (aᵗ if childless, a□
	// otherwise); the bijection φ of Lemma 7.4.
	leafOf map[tree.NodeID]*Node
	// plugOp maps every tree node with children to the ⊙-node (ComposeVV
	// or ApplyVH) whose right subterm represents exactly its children
	// forest.
	plugOp map[tree.NodeID]*Node
}

// New encodes the unranked tree as a balanced forest algebra term. This
// IS the bulk load: one weight-driven divide-and-conquer pass over the
// document (O(n) term nodes, O(n log n) work for the split choices)
// instead of n incremental inserts with n trunk repairs — BulkLoad is
// the documented alias.
func New(t *tree.Unranked) *Forest {
	f := &Forest{
		editCore: editCore{HeightFactor: 2.4, HeightBase: 10},
		Tree:     t,
		leafOf:   map[tree.NodeID]*Node{},
		plugOp:   map[tree.NodeID]*Node{},
	}
	f.owner = f
	f.Root = f.buildCluster([]*tree.UNode{t.Root}, nil)
	return f
}

// BulkLoad builds the balanced term for a whole document directly — the
// structural-edit counterpart of n sequential inserts. It is New under
// the name the edit language uses; the E-struct experiment measures the
// gap against the incremental path.
func BulkLoad(t *tree.Unranked) *Forest { return New(t) }

// joinInner is the editCore allocation hook (termOwner).
func (f *Forest) joinInner(op Op, l, r *Node) *Node { return f.newInner(op, l, r) }

// Leaf returns the term leaf of a tree node.
func (f *Forest) Leaf(id tree.NodeID) *Node { return f.leafOf[id] }

// clusterSizes computes the number of cluster nodes in each subtree of
// the cluster (children of the hole node are not part of the cluster).
func clusterSizes(roots []*tree.UNode, hole *tree.UNode) map[tree.NodeID]int {
	sz := map[tree.NodeID]int{}
	var rec func(n *tree.UNode) int
	rec = func(n *tree.UNode) int {
		s := 1
		if hole == nil || n.ID != hole.ID {
			for c := n.FirstChild; c != nil; c = c.NextSib {
				s += rec(c)
			}
		}
		sz[n.ID] = s
		return s
	}
	for _, r := range roots {
		rec(r)
	}
	return sz
}

// buildCluster builds a balanced term for the cluster consisting of the
// consecutive sibling subtrees rooted at roots, with the children forest
// of hole removed (hole nil for forest clusters). Every term node created
// is recorded for the dirty protocol; leafOf and plugOp entries for the
// contained tree nodes are (re)registered.
func (f *Forest) buildCluster(roots []*tree.UNode, hole *tree.UNode) *Node {
	sz := clusterSizes(roots, hole)
	return f.build(roots, hole, sz)
}

func (f *Forest) build(roots []*tree.UNode, hole *tree.UNode, sz map[tree.NodeID]int) *Node {
	if len(roots) == 1 {
		r := roots[0]
		if hole != nil && r.ID == hole.ID {
			return f.newLeafCtx(r)
		}
		if r.FirstChild == nil {
			return f.newLeafTree(r)
		}
		// Single tree with at least one cluster-internal edge: vertical
		// split at a node w chosen to balance the context above w against
		// the children forest of w.
		if hole == nil {
			w := chooseSplitForest(r, sz)
			// Recompute sizes for the sub-clusters: hollowing out w's
			// children changes the weights of its ancestors.
			ctx := f.buildCluster(roots, w)
			forestPart := f.buildCluster(children(w), nil)
			// newInner registers the ⊙VH node as plugOp[w] (w is ctx's hole).
			return f.newInner(ApplyVH, ctx, forestPart)
		}
		// Context cluster: w must be a proper ancestor of the hole so
		// that the children cluster of w still contains it.
		w := chooseSplitContext(r, hole, sz)
		upper := f.buildCluster(roots, w)
		lower := f.buildCluster(children(w), hole)
		// newInner registers the ⊙VV node as plugOp[w] (w is upper's hole).
		return f.newInner(ComposeVV, upper, lower)
	}
	// Horizontal split at the most balanced tree boundary.
	total := 0
	for _, r := range roots {
		total += sz[r.ID]
	}
	best, bestDiff := 1, math.MaxInt
	run := sz[roots[0].ID]
	for k := 1; k < len(roots); k++ {
		if diff := abs(2*run - total); diff < bestDiff {
			bestDiff = diff
			best = k
		}
		run += sz[roots[k].ID]
	}
	left, right := roots[:best], roots[best:]
	holeSide := 0 // 0 none, 1 left, 2 right
	if hole != nil {
		holeSide = 2
		for _, r := range left {
			if containsNode(r, hole) {
				holeSide = 1
				break
			}
		}
	}
	switch holeSide {
	case 0:
		return f.newInner(ConcatHH, f.build(left, nil, sz), f.build(right, nil, sz))
	case 1:
		return f.newInner(ConcatVH, f.build(left, hole, sz), f.build(right, nil, sz))
	default:
		return f.newInner(ConcatHV, f.build(left, nil, sz), f.build(right, hole, sz))
	}
}

// children returns the child list of a tree node.
func children(n *tree.UNode) []*tree.UNode {
	var out []*tree.UNode
	for c := n.FirstChild; c != nil; c = c.NextSib {
		out = append(out, c)
	}
	return out
}

// containsNode reports whether target is within the subtree of n.
func containsNode(n, target *tree.UNode) bool {
	for x := target; x != nil; x = x.Parent {
		if x == n {
			return true
		}
	}
	return false
}

// chooseSplitForest picks a node w with children inside the subtree of r
// such that splitting the cluster into (context above w, children forest
// of w) is as balanced as possible: it walks down heavy children while
// the children forest still outweighs half the cluster.
func chooseSplitForest(r *tree.UNode, sz map[tree.NodeID]int) *tree.UNode {
	m := sz[r.ID]
	w := r
	bestW, bestDiff := r, math.MaxInt
	for {
		cw := sz[w.ID] - 1 // weight of w's children forest in the cluster
		if d := abs(2*cw - (m - 1)); d < bestDiff {
			bestDiff = d
			bestW = w
		}
		if 2*cw <= m {
			break
		}
		// Descend into the heaviest child that itself has children.
		var heavy *tree.UNode
		for c := w.FirstChild; c != nil; c = c.NextSib {
			if c.FirstChild == nil {
				continue
			}
			if heavy == nil || sz[c.ID] > sz[heavy.ID] {
				heavy = c
			}
		}
		if heavy == nil {
			break
		}
		w = heavy
	}
	return bestW
}

// chooseSplitContext picks a proper ancestor w of hole (within the
// subtree of r) balancing the split of the context cluster; the walk is
// restricted to the r→hole path because the lower part must keep the
// hole.
func chooseSplitContext(r, hole *tree.UNode, sz map[tree.NodeID]int) *tree.UNode {
	m := sz[r.ID]
	// Path from r to hole (exclusive of hole).
	var path []*tree.UNode
	for x := hole.Parent; x != nil; x = x.Parent {
		path = append(path, x)
		if x == r {
			break
		}
	}
	// path is bottom-up; walk top-down.
	bestW, bestDiff := r, math.MaxInt
	for i := len(path) - 1; i >= 0; i-- {
		w := path[i]
		cw := sz[w.ID] - 1
		if d := abs(2*cw - (m - 1)); d < bestDiff {
			bestDiff = d
			bestW = w
		}
		if 2*cw <= m {
			break
		}
	}
	return bestW
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
