package forest

import (
	"math"

	"repro/internal/tree"
)

// Forest maintains an unranked tree together with its balanced forest
// algebra term (the encoding ω of Lemma 7.4), under the edit operations
// of Definition 7.1. It also tracks which term nodes were created or
// modified since the last Drain, in bottom-up order, so that the dynamic
// engine can rebuild exactly the circuit boxes of the hollowing trunk
// (Lemma 7.3).
type Forest struct {
	Tree *tree.Unranked
	Root *Node

	// leafOf maps every tree node to its term leaf (aᵗ if childless, a□
	// otherwise); the bijection φ of Lemma 7.4.
	leafOf map[tree.NodeID]*Node
	// plugOp maps every tree node with children to the ⊙-node (ComposeVV
	// or ApplyVH) whose right subterm represents exactly its children
	// forest.
	plugOp map[tree.NodeID]*Node

	// created lists term nodes needing circuit-box (re)construction, in
	// an order where children precede parents.
	created []*Node
	// retired lists term nodes dropped from the term by path copying
	// since the last DrainRetired: the engine uses it to release the
	// attachments (boxes, indexes) of superseded trunk nodes eagerly.
	retired []*Node
	// prev maps a fresh node to the pre-batch node it path-copied (the
	// same term position, one edit earlier), resolved through intra-batch
	// chains; TrunkDelta.Prev hands it to consumers so signature-pruned
	// repair can compare a rebuilt trunk box against its predecessor.
	prev map[*Node]*Node

	// Height budget: rebuild a subterm when its height exceeds
	// HeightFactor·log₂(weight+1) + HeightBase (scapegoat rule).
	HeightFactor float64
	HeightBase   int

	// Rebuilds counts subterm rebuilds triggered by the height rule
	// (exposed for the amortization experiments).
	Rebuilds int
	// RebuiltWeight accumulates the total weight of rebuilt subterms.
	RebuiltWeight int
}

// New encodes the unranked tree as a balanced forest algebra term.
func New(t *tree.Unranked) *Forest {
	f := &Forest{
		Tree:         t,
		leafOf:       map[tree.NodeID]*Node{},
		plugOp:       map[tree.NodeID]*Node{},
		HeightFactor: 2.4,
		HeightBase:   10,
	}
	f.Root = f.buildCluster([]*tree.UNode{t.Root}, nil)
	return f
}

// record registers a node as created/modified for the dirty protocol.
func (f *Forest) record(n *Node) { f.created = append(f.created, n) }

// recordPrev notes that fresh supersedes old at the same term position.
// Chains within one batch are resolved at record time (entries always
// point at nodes that predate the batch, the ones consumers may hold
// attachments for), so a lookup is O(1) and a batch of k edits over one
// trunk maps its final copies to the pre-batch originals.
func (f *Forest) recordPrev(fresh, old *Node) {
	if f.prev == nil {
		f.prev = map[*Node]*Node{}
	}
	if orig, ok := f.prev[old]; ok {
		old = orig
	}
	f.prev[fresh] = old
}

// retire registers a node as dropped from the term. Shared subtrees are
// never retired — only the nodes a path copy or rebuild actually
// replaced. Nodes created and superseded within the same batch may be
// retired too; consumers treat unknown nodes as a no-op.
func (f *Forest) retire(n *Node) { f.retired = append(f.retired, n) }

// retireSubterm retires a whole subterm (used when a scapegoat rebuild
// replaces it with a freshly built cluster that shares nothing).
func (f *Forest) retireSubterm(n *Node) {
	if n == nil {
		return
	}
	f.retireSubterm(n.Left)
	f.retireSubterm(n.Right)
	f.retired = append(f.retired, n)
}

// DrainRetired returns the nodes dropped from the term since the last
// call and resets the list. Consumed by the dynamic engine right after
// Drain, to release superseded attachments without delay.
func (f *Forest) DrainRetired() []*Node {
	out := f.retired
	f.retired = nil
	return out
}

// Drain returns the nodes whose circuit boxes must be rebuilt, children
// before parents and deduplicated, and resets the dirty list. The
// returned slice includes all ancestors up to the root (their boxes
// depend on rebuilt children). Deduplication keeps the LAST occurrence:
// a scapegoat rebuild re-dirties ancestors after their first recording,
// and only the final position respects the children-first order.
func (f *Forest) Drain() []*Node {
	last := map[*Node]int{}
	for i, n := range f.created {
		last[n] = i
	}
	var out []*Node
	for i, n := range f.created {
		if last[n] == i && f.attached(n) {
			out = append(out, n)
		}
	}
	f.created = f.created[:0]
	return out
}

// attached reports whether the node is still part of the current term
// (edits may create nodes that a subsequent rebuild in the same batch
// discards).
func (f *Forest) attached(n *Node) bool {
	for x := n; ; x = x.Parent {
		if x.Parent == nil {
			return x == f.Root
		}
		if x.Parent.Left != x && x.Parent.Right != x {
			return false
		}
	}
}

// Leaf returns the term leaf of a tree node.
func (f *Forest) Leaf(id tree.NodeID) *Node { return f.leafOf[id] }

// heightBudget is the scapegoat threshold for a subterm of the given
// weight.
func (f *Forest) heightBudget(weight int) int {
	return int(f.HeightFactor*math.Log2(float64(weight+1))) + f.HeightBase
}

// clusterSizes computes the number of cluster nodes in each subtree of
// the cluster (children of the hole node are not part of the cluster).
func clusterSizes(roots []*tree.UNode, hole *tree.UNode) map[tree.NodeID]int {
	sz := map[tree.NodeID]int{}
	var rec func(n *tree.UNode) int
	rec = func(n *tree.UNode) int {
		s := 1
		if hole == nil || n.ID != hole.ID {
			for c := n.FirstChild; c != nil; c = c.NextSib {
				s += rec(c)
			}
		}
		sz[n.ID] = s
		return s
	}
	for _, r := range roots {
		rec(r)
	}
	return sz
}

// buildCluster builds a balanced term for the cluster consisting of the
// consecutive sibling subtrees rooted at roots, with the children forest
// of hole removed (hole nil for forest clusters). Every term node created
// is recorded for the dirty protocol; leafOf and plugOp entries for the
// contained tree nodes are (re)registered.
func (f *Forest) buildCluster(roots []*tree.UNode, hole *tree.UNode) *Node {
	sz := clusterSizes(roots, hole)
	return f.build(roots, hole, sz)
}

func (f *Forest) build(roots []*tree.UNode, hole *tree.UNode, sz map[tree.NodeID]int) *Node {
	if len(roots) == 1 {
		r := roots[0]
		if hole != nil && r.ID == hole.ID {
			return f.newLeafCtx(r)
		}
		if r.FirstChild == nil {
			return f.newLeafTree(r)
		}
		// Single tree with at least one cluster-internal edge: vertical
		// split at a node w chosen to balance the context above w against
		// the children forest of w.
		if hole == nil {
			w := chooseSplitForest(r, sz)
			// Recompute sizes for the sub-clusters: hollowing out w's
			// children changes the weights of its ancestors.
			ctx := f.buildCluster(roots, w)
			forestPart := f.buildCluster(children(w), nil)
			// newInner registers the ⊙VH node as plugOp[w] (w is ctx's hole).
			return f.newInner(ApplyVH, ctx, forestPart)
		}
		// Context cluster: w must be a proper ancestor of the hole so
		// that the children cluster of w still contains it.
		w := chooseSplitContext(r, hole, sz)
		upper := f.buildCluster(roots, w)
		lower := f.buildCluster(children(w), hole)
		// newInner registers the ⊙VV node as plugOp[w] (w is upper's hole).
		return f.newInner(ComposeVV, upper, lower)
	}
	// Horizontal split at the most balanced tree boundary.
	total := 0
	for _, r := range roots {
		total += sz[r.ID]
	}
	best, bestDiff := 1, math.MaxInt
	run := sz[roots[0].ID]
	for k := 1; k < len(roots); k++ {
		if diff := abs(2*run - total); diff < bestDiff {
			bestDiff = diff
			best = k
		}
		run += sz[roots[k].ID]
	}
	left, right := roots[:best], roots[best:]
	holeSide := 0 // 0 none, 1 left, 2 right
	if hole != nil {
		holeSide = 2
		for _, r := range left {
			if containsNode(r, hole) {
				holeSide = 1
				break
			}
		}
	}
	switch holeSide {
	case 0:
		return f.newInner(ConcatHH, f.build(left, nil, sz), f.build(right, nil, sz))
	case 1:
		return f.newInner(ConcatVH, f.build(left, hole, sz), f.build(right, nil, sz))
	default:
		return f.newInner(ConcatHV, f.build(left, nil, sz), f.build(right, hole, sz))
	}
}

// children returns the child list of a tree node.
func children(n *tree.UNode) []*tree.UNode {
	var out []*tree.UNode
	for c := n.FirstChild; c != nil; c = c.NextSib {
		out = append(out, c)
	}
	return out
}

// containsNode reports whether target is within the subtree of n.
func containsNode(n, target *tree.UNode) bool {
	for x := target; x != nil; x = x.Parent {
		if x == n {
			return true
		}
	}
	return false
}

// chooseSplitForest picks a node w with children inside the subtree of r
// such that splitting the cluster into (context above w, children forest
// of w) is as balanced as possible: it walks down heavy children while
// the children forest still outweighs half the cluster.
func chooseSplitForest(r *tree.UNode, sz map[tree.NodeID]int) *tree.UNode {
	m := sz[r.ID]
	w := r
	bestW, bestDiff := r, math.MaxInt
	for {
		cw := sz[w.ID] - 1 // weight of w's children forest in the cluster
		if d := abs(2*cw - (m - 1)); d < bestDiff {
			bestDiff = d
			bestW = w
		}
		if 2*cw <= m {
			break
		}
		// Descend into the heaviest child that itself has children.
		var heavy *tree.UNode
		for c := w.FirstChild; c != nil; c = c.NextSib {
			if c.FirstChild == nil {
				continue
			}
			if heavy == nil || sz[c.ID] > sz[heavy.ID] {
				heavy = c
			}
		}
		if heavy == nil {
			break
		}
		w = heavy
	}
	return bestW
}

// chooseSplitContext picks a proper ancestor w of hole (within the
// subtree of r) balancing the split of the context cluster; the walk is
// restricted to the r→hole path because the lower part must keep the
// hole.
func chooseSplitContext(r, hole *tree.UNode, sz map[tree.NodeID]int) *tree.UNode {
	m := sz[r.ID]
	// Path from r to hole (exclusive of hole).
	var path []*tree.UNode
	for x := hole.Parent; x != nil; x = x.Parent {
		path = append(path, x)
		if x == r {
			break
		}
	}
	// path is bottom-up; walk top-down.
	bestW, bestDiff := r, math.MaxInt
	for i := len(path) - 1; i >= 0; i-- {
		w := path[i]
		cw := sz[w.ID] - 1
		if d := abs(2*cw - (m - 1)); d < bestDiff {
			bestDiff = d
			bestW = w
		}
		if 2*cw <= m {
			break
		}
	}
	return bestW
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
