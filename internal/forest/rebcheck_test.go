package forest

import (
	"math/rand"
	"testing"
)

func TestScapegoatTriggersEventually(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ut := randomTree(rng, 50)
	f := New(ut)
	f.DrainDelta()
	// Grow a deep path via repeated first-child inserts: must trigger
	// rebuilds to keep the height budget.
	cur := ut.Root.ID
	for i := 0; i < 4000; i++ {
		v, err := f.InsertFirstChild(cur, "a")
		if err != nil {
			t.Fatal(err)
		}
		cur = v
		f.DrainDelta()
	}
	if f.Rebuilds == 0 {
		t.Fatal("scapegoat never triggered on adversarial growth")
	}
	if f.Root.Height > f.heightBudget(f.Root.Weight) {
		t.Fatalf("height %d over budget", f.Root.Height)
	}
	if err := DecodeTree(f.Root, f.Tree); err != nil {
		t.Fatal(err)
	}
	t.Logf("rebuilds=%d rebuiltWeight=%d height=%d n=%d", f.Rebuilds, f.RebuiltWeight, f.Root.Height, f.Tree.Size())
}
