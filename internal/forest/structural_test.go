package forest

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

// randomFragment builds a small random fragment tree for graft edits.
func randomFragment(rng *rand.Rand) *tree.Unranked {
	labels := []tree.Label{"a", "b", "c"}
	t := tree.NewUnranked(labels[rng.Intn(3)])
	ids := []tree.NodeID{t.Root.ID}
	for i := 0; i < rng.Intn(6); i++ {
		v, err := t.InsertFirstChild(ids[rng.Intn(len(ids))], labels[rng.Intn(3)])
		if err == nil {
			ids = append(ids, v.ID)
		}
	}
	return t
}

// applyRandomStructuralEdit performs one random edit — leaf or
// structural — through the Forest and reports whether one happened.
func applyRandomStructuralEdit(rng *rand.Rand, f *Forest) bool {
	nodes := f.Tree.Nodes()
	n := nodes[rng.Intn(len(nodes))]
	labels := []tree.Label{"a", "b", "c"}
	switch rng.Intn(9) {
	case 0:
		return f.Relabel(n.ID, labels[rng.Intn(3)]) == nil
	case 1:
		_, err := f.InsertFirstChild(n.ID, labels[rng.Intn(3)])
		return err == nil
	case 2:
		_, err := f.InsertRightSibling(n.ID, labels[rng.Intn(3)])
		return err == nil
	case 3:
		if !n.IsLeaf() {
			return false
		}
		return f.Delete(n.ID) == nil
	case 4:
		return f.DeleteSubtree(n.ID) == nil
	case 5, 6:
		dest := nodes[rng.Intn(len(nodes))]
		if rng.Intn(2) == 0 {
			return f.MoveSubtreeFirstChild(n.ID, dest.ID) == nil
		}
		return f.MoveSubtreeRightSibling(n.ID, dest.ID) == nil
	default:
		frag := randomFragment(rng)
		if rng.Intn(2) == 0 {
			_, err := f.InsertSubtreeFirstChild(n.ID, frag)
			return err == nil
		}
		_, err := f.InsertSubtreeRightSibling(n.ID, frag)
		return err == nil
	}
}

// TestStructuralEditsPreserveDecode is the structural-edit counterpart
// of TestEditsPreserveDecode: after every subtree insert/delete/move the
// term must still decode to the tree, satisfy the typing rules, keep the
// height budget at EVERY node, and drain a consistent trunk.
func TestStructuralEditsPreserveDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		ut := randomTree(rng, 1+rng.Intn(40))
		f := New(ut)
		f.DrainDelta()
		for step := 0; step < 50; step++ {
			if !applyRandomStructuralEdit(rng, f) {
				continue
			}
			if err := ValidateTerm(f.Root); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if err := DecodeTree(f.Root, f.Tree); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if f.Root.Weight != f.Tree.Size() {
				t.Fatalf("trial %d step %d: weight %d != size %d",
					trial, step, f.Root.Weight, f.Tree.Size())
			}
			if err := f.CheckBalanceDeep(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			d := f.DrainDelta()
			if len(d.Fresh) > 0 {
				pos := map[*Node]int{}
				for i, n := range d.Fresh {
					pos[n] = i
				}
				for i, n := range d.Fresh {
					for _, c := range []*Node{n.Left, n.Right} {
						if c == nil {
							continue
						}
						if j, ok := pos[c]; ok && j > i {
							t.Fatalf("trial %d step %d: child drained after parent", trial, step)
						}
					}
				}
			}
			// Every moved root must be attached, disjoint from Fresh, and
			// hold only nodes absent from Fresh and Retired.
			inFresh := map[*Node]bool{}
			for _, n := range d.Fresh {
				inFresh[n] = true
			}
			inRetired := map[*Node]bool{}
			for _, n := range d.Retired {
				inRetired[n] = true
			}
			for _, m := range d.Moved {
				if !f.attached(m) {
					t.Fatalf("trial %d step %d: moved root not attached", trial, step)
				}
				m.Walk(func(x *Node) {
					if inFresh[x] || inRetired[x] {
						t.Fatalf("trial %d step %d: moved subterm overlaps fresh/retired", trial, step)
					}
				})
			}
		}
	}
}

// TestMoveSubtreeSharesWholesale pins the reuse contract: moving a large
// subtree must report Moved roots covering nearly all of it, with a
// fresh-trunk footprint that does not scale with the subtree size.
func TestMoveSubtreeSharesWholesale(t *testing.T) {
	// A root with two children: a big subtree under x and a small one
	// under y; move x's subtree below y.
	ut := tree.NewUnranked("r")
	x, _ := ut.InsertFirstChild(ut.Root.ID, "x")
	y, _ := ut.InsertRightSibling(x.ID, "y")
	cur := x.ID
	for i := 0; i < 2000; i++ {
		v, err := ut.InsertFirstChild(cur, "a")
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			cur = v.ID
		}
	}
	f := New(ut)
	f.DrainDelta()
	if err := f.MoveSubtreeFirstChild(x.ID, y.ID); err != nil {
		t.Fatal(err)
	}
	if err := DecodeTree(f.Root, f.Tree); err != nil {
		t.Fatal(err)
	}
	d := f.DrainDelta()
	movedWeight := 0
	for _, m := range d.Moved {
		movedWeight += m.Weight
	}
	sub := f.Tree.SubtreeSize(x.ID)
	if movedWeight < sub/2 {
		t.Fatalf("moved weight %d does not cover subtree of %d nodes", movedWeight, sub)
	}
	if len(d.Fresh) > 200 {
		t.Fatalf("fresh trunk %d scales with subtree size %d", len(d.Fresh), sub)
	}
	t.Logf("subtree=%d movedWeight=%d movedRoots=%d fresh=%d retired=%d",
		sub, movedWeight, len(d.Moved), len(d.Fresh), len(d.Retired))
}

// TestDeepSkewStressTree repeatedly moves a growing subtree onto one end
// of a path — adversarial skew that must trigger scapegoat rebuilds and
// still keep every invariant, including the per-node height budget.
func TestDeepSkewStressTree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ut := randomTree(rng, 60)
	f := New(ut)
	f.DrainDelta()
	frag := tree.NewUnranked("s")
	_, _ = frag.InsertFirstChild(frag.Root.ID, "s")
	deep := ut.Root.ID
	for i := 0; i < 600; i++ {
		v, err := f.InsertSubtreeFirstChild(deep, frag)
		if err != nil {
			t.Fatal(err)
		}
		deep = v
		if i%7 == 3 {
			// Periodically move the whole deep chain under a random node.
			nodes := f.Tree.Nodes()
			dest := nodes[rng.Intn(len(nodes))]
			kids := f.Tree.Node(f.Tree.Root.ID).FirstChild
			if kids != nil && f.MoveSubtreeFirstChild(kids.ID, dest.ID) == nil && f.Tree.Node(deep) == nil {
				deep = f.Tree.Root.ID
			}
		}
		if f.Tree.Node(deep) == nil {
			deep = f.Tree.Root.ID
		}
		f.DrainDelta()
	}
	if f.Rebuilds == 0 {
		t.Fatal("deep-skew structural growth never triggered a rebuild")
	}
	if err := f.CheckBalanceDeep(); err != nil {
		t.Fatal(err)
	}
	if err := DecodeTree(f.Root, f.Tree); err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d rebuilds=%d rebuiltWeight=%d height=%d", f.Tree.Size(), f.Rebuilds, f.RebuiltWeight, f.Root.Height)
}

// TestWordRangeOps fuzzes the rope edits (MoveRange / InsertRange /
// DeleteRange / Concat) against a reference slice, checking content, ID
// stability of moved letters, and the height budget after every edit.
func TestWordRangeOps(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	labels := []tree.Label{"a", "b", "c"}
	w, err := NewWord([]tree.Label{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	refIDs, refLabels := w.Letters()
	w.DrainDelta()
	for step := 0; step < 1500; step++ {
		switch rng.Intn(4) {
		case 0: // MoveRange
			if len(refIDs) < 2 {
				continue
			}
			from := rng.Intn(len(refIDs))
			k := 1 + rng.Intn(len(refIDs)-from)
			if k == len(refIDs) {
				continue
			}
			dest := rng.Intn(len(refIDs)-k+1) - 1
			if err := w.MoveRange(from, k, dest); err != nil {
				t.Fatalf("step %d: MoveRange(%d,%d,%d): %v", step, from, k, dest, err)
			}
			mIDs := append([]tree.NodeID(nil), refIDs[from:from+k]...)
			mLabels := append([]tree.Label(nil), refLabels[from:from+k]...)
			refIDs = append(refIDs[:from], refIDs[from+k:]...)
			refLabels = append(refLabels[:from], refLabels[from+k:]...)
			refIDs = append(refIDs[:dest+1], append(mIDs, refIDs[dest+1:]...)...)
			refLabels = append(refLabels[:dest+1], append(mLabels, refLabels[dest+1:]...)...)
		case 1: // InsertRange
			pos := rng.Intn(len(refIDs) + 1)
			m := 1 + rng.Intn(5)
			ls := make([]tree.Label, m)
			for i := range ls {
				ls[i] = labels[rng.Intn(3)]
			}
			ids, err := w.InsertRange(pos, ls)
			if err != nil {
				t.Fatalf("step %d: InsertRange: %v", step, err)
			}
			refIDs = append(refIDs[:pos], append(append([]tree.NodeID(nil), ids...), refIDs[pos:]...)...)
			refLabels = append(refLabels[:pos], append(append([]tree.Label(nil), ls...), refLabels[pos:]...)...)
		case 2: // DeleteRange
			if len(refIDs) < 2 {
				continue
			}
			from := rng.Intn(len(refIDs))
			k := 1 + rng.Intn(len(refIDs)-from)
			if k == len(refIDs) {
				continue
			}
			if err := w.DeleteRange(from, k); err != nil {
				t.Fatalf("step %d: DeleteRange: %v", step, err)
			}
			refIDs = append(refIDs[:from], refIDs[from+k:]...)
			refLabels = append(refLabels[:from], refLabels[from+k:]...)
		default: // Concat
			m := 1 + rng.Intn(4)
			ls := make([]tree.Label, m)
			for i := range ls {
				ls[i] = labels[rng.Intn(3)]
			}
			ids, err := w.Concat(ls)
			if err != nil {
				t.Fatalf("step %d: Concat: %v", step, err)
			}
			refIDs = append(refIDs, ids...)
			refLabels = append(refLabels, ls...)
		}
		gotIDs, gotLabels := w.Letters()
		if len(gotIDs) != len(refIDs) || w.Len() != len(refIDs) {
			t.Fatalf("step %d: length %d/%d != %d", step, len(gotIDs), w.Len(), len(refIDs))
		}
		for i := range refIDs {
			if gotIDs[i] != refIDs[i] || gotLabels[i] != refLabels[i] {
				t.Fatalf("step %d: position %d: got (%d,%s), want (%d,%s)",
					step, i, gotIDs[i], gotLabels[i], refIDs[i], refLabels[i])
			}
		}
		if err := ValidateTerm(w.Root); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := w.CheckBalanceDeep(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		w.DrainDelta()
	}
}

// TestWordSplitAt checks the document split: the receiver keeps the
// prefix, the returned word holds the suffix, and both stay valid.
func TestWordSplitAt(t *testing.T) {
	w, err := NewWord([]tree.Label{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := w.SplitAt(2)
	if err != nil {
		t.Fatal(err)
	}
	_, pl := w.Letters()
	_, sl := w2.Letters()
	if len(pl) != 2 || pl[0] != "a" || pl[1] != "b" {
		t.Fatalf("prefix = %v", pl)
	}
	if len(sl) != 3 || sl[0] != "c" || sl[1] != "d" || sl[2] != "e" {
		t.Fatalf("suffix = %v", sl)
	}
	if _, err := w.SplitAt(0); err == nil {
		t.Fatal("SplitAt(0) should fail")
	}
	if _, err := w.SplitAt(2); err == nil {
		t.Fatal("SplitAt(len) should fail")
	}
}

// TestDeepSkewStressWord drives the rope from one end — repeated concat
// of small runs, then repeated front deletions — which must trigger
// rebalances while every invariant holds.
func TestDeepSkewStressWord(t *testing.T) {
	w, err := NewWord([]tree.Label{"a"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		if _, err := w.Concat([]tree.Label{"b", "c"}); err != nil {
			t.Fatal(err)
		}
		if err := w.CheckBalanceDeep(); err != nil {
			t.Fatalf("concat %d: %v", i, err)
		}
		w.DrainDelta()
	}
	for w.Len() > 2 {
		if err := w.DeleteRange(0, 2); err != nil {
			t.Fatal(err)
		}
		if err := w.CheckBalanceDeep(); err != nil {
			t.Fatalf("len %d: %v", w.Len(), err)
		}
		w.DrainDelta()
	}
	if w.Rebuilds == 0 {
		t.Fatal("one-ended rope growth never triggered a rebuild")
	}
	if err := ValidateTerm(w.Root); err != nil {
		t.Fatal(err)
	}
	t.Logf("rebuilds=%d len=%d height=%d", w.Rebuilds, w.Len(), w.Root.Height)
}
