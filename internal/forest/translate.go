package forest

import (
	"fmt"

	"repro/internal/tree"
	"repro/internal/tva"
)

// This file implements the automaton translations of Lemma 7.4 (Appendix
// E) and Corollary 8.4: an unranked stepwise TVA A over Λ becomes a
// binary TVA A′ over the term alphabet Λ′ whose satisfying assignments on
// the term equal those of A on the decoded tree (A,A′-faithfulness).
//
// Forest-typed term states are pairs (q1, q2): "scanning the roots of the
// represented forest takes the parent's child-scan from q1 to q2".
// Context-typed states are pairs of pairs ((q1, q2), (q3, q4)): "if the
// hole is filled by a forest taking a scan from q3 to q4, the whole
// context takes the outer scan from q1 to q2".
//
// Rather than materializing all |Q|⁴ + |Q|² states and O(|Q|⁶)
// transitions, the construction saturates only the reachable states
// (semi-naive evaluation with join indexes); the worst case matches the
// paper's bound and the reachable fragment is usually far smaller.

// Operator labels of the binary term alphabet.
var opLabels = []tree.Label{"+HH", "+HV", "+VH", ".VV", ".VH"}

// TermAlphabet returns the binary alphabet Λ′ for the given tree alphabet
// Λ: one tᵃ and one cᵃ label per a ∈ Λ, plus the five operators.
func TermAlphabet(alphabet []tree.Label) []tree.Label {
	out := make([]tree.Label, 0, 2*len(alphabet)+len(opLabels))
	for _, a := range alphabet {
		out = append(out, tree.Label("t:"+string(a)))
	}
	for _, a := range alphabet {
		out = append(out, tree.Label("c:"+string(a)))
	}
	return append(out, opLabels...)
}

// pairState is a forest-typed translated state.
type pairState struct{ a, b tva.State }

// quadState is a context-typed translated state: outer behaviour plus
// hole requirement.
type quadState struct{ o1, o2, h1, h2 tva.State }

// translator interns translated states and saturates transitions.
type translator struct {
	out *tva.Binary

	fid map[pairState]tva.State
	cid map[quadState]tva.State

	kinds []bool // true = context
	quads map[tva.State]quadState
	fwd   map[tva.State]pairState

	// Join indexes.
	forestByA map[tva.State][]tva.State // forest states by first component
	forestByB map[tva.State][]tva.State
	ctxByO1   map[tva.State][]tva.State // context states by outer first
	ctxByO2   map[tva.State][]tva.State // by outer second
	ctxByHole map[pairState][]tva.State // by hole pair
	ctxByOut  map[pairState][]tva.State // by outer pair
	forestByP map[pairState][]tva.State // forest states by their full pair
	worklist  []tva.State
	seenDelta map[tva.Triple]bool
}

func newTranslator() *translator {
	return &translator{
		out:       &tva.Binary{},
		fid:       map[pairState]tva.State{},
		cid:       map[quadState]tva.State{},
		quads:     map[tva.State]quadState{},
		fwd:       map[tva.State]pairState{},
		forestByA: map[tva.State][]tva.State{},
		forestByB: map[tva.State][]tva.State{},
		ctxByO1:   map[tva.State][]tva.State{},
		ctxByO2:   map[tva.State][]tva.State{},
		ctxByHole: map[pairState][]tva.State{},
		ctxByOut:  map[pairState][]tva.State{},
		forestByP: map[pairState][]tva.State{},
		seenDelta: map[tva.Triple]bool{},
	}
}

func (tr *translator) forestState(p pairState) tva.State {
	if s, ok := tr.fid[p]; ok {
		return s
	}
	s := tva.State(tr.out.NumStates)
	tr.out.NumStates++
	tr.fid[p] = s
	tr.fwd[s] = p
	tr.kinds = append(tr.kinds, false)
	tr.forestByA[p.a] = append(tr.forestByA[p.a], s)
	tr.forestByB[p.b] = append(tr.forestByB[p.b], s)
	tr.forestByP[p] = append(tr.forestByP[p], s)
	tr.worklist = append(tr.worklist, s)
	return s
}

func (tr *translator) ctxState(q quadState) tva.State {
	if s, ok := tr.cid[q]; ok {
		return s
	}
	s := tva.State(tr.out.NumStates)
	tr.out.NumStates++
	tr.cid[q] = s
	tr.quads[s] = q
	tr.kinds = append(tr.kinds, true)
	tr.ctxByO1[q.o1] = append(tr.ctxByO1[q.o1], s)
	tr.ctxByO2[q.o2] = append(tr.ctxByO2[q.o2], s)
	tr.ctxByHole[pairState{q.h1, q.h2}] = append(tr.ctxByHole[pairState{q.h1, q.h2}], s)
	tr.ctxByOut[pairState{q.o1, q.o2}] = append(tr.ctxByOut[pairState{q.o1, q.o2}], s)
	tr.worklist = append(tr.worklist, s)
	return s
}

func (tr *translator) addDelta(l tree.Label, left, right, out tva.State) {
	t := tva.Triple{Label: l, Left: left, Right: right, Out: out}
	if !tr.seenDelta[t] {
		tr.seenDelta[t] = true
		tr.out.Delta = append(tr.out.Delta, t)
	}
}

// saturate processes the worklist until no new states appear, generating
// all operator transitions among reachable states.
func (tr *translator) saturate() {
	for len(tr.worklist) > 0 {
		s := tr.worklist[len(tr.worklist)-1]
		tr.worklist = tr.worklist[:len(tr.worklist)-1]
		if tr.kinds[s] {
			tr.processContext(s)
		} else {
			tr.processForest(s)
		}
	}
}

// processForest generates every transition in which the forest state s
// can participate with already-known states.
func (tr *translator) processForest(s tva.State) {
	p := tr.fwd[s]
	// +HH with s on the left: (a,b) ⊕ (b,c) → (a,c).
	for _, s2 := range append([]tva.State(nil), tr.forestByA[p.b]...) {
		p2 := tr.fwd[s2]
		tr.addDelta("+HH", s, s2, tr.forestState(pairState{p.a, p2.b}))
	}
	// +HH with s on the right: (a,b) ⊕ (b,c) where s = (b,c).
	for _, s1 := range append([]tva.State(nil), tr.forestByB[p.a]...) {
		p1 := tr.fwd[s1]
		tr.addDelta("+HH", s1, s, tr.forestState(pairState{p1.a, p.b}))
	}
	// +HV with s on the left: (a,b) ⊕HV ((b,c),(h)) → ((a,c),(h)).
	for _, s2 := range append([]tva.State(nil), tr.ctxByO1[p.b]...) {
		q2 := tr.quads[s2]
		tr.addDelta("+HV", s, s2, tr.ctxState(quadState{p.a, q2.o2, q2.h1, q2.h2}))
	}
	// +VH with s on the right: ((a,b),(h)) ⊕VH (b,c) → ((a,c),(h)).
	for _, s1 := range append([]tva.State(nil), tr.ctxByO2[p.a]...) {
		q1 := tr.quads[s1]
		tr.addDelta("+VH", s1, s, tr.ctxState(quadState{q1.o1, p.b, q1.h1, q1.h2}))
	}
	// .VH with s on the right: ((a,b),(h1,h2)) ⊙VH (h1,h2) → (a,b).
	for _, s1 := range append([]tva.State(nil), tr.ctxByHole[p]...) {
		q1 := tr.quads[s1]
		tr.addDelta(".VH", s1, s, tr.forestState(pairState{q1.o1, q1.o2}))
	}
}

// processContext generates every transition in which the context state s
// can participate with already-known states.
func (tr *translator) processContext(s tva.State) {
	q := tr.quads[s]
	// +HV with s on the right.
	for _, s1 := range append([]tva.State(nil), tr.forestByB[q.o1]...) {
		p1 := tr.fwd[s1]
		tr.addDelta("+HV", s1, s, tr.ctxState(quadState{p1.a, q.o2, q.h1, q.h2}))
	}
	// +VH with s on the left.
	for _, s2 := range append([]tva.State(nil), tr.forestByA[q.o2]...) {
		p2 := tr.fwd[s2]
		tr.addDelta("+VH", s, s2, tr.ctxState(quadState{q.o1, p2.b, q.h1, q.h2}))
	}
	// .VV with s on the left: ((a,b),(h)) ⊙VV ((h),(h')) → ((a,b),(h')).
	for _, s2 := range append([]tva.State(nil), tr.ctxByOut[pairState{q.h1, q.h2}]...) {
		q2 := tr.quads[s2]
		tr.addDelta(".VV", s, s2, tr.ctxState(quadState{q.o1, q.o2, q2.h1, q2.h2}))
	}
	// .VV with s on the right.
	for _, s1 := range append([]tva.State(nil), tr.ctxByHole[pairState{q.o1, q.o2}]...) {
		q1 := tr.quads[s1]
		tr.addDelta(".VV", s1, s, tr.ctxState(quadState{q1.o1, q1.o2, q.h1, q.h2}))
	}
	// .VH with s on the left.
	for _, s2 := range append([]tva.State(nil), tr.forestByP[pairState{q.h1, q.h2}]...) {
		tr.addDelta(".VH", s, s2, tr.forestState(pairState{q.o1, q.o2}))
	}
}

// Translate implements the automaton translation of Lemma 7.4: given an
// unranked stepwise TVA A, it builds a binary TVA A′ over the term
// alphabet such that the encoding ω is A,A′-faithful. A′ has a single
// accepting state (before trimming) as the lemma requires.
func Translate(a *tva.Unranked) (*tva.Binary, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("forest: translate: %w", err)
	}
	// Normalize: fresh q0, qf with δ ∩ ({q0}×Q×{qf}) = {q0}×F×{qf}.
	q0 := tva.State(a.NumStates)
	qf := tva.State(a.NumStates + 1)
	delta := append([]tva.StepTriple(nil), a.Delta...)
	for _, f := range a.Final {
		delta = append(delta, tva.StepTriple{From: q0, Child: f, To: qf})
	}

	tr := newTranslator()
	tr.out.Alphabet = TermAlphabet(a.Alphabet)
	tr.out.Vars = a.Vars

	// Seed: initial rules for tᵃ and cᵃ leaves.
	initBy := a.InitByLabel()
	for _, lab := range a.Alphabet {
		for _, r := range initBy[lab] {
			// tᵃ: (q1, q2) such that (q1, p, q2) ∈ δ with p ∈ ι(a, Y).
			for _, d := range delta {
				if d.Child == r.State {
					s := tr.forestState(pairState{d.From, d.To})
					tr.out.Init = append(tr.out.Init,
						tva.InitRule{Label: tree.Label("t:" + string(lab)), Set: r.Set, State: s})
				}
			}
			// cᵃ: ((q1, q2), (q3, q4)) such that (q1, q4, q2) ∈ δ and
			// q3 ∈ ι(a, Y).
			for _, d := range delta {
				s := tr.ctxState(quadState{d.From, d.To, r.State, d.Child})
				tr.out.Init = append(tr.out.Init,
					tva.InitRule{Label: tree.Label("c:" + string(lab)), Set: r.Set, State: s})
			}
		}
	}
	tr.saturate()

	if s, ok := tr.fid[pairState{q0, qf}]; ok {
		tr.out.Final = []tva.State{s}
	}
	out := tr.out.Trim()
	return out, nil
}

// TranslateWord implements Corollary 8.4: a WVA becomes a binary TVA over
// the word-term alphabet ({tᵃ} plus ⊕HH) with O(|Q|²) states and O(|Q|³)
// transitions. Words are encoded as balanced ⊕HH terms over their
// letters (see Word); the empty word is not representable.
func TranslateWord(a *tva.WVA) (*tva.Binary, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("forest: translate word: %w", err)
	}
	// Normalize to a single initial and a single final state.
	q0 := tva.State(a.NumStates)
	qf := tva.State(a.NumStates + 1)
	isInit := map[tva.State]bool{}
	for _, q := range a.Initial {
		isInit[q] = true
	}
	isFinal := map[tva.State]bool{}
	for _, q := range a.Final {
		isFinal[q] = true
	}
	trans := append([]tva.WTrans(nil), a.Trans...)
	for _, t := range a.Trans {
		if isInit[t.From] {
			trans = append(trans, tva.WTrans{From: q0, Label: t.Label, Set: t.Set, To: t.To})
		}
		if isFinal[t.To] {
			trans = append(trans, tva.WTrans{From: t.From, Label: t.Label, Set: t.Set, To: qf})
		}
		if isInit[t.From] && isFinal[t.To] {
			trans = append(trans, tva.WTrans{From: q0, Label: t.Label, Set: t.Set, To: qf})
		}
	}

	tr := newTranslator()
	for _, lab := range a.Alphabet {
		tr.out.Alphabet = append(tr.out.Alphabet, tree.Label("t:"+string(lab)))
	}
	tr.out.Alphabet = append(tr.out.Alphabet, "+HH")
	tr.out.Vars = a.Vars
	for _, t := range trans {
		s := tr.forestState(pairState{t.From, t.To})
		tr.out.Init = append(tr.out.Init,
			tva.InitRule{Label: tree.Label("t:" + string(t.Label)), Set: t.Set, State: s})
	}
	tr.saturate()
	if s, ok := tr.fid[pairState{q0, qf}]; ok {
		tr.out.Final = []tva.State{s}
	}
	return tr.out.Trim(), nil
}
