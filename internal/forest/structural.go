package forest

import (
	"fmt"

	"repro/internal/tree"
)

// Structural edits: subtree insert (graft), subtree delete, subtree
// move, and the O(n) bulk load. They generalize the leaf edits of
// Definition 7.1 from splicing a single fresh leaf to splicing a whole
// subterm, with the SAME publication discipline: path copying along the
// touched trunk, sharing everything else, scapegoat rebuilds when a
// height budget is exceeded.
//
// The heart is subterm EXTRACTION: given the root n of a tree subtree
// S(n), carve a forest-typed term `moved` that represents exactly S(n)
// out of the current term, leaving a term `rest` for the remaining
// document — creating only O(extraction-spine) fresh nodes and sharing
// every untouched chunk of BOTH sides wholesale. The correctness rests
// on the cluster invariant: every subterm's piece decodes to consecutive
// sibling subtrees minus (if context-typed) one hole node's children
// forest. A complete subtree S(n) therefore never straddles a horizontal
// split, and the only way it can be torn apart is a vertical operator
// whose hole lies INSIDE S(n) — the split cases below, which stitch the
// two parts back together with one fresh vertical node while sharing the
// plugged forest wholesale.
//
// Extraction never rebuilds (rebuilds read the underlying tree, which
// must first be brought consistent); fresh extraction-spine nodes that
// bust their height budget are collected and repaired afterwards by
// editCore.structuralFixup. The ordering invariant for every structural
// edit is therefore: (1) tree edit, (2) extraction — pure term surgery,
// (3) insertion splice, (4) deferred scapegoat fixups.

// extractor holds the per-edit state of one subterm extraction.
type extractor struct {
	f *Forest
	n tree.NodeID // root of the extracted tree subtree

	// onPath marks the term ancestors of leafOf[n] (inclusive), captured
	// BEFORE any surgery: it steers the descent.
	onPath map[*Node]bool
	// memo caches subtree-membership verdicts per tree node; one edit's
	// membership tests amortize to O(tree depth) total.
	memo map[tree.NodeID]bool
	// frag resolves tree nodes already purged from the tree map (subtree
	// delete runs the tree edit first); nil for moves.
	frag map[tree.NodeID]*tree.UNode

	// cands collects fresh spine nodes that exceed their height budget,
	// bottom-up; structuralFixup repairs them after the splice.
	cands []*Node
	// movedShared collects the maximal wholesale-shared chunks inside the
	// extracted term — the roots TrunkDelta.Moved reports so consumers
	// keep (and count) their frozen attachments.
	movedShared []*Node
}

func (f *Forest) newExtractor(n tree.NodeID, frag map[tree.NodeID]*tree.UNode) *extractor {
	ex := &extractor{
		f:      f,
		n:      n,
		onPath: map[*Node]bool{},
		memo:   map[tree.NodeID]bool{},
		frag:   frag,
	}
	for x := f.leafOf[n]; x != nil; x = x.Parent {
		ex.onPath[x] = true
	}
	return ex
}

func (ex *extractor) node(id tree.NodeID) *tree.UNode {
	if ex.frag != nil {
		if u, ok := ex.frag[id]; ok {
			return u
		}
	}
	return ex.f.Tree.Node(id)
}

// inS reports whether tree node id lies in S(n), by walking the parent
// chain with memoization. Subtree moves relocate n but not the relative
// membership of its descendants, so running after the tree edit is safe.
func (ex *extractor) inS(id tree.NodeID) bool {
	if id == ex.n {
		return true
	}
	if v, ok := ex.memo[id]; ok {
		return v
	}
	var chain []tree.NodeID
	verdict := false
	for u := ex.node(id); u != nil; u = u.Parent {
		if u.ID == ex.n {
			verdict = true
			break
		}
		if v, ok := ex.memo[u.ID]; ok {
			verdict = v
			break
		}
		chain = append(chain, u.ID)
	}
	for _, c := range chain {
		ex.memo[c] = verdict
	}
	return verdict
}

// join allocates a fresh inner node for the rest spine, tracking prev
// hints and scapegoat candidates.
func (ex *extractor) join(op Op, l, r *Node, old *Node) *Node {
	nn := ex.f.newInner(op, l, r)
	if old != nil {
		ex.f.recordPrev(nn, old)
	}
	if nn.Height > ex.f.heightBudget(nn.Weight) {
		ex.cands = append(ex.cands, nn)
	}
	return nn
}

// concatOp is the horizontal concatenation matching the operand types.
func concatOp(l, r *Node) Op {
	switch {
	case l.IsContext():
		return ConcatVH
	case r.IsContext():
		return ConcatHV
	default:
		return ConcatHH
	}
}

// run extracts S(n) out of the current term: the remaining document
// becomes the new f.Root and the forest-typed term for S(n) is returned.
// n must not be the document root (the tree layer already rejects that),
// so the rest side is never empty.
func (ex *extractor) run() *Node {
	rest, moved := ex.extractF(ex.f.Root)
	if rest == nil {
		panic("forest: extraction emptied the document")
	}
	ex.f.Root = rest
	rest.Parent = nil
	return moved
}

// extractF extracts S(n) from the subterm x.
// Precondition: S(n) ⊆ piece(x) (in particular x's hole, if any, is
// outside S(n)) and leafOf[n] is under x. Returns (rest, moved): moved
// is forest-typed and decodes exactly to S(n); rest decodes to
// piece(x) \ S(n), keeps x's algebra type, and is nil iff that set is
// empty (only possible when x is forest-typed — a context keeps at least
// its hole leaf).
func (ex *extractor) extractF(x *Node) (rest, moved *Node) {
	if x == ex.f.leafOf[ex.n] {
		// piece(x) = {n}: n is a childless leaf taken wholesale. (If n had
		// children, its a□ leaf would have been captured by the wholesale
		// or split case at its plug operator above.)
		if x.Op != LeafTree {
			panic("forest: extract reached a context leaf")
		}
		ex.movedShared = append(ex.movedShared, x)
		return nil, x
	}
	switch x.Op {
	case ConcatHH, ConcatHV, ConcatVH:
		// S(n) is a complete subtree: it lies wholly on one side of any
		// horizontal split.
		if ex.onPath[x.Left] {
			r, moved := ex.extractF(x.Left)
			ex.f.retire(x)
			if r == nil {
				return x.Right, moved
			}
			return ex.join(concatOp(r, x.Right), r, x.Right, x), moved
		}
		r, moved := ex.extractF(x.Right)
		ex.f.retire(x)
		if r == nil {
			return x.Left, moved
		}
		return ex.join(concatOp(x.Left, r), x.Left, r, x), moved

	case ApplyVH, ComposeVV:
		if x.Op == ApplyVH && x.Left == ex.f.leafOf[ex.n] {
			// x = ⊙VH(n□, children forest of n): piece(x) = S(n) exactly —
			// take the whole plug wholesale.
			ex.movedShared = append(ex.movedShared, x)
			return nil, x
		}
		if ex.onPath[x.Right] {
			// n is inside the plugged part.
			r, moved := ex.extractF(x.Right)
			ex.f.retire(x)
			if r == nil {
				// Only possible for ⊙VH: the hole node w loses its entire
				// children forest (n was its only child) — close the hole.
				if x.Op != ApplyVH {
					panic("forest: composition lost its lower context")
				}
				w := x.Left.HoleNode
				delete(ex.f.plugOp, w)
				return ex.f.retypeHolePath(x.Left, w), moved
			}
			return ex.join(x.Op, x.Left, r, x), moved
		}
		// n is inside the upper context x.Left (hole w).
		w := x.Left.HoleNode
		if ex.inS(w) {
			// The hole is inside S(n): the extraction must SPLIT x.Left and
			// carry the plugged part along with the moved subtree.
			if x.Op != ApplyVH {
				// A ⊙VV here would put x's own hole (inside w's children
				// forest, hence inside S(n)) in S(n), contradicting
				// S(n) ⊆ piece(x).
				panic("forest: split at a vertical composition")
			}
			restL, movedCtx := ex.extractSplit(x.Left)
			ex.movedShared = append(ex.movedShared, x.Right)
			moved := ex.f.newInner(ApplyVH, movedCtx, x.Right)
			if moved.Height > ex.f.heightBudget(moved.Weight) {
				ex.cands = append(ex.cands, moved)
			}
			ex.f.retire(x)
			return restL, moved
		}
		r, moved := ex.extractF(x.Left)
		ex.f.retire(x)
		if r == nil {
			panic("forest: context extraction dropped its hole")
		}
		return ex.join(x.Op, r, x.Right, x), moved
	}
	panic(fmt.Sprintf("forest: extract reached foreign leaf %v", x.Op))
}

// extractSplit extracts the part of S(n) visible in the context x.
// Precondition: x is context-typed, its hole h lies INSIDE S(n), and
// n ∈ piece(x). Returns (rest, movedCtx): movedCtx is context-typed with
// hole h and decodes to S(n) ∩ piece(x) (n's subtree truncated at h's
// children); rest is forest-typed — the hole leaves with movedCtx — and
// decodes to piece(x) \ S(n), nil iff empty.
func (ex *extractor) extractSplit(x *Node) (rest, movedCtx *Node) {
	switch x.Op {
	case LeafCtx:
		// piece(x) = {x.TreeID} ∋ n, so this is n□ itself (and n = h).
		if x != ex.f.leafOf[ex.n] {
			panic("forest: split reached a foreign context leaf")
		}
		ex.movedShared = append(ex.movedShared, x)
		return nil, x

	case ConcatHV:
		// The hole (and with it n, an ancestor of it) is on the right.
		if !ex.onPath[x.Right] {
			panic("forest: split lost the hole path")
		}
		r, movedCtx := ex.extractSplit(x.Right)
		ex.f.retire(x)
		if r == nil {
			return x.Left, movedCtx
		}
		return ex.join(ConcatHH, x.Left, r, x), movedCtx

	case ConcatVH:
		if !ex.onPath[x.Left] {
			panic("forest: split lost the hole path")
		}
		r, movedCtx := ex.extractSplit(x.Left)
		ex.f.retire(x)
		if r == nil {
			return x.Right, movedCtx
		}
		return ex.join(ConcatHH, r, x.Right, x), movedCtx

	case ComposeVV:
		// x = upper (hole w) ⊙VV lower (hole h).
		if ex.onPath[x.Right] {
			// n is strictly below w, inside the lower context.
			r, movedCtx := ex.extractSplit(x.Right)
			ex.f.retire(x)
			if r == nil {
				// w's whole children forest moved: close its hole.
				w := x.Left.HoleNode
				delete(ex.f.plugOp, w)
				return ex.f.retypeHolePath(x.Left, w), movedCtx
			}
			return ex.join(ApplyVH, x.Left, r, x), movedCtx
		}
		// n is in the upper context; then w ∈ S(n) (n is an ancestor of h,
		// which lies below w), so the upper context splits too and w's
		// plugged part travels with the moved side, shared wholesale.
		restL, movedL := ex.extractSplit(x.Left)
		ex.movedShared = append(ex.movedShared, x.Right)
		movedCtx = ex.f.newInner(ComposeVV, movedL, x.Right)
		if movedCtx.Height > ex.f.heightBudget(movedCtx.Weight) {
			ex.cands = append(ex.cands, movedCtx)
		}
		ex.f.retire(x)
		return restL, movedCtx
	}
	panic(fmt.Sprintf("forest: split reached non-context operator %v", x.Op))
}

// InsertSubtreeFirstChild implements insertSub(n, F): a copy of the
// fragment tree F becomes (under fresh node IDs) the first child subtree
// of n. A balanced term for the fragment is bulk-built in O(|F|) and
// spliced in by one path copy — total cost O(|F| + log n). Returns the
// tree ID of the fragment copy's root.
func (f *Forest) InsertSubtreeFirstChild(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, error) {
	v, err := f.Tree.GraftFirstChild(id, frag)
	if err != nil {
		return 0, err
	}
	s := f.buildCluster([]*tree.UNode{v}, nil)
	f.spliceSubtermFirstChild(id, s)
	return v.ID, nil
}

// InsertSubtreeRightSibling implements insertSubR(n, F): a copy of the
// fragment tree F becomes the right-sibling subtree of n.
func (f *Forest) InsertSubtreeRightSibling(id tree.NodeID, frag *tree.Unranked) (tree.NodeID, error) {
	v, err := f.Tree.GraftRightSibling(id, frag)
	if err != nil {
		return 0, err
	}
	s := f.buildCluster([]*tree.UNode{v}, nil)
	f.spliceSubtermRightSibling(id, s)
	return v.ID, nil
}

// DeleteSubtree implements deleteSub(n): the whole subtree of n is
// removed. The extraction spine costs O(log n) fresh nodes; retiring the
// m dropped term nodes is Ω(m) inherently (each has engine attachments
// to release).
func (f *Forest) DeleteSubtree(id tree.NodeID) error {
	fragRoot, _, err := f.Tree.DeleteSubtree(id)
	if err != nil {
		return err
	}
	frag := map[tree.NodeID]*tree.UNode{}
	var walk func(u *tree.UNode)
	walk = func(u *tree.UNode) {
		frag[u.ID] = u
		for c := u.FirstChild; c != nil; c = c.NextSib {
			walk(c)
		}
	}
	walk(fragRoot)
	ex := f.newExtractor(id, frag)
	moved := ex.run()
	f.retireSubterm(moved)
	for fid := range frag {
		delete(f.leafOf, fid)
		delete(f.plugOp, fid)
	}
	f.structuralFixup(ex.cands)
	return nil
}

// MoveSubtreeFirstChild implements moveSub(n, d): the subtree of n is
// detached and reattached as the first child subtree of d. The term side
// extracts S(n) sharing its chunks wholesale (TrunkDelta.Moved reports
// them) and splices it at the destination: O(log n + boundary) fresh
// nodes, independent of |S(n)|.
func (f *Forest) MoveSubtreeFirstChild(id, dest tree.NodeID) error {
	if err := f.Tree.MoveSubtreeFirstChild(id, dest); err != nil {
		return err
	}
	f.moveTerm(id, dest, (*Forest).spliceSubtermFirstChild)
	return nil
}

// MoveSubtreeRightSibling implements moveSubR(n, d): the subtree of n is
// detached and reattached as the right-sibling subtree of d.
func (f *Forest) MoveSubtreeRightSibling(id, dest tree.NodeID) error {
	if err := f.Tree.MoveSubtreeRightSibling(id, dest); err != nil {
		return err
	}
	f.moveTerm(id, dest, (*Forest).spliceSubtermRightSibling)
	return nil
}

func (f *Forest) moveTerm(id, dest tree.NodeID, splice func(*Forest, tree.NodeID, *Node)) {
	ex := f.newExtractor(id, nil)
	moved := ex.run()
	splice(f, dest, moved)
	for _, r := range ex.movedShared {
		f.recordMoved(r)
	}
	f.structuralFixup(append(ex.cands, moved))
}
