package forest

import (
	"fmt"

	"repro/internal/tree"
)

// Word maintains a nonempty word as a balanced ⊕HH-only forest algebra
// term over its letters (the word specialization of Section 8 /
// Corollary 8.4: a word is a forest of single-node trees). Letters carry
// stable IDs so that assignments survive edits at other positions. The
// word shares the whole splice/rebalance/dirty machinery with Forest
// through the embedded editCore: edits publish fresh nodes along the
// trunk by path copying and share untouched subtrees, so circuit boxes
// attached to superseded nodes stay valid for concurrent readers of
// older versions. The structural edits (range move/insert/delete/concat
// and the document split, see bulk.go) are rope split/join over the same
// core.
type Word struct {
	editCore

	leafOf map[tree.NodeID]*Node
	nextID tree.NodeID
	size   int

	// ropeCands collects fresh rope-join nodes exceeding their height
	// budget during one structural edit; drained into structuralFixup.
	ropeCands []*Node
}

// NewWord builds the balanced term for the given nonempty word. This is
// the word bulk load: one O(n) balanced build instead of n inserts —
// BulkLoadWord is the documented alias.
func NewWord(letters []tree.Label) (*Word, error) {
	if len(letters) == 0 {
		return nil, fmt.Errorf("forest: the empty word has no term encoding")
	}
	w := &Word{
		editCore: editCore{HeightFactor: 1.4, HeightBase: 6},
		leafOf:   map[tree.NodeID]*Node{},
	}
	w.owner = w
	leaves := make([]*Node, len(letters))
	for i, l := range letters {
		leaves[i] = w.newLetter(l)
	}
	w.Root = w.buildBalanced(leaves)
	w.size = len(letters)
	return w, nil
}

// BulkLoadWord builds the balanced term for a whole word directly — the
// structural-edit counterpart of n sequential inserts.
func BulkLoadWord(letters []tree.Label) (*Word, error) { return NewWord(letters) }

func (w *Word) newLetter(l tree.Label) *Node {
	n := &Node{Op: LeafTree, Label: l, TreeID: w.nextID, Weight: 1, HoleNode: tree.InvalidNode}
	w.leafOf[n.TreeID] = n
	w.nextID++
	w.record(n)
	return n
}

// Len returns the current word length.
func (w *Word) Len() int { return w.size }

// Leaf returns the term leaf of a letter ID.
func (w *Word) Leaf(id tree.NodeID) *Node { return w.leafOf[id] }

// Letters returns the word as (IDs, labels) in order.
func (w *Word) Letters() ([]tree.NodeID, []tree.Label) {
	ids := make([]tree.NodeID, 0, w.size)
	labels := make([]tree.Label, 0, w.size)
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.IsLeaf() {
			ids = append(ids, n.TreeID)
			labels = append(labels, n.Label)
			return
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(w.Root)
	return ids, labels
}

// IDAt returns the letter ID at 0-based position i, navigating by
// subtree weights in O(log n).
func (w *Word) IDAt(i int) (tree.NodeID, error) {
	if i < 0 || i >= w.size {
		return 0, fmt.Errorf("forest: position %d out of range [0,%d)", i, w.size)
	}
	n := w.Root
	for !n.IsLeaf() {
		if i < n.Left.Weight {
			n = n.Left
		} else {
			i -= n.Left.Weight
			n = n.Right
		}
	}
	return n.TreeID, nil
}

func (w *Word) buildBalanced(leaves []*Node) *Node {
	if len(leaves) == 1 {
		return leaves[0]
	}
	mid := len(leaves) / 2
	return w.newInner(w.buildBalanced(leaves[:mid]), w.buildBalanced(leaves[mid:]))
}

func (w *Word) newInner(l, r *Node) *Node {
	n := &Node{Op: ConcatHH, Left: l, Right: r}
	l.Parent = n
	r.Parent = n
	n.update()
	w.record(n)
	return n
}

// joinInner is the editCore allocation hook (termOwner); a word term is
// ⊕HH-only, so the operator is fixed.
func (w *Word) joinInner(op Op, l, r *Node) *Node {
	if op != ConcatHH {
		panic("forest: non-⊕HH operator in a word term")
	}
	return w.newInner(l, r)
}

// rebuildSubterm rebuilds the subterm over its letter leaves, which are
// reused (their labels, and hence their circuit boxes, are unchanged),
// then publishes the balanced replacement by path copying (termOwner
// hook).
func (w *Word) rebuildSubterm(t *Node) {
	w.Rebuilds++
	w.RebuiltWeight += t.Weight
	var leaves []*Node
	var rec func(x *Node)
	rec = func(x *Node) {
		if x.IsLeaf() {
			leaves = append(leaves, x)
			return
		}
		rec(x.Left)
		rec(x.Right)
		w.retire(x) // inner nodes are replaced; the letter leaves are reused
	}
	rec(t)
	p, wasLeft := slotOf(t)
	nt := w.buildBalanced(leaves)
	w.spliceUp(p, wasLeft, nt)
}

// Relabel replaces the letter with the given ID: a fresh leaf with the
// same stable ID takes the old one's place.
func (w *Word) Relabel(id tree.NodeID, l tree.Label) error {
	old, ok := w.leafOf[id]
	if !ok {
		return fmt.Errorf("forest: letter %d does not exist", id)
	}
	p, wasLeft := slotOf(old)
	leaf := &Node{Op: LeafTree, Label: l, TreeID: id, Weight: 1, HoleNode: tree.InvalidNode}
	w.leafOf[id] = leaf
	w.record(leaf)
	w.recordPrev(leaf, old)
	w.retire(old)
	w.spliceUp(p, wasLeft, leaf)
	return nil
}

// InsertAfter inserts a new letter right after the letter with the given
// ID, returning the new letter's ID.
func (w *Word) InsertAfter(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	return w.insertBeside(id, l, false)
}

// InsertBefore inserts a new letter right before the letter with the
// given ID (needed to prepend at position 0).
func (w *Word) InsertBefore(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	return w.insertBeside(id, l, true)
}

func (w *Word) insertBeside(id tree.NodeID, l tree.Label, before bool) (tree.NodeID, error) {
	s, ok := w.leafOf[id]
	if !ok {
		return 0, fmt.Errorf("forest: letter %d does not exist", id)
	}
	p, wasLeft := slotOf(s)
	lv := w.newLetter(l)
	var nn *Node
	if before {
		nn = w.newInner(lv, s)
	} else {
		nn = w.newInner(s, lv)
	}
	w.size++
	w.spliceUp(p, wasLeft, nn)
	return lv.TreeID, nil
}

// Delete removes the letter with the given ID; the word must stay
// nonempty.
func (w *Word) Delete(id tree.NodeID) error {
	s, ok := w.leafOf[id]
	if !ok {
		return fmt.Errorf("forest: letter %d does not exist", id)
	}
	if w.size == 1 {
		return fmt.Errorf("forest: cannot delete the last letter")
	}
	p := s.Parent
	sibling := p.Left
	if sibling == s {
		sibling = p.Right
	}
	gp, wasLeft := slotOf(p)
	delete(w.leafOf, id)
	w.size--
	w.retire(s)
	w.retire(p)
	w.spliceUp(gp, wasLeft, sibling)
	return nil
}
