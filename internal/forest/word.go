package forest

import (
	"fmt"
	"math"

	"repro/internal/tree"
)

// Word maintains a nonempty word as a balanced ⊕HH-only forest algebra
// term over its letters (the word specialization of Section 8 /
// Corollary 8.4: a word is a forest of single-node trees). Letters carry
// stable IDs so that assignments survive edits at other positions. The
// supported edits are the usual local ones: insert a letter, delete a
// letter, replace (relabel) a letter. Like Forest, edits publish fresh
// nodes along the trunk by path copying and share untouched subtrees, so
// circuit boxes attached to superseded nodes stay valid for concurrent
// readers of older versions.
type Word struct {
	Root *Node

	leafOf  map[tree.NodeID]*Node
	nextID  tree.NodeID
	size    int
	created []*Node
	retired []*Node
	prev    map[*Node]*Node // see Forest.recordPrev

	HeightFactor float64
	HeightBase   int
	Rebuilds     int
}

// NewWord builds the balanced term for the given nonempty word.
func NewWord(letters []tree.Label) (*Word, error) {
	if len(letters) == 0 {
		return nil, fmt.Errorf("forest: the empty word has no term encoding")
	}
	w := &Word{
		leafOf:       map[tree.NodeID]*Node{},
		HeightFactor: 1.4,
		HeightBase:   6,
	}
	leaves := make([]*Node, len(letters))
	for i, l := range letters {
		leaves[i] = w.newLetter(l)
	}
	w.Root = w.buildBalanced(leaves)
	w.size = len(letters)
	return w, nil
}

func (w *Word) newLetter(l tree.Label) *Node {
	n := &Node{Op: LeafTree, Label: l, TreeID: w.nextID, Weight: 1, HoleNode: tree.InvalidNode}
	w.leafOf[n.TreeID] = n
	w.nextID++
	w.record(n)
	return n
}

func (w *Word) record(n *Node) { w.created = append(w.created, n) }

func (w *Word) retire(n *Node) { w.retired = append(w.retired, n) }

// recordPrev mirrors Forest.recordPrev (chain-resolved reuse hints).
func (w *Word) recordPrev(fresh, old *Node) {
	if w.prev == nil {
		w.prev = map[*Node]*Node{}
	}
	if orig, ok := w.prev[old]; ok {
		old = orig
	}
	w.prev[fresh] = old
}

// DrainDelta mirrors Forest.DrainDelta: one immutable, replayable
// TrunkDelta per batch for the dynamic engine.
func (w *Word) DrainDelta() TrunkDelta {
	fresh := w.Drain()
	return TrunkDelta{Fresh: fresh, Prev: prevSlice(fresh, w.prev), Retired: w.DrainRetired(), Root: w.Root}
}

// DrainRetired mirrors Forest.DrainRetired for the dynamic engine.
func (w *Word) DrainRetired() []*Node {
	out := w.retired
	w.retired = nil
	return out
}

// Drain mirrors Forest.Drain for the dynamic engine.
func (w *Word) Drain() []*Node {
	last := map[*Node]int{}
	for i, n := range w.created {
		last[n] = i
	}
	var out []*Node
	for i, n := range w.created {
		if last[n] == i && w.attached(n) {
			out = append(out, n)
		}
	}
	w.created = w.created[:0]
	return out
}

func (w *Word) attached(n *Node) bool {
	for x := n; ; x = x.Parent {
		if x.Parent == nil {
			return x == w.Root
		}
		if x.Parent.Left != x && x.Parent.Right != x {
			return false
		}
	}
}

// TermRoot returns the root of the term (dynamic-engine interface).
func (w *Word) TermRoot() *Node { return w.Root }

// Rebalances returns the number of scapegoat rebuilds performed so far
// (dynamic-engine interface).
func (w *Word) Rebalances() int { return w.Rebuilds }

// Len returns the current word length.
func (w *Word) Len() int { return w.size }

// Leaf returns the term leaf of a letter ID.
func (w *Word) Leaf(id tree.NodeID) *Node { return w.leafOf[id] }

// Letters returns the word as (IDs, labels) in order.
func (w *Word) Letters() ([]tree.NodeID, []tree.Label) {
	ids := make([]tree.NodeID, 0, w.size)
	labels := make([]tree.Label, 0, w.size)
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.IsLeaf() {
			ids = append(ids, n.TreeID)
			labels = append(labels, n.Label)
			return
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(w.Root)
	return ids, labels
}

// IDAt returns the letter ID at 0-based position i, navigating by
// subtree weights in O(log n).
func (w *Word) IDAt(i int) (tree.NodeID, error) {
	if i < 0 || i >= w.size {
		return 0, fmt.Errorf("forest: position %d out of range [0,%d)", i, w.size)
	}
	n := w.Root
	for !n.IsLeaf() {
		if i < n.Left.Weight {
			n = n.Left
		} else {
			i -= n.Left.Weight
			n = n.Right
		}
	}
	return n.TreeID, nil
}

func (w *Word) buildBalanced(leaves []*Node) *Node {
	if len(leaves) == 1 {
		return leaves[0]
	}
	mid := len(leaves) / 2
	return w.newInner(w.buildBalanced(leaves[:mid]), w.buildBalanced(leaves[mid:]))
}

func (w *Word) newInner(l, r *Node) *Node {
	n := &Node{Op: ConcatHH, Left: l, Right: r}
	l.Parent = n
	r.Parent = n
	n.update()
	w.record(n)
	return n
}

func (w *Word) heightBudget(weight int) int {
	return int(w.HeightFactor*math.Log2(float64(weight+1))) + w.HeightBase
}

// spliceUp publishes repl in place of the child slot (p, wasLeft) by
// path copying, mirroring Forest.spliceUp: fresh ⊕HH copies up to the
// root, shared siblings, scapegoat rule applied to the fresh path.
func (w *Word) spliceUp(p *Node, wasLeft bool, repl *Node) {
	var scapegoat *Node
	if repl.Height > w.heightBudget(repl.Weight) {
		scapegoat = repl
	}
	for p != nil {
		np, nwasLeft := p.Parent, p.Parent != nil && p.Parent.Left == p
		var nn *Node
		if wasLeft {
			nn = w.newInner(repl, p.Right)
		} else {
			nn = w.newInner(p.Left, repl)
		}
		if nn.Height > w.heightBudget(nn.Weight) {
			scapegoat = nn
		}
		w.recordPrev(nn, p)
		w.retire(p)
		repl, p, wasLeft = nn, np, nwasLeft
	}
	w.Root = repl
	repl.Parent = nil
	if scapegoat != nil {
		w.rebuildSubterm(scapegoat)
	}
}

// rebuildSubterm rebuilds the subterm over its letter leaves, which are
// reused (their labels, and hence their circuit boxes, are unchanged),
// then publishes the balanced replacement by path copying.
func (w *Word) rebuildSubterm(t *Node) {
	w.Rebuilds++
	var leaves []*Node
	var rec func(x *Node)
	rec = func(x *Node) {
		if x.IsLeaf() {
			leaves = append(leaves, x)
			return
		}
		rec(x.Left)
		rec(x.Right)
		w.retire(x) // inner nodes are replaced; the letter leaves are reused
	}
	rec(t)
	p, wasLeft := slotOf(t)
	nt := w.buildBalanced(leaves)
	w.spliceUp(p, wasLeft, nt)
}

// Relabel replaces the letter with the given ID: a fresh leaf with the
// same stable ID takes the old one's place.
func (w *Word) Relabel(id tree.NodeID, l tree.Label) error {
	old, ok := w.leafOf[id]
	if !ok {
		return fmt.Errorf("forest: letter %d does not exist", id)
	}
	p, wasLeft := slotOf(old)
	leaf := &Node{Op: LeafTree, Label: l, TreeID: id, Weight: 1, HoleNode: tree.InvalidNode}
	w.leafOf[id] = leaf
	w.record(leaf)
	w.recordPrev(leaf, old)
	w.retire(old)
	w.spliceUp(p, wasLeft, leaf)
	return nil
}

// InsertAfter inserts a new letter right after the letter with the given
// ID, returning the new letter's ID.
func (w *Word) InsertAfter(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	return w.insertBeside(id, l, false)
}

// InsertBefore inserts a new letter right before the letter with the
// given ID (needed to prepend at position 0).
func (w *Word) InsertBefore(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	return w.insertBeside(id, l, true)
}

func (w *Word) insertBeside(id tree.NodeID, l tree.Label, before bool) (tree.NodeID, error) {
	s, ok := w.leafOf[id]
	if !ok {
		return 0, fmt.Errorf("forest: letter %d does not exist", id)
	}
	p, wasLeft := slotOf(s)
	lv := w.newLetter(l)
	var nn *Node
	if before {
		nn = w.newInner(lv, s)
	} else {
		nn = w.newInner(s, lv)
	}
	w.size++
	w.spliceUp(p, wasLeft, nn)
	return lv.TreeID, nil
}

// Delete removes the letter with the given ID; the word must stay
// nonempty.
func (w *Word) Delete(id tree.NodeID) error {
	s, ok := w.leafOf[id]
	if !ok {
		return fmt.Errorf("forest: letter %d does not exist", id)
	}
	if w.size == 1 {
		return fmt.Errorf("forest: cannot delete the last letter")
	}
	p := s.Parent
	sibling := p.Left
	if sibling == s {
		sibling = p.Right
	}
	gp, wasLeft := slotOf(p)
	delete(w.leafOf, id)
	w.size--
	w.retire(s)
	w.retire(p)
	w.spliceUp(gp, wasLeft, sibling)
	return nil
}
