package forest

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

// refMove applies the MoveRange semantics to a plain slice.
func refMove(w []tree.Label, from, k, dest int) []tree.Label {
	moved := append([]tree.Label(nil), w[from:from+k]...)
	rest := append(append([]tree.Label(nil), w[:from]...), w[from+k:]...)
	out := append([]tree.Label(nil), rest[:dest+1]...)
	out = append(out, moved...)
	return append(out, rest[dest+1:]...)
}

func TestMoveRange(t *testing.T) {
	w, err := NewWord([]tree.Label{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatal(err)
	}
	// Move "b c" after "e": a d e b c.
	if err := w.MoveRange(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	_, labels := w.Letters()
	want := []tree.Label{"a", "d", "e", "b", "c"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("got %v, want %v", labels, want)
		}
	}
	if err := ValidateTerm(w.Root); err != nil {
		t.Fatal(err)
	}
	// Move "e b" to the front: e b a d c.
	if err := w.MoveRange(2, 2, -1); err != nil {
		t.Fatal(err)
	}
	_, labels = w.Letters()
	want = []tree.Label{"e", "b", "a", "d", "c"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("got %v, want %v", labels, want)
		}
	}
	// Errors.
	if err := w.MoveRange(0, 0, 0); err == nil {
		t.Fatal("empty range should fail")
	}
	if err := w.MoveRange(4, 2, 0); err == nil {
		t.Fatal("out-of-range should fail")
	}
	if err := w.MoveRange(0, 2, 9); err == nil {
		t.Fatal("bad dest should fail")
	}
}

func TestMoveRangePreservesIDs(t *testing.T) {
	w, _ := NewWord([]tree.Label{"x", "y", "z"})
	ids, _ := w.Letters()
	if err := w.MoveRange(0, 1, 1); err != nil { // y z x
		t.Fatal(err)
	}
	newIDs, labels := w.Letters()
	if labels[2] != "x" || newIDs[2] != ids[0] {
		t.Fatalf("moved letter lost its ID: %v %v", newIDs, labels)
	}
}

func TestMoveRangeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		letters := make([]tree.Label, n)
		for i := range letters {
			letters[i] = tree.Label([]string{"a", "b", "c"}[rng.Intn(3)])
		}
		w, err := NewWord(letters)
		if err != nil {
			t.Fatal(err)
		}
		ref := append([]tree.Label(nil), letters...)
		for step := 0; step < 10; step++ {
			from := rng.Intn(n)
			k := 1 + rng.Intn(n-from)
			if k == n {
				continue
			}
			dest := rng.Intn(n-k+1) - 1
			if err := w.MoveRange(from, k, dest); err != nil {
				t.Fatalf("trial %d step %d: MoveRange(%d,%d,%d): %v", trial, step, from, k, dest, err)
			}
			ref = refMove(ref, from, k, dest)
			_, labels := w.Letters()
			if len(labels) != len(ref) {
				t.Fatalf("length changed")
			}
			for i := range ref {
				if labels[i] != ref[i] {
					t.Fatalf("trial %d step %d: got %v, want %v", trial, step, labels, ref)
				}
			}
			if err := ValidateTerm(w.Root); err != nil {
				t.Fatal(err)
			}
			if w.Root.Height > w.heightBudget(w.Root.Weight) {
				t.Fatal("height over budget after move")
			}
		}
	}
}
