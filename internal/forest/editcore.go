package forest

import (
	"errors"
	"fmt"
	"math"
)

var errNilRoot = errors.New("forest: nil term root")

func balanceError(h, w, budget int) error {
	return fmt.Errorf("forest: height invariant violated: height %d > budget %d at weight %d", h, budget, w)
}

// editCore is the splice/rebalance core SHARED by Forest (trees) and
// Word (words): the dirty protocol (created / retired / prev / moved
// lists behind DrainDelta), the path-copying spliceUp publication, and
// the scapegoat height rule. The two owners differ only in how a fresh
// inner node is allocated (Forest registers plug operations, Word is
// ⊕HH-only) and how a scapegoat subterm is rebuilt (Forest rebuilds from
// the underlying tree cluster, Word re-splits its letter leaves) — those
// two hooks are the termOwner interface; everything else is one code
// path, which is what lets the structural edits (subtree splice, rope
// split/join, bulk load) behave identically for both document kinds.
type editCore struct {
	Root *Node

	// created lists term nodes needing circuit-box (re)construction, in
	// an order where children precede parents.
	created []*Node
	// retired lists term nodes dropped from the term by path copying
	// since the last DrainDelta: the engine uses it to release the
	// attachments (boxes, indexes) of superseded trunk nodes eagerly.
	retired []*Node
	// prev maps a fresh node to the pre-batch node it path-copied (the
	// same term position, one edit earlier), resolved through intra-batch
	// chains; TrunkDelta.Prev hands it to consumers so signature-pruned
	// repair can compare a rebuilt trunk box against its predecessor.
	prev map[*Node]*Node
	// moved lists the roots of maximal subterms a structural edit
	// RELOCATED without rebuilding (a moved subtree's shared chunks, a
	// rope split's re-parented runs): every node under them keeps its
	// identity, so consumers keep their frozen attachments and only
	// account for the reuse (TrunkDelta.Moved).
	moved []*Node

	// Height budget: rebuild a subterm when its height exceeds
	// HeightFactor·log₂(weight+1) + HeightBase (scapegoat rule).
	HeightFactor float64
	HeightBase   int

	// Rebuilds counts subterm rebuilds triggered by the height rule
	// (exposed for the amortization experiments).
	Rebuilds int
	// RebuiltWeight accumulates the total weight of rebuilt subterms.
	RebuiltWeight int

	owner termOwner
}

// termOwner is what the core needs back from its embedding struct: fresh
// inner-node allocation (with owner-specific map registration) and the
// owner-specific scapegoat rebuild.
type termOwner interface {
	joinInner(op Op, l, r *Node) *Node
	rebuildSubterm(t *Node)
}

// record registers a node as created/modified for the dirty protocol.
func (c *editCore) record(n *Node) { c.created = append(c.created, n) }

// recordPrev notes that fresh supersedes old at the same term position.
// Chains within one batch are resolved at record time (entries always
// point at nodes that predate the batch, the ones consumers may hold
// attachments for), so a lookup is O(1) and a batch of k edits over one
// trunk maps its final copies to the pre-batch originals.
func (c *editCore) recordPrev(fresh, old *Node) {
	if c.prev == nil {
		c.prev = map[*Node]*Node{}
	}
	if orig, ok := c.prev[old]; ok {
		old = orig
	}
	c.prev[fresh] = old
}

// retire registers a node as dropped from the term. Shared subtrees are
// never retired — only the nodes a path copy or rebuild actually
// replaced. Nodes created and superseded within the same batch may be
// retired too; consumers treat unknown nodes as a no-op.
func (c *editCore) retire(n *Node) { c.retired = append(c.retired, n) }

// retireSubterm retires a whole subterm (used when a scapegoat rebuild
// or a subtree deletion replaces it with nothing it shares).
func (c *editCore) retireSubterm(n *Node) {
	if n == nil {
		return
	}
	c.retireSubterm(n.Left)
	c.retireSubterm(n.Right)
	c.retired = append(c.retired, n)
}

// recordMoved registers the root of a relocated-but-unchanged subterm
// for TrunkDelta.Moved. Roots detached by a later edit in the same batch
// are filtered at drain time.
func (c *editCore) recordMoved(n *Node) { c.moved = append(c.moved, n) }

// attached reports whether the node is still part of the current term
// (edits may create nodes that a subsequent rebuild in the same batch
// discards).
func (c *editCore) attached(n *Node) bool {
	for x := n; ; x = x.Parent {
		if x.Parent == nil {
			return x == c.Root
		}
		if x.Parent.Left != x && x.Parent.Right != x {
			return false
		}
	}
}

// drainFresh returns the nodes whose circuit boxes must be rebuilt,
// children before parents and deduplicated, and resets the dirty list.
// Deduplication keeps the LAST occurrence: a scapegoat rebuild re-dirties
// ancestors after their first recording, and only the final position
// respects the children-first order. (The former consume-once public
// Drain/DrainRetired protocol is folded into DrainDelta; this is its
// internal half.)
func (c *editCore) drainFresh() []*Node {
	last := map[*Node]int{}
	for i, n := range c.created {
		last[n] = i
	}
	var out []*Node
	for i, n := range c.created {
		if last[n] == i && c.attached(n) {
			out = append(out, n)
		}
	}
	c.created = c.created[:0]
	return out
}

// drainMoved filters the moved-root list down to roots still attached to
// the current term (a later edit in the batch may have retired or
// re-split them), deduplicated, and resets the list.
func (c *editCore) drainMoved() []*Node {
	if len(c.moved) == 0 {
		return nil
	}
	seen := map[*Node]bool{}
	var out []*Node
	for _, n := range c.moved {
		if !seen[n] && c.attached(n) {
			seen[n] = true
			out = append(out, n)
		}
	}
	c.moved = nil
	return out
}

// DrainDelta drains the dirty protocol ONCE into an immutable TrunkDelta
// (fresh trunk, prev hints, retired nodes, moved subterm roots, current
// root) and resets all lists. This is the only drain entry point: any
// number of consumers may replay the returned value concurrently or
// after the fact.
func (c *editCore) DrainDelta() TrunkDelta {
	fresh := c.drainFresh()
	d := TrunkDelta{
		Fresh:   fresh,
		Prev:    prevSlice(fresh, c.prev),
		Retired: c.retired,
		Moved:   c.drainMoved(),
		Root:    c.Root,
	}
	c.retired = nil
	return d
}

// heightBudget is the scapegoat threshold for a subterm of the given
// weight.
func (c *editCore) heightBudget(weight int) int {
	return int(c.HeightFactor*math.Log2(float64(weight+1))) + c.HeightBase
}

// spliceUp publishes repl in place of the child slot (p, wasLeft): it
// builds fresh copies of every node from p up to the root, sharing the
// off-trunk siblings, and then applies the scapegoat rule to the fresh
// path (repl itself included). p and wasLeft must be captured BEFORE
// repl's construction re-targets any parent pointers; p == nil makes
// repl the new root.
func (c *editCore) spliceUp(p *Node, wasLeft bool, repl *Node) {
	var scapegoat *Node
	if repl.Height > c.heightBudget(repl.Weight) {
		scapegoat = repl
	}
	for p != nil {
		// Capture the next slot before joinInner redirects any pointers.
		np, nwasLeft := p.Parent, p.Parent != nil && p.Parent.Left == p
		var nn *Node
		if wasLeft {
			nn = c.owner.joinInner(p.Op, repl, p.Right)
		} else {
			nn = c.owner.joinInner(p.Op, p.Left, repl)
		}
		if nn.Height > c.heightBudget(nn.Weight) {
			scapegoat = nn
		}
		c.recordPrev(nn, p)
		c.retire(p)
		repl, p, wasLeft = nn, np, nwasLeft
	}
	c.Root = repl
	repl.Parent = nil
	if scapegoat != nil {
		c.owner.rebuildSubterm(scapegoat)
	}
}

// structuralFixup restores the height invariant after a structural edit
// whose fresh nodes were created outside spliceUp's per-path check
// (subterm extraction spines, rope joins): candidates are checked in
// reverse creation order (ancestors roughly first), each still-attached
// violator is rebuilt, and finally the root itself is brought within its
// budget. Rebuild cost is amortized against the weight imbalance the
// structural edits accumulated (DESIGN.md §10).
func (c *editCore) structuralFixup(candidates []*Node) {
	for i := len(candidates) - 1; i >= 0; i-- {
		n := candidates[i]
		if n.Height > c.heightBudget(n.Weight) && c.attached(n) {
			c.owner.rebuildSubterm(n)
		}
	}
	for c.Root.Height > c.heightBudget(c.Root.Weight) {
		c.owner.rebuildSubterm(c.Root)
	}
}

// TermRoot returns the root of the current term (dynamic-engine
// interface, shared by Forest and Word).
func (c *editCore) TermRoot() *Node { return c.Root }

// Rebalances returns the number of scapegoat rebuilds performed so far
// (dynamic-engine interface, shared by Forest and Word).
func (c *editCore) Rebalances() int { return c.Rebuilds }

// CheckBalance verifies the published height invariant: the term root's
// height is within its scapegoat budget. The differential suites assert
// it after every edit.
func (c *editCore) CheckBalance() error {
	if c.Root == nil {
		return errNilRoot
	}
	if c.Root.Height > c.heightBudget(c.Root.Weight) {
		return balanceError(c.Root.Height, c.Root.Weight, c.heightBudget(c.Root.Weight))
	}
	return nil
}

// CheckBalanceDeep verifies the height invariant for EVERY subterm, not
// just the root: each node is within budget at creation or becomes a
// scapegoat (rebuilt, or retired under a rebuilt ancestor), and
// height/weight are immutable afterwards, so the per-node invariant must
// hold on the whole published term. O(n); for tests only.
func (c *editCore) CheckBalanceDeep() error {
	if c.Root == nil {
		return errNilRoot
	}
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if n == nil {
			return nil
		}
		if n.Height > c.heightBudget(n.Weight) {
			return balanceError(n.Height, n.Weight, c.heightBudget(n.Weight))
		}
		if err := rec(n.Left); err != nil {
			return err
		}
		return rec(n.Right)
	}
	return rec(c.Root)
}
