package forest

// Hollowing is the formal update language of Definition 7.2: a new trunk
// of term nodes whose □-leaves are filled by reused subterms of the
// previous term (the function η). The dynamic engine consumes the trunk
// in children-first order (Forest.Drain); this type packages the same
// information for inspection and for the trunk-size experiments.
type Hollowing struct {
	// Trunk lists the nodes of T′′ that are not □-leaves: the freshly
	// built or modified term nodes, children before parents.
	Trunk []*Node
	// Reused lists the maximal reused subterms: the images of η, i.e.
	// children of trunk nodes that were carried over unchanged.
	Reused []*Node
}

// HollowingFromTrunk reconstructs the Definition 7.2 view from a drained
// trunk: every child of a trunk node that is not itself in the trunk is a
// reused subterm (a □-leaf of T′′ mapped by η).
func HollowingFromTrunk(trunk []*Node) Hollowing {
	inTrunk := map[*Node]bool{}
	for _, n := range trunk {
		inTrunk[n] = true
	}
	h := Hollowing{Trunk: trunk}
	seen := map[*Node]bool{}
	for _, n := range trunk {
		for _, c := range []*Node{n.Left, n.Right} {
			if c != nil && !inTrunk[c] && !seen[c] {
				seen[c] = true
				h.Reused = append(h.Reused, c)
			}
		}
	}
	return h
}

// TrunkSize returns |T′′| up to the □-leaves: the number of rebuilt
// nodes, which bounds the circuit/index repair work of Lemma 7.3.
func (h Hollowing) TrunkSize() int { return len(h.Trunk) }
