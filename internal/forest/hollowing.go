package forest

// Hollowing is the formal update language of Definition 7.2: a new trunk
// of term nodes whose □-leaves are filled by reused subterms of the
// previous term (the function η). The dynamic engine consumes the trunk
// in children-first order (TrunkDelta.Fresh); this type packages the same
// information for inspection and for the trunk-size experiments.
type Hollowing struct {
	// Trunk lists the nodes of T′′ that are not □-leaves: the freshly
	// built or modified term nodes, children before parents.
	Trunk []*Node
	// Reused lists the maximal reused subterms: the images of η, i.e.
	// children of trunk nodes that were carried over unchanged.
	Reused []*Node
}

// HollowingFromTrunk reconstructs the Definition 7.2 view from a drained
// trunk: every child of a trunk node that is not itself in the trunk is a
// reused subterm (a □-leaf of T′′ mapped by η).
func HollowingFromTrunk(trunk []*Node) Hollowing {
	inTrunk := map[*Node]bool{}
	for _, n := range trunk {
		inTrunk[n] = true
	}
	h := Hollowing{Trunk: trunk}
	seen := map[*Node]bool{}
	for _, n := range trunk {
		for _, c := range []*Node{n.Left, n.Right} {
			if c != nil && !inTrunk[c] && !seen[c] {
				seen[c] = true
				h.Reused = append(h.Reused, c)
			}
		}
	}
	return h
}

// TrunkSize returns |T′′| up to the □-leaves: the number of rebuilt
// nodes, which bounds the circuit/index repair work of Lemma 7.3.
func (h Hollowing) TrunkSize() int { return len(h.Trunk) }

// TrunkDelta is one batch's hollowing information in immutable,
// REPLAYABLE form: the freshly built trunk nodes (children before
// parents, deduplicated), the nodes the batch dropped from the term, and
// the resulting term root. Unlike the consume-once Drain/DrainRetired
// protocol it is a plain value — once produced it never changes, every
// node reachable from it is frozen (path copying never mutates published
// nodes), and any number of consumers may replay it concurrently or
// after the fact. The dynamic engine relies on both properties: the
// parallel write path replays one delta from many per-query workers at
// once, and lock-light registration replays the deltas that were
// published while a new query's attachment tree was being built off the
// writer's critical section.
type TrunkDelta struct {
	// Fresh lists the term nodes needing per-consumer (re)construction,
	// children before parents.
	Fresh []*Node
	// Prev, when non-nil, is aligned with Fresh: Prev[i] is the
	// pre-batch node Fresh[i] path-copied (nil when Fresh[i] is
	// structurally new). It is a reuse HINT for signature-pruned repair
	// — consumers must verify structural equality before acting on it —
	// and carries no correctness obligation: an absent or stale entry
	// only costs a rebuild.
	Prev []*Node
	// Retired lists the term nodes dropped from the term by this batch:
	// consumers release their attachments. Unknown nodes (never attached,
	// or created and dropped within one batch) are a no-op.
	Retired []*Node
	// Moved lists the roots of maximal subterms a structural edit of this
	// batch relocated WITHOUT rebuilding (a moved subtree's wholesale-
	// shared chunks, a rope move's shared range piece). Every node under a
	// Moved root keeps its pointer identity, is neither Fresh nor Retired,
	// and keeps whatever attachments a consumer froze for it — consumers
	// only account for the reuse (the engine credits BoxesReused). Purely
	// informational: skipping it costs nothing but accounting.
	Moved []*Node
	// Root is the term root after the batch.
	Root *Node
}

// Empty reports whether the delta carries no trunk work (the batch
// changed nothing, or the delta was already drained).
func (d TrunkDelta) Empty() bool {
	return len(d.Fresh) == 0 && len(d.Retired) == 0 && len(d.Moved) == 0
}

// PrevOf returns the reuse hint for Fresh[i], or nil.
func (d TrunkDelta) PrevOf(i int) *Node {
	if i < len(d.Prev) {
		return d.Prev[i]
	}
	return nil
}

// prevSlice materializes the Prev hint list for a drained trunk from a
// recordPrev map, which is then reset (buckets kept for reuse).
func prevSlice(fresh []*Node, prev map[*Node]*Node) []*Node {
	if len(prev) == 0 {
		return nil
	}
	out := make([]*Node, len(fresh))
	for i, n := range fresh {
		out[i] = prev[n]
	}
	clear(prev)
	return out
}
