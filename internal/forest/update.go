package forest

import (
	"fmt"

	"repro/internal/tree"
)

// This file implements the edit operations of Definition 7.1 on the
// maintained (tree, term) pair. Each edit performs O(1) local term
// surgery at a leaf and then publishes the change by PATH COPYING
// through the shared editCore.spliceUp: fresh nodes are created along
// the leaf-to-root trunk while all untouched subtrees are shared with
// the previous term version (exactly the shape of the tree hollowings of
// Definition 7.2 — the trunk is new, the □-leaves are reused).
// Superseded nodes are never modified, so circuit boxes attached to them
// by the dynamic engine stay valid for readers that captured the
// previous version. When the height budget of some fresh subterm is
// exceeded, the topmost such subterm is rebuilt from the underlying tree
// cluster (the scapegoat substitution for [30]'s rotations, see the
// package comment). All fresh nodes are recorded for DrainDelta,
// children before parents.
//
// The insert operations splice a SUBTERM, not just a leaf: the leaf
// edits of Definition 7.1 pass a single fresh leaf, the structural edits
// of structural.go pass whole balanced subterms (a bulk-built fragment,
// a moved subtree) through the same two splice shapes. That is the
// generalization this file and structural.go share.

// slotOf captures the parent slot of n for a later spliceUp.
func slotOf(n *Node) (p *Node, wasLeft bool) {
	return n.Parent, n.Parent != nil && n.Parent.Left == n
}

// rebuildSubterm replaces the subterm rooted at t by a freshly balanced
// term for the same cluster, then publishes it by path copying. The
// rebuilt term is within its height budget and path copies only shrink
// heights, so the nested scapegoat check cannot cascade. (termOwner
// hook: the Forest side rebuilds from the underlying tree cluster.)
func (f *Forest) rebuildSubterm(t *Node) {
	f.Rebuilds++
	f.RebuiltWeight += t.Weight
	roots := f.clusterRoots(t)
	var hole *tree.UNode
	if t.IsContext() {
		hole = f.Tree.Node(t.HoleNode)
		if hole == nil {
			panic("forest: context subterm with missing hole node")
		}
	}
	p, wasLeft := slotOf(t)
	nt := f.buildCluster(roots, hole)
	if nt.IsContext() != t.IsContext() {
		panic("forest: rebuild changed cluster type")
	}
	// The fresh cluster shares nothing with the old subterm: every old
	// node under t is dropped.
	f.retireSubterm(t)
	f.spliceUp(p, wasLeft, nt)
}

// clusterRoots returns the roots of the top-level sibling segment of the
// cluster represented by t, in order.
func (f *Forest) clusterRoots(t *Node) []*tree.UNode {
	var out []*tree.UNode
	var rec func(x *Node)
	rec = func(x *Node) {
		switch x.Op {
		case LeafTree, LeafCtx:
			out = append(out, f.Tree.Node(x.TreeID))
		case ConcatHH, ConcatHV, ConcatVH:
			rec(x.Left)
			rec(x.Right)
		case ComposeVV, ApplyVH:
			rec(x.Left) // the plugged part hangs below the left's hole
		}
	}
	rec(t)
	return out
}

// Relabel implements relabel(n, l): the term shape is unchanged; a fresh
// leaf (and fresh copies of its ancestors) replaces the old trunk.
func (f *Forest) Relabel(id tree.NodeID, l tree.Label) error {
	if err := f.Tree.Relabel(id, l); err != nil {
		return err
	}
	old := f.leafOf[id]
	p, wasLeft := slotOf(old)
	var leaf *Node
	if old.Op == LeafCtx {
		leaf = f.newLeafCtx(f.Tree.Node(id))
	} else {
		leaf = f.newLeafTree(f.Tree.Node(id))
	}
	f.recordPrev(leaf, old)
	f.retire(old)
	f.spliceUp(p, wasLeft, leaf)
	return nil
}

// spliceSubtermFirstChild splices the forest-typed subterm s so that the
// forest it represents becomes the leading children of tree node id. The
// TREE already reflects the insertion; the term-side leafOf/plugOp state
// still reflects the previous version (which is how the childless case
// is detected). This is the single splice shape behind InsertFirstChild
// (s = one fresh leaf) and the structural subtree insert/move (s = a
// bulk-built or extracted subterm).
func (f *Forest) spliceSubtermFirstChild(id tree.NodeID, s *Node) {
	p := f.leafOf[id]
	if p.Op == LeafTree {
		// id was childless: its aᵗ leaf becomes a□ plugged with the new
		// forest: ⊙VH(id□, s).
		pp, wasLeft := slotOf(p)
		ctx := f.newLeafCtx(f.Tree.Node(id))
		ap := f.newInner(ApplyVH, ctx, s)
		f.retire(p)
		f.spliceUp(pp, wasLeft, ap)
		return
	}
	// Children exist: prepend s to the subterm X that represents them
	// (the right child of the plug operation of id). The plug node itself
	// is copied, not modified.
	op := f.plugOp[id]
	pp, wasLeft := slotOf(op)
	x := op.Right
	var nx *Node
	if x.IsContext() {
		nx = f.newInner(ConcatHV, s, x)
	} else {
		nx = f.newInner(ConcatHH, s, x)
	}
	nop := f.newInner(op.Op, op.Left, nx)
	f.retire(op)
	f.spliceUp(pp, wasLeft, nop)
}

// spliceSubtermRightSibling splices the forest-typed subterm s so that
// its forest follows the whole subtree of id in the sibling order. The
// term leaf of id occupies exactly id's slot in its sibling segment, so
// wrapping it with a horizontal concatenation inserts s right after id's
// subtree.
func (f *Forest) spliceSubtermRightSibling(id tree.NodeID, s *Node) {
	a := f.leafOf[id]
	p, wasLeft := slotOf(a)
	var nn *Node
	if a.IsContext() {
		nn = f.newInner(ConcatVH, a, s)
	} else {
		nn = f.newInner(ConcatHH, a, s)
	}
	f.spliceUp(p, wasLeft, nn)
}

// InsertFirstChild implements insert(n, l): a new l-labeled node becomes
// the first child of n.
func (f *Forest) InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, err := f.Tree.InsertFirstChild(id, l)
	if err != nil {
		return 0, err
	}
	f.spliceSubtermFirstChild(id, f.newLeafTree(v))
	return v.ID, nil
}

// InsertRightSibling implements insertR(n, l): a new l-labeled node
// becomes the right sibling of n.
func (f *Forest) InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, err := f.Tree.InsertRightSibling(id, l)
	if err != nil {
		return 0, err
	}
	f.spliceSubtermRightSibling(id, f.newLeafTree(v))
	return v.ID, nil
}

// Delete implements delete(n) for a leaf n of the tree.
func (f *Forest) Delete(id tree.NodeID) error {
	s := f.leafOf[id]
	if err := f.Tree.Delete(id); err != nil {
		return err
	}
	if s.Op != LeafTree {
		panic("forest: tree leaf mapped to a context term leaf")
	}
	delete(f.leafOf, id)
	p := s.Parent
	switch p.Op {
	case ConcatHH, ConcatHV, ConcatVH:
		// Splice the leaf out: the other operand takes p's place (same
		// algebra type as p in every legal combination).
		sibling := p.Left
		if sibling == s {
			sibling = p.Right
		}
		gp, wasLeft := slotOf(p)
		f.retire(s)
		f.retire(p)
		f.spliceUp(gp, wasLeft, sibling)
	case ApplyVH:
		// p = ⊙VH(C, nᵗ): n was the only child of C's hole node w, which
		// now becomes childless: a fresh copy of C's hole path closes the
		// hole (a□ → aᵗ, ⊕HV/⊕VH → ⊕HH, ⊙VV → ⊙VH) and takes p's place.
		if p.Right != s {
			panic("forest: tree leaf plugged on the left of ⊙VH")
		}
		c := p.Left
		w := c.HoleNode
		gp, wasLeft := slotOf(p)
		delete(f.plugOp, w)
		nc := f.retypeHolePath(c, w)
		f.retire(s)
		f.retire(p)
		f.spliceUp(gp, wasLeft, nc)
	default:
		panic(fmt.Sprintf("forest: leaf under unexpected operator %v", p.Op))
	}
	return nil
}

// retypeHolePath returns a fresh forest-typed copy of the context c with
// its hole (at tree node w) closed: the a□ leaf of w becomes aᵗ, and
// every operator on the hole path flips to its forest counterpart. Nodes
// off the hole path are shared; the fresh nodes are recorded bottom-up,
// as the dirty protocol requires.
func (f *Forest) retypeHolePath(c *Node, w tree.NodeID) *Node {
	f.retire(c)
	switch c.Op {
	case LeafCtx:
		return f.newLeafTree(f.Tree.Node(w)) // re-registers leafOf[w]
	case ConcatHV:
		return f.newInner(ConcatHH, c.Left, f.retypeHolePath(c.Right, w))
	case ConcatVH:
		return f.newInner(ConcatHH, f.retypeHolePath(c.Left, w), c.Right)
	case ComposeVV:
		return f.newInner(ApplyVH, c.Left, f.retypeHolePath(c.Right, w))
	default:
		panic("forest: malformed hole path")
	}
}
