package forest

import (
	"fmt"

	"repro/internal/tree"
)

// This file implements the edit operations of Definition 7.1 on the
// maintained (tree, term) pair. Each edit performs O(1) local term
// surgery at a leaf, refreshes weights/heights on the leaf-to-root path,
// and, when the height budget of some subterm is exceeded, rebuilds the
// topmost such subterm from the underlying tree cluster (the scapegoat
// substitution for [30]'s rotations, see the package comment). The nodes
// created or modified — the trunk of the tree hollowing of Definition
// 7.2 — are recorded for Drain.

// replaceChild makes repl take old's place under parent (nil parent =
// root). old's parent pointer is left dangling; callers capture parent
// and side before any re-wiring.
func (f *Forest) replaceAt(parent *Node, wasLeft bool, repl *Node) {
	if parent == nil {
		f.Root = repl
		repl.Parent = nil
		return
	}
	if wasLeft {
		parent.Left = repl
	} else {
		parent.Right = repl
	}
	repl.Parent = parent
}

// bubble refreshes weights/heights from n's parent chain up to the root,
// then applies the scapegoat rule: if any node on the path exceeds its
// height budget, the topmost such subterm is rebuilt from the tree.
func (f *Forest) bubble(n *Node) {
	var scapegoat *Node
	for x := n; x != nil; x = x.Parent {
		if !x.IsLeaf() {
			x.update()
		}
		if x.Height > f.heightBudget(x.Weight) {
			scapegoat = x
		}
	}
	if scapegoat == nil {
		return
	}
	f.rebuildSubterm(scapegoat)
}

// rebuildSubterm replaces the subterm rooted at t by a freshly balanced
// term for the same cluster, then refreshes the ancestors.
func (f *Forest) rebuildSubterm(t *Node) {
	f.Rebuilds++
	f.RebuiltWeight += t.Weight
	roots := f.clusterRoots(t)
	var hole *tree.UNode
	if t.IsContext() {
		hole = f.Tree.Node(t.HoleNode)
		if hole == nil {
			panic("forest: context subterm with missing hole node")
		}
	}
	parent, wasLeft := t.Parent, t.Parent != nil && t.Parent.Left == t
	nt := f.buildCluster(roots, hole)
	if nt.IsContext() != t.IsContext() {
		panic("forest: rebuild changed cluster type")
	}
	f.replaceAt(parent, wasLeft, nt)
	for x := parent; x != nil; x = x.Parent {
		x.update()
	}
	// Ancestors' boxes depend on the rebuilt child; mark them modified.
	for x := parent; x != nil; x = x.Parent {
		f.record(x)
	}
}

// clusterRoots returns the roots of the top-level sibling segment of the
// cluster represented by t, in order.
func (f *Forest) clusterRoots(t *Node) []*tree.UNode {
	var out []*tree.UNode
	var rec func(x *Node)
	rec = func(x *Node) {
		switch x.Op {
		case LeafTree, LeafCtx:
			out = append(out, f.Tree.Node(x.TreeID))
		case ConcatHH, ConcatHV, ConcatVH:
			rec(x.Left)
			rec(x.Right)
		case ComposeVV, ApplyVH:
			rec(x.Left) // the plugged part hangs below the left's hole
		}
	}
	rec(t)
	return out
}

// recordPathToRoot marks every ancestor of n (inclusive) as needing a new
// circuit box.
func (f *Forest) recordPathToRoot(n *Node) {
	for x := n; x != nil; x = x.Parent {
		f.record(x)
	}
}

// Relabel implements relabel(n, l): the term shape is unchanged, only the
// leaf's label (and hence its box and all ancestor boxes).
func (f *Forest) Relabel(id tree.NodeID, l tree.Label) error {
	if err := f.Tree.Relabel(id, l); err != nil {
		return err
	}
	leaf := f.leafOf[id]
	leaf.Label = l
	leaf.Box = nil
	f.recordPathToRoot(leaf)
	return nil
}

// InsertFirstChild implements insert(n, l): a new l-labeled node becomes
// the first child of n.
func (f *Forest) InsertFirstChild(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, err := f.Tree.InsertFirstChild(id, l)
	if err != nil {
		return 0, err
	}
	p := f.leafOf[id]
	if p.Op == LeafTree {
		// n was childless: its aᵗ leaf becomes a□ plugged with the new
		// singleton forest: ⊙VH(n□, vᵗ).
		parent, wasLeft := p.Parent, p.Parent != nil && p.Parent.Left == p
		ctx := f.newLeafCtx(f.Tree.Node(id))
		lv := f.newLeafTree(v)
		ap := f.newInner(ApplyVH, ctx, lv)
		f.plugOp[id] = ap
		f.replaceAt(parent, wasLeft, ap)
		f.recordPathToRoot(ap)
		f.bubble(ap)
	} else {
		// Children exist: prepend vᵗ to the subterm X that represents
		// them (the right child of the plug operation of n).
		op := f.plugOp[id]
		x := op.Right
		lv := f.newLeafTree(v)
		var nx *Node
		if x.IsContext() {
			nx = f.newInner(ConcatHV, lv, x)
		} else {
			nx = f.newInner(ConcatHH, lv, x)
		}
		op.Right = nx
		nx.Parent = op
		f.recordPathToRoot(nx)
		f.bubble(nx)
	}
	return v.ID, nil
}

// InsertRightSibling implements insertR(n, l): a new l-labeled node
// becomes the right sibling of n. The term leaf of n occupies exactly
// n's slot in its sibling segment, so wrapping it with a horizontal
// concatenation inserts v right after the whole subtree of n.
func (f *Forest) InsertRightSibling(id tree.NodeID, l tree.Label) (tree.NodeID, error) {
	v, err := f.Tree.InsertRightSibling(id, l)
	if err != nil {
		return 0, err
	}
	s := f.leafOf[id]
	parent, wasLeft := s.Parent, s.Parent != nil && s.Parent.Left == s
	lv := f.newLeafTree(v)
	var nn *Node
	if s.IsContext() {
		nn = f.newInner(ConcatVH, s, lv)
	} else {
		nn = f.newInner(ConcatHH, s, lv)
	}
	f.replaceAt(parent, wasLeft, nn)
	f.recordPathToRoot(nn)
	f.bubble(nn)
	return v.ID, nil
}

// Delete implements delete(n) for a leaf n of the tree.
func (f *Forest) Delete(id tree.NodeID) error {
	s := f.leafOf[id]
	if err := f.Tree.Delete(id); err != nil {
		return err
	}
	if s.Op != LeafTree {
		panic("forest: tree leaf mapped to a context term leaf")
	}
	delete(f.leafOf, id)
	p := s.Parent
	switch p.Op {
	case ConcatHH, ConcatHV, ConcatVH:
		// Splice the leaf out: the other operand takes p's place (same
		// algebra type as p in every legal combination).
		sibling := p.Left
		if sibling == s {
			sibling = p.Right
		}
		parent, wasLeft := p.Parent, p.Parent != nil && p.Parent.Left == p
		f.replaceAt(parent, wasLeft, sibling)
		if parent != nil {
			f.recordPathToRoot(parent)
			f.bubble(parent)
		}
	case ApplyVH:
		// p = ⊙VH(C, nᵗ): n was the only child of C's hole node w, which
		// now becomes childless: retype the hole path of C (a□ → aᵗ,
		// ⊕HV/⊕VH → ⊕HH, ⊙VV → ⊙VH) and let C take p's place.
		if p.Right != s {
			panic("forest: tree leaf plugged on the left of ⊙VH")
		}
		c := p.Left
		w := c.HoleNode
		f.retypeHolePath(c, w)
		delete(f.plugOp, w)
		parent, wasLeft := p.Parent, p.Parent != nil && p.Parent.Left == p
		f.replaceAt(parent, wasLeft, c)
		f.recordPathToRoot(c)
		f.bubble(c)
	default:
		panic(fmt.Sprintf("forest: leaf under unexpected operator %v", p.Op))
	}
	return nil
}

// retypeHolePath converts the context c whose hole is at tree node w into
// the forest obtained by closing the hole: the a□ leaf of w becomes aᵗ,
// and every operator on the hole path flips to its forest counterpart.
// The path nodes are recorded bottom-up, as the dirty protocol requires.
func (f *Forest) retypeHolePath(c *Node, w tree.NodeID) {
	var path []*Node
	x := c
	for {
		path = append(path, x)
		x.Box = nil
		if x.Op == LeafCtx {
			x.Op = LeafTree
			f.leafOf[w] = x
			break
		}
		switch x.Op {
		case ConcatHV:
			x.Op = ConcatHH
			x = x.Right
		case ConcatVH:
			x.Op = ConcatHH
			x = x.Left
		case ComposeVV:
			x.Op = ApplyVH
			x = x.Right
		default:
			panic("forest: malformed hole path")
		}
	}
	for i := len(path) - 1; i >= 0; i-- {
		path[i].update()
		f.record(path[i])
	}
}
