package forest

import (
	"fmt"

	"repro/internal/tree"
)

// This file implements the bulk word update discussed in the paper's
// conclusion ("in the case of words, it would be natural to support bulk
// updates, i.e., moving a part of the text to a different place"). The
// paper conjectures its techniques adapt; here the move is realized
// through the existing edit language — the moved range is spliced out
// and re-inserted letter by letter — giving O(k·log n) for a range of
// length k instead of the conjectured O(log n), but fully inheriting the
// correctness of the incremental machinery (box and index repair stays
// trunk-local per letter).

// MoveRange moves the letters at positions [from, from+k) so that they
// appear immediately after position dest, where dest indexes the word
// *without* the moved range (dest = -1 prepends to the front). The moved
// letters keep their stable IDs, so assignments referring to them stay
// meaningful. Cost: O(k·log n) plus amortized rebalancing.
func (w *Word) MoveRange(from, k, dest int) error {
	if k <= 0 {
		return fmt.Errorf("forest: MoveRange: empty range")
	}
	if from < 0 || from+k > w.size {
		return fmt.Errorf("forest: MoveRange: range [%d,%d) out of [0,%d)", from, from+k, w.size)
	}
	if w.size == k {
		if dest == -1 || dest == 0 {
			return nil // moving the whole word is a no-op
		}
		return fmt.Errorf("forest: MoveRange: dest %d out of range", dest)
	}
	if dest < -1 || dest > w.size-k-1 {
		return fmt.Errorf("forest: MoveRange: dest %d out of [-1,%d]", dest, w.size-k-1)
	}
	ids, labels := w.Letters()
	movedLabels := append([]tree.Label(nil), labels[from:from+k]...)
	movedIDs := append([]tree.NodeID(nil), ids[from:from+k]...)
	// Resolve the destination anchor in the word without the range.
	anchor := tree.InvalidNode
	if dest >= 0 {
		rest := make([]tree.NodeID, 0, len(ids)-k)
		rest = append(rest, ids[:from]...)
		rest = append(rest, ids[from+k:]...)
		anchor = rest[dest]
	}
	if dest == from-1 || (dest >= 0 && anchor == movedIDs[0]) {
		return nil // destination immediately before the range: no-op
	}
	for _, id := range movedIDs {
		if err := w.Delete(id); err != nil {
			return err
		}
	}
	prev := anchor
	for i, l := range movedLabels {
		var id tree.NodeID
		var err error
		if prev == tree.InvalidNode {
			first, ferr := w.IDAt(0)
			if ferr != nil {
				return ferr
			}
			id, err = w.InsertBefore(first, l)
		} else {
			id, err = w.InsertAfter(prev, l)
		}
		if err != nil {
			return err
		}
		// Restore the stable identity: remap the fresh leaf to the old
		// ID so assignments referring to moved letters stay valid. The
		// leaf was created by this very call, so it has not been drained
		// or boxed yet and the pre-publication ID rewrite is safe.
		leaf := w.leafOf[id]
		delete(w.leafOf, id)
		leaf.TreeID = movedIDs[i]
		w.leafOf[movedIDs[i]] = leaf
		prev = movedIDs[i]
	}
	return nil
}
