package forest

import (
	"fmt"

	"repro/internal/tree"
)

// Bulk word updates, answering the paper's conclusion ("in the case of
// words, it would be natural to support bulk updates, i.e., moving a
// part of the text to a different place"): the word term doubles as a
// ROPE. splitTerm carves the term at a letter boundary into two shared
// pieces, retiring only the O(log n) spine; joinTerms glues pieces with
// one fresh node each. A range move is then split×2 / join / split /
// join — O(log n) fresh nodes for ANY range length, realizing the
// conjectured cost (PR 4's letter-by-letter fallback was O(k·log n)).
// The moved piece is shared wholesale and reported via TrunkDelta.Moved,
// so the engine keeps its frozen boxes. Height budgets are restored
// afterwards by structuralFixup over the fresh join nodes, exactly as
// for the tree-side structural edits.

// splitTerm splits the term x at letter position k: the returned pieces
// hold the first k letters and the rest (nil for an empty side). Spine
// nodes are retired; everything else is shared.
func (w *Word) splitTerm(x *Node, k int) (l, r *Node) {
	if k <= 0 {
		return nil, x
	}
	if k >= x.Weight {
		return x, nil
	}
	w.retire(x)
	lw := x.Left.Weight
	switch {
	case k < lw:
		ll, lr := w.splitTerm(x.Left, k)
		return ll, w.joinTerms(lr, x.Right)
	case k == lw:
		return x.Left, x.Right
	default:
		rl, rr := w.splitTerm(x.Right, k-lw)
		return w.joinTerms(x.Left, rl), rr
	}
}

// joinTerms concatenates two term pieces (either may be nil), tracking
// fresh joins that bust the height budget for the deferred fixup.
func (w *Word) joinTerms(l, r *Node) *Node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	nn := w.newInner(l, r)
	if nn.Height > w.heightBudget(nn.Weight) {
		w.ropeCands = append(w.ropeCands, nn)
	}
	return nn
}

// publish installs the new root and repairs the height invariant over
// the rope joins of this edit.
func (w *Word) publish(root *Node) {
	w.Root = root
	root.Parent = nil
	cands := w.ropeCands
	w.ropeCands = nil
	w.structuralFixup(cands)
}

// MoveRange moves the letters at positions [from, from+k) so that they
// appear immediately after position dest, where dest indexes the word
// *without* the moved range (dest = -1 prepends to the front). The moved
// letters keep their stable IDs — the whole range is one shared term
// piece — so assignments referring to them stay meaningful. Cost:
// O(log n) fresh nodes plus amortized rebalancing, independent of k.
func (w *Word) MoveRange(from, k, dest int) error {
	if k <= 0 {
		return fmt.Errorf("forest: MoveRange: empty range")
	}
	if from < 0 || from+k > w.size {
		return fmt.Errorf("forest: MoveRange: range [%d,%d) out of [0,%d)", from, from+k, w.size)
	}
	if w.size == k {
		if dest == -1 || dest == 0 {
			return nil // moving the whole word is a no-op
		}
		return fmt.Errorf("forest: MoveRange: dest %d out of range", dest)
	}
	if dest < -1 || dest > w.size-k-1 {
		return fmt.Errorf("forest: MoveRange: dest %d out of [-1,%d]", dest, w.size-k-1)
	}
	if dest == from-1 {
		return nil // destination immediately before the range: no-op
	}
	a, bc := w.splitTerm(w.Root, from)
	b, c := w.splitTerm(bc, k)
	rest := w.joinTerms(a, c) // non-nil: k < size
	r1, r2 := w.splitTerm(rest, dest+1)
	w.recordMoved(b)
	w.publish(w.joinTerms(w.joinTerms(r1, b), r2))
	return nil
}

// InsertRange inserts the given letters at position pos (existing
// letters from pos on shift right), bulk-building one balanced piece and
// joining it in: O(m + log n) for m letters. Returns the fresh IDs.
func (w *Word) InsertRange(pos int, labels []tree.Label) ([]tree.NodeID, error) {
	if len(labels) == 0 {
		return nil, fmt.Errorf("forest: InsertRange: empty range")
	}
	if pos < 0 || pos > w.size {
		return nil, fmt.Errorf("forest: InsertRange: position %d out of [0,%d]", pos, w.size)
	}
	leaves := make([]*Node, len(labels))
	ids := make([]tree.NodeID, len(labels))
	for i, l := range labels {
		leaves[i] = w.newLetter(l)
		ids[i] = leaves[i].TreeID
	}
	piece := w.buildBalanced(leaves)
	a, b := w.splitTerm(w.Root, pos)
	w.size += len(labels)
	w.publish(w.joinTerms(w.joinTerms(a, piece), b))
	return ids, nil
}

// Concat appends the given letters at the end of the word (forest
// concatenation: the word grows by a bulk-built balanced piece).
func (w *Word) Concat(labels []tree.Label) ([]tree.NodeID, error) {
	return w.InsertRange(w.size, labels)
}

// DeleteRange removes the letters at positions [from, from+k); the word
// must stay nonempty. The dropped piece is retired wholesale.
func (w *Word) DeleteRange(from, k int) error {
	if k <= 0 {
		return fmt.Errorf("forest: DeleteRange: empty range")
	}
	if from < 0 || from+k > w.size {
		return fmt.Errorf("forest: DeleteRange: range [%d,%d) out of [0,%d)", from, from+k, w.size)
	}
	if k == w.size {
		return fmt.Errorf("forest: DeleteRange: cannot delete the whole word")
	}
	a, bc := w.splitTerm(w.Root, from)
	b, c := w.splitTerm(bc, k)
	var purge func(x *Node)
	purge = func(x *Node) {
		if x.IsLeaf() {
			delete(w.leafOf, x.TreeID)
		} else {
			purge(x.Left)
			purge(x.Right)
		}
	}
	purge(b)
	w.retireSubterm(b)
	w.size -= k
	w.publish(w.joinTerms(a, c))
	return nil
}

// SplitAt splits the document: the receiver keeps positions [0, i), and
// a NEW INDEPENDENT word holding positions [i, size) is returned (under
// fresh letter IDs — the two documents share no term nodes, so their
// edit histories cannot interfere). Both sides must be nonempty.
func (w *Word) SplitAt(i int) (*Word, error) {
	if i <= 0 || i >= w.size {
		return nil, fmt.Errorf("forest: SplitAt: position %d out of (0,%d)", i, w.size)
	}
	_, labels := w.Letters()
	suffix := append([]tree.Label(nil), labels[i:]...)
	if err := w.DeleteRange(i, w.size-i); err != nil {
		return nil, err
	}
	return NewWord(suffix)
}
