package forest

import (
	"testing"

	"repro/internal/tree"
)

// TestFigure2Semantics is the executable version of Figure 2 of the
// paper: it builds one term per monoid operation by hand and checks that
// decoding matches the drawn semantics (forests as trapezoids, contexts
// as trapezoids with a cutout).
func TestFigure2Semantics(t *testing.T) {
	// Ground tree nodes used as leaves. IDs are arbitrary but distinct.
	leafT := func(id tree.NodeID, l tree.Label) *Node {
		return &Node{Op: LeafTree, Label: l, TreeID: id, Weight: 1, Height: 0, HoleNode: -1}
	}
	leafC := func(id tree.NodeID, l tree.Label) *Node {
		return &Node{Op: LeafCtx, Label: l, TreeID: id, Weight: 1, Height: 0, HoleNode: id}
	}
	inner := func(op Op, l, r *Node) *Node {
		n := &Node{Op: op, Left: l, Right: r}
		l.Parent = n
		r.Parent = n
		n.update()
		return n
	}

	// ⊕HH: two single-node forests side by side.
	hh := inner(ConcatHH, leafT(0, "a"), leafT(1, "b"))
	roots, hole := decode(hh)
	if len(roots) != 2 || hole != nil || roots[0].label != "a" || roots[1].label != "b" {
		t.Fatalf("⊕HH decoded wrong: %v %v", roots, hole)
	}
	if hh.IsContext() {
		t.Fatal("⊕HH must have forest type")
	}

	// ⊕HV: forest then context; the hole stays open on the right part.
	hv := inner(ConcatHV, leafT(2, "a"), leafC(3, "c"))
	roots, hole = decode(hv)
	if len(roots) != 2 || hole == nil || hole.id != 3 {
		t.Fatalf("⊕HV decoded wrong: %v %v", roots, hole)
	}
	if !hv.IsContext() {
		t.Fatal("⊕HV must have context type")
	}

	// ⊕VH: context then forest; hole from the left part.
	vh := inner(ConcatVH, leafC(4, "c"), leafT(5, "b"))
	roots, hole = decode(vh)
	if len(roots) != 2 || hole == nil || hole.id != 4 {
		t.Fatalf("⊕VH decoded wrong: %v %v", roots, hole)
	}

	// ⊙VV: plug a context into a context; the inner hole survives.
	vv := inner(ComposeVV, leafC(6, "c"), leafC(7, "d"))
	roots, hole = decode(vv)
	if len(roots) != 1 || hole == nil || hole.id != 7 {
		t.Fatalf("⊙VV decoded wrong: %v %v", roots, hole)
	}
	if roots[0].id != 6 || len(roots[0].children) != 1 || roots[0].children[0].id != 7 {
		t.Fatalf("⊙VV structure wrong: %v", roots[0])
	}
	if vv.HoleNode != 7 {
		t.Fatalf("⊙VV cached hole = %d", vv.HoleNode)
	}

	// ⊙VH: plug a forest into a context's hole; the result is a forest.
	plug := inner(ConcatHH, leafT(8, "x"), leafT(9, "y"))
	ap := inner(ApplyVH, leafC(10, "c"), plug)
	roots, hole = decode(ap)
	if len(roots) != 1 || hole != nil {
		t.Fatalf("⊙VH decoded wrong: %v %v", roots, hole)
	}
	kids := roots[0].children
	if len(kids) != 2 || kids[0].id != 8 || kids[1].id != 9 {
		t.Fatalf("⊙VH children wrong: %v", kids)
	}
	if ap.IsContext() {
		t.Fatal("⊙VH must have forest type")
	}

	// Composition sanity: ((c⊙VV d) ⊙VH (x⊕HH y)) puts x,y under d under c.
	deep := inner(ApplyVH,
		inner(ComposeVV, leafC(11, "c"), leafC(12, "d")),
		inner(ConcatHH, leafT(13, "x"), leafT(14, "y")))
	roots, hole = decode(deep)
	if hole != nil || len(roots) != 1 {
		t.Fatal("nested decode wrong")
	}
	d := roots[0].children[0]
	if roots[0].id != 11 || d.id != 12 || len(d.children) != 2 {
		t.Fatalf("nested structure wrong: %v", roots[0])
	}
	if err := ValidateTerm(deep); err != nil {
		t.Fatal(err)
	}
}
