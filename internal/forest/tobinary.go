package forest

import "repro/internal/tree"

// ToBinary materializes a term as a binary Λ′-tree. Leaf nodes keep their
// tree node IDs (so valuations and assignments transfer along the φ
// bijection of Lemma 7.4); internal nodes get fresh negative IDs, which
// is safe because only leaves carry annotations. Used by oracles and
// tests; the dynamic engine builds circuits directly on the term.
func ToBinary(n *Node) *tree.Binary {
	next := tree.NodeID(-2)
	var rec func(x *Node) *tree.BNode
	rec = func(x *Node) *tree.BNode {
		if x.IsLeaf() {
			return &tree.BNode{ID: x.TreeID, Label: x.BinaryLabel()}
		}
		b := &tree.BNode{ID: next, Label: x.BinaryLabel()}
		next--
		b.Left = rec(x.Left)
		b.Right = rec(x.Right)
		return b
	}
	return &tree.Binary{Root: rec(n)}
}
