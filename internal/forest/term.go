// Package forest implements Section 7 of the paper: forest algebra terms
// (Appendix E), the balanced encoding ω of unranked trees into binary
// terms (Lemma 7.4, after Niewerth's LICS'18 scheme), the edit operations
// of Definition 7.1 realized as tree hollowings (Definition 7.2) with
// logarithmic trunks, and the translation of unranked stepwise TVAs (and
// word automata, Corollary 8.4) into binary TVAs over the term alphabet.
//
// Balancing substitution (documented in DESIGN.md): instead of the
// rotation-based worst-case rebalancing of [Niewerth 2018], terms are
// built by weight-driven divide and conquer and rebalanced by rebuilding
// the lowest enclosing subterm whose height exceeds its budget
// (scapegoat-style). This keeps heights O(log n) and update costs
// amortized O(log n), which preserves every scaling shape the paper
// reports.
package forest

import (
	"fmt"
	"strings"

	"repro/internal/tree"
)

// The two leaf forms and five operators of the free forest algebra
// (Appendix E). Type discipline:
//
//	LeafTree            → forest   (aᵗ: single node)
//	LeafCtx             → context  (a□: single node whose children are the hole)
//	ConcatHH(f, f)      → forest   (⊕HH)
//	ConcatHV(f, c)      → context  (⊕HV)
//	ConcatVH(c, f)      → context  (⊕VH)
//	ComposeVV(c, c)     → context  (⊙VV: plug c₂ into c₁'s hole)
//	ApplyVH(c, f)       → forest   (⊙VH: plug f into c's hole)
type Op uint8

const (
	LeafTree Op = iota
	LeafCtx
	ConcatHH
	ConcatHV
	ConcatVH
	ComposeVV
	ApplyVH
)

// String returns the operator glyph used as the binary tree label.
func (o Op) String() string {
	switch o {
	case LeafTree:
		return "t"
	case LeafCtx:
		return "c"
	case ConcatHH:
		return "+HH"
	case ConcatHV:
		return "+HV"
	case ConcatVH:
		return "+VH"
	case ComposeVV:
		return ".VV"
	case ApplyVH:
		return ".VH"
	}
	return "?"
}

// Node is a node of a forest algebra term. Leaves correspond bijectively
// to the nodes of the encoded unranked tree (the φ of Lemma 7.4); internal
// nodes carry one of the five operators.
//
// Term nodes follow a persistence discipline: every edit produces fresh
// nodes along the hollowing trunk (Definition 7.2) and shares all
// untouched subtrees, instead of mutating nodes in place. A node's Op,
// Label, TreeID, children and cached weights are therefore fixed once the
// node has been handed out by Drain, which is what lets the dynamic
// engine attach a frozen circuit box to each trunk node exactly once.
// The Parent pointers are writer-side bookkeeping only: when a fresh
// parent is built over a shared subtree, the subtree's Parent is
// redirected to it (superseded nodes keep their stale chain, which is how
// Drain detects them).
type Node struct {
	Op     Op
	Label  tree.Label  // leaves: the tree label of the represented node
	TreeID tree.NodeID // leaves: the represented tree node
	// HoleNode, for context-typed nodes, is the tree node whose children
	// forest the hole stands for.
	HoleNode tree.NodeID

	Left   *Node
	Right  *Node
	Parent *Node

	Weight int // number of term leaves below (= tree nodes represented)
	Height int
}

// IsLeaf reports whether the term node is a leaf (aᵗ or a□).
func (n *Node) IsLeaf() bool { return n.Op == LeafTree || n.Op == LeafCtx }

// Walk visits every node of the subterm rooted at n bottom-up (children
// before parents) — the same order the dirty protocol's Drain delivers,
// so consumers that build per-node structure from children's structure
// can use either interchangeably. Safe on a nil receiver.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	n.Left.Walk(fn)
	n.Right.Walk(fn)
	fn(n)
}

// IsContext reports whether the node has context type (it contains a
// hole); otherwise it has forest type.
func (n *Node) IsContext() bool {
	switch n.Op {
	case LeafCtx, ConcatHV, ConcatVH, ComposeVV:
		return true
	}
	return false
}

// BinaryLabel is the label of this node in the binary Λ′-tree the term
// denotes: "t:a"/"c:a" for leaves, the operator glyph otherwise.
func (n *Node) BinaryLabel() tree.Label {
	switch n.Op {
	case LeafTree:
		return tree.Label("t:" + string(n.Label))
	case LeafCtx:
		return tree.Label("c:" + string(n.Label))
	}
	return tree.Label(n.Op.String())
}

// update recomputes Weight, Height and HoleNode from the children.
func (n *Node) update() {
	if n.IsLeaf() {
		n.Weight = 1
		n.Height = 0
		if n.Op == LeafCtx {
			n.HoleNode = n.TreeID
		} else {
			n.HoleNode = tree.InvalidNode
		}
		return
	}
	n.Weight = n.Left.Weight + n.Right.Weight
	n.Height = 1 + max(n.Left.Height, n.Right.Height)
	switch n.Op {
	case ConcatHV, ComposeVV:
		n.HoleNode = n.Right.HoleNode
	case ConcatVH:
		n.HoleNode = n.Left.HoleNode
	default:
		n.HoleNode = tree.InvalidNode
	}
}

// newInner allocates an internal node, wiring parents and recomputing
// weights; creation order is children first, which the dynamic engine
// relies on for bottom-up box rebuilding. Plug operations (⊙VH, ⊙VV)
// register themselves in plugOp under their left operand's hole node, so
// path copies of plug nodes keep the map current automatically.
func (f *Forest) newInner(op Op, l, r *Node) *Node {
	n := &Node{Op: op, Left: l, Right: r}
	l.Parent = n
	r.Parent = n
	n.update()
	if op == ApplyVH || op == ComposeVV {
		f.plugOp[l.HoleNode] = n
	}
	f.record(n)
	return n
}

func (f *Forest) newLeafTree(tn *tree.UNode) *Node {
	n := &Node{Op: LeafTree, Label: tn.Label, TreeID: tn.ID, Weight: 1, HoleNode: tree.InvalidNode}
	f.leafOf[tn.ID] = n
	f.record(n)
	return n
}

func (f *Forest) newLeafCtx(tn *tree.UNode) *Node {
	n := &Node{Op: LeafCtx, Label: tn.Label, TreeID: tn.ID, Weight: 1, HoleNode: tn.ID}
	f.leafOf[tn.ID] = n
	f.record(n)
	return n
}

// ValidateTerm checks the typing discipline of forest algebra pre-terms
// (Appendix E), parent pointers, and cached weights/heights/holes.
func ValidateTerm(n *Node) error {
	if n == nil {
		return fmt.Errorf("forest: nil term")
	}
	var rec func(x *Node) error
	rec = func(x *Node) error {
		if x.IsLeaf() {
			if x.Left != nil || x.Right != nil {
				return fmt.Errorf("forest: leaf with children")
			}
			if x.Weight != 1 || x.Height != 0 {
				return fmt.Errorf("forest: leaf with weight %d height %d", x.Weight, x.Height)
			}
			return nil
		}
		if x.Left == nil || x.Right == nil {
			return fmt.Errorf("forest: operator %v missing children", x.Op)
		}
		if x.Left.Parent != x || x.Right.Parent != x {
			return fmt.Errorf("forest: parent pointers wrong at %v", x.Op)
		}
		var wantL, wantR bool // true = context
		switch x.Op {
		case ConcatHH:
			wantL, wantR = false, false
		case ConcatHV:
			wantL, wantR = false, true
		case ConcatVH:
			wantL, wantR = true, false
		case ComposeVV:
			wantL, wantR = true, true
		case ApplyVH:
			wantL, wantR = true, false
		default:
			return fmt.Errorf("forest: unknown op %d", x.Op)
		}
		if x.Left.IsContext() != wantL || x.Right.IsContext() != wantR {
			return fmt.Errorf("forest: typing violation at %v (left ctx=%v, right ctx=%v)",
				x.Op, x.Left.IsContext(), x.Right.IsContext())
		}
		if x.Weight != x.Left.Weight+x.Right.Weight {
			return fmt.Errorf("forest: stale weight at %v", x.Op)
		}
		if x.Height != 1+max(x.Left.Height, x.Right.Height) {
			return fmt.Errorf("forest: stale height at %v", x.Op)
		}
		var wantHole tree.NodeID
		switch x.Op {
		case ConcatHV, ComposeVV:
			wantHole = x.Right.HoleNode
		case ConcatVH:
			wantHole = x.Left.HoleNode
		default:
			wantHole = tree.InvalidNode
		}
		if x.HoleNode != wantHole {
			return fmt.Errorf("forest: stale hole at %v", x.Op)
		}
		if err := rec(x.Left); err != nil {
			return err
		}
		return rec(x.Right)
	}
	if n.IsContext() {
		return fmt.Errorf("forest: root term must have forest type")
	}
	return rec(n)
}

// dnode is a decoded unranked node used to check terms against the tree.
type dnode struct {
	id       tree.NodeID
	label    tree.Label
	children []*dnode
}

// Decode evaluates the term in the free forest algebra, returning the
// roots of the represented forest (Appendix E semantics). Context-typed
// subterms return additionally the decoded node carrying the hole.
func decode(n *Node) (roots []*dnode, hole *dnode) {
	switch n.Op {
	case LeafTree:
		return []*dnode{{id: n.TreeID, label: n.Label}}, nil
	case LeafCtx:
		d := &dnode{id: n.TreeID, label: n.Label}
		return []*dnode{d}, d
	case ConcatHH:
		l, _ := decode(n.Left)
		r, _ := decode(n.Right)
		return append(l, r...), nil
	case ConcatHV:
		l, _ := decode(n.Left)
		r, h := decode(n.Right)
		return append(l, r...), h
	case ConcatVH:
		l, h := decode(n.Left)
		r, _ := decode(n.Right)
		return append(l, r...), h
	case ComposeVV:
		l, hl := decode(n.Left)
		r, hr := decode(n.Right)
		hl.children = r
		return l, hr
	case ApplyVH:
		l, hl := decode(n.Left)
		r, _ := decode(n.Right)
		hl.children = r
		return l, nil
	}
	panic("forest: unknown op")
}

// DecodeTree decodes a forest-typed term that represents a single tree
// and checks it against the given unranked tree: same shape, labels, and
// node identities (the ω and φ of Lemma 7.4). Returns an error on any
// mismatch.
func DecodeTree(n *Node, t *tree.Unranked) error {
	if n.IsContext() {
		return fmt.Errorf("forest: term has context type")
	}
	roots, _ := decode(n)
	if len(roots) != 1 {
		return fmt.Errorf("forest: term decodes to %d trees, want 1", len(roots))
	}
	var cmp func(d *dnode, u *tree.UNode) error
	cmp = func(d *dnode, u *tree.UNode) error {
		if d.id != u.ID || d.label != u.Label {
			return fmt.Errorf("forest: node mismatch: term (%d, %s) vs tree (%d, %s)",
				d.id, d.label, u.ID, u.Label)
		}
		i := 0
		for c := u.FirstChild; c != nil; c = c.NextSib {
			if i >= len(d.children) {
				return fmt.Errorf("forest: node %d has too few children in term", u.ID)
			}
			if err := cmp(d.children[i], c); err != nil {
				return err
			}
			i++
		}
		if i != len(d.children) {
			return fmt.Errorf("forest: node %d has %d extra children in term", u.ID, len(d.children)-i)
		}
		return nil
	}
	return cmp(roots[0], t.Root)
}

// String renders the term structure for debugging.
func (n *Node) String() string {
	var b strings.Builder
	var rec func(x *Node)
	rec = func(x *Node) {
		if x.IsLeaf() {
			fmt.Fprintf(&b, "%s:%s/%d", x.Op, x.Label, x.TreeID)
			return
		}
		fmt.Fprintf(&b, "(%s ", x.Op)
		rec(x.Left)
		b.WriteByte(' ')
		rec(x.Right)
		b.WriteByte(')')
	}
	rec(n)
	return b.String()
}
