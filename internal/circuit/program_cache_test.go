package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
	"repro/internal/tva"
)

// randomHomogenized draws one random homogenized binary automaton; the
// rng stream makes content deterministic per seed, so the same seed
// reproduces content-equal (but object-distinct) automata.
func randomHomogenized(seed int64) *tva.Binary {
	rng := rand.New(rand.NewSource(seed))
	raw := tva.RandomBinary(rng, 1+rng.Intn(4), alphaAB, tree.NewVarSet(0), 0.4)
	return raw.Homogenize()
}

// TestProgramCacheBoundedUnderChurn registers far more distinct automata
// than the cache cap — the register/unregister churn shape of a
// long-running QuerySet process — and pins that clock eviction keeps the
// entry count at or under the cap the whole way (the cache used to
// retain its first 256 programs forever and ignore everything after).
func TestProgramCacheBoundedUnderChurn(t *testing.T) {
	for seed := int64(0); seed < int64(3*programCacheCap); seed++ {
		if _, err := NewBuilder(randomHomogenized(1000 + seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := ProgramCacheSize(); n > ProgramCacheCap() {
			t.Fatalf("after %d compilations the cache holds %d entries (cap %d)", seed+1, n, ProgramCacheCap())
		}
	}
	if ProgramCacheSize() == 0 {
		t.Fatal("churn left the cache empty — eviction is removing too much")
	}
}

// TestProgramCacheHitAfterChurn pins that the cache still SHARES after
// eviction has run: compiling content-equal automata back to back yields
// one *Program (the second compilation is a hit, its reference bit set),
// and an entry evicted by later churn recompiles to a content-equal
// program rather than failing.
func TestProgramCacheHitAfterChurn(t *testing.T) {
	// Force the cache through at least one full eviction cycle first.
	for seed := int64(0); seed < int64(programCacheCap+32); seed++ {
		if _, err := NewBuilder(randomHomogenized(5000 + seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	b1, err := NewBuilder(randomHomogenized(42))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewBuilder(randomHomogenized(42))
	if err != nil {
		t.Fatal(err)
	}
	if b1.Program() != b2.Program() {
		t.Fatal("back-to-back compilations of content-equal automata should share one cached program")
	}
	if !b1.Program().ContentEqual(b2.Program()) {
		t.Fatal("ContentEqual must hold for the shared program")
	}
	if b1.Program().Fingerprint() != b2.Program().Fingerprint() {
		t.Fatal("content-equal programs must carry equal fingerprints")
	}
	// Churn the entry out, then recompile: a fresh but content-equal
	// program (same fingerprint) must come back.
	for seed := int64(0); seed < int64(2*programCacheCap); seed++ {
		if _, err := NewBuilder(randomHomogenized(9000 + seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	b3, err := NewBuilder(randomHomogenized(42))
	if err != nil {
		t.Fatal(err)
	}
	if !b3.Program().ContentEqual(b1.Program()) || b3.Program().Fingerprint() != b1.Program().Fingerprint() {
		t.Fatal("recompiled program after eviction must be content-equal with equal fingerprint")
	}
}
