package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
	"repro/internal/tva"
)

var alphaAB = []tree.Label{"a", "b"}

func mustBuilder(t *testing.T, a *tva.Binary) *Builder {
	t.Helper()
	bd, err := NewBuilder(a)
	if err != nil {
		t.Fatal(err)
	}
	return bd
}

func TestNewBuilderRejectsNonHomogenized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := tva.RandomBinary(rng, 3, alphaAB, tree.NewVarSet(0), 0.4)
	if _, err := NewBuilder(a); err == nil {
		t.Fatal("expected error for non-homogenized automaton")
	}
}

// TestCircuitMatchesBruteForce is the core Definition 3.3 check: for every
// node n and state q of random automata on random trees, the captured set
// S(γ(n, q)) must equal the set of assignments of valuations under which
// some run maps n to q.
func TestCircuitMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		raw := tva.RandomBinary(rng, 1+rng.Intn(3), alphaAB, tree.NewVarSet(0, 1), 0.4)
		a := raw.Homogenize()
		if a.NumStates == 0 {
			continue
		}
		bt := tva.RandomBinaryTree(rng, 1+rng.Intn(4), alphaAB)
		bd := mustBuilder(t, a)
		c := bd.Build(bt)
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if w := c.Width(); w > a.NumStates {
			t.Fatalf("trial %d: width %d > |Q| = %d", trial, w, a.NumStates)
		}

		// Walk tree and boxes in lockstep.
		var boxes []*Box
		c.Walk(func(b *Box) { boxes = append(boxes, b) })
		var nodes []*tree.BNode
		var walk func(n *tree.BNode)
		walk = func(n *tree.BNode) {
			if n == nil {
				return
			}
			walk(n.Left)
			walk(n.Right)
			nodes = append(nodes, n)
		}
		walk(bt.Root)
		if len(boxes) != len(nodes) {
			t.Fatalf("trial %d: %d boxes for %d nodes", trial, len(boxes), len(nodes))
		}

		// For each node, enumerate all valuations of its subtree's leaves
		// and compare against the captured sets.
		ev := NewEvaluator()
		for i, n := range nodes {
			b := boxes[i]
			sub := &tree.Binary{Root: n}
			leaves := sub.Leaves()
			if len(leaves) > 4 {
				continue
			}
			want := make([]map[string]bool, a.NumStates)
			for q := range want {
				want[q] = map[string]bool{}
			}
			subsets := []tree.VarSet{}
			tree.SubsetsOf(a.Vars, func(s tree.VarSet) { subsets = append(subsets, s) })
			nu := tree.Valuation{}
			var rec func(j int)
			rec = func(j int) {
				if j == len(leaves) {
					states := a.StatesAt(sub, nu)
					key := nu.Assignment().Key()
					states[n].ForEach(func(q int) bool {
						want[q][key] = true
						return true
					})
					return
				}
				for _, s := range subsets {
					if s == 0 {
						delete(nu, leaves[j].ID)
					} else {
						nu[leaves[j].ID] = s
					}
					rec(j + 1)
				}
				delete(nu, leaves[j].ID)
			}
			rec(0)
			for q := 0; q < a.NumStates; q++ {
				got := ev.Gamma(b, q)
				if len(got) != len(want[q]) {
					t.Fatalf("trial %d node n%d state %d: |S(γ)| = %d, want %d",
						trial, n.ID, q, len(got), len(want[q]))
				}
				for k := range got {
					if !want[q][k] {
						t.Fatalf("trial %d node n%d state %d: spurious assignment %q",
							trial, n.ID, q, k)
					}
				}
			}
		}
	}
}

// TestRootAcceptingMatchesOracle checks that Γ plus the empty-assignment
// flag reproduce exactly the satisfying assignments.
func TestRootAcceptingMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		raw := tva.RandomBinary(rng, 1+rng.Intn(3), alphaAB, tree.NewVarSet(0), 0.4)
		a := raw.Homogenize()
		if a.NumStates == 0 {
			continue
		}
		bt := tva.RandomBinaryTree(rng, 1+rng.Intn(5), alphaAB)
		want, err := a.SatisfyingAssignments(bt, 8)
		if err != nil {
			t.Fatal(err)
		}
		bd := mustBuilder(t, a)
		c := bd.Build(bt)
		gamma, emptyOK := bd.RootAccepting(c)
		got := map[string]tree.Assignment{}
		if emptyOK {
			e := tree.Assignment{}
			got[e.Key()] = e
		}
		ev := NewEvaluator()
		gamma.ForEach(func(u int) bool {
			for k, v := range ev.Union(c.Root, u) {
				got[k] = v
			}
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d assignments, want %d", trial, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("trial %d: missing %q", trial, k)
			}
		}
	}
}

// TestCircuitSizeLinear checks the O(|T|·|A|) size bound of Lemma 3.7.
func TestCircuitSizeLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	raw := tva.RandomBinary(rng, 4, alphaAB, tree.NewVarSet(0), 0.3)
	a := raw.Homogenize()
	if a.NumStates == 0 {
		t.Skip("degenerate automaton")
	}
	bd := mustBuilder(t, a)
	for _, leaves := range []int{4, 16, 64} {
		bt := tva.RandomBinaryTree(rng, leaves, alphaAB)
		c := bd.Build(bt)
		u, x, v := c.CountGates()
		total := u + x + v
		// Per box: ≤ |Q| unions, ≤ |Q|² times, ≤ |ι| vars.
		bound := bt.Size() * (a.NumStates + a.NumStates*a.NumStates + len(a.Init))
		if total > bound {
			t.Fatalf("leaves=%d: %d gates > bound %d", leaves, total, bound)
		}
		if c.NumBoxes() != bt.Size() {
			t.Fatalf("boxes %d != nodes %d", c.NumBoxes(), bt.Size())
		}
	}
}

// TestTimesGateDeduplication verifies the width remark after Definition
// 3.6: at most w² ×-gates per box thanks to per-pair deduplication.
func TestTimesGateDeduplication(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		raw := tva.RandomBinary(rng, 2+rng.Intn(3), alphaAB, tree.NewVarSet(0), 0.6)
		a := raw.Homogenize()
		if a.NumStates == 0 {
			continue
		}
		bd := mustBuilder(t, a)
		bt := tva.RandomBinaryTree(rng, 8, alphaAB)
		c := bd.Build(bt)
		w := c.Width()
		c.Walk(func(b *Box) {
			if len(b.Times) > w*w {
				t.Fatalf("box n%d has %d ×-gates > w² = %d", b.Node, len(b.Times), w*w)
			}
			seen := map[TimesGate]bool{}
			for _, tg := range b.Times {
				if seen[tg] {
					t.Fatalf("box n%d has duplicate ×-gate %v", b.Node, tg)
				}
				seen[tg] = true
			}
		})
	}
}

func TestEvaluatorExample32(t *testing.T) {
	// Example 3.2/3.5 of the paper: a ×-gate over {x} and ({y} ∪ {y,z}).
	// We realize it as a hand-built two-leaf circuit and check the
	// captured set is {{x,y},{x,y,z}}.
	leafL := &Box{Node: 0, GammaKind: []GammaKind{GammaUnion}, GammaIdx: []int32{0}}
	leafL.Vars = []VarGate{{Set: tree.NewVarSet(0), Node: 0}}
	leafL.Unions = []UnionGate{{Vars: []int32{0}}}
	leafR := &Box{Node: 1, GammaKind: []GammaKind{GammaUnion}, GammaIdx: []int32{0}}
	leafR.Vars = []VarGate{{Set: tree.NewVarSet(1), Node: 1}, {Set: tree.NewVarSet(1, 2), Node: 1}}
	leafR.Unions = []UnionGate{{Vars: []int32{0, 1}}}
	root := &Box{Node: 2, Left: leafL, Right: leafR, GammaKind: []GammaKind{GammaUnion}, GammaIdx: []int32{0}}
	root.Times = []TimesGate{{Left: 0, Right: 0}}
	root.Unions = []UnionGate{{Times: []int32{0}}}
	root.rebuildWires()
	c := &Circuit{Root: root}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	got := NewEvaluator().Union(root, 0)
	if len(got) != 2 {
		t.Fatalf("S(g) has %d elements, want 2: %v", len(got), got)
	}
	want1 := tree.Assignment{{Var: 0, Node: 0}, {Var: 1, Node: 1}}.Normalize()
	want2 := tree.Assignment{{Var: 0, Node: 0}, {Var: 1, Node: 1}, {Var: 2, Node: 1}}.Normalize()
	if _, ok := got[want1.Key()]; !ok {
		t.Fatalf("missing %v", want1)
	}
	if _, ok := got[want2.Key()]; !ok {
		t.Fatalf("missing %v", want2)
	}
}
