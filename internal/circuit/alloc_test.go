package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
	"repro/internal/tva"
)

// Allocation-regression guards for the builder hot path: the precompiled
// program plus the scratch arena make LeafBox and InnerBox allocate only
// the box's own immutable arrays. These tests pin the steady-state
// allocation counts so a regression (a reintroduced map, a sort that
// boxes its closure, a slice that escapes) fails CI rather than silently
// eating the Lemma 7.3 repair budget. The bounds are deliberately a
// little above the measured values (LeafBox 2, InnerBox ~8 on go1.24) to
// absorb compiler-version variance, but far below the dozens of
// allocations per box the map-based construction performed.
const (
	maxLeafBoxAllocs  = 3
	maxInnerBoxAllocs = 12
)

// allocAutomaton is a small homogenized automaton exercising every gate
// flavor: ×-gates (two ∪-children), alias wires (⊤ sibling) and var
// gates.
func allocAutomaton(t *testing.T) *tva.Binary {
	t.Helper()
	x := tree.NewVarSet(0)
	raw := &tva.Binary{
		NumStates: 2,
		Alphabet:  alphaAB,
		Vars:      x,
		Init: []tva.InitRule{
			{Label: "a", Set: 0, State: 0}, {Label: "b", Set: 0, State: 0},
			{Label: "a", Set: x, State: 1}, {Label: "b", Set: x, State: 1},
		},
		Final: []tva.State{1},
	}
	for _, l := range alphaAB {
		raw.Delta = append(raw.Delta,
			tva.Triple{Label: l, Left: 0, Right: 0, Out: 0},
			tva.Triple{Label: l, Left: 1, Right: 0, Out: 1},
			tva.Triple{Label: l, Left: 0, Right: 1, Out: 1},
			tva.Triple{Label: l, Left: 1, Right: 1, Out: 1},
		)
	}
	return raw.Homogenize()
}

func TestLeafBoxAllocsSteadyState(t *testing.T) {
	bd := mustBuilder(t, allocAutomaton(t))
	bd.LeafBox("a", 0) // warm the template path
	var sink *Box
	got := testing.AllocsPerRun(200, func() {
		sink = bd.LeafBox("a", 1)
	})
	if got > maxLeafBoxAllocs {
		t.Fatalf("LeafBox allocates %.1f per call, want <= %d", got, maxLeafBoxAllocs)
	}
	_ = sink
}

func TestInnerBoxAllocsSteadyState(t *testing.T) {
	bd := mustBuilder(t, allocAutomaton(t))
	l := bd.LeafBox("a", 0)
	r := bd.LeafBox("b", 1)
	bd.InnerBox("a", 2, l, r) // warm the scratch arena
	var sink *Box
	got := testing.AllocsPerRun(200, func() {
		sink = bd.InnerBox("a", 2, l, r)
	})
	if got > maxInnerBoxAllocs {
		t.Fatalf("InnerBox allocates %.1f per call, want <= %d", got, maxInnerBoxAllocs)
	}
	_ = sink

	// Deeper boxes (inner children, ⊤/alias mix) must stay within the
	// same bound once the arena is warm.
	inner := bd.InnerBox("a", 3, l, r)
	bd.InnerBox("b", 4, inner, r)
	got = testing.AllocsPerRun(200, func() {
		sink = bd.InnerBox("b", 4, inner, r)
	})
	if got > maxInnerBoxAllocs {
		t.Fatalf("InnerBox (inner child) allocates %.1f per call, want <= %d", got, maxInnerBoxAllocs)
	}
}

// TestBuilderSharesProgram pins the cross-pipeline sharing contract:
// builders over content-equal automata — e.g. every registration of the
// same query in a QuerySet engine, which translates and homogenizes
// afresh each time — get the SAME compiled transition program from the
// process-wide cache, while a different automaton gets its own.
func TestBuilderSharesProgram(t *testing.T) {
	mk := func(seed int64) *tva.Binary {
		rng := rand.New(rand.NewSource(seed))
		return tva.RandomBinary(rng, 4, alphaAB, tree.NewVarSet(0), 0.3).Homogenize()
	}
	b1 := mustBuilder(t, mk(7))
	b2 := mustBuilder(t, mk(7)) // same seed: content-equal, distinct object
	if b1 == b2 || b1.A == b2.A {
		t.Fatal("distinct builders over distinct automaton objects expected")
	}
	if b1.Program() != b2.Program() {
		t.Fatal("content-equal automata should share one compiled program")
	}
	other := mustBuilder(t, allocAutomaton(t))
	if other.Program() == b1.Program() {
		t.Fatal("different automata must not share a program")
	}
}
