package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tree"
	"repro/internal/tva"
)

// TestDecomposability checks the DNNF property that Definition 3.4
// enforces structurally: for every ×-gate, the sets of (variable, node)
// singletons reachable through its left and right inputs are disjoint
// (no singleton can be produced on both sides).
func TestDecomposability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		raw := tva.RandomBinary(rng, 1+rng.Intn(3), []tree.Label{"a", "b"}, tree.NewVarSet(0, 1), 0.4)
		a := raw.Homogenize()
		if a.NumStates == 0 {
			return true
		}
		bd, err := NewBuilder(a)
		if err != nil {
			return false
		}
		bt := tva.RandomBinaryTree(rng, 1+rng.Intn(6), []tree.Label{"a", "b"})
		c := bd.Build(bt)
		ev := NewEvaluator()
		ok := true
		c.Walk(func(b *Box) {
			for ti := range b.Times {
				tg := b.Times[ti]
				left := ev.Union(b.Left, int(tg.Left))
				right := ev.Union(b.Right, int(tg.Right))
				seen := map[tree.Singleton]bool{}
				for _, asg := range left {
					for _, s := range asg {
						seen[s] = true
					}
				}
				for _, asg := range right {
					for _, s := range asg {
						if seen[s] {
							ok = false
						}
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma51LCA checks Lemma 5.1 semantically: for every var- or ×-gate
// g and every S ∈ S(g), the box of g is the least common ancestor of the
// leaf boxes holding the variables of S.
func TestLemma51LCA(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		raw := tva.RandomBinary(rng, 1+rng.Intn(3), []tree.Label{"a", "b"}, tree.NewVarSet(0), 0.4)
		a := raw.Homogenize()
		if a.NumStates == 0 {
			continue
		}
		bd, err := NewBuilder(a)
		if err != nil {
			t.Fatal(err)
		}
		bt := tva.RandomBinaryTree(rng, 2+rng.Intn(5), []tree.Label{"a", "b"})
		c := bd.Build(bt)
		// Map node IDs to leaf boxes and record ancestry (boxes carry no
		// parent pointers, so compute them by walking the tree of boxes).
		leafBox := map[tree.NodeID]*Box{}
		parent := map[*Box]*Box{}
		c.Walk(func(b *Box) {
			if b.IsLeaf() {
				leafBox[b.Node] = b
			} else {
				parent[b.Left] = b
				parent[b.Right] = b
			}
		})
		depth := func(b *Box) int {
			d := 0
			for x := b; parent[x] != nil; x = parent[x] {
				d++
			}
			return d
		}
		lca := func(x, y *Box) *Box {
			for depth(x) > depth(y) {
				x = parent[x]
			}
			for depth(y) > depth(x) {
				y = parent[y]
			}
			for x != y {
				x, y = parent[x], parent[y]
			}
			return x
		}
		ev := NewEvaluator()
		c.Walk(func(b *Box) {
			check := func(sets map[string]tree.Assignment) {
				for _, asg := range sets {
					var cur *Box
					for _, s := range asg {
						lb := leafBox[s.Node]
						if cur == nil {
							cur = lb
						} else {
							cur = lca(cur, lb)
						}
					}
					if cur != b {
						t.Fatalf("Lemma 5.1 violated: gate box is not the lca for %v", asg)
					}
				}
			}
			for ti := range b.Times {
				check(ev.Times(b, ti))
			}
			for vi := range b.Vars {
				asg := ev.VarAssignment(b, vi)
				check(map[string]tree.Assignment{asg.Key(): asg})
			}
		})
	}
}
