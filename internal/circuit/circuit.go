// Package circuit implements the set circuits of Section 3: complete
// structured DNNFs whose gates capture sets of assignments, organized in
// boxes along a v-tree that mirrors the input binary tree. The central
// entry point is Builder, which implements the circuit construction of
// Lemma 3.7 (in the refined form of Appendix B where ⊤- and ⊥-gates are
// never used as inputs to other gates).
//
// The box layout is what the enumeration algorithms of Sections 4-6
// exploit: every ∪-gate has, as inputs, var- or ×-gates of its own box and
// ∪-gates of the two child boxes; every ×-gate has exactly one ∪-gate
// input in the left child box and one in the right child box. Gates are
// addressed by (box, local index), and the ∪→∪ wires to each child box are
// materialized as boolean matrices so that the ∪-reachability relations
// R(B′, B) of Section 5 are compositions of per-box matrices.
package circuit

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/tree"
)

// GammaKind classifies the gate γ(n, q) associated with a tree node n and
// automaton state q: per Definition 3.3 it is a ∪-gate, ⊤-gate or ⊥-gate.
type GammaKind uint8

// The three possible kinds of γ(n, q).
const (
	GammaBottom GammaKind = iota // no run reaches q on this subtree
	GammaTop                     // q reached exactly under the empty valuation
	GammaUnion                   // q reached under nonempty valuations: a ∪-gate
)

// VarGate is a variable gate of a leaf box. It captures the single
// assignment {⟨Z:n⟩ | Z ∈ Set}: the leaf Node annotated with exactly Set.
// Within one box the Set values are distinct, which makes Svar injective
// as Definition 3.1 requires (all var gates of a box share the same Node).
type VarGate struct {
	Set  tree.VarSet
	Node tree.NodeID
}

// TimesGate is a ×-gate. Its inputs are the ∪-gate with local index Left
// in the left child box and the ∪-gate with local index Right in the right
// child box (Definition 3.4 forces exactly this shape).
type TimesGate struct {
	Left  int32
	Right int32
}

// UnionGate is a ∪-gate, described by its input lists. Inputs are var- or
// ×-gates of the same box, or ∪-gates of a child box (the aliasing case of
// the Lemma 3.7 construction, where a ⊤ sibling makes the ×-gate
// degenerate to the other child's ∪-gate).
type UnionGate struct {
	Vars        []int32 // local var-gate inputs (leaf boxes only)
	Times       []int32 // local ×-gate inputs (inner boxes only)
	LeftUnions  []int32 // ∪-gate inputs in the left child box
	RightUnions []int32 // ∪-gate inputs in the right child box
}

// Box is the set of gates mapped to one v-tree node by the structuring
// function σ. The tree of boxes is isomorphic to the input binary tree.
//
// Boxes are immutable once the Builder returns them: a box never changes
// after construction, and the update machinery replaces boxes along the
// hollowing trunk with fresh ones instead of editing them in place. This
// is what makes a box (plus its enumerate-layer index) a frozen unit that
// any number of concurrent readers and engine snapshots can share. For
// the same reason boxes carry no parent pointers: a parent link would
// have to be rewritten when a new parent is built over a shared child.
// Immutability also lets boxes SHARE slices: every leaf box of one label
// aliases its builder's precompiled template arrays (γ vectors, ∪-gates,
// reverse wires), so none of a Box's slices may ever be written after
// construction.
type Box struct {
	Left  *Box
	Right *Box

	// Node is the input-tree node this box was built for; leaf boxes use
	// it to label their var gates.
	Node tree.NodeID
	// Label is the input-tree label the box was built from (kept for
	// inspection and debugging). Under signature-pruned repair a reused
	// box may carry the label of an EARLIER, gate-equivalent build — the
	// automaton does not distinguish the two labels, so every gate, wire
	// and γ entry is identical; only this field can lag.
	Label tree.Label

	Vars   []VarGate
	Times  []TimesGate
	Unions []UnionGate

	// GammaKind[q] / GammaIdx[q] give γ(node, q) for every automaton
	// state q: its kind and, for ∪-gates, the local ∪-gate index.
	GammaKind []GammaKind
	GammaIdx  []int32

	// WLeft and WRight are the ∪→∪ wire relations to the child boxes:
	// WLeft has one row per ∪-gate of Left and one column per ∪-gate of
	// this box; entry (i, j) is set iff left ∪-gate i is an input of this
	// box's ∪-gate j. They realize R(child, B) for the enumeration
	// algorithms. Nil for leaf boxes.
	WLeft  bitset.Matrix
	WRight bitset.Matrix

	// VarOut[v] (TimesOut[t]) lists the local ∪-gates that have var gate v
	// (×-gate t) as an input: the reverse wires used when computing the
	// provenance of ↓-gates in Algorithm 2.
	VarOut   [][]int32
	TimesOut [][]int32

	// Sig is the structural signature of the box's local gates (γ
	// vectors, var sets, ×-gates, ∪-gate wiring — NOT the label, node or
	// children; see computeSig). Boxes with equal signatures over
	// pointer-identical children are interchangeable, which is what the
	// dynamic engine's signature-pruned repair exploits. Zero for
	// hand-assembled boxes that bypassed the Builder.
	Sig uint64
}

// NumUnions returns the number of ∪-gates in the box (its contribution to
// the circuit width, Definition 3.6).
func (b *Box) NumUnions() int { return len(b.Unions) }

// IsLeaf reports whether the box is a leaf of the tree of boxes.
func (b *Box) IsLeaf() bool { return b.Left == nil }

// Circuit is an assignment circuit: a complete structured DNNF organized
// as a tree of boxes, together with the γ mapping stored inside each box.
type Circuit struct {
	Root *Box
}

// Width returns the width of the circuit: the maximum number of ∪-gates
// in a box (Definition 3.6).
func (c *Circuit) Width() int {
	w := 0
	c.Walk(func(b *Box) {
		if len(b.Unions) > w {
			w = len(b.Unions)
		}
	})
	return w
}

// NumBoxes returns the number of boxes.
func (c *Circuit) NumBoxes() int {
	n := 0
	c.Walk(func(*Box) { n++ })
	return n
}

// CountGates returns the total numbers of (∪, ×, var) gates.
func (c *Circuit) CountGates() (unions, times, vars int) {
	c.Walk(func(b *Box) {
		unions += len(b.Unions)
		times += len(b.Times)
		vars += len(b.Vars)
	})
	return
}

// Depth returns the height of the tree of boxes, a proxy for the circuit
// depth of Lemma 3.7 (the circuit depth is within a constant factor).
func (c *Circuit) Depth() int {
	var h func(b *Box) int
	h = func(b *Box) int {
		if b == nil {
			return -1
		}
		l, r := h(b.Left), h(b.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(c.Root)
}

// Walk visits every box bottom-up (children before parents).
func (c *Circuit) Walk(f func(*Box)) {
	var rec func(b *Box)
	rec = func(b *Box) {
		if b == nil {
			return
		}
		rec(b.Left)
		rec(b.Right)
		f(b)
	}
	rec(c.Root)
}

// Validate checks the structural rules of set circuits and of complete
// structured DNNFs (Definitions 3.1 and 3.4) on the whole circuit:
// fan-ins, wire targets, var gates only in leaf boxes, and Svar
// injectivity.
func (c *Circuit) Validate() error {
	var rec func(b *Box) error
	rec = func(b *Box) error {
		if b == nil {
			return nil
		}
		if (b.Left == nil) != (b.Right == nil) {
			return fmt.Errorf("circuit: box for n%d has exactly one child", b.Node)
		}
		if b.IsLeaf() {
			if len(b.Times) != 0 {
				return fmt.Errorf("circuit: leaf box n%d contains ×-gates", b.Node)
			}
			seen := map[tree.VarSet]bool{}
			for _, v := range b.Vars {
				if v.Set.Empty() {
					return fmt.Errorf("circuit: var gate with empty set in box n%d", b.Node)
				}
				if v.Node != b.Node {
					return fmt.Errorf("circuit: var gate node n%d in box n%d", v.Node, b.Node)
				}
				if seen[v.Set] {
					return fmt.Errorf("circuit: duplicate var gate %v in box n%d (Svar not injective)", v.Set, b.Node)
				}
				seen[v.Set] = true
			}
		} else if len(b.Vars) != 0 {
			return fmt.Errorf("circuit: inner box n%d contains var gates", b.Node)
		}
		for ti, tg := range b.Times {
			if b.IsLeaf() {
				return fmt.Errorf("circuit: ×-gate in leaf box n%d", b.Node)
			}
			if int(tg.Left) >= len(b.Left.Unions) || tg.Left < 0 {
				return fmt.Errorf("circuit: ×-gate %d in box n%d has bad left input", ti, b.Node)
			}
			if int(tg.Right) >= len(b.Right.Unions) || tg.Right < 0 {
				return fmt.Errorf("circuit: ×-gate %d in box n%d has bad right input", ti, b.Node)
			}
		}
		for ui, u := range b.Unions {
			fanIn := len(u.Vars) + len(u.Times) + len(u.LeftUnions) + len(u.RightUnions)
			if fanIn == 0 {
				return fmt.Errorf("circuit: ∪-gate %d in box n%d has no inputs", ui, b.Node)
			}
			for _, v := range u.Vars {
				if int(v) >= len(b.Vars) || v < 0 {
					return fmt.Errorf("circuit: ∪-gate %d in box n%d has bad var input", ui, b.Node)
				}
			}
			for _, tg := range u.Times {
				if int(tg) >= len(b.Times) || tg < 0 {
					return fmt.Errorf("circuit: ∪-gate %d in box n%d has bad ×-input", ui, b.Node)
				}
			}
			if b.IsLeaf() && (len(u.LeftUnions) > 0 || len(u.RightUnions) > 0) {
				return fmt.Errorf("circuit: leaf ∪-gate %d in box n%d has child inputs", ui, b.Node)
			}
			if !b.IsLeaf() {
				for _, l := range u.LeftUnions {
					if int(l) >= len(b.Left.Unions) || l < 0 {
						return fmt.Errorf("circuit: ∪-gate %d in box n%d has bad left ∪-input", ui, b.Node)
					}
				}
				for _, r := range u.RightUnions {
					if int(r) >= len(b.Right.Unions) || r < 0 {
						return fmt.Errorf("circuit: ∪-gate %d in box n%d has bad right ∪-input", ui, b.Node)
					}
				}
			}
		}
		// W matrices must reflect the declared union inputs.
		if !b.IsLeaf() {
			wl := bitset.NewMatrix(len(b.Left.Unions), len(b.Unions))
			wr := bitset.NewMatrix(len(b.Right.Unions), len(b.Unions))
			for ui, u := range b.Unions {
				for _, l := range u.LeftUnions {
					wl.Set(int(l), ui)
				}
				for _, r := range u.RightUnions {
					wr.Set(int(r), ui)
				}
			}
			if !wl.Equal(b.WLeft) || !wr.Equal(b.WRight) {
				return fmt.Errorf("circuit: box n%d wire matrices out of sync", b.Node)
			}
		}
		if err := rec(b.Left); err != nil {
			return err
		}
		return rec(b.Right)
	}
	return rec(c.Root)
}
